// Command hieras-sim runs a single HIERAS-vs-Chord simulation and prints
// the comparison, optionally writing a per-request CSV trace.
//
// The comparison runs on the parallel batch query engine: -workers bounds
// the fan-out (summaries are byte-identical for a fixed seed at any
// worker count), -progress streams partial summaries while long runs are
// in flight, and -metrics dumps the pool's queue/throughput gauges along
// with the overlay's counters.
//
// With -check the binary instead runs the property-based invariant
// harness (internal/simcheck): -check-runs seeded random operation
// programs against in-process multi-layer clusters, starting at -seed.
// On a violation it prints the shrunk, replayable counterexample and
// exits nonzero.
//
// Usage:
//
//	hieras-sim -model ts -nodes 1000 -landmarks 4 -depth 2 -requests 10000
//	hieras-sim -nodes 400 -trace out.csv
//	hieras-sim -requests 200000 -workers 8 -progress
//	hieras-sim -check -check-runs 20 -seed 1
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/simcheck"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hieras-sim: ")

	var (
		model     = flag.String("model", "ts", "topology model: ts, inet or brite")
		nodes     = flag.Int("nodes", 1000, "number of overlay peers")
		landmarks = flag.Int("landmarks", 4, "number of landmark nodes")
		depth     = flag.Int("depth", 2, "hierarchy depth (1 = plain Chord only)")
		requests  = flag.Int("requests", 10000, "routing requests")
		seed      = flag.Int64("seed", 1, "random seed")
		routers   = flag.Int("routers", 0, "router count for inet/brite (0 = auto)")
		workers   = flag.Int("workers", 0, "batch-engine workers (0 = all CPUs)")
		progress  = flag.Bool("progress", false, "stream progressive summaries every ~10% of the run")
		traceOut  = flag.String("trace", "", "write a per-request CSV trace to this file")
		dumpMet   = flag.Bool("metrics", false, "dump the overlay's and pool's Prometheus-text metrics after the run")
		check     = flag.Bool("check", false, "run the property-based invariant harness instead of a simulation")
		checkRuns = flag.Int("check-runs", 5, "number of seeded programs to check with -check (seeds -seed..)")
		checkOps  = flag.Int("check-ops", 0, "operations per checked program (0 = simcheck default)")
		checkSlot = flag.Int("check-slots", 0, "cluster slots per checked program (0 = simcheck default)")
	)
	flag.Parse()

	if *check {
		os.Exit(runCheck(*seed, *checkRuns, *checkOps, *checkSlot, *depth))
	}

	s := experiments.Scenario{
		Model:     *model,
		Nodes:     *nodes,
		Landmarks: *landmarks,
		Depth:     *depth,
		Requests:  *requests,
		Seed:      *seed,
		Routers:   *routers,
		Workers:   *workers,
	}
	s.Pool = experiments.NewPool(*workers)
	if *dumpMet {
		s.Metrics = metrics.NewRegistry()
		s.Pool.Instrument(s.Metrics)
	}
	fmt.Printf("building %s underlay with %d peers (depth %d, %d landmarks, seed %d)...\n",
		s.Model, s.Nodes, s.Depth, s.Landmarks, s.Seed)
	o, err := experiments.BuildOverlay(s)
	if err != nil {
		log.Fatal(err)
	}
	for _, ls := range o.LayerStats() {
		fmt.Printf("layer %d: %d rings, sizes %d..%d (mean %.1f)\n",
			ls.Layer, ls.Rings, ls.MinSize, ls.MaxSize, ls.MeanSize)
	}

	var onProgress func(experiments.Progress)
	if *progress {
		lastDecile := 0
		onProgress = func(p experiments.Progress) {
			if decile := 10 * p.Requests / p.Total; decile > lastDecile {
				lastDecile = decile
				fmt.Printf("  %3d%% (%d/%d): hieras %.2f ms vs chord %.2f ms (ratio %.3f)\n",
					100*p.Requests/p.Total, p.Requests, p.Total,
					p.HierasLatencyMs, p.ChordLatencyMs, p.LatencyRatio)
			}
		}
		fmt.Printf("\nrouting %d requests on %d workers...\n", s.Requests, s.Pool.Workers())
	}
	cmp, err := experiments.CompareStream(context.Background(), o, s, onProgress)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-28s %10s %10s\n", "metric", "chord", "hieras")
	fmt.Printf("%-28s %10.4f %10.4f\n", "avg hops", cmp.Chord.Hops.Mean(), cmp.Hieras.Hops.Mean())
	fmt.Printf("%-28s %10.2f %10.2f\n", "avg latency (ms)", cmp.Chord.Latency.Mean(), cmp.Hieras.Latency.Mean())
	fmt.Printf("%-28s %10.2f %10.2f\n", "p50 latency (ms)", cmp.ChordLatQ.Quantile(0.5), cmp.HierasLatQ.Quantile(0.5))
	fmt.Printf("%-28s %10.2f %10.2f\n", "p99 latency (ms)", cmp.ChordLatQ.Quantile(0.99), cmp.HierasLatQ.Quantile(0.99))
	fmt.Printf("%-28s %10s %9.2f%%\n", "latency ratio", "", 100*cmp.LatencyRatio())
	fmt.Printf("%-28s %10s %9.2f%%\n", "hop overhead", "", 100*(cmp.HopRatio()-1))
	fmt.Printf("%-28s %10s %9.2f%%\n", "lower-layer hop share", "", 100*cmp.LowerHopShare())
	fmt.Printf("%-28s %10.2f %10.2f\n", "mean link delay (ms)", cmp.TopLink.Mean(), cmp.LowerLink.Mean())

	if *traceOut != "" {
		if err := writeTrace(*traceOut, s, o); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntrace written to %s\n", *traceOut)
	}
	if *dumpMet {
		fmt.Println("\n# metrics")
		if _, err := s.Metrics.WriteTo(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

// runCheck drives the simcheck harness over a batch of consecutive
// seeds and reports the first violation's shrunk counterexample.
func runCheck(seed int64, runs, ops, slots, depth int) int {
	fmt.Printf("checking %d seeded programs (seeds %d..%d, depth %d)...\n",
		runs, seed, seed+int64(runs)-1, depth)
	status := 0
	for i := 0; i < runs; i++ {
		cfg := simcheck.Config{Seed: seed + int64(i), Ops: ops, Slots: slots, Depth: depth}
		if f := simcheck.Run(cfg); f != nil {
			fmt.Printf("seed %d: FAIL\n%v\n", cfg.Seed, f)
			status = 1
		} else {
			fmt.Printf("seed %d: ok\n", cfg.Seed)
		}
	}
	if status == 0 {
		fmt.Println("all programs passed")
	}
	return status
}

// writeTrace replays the scenario's request stream and records each HIERAS
// route.
func writeTrace(path string, s experiments.Scenario, o *core.Overlay) error {
	gen, err := workload.NewUniform(s.Seed+1, o.N())
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := trace.NewWriter(f)
	for i, req := range gen.Batch(s.Requests) {
		if err := w.Write(trace.FromRoute(i, o.Route(req.Origin, req.Key))); err != nil {
			return err
		}
	}
	return w.Flush()
}
