// Command hieras-node runs a live HIERAS peer speaking the TCP wire
// protocol — the "real implementation" the paper lists as future work.
// Nodes are placed on a virtual latency plane (-coord) so the distributed
// binning scheme is deterministic and demoable on one machine; pass
// -rtt to bin using real measured round-trip times instead.
//
// Start a network:
//
//	hieras-node -listen 127.0.0.1:7001 -coord 0,0 -create \
//	            -landmarks 127.0.0.1:7001,127.0.0.1:7002
//
// Join it:
//
//	hieras-node -listen 127.0.0.1:7003 -coord 10,5 \
//	            -join 127.0.0.1:7001
//
// Then type commands on stdin: put <key> <value> | get <key> |
// del <key> | lookup <key> | neighbors | info | stats | quit.
//
// Pass -metrics <addr> to serve the node's Prometheus-text metrics on
// http://<addr>/metrics (plus a /healthz endpoint); `stats` prints the
// same snapshot on stdout.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hieras-node: ")

	def := transport.DefaultOptions()
	var opts transport.Options
	var (
		listen    = flag.String("listen", "127.0.0.1:0", "listen address")
		create    = flag.Bool("create", false, "create a new overlay instead of joining")
		join      = flag.String("join", "", "bootstrap node address to join through")
		landmarks = flag.String("landmarks", "", "comma-separated landmark addresses (joiners inherit the bootstrap's)")
		coordStr  = flag.String("coord", "0,0", "virtual plane coordinates x,y (milliseconds)")
		rtt       = flag.Bool("rtt", false, "bin with real RTT probes instead of virtual coordinates")
		stabMs    = flag.Int("stabilize", 500, "stabilization period in milliseconds")
		metrics   = flag.String("metrics", "", "serve /metrics and /healthz on this address (e.g. 127.0.0.1:9090)")
	)
	flag.IntVar(&opts.Depth, "depth", def.Depth, "hierarchy depth")
	flag.IntVar(&opts.LookupCache, "cache", def.LookupCache, "location-cache capacity (0 disables caching)")
	flag.StringVar(&opts.RouteMode, "route-mode", def.RouteMode, "lookup acceleration tier: classic | cached | onehop (onehop gossips a full route table and answers in one verified hop)")
	flag.StringVar(&opts.Codec, "codec", def.Codec, "wire encoding for outgoing calls: binary | gob")
	flag.IntVar(&opts.PoolSize, "pool-size", def.PoolSize, "per-peer connection pool size (0 = default, negative = one connection per call)")
	flag.BoolVar(&opts.Coalesce, "coalesce", def.Coalesce, "share one exchange between identical in-flight read RPCs")

	flag.IntVar(&opts.Replicas, "r", def.Replicas, "replication factor: copies per key, the owner plus r-1 successors")
	flag.IntVar(&opts.WriteQuorum, "w-quorum", def.WriteQuorum, "write quorum: replica acks before a put is acknowledged (0 = majority of r)")
	flag.IntVar(&opts.ReadQuorum, "r-quorum", def.ReadQuorum, "read quorum: replica answers before a get trusts the freshest value (0 = first answer)")

	flag.IntVar(&opts.Retries, "retries", def.Retries, "RPC attempts per call, first try included (1 disables retrying)")
	flag.DurationVar(&opts.RetryBackoff, "retry-backoff", def.RetryBackoff, "backoff before the first retry (doubles per retry, jittered)")
	flag.DurationVar(&opts.RetryMaxBackoff, "retry-max-backoff", def.RetryMaxBackoff, "cap on the per-retry backoff")
	flag.IntVar(&opts.BreakerThreshold, "breaker-threshold", def.BreakerThreshold, "consecutive failures that open a peer's circuit breaker (0 disables it)")
	flag.DurationVar(&opts.BreakerCooldown, "breaker-cooldown", def.BreakerCooldown, "how long an open breaker rejects calls before probing")

	flag.DurationVar(&opts.TTL, "ttl", def.TTL, "data lifetime: puts expire and tombstones are pruned after this long (0 keeps data forever)")
	flag.IntVar(&opts.AntiEntropyEvery, "anti-entropy-every", def.AntiEntropyEvery, "run the digest replica-sync round every N stabilize ticks")
	flag.Parse()

	coord, err := parseCoord(*coordStr)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := opts.Config()
	if err != nil {
		log.Fatal(err)
	}
	cfg.Coord = coord
	if *landmarks != "" {
		cfg.Landmarks = strings.Split(*landmarks, ",")
	}
	if *rtt {
		cfg.Prober = &transport.RTTProber{Samples: 5, Timeout: 2 * time.Second}
	}
	node, err := transport.Start(*listen, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	fmt.Printf("node %s listening on %s\n", node.ID().Short(), node.Addr())

	if *metrics != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", node.Metrics().Handler())
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		go func() {
			if err := http.ListenAndServe(*metrics, mux); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
		fmt.Printf("metrics on http://%s/metrics\n", *metrics)
	}

	switch {
	case *create:
		if err := node.CreateNetwork(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("created a new overlay")
	case *join != "":
		if err := node.Join(*join); err != nil {
			log.Fatal(err)
		}
		if err := node.BuildAllFingers(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("joined via %s; rings: %v\n", *join, node.RingNames())
	default:
		log.Fatal("pass -create or -join <addr>")
	}

	// Background maintenance.
	stop := make(chan struct{})
	go func() {
		t := time.NewTicker(time.Duration(*stabMs) * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				_ = node.StabilizeOnce()
				_ = node.FixFingersOnce(4)
			}
		}
	}()
	defer close(stop)

	repl(node)
}

func parseCoord(s string) ([2]float64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return [2]float64{}, fmt.Errorf("coord must be x,y, got %q", s)
	}
	var c [2]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return c, fmt.Errorf("coord %q: %v", s, err)
		}
		c[i] = v
	}
	return c, nil
}

func repl(node *transport.Node) {
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return
		case "info":
			fmt.Printf("addr %s id %s rings %v handled %d\n",
				node.Addr(), node.ID().Short(), node.RingNames(), node.Handled())
		case "stats":
			if _, err := node.Metrics().WriteTo(os.Stdout); err != nil {
				fmt.Println("error:", err)
			}
		case "neighbors":
			for layer := 1; ; layer++ {
				succ, pred, err := node.Neighbors(layer)
				if err != nil {
					break
				}
				fmt.Printf("layer %d: pred=%s succ=", layer, pred.Addr)
				for _, s := range succ {
					fmt.Printf("%s ", s.Addr)
				}
				fmt.Println()
			}
		case "lookup":
			if len(fields) != 2 {
				fmt.Println("usage: lookup <key>")
				break
			}
			res, err := node.Lookup(context.Background(), transport.LiveKeyID(fields[1]))
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			fmt.Printf("owner %s (%d hops, per layer %v)\n", res.Owner.Addr, res.Hops, res.LayerHops)
		case "put":
			if len(fields) < 3 {
				fmt.Println("usage: put <key> <value...>")
				break
			}
			if err := node.Put(context.Background(), fields[1], []byte(strings.Join(fields[2:], " "))); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("ok")
			}
		case "get":
			if len(fields) != 2 {
				fmt.Println("usage: get <key>")
				break
			}
			v, err := node.Get(context.Background(), fields[1])
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("%s\n", v)
			}
		case "del":
			if len(fields) != 2 {
				fmt.Println("usage: del <key>")
				break
			}
			if err := node.Delete(context.Background(), fields[1]); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("ok")
			}
		default:
			fmt.Println("commands: info | neighbors | lookup <key> | put <k> <v> | get <k> | del <k> | stats | quit")
		}
		fmt.Print("> ")
	}
}
