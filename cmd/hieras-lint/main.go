// Command hieras-lint runs the repo's analyzer suite (internal/lint)
// over the module and exits non-zero if any contract is violated. It
// is the blocking lint step in CI and the `make lint` entry point:
//
//	go run ./cmd/hieras-lint ./...
//
// Flags:
//
//	-list          print the analyzer roster and exit
//	-stale-allows  report //lint:allow directives whose analyzer no
//	               longer fires at the suppressed site, instead of
//	               findings — suppressions rot silently otherwise
//
// Output is one line per finding, sorted by position:
//
//	internal/foo/bar.go:12:3: [nodeterm] time.Now reads the wall clock; ...
//
// Violations that are intentional carry an inline escape hatch with a
// mandatory reason, checked by the same run:
//
//	start := time.Now() //lint:allow nodeterm elapsed is report-only
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
	"repro/internal/lint/loader"
)

func main() {
	list := flag.Bool("list", false, "print the analyzer roster and exit")
	staleAllows := flag.Bool("stale-allows", false, "report //lint:allow directives that no longer suppress anything and exit")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := loader.ModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	prog, err := loader.Load(root, flag.Args()...)
	if err != nil {
		fatal(err)
	}

	if *staleAllows {
		stale, staleErr := lint.StaleAllows(prog, analyzers)
		if staleErr != nil {
			fatal(staleErr)
		}
		for _, s := range stale {
			if rel, relErr := filepath.Rel(root, s.Pos.Filename); relErr == nil {
				s.Pos.Filename = rel
			}
			fmt.Println(s)
		}
		if len(stale) > 0 {
			fmt.Fprintf(os.Stderr, "hieras-lint: %d stale allow(s); delete them or re-justify\n", len(stale))
			os.Exit(1)
		}
		return
	}

	findings, err := lint.Run(prog, analyzers)
	if err != nil {
		fatal(err)
	}
	for _, f := range findings {
		// Positions come back absolute; print them module-relative so
		// the output is stable across checkouts.
		if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil {
			f.Pos.Filename = rel
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "hieras-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hieras-lint:", err)
	os.Exit(2)
}
