// Command topogen generates an underlay topology and prints its
// statistics, the latency structure the HIERAS binning scheme relies on,
// and (optionally) the resulting ring population.
//
// Usage:
//
//	topogen -model ts -nodes 1000
//	topogen -model brite -routers 512 -rings
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/experiments"
	"repro/internal/topology"
	"repro/internal/topology/brite"
	"repro/internal/topology/inet"
	"repro/internal/topology/transitstub"
	"repro/internal/topology/waxman"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("topogen: ")

	var (
		model   = flag.String("model", "ts", "topology model: ts, inet, brite or waxman")
		nodes   = flag.Int("nodes", 1000, "overlay hosts (sizes the ts underlay)")
		routers = flag.Int("routers", 512, "router count for inet/brite")
		seed    = flag.Int64("seed", 1, "random seed")
		rings   = flag.Bool("rings", false, "also print the ring population for a default overlay")
		dot     = flag.String("dot", "", "write the underlay as Graphviz DOT to this file")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var u *topology.Underlay
	switch *model {
	case "ts":
		m, err := transitstub.Generate(transitstub.DefaultConfig(*nodes), rng)
		if err != nil {
			log.Fatal(err)
		}
		u = &topology.Underlay{Graph: m.G, Model: m, HostCandidates: m.StubRouters}
		fmt.Printf("transit-stub: %d transit routers, %d stub domains, %d stub routers\n",
			len(m.TransitIdx), m.StubDomains(), len(m.StubRouters))
	case "inet":
		var err error
		u, err = inet.Generate(inet.Config{Routers: *routers}, rng)
		if err != nil {
			log.Fatal(err)
		}
	case "brite":
		var err error
		u, err = brite.Generate(brite.Config{Routers: *routers}, rng)
		if err != nil {
			log.Fatal(err)
		}
	case "waxman":
		var err error
		u, err = waxman.Generate(waxman.Config{Routers: *routers}, rng)
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown model %q", *model)
	}

	s := topology.ComputeStats(u.Graph)
	fmt.Printf("routers:   %d (%d transit, %d stub, %d plain)\n", s.Nodes, s.Transit, s.Stub, s.Plain)
	fmt.Printf("links:     %d (delay %.1f..%.1f ms, mean %.1f)\n", s.Edges, s.MinDelay, s.MaxDelay, s.MeanDelay)
	fmt.Printf("degree:    %d..%d (mean %.2f)\n", s.MinDegree, s.MaxDegree, s.MeanDegree)
	fmt.Printf("connected: %v\n", s.Connected)

	// Sample the end-to-end latency distribution between overlay hosts.
	net, err := topology.Attach(u.Model, u.Graph, topology.AttachOptions{
		Hosts: *nodes, Routers: u.HostCandidates, Spread: true,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}
	var sum, min, max float64
	min = 1e18
	const samples = 5000
	for i := 0; i < samples; i++ {
		a, b := rng.Intn(net.Hosts()), rng.Intn(net.Hosts())
		if a == b {
			continue
		}
		l := net.Latency(a, b)
		sum += l
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	fmt.Printf("host-pair latency: %.1f..%.1f ms (mean %.1f over %d samples)\n",
		min, max, sum/samples, samples)

	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			log.Fatal(err)
		}
		if err := topology.WriteDOT(f, u.Graph, *model); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("dot graph written to %s\n", *dot)
	}

	if *rings {
		tbl, err := experiments.RingStatsTable(experiments.Scenario{
			Model: *model, Nodes: *nodes, Seed: *seed, Routers: *routers,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		tbl.Render(os.Stdout)
	}
}
