// Command traceview analyses a routing trace recorded by
// `hieras-sim -trace`: descriptive statistics, lower-layer shares, and the
// paper-style hop PDF and latency CDF.
//
// Usage:
//
//	hieras-sim -nodes 1000 -trace run.csv
//	traceview run.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traceview: ")
	full := flag.Bool("dist", false, "also print the full hop PDF and latency CDF")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: traceview [-dist] <trace.csv>")
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	records, err := trace.Read(f)
	if err != nil {
		log.Fatal(err)
	}
	a, err := trace.Analyze(records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("requests: %d\n", a.Requests)
	fmt.Printf("hops:     mean %.3f  p50 %.0f  p90 %.0f  p99 %.0f  max %.0f\n",
		a.Hops.Mean, a.Hops.P50, a.Hops.P90, a.Hops.P99, a.Hops.Max)
	fmt.Printf("latency:  mean %.1f ms  p50 %.1f  p90 %.1f  p99 %.1f  max %.1f\n",
		a.Latency.Mean, a.Latency.P50, a.Latency.P90, a.Latency.P99, a.Latency.Max)
	fmt.Printf("lower-layer shares: %.1f%% of hops, %.1f%% of latency\n",
		100*a.LowerHopShare, 100*a.LowerLatencyShare)
	if *full {
		fmt.Println("\nhops pdf:")
		for _, p := range a.HopsPDF {
			fmt.Printf("  %3.0f  %.4f\n", p.X, p.Y)
		}
		fmt.Println("latency cdf (20 ms buckets):")
		for _, p := range a.LatencyCDF {
			fmt.Printf("  %6.0f  %.4f\n", p.X, p.Y)
		}
	}
}
