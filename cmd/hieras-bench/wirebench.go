// wirebench.go benchmarks the wire path itself on the live node stack:
// the same in-process MemNet cluster runs a concurrent lookup workload
// twice — once over the pre-overhaul wire configuration (gob codec, one
// connection per call) and once over the overhauled one (binary codec,
// pooled multiplexed connections) — and the result is written as the
// repo's wire benchmark-trajectory artifact (BENCH_wire.json) so CI can
// chart the speedup and allocation ratio across commits.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/wire"
)

// wireMode summarises one wire configuration's lookup run.
type wireMode struct {
	Codec         string  `json:"codec"`
	Pooled        bool    `json:"pooled"`
	Lookups       int     `json:"lookups"`
	Seconds       float64 `json:"seconds"`
	LookupsPerSec float64 `json:"lookups_per_sec"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
}

// wireBenchResult is the BENCH_wire.json schema. Fields are stable: CI
// trajectory tooling reads them across commits.
type wireBenchResult struct {
	Bench      string   `json:"bench"`
	Seed       int64    `json:"seed"`
	Nodes      int      `json:"nodes"`
	Depth      int      `json:"depth"`
	Workers    int      `json:"workers"`
	Baseline   wireMode `json:"baseline"`
	Overhauled wireMode `json:"overhauled"`
	// Speedup is Overhauled.LookupsPerSec / Baseline.LookupsPerSec; the
	// acceptance floor for the overhaul is 3x.
	Speedup float64 `json:"speedup"`
	// AllocsRatio is Overhauled.AllocsPerOp / Baseline.AllocsPerOp; the
	// acceptance ceiling is 0.25.
	AllocsRatio float64 `json:"allocs_ratio"`
}

// wireCluster starts n transport nodes on one MemNet with the given wire
// configuration, bootstraps the overlay, and converges it. The location
// cache stays off and coalescing stays off so the benchmark measures the
// wire path, not the caches above it.
func wireCluster(n int, codec wire.Codec, poolSize int) ([]*transport.Node, error) {
	mem := wire.NewMemNet()
	addr := func(i int) string { return fmt.Sprintf("n%d", i) }
	coord := func(i int) [2]float64 {
		if i%2 == 0 {
			return [2]float64{float64(i), float64(i % 7)}
		}
		return [2]float64{500 + float64(i), float64(i % 7)}
	}
	nodes := make([]*transport.Node, 0, n)
	for i := 0; i < n; i++ {
		ln, err := mem.Listen(addr(i))
		if err != nil {
			return nil, err
		}
		nd, err := transport.Start("", transport.Config{
			Depth:       2,
			Landmarks:   []string{addr(0), addr(1)},
			Coord:       coord(i),
			CallTimeout: 2 * time.Second,
			Codec:       codec,
			PoolSize:    poolSize,
			Retry:       wire.RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Microsecond, MaxBackoff: time.Millisecond},
			Breaker:     wire.BreakerPolicy{Threshold: -1},
			Listener:    ln,
			Dial:        mem.Dial,
		})
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, nd)
	}
	if err := nodes[0].CreateNetwork(); err != nil {
		return nil, err
	}
	for i := 1; i < n; i++ {
		if err := nodes[i].Join(addr(0)); err != nil {
			return nil, err
		}
	}
	for round := 0; round < 4; round++ {
		for _, nd := range nodes {
			if err := nd.StabilizeOnce(); err != nil {
				return nil, err
			}
		}
	}
	for _, nd := range nodes {
		if err := nd.BuildAllFingers(); err != nil {
			return nil, err
		}
	}
	return nodes, nil
}

// runWireMode runs the concurrent lookup workload against a fresh
// cluster in one wire configuration and reports its throughput, tail
// latency and allocations per lookup.
func runWireMode(codec wire.Codec, poolSize int, lookups, workers int, seed int64) (wireMode, error) {
	const clusterSize = 8
	mode := wireMode{
		Codec:   codec.Name(),
		Pooled:  poolSize >= 0,
		Lookups: lookups,
	}
	nodes, err := wireCluster(clusterSize, codec, poolSize)
	if err != nil {
		return mode, fmt.Errorf("wire bench cluster (%s): %w", codec.Name(), err)
	}
	defer func() {
		for _, nd := range nodes {
			_ = nd.Close()
		}
	}()

	key := func(i int) string { return fmt.Sprintf("wire-bench-%d-%d", seed, i) }
	// Warm up: touch every key origin pair once so pools are dialed and
	// fingers exercised before the measured window.
	for i := 0; i < 2*clusterSize; i++ {
		if _, werr := nodes[i%clusterSize].Lookup(context.Background(), transport.LiveKeyID(key(i))); werr != nil {
			return mode, fmt.Errorf("wire bench warmup %d: %w", i, werr)
		}
	}

	perWorker := lookups / workers
	mode.Lookups = perWorker * workers
	sketches := make([]*stats.Sketch, workers)
	for i := range sketches {
		if sketches[i], err = stats.NewSketch(0.01); err != nil {
			return mode, err
		}
	}
	errs := make([]error, workers)

	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	allocsBefore := ms.Mallocs

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				seq := w*perWorker + i
				origin := nodes[(seq*5+w)%clusterSize]
				target := transport.LiveKeyID(key(seq % (4 * clusterSize)))
				opStart := time.Now()
				if _, err := origin.Lookup(context.Background(), target); err != nil {
					errs[w] = fmt.Errorf("lookup %d: %w", seq, err)
					return
				}
				if err := sketches[w].Add(time.Since(opStart).Seconds() * 1e3); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	mode.Seconds = time.Since(start).Seconds()
	runtime.ReadMemStats(&ms)
	for _, err := range errs {
		if err != nil {
			return mode, err
		}
	}

	merged := sketches[0]
	for _, s := range sketches[1:] {
		if err := merged.Merge(s); err != nil {
			return mode, err
		}
	}
	mode.LookupsPerSec = float64(mode.Lookups) / mode.Seconds
	mode.P50Ms = merged.Quantile(0.5)
	mode.P99Ms = merged.Quantile(0.99)
	mode.AllocsPerOp = float64(ms.Mallocs-allocsBefore) / float64(mode.Lookups)
	return mode, nil
}

// runWireBench runs both wire configurations and writes the JSON
// artifact to path, echoing a summary to out.
func runWireBench(seed int64, lookups int, path string, out io.Writer) error {
	const workers = 4
	res := wireBenchResult{Bench: "wire", Seed: seed, Nodes: 8, Depth: 2, Workers: workers}

	baseline, err := runWireMode(wire.Gob{}, -1, lookups, workers, seed)
	if err != nil {
		return err
	}
	res.Baseline = baseline

	overhauled, err := runWireMode(wire.Binary{}, 0, lookups, workers, seed)
	if err != nil {
		return err
	}
	res.Overhauled = overhauled

	if baseline.LookupsPerSec > 0 {
		res.Speedup = overhauled.LookupsPerSec / baseline.LookupsPerSec
	}
	if baseline.AllocsPerOp > 0 {
		res.AllocsRatio = overhauled.AllocsPerOp / baseline.AllocsPerOp
	}

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wire bench (%d nodes, %d workers): baseline %s/per-call %.0f lookups/s (p50 %.3fms p99 %.3fms, %.0f allocs/op); overhauled %s/pooled %.0f lookups/s (p50 %.3fms p99 %.3fms, %.0f allocs/op); speedup %.2fx, allocs ratio %.3f -> %s\n",
		res.Nodes, res.Workers,
		baseline.Codec, baseline.LookupsPerSec, baseline.P50Ms, baseline.P99Ms, baseline.AllocsPerOp,
		overhauled.Codec, overhauled.LookupsPerSec, overhauled.P50Ms, overhauled.P99Ms, overhauled.AllocsPerOp,
		res.Speedup, res.AllocsRatio, path)
	return nil
}
