// Command hieras-bench runs the paper's full evaluation suite — every
// table and figure of §4 plus the overhead analysis — and prints the
// results as aligned text tables (EXPERIMENTS.md is generated from this
// output).
//
// By default the suite runs at 10% of paper scale so it completes in a
// few minutes on a laptop; -paper restores the original 1000-10000 node /
// 100000-request configurations.
//
// Usage:
//
//	hieras-bench                  # scaled-down full suite
//	hieras-bench -scale 0.05      # even smaller
//	hieras-bench -paper           # full paper scale (slow)
//	hieras-bench -only fig6,fig7  # subset
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/cache"
	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hieras-bench: ")

	var (
		scale     = flag.Float64("scale", 0.1, "scale factor on the paper's node counts")
		paper     = flag.Bool("paper", false, "run at full paper scale (overrides -scale)")
		seed      = flag.Int64("seed", 2003, "base random seed")
		workers   = flag.Int("workers", 0, "batch-engine workers per comparison (0 = all CPUs)")
		only      = flag.String("only", "", "comma-separated subset: t1,t2,t3,fig2..fig9,overhead,algos,can,resilience,cache")
		dumpMet   = flag.Bool("metrics", false, "dump the cache study's Prometheus-text metrics after the run")
		kvOut     = flag.String("kv-bench", "", "run the replicated-KV benchmark on the live stack and write its JSON artifact here (e.g. BENCH_kv.json); skips the paper suite unless -only is also given")
		kvKeys    = flag.Int("kv-keys", 400, "distinct keys the KV benchmark writes (gets run 2x)")
		wireOut   = flag.String("wire-bench", "", "run the wire-path benchmark (gob/per-call baseline vs binary/pooled) and write its JSON artifact here (e.g. BENCH_wire.json); skips the paper suite unless -only is also given")
		wireOps   = flag.Int("wire-lookups", 4000, "lookups per wire configuration in the wire benchmark")
		routesOut = flag.String("routes-bench", "", "run the route-mode benchmark (classic vs cached vs onehop, plus live gossip cost) and write its JSON artifact here (e.g. BENCH_routes.json); skips the paper suite unless -only is also given")
		routesOps = flag.Int("routes-lookups", 4000, "lookups per route mode in the routes benchmark")
	)
	flag.Parse()

	ranArtifact := false
	if *kvOut != "" {
		fatalIf(runKVBench(*seed, *kvKeys, *kvOut, os.Stdout))
		ranArtifact = true
	}
	if *wireOut != "" {
		fatalIf(runWireBench(*seed, *wireOps, *wireOut, os.Stdout))
		ranArtifact = true
	}
	if *routesOut != "" {
		fatalIf(runRoutesBench(*seed, *routesOps, *routesOut, os.Stdout))
		ranArtifact = true
	}
	if ranArtifact && *only == "" {
		return
	}

	sc := *scale
	requests := 10000
	if *paper {
		sc = 1.0
		requests = 100000
	}
	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	run := func(k string) bool { return len(want) == 0 || want[k] }
	out := os.Stdout

	scaleInt := func(n int) int {
		v := int(float64(n) * sc)
		if v < 50 {
			v = 50
		}
		return v
	}
	base := experiments.Scenario{
		Nodes:    scaleInt(10000),
		Requests: requests,
		Seed:     *seed,
		Workers:  *workers,
	}

	if run("t1") {
		tbl, err := experiments.Table1()
		fatalIf(err)
		tbl.Render(out)
		fmt.Fprintln(out)
	}
	if run("t2") {
		tbl, err := experiments.Table2(experiments.Scenario{Nodes: scaleInt(1000), Seed: *seed, Workers: *workers})
		fatalIf(err)
		tbl.Render(out)
		fmt.Fprintln(out)
	}
	if run("t3") {
		tbl, err := experiments.Table3(experiments.Scenario{Nodes: scaleInt(800), Seed: *seed, Workers: *workers})
		fatalIf(err)
		tbl.Render(out)
		fmt.Fprintln(out)
	}
	if run("fig2") || run("fig3") {
		fmt.Fprintf(out, "[running size sweep at scale %.2f, %d requests per point]\n", sc, requests)
		res, err := experiments.Figures2and3(base, experiments.DefaultSizes(sc))
		fatalIf(err)
		res.HopsTable().Render(out)
		fmt.Fprintln(out)
		res.LatencyTable().Render(out)
		fmt.Fprintln(out)
	}
	if run("fig4") || run("fig5") {
		res, err := experiments.Figures4and5(base)
		fatalIf(err)
		res.PDFTable().Render(out)
		fmt.Fprintln(out)
		res.CDFTable().Render(out)
		fmt.Fprintln(out)
		res.SummaryTable().Render(out)
		fmt.Fprintln(out)
	}
	if run("fig6") || run("fig7") {
		res, err := experiments.Figures6and7(base, []int{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
		fatalIf(err)
		res.HopsTable().Render(out)
		fmt.Fprintln(out)
		res.LatencyTable().Render(out)
		fmt.Fprintln(out)
	}
	if run("fig8") || run("fig9") {
		sizes := []int{scaleInt(5000), scaleInt(6000), scaleInt(7000), scaleInt(8000), scaleInt(9000), scaleInt(10000)}
		db := base
		db.Landmarks = 6
		res, err := experiments.Figures8and9(db, sizes, []int{2, 3, 4})
		fatalIf(err)
		res.HopsTable().Render(out)
		fmt.Fprintln(out)
		res.LatencyTable().Render(out)
		fmt.Fprintln(out)
	}
	if run("overhead") {
		res, err := experiments.Overhead(experiments.Scenario{
			Nodes: scaleInt(1000), Seed: *seed, Requests: 100, Workers: *workers,
		}, []int{1, 2, 3, 4})
		fatalIf(err)
		res.Table().Render(out)
		fmt.Fprintln(out)
	}
	if run("algos") {
		res, err := experiments.CompareAlgorithms(experiments.Scenario{
			Nodes: scaleInt(3000), Requests: requests, Seed: *seed, Workers: *workers,
		})
		fatalIf(err)
		res.Table().Render(out)
		fmt.Fprintln(out)
	}
	if run("can") {
		res, err := experiments.CompareCAN(experiments.Scenario{
			Nodes: scaleInt(4000), Requests: requests, Seed: *seed, Workers: *workers,
		})
		fatalIf(err)
		res.Table().Render(out)
		fmt.Fprintln(out)
	}
	if run("resilience") {
		res, err := experiments.FailureResilience(experiments.Scenario{
			Nodes: scaleInt(3000), Requests: requests / 5, Seed: *seed, Workers: *workers,
		}, []float64{0, 0.1, 0.2, 0.3, 0.4})
		fatalIf(err)
		res.Table().Render(out)
		fmt.Fprintln(out)
	}
	if run("cache") {
		sc := experiments.Scenario{
			Nodes: scaleInt(2000), Requests: requests, Seed: *seed, Workers: *workers,
		}
		if *dumpMet {
			sc.Metrics = metrics.NewRegistry()
		}
		res, err := experiments.CacheStudy(sc, []int{16, 64, 256, 1024}, cache.CacheAlongPath)
		fatalIf(err)
		res.Table().Render(out)
		if *dumpMet {
			fmt.Fprintln(out, "\n# metrics")
			if _, err := sc.Metrics.WriteTo(out); err != nil {
				fatalIf(err)
			}
		}
	}
}

func fatalIf(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
