// kvbench.go benchmarks the replicated KV on the live node stack: an
// in-process MemNet cluster performs quorum puts and gets, latencies
// feed quantile sketches, and the result is written as the repo's
// benchmark-trajectory artifact (BENCH_kv.json) so CI can chart
// throughput and quorum tail latency across commits.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/replica"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/wire"
)

// kvPhase summarises one operation type's run.
type kvPhase struct {
	Ops       int     `json:"ops"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

// kvBenchResult is the BENCH_kv.json schema. Fields are stable: CI
// trajectory tooling reads them across commits.
type kvBenchResult struct {
	Bench       string `json:"bench"`
	Seed        int64  `json:"seed"`
	Nodes       int    `json:"nodes"`
	Keys        int    `json:"keys"`
	ValueBytes  int    `json:"value_bytes"`
	Replication struct {
		Factor      int `json:"factor"`
		WriteQuorum int `json:"write_quorum"`
		ReadQuorum  int `json:"read_quorum"`
	} `json:"replication"`
	Puts kvPhase `json:"puts"`
	Gets kvPhase `json:"gets"`
}

// kvCluster starts n transport nodes on one MemNet with the given
// replication options, bootstraps the overlay, and converges it.
func kvCluster(n int, opts replica.Options) ([]*transport.Node, error) {
	mem := wire.NewMemNet()
	addr := func(i int) string { return fmt.Sprintf("n%d", i) }
	coord := func(i int) [2]float64 {
		if i%2 == 0 {
			return [2]float64{float64(i), float64(i % 7)}
		}
		return [2]float64{500 + float64(i), float64(i % 7)}
	}
	nodes := make([]*transport.Node, 0, n)
	for i := 0; i < n; i++ {
		ln, err := mem.Listen(addr(i))
		if err != nil {
			return nil, err
		}
		nd, err := transport.Start("", transport.Config{
			Depth:       2,
			Landmarks:   []string{addr(0), addr(1)},
			Coord:       coord(i),
			CallTimeout: 2 * time.Second,
			Retry:       wire.RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Microsecond, MaxBackoff: time.Millisecond},
			Breaker:     wire.BreakerPolicy{Threshold: -1},
			Replication: opts,
			Listener:    ln,
			Dial:        mem.Dial,
		})
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, nd)
	}
	if err := nodes[0].CreateNetwork(); err != nil {
		return nil, err
	}
	for i := 1; i < n; i++ {
		if err := nodes[i].Join(addr(0)); err != nil {
			return nil, err
		}
	}
	for round := 0; round < 4; round++ {
		for _, nd := range nodes {
			if err := nd.StabilizeOnce(); err != nil {
				return nil, err
			}
		}
	}
	for _, nd := range nodes {
		if err := nd.BuildAllFingers(); err != nil {
			return nil, err
		}
	}
	return nodes, nil
}

// runKVBench runs the replicated-KV benchmark and writes the JSON
// artifact to path, echoing a summary to out.
func runKVBench(seed int64, keys int, path string, out io.Writer) error {
	const clusterSize = 8
	opts := replica.Options{Factor: 3, WriteQuorum: 2, ReadQuorum: 2}
	nodes, err := kvCluster(clusterSize, opts)
	if err != nil {
		return fmt.Errorf("kv bench cluster: %w", err)
	}
	defer func() {
		for _, nd := range nodes {
			_ = nd.Close()
		}
	}()

	res := kvBenchResult{Bench: "kv", Seed: seed, Nodes: clusterSize, Keys: keys}
	resolved := opts.WithDefaults()
	res.Replication.Factor = resolved.Factor
	res.Replication.WriteQuorum = resolved.WriteQuorum
	res.Replication.ReadQuorum = resolved.ReadQuorum

	value := make([]byte, 64)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	res.ValueBytes = len(value)

	putQ, err := stats.NewSketch(0.01)
	if err != nil {
		return err
	}
	getQ, err := stats.NewSketch(0.01)
	if err != nil {
		return err
	}
	key := func(i int) string { return fmt.Sprintf("bench-k-%04d", i) }

	putStart := time.Now()
	for i := 0; i < keys; i++ {
		origin := nodes[i%clusterSize]
		opStart := time.Now()
		if putErr := origin.Put(context.Background(), key(i), value); putErr != nil {
			return fmt.Errorf("bench put %d: %w", i, putErr)
		}
		if addErr := putQ.Add(time.Since(opStart).Seconds() * 1e3); addErr != nil {
			return addErr
		}
	}
	putElapsed := time.Since(putStart).Seconds()

	gets := 2 * keys
	getStart := time.Now()
	for i := 0; i < gets; i++ {
		origin := nodes[(i*3+1)%clusterSize]
		opStart := time.Now()
		if _, getErr := origin.Get(context.Background(), key(i%keys)); getErr != nil {
			return fmt.Errorf("bench get %d: %w", i, getErr)
		}
		if addErr := getQ.Add(time.Since(opStart).Seconds() * 1e3); addErr != nil {
			return addErr
		}
	}
	getElapsed := time.Since(getStart).Seconds()

	res.Puts = kvPhase{
		Ops: keys, Seconds: putElapsed, OpsPerSec: float64(keys) / putElapsed,
		P50Ms: putQ.Quantile(0.5), P99Ms: putQ.Quantile(0.99),
	}
	res.Gets = kvPhase{
		Ops: gets, Seconds: getElapsed, OpsPerSec: float64(gets) / getElapsed,
		P50Ms: getQ.Quantile(0.5), P99Ms: getQ.Quantile(0.99),
	}

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "kv bench (r=%d W=%d R=%d, %d nodes): %d puts @ %.0f/s (p50 %.3fms p99 %.3fms), %d gets @ %.0f/s (p50 %.3fms p99 %.3fms) -> %s\n",
		res.Replication.Factor, res.Replication.WriteQuorum, res.Replication.ReadQuorum, res.Nodes,
		res.Puts.Ops, res.Puts.OpsPerSec, res.Puts.P50Ms, res.Puts.P99Ms,
		res.Gets.Ops, res.Gets.OpsPerSec, res.Gets.P50Ms, res.Gets.P99Ms, path)
	return nil
}
