// kvbench.go benchmarks the replicated KV on the live node stack: an
// in-process MemNet cluster performs quorum puts and gets, latencies
// feed quantile sketches, and the result is written as the repo's
// benchmark-trajectory artifact (BENCH_kv.json) so CI can chart
// throughput and quorum tail latency across commits.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/replica"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/wire"
)

// kvPhase summarises one operation type's run.
type kvPhase struct {
	Ops       int     `json:"ops"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

// kvSync summarises the anti-entropy sync-bandwidth phase: after a
// sparse slice of the keyspace is forced divergent, how many wire bytes
// the digest-based rounds shipped to re-converge it, against the
// analytic cost of the same number of full-transfer sweep rounds.
type kvSync struct {
	Rounds           int     `json:"rounds"`
	DivergedKeys     int     `json:"diverged_keys"`
	AntiEntropyBytes uint64  `json:"antientropy_bytes"`
	FullSweepBytes   uint64  `json:"full_sweep_bytes"`
	Ratio            float64 `json:"ratio"`
}

// kvBenchResult is the BENCH_kv.json schema. Fields are stable: CI
// trajectory tooling reads them across commits.
type kvBenchResult struct {
	Bench       string `json:"bench"`
	Seed        int64  `json:"seed"`
	Nodes       int    `json:"nodes"`
	Keys        int    `json:"keys"`
	ValueBytes  int    `json:"value_bytes"`
	Replication struct {
		Factor      int `json:"factor"`
		WriteQuorum int `json:"write_quorum"`
		ReadQuorum  int `json:"read_quorum"`
	} `json:"replication"`
	Puts kvPhase `json:"puts"`
	Gets kvPhase `json:"gets"`
	Sync kvSync  `json:"sync"`
}

// kvCounter reads one un-labelled counter from a node's metrics
// exposition.
func kvCounter(nd *transport.Node, name string) (uint64, error) {
	var b strings.Builder
	if _, err := nd.Metrics().WriteTo(&b); err != nil {
		return 0, err
	}
	for _, line := range strings.Split(b.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				return 0, fmt.Errorf("metric %s: parse %q: %w", name, rest, err)
			}
			return uint64(v), nil
		}
	}
	return 0, fmt.Errorf("metric %s not in exposition", name)
}

// kvClusterCounter sums one counter across the cluster.
func kvClusterCounter(nodes []*transport.Node, name string) (uint64, error) {
	var total uint64
	for _, nd := range nodes {
		v, err := kvCounter(nd, name)
		if err != nil {
			return 0, err
		}
		total += v
	}
	return total, nil
}

// kvCluster starts n transport nodes on one MemNet with the given
// replication options, bootstraps the overlay, and converges it. The
// MemNet is returned so the sync phase can inject divergent replicas
// directly over the wire.
func kvCluster(n int, opts replica.Options) (*wire.MemNet, []*transport.Node, error) {
	mem := wire.NewMemNet()
	addr := func(i int) string { return fmt.Sprintf("n%d", i) }
	coord := func(i int) [2]float64 {
		if i%2 == 0 {
			return [2]float64{float64(i), float64(i % 7)}
		}
		return [2]float64{500 + float64(i), float64(i % 7)}
	}
	nodes := make([]*transport.Node, 0, n)
	for i := 0; i < n; i++ {
		ln, err := mem.Listen(addr(i))
		if err != nil {
			return nil, nil, err
		}
		nd, err := transport.Start("", transport.Config{
			Depth:       2,
			Landmarks:   []string{addr(0), addr(1)},
			Coord:       coord(i),
			CallTimeout: 2 * time.Second,
			Retry:       wire.RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Microsecond, MaxBackoff: time.Millisecond},
			Breaker:     wire.BreakerPolicy{Threshold: -1},
			Replication: opts,
			Listener:    ln,
			Dial:        mem.Dial,
		})
		if err != nil {
			return nil, nil, err
		}
		nodes = append(nodes, nd)
	}
	if err := nodes[0].CreateNetwork(); err != nil {
		return nil, nil, err
	}
	for i := 1; i < n; i++ {
		if err := nodes[i].Join(addr(0)); err != nil {
			return nil, nil, err
		}
	}
	for round := 0; round < 4; round++ {
		for _, nd := range nodes {
			if err := nd.StabilizeOnce(); err != nil {
				return nil, nil, err
			}
		}
	}
	for _, nd := range nodes {
		if err := nd.BuildAllFingers(); err != nil {
			return nil, nil, err
		}
	}
	return mem, nodes, nil
}

// runKVBench runs the replicated-KV benchmark and writes the JSON
// artifact to path, echoing a summary to out.
func runKVBench(seed int64, keys int, path string, out io.Writer) error {
	const clusterSize = 8
	opts := replica.Options{Factor: 3, WriteQuorum: 2, ReadQuorum: 2}
	mem, nodes, err := kvCluster(clusterSize, opts)
	if err != nil {
		return fmt.Errorf("kv bench cluster: %w", err)
	}
	defer func() {
		for _, nd := range nodes {
			_ = nd.Close()
		}
	}()

	res := kvBenchResult{Bench: "kv", Seed: seed, Nodes: clusterSize, Keys: keys}
	resolved := opts.WithDefaults()
	res.Replication.Factor = resolved.Factor
	res.Replication.WriteQuorum = resolved.WriteQuorum
	res.Replication.ReadQuorum = resolved.ReadQuorum

	value := make([]byte, 64)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	res.ValueBytes = len(value)

	putQ, err := stats.NewSketch(0.01)
	if err != nil {
		return err
	}
	getQ, err := stats.NewSketch(0.01)
	if err != nil {
		return err
	}
	key := func(i int) string { return fmt.Sprintf("bench-k-%04d", i) }

	putStart := time.Now()
	for i := 0; i < keys; i++ {
		origin := nodes[i%clusterSize]
		opStart := time.Now()
		if putErr := origin.Put(context.Background(), key(i), value); putErr != nil {
			return fmt.Errorf("bench put %d: %w", i, putErr)
		}
		if addErr := putQ.Add(time.Since(opStart).Seconds() * 1e3); addErr != nil {
			return addErr
		}
	}
	putElapsed := time.Since(putStart).Seconds()

	gets := 2 * keys
	getStart := time.Now()
	for i := 0; i < gets; i++ {
		origin := nodes[(i*3+1)%clusterSize]
		opStart := time.Now()
		if _, getErr := origin.Get(context.Background(), key(i%keys)); getErr != nil {
			return fmt.Errorf("bench get %d: %w", i, getErr)
		}
		if addErr := getQ.Add(time.Since(opStart).Seconds() * 1e3); addErr != nil {
			return addErr
		}
	}
	getElapsed := time.Since(getStart).Seconds()

	res.Puts = kvPhase{
		Ops: keys, Seconds: putElapsed, OpsPerSec: float64(keys) / putElapsed,
		P50Ms: putQ.Quantile(0.5), P99Ms: putQ.Quantile(0.99),
	}
	res.Gets = kvPhase{
		Ops: gets, Seconds: getElapsed, OpsPerSec: float64(gets) / getElapsed,
		P50Ms: getQ.Quantile(0.5), P99Ms: getQ.Quantile(0.99),
	}

	// Sync-bandwidth phase: force a sparse slice of the keyspace (2%)
	// divergent by installing a higher-versioned replica on exactly one
	// current holder of each key, then count the wire bytes the
	// digest-based anti-entropy rounds ship to re-converge — against the
	// analytic cost of the same number of full-transfer sweep rounds.
	// Sparse divergence is the regime anti-entropy is built for: a dirty
	// key costs its digest bucket, not the whole range, so most of the
	// keyspace is never re-shipped.
	diverged := keys / 50
	if diverged < 1 {
		diverged = 1
	}
	divValue := bytes.Repeat([]byte{'Z'}, len(value))
	for i := 0; i < diverged; i++ {
		k := key(i)
		holder := ""
		for _, nd := range nodes {
			if _, held := nd.GetLocal(k); held {
				holder = nd.Addr()
				break
			}
		}
		if holder == "" {
			return fmt.Errorf("sync phase: no replica holds %s", k)
		}
		item := wire.StoreItem{Key: k, Value: divValue, Version: 1<<40 + uint64(i), Writer: "bench-diverge"}
		callCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		resp, callErr := wire.CallVia(callCtx, mem.Dial, nil, holder, wire.Request{Type: wire.TReplicate, Items: []wire.StoreItem{item}})
		cancel()
		if callErr != nil {
			return fmt.Errorf("sync phase: inject divergent %s on %s: %w", k, holder, callErr)
		}
		if !resp.OK || resp.Applied != 1 {
			return fmt.Errorf("sync phase: divergent %s not applied on %s", k, holder)
		}
	}

	aeBefore, err := kvClusterCounter(nodes, "antientropy_bytes_total")
	if err != nil {
		return err
	}
	const syncRounds = 4
	for round := 0; round < syncRounds; round++ {
		for _, nd := range nodes {
			if _, _, _, aeErr := nd.ReplicaAntiEntropyOnce(); aeErr != nil {
				return fmt.Errorf("sync phase: anti-entropy round %d on %s: %w", round, nd.Addr(), aeErr)
			}
		}
	}
	aeAfter, err := kvClusterCounter(nodes, "antientropy_bytes_total")
	if err != nil {
		return err
	}
	var sweepRound uint64
	for _, nd := range nodes {
		b, sweepErr := nd.ReplicaFullSweepBytes()
		if sweepErr != nil {
			return fmt.Errorf("sync phase: full-sweep baseline on %s: %w", nd.Addr(), sweepErr)
		}
		sweepRound += b
	}
	res.Sync = kvSync{
		Rounds:           syncRounds,
		DivergedKeys:     diverged,
		AntiEntropyBytes: aeAfter - aeBefore,
		FullSweepBytes:   sweepRound * syncRounds,
	}
	if res.Sync.FullSweepBytes > 0 {
		res.Sync.Ratio = float64(res.Sync.AntiEntropyBytes) / float64(res.Sync.FullSweepBytes)
	}
	// The divergent versions out-stamp the benchmark's writes, so a
	// quorum read must now return them — otherwise the rounds above did
	// not actually converge and the byte figures are meaningless.
	converged, err := nodes[1].Get(context.Background(), key(0))
	if err != nil {
		return fmt.Errorf("sync phase: read-back after convergence: %w", err)
	}
	if !bytes.Equal(converged, divValue) {
		return fmt.Errorf("sync phase: %s did not converge to the injected version", key(0))
	}

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "kv bench (r=%d W=%d R=%d, %d nodes): %d puts @ %.0f/s (p50 %.3fms p99 %.3fms), %d gets @ %.0f/s (p50 %.3fms p99 %.3fms), sync %dB vs %dB full-sweep (%.1f%%) -> %s\n",
		res.Replication.Factor, res.Replication.WriteQuorum, res.Replication.ReadQuorum, res.Nodes,
		res.Puts.Ops, res.Puts.OpsPerSec, res.Puts.P50Ms, res.Puts.P99Ms,
		res.Gets.Ops, res.Gets.OpsPerSec, res.Gets.P50Ms, res.Gets.P99Ms,
		res.Sync.AntiEntropyBytes, res.Sync.FullSweepBytes, 100*res.Sync.Ratio, path)
	return nil
}
