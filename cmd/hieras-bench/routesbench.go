// routesbench.go benchmarks the route acceleration tiers against each
// other and prices their maintenance. The sim section routes one
// deterministic request stream through the same transit-stub overlay in
// all three -route-mode configurations — classic hierarchical walk,
// verified location cache, one-hop full table — and reports throughput,
// hops and simulated-latency tails per mode. The live section converges
// an in-process MemNet cluster running the onehop tier and reports the
// gossip cost of getting there: route-gossip bytes against total RPC
// bytes, plus the verified 1-hop rate the spend buys. The result is
// written as BENCH_routes.json so CI can hold the 1-hop rate to its
// floor and the maintenance share to its ceiling across commits.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"sort"
	"time"

	hieras "repro"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/wire"
)

// routeModeResult summarises one route mode's run over the shared
// request stream.
type routeModeResult struct {
	LookupsPerSec float64 `json:"lookups_per_sec"`
	MeanHops      float64 `json:"mean_hops"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	// HitRate is the fraction of lookups answered by the tier's fast
	// path (cache hit or verified one-hop answer); 0 for classic.
	HitRate float64 `json:"hit_rate"`
}

// routesBenchResult is the BENCH_routes.json schema. Fields are stable:
// CI trajectory tooling reads them across commits.
type routesBenchResult struct {
	Bench string `json:"bench"`
	Seed  int64  `json:"seed"`
	Sim   struct {
		Nodes    int                        `json:"nodes"`
		Requests int                        `json:"requests"`
		Modes    map[string]routeModeResult `json:"modes"`
	} `json:"sim"`
	Live struct {
		Nodes           int     `json:"nodes"`
		StabilizeRounds int     `json:"stabilize_rounds"`
		Lookups         int     `json:"lookups"`
		OneHopRate      float64 `json:"one_hop_rate"`
		GossipBytes     uint64  `json:"gossip_bytes"`
		RPCBytes        uint64  `json:"rpc_bytes"`
		GossipShare     float64 `json:"gossip_share"`
	} `json:"live"`
}

// measureMode routes the deterministic request stream through one
// Lookuper and summarises it. The stream reuses each key a few times so
// the caching tier gets the repeat traffic it exists for; every mode
// sees the identical stream.
func measureMode(sys *hieras.System, look func(origin int, key string) (hieras.Route, error), requests int) (routeModeResult, error) {
	q, err := stats.NewSketch(0.01)
	if err != nil {
		return routeModeResult{}, err
	}
	distinct := requests / 4
	if distinct < 1 {
		distinct = 1
	}
	hops, hits := 0, 0
	start := time.Now()
	for i := 0; i < requests; i++ {
		origin := (i * 13) % sys.N()
		key := fmt.Sprintf("routes-%d", i%distinct)
		r, err := look(origin, key)
		if err != nil {
			return routeModeResult{}, err
		}
		hops += r.Hops
		if r.CacheHit {
			hits++
		}
		if err := q.Add(r.Latency); err != nil {
			return routeModeResult{}, err
		}
	}
	elapsed := time.Since(start).Seconds()
	return routeModeResult{
		LookupsPerSec: float64(requests) / elapsed,
		MeanHops:      float64(hops) / float64(requests),
		P50Ms:         q.Quantile(0.5),
		P99Ms:         q.Quantile(0.99),
		HitRate:       float64(hits) / float64(requests),
	}, nil
}

// routesCluster starts an n-node MemNet cluster with the one-hop tier
// on, joins everyone, and stabilizes to a fixpoint: every node's route
// table identical with the full membership joined AND a whole round
// changing nobody's snapshot — returning how many rounds that took (the
// number CI watches for convergence regressions). The fixpoint matters:
// route tables fill within a couple of rounds, but a verified one-hop
// answer needs the owner's predecessor pointer settled too, or the
// ownership check at the owner rejects the probe and the lookup falls
// back as stale.
func routesCluster(n int) ([]*transport.Node, int, error) {
	mem := wire.NewMemNet()
	addr := func(i int) string { return fmt.Sprintf("n%d", i) }
	coord := func(i int) [2]float64 {
		if i%2 == 0 {
			return [2]float64{float64(i), float64(i % 7)}
		}
		return [2]float64{500 + float64(i), float64(i % 7)}
	}
	nodes := make([]*transport.Node, 0, n)
	for i := 0; i < n; i++ {
		ln, err := mem.Listen(addr(i))
		if err != nil {
			return nil, 0, err
		}
		nd, err := transport.Start("", transport.Config{
			Depth:       2,
			Landmarks:   []string{addr(0), addr(1)},
			Coord:       coord(i),
			CallTimeout: 2 * time.Second,
			Retry:       wire.RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Microsecond, MaxBackoff: time.Millisecond},
			Breaker:     wire.BreakerPolicy{Threshold: -1},
			RouteMode:   transport.RouteOneHop,
			Listener:    ln,
			Dial:        mem.Dial,
		})
		if err != nil {
			return nil, 0, err
		}
		nodes = append(nodes, nd)
	}
	if err := nodes[0].CreateNetwork(); err != nil {
		return nil, 0, err
	}
	for i := 1; i < n; i++ {
		if err := nodes[i].Join(addr(0)); err != nil {
			return nil, 0, err
		}
	}
	want := make([]string, 0, n)
	for i := 0; i < n; i++ {
		want = append(want, addr(i))
	}
	sort.Strings(want)
	snapshots := func() []transport.Snapshot {
		out := make([]transport.Snapshot, 0, n)
		for _, nd := range nodes {
			out = append(out, nd.Snapshot())
		}
		return out
	}
	prev := snapshots()
	rounds, settled := 0, false
	for ; rounds < 40; rounds++ {
		for _, nd := range nodes {
			if err := nd.StabilizeOnce(); err != nil {
				return nil, 0, err
			}
		}
		cur := snapshots()
		if routesConverged(nodes, want) && reflect.DeepEqual(cur, prev) {
			settled = true
			rounds++
			break
		}
		prev = cur
	}
	if !settled {
		return nil, 0, fmt.Errorf("cluster did not reach a stabilization fixpoint in %d rounds", rounds)
	}
	for _, nd := range nodes {
		if err := nd.BuildAllFingers(); err != nil {
			return nil, 0, err
		}
	}
	return nodes, rounds, nil
}

// routesConverged reports whether every node holds the identical route
// table whose global-ring Join members are exactly the full membership.
func routesConverged(nodes []*transport.Node, want []string) bool {
	ref := nodes[0].Snapshot().Routes
	var members []string
	for _, ev := range ref {
		if ev.Layer == 1 && ev.Kind == wire.RouteJoin {
			members = append(members, ev.Peer.Addr)
		}
	}
	sort.Strings(members)
	if !reflect.DeepEqual(members, want) {
		return false
	}
	for _, nd := range nodes[1:] {
		if !reflect.DeepEqual(nd.Snapshot().Routes, ref) {
			return false
		}
	}
	return true
}

// runRoutesBench runs the route-mode benchmark and writes the JSON
// artifact to path, echoing a summary to out.
func runRoutesBench(seed int64, requests int, path string, out io.Writer) error {
	res := routesBenchResult{Bench: "routes", Seed: seed}

	// Sim section: the same overlay and request stream under all three
	// route modes.
	sys, err := hieras.New(hieras.Options{Nodes: 400, Seed: seed})
	if err != nil {
		return fmt.Errorf("routes bench overlay: %w", err)
	}
	cached, err := sys.Cached(256, true)
	if err != nil {
		return err
	}
	oneHop := sys.OneHop()
	res.Sim.Nodes = sys.N()
	res.Sim.Requests = requests
	res.Sim.Modes = map[string]routeModeResult{}
	for _, m := range []struct {
		name string
		look func(int, string) (hieras.Route, error)
	}{
		{transport.RouteClassic, sys.Lookup},
		{transport.RouteCached, cached.Lookup},
		{transport.RouteOneHop, oneHop.Lookup},
	} {
		r, modeErr := measureMode(sys, m.look, requests)
		if modeErr != nil {
			return fmt.Errorf("routes bench mode %s: %w", m.name, modeErr)
		}
		res.Sim.Modes[m.name] = r
	}

	// Live section: what the tier costs to maintain. Converge an 8-node
	// onehop cluster, serve lookups from its tables, and price the
	// route gossip against the cluster's total RPC volume.
	const clusterSize = 8
	nodes, rounds, err := routesCluster(clusterSize)
	if err != nil {
		return fmt.Errorf("routes bench cluster: %w", err)
	}
	defer func() {
		for _, nd := range nodes {
			_ = nd.Close()
		}
	}()
	res.Live.Nodes = clusterSize
	res.Live.StabilizeRounds = rounds

	const liveLookups = 200
	hitsBefore, err := kvClusterCounter(nodes, "onehop_hits_total")
	if err != nil {
		return err
	}
	for i := 0; i < liveLookups; i++ {
		kid := transport.LiveKeyID(fmt.Sprintf("live-%d", i))
		if _, lookErr := nodes[i%clusterSize].Lookup(context.Background(), kid); lookErr != nil {
			return fmt.Errorf("routes bench live lookup %d: %w", i, lookErr)
		}
	}
	hitsAfter, err := kvClusterCounter(nodes, "onehop_hits_total")
	if err != nil {
		return err
	}
	res.Live.Lookups = liveLookups
	res.Live.OneHopRate = float64(hitsAfter-hitsBefore) / float64(liveLookups)
	if res.Live.GossipBytes, err = kvClusterCounter(nodes, "route_gossip_bytes_total"); err != nil {
		return err
	}
	if res.Live.RPCBytes, err = kvClusterCounter(nodes, "rpc_bytes_out_total"); err != nil {
		return err
	}
	if res.Live.RPCBytes > 0 {
		res.Live.GossipShare = float64(res.Live.GossipBytes) / float64(res.Live.RPCBytes)
	}

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	classic, onehop := res.Sim.Modes[transport.RouteClassic], res.Sim.Modes[transport.RouteOneHop]
	fmt.Fprintf(out, "routes bench (%d sim nodes, %d requests): classic p50 %.1fms, onehop p50 %.1fms @ %.0f%% one-hop; live %d-node cluster converged in %d rounds, gossip %dB of %dB rpc (%.1f%%) -> %s\n",
		res.Sim.Nodes, res.Sim.Requests, classic.P50Ms, onehop.P50Ms, 100*onehop.HitRate,
		res.Live.Nodes, res.Live.StabilizeRounds, res.Live.GossipBytes, res.Live.RPCBytes,
		100*res.Live.GossipShare, path)
	return nil
}
