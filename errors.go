package hieras

import "errors"

// Sentinel errors returned by the facade. They are always wrapped with
// context (the offending value, the valid range), so check them with
// errors.Is, not equality:
//
//	if _, err := sys.Lookup(-1, "k"); errors.Is(err, hieras.ErrOriginOutOfRange) { ... }
var (
	// ErrOriginOutOfRange reports a lookup origin outside [0, N).
	ErrOriginOutOfRange = errors.New("hieras: origin out of range")
	// ErrBadFraction reports a failure fraction outside [0, 1).
	ErrBadFraction = errors.New("hieras: failure fraction out of range")
	// ErrBadOptions reports invalid construction or batch parameters:
	// negative Options fields, an unknown topology model, a non-positive
	// cache capacity, or mismatched BatchLookup slice lengths.
	ErrBadOptions = errors.New("hieras: invalid options")
)
