// Churnstudy: availability of the hierarchical overlay under node
// dynamics. Nodes join, leave and fail as Poisson processes while lookups
// measure routing correctness — quantifying the paper's claim (§3.3) that
// Chord's failure handling carries over to every HIERAS layer.
//
// Run with: go run ./examples/churnstudy
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/churn"
	"repro/internal/topology"
	"repro/internal/topology/transitstub"
)

func main() {
	log.SetFlags(0)

	rng := rand.New(rand.NewSource(11))
	m, err := transitstub.Generate(transitstub.DefaultConfig(120), rng)
	if err != nil {
		log.Fatal(err)
	}
	net, err := topology.Attach(m, m.G, topology.AttachOptions{
		Hosts: 120, Routers: m.StubRouters, Spread: true,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}

	base := churn.Config{
		InitialNodes:     60,
		JoinEvery:        8,
		LookupEvery:      0.4,
		StabilizeEvery:   2,
		Duration:         300,
		Seed:             99,
		Depth:            2,
		Landmarks:        4,
		SuccessorListLen: 6,
	}

	fmt.Println("lookup correctness vs failure intensity (60 initial nodes, 300 s)")
	fmt.Printf("%-22s %10s %10s %10s\n", "mean time between", "failures", "correct", "completed")
	fmt.Printf("%-22s %10s %10s %10s\n", "failures (s)", "", "", "")
	for _, failEvery := range []float64{0, 40, 20, 10, 5} {
		cfg := base
		cfg.FailEvery = failEvery
		res, err := churn.Run(net, cfg)
		if err != nil {
			log.Fatal(err)
		}
		label := "none"
		if failEvery > 0 {
			label = fmt.Sprintf("%.0f", failEvery)
		}
		fmt.Printf("%-22s %10d %9.1f%% %9.1f%%\n",
			label, res.Fails, 100*res.CorrectRate, 100*res.CompletionRate)
	}
	fmt.Println("\nper-layer successor lists keep the hierarchy routable under churn;")
	fmt.Println("correctness dips only while stabilization catches up with failures.")
}
