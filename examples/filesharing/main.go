// Filesharing: the workload that motivated HIERAS. Peers publish file
// locations into a replicated DHT store over the overlay and look them up
// from anywhere; the demo also kills the owner of a hot file and shows the
// read surviving through replicas.
//
// Run with: go run ./examples/filesharing
package main

import (
	"fmt"
	"log"

	hieras "repro"
)

func main() {
	log.SetFlags(0)

	sys, err := hieras.New(hieras.Options{Nodes: 300, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	store, err := sys.Store(3) // owner + 3 replicas
	if err != nil {
		log.Fatal(err)
	}

	// Every tenth peer publishes a file it serves.
	type file struct {
		name, location string
		publisher      int
	}
	var files []file
	for p := 0; p < sys.N(); p += 10 {
		f := file{
			name:      fmt.Sprintf("shared/archive-%03d.tar", p),
			location:  fmt.Sprintf("peer-%d:/data/archive-%03d.tar", p, p),
			publisher: p,
		}
		files = append(files, f)
		if _, putErr := store.Put(f.publisher, f.name, []byte(f.location)); putErr != nil {
			log.Fatal(putErr)
		}
	}
	fmt.Printf("published %d file locations from %d peers\n\n", len(files), len(files))

	// Random peers resolve a few of them.
	var totalMs float64
	var totalHops int
	for i, f := range files[:8] {
		reader := (f.publisher + 137) % sys.N()
		loc, cost, getErr := store.Get(reader, f.name)
		if getErr != nil {
			log.Fatal(getErr)
		}
		totalMs += cost.Latency
		totalHops += cost.Hops
		fmt.Printf("peer %3d resolves %-24s -> %-32s (%d hops, %5.1f ms)\n",
			reader, f.name, loc, cost.Hops, cost.Latency)
		_ = i
	}
	fmt.Printf("\nmean resolution cost: %.1f hops, %.1f ms\n", float64(totalHops)/8, totalMs/8)

	// Failure drill: kill the owner of the first file.
	hot := files[0]
	put, err := store.Put(hot.publisher, hot.name, []byte(hot.location))
	if err != nil {
		log.Fatal(err)
	}
	owner := put.Nodes[0]
	store.MarkDown(owner)
	fmt.Printf("\nowner peer %d of %q failed...\n", owner, hot.name)
	loc, cost, err := store.Get(42, hot.name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("still resolved via %d replica fallback(s): %s (%5.1f ms)\n",
		cost.Fallbacks, loc, cost.Latency)
}
