// Livenet: a real HIERAS deployment in one process. Twelve TCP nodes on
// localhost form a two-layer overlay; virtual coordinates place them in
// two "continents" so the distributed binning scheme builds one ring per
// continent. The demo runs the full §3.3 join protocol, hierarchical
// lookups and put/get over the wire.
//
// Run with: go run ./examples/livenet
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/transport"
)

func main() {
	log.SetFlags(0)

	// Two clusters on the virtual latency plane (coordinates are
	// milliseconds): "west" near the origin, "east" 500 ms away.
	coords := [][2]float64{
		{0, 0}, {510, 505},
		{5, 8}, {515, 500}, {12, 3}, {504, 512},
		{8, 14}, {520, 507}, {3, 6}, {508, 515},
		{10, 10}, {512, 503},
	}
	nodes := make([]*transport.Node, 0, len(coords))
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()

	// Start everyone; the first two nodes double as landmarks.
	var landmarks []string
	for i, c := range coords {
		n, err := transport.Start("127.0.0.1:0", transport.Config{
			Depth:     2,
			Coord:     c,
			Landmarks: landmarks, // empty for the first two; set below
		})
		if err != nil {
			log.Fatal(err)
		}
		nodes = append(nodes, n)
		if i == 1 {
			landmarks = []string{nodes[0].Addr(), nodes[1].Addr()}
		}
	}
	rejoin := func() error {
		if err := nodesWithLandmarks(nodes[0], landmarks).CreateNetwork(); err != nil {
			return err
		}
		for i := 1; i < len(nodes); i++ {
			if err := nodesWithLandmarks(nodes[i], landmarks).Join(nodes[0].Addr()); err != nil {
				return fmt.Errorf("node %d: %w", i, err)
			}
			for r := 0; r < 3; r++ {
				for j := 0; j <= i; j++ {
					if err := nodes[j].StabilizeOnce(); err != nil {
						return err
					}
				}
			}
		}
		for _, n := range nodes {
			if err := n.BuildAllFingers(); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rejoin(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d live nodes joined; binning result:\n", len(nodes))
	for i, n := range nodes {
		side := "west"
		if i%2 == 1 {
			side = "east"
		}
		fmt.Printf("  node %s at %s (%s) -> ring %q\n",
			n.ID().Short(), n.Addr(), side, n.RingNames()[0])
	}

	// Hierarchical lookups over TCP.
	fmt.Println("\nlookups from node 0:")
	for _, key := range []string{"song.mp3", "paper.pdf", "trace.csv"} {
		res, err := nodes[0].Lookup(context.Background(), transport.LiveKeyID(key))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s -> %s (%d hops: %d global, %d in-ring)\n",
			key, res.Owner.Addr, res.Hops, res.LayerHops[0], sum(res.LayerHops[1:]))
	}

	// Put/Get across the wire.
	if err := nodes[3].Put(context.Background(), "greeting", []byte("hello from the east")); err != nil {
		log.Fatal(err)
	}
	v, err := nodes[8].Get(context.Background(), "greeting")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnode 8 reads %q published by node 3: %q\n", "greeting", v)
}

// nodesWithLandmarks injects the landmark list into a node started before
// the landmarks were known (the chicken-and-egg of the first two nodes).
func nodesWithLandmarks(n *transport.Node, landmarks []string) *transport.Node {
	n.SetLandmarks(landmarks)
	return n
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
