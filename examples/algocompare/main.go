// Algocompare: the head-to-head the paper leaves as future work (§6) —
// HIERAS against other latency-aware DHTs on one Transit-Stub internetwork
// with one request stream: flat Chord, Chord with proximity neighbor
// selection, Pastry (locality-aware prefix routing), HIERAS, HIERAS+PNS,
// plus the CAN transplant of §3.2.
//
// Run with: go run ./examples/algocompare
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)

	s := experiments.Scenario{Nodes: 400, Requests: 4000, Seed: 2003}
	fmt.Printf("comparing DHT routing algorithms: %d peers, %d requests, TS underlay\n\n",
		s.Nodes, s.Requests)

	res, err := experiments.CompareAlgorithms(s)
	if err != nil {
		log.Fatal(err)
	}
	res.Table().Render(os.Stdout)

	fmt.Println()
	canRes, err := experiments.CompareCAN(s)
	if err != nil {
		log.Fatal(err)
	}
	canRes.Table().Render(os.Stdout)

	fmt.Println("\nreading the table:")
	fmt.Println("  - Pastry attacks per-hop locality; HIERAS attacks where hops happen.")
	fmt.Println("  - The two compose: HIERAS+PNS stacks both effects.")
	fmt.Println("  - The CAN rows substantiate the paper's claim that the hierarchy")
	fmt.Println("    transplants to any DHT, not just Chord.")
}
