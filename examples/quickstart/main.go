// Quickstart: build a simulated HIERAS system on a Transit-Stub
// internetwork, route a few lookups, and compare against flat Chord.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	hieras "repro"
)

func main() {
	log.SetFlags(0)

	// 500 peers on a GT-ITM Transit-Stub underlay, two-layer hierarchy,
	// four landmarks — the paper's default configuration.
	sys, err := hieras.New(hieras.Options{
		Model:     "ts",
		Nodes:     500,
		Landmarks: 4,
		Depth:     2,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built a depth-%d overlay of %d peers with %d lower-layer rings\n",
		sys.Depth(), sys.N(), sys.NumRings())
	fmt.Printf("peer 0 lives in ring %q (its landmark order)\n\n", sys.RingName(0))

	// Route one lookup both ways.
	for _, key := range []string{"alice/movie.mkv", "bob/thesis.pdf", "carol/dataset.tar"} {
		h, lookupErr := sys.Lookup(0, key)
		if lookupErr != nil {
			log.Fatal(lookupErr)
		}
		c, lookupErr := sys.ChordLookup(0, key)
		if lookupErr != nil {
			log.Fatal(lookupErr)
		}
		fmt.Printf("%-18s -> peer %4d | hieras: %d hops (%d local) %6.1f ms | chord: %d hops %6.1f ms\n",
			key, h.Dest, h.Hops, h.LowerHops, h.Latency, c.Hops, c.Latency)
	}

	// Aggregate comparison over a real workload.
	cmp, err := sys.Compare(5000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nover %d random requests:\n", cmp.Requests)
	fmt.Printf("  avg hops:    hieras %.2f vs chord %.2f (+%.1f%%)\n",
		cmp.HierasHops, cmp.ChordHops, 100*(cmp.HopRatio-1))
	fmt.Printf("  avg latency: hieras %.0f ms vs chord %.0f ms (%.0f%% of chord)\n",
		cmp.HierasLatencyMs, cmp.ChordLatencyMs, 100*cmp.LatencyRatio)
	fmt.Printf("  %.0f%% of hops ran inside low-latency rings\n", 100*cmp.LowerHopShare)
}
