package hieras

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/routes"
	"repro/internal/wire"
)

// Cached wraps the system with per-peer location caches (see
// internal/cache): repeated lookups for popular keys short-circuit to one
// direct hop. alongPath seeds the caches of every peer a lookup traverses
// (DHash-style) instead of only the requester's.
func (s *System) Cached(capacity int, alongPath bool) (*CachedSystem, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("%w: cache capacity %d must be >= 1", ErrBadOptions, capacity)
	}
	policy := cache.CacheAtOrigin
	if alongPath {
		policy = cache.CacheAlongPath
	}
	c, err := cache.New(s.overlay, capacity, policy)
	if err != nil {
		return nil, err
	}
	return &CachedSystem{sys: s, c: c}, nil
}

// CachedSystem is a System with location caching enabled. It implements
// Lookuper; hits are reported via Route.CacheHit.
type CachedSystem struct {
	sys *System
	c   *cache.Overlay
}

// Lookup routes to the owner of key, consulting the requester's cache.
// On a hit the route is the single direct hop and Route.CacheHit is set;
// on a miss the full hierarchical route — lower-layer hop and latency
// accounting included — is returned.
func (cs *CachedSystem) Lookup(origin int, key string) (Route, error) {
	if err := cs.sys.checkOrigin(origin); err != nil {
		return Route{}, err
	}
	res := cs.c.Lookup(origin, core.KeyID(key))
	r := fromResult(res.RouteResult)
	r.CacheHit = res.Hit
	return r, nil
}

// ChordLookup routes over the flat global ring, bypassing the cache — the
// same uncached baseline the underlying System reports.
func (cs *CachedSystem) ChordLookup(origin int, key string) (Route, error) {
	return cs.sys.ChordLookup(origin, key)
}

// HitRate returns the cumulative cache hit rate.
func (cs *CachedSystem) HitRate() float64 { return cs.c.HitRate() }

// OneHop wraps the system with the single-hop route acceleration tier
// (ROADMAP item 2, after Monnerat & Amorim's single-hop DHT): a
// near-full membership table, seeded from the overlay, answers lookups
// with one verified direct hop. The table follows the same
// verify-or-fallback contract the live transport uses — a hint is only
// trusted when the named peer confirms ownership, so a stale table
// costs a wasted probe and a classic fallback walk, never a wrong
// owner. Evict/Restore simulate the staleness window between a
// membership change and the gossip round that repairs it.
func (s *System) OneHop() *OneHopSystem {
	t := routes.New()
	for i := 0; i < s.N(); i++ {
		t.Apply(wire.RouteEvent{
			Layer: 1, Ring: "",
			Peer: wire.Peer{Addr: strconv.Itoa(i), ID: [20]byte(s.overlay.Node(i).ID)},
			Kind: wire.RouteJoin, Stamp: 1,
		})
	}
	os := &OneHopSystem{sys: s, table: t}
	os.members = t.Members(1, "")
	return os
}

// OneHopSystem is a System answering lookups from a near-full one-hop
// route table. It implements Lookuper; verified table answers are
// reported via Route.CacheHit. Safe for concurrent use (BatchLookup
// workers share it).
type OneHopSystem struct {
	sys   *System
	table *routes.Table
	hits  atomic.Uint64
	stale atomic.Uint64
	// members caches the table's layer-1 Join members in ring order, so
	// the per-lookup owner hint is a binary search instead of a rebuild
	// and sort of the full membership. Evict/Restore are the only
	// mutation paths, and they refresh it.
	mu      sync.RWMutex
	members []wire.Peer
}

// ownerHint returns the table's owner candidate for key: the first ring
// member at or after it, wrapping — the same successor rule the live
// transport's route table applies.
func (os *OneHopSystem) ownerHint(key [20]byte) (wire.Peer, bool) {
	os.mu.RLock()
	ring := os.members
	os.mu.RUnlock()
	if len(ring) == 0 {
		return wire.Peer{}, false
	}
	i := sort.Search(len(ring), func(j int) bool {
		return bytes.Compare(ring[j].ID[:], key[:]) >= 0
	})
	return ring[i%len(ring)], true
}

// Lookup resolves key through the one-hop table first. A verified hit
// is the single direct hop to the owner (CacheHit set); a stale or
// missing entry falls back to the full hierarchical route, with the
// wasted verification probe added to the latency on the stale path.
func (os *OneHopSystem) Lookup(origin int, key string) (Route, error) {
	if err := os.sys.checkOrigin(origin); err != nil {
		return Route{}, err
	}
	kid := core.KeyID(key)
	o := os.sys.overlay
	truth := o.Global().SuccessorIndex(kid)
	if hint, ok := os.ownerHint([20]byte(kid)); ok {
		idx, err := strconv.Atoi(hint.Addr)
		if err == nil && idx == truth {
			// Verified: the verification round trip IS the lookup's one hop
			// (free when we own the key ourselves).
			os.hits.Add(1)
			r := Route{Dest: truth, CacheHit: true}
			if truth != origin {
				lat := o.Network().Latency(o.Node(origin).Host, o.Node(truth).Host)
				r.Hops = 1
				r.Latency = lat
			}
			return r, nil
		}
		// Stale: the probe to the wrong peer is a wasted round trip; pay
		// for it on top of the classic fallback walk.
		os.stale.Add(1)
		r := fromResult(o.Route(origin, kid))
		if err == nil && idx != origin && idx >= 0 && idx < os.sys.N() {
			r.Latency += o.Network().Latency(o.Node(origin).Host, o.Node(idx).Host)
		}
		return r, nil
	}
	// No live view of the ring at all: straight to the classic walk.
	os.stale.Add(1)
	return fromResult(o.Route(origin, kid)), nil
}

// ChordLookup routes over the flat global ring, bypassing the table —
// the same uncached baseline the underlying System reports.
func (os *OneHopSystem) ChordLookup(origin int, key string) (Route, error) {
	return os.sys.ChordLookup(origin, key)
}

// Evict tombstones a peer in the one-hop table without touching the
// overlay, modelling the staleness window after an undisseminated
// departure: lookups for the peer's keys now fail verification and fall
// back. Restore ends the window.
func (os *OneHopSystem) Evict(peer int) error {
	return os.applyMembership(peer, wire.RouteEvict)
}

// Restore re-announces an evicted peer — the gossip repair completing.
func (os *OneHopSystem) Restore(peer int) error {
	return os.applyMembership(peer, wire.RouteJoin)
}

func (os *OneHopSystem) applyMembership(peer int, kind uint8) error {
	if err := os.sys.checkOrigin(peer); err != nil {
		return err
	}
	addr := strconv.Itoa(peer)
	os.mu.Lock()
	defer os.mu.Unlock()
	os.table.Apply(wire.RouteEvent{
		Layer: 1, Ring: "",
		Peer: wire.Peer{Addr: addr, ID: [20]byte(os.sys.overlay.Node(peer).ID)},
		Kind: kind, Stamp: os.table.NextStamp(1, "", addr, 0),
	})
	os.members = os.table.Members(1, "")
	return nil
}

// Stats returns cumulative verified-hit and stale/fallback counts.
func (os *OneHopSystem) Stats() (hits, stale uint64) {
	return os.hits.Load(), os.stale.Load()
}

// HitRate returns the fraction of lookups answered in one verified hop
// (0 before any lookup).
func (os *OneHopSystem) HitRate() float64 {
	h, s := os.Stats()
	if h+s == 0 {
		return 0
	}
	return float64(h) / float64(h+s)
}

// Instrument exposes the hit/stale counts on reg as onehop_hits_total /
// onehop_stale_total, tagged with the given labels so several one-hop
// views can share one registry.
func (os *OneHopSystem) Instrument(reg *metrics.Registry, labels ...metrics.Label) {
	reg.NewCounterFunc("onehop_hits_total",
		"Lookups answered by the one-hop route table with a verified owner.",
		func() float64 { h, _ := os.Stats(); return float64(h) }, labels...)
	reg.NewCounterFunc("onehop_stale_total",
		"One-hop lookups that fell back to the classic walk (stale or missing table entry).",
		func() float64 { _, s := os.Stats(); return float64(s) }, labels...)
}

// FailPeers returns a degraded view of the system in which `fraction` of
// the peers (chosen with the seed) have silently failed; lookups route
// around them using the per-layer successor lists.
func (s *System) FailPeers(fraction float64, seed int64) (*DegradedSystem, error) {
	if fraction < 0 || fraction >= 1 {
		return nil, fmt.Errorf("%w: %v not in [0,1)", ErrBadFraction, fraction)
	}
	rng := rand.New(rand.NewSource(seed))
	dead := make([]bool, s.N())
	for killed := 0; killed < int(fraction*float64(s.N())); {
		i := rng.Intn(s.N())
		if !dead[i] {
			dead[i] = true
			killed++
		}
	}
	v, err := s.overlay.WithFailures(dead)
	if err != nil {
		return nil, err
	}
	return &DegradedSystem{sys: s, view: v, dead: dead}, nil
}

// DegradedSystem is a System view with failed peers. It implements
// Lookuper.
type DegradedSystem struct {
	sys  *System
	view *core.FaultyView
	dead []bool
}

// Alive reports whether a peer survived.
func (d *DegradedSystem) Alive(peer int) bool {
	return peer >= 0 && peer < len(d.dead) && !d.dead[peer]
}

// Lookup routes around the failures to the key's live owner.
func (d *DegradedSystem) Lookup(origin int, key string) (Route, error) {
	if err := d.sys.checkOrigin(origin); err != nil {
		return Route{}, err
	}
	res, err := d.view.Route(origin, core.KeyID(key))
	if err != nil {
		return Route{}, err
	}
	return fromResult(res), nil
}

// ChordLookup is the flat baseline under the same failures.
func (d *DegradedSystem) ChordLookup(origin int, key string) (Route, error) {
	if err := d.sys.checkOrigin(origin); err != nil {
		return Route{}, err
	}
	res, err := d.view.ChordRoute(origin, core.KeyID(key))
	if err != nil {
		return Route{}, err
	}
	return fromResult(res), nil
}
