package hieras

import (
	"fmt"
	"math/rand"

	"repro/internal/cache"
	"repro/internal/core"
)

// Cached wraps the system with per-peer location caches (see
// internal/cache): repeated lookups for popular keys short-circuit to one
// direct hop. alongPath seeds the caches of every peer a lookup traverses
// (DHash-style) instead of only the requester's.
func (s *System) Cached(capacity int, alongPath bool) (*CachedSystem, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("%w: cache capacity %d must be >= 1", ErrBadOptions, capacity)
	}
	policy := cache.CacheAtOrigin
	if alongPath {
		policy = cache.CacheAlongPath
	}
	c, err := cache.New(s.overlay, capacity, policy)
	if err != nil {
		return nil, err
	}
	return &CachedSystem{sys: s, c: c}, nil
}

// CachedSystem is a System with location caching enabled. It implements
// Lookuper; hits are reported via Route.CacheHit.
type CachedSystem struct {
	sys *System
	c   *cache.Overlay
}

// Lookup routes to the owner of key, consulting the requester's cache.
// On a hit the route is the single direct hop and Route.CacheHit is set;
// on a miss the full hierarchical route — lower-layer hop and latency
// accounting included — is returned.
func (cs *CachedSystem) Lookup(origin int, key string) (Route, error) {
	if err := cs.sys.checkOrigin(origin); err != nil {
		return Route{}, err
	}
	res := cs.c.Lookup(origin, core.KeyID(key))
	r := fromResult(res.RouteResult)
	r.CacheHit = res.Hit
	return r, nil
}

// ChordLookup routes over the flat global ring, bypassing the cache — the
// same uncached baseline the underlying System reports.
func (cs *CachedSystem) ChordLookup(origin int, key string) (Route, error) {
	return cs.sys.ChordLookup(origin, key)
}

// HitRate returns the cumulative cache hit rate.
func (cs *CachedSystem) HitRate() float64 { return cs.c.HitRate() }

// FailPeers returns a degraded view of the system in which `fraction` of
// the peers (chosen with the seed) have silently failed; lookups route
// around them using the per-layer successor lists.
func (s *System) FailPeers(fraction float64, seed int64) (*DegradedSystem, error) {
	if fraction < 0 || fraction >= 1 {
		return nil, fmt.Errorf("%w: %v not in [0,1)", ErrBadFraction, fraction)
	}
	rng := rand.New(rand.NewSource(seed))
	dead := make([]bool, s.N())
	for killed := 0; killed < int(fraction*float64(s.N())); {
		i := rng.Intn(s.N())
		if !dead[i] {
			dead[i] = true
			killed++
		}
	}
	v, err := s.overlay.WithFailures(dead)
	if err != nil {
		return nil, err
	}
	return &DegradedSystem{sys: s, view: v, dead: dead}, nil
}

// DegradedSystem is a System view with failed peers. It implements
// Lookuper.
type DegradedSystem struct {
	sys  *System
	view *core.FaultyView
	dead []bool
}

// Alive reports whether a peer survived.
func (d *DegradedSystem) Alive(peer int) bool {
	return peer >= 0 && peer < len(d.dead) && !d.dead[peer]
}

// Lookup routes around the failures to the key's live owner.
func (d *DegradedSystem) Lookup(origin int, key string) (Route, error) {
	if err := d.sys.checkOrigin(origin); err != nil {
		return Route{}, err
	}
	res, err := d.view.Route(origin, core.KeyID(key))
	if err != nil {
		return Route{}, err
	}
	return fromResult(res), nil
}

// ChordLookup is the flat baseline under the same failures.
func (d *DegradedSystem) ChordLookup(origin int, key string) (Route, error) {
	if err := d.sys.checkOrigin(origin); err != nil {
		return Route{}, err
	}
	res, err := d.view.ChordRoute(origin, core.KeyID(key))
	if err != nil {
		return Route{}, err
	}
	return fromResult(res), nil
}
