// Benchmarks regenerating every table and figure of the HIERAS paper's
// evaluation, one per artifact, at laptop scale (the paper's 10000-node /
// 100000-request configurations are reproduced by `cmd/hieras-bench
// -paper`). Shape metrics — who wins, by what factor — are attached to
// each benchmark via ReportMetric so `go test -bench=.` doubles as a
// regression check on the reproduction.
package hieras_test

import (
	"io"
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/churn"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/topology"
	"repro/internal/topology/transitstub"
)

// benchBase is the reduced-scale scenario shared by the figure benches.
func benchBase() experiments.Scenario {
	return experiments.Scenario{Nodes: 400, Requests: 3000, Seed: 1234}
}

func reportComparison(b *testing.B, cmp *experiments.Comparison) {
	b.Helper()
	b.ReportMetric(cmp.LatencyRatio(), "latency_ratio")
	b.ReportMetric(cmp.HopRatio(), "hop_ratio")
	b.ReportMetric(cmp.LowerHopShare(), "lower_hop_share")
}

// BenchmarkTable1Binning regenerates Table 1 (the distributed-binning
// example with the paper's exact sample latencies).
func BenchmarkTable1Binning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		tbl.Render(io.Discard)
	}
}

// BenchmarkTable2FingerTables regenerates Table 2 (a node's layered
// finger tables in a two-layer system).
func BenchmarkTable2FingerTables(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Table2(experiments.Scenario{Nodes: 120, Seed: 9})
		if err != nil {
			b.Fatal(err)
		}
		tbl.Render(io.Discard)
	}
}

// BenchmarkTable3RingTable regenerates Table 3 (ring table layout).
func BenchmarkTable3RingTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Table3(experiments.Scenario{Nodes: 80, Seed: 10})
		if err != nil {
			b.Fatal(err)
		}
		tbl.Render(io.Discard)
	}
}

// BenchmarkFigure2Hops regenerates Figure 2: average routing hops versus
// network size across the three topology models.
func BenchmarkFigure2Hops(b *testing.B) {
	base := benchBase()
	sizes := map[string][]int{
		experiments.ModelTS:    {200, 400},
		experiments.ModelInet:  {300},
		experiments.ModelBRITE: {200},
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figures2and3(base, sizes)
		if err != nil {
			b.Fatal(err)
		}
		res.HopsTable().Render(io.Discard)
		last := res.Sweeps[0].Rows[len(res.Sweeps[0].Rows)-1].Cmp
		b.ReportMetric(last.HopRatio(), "hop_ratio_ts")
	}
}

// BenchmarkFigure3Latency regenerates Figure 3: average routing latency
// versus network size across models.
func BenchmarkFigure3Latency(b *testing.B) {
	base := benchBase()
	sizes := map[string][]int{
		experiments.ModelTS:    {200, 400},
		experiments.ModelInet:  {300},
		experiments.ModelBRITE: {200},
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figures2and3(base, sizes)
		if err != nil {
			b.Fatal(err)
		}
		res.LatencyTable().Render(io.Discard)
		for _, sw := range res.Sweeps {
			last := sw.Rows[len(sw.Rows)-1].Cmp
			b.ReportMetric(last.LatencyRatio(), "latency_ratio_"+sw.Model)
		}
	}
}

// BenchmarkFigure4PDF regenerates Figure 4: the PDF of routing hops on a
// large TS network, including the lower-layer hop share.
func BenchmarkFigure4PDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figures4and5(benchBase())
		if err != nil {
			b.Fatal(err)
		}
		res.PDFTable().Render(io.Discard)
		reportComparison(b, res.Cmp)
	}
}

// BenchmarkFigure5CDF regenerates Figure 5: the CDF of routing latency.
func BenchmarkFigure5CDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figures4and5(benchBase())
		if err != nil {
			b.Fatal(err)
		}
		res.CDFTable().Render(io.Discard)
		res.SummaryTable().Render(io.Discard)
		reportComparison(b, res.Cmp)
	}
}

// BenchmarkFigure6LandmarkHops regenerates Figure 6: hops versus the
// number of landmark nodes.
func BenchmarkFigure6LandmarkHops(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figures6and7(benchBase(), []int{2, 4, 6, 8})
		if err != nil {
			b.Fatal(err)
		}
		res.HopsTable().Render(io.Discard)
	}
}

// BenchmarkFigure7LandmarkLatency regenerates Figure 7: latency versus the
// number of landmark nodes (the paper's optimum sits near 8).
func BenchmarkFigure7LandmarkLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figures6and7(benchBase(), []int{2, 4, 6, 8})
		if err != nil {
			b.Fatal(err)
		}
		res.LatencyTable().Render(io.Discard)
		first := res.Rows[0].Cmp.LatencyRatio()
		best := first
		for _, row := range res.Rows {
			if r := row.Cmp.LatencyRatio(); r < best {
				best = r
			}
		}
		b.ReportMetric(first, "latency_ratio_2lm")
		b.ReportMetric(best, "latency_ratio_best")
	}
}

// BenchmarkFigure8DepthHops regenerates Figure 8: hops versus hierarchy
// depth.
func BenchmarkFigure8DepthHops(b *testing.B) {
	base := benchBase()
	base.Landmarks = 6
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figures8and9(base, []int{400}, []int{2, 3, 4})
		if err != nil {
			b.Fatal(err)
		}
		res.HopsTable().Render(io.Discard)
	}
}

// BenchmarkFigure9DepthLatency regenerates Figure 9: latency versus
// hierarchy depth (2-3 layers capture most of the benefit).
func BenchmarkFigure9DepthLatency(b *testing.B) {
	base := benchBase()
	base.Landmarks = 6
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figures8and9(base, []int{400}, []int{2, 3, 4})
		if err != nil {
			b.Fatal(err)
		}
		res.LatencyTable().Render(io.Discard)
		b.ReportMetric(res.Rows[0].Cmp.LatencyRatio(), "latency_ratio_d2")
		b.ReportMetric(res.Rows[len(res.Rows)-1].Cmp.LatencyRatio(), "latency_ratio_d4")
	}
}

// BenchmarkOverheadAnalysis runs the quantitative overhead study the paper
// defers to future work: per-node state and join/maintenance messages for
// Chord (depth 1) versus HIERAS (depths 2-3).
func BenchmarkOverheadAnalysis(b *testing.B) {
	s := experiments.Scenario{Nodes: 120, Seed: 5, Requests: 100}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Overhead(s, []int{1, 2, 3})
		if err != nil {
			b.Fatal(err)
		}
		res.Table().Render(io.Discard)
		b.ReportMetric(res.Rows[1].JoinMsgs/res.Rows[0].JoinMsgs, "join_cost_x")
	}
}

// BenchmarkAblationLandmarkPlacement compares spread (k-center) landmark
// placement against random placement — a design choice DESIGN.md calls
// out: binning quality depends on landmarks covering distinct regions.
func BenchmarkAblationLandmarkPlacement(b *testing.B) {
	build := func(strategy topology.LandmarkStrategy) float64 {
		rng := rand.New(rand.NewSource(77))
		m, err := transitstub.Generate(transitstub.DefaultConfig(400), rng)
		if err != nil {
			b.Fatal(err)
		}
		net, err := topology.Attach(m, m.G, topology.AttachOptions{
			Hosts: 400, Routers: m.StubRouters, Spread: true,
		}, rng)
		if err != nil {
			b.Fatal(err)
		}
		o, err := core.Build(net, core.Config{Depth: 2, Landmarks: 4, LandmarkStrategy: strategy}, rng)
		if err != nil {
			b.Fatal(err)
		}
		var hieras, chord float64
		r2 := rand.New(rand.NewSource(78))
		for t := 0; t < 2000; t++ {
			from := r2.Intn(o.N())
			key := core.KeyID(string(rune(t)) + "k")
			hieras += o.Route(from, key).Latency
			chord += o.ChordRoute(from, key).Latency
		}
		return hieras / chord
	}
	for i := 0; i < b.N; i++ {
		spread := build(topology.LandmarkSpread)
		random := build(topology.LandmarkRandom)
		b.ReportMetric(spread, "latency_ratio_spread")
		b.ReportMetric(random, "latency_ratio_random")
	}
}

// BenchmarkAblationSuccessorAcceleration measures the paper's optional
// successor-list shortcut (§3.2 "predecessor and successor lists can be
// used to accelerate the process").
func BenchmarkAblationSuccessorAcceleration(b *testing.B) {
	run := func(accelerate bool) (hops float64) {
		rng := rand.New(rand.NewSource(88))
		m, err := transitstub.Generate(transitstub.DefaultConfig(300), rng)
		if err != nil {
			b.Fatal(err)
		}
		net, err := topology.Attach(m, m.G, topology.AttachOptions{
			Hosts: 300, Routers: m.StubRouters, Spread: true,
		}, rng)
		if err != nil {
			b.Fatal(err)
		}
		o, err := core.Build(net, core.Config{
			Depth: 2, Landmarks: 4,
			SuccessorListLen:            8,
			AccelerateWithSuccessorList: accelerate,
		}, rng)
		if err != nil {
			b.Fatal(err)
		}
		r2 := rand.New(rand.NewSource(89))
		total := 0
		for t := 0; t < 2000; t++ {
			res := o.Route(r2.Intn(o.N()), core.KeyID(string(rune(t))))
			total += res.NumHops()
		}
		return float64(total) / 2000
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(false), "hops_plain")
		b.ReportMetric(run(true), "hops_accelerated")
	}
}

// BenchmarkExtensionAlgorithms runs the paper's future-work head-to-head:
// Chord, Chord+PNS, Pastry, HIERAS and HIERAS+PNS on one TS network.
func BenchmarkExtensionAlgorithms(b *testing.B) {
	s := experiments.Scenario{Nodes: 300, Requests: 1500, Seed: 61}
	for i := 0; i < b.N; i++ {
		res, err := experiments.CompareAlgorithms(s)
		if err != nil {
			b.Fatal(err)
		}
		res.Table().Render(io.Discard)
		base := res.Row("chord").Latency.Mean()
		b.ReportMetric(res.Row("pastry").Latency.Mean()/base, "pastry_vs_chord")
		b.ReportMetric(res.Row("hieras").Latency.Mean()/base, "hieras_vs_chord")
		b.ReportMetric(res.Row("hieras+pns").Latency.Mean()/base, "hieras_pns_vs_chord")
	}
}

// BenchmarkExtensionCAN runs the §3.2 transplant: HIERAS over CAN versus
// flat CAN.
func BenchmarkExtensionCAN(b *testing.B) {
	s := experiments.Scenario{Nodes: 400, Requests: 2000, Seed: 62}
	for i := 0; i < b.N; i++ {
		res, err := experiments.CompareCAN(s)
		if err != nil {
			b.Fatal(err)
		}
		res.Table().Render(io.Discard)
		b.ReportMetric(res.Hier.Latency.Mean()/res.Flat.Latency.Mean(), "can_latency_ratio")
	}
}

// BenchmarkExtensionResilience sweeps the failed-node fraction and
// measures pre-repair delivery for HIERAS and Chord (the inherited fault
// tolerance of §3.3).
func BenchmarkExtensionResilience(b *testing.B) {
	s := experiments.Scenario{Nodes: 300, Requests: 800, Seed: 63}
	for i := 0; i < b.N; i++ {
		res, err := experiments.FailureResilience(s, []float64{0.1, 0.3})
		if err != nil {
			b.Fatal(err)
		}
		res.Table().Render(io.Discard)
		b.ReportMetric(res.Rows[1].HierasOK, "hieras_delivered_30pct")
		b.ReportMetric(res.Rows[1].ChordOK, "chord_delivered_30pct")
	}
}

// BenchmarkExtensionCaching measures the inherited location-caching scheme
// (§3.2) under a Zipf workload.
func BenchmarkExtensionCaching(b *testing.B) {
	s := experiments.Scenario{Nodes: 200, Requests: 4000, Seed: 64}
	for i := 0; i < b.N; i++ {
		res, err := experiments.CacheStudy(s, []int{64, 512}, cache.CacheAlongPath)
		if err != nil {
			b.Fatal(err)
		}
		res.Table().Render(io.Discard)
		b.ReportMetric(res.Rows[1].HitRate, "hit_rate_512")
		b.ReportMetric(res.Rows[1].MeanLatency/res.NoCacheMean, "latency_vs_nocache")
	}
}

// BenchmarkAblationAdaptiveBinning compares the paper's fixed {20,100}
// thresholds against percentile-derived adaptive thresholds
// (binning.AdaptiveThresholds) on two underlays: the TS model the fixed
// constants were designed for, and a BRITE underlay with a different
// latency scale.
func BenchmarkAblationAdaptiveBinning(b *testing.B) {
	run := func(model string, adaptive bool) float64 {
		s := experiments.Scenario{Model: model, Nodes: 400, Requests: 2000, Seed: 55, Landmarks: 6}
		o, err := experiments.BuildOverlay(s)
		if err != nil {
			b.Fatal(err)
		}
		if adaptive {
			o2, err := core.Build(o.Network(), core.Config{
				Depth: 2, Landmarks: 6, AdaptiveBinning: true,
			}, rand.New(rand.NewSource(56)))
			if err != nil {
				b.Fatal(err)
			}
			o = o2
		}
		rng := rand.New(rand.NewSource(57))
		var h, c float64
		for t := 0; t < 2000; t++ {
			from := rng.Intn(o.N())
			key := core.KeyID(string(rune(t)) + model)
			h += o.Route(from, key).Latency
			c += o.ChordRoute(from, key).Latency
		}
		return h / c
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(experiments.ModelTS, false), "ts_fixed")
		b.ReportMetric(run(experiments.ModelTS, true), "ts_adaptive")
		b.ReportMetric(run(experiments.ModelBRITE, false), "brite_fixed")
		b.ReportMetric(run(experiments.ModelBRITE, true), "brite_adaptive")
	}
}

// BenchmarkChurnAvailability measures lookup correctness under silent node
// failures with per-layer successor lists — quantifying §3.3's claim that
// Chord's failure handling carries over to every ring.
func BenchmarkChurnAvailability(b *testing.B) {
	rng := rand.New(rand.NewSource(99))
	m, err := transitstub.Generate(transitstub.DefaultConfig(80), rng)
	if err != nil {
		b.Fatal(err)
	}
	net, err := topology.Attach(m, m.G, topology.AttachOptions{
		Hosts: 80, Routers: m.StubRouters, Spread: true,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	cfg := churn.Config{
		InitialNodes: 40, JoinEvery: 10, FailEvery: 10,
		LookupEvery: 0.5, StabilizeEvery: 2, Duration: 150,
		Seed: 3, Depth: 2, Landmarks: 4, SuccessorListLen: 6,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := churn.Run(net, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CorrectRate, "correct_rate")
		b.ReportMetric(res.CompletionRate, "completion_rate")
	}
}
