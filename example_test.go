package hieras_test

import (
	"fmt"

	hieras "repro"
)

// Example builds a small two-layer HIERAS system on a simulated
// Transit-Stub internetwork and routes one lookup both hierarchically and
// over the flat Chord baseline.
func Example() {
	sys, err := hieras.New(hieras.Options{
		Model:     "ts",
		Nodes:     200,
		Landmarks: 4,
		Depth:     2,
		Seed:      1,
	})
	if err != nil {
		panic(err)
	}
	h, _ := sys.Lookup(0, "shared/movie.mkv")
	c, _ := sys.ChordLookup(0, "shared/movie.mkv")
	fmt.Printf("peers: %d, depth: %d\n", sys.N(), sys.Depth())
	fmt.Printf("same destination: %v\n", h.Dest == c.Dest)
	fmt.Printf("hieras used lower rings: %v\n", h.LowerHops > 0)
	// Output:
	// peers: 200, depth: 2
	// same destination: true
	// hieras used lower rings: true
}
