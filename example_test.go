package hieras_test

import (
	"fmt"

	hieras "repro"
)

// Example builds a small two-layer HIERAS system on a simulated
// Transit-Stub internetwork and routes one lookup both hierarchically and
// over the flat Chord baseline.
func Example() {
	sys, err := hieras.New(hieras.Options{
		Model:     "ts",
		Nodes:     200,
		Landmarks: 4,
		Depth:     2,
		Seed:      1,
	})
	if err != nil {
		panic(err)
	}
	h, _ := sys.Lookup(0, "shared/movie.mkv")
	c, _ := sys.ChordLookup(0, "shared/movie.mkv")
	fmt.Printf("peers: %d, depth: %d\n", sys.N(), sys.Depth())
	fmt.Printf("same destination: %v\n", h.Dest == c.Dest)
	fmt.Printf("hieras used lower rings: %v\n", h.LowerHops > 0)
	// Output:
	// peers: 200, depth: 2
	// same destination: true
	// hieras used lower rings: true
}

// ExampleLookuper shows the unified lookup surface: the same measurement
// code runs against the plain system, a caching wrapper and a degraded
// view, because all three implement hieras.Lookuper.
func ExampleLookuper() {
	sys, err := hieras.New(hieras.Options{Nodes: 200, Seed: 1})
	if err != nil {
		panic(err)
	}
	cached, err := sys.Cached(128, true)
	if err != nil {
		panic(err)
	}
	degraded, err := sys.FailPeers(0.1, 7)
	if err != nil {
		panic(err)
	}

	probe := func(name string, l hieras.Lookuper) {
		h, err := l.Lookup(0, "shared/movie.mkv")
		if err != nil {
			panic(err)
		}
		c, err := l.ChordLookup(0, "shared/movie.mkv")
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8s delivered: %v, beats or matches chord hops: %v\n",
			name, h.Dest >= 0, h.Hops <= c.Hops+sys.Depth())
	}
	for _, s := range []struct {
		name string
		l    hieras.Lookuper
	}{{"plain", sys}, {"cached", cached}, {"degraded", degraded}} {
		probe(s.name, s.l)
	}
	// Output:
	// plain    delivered: true, beats or matches chord hops: true
	// cached   delivered: true, beats or matches chord hops: true
	// degraded delivered: true, beats or matches chord hops: true
}

// ExampleCachedSystem_Lookup demonstrates Route.CacheHit: the second
// lookup for a key is answered from the requester's location cache.
func ExampleCachedSystem_Lookup() {
	sys, err := hieras.New(hieras.Options{Nodes: 200, Seed: 1})
	if err != nil {
		panic(err)
	}
	cached, err := sys.Cached(64, false)
	if err != nil {
		panic(err)
	}
	first, _ := cached.Lookup(3, "popular-file")
	second, _ := cached.Lookup(3, "popular-file")
	fmt.Printf("first: hit=%v, second: hit=%v in %d hop(s)\n",
		first.CacheHit, second.CacheHit, second.Hops)
	fmt.Printf("same owner: %v\n", first.Dest == second.Dest)
	// Output:
	// first: hit=false, second: hit=true in 1 hop(s)
	// same owner: true
}
