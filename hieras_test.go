package hieras

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func newSmall(t *testing.T) *System {
	t.Helper()
	sys, err := New(Options{Nodes: 150, Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return sys
}

func TestNewDefaults(t *testing.T) {
	sys := newSmall(t)
	if sys.N() != 150 {
		t.Errorf("N = %d", sys.N())
	}
	if sys.Depth() != 2 {
		t.Errorf("Depth = %d", sys.Depth())
	}
	if sys.NumRings() == 0 {
		t.Error("no lower rings")
	}
	if sys.RingName(0) == "" {
		t.Error("peer 0 has no ring name")
	}
}

func TestNewErrors(t *testing.T) {
	bad := []Options{
		{Model: "bogus", Nodes: 50},
		{Nodes: -1},
		{Nodes: 50, Depth: -2},
		{Nodes: 50, Landmarks: -4},
		{Nodes: 50, Routers: -8},
	}
	for _, opts := range bad {
		if _, err := New(opts); !errors.Is(err, ErrBadOptions) {
			t.Errorf("New(%+v): err = %v, want ErrBadOptions", opts, err)
		}
	}
}

func TestLookupAgreesWithChord(t *testing.T) {
	sys := newSmall(t)
	for i := 0; i < 50; i++ {
		key := "key-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		h, err := sys.Lookup(i%sys.N(), key)
		if err != nil {
			t.Fatal(err)
		}
		c, err := sys.ChordLookup(i%sys.N(), key)
		if err != nil {
			t.Fatal(err)
		}
		if h.Dest != c.Dest {
			t.Fatalf("HIERAS dest %d != Chord dest %d for %q", h.Dest, c.Dest, key)
		}
		if h.Latency < 0 || h.LowerLatency > h.Latency {
			t.Fatalf("latency accounting broken: %+v", h)
		}
		if c.LowerHops != 0 {
			t.Error("Chord route should have no lower hops")
		}
	}
}

func TestLookupRangeChecks(t *testing.T) {
	sys := newSmall(t)
	if _, err := sys.Lookup(-1, "k"); !errors.Is(err, ErrOriginOutOfRange) {
		t.Errorf("negative origin: err = %v, want ErrOriginOutOfRange", err)
	}
	if _, err := sys.ChordLookup(sys.N(), "k"); !errors.Is(err, ErrOriginOutOfRange) {
		t.Errorf("out-of-range origin: err = %v, want ErrOriginOutOfRange", err)
	}
}

func TestBatchLookup(t *testing.T) {
	sys := newSmall(t)
	n := 300
	origins := make([]int, n)
	keys := make([]string, n)
	for i := range keys {
		origins[i] = i % sys.N()
		keys[i] = fmt.Sprintf("batch-%d", i)
	}
	routes, err := sys.BatchLookup(origins, keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != n {
		t.Fatalf("got %d routes, want %d", len(routes), n)
	}
	for i := 0; i < n; i += 37 {
		want, err := sys.Lookup(origins[i], keys[i])
		if err != nil {
			t.Fatal(err)
		}
		if routes[i] != want {
			t.Fatalf("route %d: batch %+v != sequential %+v", i, routes[i], want)
		}
	}
	if _, err := sys.BatchLookup([]int{0, 1}, []string{"one"}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("mismatched lengths: err = %v, want ErrBadOptions", err)
	}
	if _, err := sys.BatchLookup([]int{-5}, []string{"x"}); !errors.Is(err, ErrOriginOutOfRange) {
		t.Errorf("bad origin: err = %v, want ErrOriginOutOfRange", err)
	}
}

// TestBatchLookupConcurrent exercises concurrent BatchLookup calls over
// one shared system; run with -race it doubles as the read-path audit of
// Overlay.Route.
func TestBatchLookupConcurrent(t *testing.T) {
	sys := newSmall(t)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			origins := make([]int, 200)
			keys := make([]string, 200)
			for i := range keys {
				origins[i] = (g*31 + i) % sys.N()
				keys[i] = fmt.Sprintf("g%d-%d", g, i)
			}
			_, errs[g] = sys.BatchLookup(origins, keys)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
}

// TestCompareDeterministicAcrossWorkers asserts the batch engine's
// headline guarantee end to end: one seed, two systems built and measured
// with 1 and 8 workers, byte-identical summaries.
func TestCompareDeterministicAcrossWorkers(t *testing.T) {
	var got []ComparisonSummary
	for _, workers := range []int{1, 8} {
		sys, err := New(Options{Nodes: 120, Seed: 77, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		cmp, err := sys.Compare(2000)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, cmp)
	}
	if got[0] != got[1] {
		t.Errorf("summaries diverge across worker counts:\n 1 worker: %+v\n 8 workers: %+v", got[0], got[1])
	}
}

func TestCompareContextCancelled(t *testing.T) {
	sys := newSmall(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.CompareContext(ctx, 5000); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestCompare(t *testing.T) {
	sys := newSmall(t)
	cmp, err := sys.Compare(800)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Requests != 800 {
		t.Errorf("Requests = %d", cmp.Requests)
	}
	if cmp.LatencyRatio >= 1 {
		t.Errorf("latency ratio %.3f: HIERAS should beat Chord on TS", cmp.LatencyRatio)
	}
	if cmp.HopRatio < 0.9 || cmp.HopRatio > 1.5 {
		t.Errorf("hop ratio %.3f implausible", cmp.HopRatio)
	}
	if cmp.LowerHopShare <= 0 {
		t.Error("no lower-layer hops recorded")
	}
	if cmp.HierasLatencyP50 <= 0 || cmp.HierasLatencyP99 < cmp.HierasLatencyP50 {
		t.Errorf("implausible latency percentiles: p50=%v p99=%v",
			cmp.HierasLatencyP50, cmp.HierasLatencyP99)
	}
	if cmp.ChordLatencyP99 < cmp.ChordLatencyP50 {
		t.Errorf("chord percentiles inverted: p50=%v p99=%v",
			cmp.ChordLatencyP50, cmp.ChordLatencyP99)
	}
}

func TestStoreIntegration(t *testing.T) {
	sys := newSmall(t)
	st, err := sys.Store(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, putErr := st.Put(0, "shared-file", []byte("host 42, path /x")); putErr != nil {
		t.Fatal(putErr)
	}
	v, _, err := st.Get(99, "shared-file")
	if err != nil || string(v) != "host 42, path /x" {
		t.Fatalf("get: %q %v", v, err)
	}
}

func TestOverlayEscapeHatch(t *testing.T) {
	sys := newSmall(t)
	if sys.Overlay() == nil || sys.Overlay().N() != sys.N() {
		t.Error("Overlay escape hatch broken")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a, err := New(Options{Nodes: 100, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{Nodes: 100, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := a.Lookup(5, "same-key")
	rb, _ := b.Lookup(5, "same-key")
	if ra != rb {
		t.Error("same seed produced different routes")
	}
}
