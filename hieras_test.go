package hieras

import (
	"testing"
)

func newSmall(t *testing.T) *System {
	t.Helper()
	sys, err := New(Options{Nodes: 150, Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return sys
}

func TestNewDefaults(t *testing.T) {
	sys := newSmall(t)
	if sys.N() != 150 {
		t.Errorf("N = %d", sys.N())
	}
	if sys.Depth() != 2 {
		t.Errorf("Depth = %d", sys.Depth())
	}
	if sys.NumRings() == 0 {
		t.Error("no lower rings")
	}
	if sys.RingName(0) == "" {
		t.Error("peer 0 has no ring name")
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Options{Model: "bogus", Nodes: 50}); err == nil {
		t.Error("bogus model accepted")
	}
}

func TestLookupAgreesWithChord(t *testing.T) {
	sys := newSmall(t)
	for i := 0; i < 50; i++ {
		key := "key-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		h, err := sys.Lookup(i%sys.N(), key)
		if err != nil {
			t.Fatal(err)
		}
		c, err := sys.ChordLookup(i%sys.N(), key)
		if err != nil {
			t.Fatal(err)
		}
		if h.Dest != c.Dest {
			t.Fatalf("HIERAS dest %d != Chord dest %d for %q", h.Dest, c.Dest, key)
		}
		if h.Latency < 0 || h.LowerLatency > h.Latency {
			t.Fatalf("latency accounting broken: %+v", h)
		}
		if c.LowerHops != 0 {
			t.Error("Chord route should have no lower hops")
		}
	}
}

func TestLookupRangeChecks(t *testing.T) {
	sys := newSmall(t)
	if _, err := sys.Lookup(-1, "k"); err == nil {
		t.Error("negative origin accepted")
	}
	if _, err := sys.ChordLookup(sys.N(), "k"); err == nil {
		t.Error("out-of-range origin accepted")
	}
}

func TestCompare(t *testing.T) {
	sys := newSmall(t)
	cmp, err := sys.Compare(800)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Requests != 800 {
		t.Errorf("Requests = %d", cmp.Requests)
	}
	if cmp.LatencyRatio >= 1 {
		t.Errorf("latency ratio %.3f: HIERAS should beat Chord on TS", cmp.LatencyRatio)
	}
	if cmp.HopRatio < 0.9 || cmp.HopRatio > 1.5 {
		t.Errorf("hop ratio %.3f implausible", cmp.HopRatio)
	}
	if cmp.LowerHopShare <= 0 {
		t.Error("no lower-layer hops recorded")
	}
}

func TestStoreIntegration(t *testing.T) {
	sys := newSmall(t)
	st, err := sys.Store(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put(0, "shared-file", []byte("host 42, path /x")); err != nil {
		t.Fatal(err)
	}
	v, _, err := st.Get(99, "shared-file")
	if err != nil || string(v) != "host 42, path /x" {
		t.Fatalf("get: %q %v", v, err)
	}
}

func TestOverlayEscapeHatch(t *testing.T) {
	sys := newSmall(t)
	if sys.Overlay() == nil || sys.Overlay().N() != sys.N() {
		t.Error("Overlay escape hatch broken")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a, err := New(Options{Nodes: 100, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{Nodes: 100, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := a.Lookup(5, "same-key")
	rb, _ := b.Lookup(5, "same-key")
	if ra != rb {
		t.Error("same seed produced different routes")
	}
}
