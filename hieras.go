// Package hieras is the public entry point of this repository: a
// reproduction of "HIERAS: A DHT Based Hierarchical P2P Routing Algorithm"
// (Xu, Min, Hu — ICPP 2003).
//
// HIERAS layers multiple P2P rings on top of a Chord overlay. Every node
// belongs to one ring per layer; lower-layer rings group topologically
// adjacent nodes, discovered with the distributed binning scheme
// (landmark latency orders). Lookups run Chord once per layer, starting in
// the most local ring, so most routing hops cross short links: the paper
// reports ~50% of Chord's lookup latency at ~1-3% extra hops.
//
// The facade wraps the simulation stack (topology models, binning, Chord,
// the HIERAS overlay, workloads and the experiment harness):
//
//	sys, err := hieras.New(hieras.Options{Model: "ts", Nodes: 1000})
//	route := sys.Lookup(0, "some-file")
//	cmp, err := sys.Compare(10000)
//
// For the full evaluation suite see cmd/hieras-bench; for live TCP nodes
// see cmd/hieras-node and internal/transport.
package hieras

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/kv"
)

// Options configures a simulated HIERAS system.
type Options struct {
	// Model selects the underlay topology generator: "ts" (GT-ITM
	// Transit-Stub, the paper's primary model), "inet" or "brite".
	// Default "ts".
	Model string
	// Nodes is the number of overlay peers (default 1000).
	Nodes int
	// Landmarks is the landmark count for distributed binning (default 4,
	// as in the paper's main experiments).
	Landmarks int
	// Depth is the hierarchy depth (default 2; the paper recommends 2-3).
	Depth int
	// Seed makes the whole system — topology, binning, identifiers —
	// reproducible.
	Seed int64
	// Routers overrides the router count for inet/brite underlays.
	Routers int
	// Workers bounds build/query parallelism (default: all CPUs).
	Workers int
	// ProximityFingers enables proximity neighbor selection when filling
	// finger tables (a locality optimisation that stacks with the
	// hierarchy).
	ProximityFingers bool
}

// System is a fully built HIERAS overlay over a simulated internetwork.
type System struct {
	overlay  *core.Overlay
	scenario experiments.Scenario
}

// New builds a system: it generates the underlay, attaches hosts, selects
// landmarks, bins every node and constructs all per-ring routing state.
func New(opts Options) (*System, error) {
	sc := experiments.Scenario{
		Model:            opts.Model,
		Nodes:            opts.Nodes,
		Landmarks:        opts.Landmarks,
		Depth:            opts.Depth,
		Seed:             opts.Seed,
		Routers:          opts.Routers,
		Workers:          opts.Workers,
		ProximityFingers: opts.ProximityFingers,
	}
	o, err := experiments.BuildOverlay(sc)
	if err != nil {
		return nil, err
	}
	return &System{overlay: o, scenario: sc}, nil
}

// N returns the number of peers.
func (s *System) N() int { return s.overlay.N() }

// Depth returns the hierarchy depth.
func (s *System) Depth() int { return s.overlay.Depth() }

// NumRings returns the number of lower-layer P2P rings.
func (s *System) NumRings() int { return s.overlay.NumRings() }

// RingName returns the layer-2 ring name of a peer (its landmark order),
// or "" for depth-1 systems.
func (s *System) RingName(peer int) string {
	nd := s.overlay.Node(peer)
	if len(nd.RingNames) == 0 {
		return ""
	}
	return nd.RingNames[0]
}

// Route is the outcome of one lookup.
type Route struct {
	// Dest is the peer owning the key.
	Dest int
	// Hops is the total number of routing hops; LowerHops counts those
	// taken in lower-layer rings.
	Hops, LowerHops int
	// Latency is the routing latency in milliseconds; LowerLatency the
	// share accumulated in lower-layer rings.
	Latency, LowerLatency float64
}

func fromResult(r core.RouteResult) Route {
	return Route{
		Dest:         r.Dest,
		Hops:         r.NumHops(),
		LowerHops:    r.LowerHops,
		Latency:      r.Latency,
		LowerLatency: r.LowerLatency,
	}
}

// Lookup routes from peer `origin` to the owner of the named key using
// HIERAS's hierarchical procedure.
func (s *System) Lookup(origin int, key string) (Route, error) {
	if origin < 0 || origin >= s.N() {
		return Route{}, fmt.Errorf("hieras: origin %d out of range [0,%d)", origin, s.N())
	}
	return fromResult(s.overlay.Route(origin, core.KeyID(key))), nil
}

// ChordLookup routes the same request over the flat global ring — the
// baseline the paper compares against.
func (s *System) ChordLookup(origin int, key string) (Route, error) {
	if origin < 0 || origin >= s.N() {
		return Route{}, fmt.Errorf("hieras: origin %d out of range [0,%d)", origin, s.N())
	}
	return fromResult(s.overlay.ChordRoute(origin, core.KeyID(key))), nil
}

// ComparisonSummary condenses a HIERAS-vs-Chord measurement.
type ComparisonSummary struct {
	Requests          int
	HierasHops        float64
	ChordHops         float64
	HierasLatencyMs   float64
	ChordLatencyMs    float64
	LatencyRatio      float64 // HIERAS / Chord (paper: ~0.52 on TS)
	HopRatio          float64 // HIERAS / Chord (paper: ~1.01-1.03)
	LowerHopShare     float64 // fraction of hops in lower rings (~0.71)
	LowerLatencyShare float64
}

// Compare routes `requests` random lookups through both algorithms over
// this system and summarises the comparison.
func (s *System) Compare(requests int) (ComparisonSummary, error) {
	sc := s.scenario
	sc.Requests = requests
	cmp, err := experiments.CompareOn(s.overlay, sc)
	if err != nil {
		return ComparisonSummary{}, err
	}
	return ComparisonSummary{
		Requests:          requests,
		HierasHops:        cmp.Hieras.Hops.Mean(),
		ChordHops:         cmp.Chord.Hops.Mean(),
		HierasLatencyMs:   cmp.Hieras.Latency.Mean(),
		ChordLatencyMs:    cmp.Chord.Latency.Mean(),
		LatencyRatio:      cmp.LatencyRatio(),
		HopRatio:          cmp.HopRatio(),
		LowerHopShare:     cmp.LowerHopShare(),
		LowerLatencyShare: cmp.LowerLatencyShare(),
	}, nil
}

// Store creates a replicated key-value (file-location) service over this
// system.
func (s *System) Store(replicas int) (*kv.Store, error) {
	return kv.New(s.overlay, replicas)
}

// Overlay exposes the underlying overlay for advanced use (experiment
// harnesses, custom metrics).
func (s *System) Overlay() *core.Overlay { return s.overlay }
