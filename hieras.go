// Package hieras is the public entry point of this repository: a
// reproduction of "HIERAS: A DHT Based Hierarchical P2P Routing Algorithm"
// (Xu, Min, Hu — ICPP 2003).
//
// HIERAS layers multiple P2P rings on top of a Chord overlay. Every node
// belongs to one ring per layer; lower-layer rings group topologically
// adjacent nodes, discovered with the distributed binning scheme
// (landmark latency orders). Lookups run Chord once per layer, starting in
// the most local ring, so most routing hops cross short links: the paper
// reports ~50% of Chord's lookup latency at ~1-3% extra hops.
//
// The facade wraps the simulation stack (topology models, binning, Chord,
// the HIERAS overlay, workloads and the experiment harness):
//
//	sys, err := hieras.New(hieras.Options{Model: "ts", Nodes: 1000})
//	route, err := sys.Lookup(0, "some-file")
//	cmp, err := sys.Compare(10000)
//
// Every lookup surface — the plain System, the location-caching
// CachedSystem and the failure-injecting DegradedSystem — implements the
// Lookuper interface, so harness code is written once against it.
// Bulk measurement goes through the parallel batch query engine:
// System.BatchLookup fans explicit requests across workers, and
// System.Compare / CompareContext run the full HIERAS-vs-Chord workload
// with deterministic, worker-count-invariant summaries.
//
// For the full evaluation suite see cmd/hieras-bench; for live TCP nodes
// see cmd/hieras-node and internal/transport.
package hieras

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/kv"
)

// Lookuper is the unified lookup surface of this package: Lookup routes
// hierarchically (HIERAS), ChordLookup routes over the flat global ring
// (the paper's baseline). System, CachedSystem and DegradedSystem all
// implement it, so experiment harnesses and cmd/* accept any of the
// three interchangeably.
type Lookuper interface {
	Lookup(origin int, key string) (Route, error)
	ChordLookup(origin int, key string) (Route, error)
}

var (
	_ Lookuper = (*System)(nil)
	_ Lookuper = (*CachedSystem)(nil)
	_ Lookuper = (*DegradedSystem)(nil)
	_ Lookuper = (*OneHopSystem)(nil)
)

// Options configures a simulated HIERAS system.
type Options struct {
	// Model selects the underlay topology generator: "ts" (GT-ITM
	// Transit-Stub, the paper's primary model), "inet" or "brite".
	// Default "ts".
	Model string
	// Nodes is the number of overlay peers (default 1000).
	Nodes int
	// Landmarks is the landmark count for distributed binning (default 4,
	// as in the paper's main experiments).
	Landmarks int
	// Depth is the hierarchy depth (default 2; the paper recommends 2-3).
	Depth int
	// Seed makes the whole system — topology, binning, identifiers —
	// reproducible.
	Seed int64
	// Routers overrides the router count for inet/brite underlays.
	Routers int
	// Workers bounds build/query parallelism (default: all CPUs).
	Workers int
	// ProximityFingers enables proximity neighbor selection when filling
	// finger tables (a locality optimisation that stacks with the
	// hierarchy).
	ProximityFingers bool
}

// System is a fully built HIERAS overlay over a simulated internetwork.
type System struct {
	overlay  *core.Overlay
	scenario experiments.Scenario
}

// validate rejects malformed Options up front, before any expensive
// topology generation. Zero values mean "use the default" and pass.
func (o Options) validate() error {
	switch o.Model {
	case "", experiments.ModelTS, experiments.ModelInet, experiments.ModelBRITE, experiments.ModelWaxman:
	default:
		return fmt.Errorf("%w: unknown topology model %q", ErrBadOptions, o.Model)
	}
	if o.Nodes < 0 {
		return fmt.Errorf("%w: negative Nodes %d", ErrBadOptions, o.Nodes)
	}
	if o.Depth < 0 {
		return fmt.Errorf("%w: negative Depth %d", ErrBadOptions, o.Depth)
	}
	if o.Landmarks < 0 {
		return fmt.Errorf("%w: negative Landmarks %d", ErrBadOptions, o.Landmarks)
	}
	if o.Routers < 0 {
		return fmt.Errorf("%w: negative Routers %d", ErrBadOptions, o.Routers)
	}
	return nil
}

// New builds a system: it generates the underlay, attaches hosts, selects
// landmarks, bins every node and constructs all per-ring routing state.
// Malformed options fail fast with an error wrapping ErrBadOptions.
func New(opts Options) (*System, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	sc := experiments.Scenario{
		Model:            opts.Model,
		Nodes:            opts.Nodes,
		Landmarks:        opts.Landmarks,
		Depth:            opts.Depth,
		Seed:             opts.Seed,
		Routers:          opts.Routers,
		Workers:          opts.Workers,
		ProximityFingers: opts.ProximityFingers,
	}
	o, err := experiments.BuildOverlay(sc)
	if err != nil {
		return nil, err
	}
	return &System{overlay: o, scenario: sc}, nil
}

// N returns the number of peers.
func (s *System) N() int { return s.overlay.N() }

// Depth returns the hierarchy depth.
func (s *System) Depth() int { return s.overlay.Depth() }

// NumRings returns the number of lower-layer P2P rings.
func (s *System) NumRings() int { return s.overlay.NumRings() }

// RingName returns the layer-2 ring name of a peer (its landmark order),
// or "" for depth-1 systems.
func (s *System) RingName(peer int) string {
	nd := s.overlay.Node(peer)
	if len(nd.RingNames) == 0 {
		return ""
	}
	return nd.RingNames[0]
}

// Route is the outcome of one lookup.
type Route struct {
	// Dest is the peer owning the key.
	Dest int
	// Hops is the total number of routing hops; LowerHops counts those
	// taken in lower-layer rings.
	Hops, LowerHops int
	// Latency is the routing latency in milliseconds; LowerLatency the
	// share accumulated in lower-layer rings.
	Latency, LowerLatency float64
	// CacheHit reports that a CachedSystem answered from the requester's
	// location cache (always false on other Lookupers).
	CacheHit bool
}

func fromResult(r core.RouteResult) Route {
	return Route{
		Dest:         r.Dest,
		Hops:         r.NumHops(),
		LowerHops:    r.LowerHops,
		Latency:      r.Latency,
		LowerLatency: r.LowerLatency,
	}
}

// checkOrigin validates a lookup origin against the system size.
func (s *System) checkOrigin(origin int) error {
	if origin < 0 || origin >= s.N() {
		return fmt.Errorf("%w: %d not in [0,%d)", ErrOriginOutOfRange, origin, s.N())
	}
	return nil
}

// Lookup routes from peer `origin` to the owner of the named key using
// HIERAS's hierarchical procedure.
func (s *System) Lookup(origin int, key string) (Route, error) {
	if err := s.checkOrigin(origin); err != nil {
		return Route{}, err
	}
	return fromResult(s.overlay.Route(origin, core.KeyID(key))), nil
}

// ChordLookup routes the same request over the flat global ring — the
// baseline the paper compares against.
func (s *System) ChordLookup(origin int, key string) (Route, error) {
	if err := s.checkOrigin(origin); err != nil {
		return Route{}, err
	}
	return fromResult(s.overlay.ChordRoute(origin, core.KeyID(key))), nil
}

// BatchLookup routes one lookup per (origins[i], keys[i]) pair through
// the parallel batch query engine, fanning the work across Options.Workers
// goroutines, and returns the routes in request order. All origins are
// validated before any routing runs.
func (s *System) BatchLookup(origins []int, keys []string) ([]Route, error) {
	if len(origins) != len(keys) {
		return nil, fmt.Errorf("%w: %d origins for %d keys", ErrBadOptions, len(origins), len(keys))
	}
	for _, origin := range origins {
		if err := s.checkOrigin(origin); err != nil {
			return nil, err
		}
	}
	out := make([]Route, len(keys))
	const block = 256
	blocks := (len(keys) + block - 1) / block
	err := experiments.NewPool(s.scenario.Workers).Run(context.Background(), blocks, //lint:allow ctxflow BatchLookup is the package's ctx-less convenience API; the pool drains before it returns, so nothing outlives the call
		func(_, b int) error {
			lo, hi := b*block, (b+1)*block
			if hi > len(keys) {
				hi = len(keys)
			}
			for i := lo; i < hi; i++ {
				out[i] = fromResult(s.overlay.Route(origins[i], core.KeyID(keys[i])))
			}
			return nil
		}, nil)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ComparisonSummary condenses a HIERAS-vs-Chord measurement. For a fixed
// seed it is byte-identical at any worker count: the batch engine splits
// the request stream into deterministic blocks and merges them in order.
type ComparisonSummary struct {
	Requests          int
	HierasHops        float64
	ChordHops         float64
	HierasLatencyMs   float64
	ChordLatencyMs    float64
	LatencyRatio      float64 // HIERAS / Chord (paper: ~0.52 on TS)
	HopRatio          float64 // HIERAS / Chord (paper: ~1.01-1.03)
	LowerHopShare     float64 // fraction of hops in lower rings (~0.71)
	LowerLatencyShare float64
	// Latency distribution tails (milliseconds), from mergeable quantile
	// sketches with 1% relative accuracy.
	HierasLatencyP50 float64
	HierasLatencyP99 float64
	ChordLatencyP50  float64
	ChordLatencyP99  float64
}

func summarize(requests int, cmp *experiments.Comparison) ComparisonSummary {
	return ComparisonSummary{
		Requests:          requests,
		HierasHops:        cmp.Hieras.Hops.Mean(),
		ChordHops:         cmp.Chord.Hops.Mean(),
		HierasLatencyMs:   cmp.Hieras.Latency.Mean(),
		ChordLatencyMs:    cmp.Chord.Latency.Mean(),
		LatencyRatio:      cmp.LatencyRatio(),
		HopRatio:          cmp.HopRatio(),
		LowerHopShare:     cmp.LowerHopShare(),
		LowerLatencyShare: cmp.LowerLatencyShare(),
		HierasLatencyP50:  cmp.HierasLatQ.Quantile(0.50),
		HierasLatencyP99:  cmp.HierasLatQ.Quantile(0.99),
		ChordLatencyP50:   cmp.ChordLatQ.Quantile(0.50),
		ChordLatencyP99:   cmp.ChordLatQ.Quantile(0.99),
	}
}

// Compare routes `requests` random lookups through both algorithms over
// this system and summarises the comparison.
func (s *System) Compare(requests int) (ComparisonSummary, error) {
	return s.CompareContext(context.Background(), requests) //lint:allow ctxflow Compare is the documented ctx-less convenience wrapper over CompareContext
}

// CompareContext is Compare with cancellation: the batch engine stops
// fanning out blocks and returns ctx.Err() when ctx is cancelled.
func (s *System) CompareContext(ctx context.Context, requests int) (ComparisonSummary, error) {
	sc := s.scenario
	sc.Requests = requests
	cmp, err := experiments.CompareContext(ctx, s.overlay, sc)
	if err != nil {
		return ComparisonSummary{}, err
	}
	return summarize(requests, cmp), nil
}

// Store creates a replicated key-value (file-location) service over this
// system.
func (s *System) Store(replicas int) (*kv.Store, error) {
	return kv.New(s.overlay, replicas)
}

// Overlay exposes the underlying overlay for advanced use (experiment
// harnesses, custom metrics).
func (s *System) Overlay() *core.Overlay { return s.overlay }
