package core

import (
	"fmt"
	"math/rand"

	"repro/internal/binning"
	"repro/internal/chord"
	"repro/internal/id"
	"repro/internal/topology"
)

// ProtoOverlay is the message-level HIERAS overlay: nodes join one at a
// time through the protocol of paper §3.3, ring tables live on their
// responsible nodes, and every remote interaction is counted. It exists to
// validate the oracle Overlay (both must produce identical routing
// structure) and to measure join/maintenance overheads.
type ProtoOverlay struct {
	cfg       Config
	net       *topology.Network
	ladder    binning.Ladder
	landmarks []int

	global *chord.Proto
	rings  map[RingKey]*chord.Proto

	ringTables map[RingKey]*RingTable

	nodes map[int]*ProtoNode // by host

	// ExtraMsgs counts protocol messages outside the per-ring Chord
	// protocols: landmark pings, ring table requests and updates.
	ExtraMsgs int64
}

// ProtoNode is one peer of the protocol overlay.
type ProtoNode struct {
	Host      int
	ID        id.ID
	RingNames []string
	Global    *chord.ProtoNode
	Lower     []*chord.ProtoNode // per lower layer, most global first (layer 2 at index 0)
}

// NewProtoOverlay prepares an empty protocol overlay over net. Landmarks
// are selected up front (they are "well-known machines", paper §2.3).
func NewProtoOverlay(net *topology.Network, cfg Config, rng *rand.Rand) (*ProtoOverlay, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := &ProtoOverlay{
		cfg:        cfg,
		net:        net,
		global:     chord.NewProto(cfg.SuccessorListLen),
		rings:      make(map[RingKey]*chord.Proto),
		ringTables: make(map[RingKey]*RingTable),
		nodes:      make(map[int]*ProtoNode),
	}
	if cfg.Depth > 1 {
		var err error
		p.ladder = cfg.Ladder
		if p.ladder == nil {
			if p.ladder, err = binning.DefaultLadder(cfg.Depth); err != nil {
				return nil, err
			}
		}
		if p.landmarks, err = topology.SelectLandmarks(net, cfg.Landmarks, cfg.LandmarkStrategy, rng); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Size returns the number of joined peers.
func (p *ProtoOverlay) Size() int { return len(p.nodes) }

// NodeByHost returns the peer for a host, or nil.
func (p *ProtoOverlay) NodeByHost(host int) *ProtoNode { return p.nodes[host] }

// Msgs returns the total protocol message count across the global ring,
// all lower rings and the ring-table machinery.
func (p *ProtoOverlay) Msgs() int64 {
	total := p.global.Msgs + p.ExtraMsgs
	for _, r := range p.rings {
		total += r.Msgs
	}
	return total
}

// Join adds host to the overlay through the paper's §3.3 procedure. The
// bootstrap peer may be nil only for the first node. rng supplies ping
// noise. It returns the new peer and the number of protocol messages the
// join consumed.
func (p *ProtoOverlay) Join(host int, bootstrap *ProtoNode, rng *rand.Rand) (*ProtoNode, int64, error) {
	if _, dup := p.nodes[host]; dup {
		return nil, 0, fmt.Errorf("core: host %d already joined", host)
	}
	before := p.Msgs()
	n := &ProtoNode{Host: host, ID: NodeID(host)}

	// Step 1: learn the landmark table from the nearby node and measure
	// distances (one ping per landmark).
	if p.cfg.Depth > 1 {
		if bootstrap != nil {
			p.ExtraMsgs++ // fetch landmark table
		}
		lats := p.net.PingVector(host, p.landmarks, rng)
		p.ExtraMsgs += int64(len(p.landmarks))
		names, err := binning.RingNames(lats, p.ladder)
		if err != nil {
			return nil, 0, err
		}
		n.RingNames = names
	}

	// Step 2: join the global ring and build the highest-layer finger
	// table via lookups through the bootstrap node.
	m := chord.Member{ID: n.ID, Host: host}
	if bootstrap == nil {
		if p.Size() != 0 {
			return nil, 0, fmt.Errorf("core: bootstrap peer required after the first join")
		}
		g, err := p.global.Bootstrap(m)
		if err != nil {
			return nil, 0, err
		}
		n.Global = g
	} else {
		g, err := p.global.Join(m, bootstrap.Global)
		if err != nil {
			return nil, 0, err
		}
		n.Global = g
		p.global.StabilizeAll()
		if err := p.global.BuildFingers(g, bootstrap.Global); err != nil {
			return nil, 0, err
		}
	}

	// Step 3: per lower layer, locate the ring table, learn a member of
	// the ring, and join that ring.
	for l := 0; l < p.cfg.Depth-1; l++ {
		key := RingKey{Layer: l + 2, Name: n.RingNames[l]}
		ringID := key.RingID()
		// Ordinary Chord routing to the node storing the ring table.
		if p.Size() > 1 {
			if _, _, err := p.global.FindSuccessorFrom(n.Global, ringID); err != nil {
				return nil, 0, err
			}
			p.ExtraMsgs++ // ring table response
		}
		ring, exists := p.rings[key]
		rt := p.ringTables[key]
		if !exists {
			// First member: create the ring and its table.
			ring = chord.NewProto(p.cfg.SuccessorListLen)
			ln, err := ring.Bootstrap(m)
			if err != nil {
				return nil, 0, err
			}
			p.rings[key] = ring
			n.Lower = append(n.Lower, ln)
			rt = &RingTable{Key: key, RingID: ringID}
			rt.Smallest, rt.SecondSmallest = n.ID, n.ID
			rt.Largest, rt.SecondLargest = n.ID, n.ID
			p.ringTables[key] = rt
			p.ExtraMsgs++ // store the new ring table
			continue
		}
		// Ask a known member (from the ring table) to integrate us: the
		// member performs the in-ring lookups that build our finger table.
		member := p.memberFromTable(ring, rt)
		if member == nil {
			return nil, 0, fmt.Errorf("core: ring table for %v names no live member", key)
		}
		p.ExtraMsgs++ // finger table creation request
		ln, err := ring.Join(m, member)
		if err != nil {
			return nil, 0, err
		}
		ring.StabilizeAll()
		if err := ring.BuildFingers(ln, member); err != nil {
			return nil, 0, err
		}
		n.Lower = append(n.Lower, ln)
		// Step 4: update the ring table if the newcomer is a boundary node.
		if p.updateRingTableOnJoin(rt, ring) {
			p.ExtraMsgs++ // ring table modification message
		}
	}
	p.nodes[host] = n
	return n, p.Msgs() - before, nil
}

// memberFromTable resolves a live ring member named by the ring table.
func (p *ProtoOverlay) memberFromTable(ring *chord.Proto, rt *RingTable) *chord.ProtoNode {
	for _, cand := range []id.ID{rt.Smallest, rt.Largest, rt.SecondSmallest, rt.SecondLargest} {
		for _, nd := range ring.Nodes() {
			if nd.ID == cand && nd.Alive() {
				return nd
			}
		}
	}
	// Fall back to any live member (the periodic repair path).
	nodes := ring.Nodes()
	if len(nodes) > 0 {
		return nodes[0]
	}
	return nil
}

// updateRingTableOnJoin refreshes the boundary entries from the ring's
// live membership; it reports whether the table changed.
func (p *ProtoOverlay) updateRingTableOnJoin(rt *RingTable, ring *chord.Proto) bool {
	ids := make([]id.ID, 0, len(ring.Nodes()))
	for _, nd := range ring.Nodes() {
		ids = append(ids, nd.ID)
	}
	sortIDs(ids)
	s1, s2, l1, l2 := rt.Smallest, rt.SecondSmallest, rt.Largest, rt.SecondLargest
	rt.boundaryFromSorted(ids)
	return s1 != rt.Smallest || s2 != rt.SecondSmallest || l1 != rt.Largest || l2 != rt.SecondLargest
}

func sortIDs(ids []id.ID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j].Less(ids[j-1]); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// StabilizeAll runs one stabilization round over the global ring and every
// lower ring.
func (p *ProtoOverlay) StabilizeAll() {
	p.global.StabilizeAll()
	for _, r := range p.rings {
		r.StabilizeAll()
	}
}

// FixAllFingers refreshes every finger of every node in every ring.
func (p *ProtoOverlay) FixAllFingers() error {
	if err := p.global.FixAllFingers(); err != nil {
		return err
	}
	for _, r := range p.rings {
		if err := r.FixAllFingers(); err != nil {
			return err
		}
	}
	return nil
}

// Route performs the hierarchical routing procedure over the protocol
// overlay and returns the destination peer and per-layer hop counts
// (index 0 = global ring, index l = layer l+1).
func (p *ProtoOverlay) Route(from *ProtoNode, key id.ID) (*chord.ProtoNode, []int, error) {
	hops := make([]int, p.cfg.Depth)
	cur := from
	// owns reports the local destination check of paper §3.2: a peer owns
	// the key when it lies in (predecessor, self].
	owns := func(n *ProtoNode) bool {
		pred := n.Global.Predecessor()
		return pred != nil && id.InOpenClosed(key, pred.ID, n.ID)
	}
	for l := p.cfg.Depth - 2; l >= 0; l-- {
		if owns(cur) {
			return cur.Global, hops, nil
		}
		ring := p.rings[RingKey{Layer: l + 2, Name: cur.RingNames[l]}]
		if ring == nil {
			return nil, nil, fmt.Errorf("core: missing ring for layer %d", l+2)
		}
		pred, h, err := ring.WalkToPredecessor(cur.Lower[l], key)
		if err != nil {
			return nil, nil, err
		}
		hops[l+1] = h
		nd := p.nodes[pred.Host]
		if nd == nil {
			return nil, nil, fmt.Errorf("core: unknown host %d in ring", pred.Host)
		}
		cur = nd
	}
	if owns(cur) {
		return cur.Global, hops, nil
	}
	dest, h, err := p.global.FindSuccessorFrom(cur.Global, key)
	if err != nil {
		return nil, nil, err
	}
	hops[0] = h
	return dest, hops, nil
}

// RingTableFor exposes a ring table (protocol view).
func (p *ProtoOverlay) RingTableFor(layer int, name string) *RingTable {
	return p.ringTables[RingKey{Layer: layer, Name: name}]
}

// RingProto returns the protocol instance of a lower ring, or nil.
func (p *ProtoOverlay) RingProto(layer int, name string) *chord.Proto {
	return p.rings[RingKey{Layer: layer, Name: name}]
}

// GlobalProto returns the global-ring protocol instance.
func (p *ProtoOverlay) GlobalProto() *chord.Proto { return p.global }

// Leave removes a peer gracefully from every ring it belongs to.
func (p *ProtoOverlay) Leave(n *ProtoNode) {
	for l, ln := range n.Lower {
		key := RingKey{Layer: l + 2, Name: n.RingNames[l]}
		ring := p.rings[key]
		ring.Leave(ln)
		if ring.Size() == 0 {
			delete(p.rings, key)
			delete(p.ringTables, key)
		} else if rt := p.ringTables[key]; rt != nil && p.updateRingTableOnJoin(rt, ring) {
			p.ExtraMsgs++
		}
	}
	p.global.Leave(n.Global)
	delete(p.nodes, n.Host)
}

// Fail kills a peer silently in every ring; other members discover the
// failure through stabilization.
func (p *ProtoOverlay) Fail(n *ProtoNode) {
	for l, ln := range n.Lower {
		key := RingKey{Layer: l + 2, Name: n.RingNames[l]}
		if ring := p.rings[key]; ring != nil {
			ring.Fail(ln)
			if ring.Size() == 0 {
				delete(p.rings, key)
				delete(p.ringTables, key)
			}
		}
	}
	p.global.Fail(n.Global)
	delete(p.nodes, n.Host)
}

// RepairRingTables is the storing node's periodic check (paper §3.1): it
// refreshes boundary entries from live membership, one message per ring.
func (p *ProtoOverlay) RepairRingTables() {
	for key, rt := range p.ringTables {
		ring := p.rings[key]
		if ring == nil || ring.Size() == 0 {
			delete(p.ringTables, key)
			continue
		}
		p.ExtraMsgs++
		p.updateRingTableOnJoin(rt, ring)
	}
}
