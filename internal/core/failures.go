package core

import (
	"fmt"

	"repro/internal/chord"
	"repro/internal/id"
)

// FaultyView routes over the overlay with a subset of peers silently
// failed, before any repair has run: fingers pointing at dead peers are
// skipped (a timeout in a real deployment) and per-layer successor lists
// bridge dead ring neighbors, exactly the Chord failure machinery the
// paper says HIERAS inherits in every layer (§3.3). The view is read-only
// and safe for concurrent use.
type FaultyView struct {
	o    *Overlay
	dead []bool
	r    int
	rm   *routeMetrics // overlay instrumentation at view creation; may be nil
}

// WithFailures returns a view of the overlay in which dead[i] peers have
// failed. The slice is copied.
func (o *Overlay) WithFailures(dead []bool) (*FaultyView, error) {
	if len(dead) != o.N() {
		return nil, fmt.Errorf("core: dead mask has %d entries for %d peers", len(dead), o.N())
	}
	cp := make([]bool, len(dead))
	copy(cp, dead)
	alive := 0
	for _, d := range cp {
		if !d {
			alive++
		}
	}
	if alive == 0 {
		return nil, fmt.Errorf("core: all peers failed")
	}
	return &FaultyView{o: o, dead: cp, r: o.cfg.SuccessorListLen, rm: o.instr.Load()}, nil
}

// Alive reports whether peer i is alive in this view.
func (v *FaultyView) Alive(i int) bool { return !v.dead[i] }

// LiveOwner returns the first live peer at or after key on the global
// ring — where the key's responsibility lands after the failures.
func (v *FaultyView) LiveOwner(key id.ID) int {
	u := v.o.global.SuccessorIndex(key)
	for i := 0; i < v.o.N(); i++ {
		if !v.dead[u] {
			return u
		}
		u = v.o.global.Next(u)
	}
	return -1 // unreachable: WithFailures guarantees a live peer
}

// liveSuccessor finds the first live member after m in the ring's
// successor list (global index translation via toGlobal). It fails when r
// consecutive successors are dead — the situation real Chord cannot
// survive either.
func (v *FaultyView) liveSuccessor(t *chord.Table, m int, toGlobal func(int) int) (int, bool) {
	for _, s := range t.SuccessorList(m, v.r) {
		if !v.dead[toGlobal(s)] {
			return s, true
		}
		if v.rm != nil {
			v.rm.deadSkips.Inc()
		}
	}
	return 0, false
}

// walkLayer routes toward key inside one ring, skipping dead fingers,
// until the current member immediately precedes the key among live ring
// members. Returns the final member.
func (v *FaultyView) walkLayer(t *chord.Table, from int, key id.ID, toGlobal func(int) int, record func(f, to int)) (int, error) {
	u := from
	for step := 0; step < 4*id.Bits; step++ {
		s, ok := v.liveSuccessor(t, u, toGlobal)
		if !ok {
			return u, fmt.Errorf("core: %d consecutive successors dead", v.r)
		}
		if id.InOpenClosed(key, t.ID(u), t.ID(s)) {
			return u, nil
		}
		// Closest preceding LIVE finger.
		next := -1
		for k := id.Bits - 1; k >= 0; k-- {
			f := t.Finger(u, uint(k))
			if f != u && !v.dead[toGlobal(f)] && id.Between(t.ID(f), t.ID(u), key) {
				next = f
				break
			}
		}
		if next == -1 {
			next = s
		}
		record(u, next)
		u = next
	}
	return u, fmt.Errorf("core: faulty walk did not converge")
}

// Route performs the hierarchical routing procedure under failures. The
// originator must be alive. On success Dest is the key's live owner.
func (v *FaultyView) Route(from int, key id.ID) (RouteResult, error) {
	if v.dead[from] {
		return RouteResult{}, fmt.Errorf("core: route from dead peer %d", from)
	}
	res := RouteResult{Origin: from, Key: key}
	owner := v.LiveOwner(key)
	res.Dest = owner
	record := func(layer int) func(f, tg int) {
		return func(f, tg int) {
			lat := v.o.net.Latency(v.o.nodes[f].Host, v.o.nodes[tg].Host)
			res.Hops = append(res.Hops, Hop{Layer: layer, From: f, To: tg, Latency: lat})
			res.Latency += lat
			if layer >= 2 {
				res.LowerHops++
				res.LowerLatency += lat
			}
			v.rm.hop(layer)
		}
	}
	cur := from
	for layer := v.o.cfg.Depth; layer >= 2; layer-- {
		if cur == owner {
			return res, nil
		}
		ring, member := v.o.RingOf(cur, layer)
		rec := record(layer)
		p, err := v.walkLayer(ring.Table, member, key, func(m int) int { return int(ring.Global[m]) },
			func(f, tg int) { rec(int(ring.Global[f]), int(ring.Global[tg])) })
		// A lower ring can be shattered (r consecutive ring successors
		// dead) while the overlay as a whole is fine; on error give up on
		// this layer from wherever the partial walk reached and climb, as
		// a real peer would after timeouts.
		cur = int(ring.Global[p])
		if err != nil && v.rm != nil {
			v.rm.layerAborts.Inc()
		}
	}
	if cur == owner {
		return res, nil
	}
	rec := record(1)
	p, err := v.walkLayer(v.o.global, cur, key, func(m int) int { return m }, rec)
	if err != nil {
		return res, err
	}
	if p != owner {
		// Final hop to the live owner (possibly skipping dead successors).
		s, ok := v.liveSuccessor(v.o.global, p, func(m int) int { return m })
		if !ok {
			return res, fmt.Errorf("core: owner unreachable past %d", p)
		}
		rec(p, s)
		if s != owner {
			return res, fmt.Errorf("core: landed on %d, live owner is %d", s, owner)
		}
	}
	return res, nil
}

// ChordRoute is the flat baseline under the same failures.
func (v *FaultyView) ChordRoute(from int, key id.ID) (RouteResult, error) {
	if v.dead[from] {
		return RouteResult{}, fmt.Errorf("core: route from dead peer %d", from)
	}
	res := RouteResult{Origin: from, Key: key}
	owner := v.LiveOwner(key)
	res.Dest = owner
	if from == owner {
		return res, nil
	}
	rec := func(f, tg int) {
		lat := v.o.net.Latency(v.o.nodes[f].Host, v.o.nodes[tg].Host)
		res.Hops = append(res.Hops, Hop{Layer: 1, From: f, To: tg, Latency: lat})
		res.Latency += lat
	}
	p, err := v.walkLayer(v.o.global, from, key, func(m int) int { return m }, rec)
	if err != nil {
		return res, err
	}
	if p != owner {
		s, ok := v.liveSuccessor(v.o.global, p, func(m int) int { return m })
		if !ok {
			return res, fmt.Errorf("core: owner unreachable past %d", p)
		}
		rec(p, s)
		if s != owner {
			return res, fmt.Errorf("core: landed on %d, live owner is %d", s, owner)
		}
	}
	return res, nil
}
