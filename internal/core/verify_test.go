package core

import (
	"testing"
)

// TestCheckInvariantsRandomOverlays runs the structural checker against
// overlays built from random topologies across the configuration space:
// depths 1-4, plain and proximity fingers, fixed and adaptive binning.
func TestCheckInvariantsRandomOverlays(t *testing.T) {
	cases := []struct {
		name  string
		hosts int
		cfg   Config
		seed  int64
	}{
		{"depth1", 40, Config{Depth: 1}, 11},
		{"depth2", 60, Config{Depth: 2, Landmarks: 4}, 12},
		{"depth3", 60, Config{Depth: 3, Landmarks: 4}, 13},
		{"depth4", 80, Config{Depth: 4, Landmarks: 3}, 14},
		{"pns", 60, Config{Depth: 2, Landmarks: 4, ProximityFingers: true}, 15},
		{"adaptive", 60, Config{Depth: 3, Landmarks: 4, AdaptiveBinning: true}, 16},
		{"dropped landmark", 60, Config{Depth: 2, Landmarks: 4, DropLandmarks: []int{1}}, 17},
		{"tiny", 3, Config{Depth: 2, Landmarks: 2}, 18},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := buildOverlay(t, tc.hosts, tc.cfg, tc.seed)
			if err := o.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCheckInvariantsCatchesCorruption corrupts one overlay relation at a
// time and verifies the checker notices.
func TestCheckInvariantsCatchesCorruption(t *testing.T) {
	o := buildOverlay(t, 50, Config{Depth: 2, Landmarks: 4}, 21)
	if err := o.CheckInvariants(); err != nil {
		t.Fatalf("fresh overlay fails: %v", err)
	}

	t.Run("wrong bin", func(t *testing.T) {
		i := 7
		orig := o.nodes[i].RingNames[0]
		o.nodes[i].RingNames[0] = orig + "!"
		defer func() { o.nodes[i].RingNames[0] = orig }()
		if err := o.CheckInvariants(); err == nil {
			t.Fatal("renamed bin not detected")
		}
	})

	t.Run("missing ring table", func(t *testing.T) {
		var key RingKey
		var rt *RingTable
		for k, v := range o.ringTables {
			key, rt = k, v
			break
		}
		delete(o.ringTables, key)
		defer func() { o.ringTables[key] = rt }()
		if err := o.CheckInvariants(); err == nil {
			t.Fatal("missing ring table not detected")
		}
	})

	t.Run("misplaced ring table", func(t *testing.T) {
		var rt *RingTable
		for _, v := range o.ringTables {
			rt = v
			break
		}
		rt.StoredAt = (rt.StoredAt + 1) % o.N()
		defer func() { rt.StoredAt = o.global.SuccessorIndex(rt.RingID) }()
		if err := o.CheckInvariants(); err == nil {
			t.Fatal("misplaced ring table not detected")
		}
	})

	if err := o.CheckInvariants(); err != nil {
		t.Fatalf("overlay not restored after corruption trials: %v", err)
	}
}
