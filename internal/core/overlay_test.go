package core

import (
	"math/rand"
	"testing"

	"repro/internal/binning"
	"repro/internal/topology"
	"repro/internal/topology/transitstub"
)

// testNetwork builds a small Transit-Stub network with the given number of
// overlay hosts.
func testNetwork(t testing.TB, hosts int, seed int64) *topology.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m, err := transitstub.Generate(transitstub.DefaultConfig(hosts), rng)
	if err != nil {
		t.Fatalf("transitstub.Generate: %v", err)
	}
	net, err := topology.Attach(m, m.G, topology.AttachOptions{
		Hosts:   hosts,
		Routers: m.StubRouters,
		Spread:  true,
	}, rng)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	return net
}

func buildOverlay(t testing.TB, hosts int, cfg Config, seed int64) *Overlay {
	t.Helper()
	net := testNetwork(t, hosts, seed)
	o, err := Build(net, cfg, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return o
}

func TestConfigValidation(t *testing.T) {
	net := testNetwork(t, 10, 1)
	rng := rand.New(rand.NewSource(2))
	if _, err := Build(net, Config{Depth: -1}, rng); err == nil {
		t.Error("negative depth accepted")
	}
	if _, err := Build(net, Config{Depth: 2, Landmarks: -1}, rng); err == nil {
		t.Error("negative landmark count accepted")
	}
	if _, err := Build(net, Config{Depth: 2, SuccessorListLen: -1}, rng); err == nil {
		t.Error("negative successor list accepted")
	}
	ladder, _ := binning.DefaultLadder(3)
	if _, err := Build(net, Config{Depth: 2, Ladder: ladder}, rng); err == nil {
		t.Error("ladder/depth mismatch accepted")
	}
}

func TestBuildDefaults(t *testing.T) {
	o := buildOverlay(t, 50, Config{}, 3)
	if o.Depth() != 2 {
		t.Errorf("default depth = %d, want 2", o.Depth())
	}
	if len(o.Landmarks()) != 4 {
		t.Errorf("default landmarks = %d, want 4", len(o.Landmarks()))
	}
	if o.N() != 50 {
		t.Errorf("N = %d", o.N())
	}
}

func TestNodesSortedAndIndexed(t *testing.T) {
	o := buildOverlay(t, 60, Config{Depth: 2}, 4)
	for i := 1; i < o.N(); i++ {
		if !o.Node(i - 1).ID.Less(o.Node(i).ID) {
			t.Fatal("nodes not in ascending ID order")
		}
	}
	for i := 0; i < o.N(); i++ {
		if o.Global().ID(i) != o.Node(i).ID {
			t.Fatal("global table misaligned with node list")
		}
		if o.IndexOfHost(o.Node(i).Host) != i {
			t.Fatal("IndexOfHost broken")
		}
	}
	if o.IndexOfHost(9999) != -1 {
		t.Error("IndexOfHost of unknown host should be -1")
	}
}

func TestRingsPartitionEveryLayer(t *testing.T) {
	o := buildOverlay(t, 80, Config{Depth: 3, Landmarks: 4}, 5)
	for layer := 2; layer <= 3; layer++ {
		total := 0
		for _, r := range o.Rings(layer) {
			total += r.Size()
			if r.Layer != layer {
				t.Fatalf("ring reports layer %d in map for layer %d", r.Layer, layer)
			}
		}
		if total != o.N() {
			t.Fatalf("layer %d rings cover %d nodes, want %d", layer, total, o.N())
		}
	}
	if o.Rings(1) != nil || o.Rings(4) != nil {
		t.Error("Rings out of range should return nil")
	}
}

func TestRingMembershipMatchesBinning(t *testing.T) {
	o := buildOverlay(t, 70, Config{Depth: 2, Landmarks: 4}, 6)
	net := o.Network()
	ladder, _ := binning.DefaultLadder(2)
	rng := rand.New(rand.NewSource(99)) // no noise: rng unused by Ping
	for i := 0; i < o.N(); i++ {
		nd := o.Node(i)
		lats := net.PingVector(nd.Host, o.Landmarks(), rng)
		names, err := binning.RingNames(lats, ladder)
		if err != nil {
			t.Fatal(err)
		}
		if nd.RingNames[0] != names[0] {
			t.Fatalf("node %d ring name %q, binning says %q", i, nd.RingNames[0], names[0])
		}
		ring, member := o.RingOf(i, 2)
		if ring.Name != names[0] {
			t.Fatalf("node %d placed in ring %q", i, ring.Name)
		}
		if ring.Table.ID(member) != nd.ID {
			t.Fatal("ring member index does not resolve to the node")
		}
		if int(ring.Global[member]) != i {
			t.Fatal("ring Global mapping broken")
		}
	}
}

func TestRefinementAcrossLayers(t *testing.T) {
	o := buildOverlay(t, 90, Config{Depth: 3, Landmarks: 4}, 7)
	// Nodes sharing a layer-3 ring must share their layer-2 ring.
	for i := 0; i < o.N(); i++ {
		for j := i + 1; j < o.N(); j++ {
			a, b := o.Node(i), o.Node(j)
			if a.RingNames[1] == b.RingNames[1] && a.RingNames[0] != b.RingNames[0] {
				t.Fatalf("nodes %d,%d share layer-3 ring %q but not layer-2", i, j, a.RingNames[1])
			}
		}
	}
}

func TestDepth1IsPlainChord(t *testing.T) {
	o := buildOverlay(t, 40, Config{Depth: 1}, 8)
	if o.NumRings() != 0 {
		t.Errorf("depth-1 overlay has %d lower rings", o.NumRings())
	}
	if len(o.Landmarks()) != 0 {
		t.Error("depth-1 overlay should not select landmarks")
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		key := KeyID("k" + string(rune('a'+trial)))
		h := o.Route(rng.Intn(o.N()), key)
		c := o.ChordRoute(h.Origin, key)
		if h.Dest != c.Dest || h.NumHops() != c.NumHops() {
			t.Fatal("depth-1 Route must equal ChordRoute")
		}
	}
}

func TestRingTables(t *testing.T) {
	o := buildOverlay(t, 60, Config{Depth: 2, Landmarks: 4}, 10)
	count := 0
	for _, r := range o.Rings(2) {
		rt := o.RingTable(2, r.Name)
		if rt == nil {
			t.Fatalf("missing ring table for %q", r.Name)
		}
		count++
		if rt.RingID != (RingKey{Layer: 2, Name: r.Name}).RingID() {
			t.Error("ring id mismatch")
		}
		// Boundary entries.
		if rt.Smallest != r.Table.ID(0) || rt.Largest != r.Table.ID(r.Size()-1) {
			t.Error("boundary entries wrong")
		}
		if r.Size() >= 2 {
			if rt.SecondSmallest != r.Table.ID(1) || rt.SecondLargest != r.Table.ID(r.Size()-2) {
				t.Error("second boundary entries wrong")
			}
		} else if rt.SecondSmallest != rt.Smallest || rt.SecondLargest != rt.Largest {
			t.Error("singleton ring table should repeat entries")
		}
		// Stored at successor(ringid) in the global ring.
		if rt.StoredAt != o.Global().SuccessorIndex(rt.RingID) {
			t.Error("ring table stored at wrong node")
		}
		if len(rt.Replicas) == 0 && o.N() > 1 {
			t.Error("ring table has no replicas")
		}
		if !rt.Contains(rt.Smallest) || !rt.Contains(rt.Largest) {
			t.Error("Contains broken")
		}
		if rt.Contains(KeyID("definitely not a member")) {
			t.Error("Contains matched a stranger")
		}
	}
	if count == 0 {
		t.Fatal("no rings at layer 2")
	}
	if got := len(o.RingTables()); got != o.NumRings() {
		t.Errorf("RingTables count %d != NumRings %d", got, o.NumRings())
	}
	if o.RingTable(2, "no-such-ring") != nil {
		t.Error("unknown ring table should be nil")
	}
}

func TestLayerStats(t *testing.T) {
	o := buildOverlay(t, 100, Config{Depth: 3, Landmarks: 4}, 11)
	stats := o.LayerStats()
	if len(stats) != 2 {
		t.Fatalf("LayerStats len = %d", len(stats))
	}
	for _, s := range stats {
		if s.Rings <= 0 || s.MinSize <= 0 || s.MaxSize < s.MinSize {
			t.Errorf("implausible layer stats %+v", s)
		}
		if s.MeanSize < float64(s.MinSize) || s.MeanSize > float64(s.MaxSize) {
			t.Errorf("mean outside min/max: %+v", s)
		}
	}
	// Deeper layers have at least as many rings (refinement).
	if stats[1].Rings < stats[0].Rings {
		t.Errorf("layer 3 has fewer rings (%d) than layer 2 (%d)", stats[1].Rings, stats[0].Rings)
	}
}

func TestStateStats(t *testing.T) {
	o := buildOverlay(t, 60, Config{Depth: 2, Landmarks: 4}, 12)
	s := o.StateStats()
	if s.Nodes != 60 || s.Depth != 2 {
		t.Errorf("basic fields wrong: %+v", s)
	}
	if s.FingerEntriesPerNode != 320 {
		t.Errorf("finger entries = %d, want 320", s.FingerEntriesPerNode)
	}
	if s.SuccessorListEntriesPerNode != 8 {
		t.Errorf("succ list entries = %d, want 8", s.SuccessorListEntriesPerNode)
	}
	if s.DistinctFingersPerNode < s.DistinctFingersLayer1 {
		t.Error("total distinct fingers cannot be below layer-1 distinct fingers")
	}
	if s.DistinctFingersLayer1 <= 0 || s.EstBytesPerNode <= 0 {
		t.Error("stats should be positive")
	}
	// The paper's §3.4 claim: multi-layer state stays within hundreds or
	// thousands of bytes.
	if s.EstBytesPerNode > 4096 {
		t.Errorf("per-node state estimate %v bytes is implausibly large", s.EstBytesPerNode)
	}
}

func TestBuildDeterministic(t *testing.T) {
	o1 := buildOverlay(t, 50, Config{Depth: 2}, 13)
	o2 := buildOverlay(t, 50, Config{Depth: 2}, 13)
	if o1.NumRings() != o2.NumRings() {
		t.Fatal("same seed produced different ring structure")
	}
	for i := 0; i < o1.N(); i++ {
		if o1.Node(i).RingNames[0] != o2.Node(i).RingNames[0] {
			t.Fatal("same seed produced different ring names")
		}
	}
}

func TestBuildEmptyNetwork(t *testing.T) {
	net := &topology.Network{Model: topology.NewDijkstraOracle(topology.NewGraph(1)), HostDelay: 1}
	if _, err := Build(net, Config{}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty network accepted")
	}
}
