package core

import (
	"math/rand"
	"testing"

	"repro/internal/id"
)

func TestWithFailuresValidation(t *testing.T) {
	o := buildOverlay(t, 30, Config{Depth: 2}, 70)
	if _, err := o.WithFailures(make([]bool, 5)); err == nil {
		t.Error("wrong mask length accepted")
	}
	all := make([]bool, o.N())
	for i := range all {
		all[i] = true
	}
	if _, err := o.WithFailures(all); err == nil {
		t.Error("all-dead mask accepted")
	}
}

func TestNoFailuresMatchesPlainRoute(t *testing.T) {
	o := buildOverlay(t, 80, Config{Depth: 2}, 71)
	v, err := o.WithFailures(make([]bool, o.N()))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 200; trial++ {
		from := rng.Intn(o.N())
		key := id.Rand(rng)
		fr, err := v.Route(from, key)
		if err != nil {
			t.Fatal(err)
		}
		plain := o.Route(from, key)
		if fr.Dest != plain.Dest || fr.NumHops() != plain.NumHops() {
			t.Fatalf("healthy faulty view differs from plain route: %d/%d vs %d/%d",
				fr.Dest, fr.NumHops(), plain.Dest, plain.NumHops())
		}
		cf, err := v.ChordRoute(from, key)
		if err != nil {
			t.Fatal(err)
		}
		pc := o.ChordRoute(from, key)
		if cf.Dest != pc.Dest || cf.NumHops() != pc.NumHops() {
			t.Fatal("healthy faulty chord view differs from plain")
		}
	}
}

func TestRoutesAroundFailures(t *testing.T) {
	o := buildOverlay(t, 150, Config{Depth: 2, SuccessorListLen: 8}, 73)
	rng := rand.New(rand.NewSource(74))
	dead := make([]bool, o.N())
	killed := 0
	for killed < o.N()/5 { // 20% dead
		i := rng.Intn(o.N())
		if !dead[i] {
			dead[i] = true
			killed++
		}
	}
	v, err := o.WithFailures(dead)
	if err != nil {
		t.Fatal(err)
	}
	okRoutes := 0
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		from := rng.Intn(o.N())
		if dead[from] {
			continue
		}
		key := id.Rand(rng)
		res, err := v.Route(from, key)
		if err != nil {
			continue
		}
		okRoutes++
		if dead[res.Dest] {
			t.Fatal("route delivered to a dead peer")
		}
		if res.Dest != v.LiveOwner(key) {
			t.Fatalf("dest %d, live owner %d", res.Dest, v.LiveOwner(key))
		}
		// Path never visits a dead peer.
		for _, h := range res.Hops {
			if dead[h.From] || dead[h.To] {
				t.Fatal("path traversed a dead peer")
			}
		}
	}
	if okRoutes < trials*7/10 {
		t.Fatalf("only %d/%d routes survived 20%% failures with r=8", okRoutes, trials)
	}
}

func TestFaultyRouteFromDeadPeerRejected(t *testing.T) {
	o := buildOverlay(t, 40, Config{Depth: 2}, 75)
	dead := make([]bool, o.N())
	dead[3] = true
	v, _ := o.WithFailures(dead)
	if _, err := v.Route(3, id.HashString("x")); err == nil {
		t.Error("route from dead peer accepted")
	}
	if _, err := v.ChordRoute(3, id.HashString("x")); err == nil {
		t.Error("chord route from dead peer accepted")
	}
}

func TestLiveOwnerSkipsDead(t *testing.T) {
	o := buildOverlay(t, 50, Config{Depth: 2}, 76)
	dead := make([]bool, o.N())
	// Kill the true owner of a key; the live owner must be a later node.
	key := id.HashString("victim-key")
	trueOwner := o.Global().SuccessorIndex(key)
	dead[trueOwner] = true
	v, _ := o.WithFailures(dead)
	lo := v.LiveOwner(key)
	if lo == trueOwner {
		t.Fatal("live owner is dead")
	}
	if !v.Alive(lo) {
		t.Fatal("Alive() inconsistent")
	}
	// And routing reaches it.
	from := (trueOwner + 5) % o.N()
	res, err := v.Route(from, key)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dest != lo {
		t.Fatalf("dest %d, want %d", res.Dest, lo)
	}
}

func TestChordAndHierasSurviveEqually(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	o := buildOverlay(t, 200, Config{Depth: 2, SuccessorListLen: 8}, 77)
	rng := rand.New(rand.NewSource(78))
	dead := make([]bool, o.N())
	for killed := 0; killed < o.N()/10; {
		i := rng.Intn(o.N())
		if !dead[i] {
			dead[i] = true
			killed++
		}
	}
	v, _ := o.WithFailures(dead)
	var hOK, cOK, trials int
	for trial := 0; trial < 500; trial++ {
		from := rng.Intn(o.N())
		if dead[from] {
			continue
		}
		trials++
		key := id.Rand(rng)
		if _, err := v.Route(from, key); err == nil {
			hOK++
		}
		if _, err := v.ChordRoute(from, key); err == nil {
			cOK++
		}
	}
	t.Logf("10%% failures: hieras %d/%d, chord %d/%d", hOK, trials, cOK, trials)
	// HIERAS inherits Chord's resilience (paper §3.3): success rates must
	// be comparable.
	if float64(hOK) < 0.9*float64(cOK) {
		t.Errorf("hieras success %d markedly below chord %d", hOK, cOK)
	}
}
