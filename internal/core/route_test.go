package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/id"
)

func TestRouteReachesOwner(t *testing.T) {
	o := buildOverlay(t, 120, Config{Depth: 2, Landmarks: 4}, 20)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 500; trial++ {
		from := rng.Intn(o.N())
		key := id.Rand(rng)
		res := o.Route(from, key)
		want := o.Global().SuccessorIndex(key)
		if res.Dest != want {
			t.Fatalf("Dest = %d, want %d", res.Dest, want)
		}
		// The recorded path must actually end at the destination (or be
		// empty when the origin owns the key).
		if len(res.Hops) > 0 {
			if res.Hops[len(res.Hops)-1].To != res.Dest {
				t.Fatalf("path ends at %d, dest %d", res.Hops[len(res.Hops)-1].To, res.Dest)
			}
		} else if from != want {
			t.Fatal("empty path but origin is not the owner")
		}
	}
}

func TestRoutePathContiguous(t *testing.T) {
	o := buildOverlay(t, 100, Config{Depth: 3, Landmarks: 4}, 22)
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		from := rng.Intn(o.N())
		res := o.Route(from, id.Rand(rng))
		cur := from
		var latSum, lowerLat float64
		lower := 0
		prevLayer := o.Depth() + 1
		for _, h := range res.Hops {
			if h.From != cur {
				t.Fatalf("discontiguous path at hop %+v (cur %d)", h, cur)
			}
			if h.Layer > prevLayer {
				t.Fatalf("layer increased from %d to %d: routing must climb", prevLayer, h.Layer)
			}
			prevLayer = h.Layer
			if h.Latency <= 0 {
				t.Fatalf("non-positive hop latency %v", h.Latency)
			}
			latSum += h.Latency
			if h.Layer >= 2 {
				lower++
				lowerLat += h.Latency
			}
			cur = h.To
		}
		if math.Abs(latSum-res.Latency) > 1e-9 {
			t.Fatalf("Latency %v != sum of hops %v", res.Latency, latSum)
		}
		if lower != res.LowerHops || math.Abs(lowerLat-res.LowerLatency) > 1e-9 {
			t.Fatal("lower-layer aggregates inconsistent")
		}
	}
}

func TestRouteOwnerZeroHops(t *testing.T) {
	o := buildOverlay(t, 50, Config{Depth: 2}, 24)
	for i := 0; i < o.N(); i++ {
		res := o.Route(i, o.Node(i).ID) // a node owns its own identifier
		if res.NumHops() != 0 || res.Dest != i {
			t.Fatalf("self-owned key took %d hops", res.NumHops())
		}
	}
}

func TestChordRouteMatchesGlobalLookup(t *testing.T) {
	o := buildOverlay(t, 80, Config{Depth: 2}, 25)
	rng := rand.New(rand.NewSource(26))
	for trial := 0; trial < 200; trial++ {
		from := rng.Intn(o.N())
		key := id.Rand(rng)
		res := o.ChordRoute(from, key)
		owner, hops := o.Global().Lookup(from, key, nil)
		if res.Dest != owner || res.NumHops() != hops {
			t.Fatal("ChordRoute disagrees with the global table lookup")
		}
		for _, h := range res.Hops {
			if h.Layer != 1 {
				t.Fatal("Chord hops must all be layer 1")
			}
		}
	}
}

// TestPaperHeadlineClaims verifies the paper's central results at reduced
// scale: HIERAS routes have roughly Chord's hop count but far lower
// latency on a Transit-Stub network, with the majority of hops taken in
// lower-layer rings (§4.2, §4.3).
func TestPaperHeadlineClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	o := buildOverlay(t, 400, Config{Depth: 2, Landmarks: 4}, 27)
	rng := rand.New(rand.NewSource(28))
	const trials = 2000
	var hHops, cHops, hLat, cLat, lowHops float64
	for trial := 0; trial < trials; trial++ {
		from := rng.Intn(o.N())
		key := id.Rand(rng)
		h := o.Route(from, key)
		c := o.ChordRoute(from, key)
		if h.Dest != c.Dest {
			t.Fatal("HIERAS and Chord disagree on the owner")
		}
		hHops += float64(h.NumHops())
		cHops += float64(c.NumHops())
		hLat += h.Latency
		cLat += c.Latency
		lowHops += float64(h.LowerHops)
	}
	hopRatio := hHops / cHops
	latRatio := hLat / cLat
	lowerShare := lowHops / hHops
	t.Logf("hops ratio %.3f, latency ratio %.3f, lower-layer share %.3f", hopRatio, latRatio, lowerShare)
	if hopRatio < 0.95 || hopRatio > 1.35 {
		t.Errorf("hop ratio %.3f outside the paper's ballpark (~1.008-1.034)", hopRatio)
	}
	if latRatio > 0.85 {
		t.Errorf("latency ratio %.3f: HIERAS should clearly beat Chord (~0.52 in the paper)", latRatio)
	}
	if lowerShare < 0.40 {
		t.Errorf("only %.1f%% of hops in lower rings (paper: ~71%%)", 100*lowerShare)
	}
}

func TestDeeperHierarchyReducesLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	// Paper §4.5: going from depth 2 to depth 3 reduces latency further.
	lat := map[int]float64{}
	for _, depth := range []int{2, 3} {
		o := buildOverlay(t, 400, Config{Depth: depth, Landmarks: 6}, 29)
		rng := rand.New(rand.NewSource(30))
		var sum float64
		for trial := 0; trial < 1500; trial++ {
			res := o.Route(rng.Intn(o.N()), id.Rand(rng))
			sum += res.Latency
		}
		lat[depth] = sum / 1500
	}
	t.Logf("depth 2: %.1f ms, depth 3: %.1f ms", lat[2], lat[3])
	if lat[3] > lat[2]*1.05 {
		t.Errorf("depth 3 latency %.1f should not exceed depth 2 latency %.1f", lat[3], lat[2])
	}
}

func TestSuccessorListAcceleration(t *testing.T) {
	oFast := buildOverlay(t, 150, Config{Depth: 2, AccelerateWithSuccessorList: true, SuccessorListLen: 8}, 31)
	rng := rand.New(rand.NewSource(32))
	accelerated := 0
	for trial := 0; trial < 500; trial++ {
		from := rng.Intn(oFast.N())
		key := id.Rand(rng)
		res := oFast.Route(from, key)
		if res.Dest != oFast.Global().SuccessorIndex(key) {
			t.Fatal("accelerated route landed on the wrong owner")
		}
		if res.Accelerated {
			accelerated++
			// The shortcut must be the final hop.
			last := res.Hops[len(res.Hops)-1]
			if last.To != res.Dest || last.Layer != 1 {
				t.Fatal("shortcut hop malformed")
			}
		}
	}
	if accelerated == 0 {
		t.Error("acceleration never triggered with r=8 on 150 nodes")
	}
}

func TestRouteDeterministic(t *testing.T) {
	o := buildOverlay(t, 60, Config{Depth: 2}, 33)
	key := KeyID("determinism")
	r1 := o.Route(5, key)
	r2 := o.Route(5, key)
	if r1.NumHops() != r2.NumHops() || r1.Latency != r2.Latency {
		t.Error("identical routes differ")
	}
}

func BenchmarkRoute(b *testing.B) {
	for _, n := range []int{200, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			o := buildOverlay(b, n, Config{Depth: 2, Landmarks: 4}, 40)
			rng := rand.New(rand.NewSource(41))
			keys := make([]id.ID, 512)
			for i := range keys {
				keys[i] = id.Rand(rng)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o.Route(i%n, keys[i%len(keys)])
			}
		})
	}
}
