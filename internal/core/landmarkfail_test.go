package core

import (
	"math/rand"
	"testing"

	"repro/internal/id"
)

func TestDropLandmarksValidation(t *testing.T) {
	net := testNetwork(t, 30, 80)
	rng := rand.New(rand.NewSource(81))
	if _, err := Build(net, Config{Depth: 2, Landmarks: 4, DropLandmarks: []int{7}}, rng); err == nil {
		t.Error("out-of-range drop index accepted")
	}
	if _, err := Build(net, Config{Depth: 2, Landmarks: 2, DropLandmarks: []int{0, 1}}, rng); err == nil {
		t.Error("dropping every landmark accepted")
	}
}

func TestDropLandmarkShortensOrders(t *testing.T) {
	healthy := buildOverlay(t, 60, Config{Depth: 2, Landmarks: 4}, 82)
	broken := buildOverlay(t, 60, Config{Depth: 2, Landmarks: 4, DropLandmarks: []int{1}}, 82)
	for i := 0; i < healthy.N(); i++ {
		h, b := healthy.Node(i).RingNames[0], broken.Node(i).RingNames[0]
		if len(h) != 4 || len(b) != 3 {
			t.Fatalf("order lengths %d/%d, want 4/3", len(h), len(b))
		}
		// The surviving digits must match: dropping landmark 1 removes
		// exactly position 1 from the healthy order.
		if b != h[:1]+h[2:] {
			t.Fatalf("node %d: healthy %q, after drop %q", i, h, b)
		}
	}
}

func TestDropLandmarkCoarsensRings(t *testing.T) {
	healthy := buildOverlay(t, 120, Config{Depth: 2, Landmarks: 6}, 83)
	broken := buildOverlay(t, 120, Config{Depth: 2, Landmarks: 6, DropLandmarks: []int{2}}, 83)
	// Dropping a digit merges rings: the broken overlay cannot have more.
	if broken.NumRings() > healthy.NumRings() {
		t.Errorf("rings grew after landmark failure: %d -> %d",
			healthy.NumRings(), broken.NumRings())
	}
	// Nodes that shared a ring still share one (merging only).
	for i := 0; i < healthy.N(); i++ {
		for j := i + 1; j < healthy.N(); j++ {
			if healthy.Node(i).RingNames[0] == healthy.Node(j).RingNames[0] &&
				broken.Node(i).RingNames[0] != broken.Node(j).RingNames[0] {
				t.Fatalf("landmark failure split a ring (%d, %d)", i, j)
			}
		}
	}
}

func TestPerformanceDegradesGracefully(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	ratio := func(drop []int) float64 {
		o := buildOverlay(t, 400, Config{Depth: 2, Landmarks: 6, DropLandmarks: drop}, 84)
		rng := rand.New(rand.NewSource(85))
		var h, c float64
		for trial := 0; trial < 1500; trial++ {
			from := rng.Intn(o.N())
			key := id.Rand(rng)
			h += o.Route(from, key).Latency
			c += o.ChordRoute(from, key).Latency
		}
		return h / c
	}
	healthy := ratio(nil)
	oneDown := ratio([]int{0})
	t.Logf("latency ratio: healthy %.3f, one landmark down %.3f", healthy, oneDown)
	if oneDown >= 1.0 {
		t.Errorf("one landmark failure should not erase the benefit entirely: %.3f", oneDown)
	}
	if oneDown < healthy-0.05 {
		t.Errorf("losing a landmark should not improve binning markedly: %.3f vs %.3f", oneDown, healthy)
	}
}

func TestAdaptiveBinning(t *testing.T) {
	o := buildOverlay(t, 200, Config{Depth: 2, Landmarks: 4, AdaptiveBinning: true}, 90)
	if o.NumRings() == 0 {
		t.Fatal("adaptive binning produced no rings")
	}
	// Routing still correct.
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 100; trial++ {
		key := id.Rand(rng)
		res := o.Route(rng.Intn(o.N()), key)
		if res.Dest != o.Global().SuccessorIndex(key) {
			t.Fatal("adaptive overlay routed to wrong owner")
		}
	}
}

func TestAdaptiveBinningDepth3Refines(t *testing.T) {
	o := buildOverlay(t, 150, Config{Depth: 3, Landmarks: 4, AdaptiveBinning: true}, 92)
	for i := 0; i < o.N(); i++ {
		for j := i + 1; j < o.N(); j++ {
			a, b := o.Node(i), o.Node(j)
			if a.RingNames[1] == b.RingNames[1] && a.RingNames[0] != b.RingNames[0] {
				t.Fatal("adaptive ladder broke the refinement property")
			}
		}
	}
}

func TestAdaptiveBinningCompetitive(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	ratio := func(adaptive bool) float64 {
		o := buildOverlay(t, 400, Config{Depth: 2, Landmarks: 6, AdaptiveBinning: adaptive}, 93)
		rng := rand.New(rand.NewSource(94))
		var h, c float64
		for trial := 0; trial < 1500; trial++ {
			from := rng.Intn(o.N())
			key := id.Rand(rng)
			h += o.Route(from, key).Latency
			c += o.ChordRoute(from, key).Latency
		}
		return h / c
	}
	fixed, adaptive := ratio(false), ratio(true)
	t.Logf("latency ratio: fixed thresholds %.3f, adaptive %.3f", fixed, adaptive)
	if adaptive >= 1.0 {
		t.Errorf("adaptive binning should still beat Chord: %.3f", adaptive)
	}
	if adaptive > fixed+0.15 {
		t.Errorf("adaptive binning (%.3f) much worse than fixed (%.3f) on its home turf", adaptive, fixed)
	}
}
