package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/id"
	"repro/internal/metrics"
	"repro/internal/topology"
	"repro/internal/topology/transitstub"
)

// TestRouteConcurrentReadPath audits the routing read path under -race:
// many goroutines route over one shared overlay — including one whose
// latency oracle rows are still being computed lazily — while another
// goroutine instruments the overlay mid-flight (the atomic instr pointer
// must make that safe too).
func TestRouteConcurrentReadPath(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m, err := transitstub.Generate(transitstub.DefaultConfig(150), rng)
	if err != nil {
		t.Fatal(err)
	}
	net, err := topology.Attach(m, m.G, topology.AttachOptions{
		Hosts: 150, Routers: m.StubRouters, Spread: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	o, err := Build(net, Config{Depth: 3, Landmarks: 4, SuccessorListLen: 4,
		AccelerateWithSuccessorList: true}, rng)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 400; i++ {
				key := id.Rand(r)
				from := r.Intn(o.N())
				h := o.Route(from, key)
				c := o.ChordRoute(from, key)
				if h.Dest != c.Dest {
					errs <- "HIERAS and Chord disagree on the owner under concurrency"
					return
				}
				if h.LowerLatency > h.Latency {
					errs <- "latency accounting corrupted under concurrency"
					return
				}
			}
		}(g)
	}
	// Instrument concurrently with in-flight routes: the atomic pointer
	// hand-off must not race with readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		o.Instrument(metrics.NewRegistry())
	}()
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}
