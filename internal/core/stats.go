package core

import (
	"repro/internal/id"
)

// LayerStats summarises the rings of one lower layer.
type LayerStats struct {
	Layer    int
	Rings    int
	MinSize  int
	MaxSize  int
	MeanSize float64
}

// LayerStats returns per-layer ring statistics for layers 2..Depth.
func (o *Overlay) LayerStats() []LayerStats {
	out := make([]LayerStats, 0, len(o.rings))
	for l, byName := range o.rings {
		s := LayerStats{Layer: l + 2, Rings: len(byName)}
		if s.Rings > 0 {
			s.MinSize = 1 << 30
			total := 0
			for _, r := range byName {
				sz := r.Size()
				total += sz
				if sz < s.MinSize {
					s.MinSize = sz
				}
				if sz > s.MaxSize {
					s.MaxSize = sz
				}
			}
			s.MeanSize = float64(total) / float64(s.Rings)
		}
		out = append(out, s)
	}
	return out
}

// StateStats quantifies the per-node state HIERAS maintains compared with
// flat Chord — the overhead analysis the paper defers to future work
// (§3.4, §6).
type StateStats struct {
	Nodes int
	Depth int

	// FingerEntriesPerNode is the raw finger-table slots per node summed
	// over layers (id.Bits per layer).
	FingerEntriesPerNode int
	// DistinctFingersPerNode is the mean number of distinct peers in a
	// node's finger tables across all layers — the state that actually
	// needs liveness maintenance.
	DistinctFingersPerNode float64
	// DistinctFingersLayer1 is the same restricted to the global ring,
	// i.e. what plain Chord would maintain.
	DistinctFingersLayer1 float64
	// SuccessorListEntriesPerNode counts successor-list slots (r per
	// layer).
	SuccessorListEntriesPerNode int
	// Rings is the number of lower-layer rings; RingTables the ring
	// tables stored in the system (one per ring, plus replicas).
	Rings      int
	RingTables int
	// EstBytesPerNode is a rough routing-state footprint per node: 24
	// bytes (20-byte ID + 4-byte address) per distinct finger and
	// successor entry.
	EstBytesPerNode float64
}

// StateStats computes maintenance-state statistics for the overlay.
func (o *Overlay) StateStats() StateStats {
	s := StateStats{
		Nodes:                       o.N(),
		Depth:                       o.cfg.Depth,
		FingerEntriesPerNode:        o.cfg.Depth * id.Bits,
		SuccessorListEntriesPerNode: o.cfg.Depth * o.cfg.SuccessorListLen,
		Rings:                       o.NumRings(),
		RingTables:                  len(o.ringTables),
	}
	var distinctAll, distinctG int
	for i := range o.nodes {
		seen := make(map[int32]struct{}, 32)
		for k := uint(0); k < id.Bits; k++ {
			f := o.global.Finger(i, k)
			if f != i {
				seen[int32(f)] = struct{}{}
			}
		}
		distinctG += len(seen)
		for l := range o.rings {
			ring, m := o.RingOf(i, l+2)
			for k := uint(0); k < id.Bits; k++ {
				f := ring.Table.Finger(m, k)
				if f != m {
					// Distinguish per-layer entries by global index; the
					// same peer appearing in two layers is still one
					// liveness probe target, so dedupe globally.
					seen[ring.Global[f]] = struct{}{}
				}
			}
		}
		distinctAll += len(seen)
	}
	s.DistinctFingersPerNode = float64(distinctAll) / float64(o.N())
	s.DistinctFingersLayer1 = float64(distinctG) / float64(o.N())
	s.EstBytesPerNode = 24 * (s.DistinctFingersPerNode + float64(s.SuccessorListEntriesPerNode))
	return s
}
