package core
