package core

import (
	"strconv"

	"repro/internal/metrics"
)

// routeMetrics holds the overlay's registered counters. Loaded through an
// atomic pointer so instrumenting an overlay keeps Route safe for
// concurrent use.
type routeMetrics struct {
	hops        []*metrics.Counter // hops[l-1] = hops taken in ring layer l
	ringClimbs  *metrics.Counter
	routes      *metrics.Counter
	accelerated *metrics.Counter
	deadSkips   *metrics.Counter
	layerAborts *metrics.Counter
}

// Instrument registers the overlay's routing metrics on reg and starts
// recording into them. Subsequent Route calls (and routing on views made
// by WithFailures afterwards) count per-layer hops, ring climbs, and
// failure-handling events. Call at most once per overlay, with a registry
// no other overlay uses.
func (o *Overlay) Instrument(reg *metrics.Registry) {
	rm := &routeMetrics{
		ringClimbs: reg.NewCounter("ring_climbs_total",
			"Routing transitions from a lower ring to the next layer up."),
		routes: reg.NewCounter("routes_total",
			"Routing procedures executed over the overlay."),
		accelerated: reg.NewCounter("accelerated_routes_total",
			"Routes ended early by the successor-list shortcut."),
		deadSkips: reg.NewCounter("failure_succ_skips_total",
			"Dead successors bridged via successor lists during faulty-view walks."),
		layerAborts: reg.NewCounter("failure_layer_aborts_total",
			"Lower-ring walks abandoned on a shattered ring, retried one layer up."),
	}
	hopsVec := reg.NewCounterVec("hops_total",
		"Routing hops by ring layer (1 = global ring).", "layer")
	rm.hops = make([]*metrics.Counter, o.cfg.Depth)
	for l := 1; l <= o.cfg.Depth; l++ {
		rm.hops[l-1] = hopsVec.With(strconv.Itoa(l))
	}
	o.instr.Store(rm)
}

// hop records one routing hop in layer l (1-based).
func (rm *routeMetrics) hop(layer int) {
	if rm == nil {
		return
	}
	rm.hops[layer-1].Inc()
}
