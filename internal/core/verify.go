package core

import (
	"fmt"

	"repro/internal/binning"
	"repro/internal/chord"
)

// CheckInvariants verifies the structural invariants HIERAS promises of
// every overlay (paper §3.1): the global ring covers all nodes with a
// correct Chord structure, each node is a member of exactly one ring per
// lower layer and that ring's name matches the node's landmark order,
// deeper rings refine shallower ones, every ring's own Chord structure is
// correct, and every ring has a ring table naming its true boundary
// members, stored at the ring id's global successor. The invariant
// harness runs this against oracle overlays built from random topologies.
func (o *Overlay) CheckInvariants() error {
	verify := (*chord.Table).Verify
	if o.cfg.ProximityFingers {
		verify = (*chord.Table).VerifyPNS
	}
	if o.global.Len() != len(o.nodes) {
		return fmt.Errorf("core: global ring has %d members, overlay has %d nodes",
			o.global.Len(), len(o.nodes))
	}
	if err := verify(o.global); err != nil {
		return fmt.Errorf("core: global ring: %w", err)
	}
	for i := range o.nodes {
		if o.global.ID(i) != o.nodes[i].ID {
			return fmt.Errorf("core: node %d id mismatch with global member %d", i, i)
		}
		if got := len(o.nodes[i].RingNames); got != o.cfg.Depth-1 {
			return fmt.Errorf("core: node %d belongs to %d lower rings, depth %d requires %d",
				i, got, o.cfg.Depth, o.cfg.Depth-1)
		}
	}

	for l := range o.rings {
		layer := l + 2
		covered := 0
		for name, r := range o.rings[l] {
			if r.Layer != layer || r.Name != name {
				return fmt.Errorf("core: ring %d:%q mislabelled as %d:%q", layer, name, r.Layer, r.Name)
			}
			if err := verify(r.Table); err != nil {
				return fmt.Errorf("core: ring %d:%q: %w", layer, name, err)
			}
			if len(r.Global) != r.Size() {
				return fmt.Errorf("core: ring %d:%q maps %d members to %d global indexes",
					layer, name, r.Size(), len(r.Global))
			}
			for m, gi := range r.Global {
				nd := &o.nodes[gi]
				if nd.RingNames[l] != name {
					return fmt.Errorf("core: node %d sits in ring %d:%q but is binned into %q",
						gi, layer, name, nd.RingNames[l])
				}
				if r.Table.ID(m) != nd.ID {
					return fmt.Errorf("core: ring %d:%q member %d id mismatch with node %d",
						layer, name, m, gi)
				}
				if ref := nd.rings[l]; ref.ring != r || ref.member != m {
					return fmt.Errorf("core: node %d ring reference for layer %d inconsistent", gi, layer)
				}
			}
			covered += r.Size()

			rt := o.ringTables[RingKey{Layer: layer, Name: name}]
			if rt == nil {
				return fmt.Errorf("core: ring %d:%q has no ring table", layer, name)
			}
			last := r.Size() - 1
			if rt.Smallest != r.Table.ID(0) || rt.Largest != r.Table.ID(last) {
				return fmt.Errorf("core: ring table %d:%q boundaries do not match the ring", layer, name)
			}
			if rt.StoredAt != o.global.SuccessorIndex(rt.RingID) {
				return fmt.Errorf("core: ring table %d:%q stored at %d, want successor(%s) = %d",
					layer, name, rt.StoredAt, rt.RingID.Short(), o.global.SuccessorIndex(rt.RingID))
			}
		}
		// Exactly-one-ring-per-layer: every node counted once.
		if covered != len(o.nodes) {
			return fmt.Errorf("core: layer %d rings cover %d of %d nodes", layer, covered, len(o.nodes))
		}
	}

	if o.cfg.Depth > 1 {
		names := make([][]string, len(o.nodes))
		for i := range o.nodes {
			names[i] = o.nodes[i].RingNames
		}
		if err := binning.CheckRefinement(names); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	return nil
}
