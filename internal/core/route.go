package core

import (
	"repro/internal/id"
)

// Hop is one message forward during a routing procedure.
type Hop struct {
	Layer    int // ring layer the hop was taken in; 1 = global ring
	From, To int // overlay node indexes
	Latency  float64
}

// RouteResult describes one completed routing procedure.
type RouteResult struct {
	Origin, Dest int   // overlay node indexes
	Key          id.ID // requested key
	Hops         []Hop
	// Latency is the total routing latency in milliseconds (sum of hop
	// link latencies).
	Latency float64
	// LowerHops / LowerLatency aggregate the hops taken in layers >= 2,
	// the quantity paper §4.3 reports as "hops executed on the lower
	// layer P2P rings".
	LowerHops    int
	LowerLatency float64
	// Accelerated reports whether the successor-list shortcut ended the
	// route (only with Config.AccelerateWithSuccessorList).
	Accelerated bool
}

// NumHops returns the routing hop count.
func (r *RouteResult) NumHops() int { return len(r.Hops) }

// Route performs a HIERAS routing procedure for key starting at overlay
// node `from` (paper §3.2): the lookup runs the underlying Chord routing
// once per layer from the originator's most local ring up to the global
// ring, checking after every layer whether the current peer is already the
// destination.
//
// Route is safe for unbounded concurrent use — the batch query engine
// fans thousands of Route/ChordRoute calls across goroutines over one
// shared overlay. The read path touches only state that is immutable
// after Build (chord tables, node/ring membership), the latency oracle
// (internally synchronized, see topology.DijkstraOracle), and atomic
// metric counters loaded through o.instr. route_race_test.go exercises
// this contract under -race.
func (o *Overlay) Route(from int, key id.ID) RouteResult {
	res := RouteResult{Origin: from, Key: key}
	owner := o.global.SuccessorIndex(key)
	res.Dest = owner
	cur := from
	rm := o.instr.Load()
	if rm != nil {
		rm.routes.Inc()
	}

	record := func(layer, f, t int) {
		lat := o.net.Latency(o.nodes[f].Host, o.nodes[t].Host)
		res.Hops = append(res.Hops, Hop{Layer: layer, From: f, To: t, Latency: lat})
		res.Latency += lat
		if layer >= 2 {
			res.LowerHops++
			res.LowerLatency += lat
		}
		rm.hop(layer)
	}

	// Lower layers, most local first.
	for layer := o.cfg.Depth; layer >= 2; layer-- {
		if cur == owner {
			return res // destination check between loops (paper §3.2)
		}
		if rm != nil && layer < o.cfg.Depth {
			rm.ringClimbs.Inc() // previous (more local) layer did not finish
		}
		if o.cfg.AccelerateWithSuccessorList && o.trySuccessorShortcut(&res, rm, layer, cur, owner) {
			return res
		}
		ring, member := o.RingOf(cur, layer)
		p, _ := ring.Table.WalkToPredecessor(member, key, func(f, t int) {
			record(layer, int(ring.Global[f]), int(ring.Global[t]))
		})
		cur = int(ring.Global[p])
	}

	if cur == owner {
		return res
	}
	if rm != nil && o.cfg.Depth >= 2 {
		rm.ringClimbs.Inc() // climb from the lowest layer onto the global ring
	}
	if o.cfg.AccelerateWithSuccessorList && o.trySuccessorShortcut(&res, rm, 1, cur, owner) {
		return res
	}
	// Global ring: finish at the key's owner.
	o.global.Lookup(cur, key, func(f, t int) { record(1, f, t) })
	return res
}

// trySuccessorShortcut implements the paper's successor-list acceleration:
// if the destination is within the current peer's successor list in the
// global ring, forward straight to it.
func (o *Overlay) trySuccessorShortcut(res *RouteResult, rm *routeMetrics, layer, cur, owner int) bool {
	for _, s := range o.global.SuccessorList(cur, o.cfg.SuccessorListLen) {
		if s == owner {
			lat := o.net.Latency(o.nodes[cur].Host, o.nodes[owner].Host)
			res.Hops = append(res.Hops, Hop{Layer: 1, From: cur, To: owner, Latency: lat})
			res.Latency += lat
			res.Accelerated = true
			rm.hop(1)
			if rm != nil {
				rm.accelerated.Inc()
			}
			return true
		}
	}
	return false
}

// ChordRoute performs a plain flat Chord lookup over the global ring —
// the baseline the paper compares against. Hop accounting mirrors Route.
func (o *Overlay) ChordRoute(from int, key id.ID) RouteResult {
	res := RouteResult{Origin: from, Key: key}
	res.Dest = o.global.SuccessorIndex(key)
	o.global.Lookup(from, key, func(f, t int) {
		lat := o.net.Latency(o.nodes[f].Host, o.nodes[t].Host)
		res.Hops = append(res.Hops, Hop{Layer: 1, From: f, To: t, Latency: lat})
		res.Latency += lat
	})
	return res
}
