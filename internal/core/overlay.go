// Package core implements HIERAS, the hierarchical DHT routing algorithm
// of Xu, Min and Hu (ICPP 2003). Besides the global Chord ring containing
// every peer, HIERAS groups topologically-adjacent peers (determined by
// the distributed binning scheme of package binning) into lower-layer P2P
// rings, one per layer per node. Routing runs the underlying Chord
// algorithm once per layer, starting in the request originator's most
// local ring, so most hops traverse low-latency links.
//
// Two construction paths exist, mirroring package chord:
//
//   - Overlay (this file): oracle-built routing state over a known node
//     population, for large trace-driven experiments.
//   - ProtoOverlay (proto.go): the message-level join protocol of paper
//     §3.3 with ring tables, used for protocol tests and overhead
//     accounting.
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/binning"
	"repro/internal/chord"
	"repro/internal/id"
	"repro/internal/metrics"
	"repro/internal/topology"
)

// Config parametrises overlay construction.
type Config struct {
	// Depth is the hierarchy depth m: the number of P2P ring layers a node
	// belongs to. Depth 1 is plain Chord (the paper's baseline); the paper
	// evaluates depths 2-4 and recommends 2 or 3.
	Depth int
	// Landmarks is the number of landmark nodes for distributed binning
	// (paper default: 4). Ignored when Depth == 1.
	Landmarks int
	// LandmarkStrategy picks landmark placement (default: spread/k-center).
	LandmarkStrategy topology.LandmarkStrategy
	// Ladder overrides the binning threshold ladder; nil uses
	// binning.DefaultLadder(Depth).
	Ladder binning.Ladder
	// SuccessorListLen is r, the per-layer successor list length kept for
	// fault tolerance (default 4).
	SuccessorListLen int
	// Workers bounds build parallelism; <= 0 uses all CPUs.
	Workers int
	// ProximityFingers enables proximity neighbor selection (PNS) when
	// filling finger tables: each slot takes the topologically closest of
	// several legal candidates instead of the exact successor. This is
	// the locality technique of Pastry/DHash-Chord; combined with depth 1
	// it gives the "topology-aware flat DHT" baseline, and combined with
	// depth >= 2 it tests the paper's conclusion that the hierarchy helps
	// regardless of the underlying algorithm's topology awareness.
	ProximityFingers bool
	// PNSSamples bounds candidates probed per finger slot (default 8).
	PNSSamples int
	// AdaptiveBinning derives the binning thresholds from the measured
	// node-landmark latency distribution (equal-mass quantiles) instead of
	// the paper's fixed {20,100} ladder, making binning work on underlays
	// with arbitrary latency scales. Overrides Ladder.
	AdaptiveBinning bool
	// DropLandmarks lists landmark indexes that have FAILED (paper §2.3):
	// every node drops the corresponding digit from its landmark order,
	// which is equivalent to binning on the surviving landmarks. Ring
	// quality degrades gracefully with each loss.
	DropLandmarks []int
	// AccelerateWithSuccessorList enables the paper's optional
	// "predecessor and successor lists can be used to accelerate the
	// process" optimisation: after finishing a layer, if the key's owner
	// is already within the current peer's successor list, hop straight
	// to it. Off by default so hop counts match the paper's main results.
	AccelerateWithSuccessorList bool
	// Metrics, when non-nil, instruments the overlay on this registry at
	// build time (equivalent to calling Instrument after Build). The
	// registry must not be shared with another instrumented overlay or
	// node: metric names would collide.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.Depth == 0 {
		c.Depth = 2
	}
	if c.Landmarks == 0 {
		c.Landmarks = 4
	}
	if c.SuccessorListLen == 0 {
		c.SuccessorListLen = 4
	}
	return c
}

func (c Config) validate() error {
	if c.Depth < 1 {
		return fmt.Errorf("core: depth must be >= 1, got %d", c.Depth)
	}
	if c.Depth > 1 && c.Landmarks < 1 {
		return fmt.Errorf("core: need at least 1 landmark for depth %d", c.Depth)
	}
	if c.SuccessorListLen < 1 {
		return fmt.Errorf("core: successor list length must be >= 1")
	}
	return nil
}

// Node is one peer's HIERAS state as seen by the oracle overlay.
type Node struct {
	ID   id.ID
	Host int
	// RingNames[l] names the node's layer-(l+2) ring (landmark order
	// string under that layer's thresholds). Empty for depth 1.
	RingNames []string
	// rings[l] locates the node inside its layer-(l+2) ring.
	rings []ringRef
}

type ringRef struct {
	ring   *Ring
	member int // index within ring.Table
}

// Ring is one lower-layer P2P ring: a Chord ring over a subset of peers.
type Ring struct {
	Layer int    // 2..depth
	Name  string // landmark order string
	Table *chord.Table
	// Global[i] is the overlay node index of ring member i.
	Global []int32
}

// Size returns the ring's member count.
func (r *Ring) Size() int { return r.Table.Len() }

// Overlay is an oracle-built HIERAS overlay: every node's multi-layer
// finger tables are exact. It is immutable after Build and safe for
// concurrent routing.
type Overlay struct {
	cfg       Config
	net       *topology.Network
	landmarks []int
	ladder    binning.Ladder

	nodes  []Node       // index == global ring member index (ascending ID)
	global *chord.Table // the layer-1 ring over all nodes

	// rings[l] maps ring name -> ring for layer l+2.
	rings []map[string]*Ring

	ringTables map[RingKey]*RingTable

	// instr is nil until Instrument is called; routing loads it once per
	// procedure.
	instr atomic.Pointer[routeMetrics]
}

// NodeID derives the overlay identifier for a host, SHA-1 as in the paper.
func NodeID(host int) id.ID {
	return id.HashString("node:" + strconv.Itoa(host))
}

// KeyID derives the identifier of an application key.
func KeyID(name string) id.ID { return id.HashString("key:" + name) }

// Build constructs the exact HIERAS overlay for every host of net.
func Build(net *topology.Network, cfg Config, rng *rand.Rand) (*Overlay, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := net.Hosts()
	if n == 0 {
		return nil, fmt.Errorf("core: network has no hosts")
	}

	o := &Overlay{cfg: cfg, net: net, ringTables: make(map[RingKey]*RingTable)}

	// 1. Landmarks and binning ladder (lower layers only).
	if cfg.Depth > 1 {
		var err error
		o.ladder = cfg.Ladder
		if o.ladder == nil {
			if o.ladder, err = binning.DefaultLadder(cfg.Depth); err != nil {
				return nil, err
			}
		}
		if len(o.ladder) != cfg.Depth-1 {
			return nil, fmt.Errorf("core: ladder has %d layers, depth %d needs %d",
				len(o.ladder), cfg.Depth, cfg.Depth-1)
		}
		if o.landmarks, err = topology.SelectLandmarks(net, cfg.Landmarks, cfg.LandmarkStrategy, rng); err != nil {
			return nil, err
		}
	}

	// 2. Identifiers, sorted so overlay node index == global member index.
	o.nodes = make([]Node, n)
	for h := 0; h < n; h++ {
		o.nodes[h] = Node{ID: NodeID(h), Host: h}
	}
	sort.Slice(o.nodes, func(a, b int) bool { return o.nodes[a].ID.Less(o.nodes[b].ID) })
	for i := 1; i < n; i++ {
		if o.nodes[i].ID == o.nodes[i-1].ID {
			return nil, fmt.Errorf("core: SHA-1 identifier collision between hosts %d and %d",
				o.nodes[i-1].Host, o.nodes[i].Host)
		}
	}

	// 3. Each node measures the landmarks and computes its ring names,
	// dropping digits of failed landmarks (paper §2.3).
	if cfg.Depth > 1 {
		dropped := make(map[int]bool, len(cfg.DropLandmarks))
		for _, d := range cfg.DropLandmarks {
			if d < 0 || d >= len(o.landmarks) {
				return nil, fmt.Errorf("core: dropped landmark index %d out of range", d)
			}
			dropped[d] = true
		}
		if len(dropped) == len(o.landmarks) {
			return nil, fmt.Errorf("core: all %d landmarks dropped", len(o.landmarks))
		}
		allLats := make([][]float64, len(o.nodes))
		for i := range o.nodes {
			lats := net.PingVector(o.nodes[i].Host, o.landmarks, rng)
			if len(dropped) > 0 {
				kept := lats[:0]
				for j, l := range lats {
					if !dropped[j] {
						kept = append(kept, l)
					}
				}
				lats = kept
			}
			allLats[i] = lats
		}
		if cfg.AdaptiveBinning {
			samples := make([]float64, 0, len(o.nodes)*len(allLats[0]))
			for _, lats := range allLats {
				samples = append(samples, lats...)
			}
			var err error
			if o.ladder, err = binning.AdaptiveLadder(samples, cfg.Depth); err != nil {
				return nil, err
			}
		}
		for i := range o.nodes {
			names, err := binning.RingNames(allLats[i], o.ladder)
			if err != nil {
				return nil, err
			}
			o.nodes[i].RingNames = names
		}
	}

	// 4. Layer-1 (global) ring.
	members := make([]chord.Member, n)
	for i, nd := range o.nodes {
		members[i] = chord.Member{ID: nd.ID, Host: nd.Host}
	}
	pnsSeed := rng.Int63()
	buildTable := func(ms []chord.Member, workers int) (*chord.Table, error) {
		if cfg.ProximityFingers {
			return chord.BuildTablePNS(ms, net.Latency, cfg.PNSSamples, pnsSeed, workers)
		}
		return chord.BuildTable(ms, workers)
	}
	global, err := buildTable(members, cfg.Workers)
	if err != nil {
		return nil, err
	}
	o.global = global

	// 5. Lower-layer rings, built in parallel.
	o.rings = make([]map[string]*Ring, cfg.Depth-1)
	for l := range o.rings {
		byName := make(map[string][]int32)
		for i := range o.nodes {
			name := o.nodes[i].RingNames[l]
			byName[name] = append(byName[name], int32(i))
		}
		o.rings[l] = make(map[string]*Ring, len(byName))
		type job struct {
			name    string
			members []int32
		}
		jobs := make([]job, 0, len(byName))
		for name, ms := range byName {
			jobs = append(jobs, job{name, ms})
		}
		sort.Slice(jobs, func(a, b int) bool { return jobs[a].name < jobs[b].name })
		rings := make([]*Ring, len(jobs))
		var wg sync.WaitGroup
		errs := make([]error, len(jobs))
		sem := make(chan struct{}, buildWorkers(cfg.Workers))
		for j := range jobs {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				ms := make([]chord.Member, len(jobs[j].members))
				for k, gi := range jobs[j].members {
					ms[k] = chord.Member{ID: o.nodes[gi].ID, Host: o.nodes[gi].Host}
				}
				tbl, err := buildTable(ms, 1)
				if err != nil {
					errs[j] = err
					return
				}
				// Member order is ascending ID; jobs[j].members came from
				// the globally ID-sorted node list, so indexes align.
				rings[j] = &Ring{
					Layer:  l + 2,
					Name:   jobs[j].name,
					Table:  tbl,
					Global: jobs[j].members,
				}
			}(j)
		}
		wg.Wait()
		for _, e := range errs {
			if e != nil {
				return nil, e
			}
		}
		for _, r := range rings {
			o.rings[l][r.Name] = r
			for m, gi := range r.Global {
				o.nodes[gi].rings = append(o.nodes[gi].rings, ringRef{ring: r, member: m})
			}
		}
	}

	// 6. Ring tables (paper §3.1).
	o.buildRingTables()
	if cfg.Metrics != nil {
		o.Instrument(cfg.Metrics)
	}
	return o, nil
}

func buildWorkers(w int) int {
	if w <= 0 {
		return 8
	}
	return w
}

// N returns the number of peers.
func (o *Overlay) N() int { return len(o.nodes) }

// Depth returns the hierarchy depth.
func (o *Overlay) Depth() int { return o.cfg.Depth }

// Node returns peer i's state (global-ring member order).
func (o *Overlay) Node(i int) *Node { return &o.nodes[i] }

// Global returns the layer-1 (global) Chord ring table.
func (o *Overlay) Global() *chord.Table { return o.global }

// Landmarks returns the landmark router indexes.
func (o *Overlay) Landmarks() []int { return o.landmarks }

// Network returns the underlying topology network.
func (o *Overlay) Network() *topology.Network { return o.net }

// Rings returns the ring map for a layer in 2..Depth.
func (o *Overlay) Rings(layer int) map[string]*Ring {
	if layer < 2 || layer > o.cfg.Depth {
		return nil
	}
	return o.rings[layer-2]
}

// RingOf returns the layer-l ring containing node i and the node's member
// index within it.
func (o *Overlay) RingOf(i, layer int) (*Ring, int) {
	if layer < 2 || layer > o.cfg.Depth {
		return nil, -1
	}
	ref := o.nodes[i].rings[layer-2]
	return ref.ring, ref.member
}

// NumRings returns the total number of lower-layer rings.
func (o *Overlay) NumRings() int {
	total := 0
	for _, m := range o.rings {
		total += len(m)
	}
	return total
}

// IndexOfHost returns the overlay node index for a host, or -1.
func (o *Overlay) IndexOfHost(host int) int {
	return o.global.IndexOf(NodeID(host))
}
