package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// TestLayerStatsEmptyLayer is the regression test for the MinSize
// sentinel: a layer with zero rings must report MinSize == MaxSize == 0,
// not the 1<<30 placeholder.
func TestLayerStatsEmptyLayer(t *testing.T) {
	o := &Overlay{rings: []map[string]*Ring{{}}}
	got := o.LayerStats()
	if len(got) != 1 {
		t.Fatalf("LayerStats returned %d entries, want 1", len(got))
	}
	s := got[0]
	if s.Rings != 0 || s.MinSize != 0 || s.MaxSize != 0 || s.MeanSize != 0 {
		t.Errorf("empty layer reported %+v, want all-zero sizes", s)
	}
	if s.Layer != 2 {
		t.Errorf("Layer = %d, want 2", s.Layer)
	}
}

// TestRouteMetricsMatchResults builds an instrumented overlay, routes a
// batch of keys, and checks the per-layer hop counters against the hop
// lists the RouteResults themselves report.
func TestRouteMetricsMatchResults(t *testing.T) {
	reg := metrics.NewRegistry()
	o := buildOverlay(t, 40, Config{Depth: 2, Metrics: reg}, 7)

	rng := rand.New(rand.NewSource(9))
	perLayer := make([]uint64, 2)
	routes := 0
	for i := 0; i < 50; i++ {
		res := o.Route(rng.Intn(o.N()), KeyID(fmt.Sprintf("k%d", i)))
		routes++
		for _, h := range res.Hops {
			perLayer[h.Layer-1]++
		}
	}

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for l, want := range perLayer {
		line := fmt.Sprintf("hops_total{layer=%q} %d", fmt.Sprint(l+1), want)
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
	if !strings.Contains(out, fmt.Sprintf("routes_total %d", routes)) {
		t.Errorf("routes_total != %d:\n%s", routes, out)
	}
	if !strings.Contains(out, "ring_climbs_total") {
		t.Error("ring_climbs_total not registered")
	}
}

// TestFaultyViewMetrics checks that routing under failures records
// successor skips once peers die.
func TestFaultyViewMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	o := buildOverlay(t, 40, Config{Depth: 2, Metrics: reg}, 11)

	dead := make([]bool, o.N())
	rng := rand.New(rand.NewSource(3))
	for killed := 0; killed < o.N()/4; {
		i := rng.Intn(o.N())
		if !dead[i] {
			dead[i] = true
			killed++
		}
	}
	v, err := o.WithFailures(dead)
	if err != nil {
		t.Fatal(err)
	}

	var hops uint64
	for i := 0; i < 60; i++ {
		from := rng.Intn(o.N())
		if dead[from] {
			continue
		}
		res, err := v.Route(from, KeyID(fmt.Sprintf("f%d", i)))
		if err != nil {
			continue
		}
		hops += uint64(len(res.Hops))
	}

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	var counted uint64
	for _, l := range []string{"1", "2"} {
		var n uint64
		if _, err := fmt.Sscanf(afterPrefix(t, out, fmt.Sprintf("hops_total{layer=%q} ", l)), "%d", &n); err != nil {
			t.Fatalf("parsing hops_total{layer=%q}: %v", l, err)
		}
		counted += n
	}
	if counted != hops {
		t.Errorf("hop counters sum to %d, routes reported %d", counted, hops)
	}
}

// afterPrefix returns the remainder of the line in out starting with
// prefix.
func afterPrefix(t *testing.T, out, prefix string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, prefix) {
			return strings.TrimPrefix(line, prefix)
		}
	}
	t.Fatalf("no line with prefix %q in:\n%s", prefix, out)
	return ""
}
