package core

import (
	"math/rand"
	"testing"

	"repro/internal/id"
)

// buildProtoOverlay joins all hosts of a test network through the §3.3
// protocol and converges routing state.
func buildProtoOverlay(t *testing.T, hosts int, cfg Config, seed int64) (*ProtoOverlay, []*ProtoNode) {
	t.Helper()
	net := testNetwork(t, hosts, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	p, err := NewProtoOverlay(net, cfg, rng)
	if err != nil {
		t.Fatalf("NewProtoOverlay: %v", err)
	}
	nodes := make([]*ProtoNode, 0, hosts)
	for h := 0; h < hosts; h++ {
		var boot *ProtoNode
		if len(nodes) > 0 {
			boot = nodes[rng.Intn(len(nodes))]
		}
		n, cost, err := p.Join(h, boot, rng)
		if err != nil {
			t.Fatalf("Join host %d: %v", h, err)
		}
		if len(nodes) > 0 && cost <= 0 {
			t.Fatalf("join of host %d reported non-positive cost %d", h, cost)
		}
		nodes = append(nodes, n)
	}
	for i := 0; i < 4; i++ {
		p.StabilizeAll()
	}
	if err := p.FixAllFingers(); err != nil {
		t.Fatalf("FixAllFingers: %v", err)
	}
	return p, nodes
}

func TestProtoJoinBasics(t *testing.T) {
	p, nodes := buildProtoOverlay(t, 30, Config{Depth: 2, Landmarks: 4}, 50)
	if p.Size() != 30 {
		t.Errorf("Size = %d", p.Size())
	}
	if p.Msgs() == 0 {
		t.Error("protocol joins should cost messages")
	}
	for _, n := range nodes {
		if len(n.RingNames) != 1 || len(n.Lower) != 1 {
			t.Fatalf("node %d should belong to exactly one lower ring", n.Host)
		}
		if p.NodeByHost(n.Host) != n {
			t.Fatal("NodeByHost broken")
		}
	}
	// Duplicate join rejected.
	if _, _, err := p.Join(0, nodes[1], rand.New(rand.NewSource(1))); err == nil {
		t.Error("duplicate join accepted")
	}
}

func TestProtoRequiresBootstrapAfterFirst(t *testing.T) {
	net := testNetwork(t, 5, 51)
	rng := rand.New(rand.NewSource(52))
	p, err := NewProtoOverlay(net, Config{Depth: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Join(0, nil, rng); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Join(1, nil, rng); err == nil {
		t.Error("second join without bootstrap accepted")
	}
}

// TestProtoMatchesOracle is the central equivalence property: the overlay
// built through the join protocol must be structurally identical to the
// oracle-built overlay — same ring memberships and same routing results.
func TestProtoMatchesOracle(t *testing.T) {
	const hosts = 40
	const seed = 53
	cfg := Config{Depth: 2, Landmarks: 4}
	p, pNodes := buildProtoOverlay(t, hosts, cfg, seed)

	net := testNetwork(t, hosts, seed) // same seed -> identical topology
	o, err := Build(net, cfg, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		t.Fatal(err)
	}

	// Ring names match per host.
	for _, pn := range pNodes {
		i := o.IndexOfHost(pn.Host)
		if i < 0 {
			t.Fatalf("host %d missing from oracle overlay", pn.Host)
		}
		if o.Node(i).RingNames[0] != pn.RingNames[0] {
			t.Fatalf("host %d: proto ring %q, oracle ring %q",
				pn.Host, pn.RingNames[0], o.Node(i).RingNames[0])
		}
	}

	// Ring tables agree on boundaries.
	for key, rt := range o.RingTables() {
		prt := p.RingTableFor(key.Layer, key.Name)
		if prt == nil {
			t.Fatalf("protocol overlay missing ring table %v", key)
		}
		if prt.Smallest != rt.Smallest || prt.Largest != rt.Largest ||
			prt.SecondSmallest != rt.SecondSmallest || prt.SecondLargest != rt.SecondLargest {
			t.Fatalf("ring table %v boundaries differ", key)
		}
	}

	// Routing: same destination and same hop counts for random requests.
	rng := rand.New(rand.NewSource(seed + 2))
	for trial := 0; trial < 300; trial++ {
		host := rng.Intn(hosts)
		key := id.Rand(rng)
		pres, pHops, err := p.Route(p.NodeByHost(host), key)
		if err != nil {
			t.Fatalf("proto route: %v", err)
		}
		ores := o.Route(o.IndexOfHost(host), key)
		if pres.ID != o.Node(ores.Dest).ID {
			t.Fatalf("destinations differ: proto %s oracle %s",
				pres.ID.Short(), o.Node(ores.Dest).ID.Short())
		}
		total := 0
		for _, h := range pHops {
			total += h
		}
		if total != ores.NumHops() {
			t.Fatalf("hop counts differ: proto %d oracle %d (key %s)",
				total, ores.NumHops(), key.Short())
		}
	}
}

func TestProtoLeave(t *testing.T) {
	p, nodes := buildProtoOverlay(t, 25, Config{Depth: 2, Landmarks: 4}, 54)
	victim := nodes[5]
	p.Leave(victim)
	if p.Size() != 24 {
		t.Errorf("Size = %d after leave", p.Size())
	}
	if p.NodeByHost(victim.Host) != nil {
		t.Error("left node still registered")
	}
	for i := 0; i < 4; i++ {
		p.StabilizeAll()
	}
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 50; trial++ {
		n := nodes[rng.Intn(len(nodes))]
		if n == victim {
			continue
		}
		if _, _, err := p.Route(n, id.Rand(rng)); err != nil {
			t.Fatalf("route after leave: %v", err)
		}
	}
}

func TestProtoFail(t *testing.T) {
	p, nodes := buildProtoOverlay(t, 30, Config{Depth: 2, Landmarks: 4, SuccessorListLen: 6}, 56)
	rng := rand.New(rand.NewSource(57))
	// Kill three nodes silently.
	killed := map[int]bool{}
	for _, i := range []int{3, 11, 22} {
		p.Fail(nodes[i])
		killed[i] = true
	}
	for i := 0; i < 6; i++ {
		p.StabilizeAll()
	}
	p.RepairRingTables()
	if err := p.FixAllFingers(); err != nil {
		t.Fatalf("FixAllFingers after failures: %v", err)
	}
	for i, n := range nodes {
		if killed[i] {
			continue
		}
		if _, _, err := p.Route(n, id.Rand(rng)); err != nil {
			t.Fatalf("route after failures from host %d: %v", n.Host, err)
		}
	}
	if p.Size() != 27 {
		t.Errorf("Size = %d", p.Size())
	}
}

func TestProtoRingTableRepair(t *testing.T) {
	p, nodes := buildProtoOverlay(t, 20, Config{Depth: 2, Landmarks: 4}, 58)
	// Fail a boundary node of some ring, then repair.
	var rt *RingTable
	var boundary *ProtoNode
	for _, n := range nodes {
		cand := p.RingTableFor(2, n.RingNames[0])
		if cand != nil && cand.Smallest == n.ID && p.RingProto(2, n.RingNames[0]).Size() > 2 {
			rt, boundary = cand, n
			break
		}
	}
	if rt == nil {
		t.Skip("no multi-member ring with an identifiable boundary node")
	}
	p.Fail(boundary)
	for i := 0; i < 4; i++ {
		p.StabilizeAll()
	}
	p.RepairRingTables()
	if rt.Smallest == boundary.ID {
		t.Error("ring table still names the failed node after repair")
	}
}

func TestProtoDepth3(t *testing.T) {
	p, nodes := buildProtoOverlay(t, 25, Config{Depth: 3, Landmarks: 4}, 59)
	for _, n := range nodes {
		if len(n.Lower) != 2 {
			t.Fatalf("depth-3 node in %d lower rings", len(n.Lower))
		}
	}
	rng := rand.New(rand.NewSource(60))
	for trial := 0; trial < 100; trial++ {
		n := nodes[rng.Intn(len(nodes))]
		dest, _, err := p.Route(n, id.Rand(rng))
		if err != nil {
			t.Fatal(err)
		}
		if dest == nil {
			t.Fatal("nil destination")
		}
	}
}

func TestProtoJoinCostGrowsWithDepth(t *testing.T) {
	cost := map[int]int64{}
	for _, depth := range []int{2, 3} {
		net := testNetwork(t, 30, 61)
		rng := rand.New(rand.NewSource(62))
		p, err := NewProtoOverlay(net, Config{Depth: depth, Landmarks: 4}, rng)
		if err != nil {
			t.Fatal(err)
		}
		var nodes []*ProtoNode
		var total int64
		for h := 0; h < 30; h++ {
			var boot *ProtoNode
			if len(nodes) > 0 {
				boot = nodes[0]
			}
			n, c, err := p.Join(h, boot, rng)
			if err != nil {
				t.Fatal(err)
			}
			total += c
			nodes = append(nodes, n)
		}
		cost[depth] = total
	}
	if cost[3] <= cost[2] {
		t.Errorf("depth-3 joins (%d msgs) should cost more than depth-2 (%d msgs)", cost[3], cost[2])
	}
}
