package core

import (
	"fmt"

	"repro/internal/id"
)

// RingKey identifies a lower-layer P2P ring.
type RingKey struct {
	Layer int
	Name  string
}

// RingID derives the ring identifier: the collision-free hash of the ring
// name (paper §3.1), qualified by layer so equal order strings in
// different layers map to distinct rings.
func (k RingKey) RingID() id.ID {
	return id.HashString(fmt.Sprintf("ring:%d:%s", k.Layer, k.Name))
}

// RingTable is the paper's ring table (§3.1, Table 3): stored on the node
// whose identifier is numerically closest to the ring id, it records four
// boundary members of the ring — enough for a joining node to find a peer
// inside the ring. It is duplicated on several successors for fault
// tolerance.
type RingTable struct {
	Key    RingKey
	RingID id.ID

	// Boundary member identifiers. For rings smaller than four members,
	// entries repeat (the table still names live members).
	Smallest, SecondSmallest, Largest, SecondLargest id.ID

	// StoredAt is the overlay node index of successor(RingID); Replicas
	// are the following r nodes holding duplicates.
	StoredAt int
	Replicas []int
}

// Contains reports whether x is one of the table's boundary entries.
func (rt *RingTable) Contains(x id.ID) bool {
	return x == rt.Smallest || x == rt.SecondSmallest || x == rt.Largest || x == rt.SecondLargest
}

// boundaryFromSorted fills the four boundary entries from a ring's sorted
// member identifiers.
func (rt *RingTable) boundaryFromSorted(ids []id.ID) {
	n := len(ids)
	rt.Smallest = ids[0]
	rt.Largest = ids[n-1]
	if n >= 2 {
		rt.SecondSmallest = ids[1]
		rt.SecondLargest = ids[n-2]
	} else {
		rt.SecondSmallest = ids[0]
		rt.SecondLargest = ids[0]
	}
}

// buildRingTables derives every ring table of the overlay.
func (o *Overlay) buildRingTables() {
	for _, layerRings := range o.rings {
		for _, r := range layerRings {
			key := RingKey{Layer: r.Layer, Name: r.Name}
			rt := &RingTable{Key: key, RingID: key.RingID()}
			ids := make([]id.ID, r.Size())
			for i := range ids {
				ids[i] = r.Table.ID(i)
			}
			rt.boundaryFromSorted(ids)
			rt.StoredAt = o.global.SuccessorIndex(rt.RingID)
			rt.Replicas = o.global.SuccessorList(rt.StoredAt, o.cfg.SuccessorListLen)
			o.ringTables[key] = rt
		}
	}
}

// RingTable returns the ring table for a ring, or nil if the ring does not
// exist.
func (o *Overlay) RingTable(layer int, name string) *RingTable {
	return o.ringTables[RingKey{Layer: layer, Name: name}]
}

// RingTables returns all ring tables keyed by ring.
func (o *Overlay) RingTables() map[RingKey]*RingTable { return o.ringTables }
