package can

import (
	"fmt"
	"math/rand"

	"repro/internal/binning"
	"repro/internal/topology"
)

// HierarchyConfig parametrises a HIERAS-over-CAN overlay.
type HierarchyConfig struct {
	// Depth is the hierarchy depth (>= 1; 1 = flat CAN).
	Depth int
	// Landmarks for distributed binning (default 4).
	Landmarks int
	// Dims is the CAN dimensionality (default 2).
	Dims int
	// Ladder overrides the binning ladder.
	Ladder binning.Ladder
}

// Hierarchy is HIERAS with CAN as the underlying DHT: the coordinate
// space is divided once among all nodes (the global layer) and once more
// among the members of every lower-layer ring; lookups route through the
// ring spaces before the global space.
type Hierarchy struct {
	cfg    HierarchyConfig
	net    *topology.Network
	global *Space
	// ringNames[h] holds host h's ring names (per lower layer); rings[l]
	// maps name -> per-ring space for layer l+2.
	ringNames map[int][]string
	rings     []map[string]*Space
	landmarks []int
}

// BuildHierarchy constructs the layered CAN overlay over every host of
// net.
func BuildHierarchy(net *topology.Network, cfg HierarchyConfig, rng *rand.Rand) (*Hierarchy, error) {
	if cfg.Depth == 0 {
		cfg.Depth = 2
	}
	if cfg.Landmarks == 0 {
		cfg.Landmarks = 4
	}
	if cfg.Dims == 0 {
		cfg.Dims = 2
	}
	if cfg.Depth < 1 {
		return nil, fmt.Errorf("can: depth must be >= 1")
	}
	n := net.Hosts()
	if n == 0 {
		return nil, fmt.Errorf("can: network has no hosts")
	}
	h := &Hierarchy{cfg: cfg, net: net, ringNames: make(map[int][]string)}

	hosts := make([]int, n)
	for i := range hosts {
		hosts[i] = i
	}
	var err error
	if h.global, err = Build(hosts, cfg.Dims, rng); err != nil {
		return nil, err
	}

	if cfg.Depth > 1 {
		ladder := cfg.Ladder
		if ladder == nil {
			if ladder, err = binning.DefaultLadder(cfg.Depth); err != nil {
				return nil, err
			}
		}
		if h.landmarks, err = topology.SelectLandmarks(net, cfg.Landmarks, topology.LandmarkSpread, rng); err != nil {
			return nil, err
		}
		byName := make([]map[string][]int, cfg.Depth-1)
		for l := range byName {
			byName[l] = make(map[string][]int)
		}
		for host := 0; host < n; host++ {
			lats := net.PingVector(host, h.landmarks, rng)
			names, err := binning.RingNames(lats, ladder)
			if err != nil {
				return nil, err
			}
			h.ringNames[host] = names
			for l, name := range names {
				byName[l][name] = append(byName[l][name], host)
			}
		}
		h.rings = make([]map[string]*Space, cfg.Depth-1)
		for l := range byName {
			h.rings[l] = make(map[string]*Space, len(byName[l]))
			for name, members := range byName[l] {
				sp, err := Build(members, cfg.Dims, rng)
				if err != nil {
					return nil, err
				}
				h.rings[l][name] = sp
			}
		}
	}
	return h, nil
}

// N returns the number of peers.
func (h *Hierarchy) N() int { return h.net.Hosts() }

// NumRings returns the number of lower-layer CAN spaces.
func (h *Hierarchy) NumRings() int {
	total := 0
	for _, m := range h.rings {
		total += len(m)
	}
	return total
}

// RouteResult describes one layered CAN lookup.
type RouteResult struct {
	OwnerHost int
	Hops      int
	LowerHops int
	Latency   float64
	LowerLat  float64
}

// Route performs the hierarchical routing procedure from host `from` to
// the global owner of point p: each lower ring's space is routed first,
// handing the message to a topologically close node whose zone (in that
// ring's division) contains p, before the global space finishes the job.
func (h *Hierarchy) Route(from int, p Point) RouteResult {
	res := RouteResult{}
	cur := from
	for l := h.cfg.Depth - 2; l >= 0; l-- {
		names := h.ringNames[cur]
		sp := h.rings[l][names[l]]
		member := sp.IndexOfHost(cur)
		owner, _ := sp.Route(member, p, func(f, to int) {
			lat := h.net.Latency(sp.Host(f), sp.Host(to))
			res.Hops++
			res.LowerHops++
			res.Latency += lat
			res.LowerLat += lat
		})
		cur = sp.Host(owner)
	}
	member := h.global.IndexOfHost(cur)
	owner, _ := h.global.Route(member, p, func(f, to int) {
		res.Hops++
		res.Latency += h.net.Latency(h.global.Host(f), h.global.Host(to))
	})
	res.OwnerHost = h.global.Host(owner)
	return res
}

// FlatRoute routes purely in the global CAN — the baseline.
func (h *Hierarchy) FlatRoute(from int, p Point) RouteResult {
	res := RouteResult{}
	member := h.global.IndexOfHost(from)
	owner, _ := h.global.Route(member, p, func(f, to int) {
		res.Hops++
		res.Latency += h.net.Latency(h.global.Host(f), h.global.Host(to))
	})
	res.OwnerHost = h.global.Host(owner)
	return res
}
