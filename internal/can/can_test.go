package can

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/topology"
	"repro/internal/topology/transitstub"
)

func buildSpace(t testing.TB, n, dims int, seed int64) *Space {
	t.Helper()
	hosts := make([]int, n)
	for i := range hosts {
		hosts[i] = i
	}
	s, err := Build(hosts, dims, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Build(nil, 2, rng); err == nil {
		t.Error("empty hosts accepted")
	}
	if _, err := Build([]int{1}, 0, rng); err == nil {
		t.Error("dims 0 accepted")
	}
	if _, err := Build([]int{1}, 9, rng); err == nil {
		t.Error("dims 9 accepted")
	}
}

// zonesPartition checks that zones tile the unit torus: volumes sum to 1
// and random points have exactly one owner.
func zonesPartition(t *testing.T, s *Space, seed int64) {
	t.Helper()
	var vol float64
	for _, z := range s.zones {
		v := 1.0
		for i := range z.lo {
			v *= z.hi[i] - z.lo[i]
		}
		vol += v
	}
	if math.Abs(vol-1) > 1e-9 {
		t.Fatalf("zone volumes sum to %v", vol)
	}
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 300; trial++ {
		p := make(Point, s.Dims())
		for i := range p {
			p[i] = rng.Float64()
		}
		owners := 0
		for _, z := range s.zones {
			if z.contains(p) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("point %v has %d owners", p, owners)
		}
	}
}

func TestZonesPartitionTorus(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 300} {
		for _, dims := range []int{1, 2, 3} {
			s := buildSpace(t, n, dims, int64(n*10+dims))
			zonesPartition(t, s, int64(n+dims))
		}
	}
}

func TestNeighborsSymmetricAndAdjacent(t *testing.T) {
	s := buildSpace(t, 200, 2, 3)
	for u := 0; u < s.Len(); u++ {
		for _, v := range s.neighbors[u] {
			if !adjacent(s.zones[u], s.zones[v]) {
				t.Fatalf("neighbor %d-%d not adjacent", u, v)
			}
			found := false
			for _, w := range s.neighbors[v] {
				if int(w) == u {
					found = true
				}
			}
			if !found {
				t.Fatalf("neighbor relation %d-%d not symmetric", u, v)
			}
		}
		if s.Len() > 1 && s.Neighbors(u) == 0 {
			t.Fatalf("member %d isolated", u)
		}
	}
}

func TestRouteFindsOwner(t *testing.T) {
	s := buildSpace(t, 150, 2, 4)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 400; trial++ {
		p := Point{rng.Float64(), rng.Float64()}
		from := rng.Intn(s.Len())
		got, hops := s.Route(from, p, nil)
		want := s.OwnerOf(p)
		if got != want {
			t.Fatalf("routed to %d, owner is %d", got, want)
		}
		if hops > 8*s.Len() {
			t.Fatalf("hop bound hit")
		}
	}
}

func TestRouteHopScaling(t *testing.T) {
	// CAN hops grow like (d/4) n^(1/d); check sublinear growth.
	rng := rand.New(rand.NewSource(6))
	mean := func(n int) float64 {
		s := buildSpace(t, n, 2, 7)
		total := 0
		const trials = 300
		for i := 0; i < trials; i++ {
			p := Point{rng.Float64(), rng.Float64()}
			_, hops := s.Route(rng.Intn(n), p, nil)
			total += hops
		}
		return float64(total) / trials
	}
	m64, m1024 := mean(64), mean(1024)
	// sqrt(1024/64) = 4; allow generous slack but demand sublinearity.
	if m1024 > 6*m64 {
		t.Errorf("hops grew from %.1f (n=64) to %.1f (n=1024): superlinear", m64, m1024)
	}
}

func TestRouteVisitContiguous(t *testing.T) {
	s := buildSpace(t, 100, 2, 8)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		from := rng.Intn(s.Len())
		cur := from
		p := Point{rng.Float64(), rng.Float64()}
		owner, hops := s.Route(from, p, func(f, to int) {
			if f != cur {
				t.Fatal("discontiguous path")
			}
			cur = to
		})
		if cur != owner {
			t.Fatal("path does not end at owner")
		}
		_ = hops
	}
}

func TestKeyPoint(t *testing.T) {
	p := KeyPoint("hello", 3)
	if len(p) != 3 {
		t.Fatalf("dims = %d", len(p))
	}
	for _, c := range p {
		if c < 0 || c >= 1 {
			t.Fatalf("coordinate %v out of [0,1)", c)
		}
	}
	if KeyPoint("hello", 3)[0] != p[0] {
		t.Error("KeyPoint not deterministic")
	}
	q := KeyPoint("world", 3)
	if q[0] == p[0] && q[1] == p[1] {
		t.Error("distinct keys collided (vanishingly unlikely)")
	}
}

func TestQuickPartitionInvariant(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw)%120
		hosts := make([]int, n)
		for i := range hosts {
			hosts[i] = i
		}
		s, err := Build(hosts, 2, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		var vol float64
		for _, z := range s.zones {
			v := 1.0
			for i := range z.lo {
				v *= z.hi[i] - z.lo[i]
			}
			vol += v
		}
		return math.Abs(vol-1) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(10))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func testNet(t testing.TB, hosts int, seed int64) *topology.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m, err := transitstub.Generate(transitstub.DefaultConfig(hosts), rng)
	if err != nil {
		t.Fatal(err)
	}
	net, err := topology.Attach(m, m.G, topology.AttachOptions{
		Hosts: hosts, Routers: m.StubRouters, Spread: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestHierarchyBuildAndRoute(t *testing.T) {
	net := testNet(t, 250, 11)
	h, err := BuildHierarchy(net, HierarchyConfig{Depth: 2, Landmarks: 4}, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 250 || h.NumRings() == 0 {
		t.Fatalf("N=%d rings=%d", h.N(), h.NumRings())
	}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		p := Point{rng.Float64(), rng.Float64()}
		from := rng.Intn(h.N())
		hier := h.Route(from, p)
		flat := h.FlatRoute(from, p)
		if hier.OwnerHost != flat.OwnerHost {
			t.Fatalf("hierarchical and flat CAN disagree on the owner")
		}
		if hier.LowerLat > hier.Latency+1e-9 {
			t.Fatal("lower latency exceeds total")
		}
	}
}

func TestHierarchyLatencyWin(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	net := testNet(t, 400, 14)
	h, err := BuildHierarchy(net, HierarchyConfig{Depth: 2, Landmarks: 6}, rand.New(rand.NewSource(15)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(16))
	var hier, flat float64
	const trials = 1500
	for i := 0; i < trials; i++ {
		p := Point{rng.Float64(), rng.Float64()}
		from := rng.Intn(h.N())
		hier += h.Route(from, p).Latency
		flat += h.FlatRoute(from, p).Latency
	}
	ratio := hier / flat
	t.Logf("HIERAS-over-CAN latency ratio: %.3f", ratio)
	if ratio > 0.95 {
		t.Errorf("hierarchical CAN ratio %.3f shows no benefit", ratio)
	}
}

func TestHierarchyDepth1IsFlat(t *testing.T) {
	net := testNet(t, 80, 17)
	h, err := BuildHierarchy(net, HierarchyConfig{Depth: 1}, rand.New(rand.NewSource(18)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 50; trial++ {
		p := Point{rng.Float64(), rng.Float64()}
		from := rng.Intn(h.N())
		a, b := h.Route(from, p), h.FlatRoute(from, p)
		if a.Hops != b.Hops || a.OwnerHost != b.OwnerHost {
			t.Fatal("depth-1 hierarchy must equal flat CAN")
		}
	}
}

func TestHierarchyErrors(t *testing.T) {
	net := testNet(t, 20, 20)
	if _, err := BuildHierarchy(net, HierarchyConfig{Depth: -2}, rand.New(rand.NewSource(21))); err == nil {
		t.Error("negative depth accepted")
	}
	empty := &topology.Network{Model: topology.NewDijkstraOracle(topology.NewGraph(1)), HostDelay: 1}
	if _, err := BuildHierarchy(empty, HierarchyConfig{}, rand.New(rand.NewSource(22))); err == nil {
		t.Error("empty network accepted")
	}
}
