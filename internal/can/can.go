// Package can implements a Content-Addressable Network (Ratnasamy et al.)
// and its hierarchical HIERAS variant. The paper claims its scheme is not
// Chord-specific: "if we use CAN as the underlying algorithm, the whole
// coordinate space can be divided multiple times in different layers, we
// can create multilayer neighbor sets accordingly and use these neighbor
// sets in different loops during a routing procedure" (§3.2). This package
// substantiates that claim: Space is a flat d-dimensional CAN, Hierarchy
// divides the same coordinate space once per HIERAS layer (one division
// among each ring's members) and routes through the layers bottom-up.
package can

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
)

// Point is a location in the unit d-torus.
type Point []float64

// KeyPoint hashes an application key to a point in the unit d-torus.
func KeyPoint(key string, dims int) Point {
	sum := sha1.Sum([]byte("can:" + key))
	p := make(Point, dims)
	for i := 0; i < dims; i++ {
		// Derive independent coordinates by re-hashing per dimension.
		h := sha1.Sum(append(sum[:], byte(i)))
		v := binary.BigEndian.Uint64(h[:8])
		p[i] = float64(v) / float64(math.MaxUint64)
	}
	return p
}

// zone is an axis-aligned box [lo, hi) in the unit torus. Zones never wrap
// (splits always happen inside [0,1)).
type zone struct {
	lo, hi []float64
}

func (z zone) contains(p Point) bool {
	for i := range p {
		if p[i] < z.lo[i] || p[i] >= z.hi[i] {
			return false
		}
	}
	return true
}

// longestDim returns the index of the zone's longest side.
func (z zone) longestDim() int {
	best, bestLen := 0, z.hi[0]-z.lo[0]
	for i := 1; i < len(z.lo); i++ {
		if l := z.hi[i] - z.lo[i]; l > bestLen {
			best, bestLen = i, l
		}
	}
	return best
}

// torusDist1 is the circular distance between scalars in [0,1).
func torusDist1(a, b float64) float64 {
	d := math.Abs(a - b)
	if d > 0.5 {
		d = 1 - d
	}
	return d
}

// distToZone is the squared torus distance from p to the closest point of
// z.
func (z zone) distToZone(p Point) float64 {
	var sum float64
	for i := range p {
		if p[i] >= z.lo[i] && p[i] < z.hi[i] {
			continue
		}
		d := math.Min(torusDist1(p[i], z.lo[i]), torusDist1(p[i], z.hi[i]))
		sum += d * d
	}
	return sum
}

// intervalsTouch reports whether [al,ah) and [bl,bh) abut on the unit
// torus (share a face coordinate).
func intervalsTouch(al, ah, bl, bh float64) bool {
	const eps = 1e-12
	if math.Abs(ah-bl) < eps || math.Abs(bh-al) < eps {
		return true
	}
	// Torus wrap: 1.0 touches 0.0.
	if (math.Abs(ah-1) < eps && math.Abs(bl) < eps) || (math.Abs(bh-1) < eps && math.Abs(al) < eps) {
		return true
	}
	return false
}

// intervalsOverlap reports whether [al,ah) and [bl,bh) overlap with
// positive measure.
func intervalsOverlap(al, ah, bl, bh float64) bool {
	return al < bh && bl < ah
}

// adjacent reports whether zones a and b abut in exactly one dimension and
// overlap in all others — CAN's neighbor relation.
func adjacent(a, b zone) bool {
	touch := 0
	for i := range a.lo {
		switch {
		case intervalsOverlap(a.lo[i], a.hi[i], b.lo[i], b.hi[i]):
			// overlapping dimension: fine
		case intervalsTouch(a.lo[i], a.hi[i], b.lo[i], b.hi[i]):
			touch++
		default:
			return false
		}
	}
	return touch == 1
}

// Space is a flat CAN over a fixed member set: member i owns zones[i].
// Immutable after Build; safe for concurrent routing.
type Space struct {
	dims      int
	zones     []zone
	hosts     []int32
	neighbors [][]int32
	hostIdx   map[int]int
}

// HostPoint derives a host's canonical join point. Every layer's space
// division uses the same point for a given host — that alignment is what
// makes the hierarchical transplant effective: a ring member whose RING
// zone contains a target point also owns a GLOBAL zone near that point
// (both zones contain the member's join point), so the global loop that
// follows a lower-layer loop only has a short distance left to cover.
func HostPoint(host, dims int) Point {
	return KeyPoint(fmt.Sprintf("host:%d", host), dims)
}

// Build inserts the hosts into the coordinate space one at a time: each
// newcomer's zone is split off the zone containing its canonical join
// point (HostPoint), and neighbor sets update locally — CAN's join
// procedure with global knowledge standing in for the bootstrap routing.
// rng shuffles the insertion order (zone shapes depend on it; ownership
// of each join point does not).
func Build(hosts []int, dims int, rng *rand.Rand) (*Space, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("can: empty member set")
	}
	if dims < 1 || dims > 8 {
		return nil, fmt.Errorf("can: dims must be in [1,8], got %d", dims)
	}
	order := make([]int, len(hosts))
	copy(order, hosts)
	if rng != nil {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	s := &Space{dims: dims, hostIdx: make(map[int]int, len(order))}
	full := zone{lo: make([]float64, dims), hi: make([]float64, dims)}
	for i := range full.hi {
		full.hi[i] = 1
	}
	s.zones = append(s.zones, full)
	s.hosts = append(s.hosts, int32(order[0]))
	s.neighbors = append(s.neighbors, nil)
	s.hostIdx[order[0]] = 0
	for _, h := range order[1:] {
		s.insert(h, HostPoint(h, dims))
	}
	return s, nil
}

// insert splits the zone owning p and gives the newcomer the half
// containing p.
func (s *Space) insert(host int, p Point) {
	owner := s.ownerScanOrRoute(p)
	z := s.zones[owner]
	d := z.longestDim()
	mid := (z.lo[d] + z.hi[d]) / 2

	low := zone{lo: append([]float64(nil), z.lo...), hi: append([]float64(nil), z.hi...)}
	high := zone{lo: append([]float64(nil), z.lo...), hi: append([]float64(nil), z.hi...)}
	low.hi[d] = mid
	high.lo[d] = mid

	var oldZone, newZone zone
	if p[d] < mid {
		newZone, oldZone = low, high
	} else {
		newZone, oldZone = high, low
	}
	newIdx := len(s.zones)
	s.zones[owner] = oldZone
	s.zones = append(s.zones, newZone)
	s.hosts = append(s.hosts, int32(host))
	s.neighbors = append(s.neighbors, nil)
	s.hostIdx[host] = newIdx

	// Rebuild adjacency for the two halves against the owner's old
	// neighborhood; everyone else is unaffected.
	oldNbrs := s.neighbors[owner]
	s.neighbors[owner] = nil
	cand := append(append([]int32(nil), oldNbrs...), int32(newIdx))
	for _, v := range cand {
		s.unlink(int(v), owner)
	}
	for _, v := range cand {
		if int(v) != owner && adjacent(s.zones[owner], s.zones[v]) {
			s.link(owner, int(v))
		}
	}
	for _, v := range oldNbrs {
		if int(v) != newIdx && adjacent(s.zones[newIdx], s.zones[v]) {
			s.link(newIdx, int(v))
		}
	}
	if adjacent(s.zones[owner], s.zones[newIdx]) {
		s.link(owner, newIdx)
	}
}

func (s *Space) link(a, b int) {
	for _, v := range s.neighbors[a] {
		if int(v) == b {
			return
		}
	}
	s.neighbors[a] = append(s.neighbors[a], int32(b))
	s.neighbors[b] = append(s.neighbors[b], int32(a))
}

func (s *Space) unlink(a, b int) {
	rm := func(list []int32, x int) []int32 {
		out := list[:0]
		for _, v := range list {
			if int(v) != x {
				out = append(out, v)
			}
		}
		return out
	}
	s.neighbors[a] = rm(s.neighbors[a], b)
	s.neighbors[b] = rm(s.neighbors[b], a)
}

// ownerScanOrRoute finds the zone containing p (greedy route from member
// 0, falling back to a scan while the space is tiny).
func (s *Space) ownerScanOrRoute(p Point) int {
	if len(s.zones) < 8 {
		for i, z := range s.zones {
			if z.contains(p) {
				return i
			}
		}
	}
	owner, _ := s.Route(0, p, nil)
	return owner
}

// Len returns the member count.
func (s *Space) Len() int { return len(s.zones) }

// Dims returns the dimensionality.
func (s *Space) Dims() int { return s.dims }

// Host returns member i's host index.
func (s *Space) Host(i int) int { return int(s.hosts[i]) }

// Neighbors returns member i's neighbor count.
func (s *Space) Neighbors(i int) int { return len(s.neighbors[i]) }

// OwnerOf returns the member whose zone contains p (exact scan; use Route
// for protocol-style lookup).
func (s *Space) OwnerOf(p Point) int {
	for i, z := range s.zones {
		if z.contains(p) {
			return i
		}
	}
	return -1 // unreachable: zones partition the torus
}

// Route greedily forwards from member `from` toward the zone containing
// p, calling visit per hop, and returns the owner and hop count.
func (s *Space) Route(from int, p Point, visit func(f, to int)) (int, int) {
	u := from
	hops := 0
	limit := 8 * len(s.zones)
	for !s.zones[u].contains(p) {
		if hops >= limit {
			return u, hops // defensive; cannot happen with consistent zones
		}
		best := -1
		bestDist := math.Inf(1)
		for _, v := range s.neighbors[u] {
			if d := s.zones[v].distToZone(p); d < bestDist {
				best, bestDist = int(v), d
			}
		}
		if best == -1 {
			return u, hops // singleton space
		}
		if visit != nil {
			visit(u, best)
		}
		u = best
		hops++
	}
	return u, hops
}

// IndexOfHost returns the member index owning a host, or -1.
func (s *Space) IndexOfHost(host int) int {
	if i, ok := s.hostIdx[host]; ok {
		return i
	}
	return -1
}
