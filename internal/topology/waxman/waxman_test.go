package waxman

import (
	"math"
	"math/rand"
	"testing"
)

func TestGenerateBasic(t *testing.T) {
	u, err := Generate(Config{Routers: 300}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if u.Graph.N() != 300 {
		t.Errorf("N = %d", u.Graph.N())
	}
	if !u.Graph.Connected() {
		t.Fatal("waxman graph must be connected")
	}
	if len(u.HostCandidates) == 0 {
		t.Error("no host candidates")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{Routers: 2}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("too-small router count accepted")
	}
}

func TestShortEdgesDominate(t *testing.T) {
	u, err := Generate(Config{Routers: 400}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	// Waxman's defining property: edge probability decays with distance,
	// so the median link delay must be well below the median pairwise
	// distance (~half the diagonal/speed).
	var delays []float64
	for v := 0; v < u.Graph.N(); v++ {
		for _, e := range u.Graph.Neighbors(v) {
			if e.To > v {
				delays = append(delays, e.Delay)
			}
		}
	}
	if len(delays) == 0 {
		t.Fatal("no edges")
	}
	var sum float64
	for _, d := range delays {
		sum += d
	}
	mean := sum / float64(len(delays))
	maxPossible := 0.5 + 5000*math.Sqrt2/200
	if mean > maxPossible/2.5 {
		t.Errorf("mean edge delay %.1f ms too long for a Waxman graph (max %.1f)", mean, maxPossible)
	}
}

func TestSparseAlphaStillConnected(t *testing.T) {
	// Tiny alpha produces many components; repair must stitch them.
	u, err := Generate(Config{Routers: 150, Alpha: 0.01}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if !u.Graph.Connected() {
		t.Fatal("repair failed to connect sparse graph")
	}
}

func TestDeterministic(t *testing.T) {
	u1, _ := Generate(Config{Routers: 200}, rand.New(rand.NewSource(4)))
	u2, _ := Generate(Config{Routers: 200}, rand.New(rand.NewSource(4)))
	if u1.Graph.EdgeCount() != u2.Graph.EdgeCount() {
		t.Error("same seed produced different graphs")
	}
}
