// Package waxman generates Waxman random graphs (Waxman, JSAC 1988), the
// classic internetwork model GT-ITM itself uses for its intra-domain
// topologies. Routers scatter on a plane and each pair links with
// probability alpha * exp(-d / (beta * L)), where d is their distance and
// L the plane diagonal; a spanning tree guarantees connectivity. It serves
// as a fourth underlay model ("We also use other distributions but our
// conclusion does not change", paper §4.1).
package waxman

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/topology"
)

// Config parametrises the generator.
type Config struct {
	// Routers is the number of routers (>= 3).
	Routers int
	// Alpha scales overall edge density (default 0.15).
	Alpha float64
	// Beta controls the long-edge ratio: larger beta, more long links
	// (default 0.18).
	Beta float64
	// PlaneKm, KmPerMs, MinDelay control delays as in package brite
	// (defaults 5000 km, 200 km/ms, 0.5 ms).
	PlaneKm  float64
	KmPerMs  float64
	MinDelay float64
}

func (c *Config) setDefaults() {
	if c.Alpha <= 0 {
		c.Alpha = 0.15
	}
	if c.Beta <= 0 {
		c.Beta = 0.18
	}
	if c.PlaneKm <= 0 {
		c.PlaneKm = 5000
	}
	if c.KmPerMs <= 0 {
		c.KmPerMs = 200
	}
	if c.MinDelay <= 0 {
		c.MinDelay = 0.5
	}
}

// Generate builds a Waxman underlay.
func Generate(cfg Config, rng *rand.Rand) (*topology.Underlay, error) {
	cfg.setDefaults()
	n := cfg.Routers
	if n < 3 {
		return nil, fmt.Errorf("waxman: need at least 3 routers, got %d", n)
	}
	g := topology.NewGraph(n)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = rng.Float64() * cfg.PlaneKm
		y[i] = rng.Float64() * cfg.PlaneKm
	}
	dist := func(u, v int) float64 { return math.Hypot(x[u]-x[v], y[u]-y[v]) }
	delay := func(u, v int) float64 { return cfg.MinDelay + dist(u, v)/cfg.KmPerMs }
	diag := cfg.PlaneKm * math.Sqrt2

	// Waxman edges.
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := cfg.Alpha * math.Exp(-dist(u, v)/(cfg.Beta*diag))
			if rng.Float64() < p {
				if err := g.AddEdge(u, v, delay(u, v)); err != nil {
					return nil, err
				}
			}
		}
	}
	// Connectivity repair: link each stranded component to its nearest
	// already-connected router (shortest geometric edge).
	comp := components(g)
	for comp[0] != -2 { // sentinel never set; loop breaks inside
		// Find any node not in component of node 0.
		root := comp[0]
		stranded := -1
		for v, c := range comp {
			if c != root {
				stranded = v
				break
			}
		}
		if stranded == -1 {
			break
		}
		// Nearest cross-component pair involving stranded's component.
		bestU, bestV, bestD := -1, -1, math.Inf(1)
		for u := 0; u < n; u++ {
			if comp[u] != comp[stranded] {
				continue
			}
			for v := 0; v < n; v++ {
				if comp[v] == comp[stranded] {
					continue
				}
				if d := dist(u, v); d < bestD {
					bestU, bestV, bestD = u, v, d
				}
			}
		}
		if err := g.AddEdge(bestU, bestV, delay(bestU, bestV)); err != nil {
			return nil, err
		}
		comp = components(g)
	}
	if !g.Connected() {
		return nil, fmt.Errorf("waxman: connectivity repair failed (bug)")
	}
	return &topology.Underlay{
		Graph:          g,
		Model:          topology.NewDijkstraOracle(g),
		HostCandidates: lowDegreeHalf(g),
	}, nil
}

// components labels each node with its component representative.
func components(g *topology.Graph) []int {
	n := g.N()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		stack := []int{s}
		comp[s] = s
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range g.Neighbors(u) {
				if comp[e.To] == -1 {
					comp[e.To] = s
					stack = append(stack, e.To)
				}
			}
		}
	}
	return comp
}

func lowDegreeHalf(g *topology.Graph) []int {
	idx := make([]int, g.N())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return g.Degree(idx[a]) < g.Degree(idx[b]) })
	return idx[:(g.N()+1)/2]
}
