// Package transitstub generates GT-ITM style Transit-Stub internetwork
// topologies (Zegura et al., "How to model an internetwork", INFOCOM'96),
// the primary model in the HIERAS evaluation (§4.1).
//
// The generated underlay has a two-level structure: transit domains whose
// routers interconnect with 100 ms links, and stub domains hanging off
// individual transit routers over 20 ms links, with 5 ms links inside each
// stub domain. Those three constants are exactly the ones used in the
// paper and are configurable.
//
// Because every stub domain attaches to the core through a single gateway
// transit router, shortest paths decompose as
//
//	d(a,b) = d(a, gw(a)) + d(gw(a), b)
//
// for hosts in different stub domains, so the Model answers latency queries
// in O(1) after precomputing one Dijkstra row per transit router and an
// all-pairs table per stub domain. This makes 10,000-router experiments
// cheap, matching the paper's largest configuration.
package transitstub

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/topology"
)

// Config parametrises the generator.
type Config struct {
	// TransitDomains is the number of transit domains (>= 1).
	TransitDomains int
	// TransitNodesPerDomain is the router count per transit domain (>= 1).
	TransitNodesPerDomain int
	// StubDomainsPerTransitNode is the number of stub domains attached to
	// each transit router (>= 1).
	StubDomainsPerTransitNode int
	// StubNodesPerDomain is the mean router count per stub domain (>= 1).
	// Actual sizes are uniform in [ceil(mean/2), floor(3*mean/2)].
	StubNodesPerDomain int

	// IntraTransitDelay is the delay of transit-transit links (paper: 100).
	IntraTransitDelay float64
	// TransitStubDelay is the delay of stub-gateway links (paper: 20).
	TransitStubDelay float64
	// IntraStubDelay is the delay of links inside stub domains (paper: 5).
	IntraStubDelay float64

	// ExtraTransitEdgeProb is the probability of each extra candidate edge
	// inside a transit domain beyond the connecting ring.
	ExtraTransitEdgeProb float64
	// ExtraStubEdgeProb is the probability of each extra candidate edge
	// inside a stub domain beyond the spanning tree.
	ExtraStubEdgeProb float64
}

// DefaultConfig returns a configuration sized so the underlay has roughly
// wantStubRouters stub routers, using the paper's delay constants.
//
// Following GT-ITM practice (and what makes the paper's landmark-count
// sweep meaningful), the transit core is kept small and fixed — 2 transit
// domains of 4 routers each, i.e. 8 "regions" — and the stub population
// grows with the requested size. Distributed binning with the paper's
// {20,100} thresholds then discriminates exactly the right structure:
// same stub domain (< 20 ms) / same region (20-100 ms) / different region
// (> 100 ms), and 4-8 landmarks cover the regions as in Figures 6-7.
func DefaultConfig(wantStubRouters int) Config {
	cfg := Config{
		TransitDomains:        2,
		TransitNodesPerDomain: 4,
		StubNodesPerDomain:    12,
		IntraTransitDelay:     100,
		TransitStubDelay:      20,
		IntraStubDelay:        5,
		ExtraTransitEdgeProb:  0.5,
		ExtraStubEdgeProb:     0.15,
	}
	regions := cfg.TransitDomains * cfg.TransitNodesPerDomain
	// Overshoot ~8% so Spread attachment (one host per stub router) fits.
	per := (wantStubRouters*108/100 + regions*cfg.StubNodesPerDomain - 1) /
		(regions * cfg.StubNodesPerDomain)
	if per < 1 {
		per = 1
	}
	cfg.StubDomainsPerTransitNode = per
	return cfg
}

// Validate reports the first configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.TransitDomains < 1:
		return fmt.Errorf("transitstub: TransitDomains must be >= 1, got %d", c.TransitDomains)
	case c.TransitNodesPerDomain < 1:
		return fmt.Errorf("transitstub: TransitNodesPerDomain must be >= 1, got %d", c.TransitNodesPerDomain)
	case c.StubDomainsPerTransitNode < 1:
		return fmt.Errorf("transitstub: StubDomainsPerTransitNode must be >= 1, got %d", c.StubDomainsPerTransitNode)
	case c.StubNodesPerDomain < 1:
		return fmt.Errorf("transitstub: StubNodesPerDomain must be >= 1, got %d", c.StubNodesPerDomain)
	case c.IntraTransitDelay <= 0 || c.TransitStubDelay <= 0 || c.IntraStubDelay <= 0:
		return fmt.Errorf("transitstub: delays must be positive")
	}
	return nil
}

// Model is a generated Transit-Stub underlay implementing
// topology.LatencyModel with O(1) exact shortest-path queries.
type Model struct {
	G           *topology.Graph
	TransitIdx  []int // graph indexes of transit routers
	StubRouters []int // graph indexes of stub routers

	// stubDomain[v] is the stub-domain index of router v, or -1 for
	// transit routers.
	stubDomain []int
	// gateway[d] is the transit router a stub domain d attaches to.
	gateway []int
	// transitRow[t] is the full-graph Dijkstra row from transit router
	// with transit index t.
	transitRow [][]float64
	// transitOf[v] is the transit index of transit router v, or -1.
	transitOf []int
	// intra[d] is the all-pairs delay table within stub domain d, indexed
	// by in-domain position.
	intra [][][]float64
	// domPos[v] is v's position within its stub domain.
	domPos []int
	// domMembers[d] lists the graph indexes in stub domain d.
	domMembers [][]int
}

// Generate builds a Transit-Stub underlay from cfg using rng.
func Generate(cfg Config, rng *rand.Rand) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := topology.NewGraph(0)
	m := &Model{G: g}

	// 1. Transit routers, grouped by domain.
	domains := make([][]int, cfg.TransitDomains)
	for d := range domains {
		for i := 0; i < cfg.TransitNodesPerDomain; i++ {
			v := g.AddNode(topology.Transit)
			domains[d] = append(domains[d], v)
			m.TransitIdx = append(m.TransitIdx, v)
		}
		// Connect the domain: ring (or single edge / nothing for tiny
		// domains) plus random extra chords.
		connectRing(g, domains[d], cfg.IntraTransitDelay)
		addRandomChords(g, domains[d], cfg.ExtraTransitEdgeProb, cfg.IntraTransitDelay, rng)
	}
	// 2. Inter-domain transit links: a ring over domains plus random extra
	// domain pairs, each joined by one random router pair.
	for d := 0; d < cfg.TransitDomains; d++ {
		next := (d + 1) % cfg.TransitDomains
		if next == d {
			break
		}
		u := domains[d][rng.Intn(len(domains[d]))]
		v := domains[next][rng.Intn(len(domains[next]))]
		if !g.HasEdge(u, v) {
			if err := g.AddEdge(u, v, cfg.IntraTransitDelay); err != nil {
				return nil, err
			}
		}
		if cfg.TransitDomains == 2 {
			break // ring over 2 domains would duplicate the edge
		}
	}
	for d := 0; d < cfg.TransitDomains; d++ {
		for e := d + 2; e < cfg.TransitDomains; e++ {
			if rng.Float64() < 0.2 {
				u := domains[d][rng.Intn(len(domains[d]))]
				v := domains[e][rng.Intn(len(domains[e]))]
				if !g.HasEdge(u, v) {
					if err := g.AddEdge(u, v, cfg.IntraTransitDelay); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	// 3. Stub domains: one gateway edge from a random member to the parent
	// transit router; internal spanning tree plus random chords.
	for _, tr := range m.TransitIdx {
		for s := 0; s < cfg.StubDomainsPerTransitNode; s++ {
			size := stubSize(cfg.StubNodesPerDomain, rng)
			members := make([]int, size)
			for i := range members {
				members[i] = g.AddNode(topology.Stub)
			}
			connectTree(g, members, cfg.IntraStubDelay, rng)
			addRandomChords(g, members, cfg.ExtraStubEdgeProb, cfg.IntraStubDelay, rng)
			attach := members[rng.Intn(size)]
			if err := g.AddEdge(attach, tr, cfg.TransitStubDelay); err != nil {
				return nil, err
			}
			dom := len(m.gateway)
			m.gateway = append(m.gateway, tr)
			m.domMembers = append(m.domMembers, members)
			m.StubRouters = append(m.StubRouters, members...)
			_ = dom
		}
	}

	// 4. Indexes and precomputation.
	n := g.N()
	m.stubDomain = make([]int, n)
	m.domPos = make([]int, n)
	m.transitOf = make([]int, n)
	for v := range m.stubDomain {
		m.stubDomain[v] = -1
		m.transitOf[v] = -1
	}
	for d, members := range m.domMembers {
		for pos, v := range members {
			m.stubDomain[v] = d
			m.domPos[v] = pos
		}
	}
	for t, v := range m.TransitIdx {
		m.transitOf[v] = t
	}
	m.transitRow = make([][]float64, len(m.TransitIdx))
	for t, v := range m.TransitIdx {
		m.transitRow[t] = g.Dijkstra(v)
	}
	m.intra = make([][][]float64, len(m.domMembers))
	for d, members := range m.domMembers {
		m.intra[d] = intraDomainAllPairs(g, members)
	}
	if !g.Connected() {
		return nil, fmt.Errorf("transitstub: generated graph is not connected (bug)")
	}
	return m, nil
}

// stubSize draws a stub-domain size uniform in [ceil(mean/2), 3*mean/2].
func stubSize(mean int, rng *rand.Rand) int {
	lo := (mean + 1) / 2
	hi := mean + mean/2
	if hi < lo {
		hi = lo
	}
	return lo + rng.Intn(hi-lo+1)
}

func connectRing(g *topology.Graph, members []int, delay float64) {
	if len(members) < 2 {
		return
	}
	if len(members) == 2 {
		_ = g.AddEdge(members[0], members[1], delay)
		return
	}
	for i := range members {
		_ = g.AddEdge(members[i], members[(i+1)%len(members)], delay)
	}
}

// connectTree links members into a random spanning tree (uniform attachment
// order).
func connectTree(g *topology.Graph, members []int, delay float64, rng *rand.Rand) {
	for i := 1; i < len(members); i++ {
		parent := members[rng.Intn(i)]
		_ = g.AddEdge(members[i], parent, delay)
	}
}

func addRandomChords(g *topology.Graph, members []int, prob, delay float64, rng *rand.Rand) {
	if prob <= 0 {
		return
	}
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			if rng.Float64() < prob && !g.HasEdge(members[i], members[j]) {
				_ = g.AddEdge(members[i], members[j], delay)
			}
		}
	}
}

func intraDomainAllPairs(g *topology.Graph, members []int) [][]float64 {
	pos := make(map[int]int, len(members))
	for p, v := range members {
		pos[v] = p
	}
	out := make([][]float64, len(members))
	for p, src := range members {
		// Dijkstra restricted to the domain subgraph. Shortest intra-domain
		// paths never leave the domain (leaving requires re-entering over
		// the same gateway edge, which is strictly longer).
		dist := make([]float64, len(members))
		for i := range dist {
			dist[i] = math.Inf(1)
		}
		dist[p] = 0
		// Simple O(k^2) scan; domains are small.
		done := make([]bool, len(members))
		for iter := 0; iter < len(members); iter++ {
			best, bestD := -1, math.Inf(1)
			for i, dd := range dist {
				if !done[i] && dd < bestD {
					best, bestD = i, dd
				}
			}
			if best == -1 {
				break
			}
			done[best] = true
			for _, e := range g.Neighbors(members[best]) {
				if q, ok := pos[e.To]; ok {
					if nd := bestD + e.Delay; nd < dist[q] {
						dist[q] = nd
					}
				}
			}
		}
		out[p] = dist
		_ = src
	}
	return out
}

// Routers implements topology.LatencyModel.
func (m *Model) Routers() int { return m.G.N() }

// RouterLatency implements topology.LatencyModel with exact O(1) queries.
func (m *Model) RouterLatency(a, b int) float64 {
	if a == b {
		return 0
	}
	da, db := m.stubDomain[a], m.stubDomain[b]
	switch {
	case da >= 0 && da == db:
		return m.intra[da][m.domPos[a]][m.domPos[b]]
	case da >= 0:
		gw := m.transitOf[m.gateway[da]]
		return m.transitRow[gw][a] + m.transitRow[gw][b]
	case db >= 0:
		gw := m.transitOf[m.gateway[db]]
		return m.transitRow[gw][b] + m.transitRow[gw][a]
	default: // both transit
		return m.transitRow[m.transitOf[a]][b]
	}
}

// StubDomains returns the number of stub domains.
func (m *Model) StubDomains() int { return len(m.domMembers) }
