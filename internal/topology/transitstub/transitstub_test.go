package transitstub

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func genSmall(t *testing.T, seed int64) *Model {
	t.Helper()
	cfg := Config{
		TransitDomains:            3,
		TransitNodesPerDomain:     3,
		StubDomainsPerTransitNode: 2,
		StubNodesPerDomain:        5,
		IntraTransitDelay:         100,
		TransitStubDelay:          20,
		IntraStubDelay:            5,
		ExtraTransitEdgeProb:      0.3,
		ExtraStubEdgeProb:         0.2,
	}
	m, err := Generate(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return m
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{},
		{TransitDomains: 1},
		{TransitDomains: 1, TransitNodesPerDomain: 1},
		{TransitDomains: 1, TransitNodesPerDomain: 1, StubDomainsPerTransitNode: 1},
		{TransitDomains: 1, TransitNodesPerDomain: 1, StubDomainsPerTransitNode: 1, StubNodesPerDomain: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	good := DefaultConfig(100)
	if err := good.Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestGenerateStructure(t *testing.T) {
	m := genSmall(t, 1)
	g := m.G
	if !g.Connected() {
		t.Fatal("graph not connected")
	}
	if len(m.TransitIdx) != 9 {
		t.Errorf("transit routers = %d, want 9", len(m.TransitIdx))
	}
	if m.StubDomains() != 18 {
		t.Errorf("stub domains = %d, want 18", m.StubDomains())
	}
	for _, v := range m.TransitIdx {
		if g.Kind(v) != topology.Transit {
			t.Errorf("node %d should be transit", v)
		}
	}
	for _, v := range m.StubRouters {
		if g.Kind(v) != topology.Stub {
			t.Errorf("node %d should be stub", v)
		}
	}
	if len(m.StubRouters)+len(m.TransitIdx) != g.N() {
		t.Error("router partition incomplete")
	}
}

func TestStubDomainSizesInRange(t *testing.T) {
	m := genSmall(t, 2)
	for d, members := range m.domMembers {
		// mean 5 -> sizes in [3, 7]
		if len(members) < 3 || len(members) > 7 {
			t.Errorf("domain %d size %d outside [3,7]", d, len(members))
		}
	}
}

func TestLatencyMatchesDijkstra(t *testing.T) {
	m := genSmall(t, 3)
	rng := rand.New(rand.NewSource(33))
	n := m.G.N()
	// Compare the decomposed O(1) oracle against brute-force Dijkstra on
	// random sources.
	for trial := 0; trial < 8; trial++ {
		src := rng.Intn(n)
		want := m.G.Dijkstra(src)
		for v := 0; v < n; v++ {
			got := m.RouterLatency(src, v)
			if math.Abs(got-want[v]) > 1e-9 {
				t.Fatalf("RouterLatency(%d,%d) = %v, Dijkstra says %v", src, v, got, want[v])
			}
		}
	}
}

func TestQuickLatencySymmetric(t *testing.T) {
	m := genSmall(t, 4)
	n := m.G.N()
	f := func(a, b uint16) bool {
		x, y := int(a)%n, int(b)%n
		return m.RouterLatency(x, y) == m.RouterLatency(y, x)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSameDomainCheaperThanCrossDomain(t *testing.T) {
	m := genSmall(t, 6)
	// Mean intra-domain latency must be far below mean cross-domain
	// latency — this is the property HIERAS exploits.
	var intraSum, crossSum float64
	var intraN, crossN int
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4000; trial++ {
		a := m.StubRouters[rng.Intn(len(m.StubRouters))]
		b := m.StubRouters[rng.Intn(len(m.StubRouters))]
		if a == b {
			continue
		}
		l := m.RouterLatency(a, b)
		if m.stubDomain[a] == m.stubDomain[b] {
			intraSum += l
			intraN++
		} else {
			crossSum += l
			crossN++
		}
	}
	if intraN == 0 || crossN == 0 {
		t.Skip("sampling did not hit both cases")
	}
	intra, cross := intraSum/float64(intraN), crossSum/float64(crossN)
	if intra*3 > cross {
		t.Errorf("intra %.1f ms not clearly below cross %.1f ms", intra, cross)
	}
}

func TestDefaultConfigScales(t *testing.T) {
	for _, n := range []int{100, 1000, 10000} {
		cfg := DefaultConfig(n)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("DefaultConfig(%d) invalid: %v", n, err)
		}
		approx := cfg.TransitDomains * cfg.TransitNodesPerDomain *
			cfg.StubDomainsPerTransitNode * cfg.StubNodesPerDomain
		if approx < n/2 {
			t.Errorf("DefaultConfig(%d) yields only ~%d stub routers", n, approx)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(200)
	m1, err := Generate(cfg, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Generate(cfg, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	if m1.G.N() != m2.G.N() || m1.G.EdgeCount() != m2.G.EdgeCount() {
		t.Error("same seed produced different graphs")
	}
	// Spot-check some latencies.
	for i := 0; i < 20; i++ {
		a, b := (i*37)%m1.G.N(), (i*53)%m1.G.N()
		if m1.RouterLatency(a, b) != m2.RouterLatency(a, b) {
			t.Fatal("same seed produced different latencies")
		}
	}
}

func TestGenerateRejectsInvalid(t *testing.T) {
	if _, err := Generate(Config{}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSingleTransitDomain(t *testing.T) {
	cfg := Config{
		TransitDomains:            1,
		TransitNodesPerDomain:     2,
		StubDomainsPerTransitNode: 2,
		StubNodesPerDomain:        3,
		IntraTransitDelay:         100,
		TransitStubDelay:          20,
		IntraStubDelay:            5,
	}
	m, err := Generate(cfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if !m.G.Connected() {
		t.Error("single-domain graph must be connected")
	}
}

func TestTwoTransitDomainsNoDuplicateRingEdge(t *testing.T) {
	cfg := Config{
		TransitDomains:            2,
		TransitNodesPerDomain:     1,
		StubDomainsPerTransitNode: 1,
		StubNodesPerDomain:        2,
		IntraTransitDelay:         100,
		TransitStubDelay:          20,
		IntraStubDelay:            5,
	}
	for seed := int64(0); seed < 10; seed++ {
		m, err := Generate(cfg, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if !m.G.Connected() {
			t.Fatal("2-domain graph must be connected")
		}
	}
}
