package topology

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// lineGraph builds 0-1-2-...-(n-1) with unit delays.
func lineGraph(t *testing.T, n int) *Graph {
	t.Helper()
	g := NewGraph(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(i, i+1, 1); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	return g
}

func TestAddEdgeValidation(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddEdge(0, 0, 1); err == nil {
		t.Error("self loop accepted")
	}
	if err := g.AddEdge(0, 5, 1); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if err := g.AddEdge(0, 1, 0); err == nil {
		t.Error("zero delay accepted")
	}
	if err := g.AddEdge(0, 1, -3); err == nil {
		t.Error("negative delay accepted")
	}
	if err := g.AddEdge(0, 1, math.NaN()); err == nil {
		t.Error("NaN delay accepted")
	}
	if err := g.AddEdge(0, 1, math.Inf(1)); err == nil {
		t.Error("Inf delay accepted")
	}
	if err := g.AddEdge(0, 1, 2.5); err != nil {
		t.Errorf("valid edge rejected: %v", err)
	}
}

func TestAddNodeAndKinds(t *testing.T) {
	g := NewGraph(0)
	a := g.AddNode(Transit)
	b := g.AddNode(Stub)
	c := g.AddNode(Router)
	if g.N() != 3 {
		t.Fatalf("N = %d, want 3", g.N())
	}
	if g.Kind(a) != Transit || g.Kind(b) != Stub || g.Kind(c) != Router {
		t.Error("kinds not preserved")
	}
	if got := g.NodesOfKind(Stub); len(got) != 1 || got[0] != b {
		t.Errorf("NodesOfKind(Stub) = %v", got)
	}
}

func TestNodeKindString(t *testing.T) {
	if Router.String() != "router" || Transit.String() != "transit" || Stub.String() != "stub" {
		t.Error("NodeKind strings wrong")
	}
	if NodeKind(42).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestHasEdgeAndDegree(t *testing.T) {
	g := lineGraph(t, 3)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("HasEdge should be symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Error("0-2 should not exist")
	}
	if g.Degree(1) != 2 || g.Degree(0) != 1 {
		t.Errorf("degrees wrong: %d %d", g.Degree(1), g.Degree(0))
	}
	if g.EdgeCount() != 2 {
		t.Errorf("EdgeCount = %d, want 2", g.EdgeCount())
	}
}

func TestConnected(t *testing.T) {
	if !NewGraph(0).Connected() {
		t.Error("empty graph is connected by convention")
	}
	if !NewGraph(1).Connected() {
		t.Error("single node is connected")
	}
	if NewGraph(2).Connected() {
		t.Error("two isolated nodes are not connected")
	}
	if !lineGraph(t, 5).Connected() {
		t.Error("line graph is connected")
	}
}

func TestDijkstraLine(t *testing.T) {
	g := lineGraph(t, 5)
	d := g.Dijkstra(0)
	for i := 0; i < 5; i++ {
		if d[i] != float64(i) {
			t.Errorf("d[%d] = %v, want %d", i, d[i], i)
		}
	}
}

func TestDijkstraPrefersCheaperPath(t *testing.T) {
	// 0-1-2 with unit edges plus a direct 0-2 edge costing 10.
	g := lineGraph(t, 3)
	if err := g.AddEdge(0, 2, 10); err != nil {
		t.Fatal(err)
	}
	if d := g.Dijkstra(0); d[2] != 2 {
		t.Errorf("d[2] = %v, want 2 (via node 1)", d[2])
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	d := g.Dijkstra(0)
	if !math.IsInf(d[2], 1) {
		t.Errorf("d[2] = %v, want +Inf", d[2])
	}
}

// randomConnectedGraph builds a random connected graph for property tests.
func randomConnectedGraph(rng *rand.Rand, n int) *Graph {
	g := NewGraph(n)
	for i := 1; i < n; i++ {
		_ = g.AddEdge(i, rng.Intn(i), 1+rng.Float64()*99)
	}
	extra := n / 2
	for e := 0; e < extra; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			_ = g.AddEdge(u, v, 1+rng.Float64()*99)
		}
	}
	return g
}

func TestQuickDijkstraTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(30)
		g := randomConnectedGraph(r, n)
		a, b, c := r.Intn(n), r.Intn(n), r.Intn(n)
		da := g.Dijkstra(a)
		db := g.Dijkstra(b)
		const eps = 1e-9
		return da[c] <= da[b]+db[c]+eps
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickDijkstraSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(30)
		g := randomConnectedGraph(r, n)
		a, b := r.Intn(n), r.Intn(n)
		const eps = 1e-9
		return math.Abs(g.Dijkstra(a)[b]-g.Dijkstra(b)[a]) < eps
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestComputeStats(t *testing.T) {
	g := NewGraph(0)
	a := g.AddNode(Transit)
	b := g.AddNode(Stub)
	c := g.AddNode(Stub)
	_ = g.AddEdge(a, b, 20)
	_ = g.AddEdge(b, c, 5)
	s := ComputeStats(g)
	if s.Nodes != 3 || s.Edges != 2 {
		t.Errorf("nodes/edges = %d/%d", s.Nodes, s.Edges)
	}
	if s.Transit != 1 || s.Stub != 2 || s.Plain != 0 {
		t.Errorf("kind counts = %d/%d/%d", s.Transit, s.Stub, s.Plain)
	}
	if s.MinDelay != 5 || s.MaxDelay != 20 || s.MeanDelay != 12.5 {
		t.Errorf("delays = %v/%v/%v", s.MinDelay, s.MaxDelay, s.MeanDelay)
	}
	if !s.Connected {
		t.Error("should be connected")
	}
	if s.MinDegree != 1 || s.MaxDegree != 2 {
		t.Errorf("degrees = %d/%d", s.MinDegree, s.MaxDegree)
	}
	empty := ComputeStats(NewGraph(0))
	if empty.Nodes != 0 || !empty.Connected {
		t.Error("empty stats wrong")
	}
}

func TestWriteDOT(t *testing.T) {
	g := NewGraph(0)
	a := g.AddNode(Transit)
	b := g.AddNode(Stub)
	c := g.AddNode(Router)
	_ = g.AddEdge(a, b, 20)
	_ = g.AddEdge(b, c, 5)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph \"underlay\"", "shape=box", "shape=circle", "shape=point", "n0 -- n1", "label=\"20\""} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
}
