package topology

import (
	"runtime"
	"sync"
)

// LatencyModel answers router-to-router latency queries for an underlay.
// Implementations must be safe for concurrent use.
type LatencyModel interface {
	// Routers returns the number of routers in the underlay.
	Routers() int
	// RouterLatency returns the one-way shortest-path delay in
	// milliseconds between routers a and b.
	RouterLatency(a, b int) float64
}

// DijkstraOracle is a LatencyModel for arbitrary graphs. It computes
// shortest-path rows lazily (one Dijkstra per distinct source) and caches
// them, so repeated queries are O(1). Safe for concurrent use.
type DijkstraOracle struct {
	g    *Graph
	mu   sync.RWMutex
	rows [][]float64
}

// NewDijkstraOracle returns an oracle over g. The graph must not be
// modified after the oracle is created.
func NewDijkstraOracle(g *Graph) *DijkstraOracle {
	return &DijkstraOracle{g: g, rows: make([][]float64, g.N())}
}

// Routers implements LatencyModel.
func (o *DijkstraOracle) Routers() int { return o.g.N() }

// Row returns the shortest-path delay row from src to every router. The
// returned slice is shared and must not be modified.
func (o *DijkstraOracle) Row(src int) []float64 {
	o.mu.RLock()
	row := o.rows[src]
	o.mu.RUnlock()
	if row != nil {
		return row
	}
	// Compute outside the lock; concurrent duplicate work is harmless and
	// rare, and keeps the fast path contention-free.
	row = o.g.Dijkstra(src)
	o.mu.Lock()
	if o.rows[src] == nil {
		o.rows[src] = row
	} else {
		row = o.rows[src]
	}
	o.mu.Unlock()
	return row
}

// RouterLatency implements LatencyModel.
func (o *DijkstraOracle) RouterLatency(a, b int) float64 {
	if a == b {
		return 0
	}
	return o.Row(a)[b]
}

// Prefetch computes and caches all rows in srcs using a pool of workers
// (one per CPU when workers <= 0). Bulk experiments call this once so that
// the measurement loop itself never pays Dijkstra costs.
func (o *DijkstraOracle) Prefetch(srcs []int, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(srcs) {
		workers = len(srcs)
	}
	if workers == 0 {
		return
	}
	work := make(chan int, len(srcs))
	for _, s := range srcs {
		work <- s
	}
	close(work)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range work {
				o.Row(s)
			}
		}()
	}
	wg.Wait()
}

// PrefetchAll caches every row (the full all-pairs matrix).
func (o *DijkstraOracle) PrefetchAll(workers int) {
	srcs := make([]int, o.g.N())
	for i := range srcs {
		srcs[i] = i
	}
	o.Prefetch(srcs, workers)
}

// CachedRows reports how many rows are currently cached (for tests and
// memory accounting).
func (o *DijkstraOracle) CachedRows() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	n := 0
	for _, r := range o.rows {
		if r != nil {
			n++
		}
	}
	return n
}
