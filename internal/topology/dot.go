package topology

import (
	"fmt"
	"io"
)

// WriteDOT renders the underlay as a Graphviz graph: transit routers as
// boxes, stub routers as small circles, link labels carrying delays.
// Intended for eyeballing generated topologies (`topogen -dot`).
func WriteDOT(w io.Writer, g *Graph, name string) error {
	if name == "" {
		name = "underlay"
	}
	if _, err := fmt.Fprintf(w, "graph %q {\n  layout=neato;\n  overlap=false;\n", name); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		shape := "point"
		switch g.Kind(v) {
		case Transit:
			shape = "box"
		case Stub:
			shape = "circle"
		}
		if _, err := fmt.Fprintf(w, "  n%d [shape=%s, label=\"%d\", fontsize=8];\n", v, shape, v); err != nil {
			return err
		}
	}
	for v := 0; v < g.N(); v++ {
		for _, e := range g.Neighbors(v) {
			if e.To > v {
				if _, err := fmt.Fprintf(w, "  n%d -- n%d [label=\"%.0f\", fontsize=6];\n", v, e.To, e.Delay); err != nil {
					return err
				}
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
