package topology

import (
	"fmt"
	"math/rand"
)

// LandmarkStrategy selects how landmark routers are placed.
type LandmarkStrategy int

const (
	// LandmarkSpread picks landmarks with a greedy k-center heuristic so
	// they are maximally spread across the underlay — the "well-known set
	// of machines spread across the Internet" of paper §2.3.
	LandmarkSpread LandmarkStrategy = iota
	// LandmarkRandom picks landmarks uniformly at random.
	LandmarkRandom
)

func (s LandmarkStrategy) String() string {
	switch s {
	case LandmarkSpread:
		return "spread"
	case LandmarkRandom:
		return "random"
	default:
		return fmt.Sprintf("LandmarkStrategy(%d)", int(s))
	}
}

// SelectLandmarks picks k landmark routers from the underlay of n.
//
// With LandmarkSpread, the first landmark is random and each subsequent one
// maximises its minimum latency to the landmarks chosen so far (greedy
// k-center). This mirrors deploying landmarks in distinct regions of the
// Internet, which is what makes distributed binning informative.
func SelectLandmarks(n *Network, k int, strategy LandmarkStrategy, rng *rand.Rand) ([]int, error) {
	r := n.Model.Routers()
	if k <= 0 {
		return nil, fmt.Errorf("topology: landmark count must be positive, got %d", k)
	}
	if k > r {
		return nil, fmt.Errorf("topology: %d landmarks requested but underlay has %d routers", k, r)
	}
	switch strategy {
	case LandmarkRandom:
		perm := rng.Perm(r)
		lms := make([]int, k)
		copy(lms, perm[:k])
		return lms, nil
	case LandmarkSpread:
		lms := make([]int, 0, k)
		first := rng.Intn(r)
		lms = append(lms, first)
		// minDist[v] = min latency from v to any chosen landmark.
		minDist := make([]float64, r)
		for v := 0; v < r; v++ {
			minDist[v] = n.Model.RouterLatency(first, v)
		}
		for len(lms) < k {
			best, bestDist := -1, -1.0
			for v := 0; v < r; v++ {
				if minDist[v] > bestDist {
					best, bestDist = v, minDist[v]
				}
			}
			lms = append(lms, best)
			for v := 0; v < r; v++ {
				if d := n.Model.RouterLatency(best, v); d < minDist[v] {
					minDist[v] = d
				}
			}
		}
		return lms, nil
	default:
		return nil, fmt.Errorf("topology: unknown landmark strategy %v", strategy)
	}
}
