// Package inet generates Inet-style router topologies (Jin, Chen, Jamin,
// U. Michigan CSE-TR-443-00): graphs whose degree distribution follows the
// power law observed in the AS-level Internet. The HIERAS evaluation uses
// Inet as a secondary model with a minimum of 3000 nodes; the generator
// accepts smaller sizes but mirrors Inet's structure: a densely connected
// high-degree core, a spanning tree attaching every router, and extra edges
// placed to satisfy sampled power-law degree targets.
package inet

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/topology"
)

// Config parametrises the generator.
type Config struct {
	// Routers is the number of routers (>= 10).
	Routers int
	// Exponent is the power-law exponent alpha in P(degree = d) ∝ d^-alpha
	// (default 2.2, Inet's empirical value).
	Exponent float64
	// PlaneKm, KmPerMs, MinDelay control link delays as in package brite
	// (defaults 20000 km, 200 km/ms, 0.5 ms).
	PlaneKm  float64
	KmPerMs  float64
	MinDelay float64
}

func (c *Config) setDefaults() {
	if c.Exponent <= 1 {
		c.Exponent = 2.2
	}
	if c.PlaneKm <= 0 {
		// Global scale: the plane diagonal is ~140 one-way ms, so the
		// binning thresholds {20,100} separate intra-city, continental and
		// intercontinental paths.
		c.PlaneKm = 20000
	}
	if c.KmPerMs <= 0 {
		c.KmPerMs = 200
	}
	if c.MinDelay <= 0 {
		c.MinDelay = 0.5
	}
}

// Generate builds an Inet-like underlay with cfg.Routers routers.
func Generate(cfg Config, rng *rand.Rand) (*topology.Underlay, error) {
	cfg.setDefaults()
	n := cfg.Routers
	if n < 10 {
		return nil, fmt.Errorf("inet: need at least 10 routers, got %d", n)
	}
	g := topology.NewGraph(n)
	x := make([]float64, n)
	y := make([]float64, n)
	// Clustered ("heavy-tailed") placement: routers concentrate around a
	// handful of population centers, as in BRITE's non-uniform placement
	// mode and the real router-level Internet. The resulting latency
	// contrast between intra-city and inter-city paths is the structure
	// distributed binning discovers.
	centers := 8
	if n < 64 {
		centers = 3
	}
	cx := make([]float64, centers)
	cy := make([]float64, centers)
	for i := range cx {
		cx[i] = rng.Float64() * cfg.PlaneKm
		cy[i] = rng.Float64() * cfg.PlaneKm
	}
	spread := cfg.PlaneKm * 0.03
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v >= cfg.PlaneKm {
			return cfg.PlaneKm - 1e-9
		}
		return v
	}
	for i := 0; i < n; i++ {
		c := rng.Intn(centers)
		x[i] = clamp(cx[c] + rng.NormFloat64()*spread)
		y[i] = clamp(cy[c] + rng.NormFloat64()*spread)
	}
	delay := func(u, v int) float64 {
		dx, dy := x[u]-x[v], y[u]-y[v]
		return cfg.MinDelay + math.Hypot(dx, dy)/cfg.KmPerMs
	}

	// 1. Sample power-law degree targets: d = floor(dmin * u^(-1/(a-1))),
	// capped to avoid a single router dominating.
	target := make([]int, n)
	maxDeg := n / 5
	if maxDeg < 4 {
		maxDeg = 4
	}
	for i := range target {
		u := rng.Float64()
		if u < 1e-9 {
			u = 1e-9
		}
		d := int(math.Floor(math.Pow(u, -1/(cfg.Exponent-1))))
		if d < 1 {
			d = 1
		}
		if d > maxDeg {
			d = maxDeg
		}
		target[i] = d
	}

	// 2. Order by target degree descending; the top three form the core
	// triangle (Inet connects its full-degree core first).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return target[order[a]] > target[order[b]] })
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			u, v := order[i], order[j]
			if err := g.AddEdge(u, v, delay(u, v)); err != nil {
				return nil, err
			}
		}
	}

	// 3. Spanning tree: each remaining router (in decreasing target order)
	// attaches to an already-placed router chosen with probability
	// proportional to its target degree, biased toward nearby candidates
	// (routers peer with close, well-connected providers).
	placed := order[:3]
	weightSum := float64(target[order[0]] + target[order[1]] + target[order[2]])
	pick := func() int {
		r := rng.Float64() * weightSum
		for _, v := range placed {
			r -= float64(target[v])
			if r <= 0 {
				return v
			}
		}
		return placed[len(placed)-1]
	}
	for _, v := range order[3:] {
		best, bestD := -1, math.Inf(1)
		for try := 0; try < 4; try++ {
			c := pick()
			if c == v {
				continue
			}
			if d := math.Hypot(x[v]-x[c], y[v]-y[c]); d < bestD {
				best, bestD = c, d
			}
		}
		if err := g.AddEdge(v, best, delay(v, best)); err != nil {
			return nil, err
		}
		placed = append(placed, v)
		weightSum += float64(target[v])
	}

	// 4. Fill remaining degree slots by matching free stubs, high degrees
	// first, skipping duplicates.
	var free []int // router repeated once per free slot
	for _, v := range order {
		for s := g.Degree(v); s < target[v]; s++ {
			free = append(free, v)
		}
	}
	rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
	for len(free) >= 2 {
		u := free[len(free)-1]
		free = free[:len(free)-1]
		// Find a nearby partner that is not u and not already adjacent.
		found := -1
		bestD := math.Inf(1)
		for attempt := 0; attempt < 8 && attempt < len(free); attempt++ {
			i := rng.Intn(len(free))
			v := free[i]
			if v != u && !g.HasEdge(u, v) {
				if d := math.Hypot(x[u]-x[v], y[u]-y[v]); d < bestD {
					found, bestD = i, d
				}
			}
		}
		if found == -1 {
			continue // drop this slot; degree sequence is a target, not a law
		}
		v := free[found]
		free[found] = free[len(free)-1]
		free = free[:len(free)-1]
		if err := g.AddEdge(u, v, delay(u, v)); err != nil {
			return nil, err
		}
	}
	// Local mesh pass: every router links to its geometrically nearest
	// neighbor, modelling the local peering real router-level maps show;
	// without it, nearby routers detour through distant hubs and latency
	// loses all geographic structure.
	for v := 0; v < n; v++ {
		best, bestD := -1, math.Inf(1)
		for u := 0; u < n; u++ {
			if u == v {
				continue
			}
			dx, dy := x[v]-x[u], y[v]-y[u]
			if d := math.Hypot(dx, dy); d < bestD {
				best, bestD = u, d
			}
		}
		if best >= 0 && !g.HasEdge(v, best) {
			if err := g.AddEdge(v, best, delay(v, best)); err != nil {
				return nil, err
			}
		}
	}
	if !g.Connected() {
		return nil, fmt.Errorf("inet: generated graph is not connected (bug)")
	}
	return &topology.Underlay{
		Graph:          g,
		Model:          topology.NewDijkstraOracle(g),
		HostCandidates: leafRouters(g, target),
	}, nil
}

// leafRouters returns routers with the smallest degrees (the bottom 60%) —
// hosts live at the edge, not on backbone hubs.
func leafRouters(g *topology.Graph, target []int) []int {
	idx := make([]int, g.N())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return g.Degree(idx[a]) < g.Degree(idx[b]) })
	return idx[:(g.N()*3+4)/5]
}
