package inet

import (
	"math/rand"
	"sort"
	"testing"
)

func TestGenerateBasic(t *testing.T) {
	u, err := Generate(Config{Routers: 300}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if u.Graph.N() != 300 {
		t.Errorf("N = %d", u.Graph.N())
	}
	if !u.Graph.Connected() {
		t.Fatal("inet graph must be connected")
	}
	if len(u.HostCandidates) == 0 {
		t.Error("no host candidates")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{Routers: 5}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("too-small router count accepted")
	}
}

func TestPowerLawishDegrees(t *testing.T) {
	u, err := Generate(Config{Routers: 1000}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	degs := make([]int, 1000)
	low := 0
	for v := 0; v < 1000; v++ {
		degs[v] = u.Graph.Degree(v)
		// The nearest-neighbor mesh pass adds ~1-2 links per router, so
		// "leaf" here means degree <= 4.
		if degs[v] <= 4 {
			low++
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	// Heavy tail: top router much better connected than median; most
	// routers have very low degree.
	if degs[0] < 5*degs[500] {
		t.Errorf("top degree %d vs median %d: not heavy-tailed", degs[0], degs[500])
	}
	if low < 400 {
		t.Errorf("only %d routers with degree <= 4; power law should give many leaves", low)
	}
}

func TestNoDegreeZero(t *testing.T) {
	u, err := Generate(Config{Routers: 200}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 200; v++ {
		if u.Graph.Degree(v) == 0 {
			t.Fatalf("router %d isolated", v)
		}
	}
}

func TestDeterministic(t *testing.T) {
	u1, _ := Generate(Config{Routers: 250}, rand.New(rand.NewSource(4)))
	u2, _ := Generate(Config{Routers: 250}, rand.New(rand.NewSource(4)))
	if u1.Graph.EdgeCount() != u2.Graph.EdgeCount() {
		t.Error("same seed produced different graphs")
	}
}

func TestHostCandidatesAtEdge(t *testing.T) {
	u, err := Generate(Config{Routers: 400}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	var candSum, allSum float64
	for _, v := range u.HostCandidates {
		candSum += float64(u.Graph.Degree(v))
	}
	for v := 0; v < 400; v++ {
		allSum += float64(u.Graph.Degree(v))
	}
	if candSum/float64(len(u.HostCandidates)) >= allSum/400 {
		t.Error("host candidates should have below-average degree")
	}
}
