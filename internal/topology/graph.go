// Package topology provides the network underlay used by the HIERAS and
// Chord simulations: weighted router graphs, shortest-path latency oracles,
// attachment of overlay hosts to routers, and landmark selection for the
// distributed binning scheme.
//
// Link weights are propagation delays in milliseconds. All randomness flows
// through caller-provided *rand.Rand values so simulations are reproducible.
package topology

import (
	"container/heap"
	"fmt"
	"math"
)

// NodeKind classifies an underlay router.
type NodeKind uint8

const (
	// Router is a generic router (Inet/BRITE models).
	Router NodeKind = iota
	// Transit is a transit-domain router in the GT-ITM TS model.
	Transit
	// Stub is a stub-domain router in the GT-ITM TS model.
	Stub
)

func (k NodeKind) String() string {
	switch k {
	case Router:
		return "router"
	case Transit:
		return "transit"
	case Stub:
		return "stub"
	default:
		return fmt.Sprintf("NodeKind(%d)", uint8(k))
	}
}

// Edge is a directed half of an undirected link.
type Edge struct {
	To    int
	Delay float64 // milliseconds
}

// Graph is an undirected weighted multigraph of routers. The zero value is
// an empty graph; add nodes with AddNode.
type Graph struct {
	adj  [][]Edge
	kind []NodeKind
}

// NewGraph returns a graph with n generic routers and no links.
func NewGraph(n int) *Graph {
	g := &Graph{
		adj:  make([][]Edge, n),
		kind: make([]NodeKind, n),
	}
	return g
}

// AddNode appends a node of the given kind and returns its index.
func (g *Graph) AddNode(kind NodeKind) int {
	g.adj = append(g.adj, nil)
	g.kind = append(g.kind, kind)
	return len(g.adj) - 1
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// Kind returns the kind of node u.
func (g *Graph) Kind(u int) NodeKind { return g.kind[u] }

// AddEdge adds an undirected link between u and v with the given delay.
// Self loops and non-positive delays are rejected.
func (g *Graph) AddEdge(u, v int, delay float64) error {
	if u == v {
		return fmt.Errorf("topology: self loop at node %d", u)
	}
	if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
		return fmt.Errorf("topology: edge (%d,%d) out of range (n=%d)", u, v, g.N())
	}
	if delay <= 0 || math.IsNaN(delay) || math.IsInf(delay, 0) {
		return fmt.Errorf("topology: invalid delay %v on edge (%d,%d)", delay, u, v)
	}
	g.adj[u] = append(g.adj[u], Edge{To: v, Delay: delay})
	g.adj[v] = append(g.adj[v], Edge{To: u, Delay: delay})
	return nil
}

// HasEdge reports whether at least one direct link u-v exists.
func (g *Graph) HasEdge(u, v int) bool {
	for _, e := range g.adj[u] {
		if e.To == v {
			return true
		}
	}
	return false
}

// Neighbors returns the adjacency list of u. The returned slice must not be
// modified.
func (g *Graph) Neighbors(u int) []Edge { return g.adj[u] }

// Degree returns the number of incident link ends at u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// EdgeCount returns the number of undirected links.
func (g *Graph) EdgeCount() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// NodesOfKind returns the indexes of all nodes with the given kind.
func (g *Graph) NodesOfKind(kind NodeKind) []int {
	var out []int
	for u, k := range g.kind {
		if k == kind {
			out = append(out, u)
		}
	}
	return out
}

// Connected reports whether the graph is connected (true for the empty
// graph).
func (g *Graph) Connected() bool {
	n := g.N()
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[u] {
			if !seen[e.To] {
				seen[e.To] = true
				count++
				stack = append(stack, e.To)
			}
		}
	}
	return count == n
}

// Dijkstra computes single-source shortest-path delays from src to every
// node. Unreachable nodes get +Inf.
func (g *Graph) Dijkstra(src int) []float64 {
	dist := make([]float64, g.N())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &distHeap{{node: src, dist: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(distItem)
		if item.dist > dist[item.node] {
			continue // stale entry
		}
		for _, e := range g.adj[item.node] {
			if nd := item.dist + e.Delay; nd < dist[e.To] {
				dist[e.To] = nd
				heap.Push(pq, distItem{node: e.To, dist: nd})
			}
		}
	}
	return dist
}

type distItem struct {
	node int
	dist float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Stats summarises a graph for CLI inspection.
type Stats struct {
	Nodes, Edges         int
	Transit, Stub, Plain int
	MinDegree, MaxDegree int
	MeanDegree           float64
	MinDelay, MaxDelay   float64
	MeanDelay            float64
	Connected            bool
}

// ComputeStats gathers summary statistics for g.
func ComputeStats(g *Graph) Stats {
	s := Stats{Nodes: g.N(), Edges: g.EdgeCount(), Connected: g.Connected()}
	if g.N() == 0 {
		return s
	}
	s.MinDegree = math.MaxInt32
	s.MinDelay = math.Inf(1)
	var degSum int
	var delaySum float64
	var delayCount int
	for u := 0; u < g.N(); u++ {
		switch g.kind[u] {
		case Transit:
			s.Transit++
		case Stub:
			s.Stub++
		default:
			s.Plain++
		}
		d := g.Degree(u)
		degSum += d
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		for _, e := range g.adj[u] {
			if e.To > u { // count each undirected link once
				delaySum += e.Delay
				delayCount++
				if e.Delay < s.MinDelay {
					s.MinDelay = e.Delay
				}
				if e.Delay > s.MaxDelay {
					s.MaxDelay = e.Delay
				}
			}
		}
	}
	s.MeanDegree = float64(degSum) / float64(g.N())
	if delayCount > 0 {
		s.MeanDelay = delaySum / float64(delayCount)
	} else {
		s.MinDelay = 0
	}
	return s
}
