package topology

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestOracleMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomConnectedGraph(rng, 40)
	o := NewDijkstraOracle(g)
	for src := 0; src < 40; src += 7 {
		want := g.Dijkstra(src)
		for v := 0; v < 40; v++ {
			if got := o.RouterLatency(src, v); got != want[v] {
				t.Fatalf("RouterLatency(%d,%d) = %v, want %v", src, v, got, want[v])
			}
		}
	}
	if o.Routers() != 40 {
		t.Errorf("Routers = %d", o.Routers())
	}
}

func TestOracleSelfLatencyZero(t *testing.T) {
	g := lineGraph(t, 4)
	o := NewDijkstraOracle(g)
	if o.RouterLatency(2, 2) != 0 {
		t.Error("self latency must be 0")
	}
	if o.CachedRows() != 0 {
		t.Error("self query should not compute a row")
	}
}

func TestOracleCachesRows(t *testing.T) {
	g := lineGraph(t, 10)
	o := NewDijkstraOracle(g)
	_ = o.RouterLatency(3, 7)
	if o.CachedRows() != 1 {
		t.Errorf("CachedRows = %d, want 1", o.CachedRows())
	}
	r1 := o.Row(3)
	r2 := o.Row(3)
	if &r1[0] != &r2[0] {
		t.Error("Row should return the cached slice")
	}
}

func TestOraclePrefetchAll(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomConnectedGraph(rng, 25)
	o := NewDijkstraOracle(g)
	o.PrefetchAll(4)
	if o.CachedRows() != 25 {
		t.Errorf("CachedRows = %d, want 25", o.CachedRows())
	}
	o2 := NewDijkstraOracle(g)
	o2.Prefetch(nil, 4) // empty source list is a no-op
	if o2.CachedRows() != 0 {
		t.Error("Prefetch(nil) should cache nothing")
	}
}

func TestOracleConcurrentAccess(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomConnectedGraph(rng, 60)
	o := NewDijkstraOracle(g)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				a, b := r.Intn(60), r.Intn(60)
				got := o.RouterLatency(a, b)
				if got < 0 {
					t.Errorf("negative latency %v", got)
				}
			}
		}(int64(w))
	}
	wg.Wait()
}

func TestAttachSpread(t *testing.T) {
	g := lineGraph(t, 8)
	o := NewDijkstraOracle(g)
	rng := rand.New(rand.NewSource(4))
	net, err := Attach(o, g, AttachOptions{Hosts: 8, Spread: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, r := range net.HostRouter {
		if seen[r] {
			t.Fatal("Spread attachment reused a router")
		}
		seen[r] = true
	}
	if net.Hosts() != 8 {
		t.Errorf("Hosts = %d", net.Hosts())
	}
}

func TestAttachWithReplacement(t *testing.T) {
	g := lineGraph(t, 3)
	o := NewDijkstraOracle(g)
	rng := rand.New(rand.NewSource(5))
	net, err := Attach(o, g, AttachOptions{Hosts: 50}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if net.Hosts() != 50 {
		t.Errorf("Hosts = %d", net.Hosts())
	}
	for _, r := range net.HostRouter {
		if r < 0 || r >= 3 {
			t.Fatalf("router %d out of range", r)
		}
	}
}

func TestAttachCandidateRestriction(t *testing.T) {
	g := lineGraph(t, 10)
	o := NewDijkstraOracle(g)
	rng := rand.New(rand.NewSource(6))
	net, err := Attach(o, g, AttachOptions{Hosts: 20, Routers: []int{2, 5}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range net.HostRouter {
		if r != 2 && r != 5 {
			t.Fatalf("host attached to non-candidate router %d", r)
		}
	}
}

func TestAttachErrors(t *testing.T) {
	g := lineGraph(t, 3)
	o := NewDijkstraOracle(g)
	rng := rand.New(rand.NewSource(7))
	if _, err := Attach(o, g, AttachOptions{Hosts: 0}, rng); err == nil {
		t.Error("zero hosts accepted")
	}
}

func TestNetworkLatency(t *testing.T) {
	g := lineGraph(t, 4) // unit edges
	o := NewDijkstraOracle(g)
	net := &Network{Model: o, Graph: g, HostRouter: []int{0, 3, 0}, HostDelay: 1}
	if got := net.Latency(0, 1); got != 2+3 {
		t.Errorf("Latency(0,1) = %v, want 5", got)
	}
	if got := net.Latency(0, 0); got != 0 {
		t.Errorf("self latency = %v", got)
	}
	// Two hosts behind the same router still pay both access links.
	if got := net.Latency(0, 2); got != 2 {
		t.Errorf("same-router latency = %v, want 2", got)
	}
	if got := net.LatencyToRouter(1, 0); got != 1+3 {
		t.Errorf("LatencyToRouter = %v, want 4", got)
	}
}

func TestNetworkLatencySymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomConnectedGraph(rng, 30)
	o := NewDijkstraOracle(g)
	net, err := Attach(o, g, AttachOptions{Hosts: 20}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		a, b := rng.Intn(20), rng.Intn(20)
		d1, d2 := net.Latency(a, b), net.Latency(b, a)
		// Dijkstra from each side may sum edge weights in a different
		// order, so allow float rounding slack.
		if math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("asymmetric latency %v vs %v", d1, d2)
		}
	}
}

func TestPingNoise(t *testing.T) {
	g := lineGraph(t, 4)
	o := NewDijkstraOracle(g)
	net := &Network{Model: o, HostRouter: []int{0}, HostDelay: 1, PingNoise: 0.2}
	rng := rand.New(rand.NewSource(9))
	truth := net.LatencyToRouter(0, 3)
	varied := false
	for i := 0; i < 100; i++ {
		p := net.Ping(0, 3, rng)
		if p < truth*0.8-1e-9 || p > truth*1.2+1e-9 {
			t.Fatalf("ping %v outside ±20%% of %v", p, truth)
		}
		if p != truth {
			varied = true
		}
	}
	if !varied {
		t.Error("noisy ping never varied")
	}
	net.PingNoise = 0
	if net.Ping(0, 3, rng) != truth {
		t.Error("noise-free ping should equal true latency")
	}
}

func TestPingVector(t *testing.T) {
	g := lineGraph(t, 5)
	o := NewDijkstraOracle(g)
	net := &Network{Model: o, HostRouter: []int{0}, HostDelay: 1}
	rng := rand.New(rand.NewSource(10))
	v := net.PingVector(0, []int{1, 4}, rng)
	if len(v) != 2 || v[0] != 2 || v[1] != 5 {
		t.Errorf("PingVector = %v, want [2 5]", v)
	}
}

func TestSelectLandmarksRandom(t *testing.T) {
	g := lineGraph(t, 20)
	o := NewDijkstraOracle(g)
	net := &Network{Model: o, HostRouter: []int{0}, HostDelay: 1}
	rng := rand.New(rand.NewSource(11))
	lms, err := SelectLandmarks(net, 5, LandmarkRandom, rng)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, lm := range lms {
		if seen[lm] {
			t.Fatal("duplicate landmark")
		}
		seen[lm] = true
	}
}

func TestSelectLandmarksSpread(t *testing.T) {
	// Line graph: 4 spread landmarks should include both endpoints.
	g := lineGraph(t, 40)
	o := NewDijkstraOracle(g)
	net := &Network{Model: o, HostRouter: []int{0}, HostDelay: 1}
	rng := rand.New(rand.NewSource(12))
	lms, err := SelectLandmarks(net, 4, LandmarkSpread, rng)
	if err != nil {
		t.Fatal(err)
	}
	has := func(v int) bool {
		for _, lm := range lms {
			if lm == v {
				return true
			}
		}
		return false
	}
	if !has(0) || !has(39) {
		t.Errorf("spread landmarks %v should hit both line ends", lms)
	}
}

func TestSelectLandmarksErrors(t *testing.T) {
	g := lineGraph(t, 3)
	o := NewDijkstraOracle(g)
	net := &Network{Model: o, HostRouter: []int{0}, HostDelay: 1}
	rng := rand.New(rand.NewSource(13))
	if _, err := SelectLandmarks(net, 0, LandmarkSpread, rng); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := SelectLandmarks(net, 4, LandmarkSpread, rng); err == nil {
		t.Error("k > routers accepted")
	}
	if _, err := SelectLandmarks(net, 1, LandmarkStrategy(99), rng); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestLandmarkStrategyString(t *testing.T) {
	if LandmarkSpread.String() != "spread" || LandmarkRandom.String() != "random" {
		t.Error("strategy strings wrong")
	}
	if LandmarkStrategy(9).String() == "" {
		t.Error("unknown strategy should render")
	}
}
