package topology

// Underlay bundles a generated router graph with its latency model and the
// set of routers overlay hosts should attach to (stub/edge routers). All
// topology generators in subpackages return one of these.
type Underlay struct {
	Graph *Graph
	Model LatencyModel
	// HostCandidates are the routers suitable for host attachment (stub
	// routers in the TS model, low-degree edge routers otherwise). Empty
	// means "any router".
	HostCandidates []int
}
