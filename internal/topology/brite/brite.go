// Package brite generates BRITE-style router topologies (Medina et al.,
// MASCOTS'01) in the Barabási–Albert mode used for comparison in the
// HIERAS evaluation: incremental growth with preferential connectivity on a
// Euclidean plane, with link delay proportional to distance.
package brite

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/topology"
)

// Config parametrises the generator.
type Config struct {
	// Routers is the number of routers (>= 3).
	Routers int
	// LinksPerNode is the BA parameter m: links added per new router
	// (default 2).
	LinksPerNode int
	// PlaneKm is the side of the square placement plane in kilometres
	// (default 20000, roughly global scale).
	PlaneKm float64
	// KmPerMs converts distance to propagation delay (default 200 km/ms,
	// approximately light speed in fibre).
	KmPerMs float64
	// MinDelay is a per-link floor in milliseconds modelling router
	// processing (default 0.5).
	MinDelay float64
}

func (c *Config) setDefaults() {
	if c.LinksPerNode <= 0 {
		c.LinksPerNode = 2
	}
	if c.PlaneKm <= 0 {
		// Global scale: the plane diagonal is ~140 one-way ms, so the
		// binning thresholds {20,100} separate intra-city, continental and
		// intercontinental paths.
		c.PlaneKm = 20000
	}
	if c.KmPerMs <= 0 {
		c.KmPerMs = 200
	}
	if c.MinDelay <= 0 {
		c.MinDelay = 0.5
	}
}

// Generate builds a BRITE/BA underlay with cfg.Routers routers.
func Generate(cfg Config, rng *rand.Rand) (*topology.Underlay, error) {
	cfg.setDefaults()
	n := cfg.Routers
	m := cfg.LinksPerNode
	if n < 3 {
		return nil, fmt.Errorf("brite: need at least 3 routers, got %d", n)
	}
	if m >= n {
		return nil, fmt.Errorf("brite: LinksPerNode %d must be < Routers %d", m, n)
	}
	g := topology.NewGraph(n)
	x := make([]float64, n)
	y := make([]float64, n)
	// Clustered ("heavy-tailed") placement: routers concentrate around a
	// handful of population centers, as in BRITE's non-uniform placement
	// mode and the real router-level Internet. The resulting latency
	// contrast between intra-city and inter-city paths is the structure
	// distributed binning discovers.
	centers := 8
	if n < 64 {
		centers = 3
	}
	cx := make([]float64, centers)
	cy := make([]float64, centers)
	for i := range cx {
		cx[i] = rng.Float64() * cfg.PlaneKm
		cy[i] = rng.Float64() * cfg.PlaneKm
	}
	spread := cfg.PlaneKm * 0.03
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v >= cfg.PlaneKm {
			return cfg.PlaneKm - 1e-9
		}
		return v
	}
	for i := 0; i < n; i++ {
		c := rng.Intn(centers)
		x[i] = clamp(cx[c] + rng.NormFloat64()*spread)
		y[i] = clamp(cy[c] + rng.NormFloat64()*spread)
	}
	delay := func(u, v int) float64 {
		dx, dy := x[u]-x[v], y[u]-y[v]
		return cfg.MinDelay + math.Hypot(dx, dy)/cfg.KmPerMs
	}

	// Seed core: ring over the first m0 = m+1 routers.
	m0 := m + 1
	for i := 0; i < m0; i++ {
		j := (i + 1) % m0
		if i != j && !g.HasEdge(i, j) {
			if err := g.AddEdge(i, j, delay(i, j)); err != nil {
				return nil, err
			}
		}
	}

	// Incremental growth with locality-biased preferential connectivity
	// (BRITE's combined degree/distance mode): candidate targets are drawn
	// with probability proportional to degree (repeated-node sampling),
	// and the geographically closest of several candidates wins. Degrees
	// stay heavy-tailed while shortest paths stay roughly geographic —
	// the structure distributed binning relies on.
	targets := make([]int, 0, 4*n*m)
	for i := 0; i < m0; i++ {
		for range g.Neighbors(i) {
			targets = append(targets, i)
		}
	}
	const localityCands = 4
	for v := m0; v < n; v++ {
		chosen := make(map[int]bool, m)
		for len(chosen) < m {
			best, bestD := -1, math.Inf(1)
			for try := 0; try < localityCands; try++ {
				var c int
				if len(targets) == 0 || rng.Float64() < 0.05 {
					c = rng.Intn(v) // small uniform component avoids star collapse
				} else {
					c = targets[rng.Intn(len(targets))]
				}
				if c == v || chosen[c] {
					continue
				}
				if d := math.Hypot(x[v]-x[c], y[v]-y[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if best >= 0 {
				chosen[best] = true
			}
		}
		picked := make([]int, 0, len(chosen))
		for c := range chosen {
			picked = append(picked, c)
		}
		sort.Ints(picked) // map order is random; keep builds deterministic
		for _, c := range picked {
			if err := g.AddEdge(v, c, delay(v, c)); err != nil {
				return nil, err
			}
			targets = append(targets, v, c)
		}
	}
	// Local mesh pass: link every router to its geometrically nearest
	// neighbor (if not already adjacent). Backbone hubs give the graph its
	// heavy tail; these short edges give it geographic coherence — nearby
	// routers reach each other without a detour through a distant hub,
	// which is what makes latency-based binning meaningful on this model.
	for v := 0; v < n; v++ {
		best, bestD := -1, math.Inf(1)
		for u := 0; u < n; u++ {
			if u == v {
				continue
			}
			if d := math.Hypot(x[v]-x[u], y[v]-y[u]); d < bestD {
				best, bestD = u, d
			}
		}
		if best >= 0 && !g.HasEdge(v, best) {
			if err := g.AddEdge(v, best, delay(v, best)); err != nil {
				return nil, err
			}
		}
	}
	if !g.Connected() {
		return nil, fmt.Errorf("brite: generated graph is not connected (bug)")
	}
	return &topology.Underlay{
		Graph:          g,
		Model:          topology.NewDijkstraOracle(g),
		HostCandidates: edgeRouters(g),
	}, nil
}

// edgeRouters returns the lower-degree half of the routers, sorted by
// degree; hosts should attach at the network edge rather than at hubs.
func edgeRouters(g *topology.Graph) []int {
	idx := make([]int, g.N())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return g.Degree(idx[a]) < g.Degree(idx[b]) })
	return idx[:(g.N()+1)/2]
}
