package brite

import (
	"math/rand"
	"testing"
)

func TestGenerateBasic(t *testing.T) {
	u, err := Generate(Config{Routers: 200}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if u.Graph.N() != 200 {
		t.Errorf("N = %d", u.Graph.N())
	}
	if !u.Graph.Connected() {
		t.Fatal("BA graph must be connected")
	}
	// With m=2 plus the nearest-neighbor mesh pass the graph has roughly
	// 2-3.5 links per node.
	if e := u.Graph.EdgeCount(); e < 200 || e > 750 {
		t.Errorf("edge count %d implausible for m=2 + local mesh", e)
	}
	if len(u.HostCandidates) == 0 {
		t.Error("no host candidates")
	}
	if u.Model.Routers() != 200 {
		t.Error("model router count mismatch")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{Routers: 2}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("too-small router count accepted")
	}
	if _, err := Generate(Config{Routers: 5, LinksPerNode: 9}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("m >= n accepted")
	}
}

func TestPreferentialAttachmentSkew(t *testing.T) {
	u, err := Generate(Config{Routers: 500}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	maxDeg, minDeg := 0, 1<<30
	for v := 0; v < 500; v++ {
		d := u.Graph.Degree(v)
		if d > maxDeg {
			maxDeg = d
		}
		if d < minDeg {
			minDeg = d
		}
	}
	if minDeg < 1 {
		t.Error("isolated router")
	}
	// BA graphs are heavy-tailed: the hub should dominate the minimum.
	if maxDeg < 8*minDeg {
		t.Errorf("degree skew too small: max %d, min %d", maxDeg, minDeg)
	}
}

func TestDelaysPositiveAndBounded(t *testing.T) {
	u, err := Generate(Config{Routers: 100, PlaneKm: 5000, KmPerMs: 200}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	maxPossible := 0.5 + 5000*1.4143/200 // diagonal plus floor
	for v := 0; v < 100; v++ {
		for _, e := range u.Graph.Neighbors(v) {
			if e.Delay <= 0 || e.Delay > maxPossible {
				t.Fatalf("edge delay %v out of range", e.Delay)
			}
		}
	}
}

func TestHostCandidatesAreLowDegree(t *testing.T) {
	u, err := Generate(Config{Routers: 300}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	var candSum, allSum float64
	for _, v := range u.HostCandidates {
		candSum += float64(u.Graph.Degree(v))
	}
	for v := 0; v < 300; v++ {
		allSum += float64(u.Graph.Degree(v))
	}
	candMean := candSum / float64(len(u.HostCandidates))
	allMean := allSum / 300
	if candMean >= allMean {
		t.Errorf("host candidates mean degree %.2f >= global mean %.2f", candMean, allMean)
	}
}

func TestDeterministic(t *testing.T) {
	u1, _ := Generate(Config{Routers: 150}, rand.New(rand.NewSource(5)))
	u2, _ := Generate(Config{Routers: 150}, rand.New(rand.NewSource(5)))
	if u1.Graph.EdgeCount() != u2.Graph.EdgeCount() {
		t.Error("same seed produced different graphs")
	}
}
