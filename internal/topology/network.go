package topology

import (
	"fmt"
	"math/rand"
)

// Network binds an overlay of hosts (the P2P peers) to an underlay latency
// model. Host i sits behind router HostRouter[i] over an access link with
// delay HostDelay. End-to-end latency between two hosts is the sum of both
// access links and the router-to-router shortest path.
//
// PingNoise models the inaccuracy of the ping measurements used by the
// distributed binning scheme (paper §2.2): Ping multiplies the true latency
// by a factor uniform in [1-PingNoise, 1+PingNoise]. Routing itself always
// uses true latencies.
type Network struct {
	Model      LatencyModel
	Graph      *Graph // underlying router graph; may be nil for synthetic models
	HostRouter []int
	HostDelay  float64
	PingNoise  float64
}

// AttachOptions configures Attach.
type AttachOptions struct {
	// Hosts is the number of overlay peers to create.
	Hosts int
	// Routers restricts attachment to these router indexes. When empty,
	// hosts attach to any router.
	Routers []int
	// HostDelay is the access-link delay in milliseconds (default 1).
	HostDelay float64
	// Spread, when true and Hosts <= len(candidate routers), assigns at
	// most one host per router (a permutation sample); otherwise hosts pick
	// routers uniformly at random with replacement.
	Spread bool
}

// Attach creates a Network with opts.Hosts hosts placed on the underlay.
func Attach(model LatencyModel, g *Graph, opts AttachOptions, rng *rand.Rand) (*Network, error) {
	if opts.Hosts <= 0 {
		return nil, fmt.Errorf("topology: Attach needs at least one host, got %d", opts.Hosts)
	}
	candidates := opts.Routers
	if len(candidates) == 0 {
		candidates = make([]int, model.Routers())
		for i := range candidates {
			candidates[i] = i
		}
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("topology: no candidate routers to attach hosts to")
	}
	hostDelay := opts.HostDelay
	if hostDelay == 0 {
		hostDelay = 1
	}
	hr := make([]int, opts.Hosts)
	if opts.Spread && opts.Hosts <= len(candidates) {
		perm := rng.Perm(len(candidates))
		for i := 0; i < opts.Hosts; i++ {
			hr[i] = candidates[perm[i]]
		}
	} else {
		for i := range hr {
			hr[i] = candidates[rng.Intn(len(candidates))]
		}
	}
	return &Network{
		Model:      model,
		Graph:      g,
		HostRouter: hr,
		HostDelay:  hostDelay,
	}, nil
}

// Hosts returns the number of overlay peers.
func (n *Network) Hosts() int { return len(n.HostRouter) }

// Latency returns the one-way end-to-end delay in milliseconds between
// hosts a and b. Latency(a, a) is zero.
func (n *Network) Latency(a, b int) float64 {
	if a == b {
		return 0
	}
	return 2*n.HostDelay + n.Model.RouterLatency(n.HostRouter[a], n.HostRouter[b])
}

// LatencyToRouter returns the one-way delay from host a to router r.
func (n *Network) LatencyToRouter(a, r int) float64 {
	return n.HostDelay + n.Model.RouterLatency(n.HostRouter[a], r)
}

// Ping returns a measured (noisy) latency from host a to router r. With
// PingNoise == 0 it equals LatencyToRouter.
func (n *Network) Ping(a, r int, rng *rand.Rand) float64 {
	lat := n.LatencyToRouter(a, r)
	if n.PingNoise <= 0 {
		return lat
	}
	f := 1 + n.PingNoise*(2*rng.Float64()-1)
	return lat * f
}

// PingVector measures host a's latency to each landmark router.
func (n *Network) PingVector(a int, landmarks []int, rng *rand.Rand) []float64 {
	out := make([]float64, len(landmarks))
	for i, lm := range landmarks {
		out[i] = n.Ping(a, lm, rng)
	}
	return out
}
