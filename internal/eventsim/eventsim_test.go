package eventsim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	var s Sim
	var got []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		if err := s.At(at, func() { got = append(got, at) }); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Run(0) {
		t.Fatal("queue should drain")
	}
	if !sort.Float64sAreSorted(got) {
		t.Errorf("events fired out of order: %v", got)
	}
	if s.Now() != 5 || s.Fired() != 5 {
		t.Errorf("Now=%v Fired=%d", s.Now(), s.Fired())
	}
}

func TestTiesFIFO(t *testing.T) {
	var s Sim
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		_ = s.At(7, func() { got = append(got, i) })
	}
	s.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order broken: %v", got)
		}
	}
}

func TestAfterAndCascade(t *testing.T) {
	var s Sim
	var trace []float64
	var tick func()
	tick = func() {
		trace = append(trace, s.Now())
		if len(trace) < 4 {
			_ = s.After(10, tick)
		}
	}
	_ = s.After(0, tick)
	s.Run(0)
	want := []float64{0, 10, 20, 30}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
}

func TestSchedulingErrors(t *testing.T) {
	var s Sim
	_ = s.At(10, func() {})
	s.Run(0)
	if err := s.At(5, func() {}); err == nil {
		t.Error("scheduling in the past accepted")
	}
	if err := s.After(-1, func() {}); err == nil {
		t.Error("negative delay accepted")
	}
	if err := s.At(math.NaN(), func() {}); err == nil {
		t.Error("NaN time accepted")
	}
	if err := s.At(20, nil); err == nil {
		t.Error("nil function accepted")
	}
}

func TestRunMaxEvents(t *testing.T) {
	var s Sim
	n := 0
	for i := 0; i < 10; i++ {
		_ = s.At(float64(i), func() { n++ })
	}
	if s.Run(3) {
		t.Error("Run should report queue not drained")
	}
	if n != 3 || s.Pending() != 7 {
		t.Errorf("n=%d pending=%d", n, s.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	var s Sim
	fired := map[float64]bool{}
	for _, at := range []float64{1, 2, 3, 10} {
		at := at
		_ = s.At(at, func() { fired[at] = true })
	}
	s.RunUntil(5)
	if !fired[1] || !fired[2] || !fired[3] || fired[10] {
		t.Errorf("fired = %v", fired)
	}
	if s.Now() != 5 {
		t.Errorf("Now = %v, want 5", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d", s.Pending())
	}
}

func TestStepEmpty(t *testing.T) {
	var s Sim
	if s.Step() {
		t.Error("Step on empty queue should return false")
	}
}

func TestQuickOrderInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var s Sim
		n := 1 + r.Intn(100)
		var fireTimes []float64
		for i := 0; i < n; i++ {
			at := r.Float64() * 100
			_ = s.At(at, func() { fireTimes = append(fireTimes, s.Now()) })
		}
		s.Run(0)
		return sort.Float64sAreSorted(fireTimes) && len(fireTimes) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}
