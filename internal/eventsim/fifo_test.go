package eventsim

import (
	"math/rand"
	"testing"
)

// TestTieFIFOProperty asserts the package's tie-break contract as a
// property over randomized schedules: whatever mix of up-front and
// fire-time scheduling produced the queue, events execute in
// lexicographic (timestamp, scheduling order) — FIFO at equal
// timestamps. Timestamps are drawn from a tiny set so collisions are the
// common case, and a third of fired events schedule children at the
// current timestamp, which must run after everything already queued for
// that instant.
func TestTieFIFOProperty(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		var s Sim

		type stamp struct {
			at  float64
			seq int // order the At/After call executed
		}
		var fired []stamp
		nextSeq := 0
		var schedule func(at float64)
		schedule = func(at float64) {
			seq := nextSeq
			nextSeq++
			err := s.At(at, func() {
				fired = append(fired, stamp{at, seq})
				// Fire-time scheduling: children at the same instant or
				// slightly later, keeping collisions likely.
				if rng.Intn(3) == 0 && nextSeq < 300 {
					if rng.Intn(2) == 0 {
						schedule(s.Now())
					} else {
						schedule(s.Now() + float64(rng.Intn(2)))
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		initial := 30 + rng.Intn(50)
		for i := 0; i < initial; i++ {
			schedule(float64(rng.Intn(4)))
		}
		if !s.Run(0) {
			t.Fatal("queue did not drain")
		}
		if len(fired) != nextSeq {
			t.Fatalf("trial %d: fired %d of %d events", trial, len(fired), nextSeq)
		}
		ties := 0
		for i := 1; i < len(fired); i++ {
			prev, cur := fired[i-1], fired[i]
			if cur.at < prev.at {
				t.Fatalf("trial %d: time went backwards at position %d: %v after %v", trial, i, cur, prev)
			}
			if cur.at == prev.at {
				ties++
				if cur.seq < prev.seq {
					t.Fatalf("trial %d: FIFO violated at t=%v: seq %d fired after seq %d",
						trial, cur.at, prev.seq, cur.seq)
				}
			}
		}
		if ties == 0 {
			t.Fatalf("trial %d: no timestamp collisions generated — property not exercised", trial)
		}
	}
}
