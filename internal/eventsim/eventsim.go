// Package eventsim is a small deterministic discrete-event simulation
// kernel: events fire in timestamp order, and no wall-clock time is
// involved anywhere. The churn experiments run protocol maintenance and
// lookups on top of it.
//
// # Determinism contract
//
// Events with equal timestamps fire in FIFO order: the order their
// At/After calls executed, regardless of how the heap rebalances. This is
// a contract, not an implementation accident — simulations schedule
// co-timed maintenance for many nodes and replay/debugging depends on two
// runs of the same schedule firing identically. The property test
// TestTieFIFOProperty asserts it over randomized schedules; changing the
// tie-break is a breaking change.
package eventsim

import (
	"container/heap"
	"fmt"
	"math"
)

// Sim is a discrete-event scheduler. The zero value is ready to use.
type Sim struct {
	now   float64
	pq    eventHeap
	seq   uint64
	fired uint64
}

type event struct {
	at  float64
	seq uint64 // FIFO tie-break
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Now returns the current simulation time.
func (s *Sim) Now() float64 { return s.now }

// Fired returns how many events have executed.
func (s *Sim) Fired() uint64 { return s.fired }

// Pending returns how many events are scheduled but not yet fired.
func (s *Sim) Pending() int { return s.pq.Len() }

// At schedules fn at absolute time t (>= Now). Events scheduled for the
// same timestamp fire in the order their At/After calls executed (the
// package's FIFO tie-break contract).
func (s *Sim) At(t float64, fn func()) error {
	if t < s.now || math.IsNaN(t) {
		return fmt.Errorf("eventsim: cannot schedule at %v (now %v)", t, s.now)
	}
	if fn == nil {
		return fmt.Errorf("eventsim: nil event function")
	}
	heap.Push(&s.pq, event{at: t, seq: s.seq, fn: fn})
	s.seq++
	return nil
}

// After schedules fn at Now + d (d >= 0).
func (s *Sim) After(d float64, fn func()) error {
	if d < 0 || math.IsNaN(d) {
		return fmt.Errorf("eventsim: negative delay %v", d)
	}
	return s.At(s.now+d, fn)
}

// Step fires the next event, reporting false when none remain.
func (s *Sim) Step() bool {
	if s.pq.Len() == 0 {
		return false
	}
	e := heap.Pop(&s.pq).(event)
	s.now = e.at
	s.fired++
	e.fn()
	return true
}

// Run fires events until the queue drains or maxEvents have executed
// (maxEvents <= 0 means unbounded). It reports whether the queue drained.
func (s *Sim) Run(maxEvents uint64) bool {
	for maxEvents == 0 || s.fired < maxEvents {
		if !s.Step() {
			return true
		}
	}
	return s.pq.Len() == 0
}

// RunUntil fires every event with a timestamp <= t, then advances the
// clock to t.
func (s *Sim) RunUntil(t float64) {
	for s.pq.Len() > 0 && s.pq[0].at <= t {
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}
