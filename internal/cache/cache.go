// Package cache adds DHash-style key-location caching on top of the
// HIERAS overlay. The paper argues that by reusing an existing DHT as the
// underlying algorithm, "the well-designed data structure and mechanisms
// for fault tolerance, load balance and caching scheme of the underlying
// algorithm are still kept in HIERAS" (§3.2); this package realises the
// caching part: peers remember key→owner bindings (optionally seeding the
// caches of every peer a lookup passed through) and answer repeated
// lookups with one direct hop.
package cache

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/metrics"
)

// Policy selects which peers learn a binding after a successful lookup.
type Policy int

const (
	// CacheAtOrigin stores the binding only at the requesting peer.
	CacheAtOrigin Policy = iota
	// CacheAlongPath stores it at the requester and every peer the
	// routing procedure traversed (DHash's approach).
	CacheAlongPath
)

func (p Policy) String() string {
	switch p {
	case CacheAtOrigin:
		return "origin"
	case CacheAlongPath:
		return "path"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// lru is a fixed-capacity LRU map from key id to owner index.
type lru struct {
	cap   int
	order *list.List // front = most recent; values are lruEntry
	items map[id.ID]*list.Element
}

type lruEntry struct {
	key   id.ID
	owner int
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, order: list.New(), items: make(map[id.ID]*list.Element, capacity)}
}

func (c *lru) get(key id.ID) (int, bool) {
	e, ok := c.items[key]
	if !ok {
		return 0, false
	}
	c.order.MoveToFront(e)
	return e.Value.(lruEntry).owner, true
}

func (c *lru) put(key id.ID, owner int) {
	if e, ok := c.items[key]; ok {
		e.Value = lruEntry{key, owner}
		c.order.MoveToFront(e)
		return
	}
	if c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(lruEntry).key)
	}
	c.items[key] = c.order.PushFront(lruEntry{key, owner})
}

func (c *lru) len() int { return c.order.Len() }

// Overlay wraps a core overlay with per-peer location caches. Safe for
// concurrent use.
type Overlay struct {
	o      *core.Overlay
	policy Policy

	mu     sync.Mutex
	caches []*lru
	hits   int64
	misses int64
}

// New wraps o with per-peer caches of the given capacity.
func New(o *core.Overlay, capacity int, policy Policy) (*Overlay, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("cache: capacity must be >= 1, got %d", capacity)
	}
	caches := make([]*lru, o.N())
	for i := range caches {
		caches[i] = newLRU(capacity)
	}
	return &Overlay{o: o, policy: policy, caches: caches}, nil
}

// Result describes one cached lookup: the full routing outcome (on a hit
// the synthesized single direct hop; on a miss the complete HIERAS route,
// lower-layer accounting included) plus the hit flag.
type Result struct {
	core.RouteResult
	Hit bool
}

// Lookup routes from `from` to the owner of key, consulting the
// requester's cache first. A hit costs a single direct hop; misses run the
// full HIERAS procedure and populate caches per the policy.
func (v *Overlay) Lookup(from int, key id.ID) Result {
	v.mu.Lock()
	owner, ok := v.caches[from].get(key)
	v.mu.Unlock()
	if ok {
		v.mu.Lock()
		v.hits++
		v.mu.Unlock()
		res := Result{RouteResult: core.RouteResult{Origin: from, Dest: owner, Key: key}, Hit: true}
		if owner != from {
			lat := v.o.Network().Latency(v.o.Node(from).Host, v.o.Node(owner).Host)
			res.Hops = []core.Hop{{Layer: 1, From: from, To: owner, Latency: lat}}
			res.Latency = lat
		}
		return res
	}
	route := v.o.Route(from, key)
	v.mu.Lock()
	v.misses++
	v.caches[from].put(key, route.Dest)
	if v.policy == CacheAlongPath {
		for _, h := range route.Hops {
			v.caches[h.To].put(key, route.Dest)
		}
	}
	v.mu.Unlock()
	return Result{RouteResult: route}
}

// Instrument exposes the overlay's hit/miss counts on reg as
// cache_hits_total / cache_misses_total, tagged with the given labels.
// The labels let several cached overlays (e.g. a capacity sweep) share
// one registry: pass a distinguishing label such as
// metrics.Label{Name: "capacity", Value: "64"} per overlay.
func (v *Overlay) Instrument(reg *metrics.Registry, labels ...metrics.Label) {
	reg.NewCounterFunc("cache_hits_total",
		"Location-cache lookups answered from the requester's cache.",
		func() float64 { h, _ := v.Stats(); return float64(h) }, labels...)
	reg.NewCounterFunc("cache_misses_total",
		"Location-cache lookups that ran the full routing procedure.",
		func() float64 { _, m := v.Stats(); return float64(m) }, labels...)
}

// Stats returns cumulative hit/miss counts.
func (v *Overlay) Stats() (hits, misses int64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.hits, v.misses
}

// HitRate returns hits / lookups (0 before any lookup).
func (v *Overlay) HitRate() float64 {
	h, m := v.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Entries reports how many bindings peer i currently caches.
func (v *Overlay) Entries(i int) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.caches[i].len()
}

// Invalidate removes a binding everywhere (e.g. after the owner departed).
func (v *Overlay) Invalidate(key id.ID) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, c := range v.caches {
		if e, ok := c.items[key]; ok {
			c.order.Remove(e)
			delete(c.items, key)
		}
	}
}
