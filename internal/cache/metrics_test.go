package cache

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
)

// TestInstrument checks that the registered callback counters track
// Stats exactly, including multiple labelled overlays on one registry —
// the shape CacheStudy uses for capacity sweeps.
func TestInstrument(t *testing.T) {
	o := testOverlay(t, 30, 5)
	reg := metrics.NewRegistry()

	small, err := New(o, 4, CacheAtOrigin)
	if err != nil {
		t.Fatal(err)
	}
	big, err := New(o, 64, CacheAtOrigin)
	if err != nil {
		t.Fatal(err)
	}
	small.Instrument(reg, metrics.Label{Name: "capacity", Value: "4"})
	big.Instrument(reg, metrics.Label{Name: "capacity", Value: "64"})

	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 40; i++ {
		key := core.KeyID(fmt.Sprintf("k%d", i%8))
		small.Lookup(rng.Intn(o.N()), key)
		big.Lookup(0, key)
	}

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	sh, sm := small.Stats()
	bh, bm := big.Stats()
	for _, want := range []string{
		fmt.Sprintf(`cache_hits_total{capacity="4"} %d`, sh),
		fmt.Sprintf(`cache_misses_total{capacity="4"} %d`, sm),
		fmt.Sprintf(`cache_hits_total{capacity="64"} %d`, bh),
		fmt.Sprintf(`cache_misses_total{capacity="64"} %d`, bm),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if bh == 0 {
		t.Error("repeated keys on one requester produced no hits")
	}
}
