package cache

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/topology"
	"repro/internal/topology/transitstub"
	"repro/internal/workload"
)

func testOverlay(t testing.TB, hosts int, seed int64) *core.Overlay {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m, err := transitstub.Generate(transitstub.DefaultConfig(hosts), rng)
	if err != nil {
		t.Fatal(err)
	}
	net, err := topology.Attach(m, m.G, topology.AttachOptions{
		Hosts: hosts, Routers: m.StubRouters, Spread: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	o, err := core.Build(net, core.Config{Depth: 2, Landmarks: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestLRU(t *testing.T) {
	c := newLRU(2)
	k1, k2, k3 := id.HashString("1"), id.HashString("2"), id.HashString("3")
	c.put(k1, 10)
	c.put(k2, 20)
	if v, ok := c.get(k1); !ok || v != 10 {
		t.Fatal("k1 missing")
	}
	c.put(k3, 30) // evicts k2 (k1 was touched)
	if _, ok := c.get(k2); ok {
		t.Error("k2 should have been evicted")
	}
	if _, ok := c.get(k1); !ok {
		t.Error("k1 should survive")
	}
	c.put(k1, 99) // update in place
	if v, _ := c.get(k1); v != 99 {
		t.Error("update lost")
	}
	if c.len() != 2 {
		t.Errorf("len = %d", c.len())
	}
}

func TestNewErrors(t *testing.T) {
	o := testOverlay(t, 30, 1)
	if _, err := New(o, 0, CacheAtOrigin); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestLookupCorrectWithAndWithoutCache(t *testing.T) {
	o := testOverlay(t, 100, 2)
	v, err := New(o, 64, CacheAtOrigin)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		from := rng.Intn(o.N())
		key := id.Rand(rng)
		first := v.Lookup(from, key)
		want := o.Global().SuccessorIndex(key)
		if first.Dest != want || first.Hit {
			t.Fatalf("first lookup: dest %d (want %d) hit=%v", first.Dest, want, first.Hit)
		}
		second := v.Lookup(from, key)
		if second.Dest != want || !second.Hit {
			t.Fatalf("second lookup should hit cache: dest %d hit=%v", second.Dest, second.Hit)
		}
		if second.NumHops() > 1 {
			t.Fatalf("cache hit took %d hops", second.NumHops())
		}
	}
	hits, misses := v.Stats()
	if hits != 200 || misses != 200 {
		t.Errorf("hits/misses = %d/%d", hits, misses)
	}
	if v.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", v.HitRate())
	}
}

func TestMissCarriesLowerLayerAccounting(t *testing.T) {
	o := testOverlay(t, 120, 3)
	v, _ := New(o, 16, CacheAtOrigin)
	rng := rand.New(rand.NewSource(13))
	lowerHops, lowerLat := 0, 0.0
	for trial := 0; trial < 100; trial++ {
		res := v.Lookup(rng.Intn(o.N()), id.Rand(rng))
		if res.Hit {
			continue
		}
		lowerHops += res.LowerHops
		lowerLat += res.LowerLatency
	}
	if lowerHops == 0 || lowerLat == 0 {
		t.Errorf("misses on a depth-2 overlay must surface lower-layer hops: %d hops, %.1f ms",
			lowerHops, lowerLat)
	}
}

func TestSelfOwnedHitZeroCost(t *testing.T) {
	o := testOverlay(t, 50, 4)
	v, _ := New(o, 8, CacheAtOrigin)
	// A node looking up its own ID owns the key.
	key := o.Node(7).ID
	_ = v.Lookup(7, key)
	res := v.Lookup(7, key)
	if !res.Hit || res.NumHops() != 0 || res.Latency != 0 {
		t.Errorf("self-owned hit should be free: %+v", res)
	}
}

func TestCacheAlongPathSeedsIntermediates(t *testing.T) {
	o := testOverlay(t, 150, 5)
	v, _ := New(o, 64, CacheAlongPath)
	rng := rand.New(rand.NewSource(6))
	// Find a lookup with at least 2 hops.
	var from int
	var key id.ID
	var mid int
	for {
		from = rng.Intn(o.N())
		key = id.Rand(rng)
		route := o.Route(from, key)
		if route.NumHops() >= 2 {
			mid = route.Hops[0].To
			break
		}
	}
	_ = v.Lookup(from, key)
	res := v.Lookup(mid, key)
	if !res.Hit {
		t.Error("intermediate peer should have been seeded by path caching")
	}
}

func TestZipfWorkloadHitRate(t *testing.T) {
	o := testOverlay(t, 120, 7)
	v, _ := New(o, 128, CacheAtOrigin)
	gen, err := workload.NewZipf(8, o.N(), 500, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	var missLat, hitLat float64
	var hitN, missN int
	for i := 0; i < 6000; i++ {
		req := gen.Next()
		res := v.Lookup(req.Origin, req.Key)
		if res.Hit {
			hitLat += res.Latency
			hitN++
		} else {
			missLat += res.Latency
			missN++
		}
	}
	if v.HitRate() < 0.2 {
		t.Errorf("zipf hit rate %.2f too low", v.HitRate())
	}
	if hitN > 0 && missN > 0 && hitLat/float64(hitN) >= missLat/float64(missN) {
		t.Errorf("hits (%.1f ms) should be cheaper than misses (%.1f ms)",
			hitLat/float64(hitN), missLat/float64(missN))
	}
}

func TestInvalidate(t *testing.T) {
	o := testOverlay(t, 60, 9)
	v, _ := New(o, 16, CacheAlongPath)
	key := id.HashString("inval")
	_ = v.Lookup(3, key)
	if res := v.Lookup(3, key); !res.Hit {
		t.Fatal("expected hit before invalidation")
	}
	v.Invalidate(key)
	if res := v.Lookup(3, key); res.Hit {
		t.Error("hit after invalidation")
	}
}

func TestEntriesBounded(t *testing.T) {
	o := testOverlay(t, 40, 10)
	v, _ := New(o, 4, CacheAtOrigin)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		_ = v.Lookup(5, id.Rand(rng))
	}
	if v.Entries(5) > 4 {
		t.Errorf("cache grew past capacity: %d", v.Entries(5))
	}
}

func TestPolicyString(t *testing.T) {
	if CacheAtOrigin.String() != "origin" || CacheAlongPath.String() != "path" {
		t.Error("policy strings wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy should render")
	}
}

func TestConcurrentLookups(t *testing.T) {
	o := testOverlay(t, 80, 12)
	v, _ := New(o, 64, CacheAlongPath)
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 300; i++ {
				key := id.HashString(fmt.Sprintf("shared-%d", i%50))
				res := v.Lookup(rng.Intn(o.N()), key)
				if res.Dest != o.Global().SuccessorIndex(key) {
					done <- fmt.Errorf("wrong dest under concurrency")
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
