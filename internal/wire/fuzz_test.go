package wire

import (
	"bytes"
	"context"
	"reflect"
	"testing"
	"time"
)

// FuzzDecodeMessage feeds arbitrary bytes to every codec's envelope
// decoders. The contract under fuzz: decoding never panics, and any
// input that decodes successfully re-encodes to a canonical byte form
// that decodes to the same value (no lossy or ambiguous envelopes, up
// to the nil≡empty equivalence both codecs share).
func FuzzDecodeMessage(f *testing.F) {
	seedReq := &Request{
		Type: TFindClosest, Layer: 2, Key: [20]byte{1, 2, 3}, Name: "ring:az",
		Peer: Peer{Addr: "n1:9000", ID: [20]byte{9}}, Hierarchical: true,
	}
	seedResp := &Response{
		OK: true, Next: Peer{Addr: "n2:9000"}, Done: true,
		RingNames: []string{"a", "ab"}, Succ: []Peer{{Addr: "n3:9000"}},
	}
	seedStore := &Request{
		Type: TReplicate, Name: "doc-1",
		Items: []StoreItem{{Key: "doc-1", Value: []byte("v1"), Version: 7, Writer: "n1:9000#3"}},
	}
	seedStoreResp := &Response{
		OK: true, Found: true, Value: []byte("v1"), Version: 7, Writer: "n1:9000#3", Applied: 1,
	}
	seedDigest := &Request{
		Type: TSyncPull, Key: [20]byte{4}, KeyHi: [20]byte{8}, Buckets: []uint32{0, 7, 31},
	}
	seedDigestResp := &Response{
		OK: true, Digests: []uint64{0xdeadbeef, 0, 42},
		Items: []StoreItem{{Key: "doc-2", Version: 9, Writer: "n2:9000#1", Expire: 100, Tombstone: true}},
	}
	seedGossip := &Request{
		Type: TRouteGossip,
		Events: []RouteEvent{
			{Layer: 1, Ring: "global", Peer: Peer{Addr: "n4:9000", ID: [20]byte{5}}, Kind: RouteJoin, Stamp: 12},
			{Layer: 2, Ring: "az", Peer: Peer{Addr: "n5:9000"}, Kind: RouteEvict, Stamp: 40},
		},
	}
	seedGossipResp := &Response{
		OK: true, Applied: 1,
		Events: []RouteEvent{{Layer: 1, Ring: "global", Peer: Peer{Addr: "n6:9000"}, Kind: RouteLeave, Stamp: 7}},
	}
	for _, c := range Codecs() {
		if b, err := c.AppendRequest(nil, seedReq); err == nil {
			f.Add(b)
		}
		if b, err := c.AppendResponse(nil, seedResp); err == nil {
			f.Add(b)
		}
		if b, err := c.AppendRequest(nil, seedStore); err == nil {
			f.Add(b)
		}
		if b, err := c.AppendResponse(nil, seedStoreResp); err == nil {
			f.Add(b)
		}
		if b, err := c.AppendRequest(nil, seedDigest); err == nil {
			f.Add(b)
		}
		if b, err := c.AppendResponse(nil, seedDigestResp); err == nil {
			f.Add(b)
		}
		if b, err := c.AppendRequest(nil, seedGossip); err == nil {
			f.Add(b)
		}
		if b, err := c.AppendResponse(nil, seedGossipResp); err == nil {
			f.Add(b)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, c := range Codecs() {
			if req, err := c.DecodeRequest(data); err == nil {
				canon, encErr := c.AppendRequest(nil, &req)
				if encErr != nil {
					t.Fatalf("%s: re-encode decoded request: %v", c.Name(), encErr)
				}
				req2, decErr := c.DecodeRequest(canon)
				if decErr != nil {
					t.Fatalf("%s: decode canonical request bytes: %v", c.Name(), decErr)
				}
				if !reflect.DeepEqual(normalizeReq(req), normalizeReq(req2)) {
					t.Fatalf("%s: request not stable through codec:\n  first  %#v\n  second %#v",
						c.Name(), req, req2)
				}
			}
			if resp, err := c.DecodeResponse(data); err == nil {
				canon, encErr := c.AppendResponse(nil, &resp)
				if encErr != nil {
					t.Fatalf("%s: re-encode decoded response: %v", c.Name(), encErr)
				}
				resp2, decErr := c.DecodeResponse(canon)
				if decErr != nil {
					t.Fatalf("%s: decode canonical response bytes: %v", c.Name(), decErr)
				}
				if !reflect.DeepEqual(normalizeResp(resp), normalizeResp(resp2)) {
					t.Fatalf("%s: response not stable through codec:\n  first  %#v\n  second %#v",
						c.Name(), resp, resp2)
				}
			}
		}
	})
}

// FuzzRoundTrip builds request and response envelopes from fuzzed fields
// and asserts encode→decode is the identity for every codec — through
// the raw codec and through a full framed MemNet exchange.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(TPing), 1, []byte("key material"), "ring:a", "n0:9000", []byte("value"), true)
	f.Add(uint8(TPut), 3, []byte{}, "", "", []byte(nil), false)
	f.Add(uint8(TEvict), -7, bytes.Repeat([]byte{0xaa}, 40), "deep/ring", "host:1", []byte{0}, true)

	f.Fuzz(func(t *testing.T, typ uint8, layer int, keyMat []byte, name, addr string, value []byte, hier bool) {
		var key, pid [20]byte
		copy(key[:], keyMat)
		copy(pid[:], bytes.Repeat(keyMat, 2))
		req := Request{
			Type:  MsgType(typ),
			Layer: layer,
			Key:   key,
			Name:  name,
			Peer:  Peer{Addr: addr, ID: pid},
			Peers: []Peer{{Addr: addr + "'", ID: key}},
			Table: RingTable{Layer: layer, Name: name, Smallest: Peer{Addr: addr, ID: key}},
			Value: value,
			Items: []StoreItem{{Key: name, Value: value, Version: uint64(typ), Writer: addr + "#1",
				Expire: uint64(typ) * 3, Tombstone: hier}},
			KeyHi:   pid,
			Buckets: []uint32{uint32(typ), uint32(typ) + 1},
			Events: []RouteEvent{{Layer: layer, Ring: name, Peer: Peer{Addr: addr, ID: pid},
				Kind: typ % 3, Stamp: uint64(typ) + 5}},

			Hierarchical: hier,
		}
		resp := Response{
			OK: true, Err: name,
			Next: Peer{Addr: addr, ID: key}, Done: hier, Owner: !hier,
			Self: Peer{Addr: addr, ID: pid}, RingNames: []string{name, name + "x"},
			Landmarks: []string{addr}, Coord: [2]float64{float64(layer), 0.5},
			Succ: []Peer{{Addr: addr}}, Pred: Peer{ID: key},
			Table: req.Table, Found: hier, Value: value,
			Version: uint64(layer), Writer: addr + "#2", Applied: layer,
			Expire: uint64(typ), Tombstone: !hier,
			Digests: []uint64{uint64(typ), ^uint64(typ)},
			Items:   req.Items,
			Events:  req.Events,
		}

		for _, c := range Codecs() {
			enc, err := c.AppendRequest(nil, &req)
			if err != nil {
				t.Fatalf("%s: encode request: %v", c.Name(), err)
			}
			got, err := c.DecodeRequest(enc)
			if err != nil {
				t.Fatalf("%s: decode request: %v", c.Name(), err)
			}
			if !reflect.DeepEqual(normalizeReq(req), normalizeReq(got)) {
				t.Fatalf("%s: request round trip mismatch:\n  sent %#v\n  got  %#v", c.Name(), req, got)
			}

			encResp, err := c.AppendResponse(nil, &resp)
			if err != nil {
				t.Fatalf("%s: encode response: %v", c.Name(), err)
			}
			gotResp, err := c.DecodeResponse(encResp)
			if err != nil {
				t.Fatalf("%s: decode response: %v", c.Name(), err)
			}
			if !reflect.DeepEqual(normalizeResp(resp), normalizeResp(gotResp)) {
				t.Fatalf("%s: response round trip mismatch:\n  sent %#v\n  got  %#v", c.Name(), resp, gotResp)
			}
		}

		// Same envelopes through a full framed MemNet exchange, once per
		// codec: what a peer receives is exactly what was sent.
		mn := NewMemNet()
		ln, err := mn.Listen("peer")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		served := make(chan Request, len(Codecs()))
		go func() {
			for {
				conn, acceptErr := ln.Accept()
				if acceptErr != nil {
					return
				}
				go func() {
					_ = ServeConn(conn, func(r Request) Response {
						served <- r
						return resp
					}, ServeOptions{})
				}()
			}
		}()
		for _, c := range Codecs() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			viaWire, callErr := CallVia(ctx, mn.Dial, c, "peer", req)
			cancel()
			if callErr != nil {
				t.Fatalf("%s: exchange: %v", c.Name(), callErr)
			}
			if !reflect.DeepEqual(normalizeResp(resp), normalizeResp(viaWire)) {
				t.Fatalf("%s: response altered by wire exchange:\n  sent %#v\n  got  %#v",
					c.Name(), resp, viaWire)
			}
			if !reflect.DeepEqual(normalizeReq(req), normalizeReq(<-served)) {
				t.Fatalf("%s: request altered by wire exchange", c.Name())
			}
		}
	})
}

// normalizeReq maps a request to its canonical comparable form: gob does
// not distinguish nil from empty slices/strings inside composite values,
// so the codec identity holds up to that equivalence.
func normalizeReq(r Request) Request {
	if len(r.Value) == 0 {
		r.Value = nil
	}
	if len(r.Peers) == 0 {
		r.Peers = nil
	}
	if len(r.Items) == 0 {
		r.Items = nil
	}
	if len(r.Buckets) == 0 {
		r.Buckets = nil
	}
	if len(r.Events) == 0 {
		r.Events = nil
	}
	for i := range r.Items {
		if len(r.Items[i].Value) == 0 {
			r.Items[i].Value = nil
		}
	}
	return r
}

func normalizeResp(r Response) Response {
	if len(r.Value) == 0 {
		r.Value = nil
	}
	if len(r.Succ) == 0 {
		r.Succ = nil
	}
	if len(r.RingNames) == 0 {
		r.RingNames = nil
	}
	if len(r.Landmarks) == 0 {
		r.Landmarks = nil
	}
	if len(r.Digests) == 0 {
		r.Digests = nil
	}
	if len(r.Items) == 0 {
		r.Items = nil
	}
	if len(r.Events) == 0 {
		r.Events = nil
	}
	for i := range r.Items {
		if len(r.Items[i].Value) == 0 {
			r.Items[i].Value = nil
		}
	}
	return r
}
