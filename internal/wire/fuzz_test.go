package wire

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

// FuzzDecodeMessage feeds arbitrary bytes to both envelope decoders. The
// contract under fuzz: decoding never panics, and any input that decodes
// successfully re-encodes to a canonical byte form that decodes to the
// same value (no lossy or ambiguous envelopes).
func FuzzDecodeMessage(f *testing.F) {
	var seedReq bytes.Buffer
	EncodeRequest(&seedReq, &Request{
		Type: TFindClosest, Layer: 2, Key: [20]byte{1, 2, 3}, Name: "ring:az",
		Peer: Peer{Addr: "n1:9000", ID: [20]byte{9}}, Hierarchical: true,
	})
	f.Add(seedReq.Bytes())
	var seedResp bytes.Buffer
	EncodeResponse(&seedResp, &Response{
		OK: true, Next: Peer{Addr: "n2:9000"}, Done: true,
		RingNames: []string{"a", "ab"}, Succ: []Peer{{Addr: "n3:9000"}},
	})
	f.Add(seedResp.Bytes())
	var seedStore bytes.Buffer
	EncodeRequest(&seedStore, &Request{
		Type: TReplicate, Name: "doc-1",
		Items: []StoreItem{{Key: "doc-1", Value: []byte("v1"), Version: 7, Writer: "n1:9000#3"}},
	})
	f.Add(seedStore.Bytes())
	var seedStoreResp bytes.Buffer
	EncodeResponse(&seedStoreResp, &Response{
		OK: true, Found: true, Value: []byte("v1"), Version: 7, Writer: "n1:9000#3", Applied: 1,
	})
	f.Add(seedStoreResp.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := DecodeRequest(bytes.NewReader(data)); err == nil {
			var buf bytes.Buffer
			if err := EncodeRequest(&buf, &req); err != nil {
				t.Fatalf("re-encode decoded request: %v", err)
			}
			req2, err := DecodeRequest(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("decode canonical request bytes: %v", err)
			}
			if !reflect.DeepEqual(req, req2) {
				t.Fatalf("request not stable through codec:\n  first  %#v\n  second %#v", req, req2)
			}
		}
		if resp, err := DecodeResponse(bytes.NewReader(data)); err == nil {
			var buf bytes.Buffer
			if err := EncodeResponse(&buf, &resp); err != nil {
				t.Fatalf("re-encode decoded response: %v", err)
			}
			resp2, err := DecodeResponse(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("decode canonical response bytes: %v", err)
			}
			if !reflect.DeepEqual(resp, resp2) {
				t.Fatalf("response not stable through codec:\n  first  %#v\n  second %#v", resp, resp2)
			}
		}
	})
}

// FuzzRoundTrip builds request and response envelopes from fuzzed fields
// and asserts encode→decode is the identity, end to end through a pipe
// exchange as well as through the raw codec.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(TPing), 1, []byte("key material"), "ring:a", "n0:9000", []byte("value"), true)
	f.Add(uint8(TPut), 3, []byte{}, "", "", []byte(nil), false)
	f.Add(uint8(TEvict), -7, bytes.Repeat([]byte{0xaa}, 40), "deep/ring", "host:1", []byte{0}, true)

	f.Fuzz(func(t *testing.T, typ uint8, layer int, keyMat []byte, name, addr string, value []byte, hier bool) {
		var key, pid [20]byte
		copy(key[:], keyMat)
		copy(pid[:], bytes.Repeat(keyMat, 2))
		req := Request{
			Type:  MsgType(typ),
			Layer: layer,
			Key:   key,
			Name:  name,
			Peer:  Peer{Addr: addr, ID: pid},
			Peers: []Peer{{Addr: addr + "'", ID: key}},
			Table: RingTable{Layer: layer, Name: name, Smallest: Peer{Addr: addr, ID: key}},
			Value: value,
			Items: []StoreItem{{Key: name, Value: value, Version: uint64(typ), Writer: addr + "#1"}},

			Hierarchical: hier,
		}
		var buf bytes.Buffer
		if err := EncodeRequest(&buf, &req); err != nil {
			t.Fatalf("encode request: %v", err)
		}
		got, err := DecodeRequest(&buf)
		if err != nil {
			t.Fatalf("decode request: %v", err)
		}
		if !reflect.DeepEqual(normalizeReq(req), normalizeReq(got)) {
			t.Fatalf("request round trip mismatch:\n  sent %#v\n  got  %#v", req, got)
		}

		resp := Response{
			OK: true, Err: name,
			Next: Peer{Addr: addr, ID: key}, Done: hier, Owner: !hier,
			Self: Peer{Addr: addr, ID: pid}, RingNames: []string{name, name + "x"},
			Landmarks: []string{addr}, Coord: [2]float64{float64(layer), 0.5},
			Succ: []Peer{{Addr: addr}}, Pred: Peer{ID: key},
			Table: req.Table, Found: hier, Value: value,
			Version: uint64(layer), Writer: addr + "#2", Applied: layer,
		}
		buf.Reset()
		if encErr := EncodeResponse(&buf, &resp); encErr != nil {
			t.Fatalf("encode response: %v", encErr)
		}
		gotResp, err := DecodeResponse(&buf)
		if err != nil {
			t.Fatalf("decode response: %v", err)
		}
		if !reflect.DeepEqual(normalizeResp(resp), normalizeResp(gotResp)) {
			t.Fatalf("response round trip mismatch:\n  sent %#v\n  got  %#v", resp, gotResp)
		}

		// Same envelope through a full MemNet exchange: what a peer
		// receives is exactly what was sent.
		mn := NewMemNet()
		ln, err := mn.Listen("peer")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		served := make(chan Request, 1)
		go func() {
			conn, acceptErr := ln.Accept()
			if acceptErr != nil {
				return
			}
			defer conn.Close()
			r, readErr := ReadRequest(conn, time.Second)
			if readErr != nil {
				return
			}
			served <- r
			WriteResponse(conn, resp, time.Second)
		}()
		viaWire, err := CallVia(mn.Dial, "peer", req, 5*time.Second)
		if err != nil {
			t.Fatalf("exchange: %v", err)
		}
		if !reflect.DeepEqual(normalizeResp(resp), normalizeResp(viaWire)) {
			t.Fatalf("response altered by wire exchange:\n  sent %#v\n  got  %#v", resp, viaWire)
		}
		if !reflect.DeepEqual(normalizeReq(req), normalizeReq(<-served)) {
			t.Fatal("request altered by wire exchange")
		}
	})
}

// normalizeReq maps a request to its canonical comparable form: gob does
// not distinguish nil from empty slices/strings inside composite values,
// so the codec identity holds up to that equivalence.
func normalizeReq(r Request) Request {
	if len(r.Value) == 0 {
		r.Value = nil
	}
	if len(r.Peers) == 0 {
		r.Peers = nil
	}
	if len(r.Items) == 0 {
		r.Items = nil
	}
	for i := range r.Items {
		if len(r.Items[i].Value) == 0 {
			r.Items[i].Value = nil
		}
	}
	return r
}

func normalizeResp(r Response) Response {
	if len(r.Value) == 0 {
		r.Value = nil
	}
	if len(r.Succ) == 0 {
		r.Succ = nil
	}
	if len(r.RingNames) == 0 {
		r.RingNames = nil
	}
	if len(r.Landmarks) == 0 {
		r.Landmarks = nil
	}
	return r
}
