// Package wire defines the message protocol spoken by live HIERAS nodes
// (package transport): a simple request/response scheme, gob-encoded, one
// exchange per TCP connection. Keeping the protocol synchronous and
// connection-per-call makes node handlers trivially deadlock-free; lookup
// traffic is client-driven and iterative.
package wire

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"time"
)

// MsgType enumerates the protocol operations.
type MsgType uint8

const (
	// TPing checks liveness (and lets probers measure RTT).
	TPing MsgType = iota + 1
	// TGetInfo returns the node's identifier, ring names, landmark list
	// and virtual coordinates.
	TGetInfo
	// TFindClosest executes one iterative routing step in a given layer.
	TFindClosest
	// TGetNeighbors returns a layer's successor list and predecessor.
	TGetNeighbors
	// TNotify tells a node about a possible predecessor in a layer.
	TNotify
	// TGetRingTable fetches the ring table for a ring name and layer.
	TGetRingTable
	// TPutRingTable stores/updates a ring table.
	TPutRingTable
	// TPut stores a key/value pair on the receiving node.
	TPut
	// TGet reads a key from the receiving node.
	TGet
	// TLeaveSucc tells a departing node's successor to adopt the
	// departing node's predecessor.
	TLeaveSucc
	// TLeavePred tells a departing node's predecessor to adopt the
	// departing node's successor list.
	TLeavePred
	// TEvict reports a dead peer: the receiver purges it from the given
	// layer's fingers, successor list and predecessor (Chord's timeout
	// handling, driven by the iterative client).
	TEvict
	// TStorePut installs one versioned replica item (Items[0]) into the
	// receiver's store; the write is a version-guarded merge, so replays
	// are no-ops.
	TStorePut
	// TStoreGet reads a key's versioned item from the receiving node.
	TStoreGet
	// TReplicate merges a batch of versioned items into the receiver's
	// store — the re-replication/republish path of the stabilize sweep.
	TReplicate
	// THandoff transfers a departing node's versioned items to its
	// successor (the replicated counterpart of the TPut-per-key handoff).
	THandoff
)

func (m MsgType) String() string {
	switch m {
	case TPing:
		return "ping"
	case TGetInfo:
		return "get_info"
	case TFindClosest:
		return "find_closest"
	case TGetNeighbors:
		return "get_neighbors"
	case TNotify:
		return "notify"
	case TGetRingTable:
		return "get_ring_table"
	case TPutRingTable:
		return "put_ring_table"
	case TPut:
		return "put"
	case TGet:
		return "get"
	case TLeaveSucc:
		return "leave_succ"
	case TLeavePred:
		return "leave_pred"
	case TEvict:
		return "evict"
	case TStorePut:
		return "store_put"
	case TStoreGet:
		return "store_get"
	case TReplicate:
		return "replicate"
	case THandoff:
		return "handoff"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(m))
	}
}

// Peer is a (address, identifier) pair.
type Peer struct {
	Addr string
	ID   [20]byte
}

// StoreItem is one versioned key/value replica. Version orders writes of
// the same key (last-writer-wins); Writer breaks version ties with a
// total order, so two replicas holding the same (Version, Writer) are
// guaranteed to hold the same value and merges are deterministic.
type StoreItem struct {
	Key     string
	Value   []byte
	Version uint64
	Writer  string // unique per write: "coordinatorAddr#seq"
}

// RingTable is the on-the-wire form of a lower ring's boundary table.
type RingTable struct {
	Layer    int
	Name     string
	Smallest Peer
	SecondSm Peer
	Largest  Peer
	SecondLg Peer
}

// Request is the single request envelope; fields are used per Type.
type Request struct {
	Type  MsgType
	Layer int      // TFindClosest, TGetNeighbors, TNotify: ring layer (1 = global)
	Key   [20]byte // TFindClosest: routing target; TPut/TGet use Name
	Name  string   // ring name or kv key
	Peer  Peer     // TNotify: candidate predecessor; TLeaveSucc: new predecessor; TEvict: the dead peer
	Peers []Peer   // TLeavePred: the departing node's successor list
	Table RingTable
	Value []byte      // TPut payload
	Items []StoreItem // TStorePut: the single item; TReplicate/THandoff: a batch
	// Hierarchical marks a TFindClosest step of a multi-layer routing
	// procedure: the handler applies the paper's destination check against
	// the GLOBAL ring (is this node the key's owner?) instead of the
	// ring-local successor shortcut used by join-time walks.
	Hierarchical bool
}

// Response is the single response envelope.
type Response struct {
	OK  bool
	Err string

	// TFindClosest:
	Next  Peer // next hop (or the owner when Done)
	Done  bool // the queried node precedes the key in this layer
	Owner bool // the queried node itself owns the key

	// TGetInfo / TGetNeighbors:
	Self      Peer
	RingNames []string
	Landmarks []string
	Coord     [2]float64
	Succ      []Peer
	Pred      Peer

	// TGetRingTable:
	Table RingTable
	Found bool

	// TGet:
	Value []byte

	// TStoreGet: the stored item's version stamp (Found reports presence).
	// TStorePut/TReplicate/THandoff: Applied counts items that advanced
	// the receiver's store (replayed items merge to zero).
	Version uint64
	Writer  string
	Applied int
}

// Caller abstracts one RPC exchange with a peer. The plain transport
// (CallerFunc(Call)), the instrumented Metrics, the fault-injecting
// callers of internal/faultnet and the Retrier all implement it, so the
// node stack composes its call chain — injectors below retries, retries
// below application logic — without knowing the concrete layers.
type Caller interface {
	Call(addr string, req Request, timeout time.Duration) (Response, error)
}

// CallerFunc adapts a function to the Caller interface.
type CallerFunc func(addr string, req Request, timeout time.Duration) (Response, error)

// Call implements Caller.
func (f CallerFunc) Call(addr string, req Request, timeout time.Duration) (Response, error) {
	return f(addr, req, timeout)
}

// DialFunc opens a transport connection to a peer address. The default
// is TCP (net.DialTimeout); in-process harnesses substitute MemNet.Dial
// so clusters get deterministic addresses and zero kernel round trips.
type DialFunc func(addr string, timeout time.Duration) (net.Conn, error)

// tcpDial is the default DialFunc.
func tcpDial(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}

// Call performs one RPC: dial, send, receive, close. Failures are typed:
// a *RemoteError when the peer answered with Response.OK == false, a
// *NetError for dial/send/receive breakage.
func Call(addr string, req Request, timeout time.Duration) (Response, error) {
	resp, _, _, err := exchange(nil, addr, req, timeout)
	return resp, err
}

// CallVia is Call over an explicit dialer (nil = TCP).
func CallVia(dial DialFunc, addr string, req Request, timeout time.Duration) (Response, error) {
	resp, _, _, err := exchange(dial, addr, req, timeout)
	return resp, err
}

// exchange is the shared RPC body; it reports bytes read and written so
// the instrumented Metrics.Call can account traffic. dial == nil uses TCP.
func exchange(dial DialFunc, addr string, req Request, timeout time.Duration) (resp Response, in, out int64, err error) {
	if dial == nil {
		dial = tcpDial
	}
	conn, err := dial(addr, timeout)
	if err != nil {
		return resp, 0, 0, &NetError{Addr: addr, Op: "dial", Sent: false, Err: err}
	}
	cc := &CountingConn{Conn: conn}
	defer conn.Close()
	if dlErr := conn.SetDeadline(time.Now().Add(timeout)); dlErr != nil {
		return resp, 0, 0, dlErr
	}
	if encErr := EncodeRequest(cc, &req); encErr != nil {
		// Sent is conservative: any bytes on the wire may have formed a
		// decodable request on the peer.
		return resp, cc.ReadBytes, cc.WrittenBytes,
			&NetError{Addr: addr, Op: "send", Sent: cc.WrittenBytes > 0, Err: encErr}
	}
	if resp, err = DecodeResponse(cc); err != nil {
		return resp, cc.ReadBytes, cc.WrittenBytes,
			&NetError{Addr: addr, Op: "recv", Sent: true, Err: err}
	}
	if !resp.OK {
		return resp, cc.ReadBytes, cc.WrittenBytes, &RemoteError{Type: req.Type, Msg: resp.Err}
	}
	return resp, cc.ReadBytes, cc.WrittenBytes, nil
}

// EncodeRequest gob-encodes one request envelope to w. It is the exact
// client-side serialisation of the protocol; the fuzz targets exercise it
// directly.
func EncodeRequest(w io.Writer, req *Request) error {
	return gob.NewEncoder(w).Encode(req)
}

// DecodeRequest gob-decodes one request envelope from r. Arbitrary input
// must yield either a Request or an error — never a panic; the
// FuzzDecodeMessage target enforces this.
func DecodeRequest(r io.Reader) (Request, error) {
	var req Request
	err := gob.NewDecoder(r).Decode(&req)
	return req, err
}

// EncodeResponse gob-encodes one response envelope to w.
func EncodeResponse(w io.Writer, resp *Response) error {
	return gob.NewEncoder(w).Encode(resp)
}

// DecodeResponse gob-decodes one response envelope from r.
func DecodeResponse(r io.Reader) (Response, error) {
	var resp Response
	err := gob.NewDecoder(r).Decode(&resp)
	return resp, err
}

// ReadRequest decodes one request from a server-side connection.
func ReadRequest(conn net.Conn, timeout time.Duration) (Request, error) {
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return Request{}, err
	}
	return DecodeRequest(conn)
}

// WriteResponse encodes one response to a server-side connection. The
// write deadline bounds the encode: without it a peer that stops reading
// after sending its request would pin the handler goroutine forever.
func WriteResponse(conn net.Conn, resp Response, timeout time.Duration) error {
	if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	return EncodeResponse(conn, &resp)
}

// Errorf builds a failed response.
func Errorf(format string, args ...interface{}) Response {
	return Response{OK: false, Err: fmt.Sprintf(format, args...)}
}
