// Package wire defines the message protocol spoken by live HIERAS nodes
// (package transport): a request/response scheme carried as tagged,
// length-prefixed frames over persistent connections. A connection opens
// with a fixed preamble naming the codec (the zero-alloc Binary codec by
// default, gob as a compatibility option) and then multiplexes many
// in-flight exchanges, matched by tag — so the hot path pays no dial,
// no handshake and no serialization reflection per call. Lookup traffic
// stays client-driven and iterative, and handlers never issue outgoing
// RPCs, so node handlers remain trivially deadlock-free.
//
// The call surface is context-first: deadlines and cancellation flow
// from the caller through Caller.Call(ctx, addr, req) instead of fixed
// per-dial timeouts. Pool provides the pooled multiplexed client,
// ServeConn the server side, and Call/CallVia a one-shot
// connection-per-call exchange (the benchmark baseline and the path of
// last resort).
package wire

import (
	"context"
	"fmt"
	"net"
	"time"
)

// MsgType enumerates the protocol operations.
type MsgType uint8

const (
	// TPing checks liveness (and lets probers measure RTT).
	TPing MsgType = iota + 1
	// TGetInfo returns the node's identifier, ring names, landmark list
	// and virtual coordinates.
	TGetInfo
	// TFindClosest executes one iterative routing step in a given layer.
	TFindClosest
	// TGetNeighbors returns a layer's successor list and predecessor.
	TGetNeighbors
	// TNotify tells a node about a possible predecessor in a layer.
	TNotify
	// TGetRingTable fetches the ring table for a ring name and layer.
	TGetRingTable
	// TPutRingTable stores/updates a ring table.
	TPutRingTable
	// TPut stores a key/value pair on the receiving node.
	TPut
	// TGet reads a key from the receiving node.
	TGet
	// TLeaveSucc tells a departing node's successor to adopt the
	// departing node's predecessor.
	TLeaveSucc
	// TLeavePred tells a departing node's predecessor to adopt the
	// departing node's successor list.
	TLeavePred
	// TEvict reports a dead peer: the receiver purges it from the given
	// layer's fingers, successor list and predecessor (Chord's timeout
	// handling, driven by the iterative client).
	TEvict
	// TStorePut installs one versioned replica item (Items[0]) into the
	// receiver's store; the write is a version-guarded merge, so replays
	// are no-ops.
	TStorePut
	// TStoreGet reads a key's versioned item from the receiving node.
	TStoreGet
	// TReplicate merges a batch of versioned items into the receiver's
	// store — the re-replication/republish path of the stabilize sweep.
	TReplicate
	// THandoff transfers a departing node's versioned items to its
	// successor (the replicated counterpart of the TPut-per-key handoff).
	THandoff
	// TDigest asks a replica-set member for its per-bucket range digest
	// over the key-ID arc (Key, KeyHi]: DigestBuckets XOR-folded item
	// hashes covering (key, version, writer, expire, tombstone). Equal
	// digests mean the bucket needs no transfer; the anti-entropy round
	// pulls only divergent buckets.
	TDigest
	// TSyncPull fetches the receiver's full items for the divergent
	// buckets of a range digest: the arc (Key, KeyHi] filtered to the
	// bucket indexes listed in Buckets.
	TSyncPull
	// TRouteGossip exchanges membership events for the one-hop route
	// tables: the sender pushes its event set (Request.Events), the
	// receiver merges it (newest stamp wins) and replies with the events
	// it knows that the sender does not (Response.Events). The merge is a
	// join-semilattice, so replays and reordering are no-ops.
	TRouteGossip
)

func (m MsgType) String() string {
	switch m {
	case TPing:
		return "ping"
	case TGetInfo:
		return "get_info"
	case TFindClosest:
		return "find_closest"
	case TGetNeighbors:
		return "get_neighbors"
	case TNotify:
		return "notify"
	case TGetRingTable:
		return "get_ring_table"
	case TPutRingTable:
		return "put_ring_table"
	case TPut:
		return "put"
	case TGet:
		return "get"
	case TLeaveSucc:
		return "leave_succ"
	case TLeavePred:
		return "leave_pred"
	case TEvict:
		return "evict"
	case TStorePut:
		return "store_put"
	case TStoreGet:
		return "store_get"
	case TReplicate:
		return "replicate"
	case THandoff:
		return "handoff"
	case TDigest:
		return "digest"
	case TSyncPull:
		return "sync_pull"
	case TRouteGossip:
		return "route_gossip"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(m))
	}
}

// Peer is a (address, identifier) pair.
type Peer struct {
	Addr string
	ID   [20]byte
}

// StoreItem is one versioned key/value replica. Version orders writes of
// the same key (last-writer-wins); Writer breaks version ties with a
// total order, so two replicas holding the same (Version, Writer) are
// guaranteed to hold the same value and merges are deterministic.
//
// Expire and Tombstone give items a lifecycle that converges under
// replication: Expire is an absolute clock stamp (0 = never) that
// travels with the item, so every replica retires it at the same
// instant instead of each restarting a relative TTL; Tombstone marks a
// delete that supersedes live versions through the normal LWW order, so
// a stale replica cannot resurrect a deleted key.
type StoreItem struct {
	Key       string
	Value     []byte
	Version   uint64
	Writer    string // unique per write: "coordinatorAddr#seq"
	Expire    uint64 // absolute expiry stamp, 0 = never expires
	Tombstone bool   // a delete marker, not a value
}

// Route event kinds, ordered so that at an equal stamp the departure
// outranks the join: a tombstone observed concurrently with a join wins
// the merge, and the (re)joining node re-announces with a fresher stamp.
const (
	RouteJoin  uint8 = 0 // the peer is a live member of the ring
	RouteLeave uint8 = 1 // the peer departed gracefully
	RouteEvict uint8 = 2 // the peer was evicted as dead
)

// RouteEvent is one membership fact for the gossip-maintained one-hop
// route tables: peer Peer joined/left/was evicted from ring (Layer,
// Ring) at logical stamp Stamp. Stamps are per-(layer, ring, peer)
// monotonic; mergers keep the highest stamp, breaking ties toward the
// higher Kind, so event sets converge regardless of delivery order.
type RouteEvent struct {
	Layer int
	Ring  string
	Peer  Peer
	Kind  uint8
	Stamp uint64
}

// RingTable is the on-the-wire form of a lower ring's boundary table.
type RingTable struct {
	Layer    int
	Name     string
	Smallest Peer
	SecondSm Peer
	Largest  Peer
	SecondLg Peer
}

// Request is the single request envelope; fields are used per Type.
type Request struct {
	Type  MsgType
	Layer int      // TFindClosest, TGetNeighbors, TNotify: ring layer (1 = global)
	Key   [20]byte // TFindClosest: routing target; TPut/TGet use Name
	Name  string   // ring name or kv key
	Peer  Peer     // TNotify: candidate predecessor; TLeaveSucc: new predecessor; TEvict: the dead peer
	Peers []Peer   // TLeavePred: the departing node's successor list
	Table RingTable
	Value []byte      // TPut payload
	Items []StoreItem // TStorePut: the single item; TReplicate/THandoff: a batch
	// TDigest/TSyncPull: the key-ID arc (Key, KeyHi] being synced; Key
	// doubles as the arc's exclusive lower bound. Key == KeyHi covers the
	// whole ring.
	KeyHi [20]byte
	// TSyncPull: divergent bucket indexes (into DigestBuckets) to pull.
	Buckets []uint32
	// TRouteGossip: the sender's full membership-event set.
	Events []RouteEvent
	// Hierarchical marks a TFindClosest step of a multi-layer routing
	// procedure: the handler applies the paper's destination check against
	// the GLOBAL ring (is this node the key's owner?) instead of the
	// ring-local successor shortcut used by join-time walks.
	Hierarchical bool
}

// Response is the single response envelope.
type Response struct {
	OK  bool
	Err string

	// TFindClosest:
	Next  Peer // next hop (or the owner when Done)
	Done  bool // the queried node precedes the key in this layer
	Owner bool // the queried node itself owns the key

	// TGetInfo / TGetNeighbors:
	Self      Peer
	RingNames []string
	Landmarks []string
	Coord     [2]float64
	Succ      []Peer
	Pred      Peer

	// TGetRingTable:
	Table RingTable
	Found bool

	// TGet:
	Value []byte

	// TStoreGet: the stored item's version stamp (Found reports presence).
	// TStorePut/TReplicate/THandoff: Applied counts items that advanced
	// the receiver's store (replayed items merge to zero).
	Version uint64
	Writer  string
	Applied int

	// TStoreGet: the stored item's lifecycle stamps, so quorum readers
	// can propagate tombstones and expiry by read-repair instead of
	// resurrecting deleted keys.
	Expire    uint64
	Tombstone bool

	// TDigest: per-bucket XOR digests over the requested arc.
	Digests []uint64
	// TSyncPull: the receiver's items in the requested buckets.
	Items []StoreItem

	// TRouteGossip: events the receiver knows that beat or are absent
	// from the request's set — the pull half of the push-pull exchange.
	// Applied counts request events that advanced the receiver's table.
	Events []RouteEvent
}

// DefaultTimeout bounds a call whose context carries no deadline. Every
// layer that needs a time bound (one-shot dials, pooled frame writes,
// retry attempts) falls back to it, so a background-context call can
// never hang forever.
const DefaultTimeout = 3 * time.Second

// Caller abstracts one RPC exchange with a peer. The deadline and
// cancellation come from ctx: a context with no deadline is bounded by
// DefaultTimeout at whatever layer performs I/O. The pooled transport
// (Pool), the instrumented wrapper (Metrics.Wrap), the coalescer, the
// fault-injecting callers of internal/faultnet and the Retrier all
// implement it, so the node stack composes its call chain — coalescing
// above retries, retries above injectors, injectors above the pool —
// without knowing the concrete layers.
type Caller interface {
	Call(ctx context.Context, addr string, req Request) (Response, error)
}

// CallerFunc adapts a function to the Caller interface.
type CallerFunc func(ctx context.Context, addr string, req Request) (Response, error)

// Call implements Caller.
func (f CallerFunc) Call(ctx context.Context, addr string, req Request) (Response, error) {
	return f(ctx, addr, req)
}

// DialFunc opens a transport connection to a peer address. The default
// is TCP (net.DialTimeout); in-process harnesses substitute MemNet.Dial
// so clusters get deterministic addresses and zero kernel round trips.
type DialFunc func(addr string, timeout time.Duration) (net.Conn, error)

// tcpDial is the default DialFunc.
func tcpDial(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}

// Call performs one connection-per-call RPC with the default codec over
// TCP: dial, preamble, one framed exchange, close. Failures are typed: a
// *RemoteError when the peer answered with Response.OK == false, a
// *NetError for dial/send/receive breakage. Production traffic goes
// through Pool; Call remains for probes, tools and as the benchmark
// baseline.
func Call(ctx context.Context, addr string, req Request) (Response, error) {
	return CallVia(ctx, nil, nil, addr, req)
}

// CallVia is Call over an explicit dialer and codec (nil = TCP, nil =
// DefaultCodec).
func CallVia(ctx context.Context, dial DialFunc, codec Codec, addr string, req Request) (Response, error) {
	if dial == nil {
		dial = tcpDial
	}
	if codec == nil {
		codec = DefaultCodec()
	}
	deadline, hasDeadline := ctx.Deadline()
	if !hasDeadline {
		deadline = time.Now().Add(DefaultTimeout)
	}
	timeout := time.Until(deadline)
	if timeout <= 0 || ctx.Err() != nil {
		return Response{}, &NetError{Addr: addr, Op: "dial", Sent: false, Err: context.Cause(ctx)}
	}
	conn, err := dial(addr, timeout)
	if err != nil {
		return Response{}, &NetError{Addr: addr, Op: "dial", Sent: false, Err: err}
	}
	defer conn.Close()
	stop := watchCtx(ctx, conn)
	defer stop()
	if err := conn.SetDeadline(deadline); err != nil {
		return Response{}, err
	}

	pb := getFrameBuf()
	buf := appendPreamble((*pb)[:0], codec)
	frameStart := len(buf)
	buf = append(buf, frameHole[:]...)
	buf, encErr := codec.AppendRequest(buf, &req)
	if encErr != nil {
		*pb = buf
		putFrameBuf(pb)
		return Response{}, &NetError{Addr: addr, Op: "send", Sent: false, Err: encErr}
	}
	putFrameHeader(buf[frameStart:], oneShotTag)
	n, werr := conn.Write(buf)
	*pb = buf
	putFrameBuf(pb)
	if werr != nil {
		return Response{}, &NetError{Addr: addr, Op: "send", Sent: n > 0, Err: ctxCause(ctx, werr)}
	}

	rb := getFrameBuf()
	payload, tag, rerr := readFrame(conn, (*rb)[:0])
	var resp Response
	if rerr == nil {
		if tag != oneShotTag {
			rerr = fmt.Errorf("wire: response tag %d for one-shot exchange", tag)
		} else {
			resp, rerr = codec.DecodeResponse(payload)
		}
	}
	*rb = payload
	putFrameBuf(rb)
	if rerr != nil {
		return Response{}, &NetError{Addr: addr, Op: "recv", Sent: true, Err: ctxCause(ctx, rerr)}
	}
	if !resp.OK {
		return resp, &RemoteError{Type: req.Type, Msg: resp.Err}
	}
	return resp, nil
}

// oneShotTag tags the single exchange of a connection-per-call RPC.
const oneShotTag = 1

// frameHole reserves header space in an encode buffer; putFrameHeader
// fills it once the payload length is known.
var frameHole [frameHeader]byte

// ctxCause reports why an I/O operation failed: if ctx was canceled the
// watcher closed the connection, so the cancellation — not the resulting
// "use of closed network connection" — is the root cause.
func ctxCause(ctx context.Context, ioErr error) error {
	if ctx.Err() != nil {
		return context.Cause(ctx)
	}
	return ioErr
}

// watchCtx closes conn when ctx is canceled, so a one-shot exchange
// aborts promptly instead of waiting out its I/O deadline. The returned
// stop func releases the watcher.
func watchCtx(ctx context.Context, conn net.Conn) (stop func()) {
	if ctx.Done() == nil {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()
	return func() { close(done) }
}

// Errorf builds a failed response.
func Errorf(format string, args ...interface{}) Response {
	return Response{OK: false, Err: fmt.Sprintf(format, args...)}
}
