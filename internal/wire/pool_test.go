package wire

import (
	"context"
	"errors"
	"io"
	"net"
	"repro/internal/lint/leakcheck"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
)

// servePool runs a ServeConn accept loop on a fresh MemNet listener,
// counting accepted connections.
func servePool(t *testing.T, mn *MemNet, name string, h Handler) *int32 {
	t.Helper()
	ln, err := mn.Listen(name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	accepts := new(int32)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			atomic.AddInt32(accepts, 1)
			go func() { _ = ServeConn(conn, h, ServeOptions{}) }()
		}
	}()
	return accepts
}

func poolCall(p *Pool, addr string, req Request, timeout time.Duration) (Response, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return p.Call(ctx, addr, req)
}

// TestPoolReusesConnections pins the tentpole property: sequential calls
// to one peer share a single pooled connection instead of dialing each.
func TestPoolReusesConnections(t *testing.T) {
	mn := NewMemNet()
	accepts := servePool(t, mn, "peer", func(req Request) Response {
		return Response{OK: true, Err: req.Name}
	})
	p := NewPool(PoolOptions{Dial: mn.Dial, Size: 1})
	defer p.Close()
	for i := 0; i < 20; i++ {
		resp, err := poolCall(p, "peer", Request{Type: TPing, Name: "x"}, 2*time.Second)
		if err != nil || resp.Err != "x" {
			t.Fatalf("call %d: %v (%+v)", i, err, resp)
		}
	}
	if n := atomic.LoadInt32(accepts); n != 1 {
		t.Errorf("20 pooled calls opened %d connections, want 1", n)
	}
}

// TestPoolPipelinesOutOfOrder pins multiplexing: on ONE connection, a
// fast exchange issued after a slow one completes first, and each caller
// still receives its own matched response.
func TestPoolPipelinesOutOfOrder(t *testing.T) {
	leakcheck.Watchdog(t, 30*time.Second)
	mn := NewMemNet()
	release := make(chan struct{})
	accepts := servePool(t, mn, "peer", func(req Request) Response {
		if req.Name == "slow" {
			<-release
		}
		return Response{OK: true, Err: req.Name}
	})
	p := NewPool(PoolOptions{Dial: mn.Dial, Size: 1})
	defer p.Close()

	slowDone := make(chan Response, 1)
	go func() {
		resp, err := poolCall(p, "peer", Request{Type: TGet, Name: "slow"}, 5*time.Second)
		if err != nil {
			t.Errorf("slow call: %v", err)
		}
		slowDone <- resp
	}()
	// Wait until the slow request is in flight on the pooled connection.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if p.peer("peer").load() >= 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}

	fast, err := poolCall(p, "peer", Request{Type: TGet, Name: "fast"}, 2*time.Second)
	if err != nil {
		t.Fatalf("fast call blocked behind the slow exchange: %v", err)
	}
	if fast.Err != "fast" {
		t.Fatalf("fast call got the wrong response: %+v", fast)
	}
	select {
	case <-slowDone:
		t.Fatal("slow exchange completed before it was released")
	default:
	}
	close(release)
	select {
	case resp := <-slowDone:
		if resp.Err != "slow" {
			t.Fatalf("slow call got the wrong response: %+v", resp)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("slow exchange never completed after release")
	}
	if n := atomic.LoadInt32(accepts); n != 1 {
		t.Errorf("pipelined exchanges used %d connections, want 1", n)
	}
}

// load reports a peer's total in-flight exchanges (test helper).
func (pp *poolPeer) load() int {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	total := 0
	for _, c := range pp.conns {
		total += c.load()
	}
	return total
}

// TestPoolCancelAbandonsOneExchange pins per-exchange cancellation: a
// canceled call fails with its context cause while the connection and
// its other in-flight exchanges keep working.
func TestPoolCancelAbandonsOneExchange(t *testing.T) {
	leakcheck.Watchdog(t, 30*time.Second)
	mn := NewMemNet()
	release := make(chan struct{})
	servePool(t, mn, "peer", func(req Request) Response {
		if req.Name == "stuck" {
			<-release
		}
		return Response{OK: true, Err: req.Name}
	})
	defer close(release)
	p := NewPool(PoolOptions{Dial: mn.Dial, Size: 1})
	defer p.Close()

	ctx, cancel := context.WithCancel(context.Background())
	stuckErr := make(chan error, 1)
	go func() {
		_, err := p.Call(ctx, "peer", Request{Type: TGet, Name: "stuck"})
		stuckErr <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-stuckErr:
		var ne *NetError
		if !errors.As(err, &ne) || !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled exchange error = %v, want NetError wrapping context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancellation did not abort the exchange")
	}
	// The connection must still serve other exchanges.
	resp, err := poolCall(p, "peer", Request{Type: TPing, Name: "after"}, 2*time.Second)
	if err != nil || resp.Err != "after" {
		t.Fatalf("exchange after cancellation: %v (%+v)", err, resp)
	}
}

// TestPoolBrokenConnFailsAllInflight pins failure fan-out: when the peer
// kills the connection, every in-flight exchange fails with a NetError,
// and the next call transparently redials.
func TestPoolBrokenConnFailsAllInflight(t *testing.T) {
	leakcheck.Watchdog(t, 30*time.Second)
	mn := NewMemNet()
	ln, err := mn.Listen("peer")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var killed atomic.Bool
	kill := make(chan net.Conn, 1)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if killed.CompareAndSwap(false, true) {
				// First connection: drain the preamble and request frames
				// (MemNet pipes are synchronous, so the client's writes
				// need a reader) but never respond; die on command.
				go func() { _, _ = io.Copy(io.Discard, conn) }()
				kill <- conn
				continue
			}
			go func() { _ = ServeConn(conn, func(req Request) Response { return Response{OK: true} }, ServeOptions{}) }()
		}
	}()

	p := NewPool(PoolOptions{Dial: mn.Dial, Size: 1})
	defer p.Close()
	const inflight = 4
	errs := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		go func() {
			_, err := poolCall(p, "peer", Request{Type: TGet, Name: "doomed"}, 5*time.Second)
			errs <- err
		}()
	}
	victim := <-kill
	// Give the calls a moment to register their tags, then cut the wire.
	time.Sleep(50 * time.Millisecond)
	victim.Close()
	for i := 0; i < inflight; i++ {
		select {
		case err := <-errs:
			var ne *NetError
			if !errors.As(err, &ne) {
				t.Errorf("in-flight exchange %d: %v, want NetError", i, err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("in-flight exchange not failed by the dead connection")
		}
	}
	if resp, err := poolCall(p, "peer", Request{Type: TPing}, 2*time.Second); err != nil || !resp.OK {
		t.Fatalf("redial after broken connection: %v (%+v)", err, resp)
	}
}

// TestPoolWedgedConnStrikeLimit pins the wedge detector: a connection
// whose peer accepts frames but never answers is declared wedged after
// wedgeStrikes consecutive exchange timeouts and torn down — failing
// its remaining in-flight exchanges promptly instead of letting each
// ride out its own deadline — and the next call dials a replacement.
func TestPoolWedgedConnStrikeLimit(t *testing.T) {
	leakcheck.Watchdog(t, 30*time.Second)
	mn := NewMemNet()
	ln, err := mn.Listen("peer")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var wedgedConn atomic.Bool
	accepts := new(int32)
	go func() {
		for {
			conn, acceptErr := ln.Accept()
			if acceptErr != nil {
				return
			}
			atomic.AddInt32(accepts, 1)
			if wedgedConn.CompareAndSwap(false, true) {
				// First connection: drain the preamble and request frames
				// (MemNet pipes are synchronous, so the client's writes
				// need a reader) but never respond — a wedged peer, not a
				// dead one.
				go func() { _, _ = io.Copy(io.Discard, conn) }()
				continue
			}
			go func() { _ = ServeConn(conn, func(req Request) Response { return Response{OK: true} }, ServeOptions{}) }()
		}
	}()

	p := NewPool(PoolOptions{Dial: mn.Dial, Size: 1})
	defer p.Close()

	// A patient exchange rides the wedged connection. Its own deadline is
	// far out; only the wedge teardown can fail it quickly.
	bystander := make(chan error, 1)
	go func() {
		_, callErr := poolCall(p, "peer", Request{Type: TGet, Name: "bystander"}, time.Minute)
		bystander <- callErr
	}()
	deadline := time.Now().Add(2 * time.Second)
	for p.peer("peer").load() < 1 && !time.Now().After(deadline) {
		time.Sleep(time.Millisecond)
	}

	// Each timed-out exchange with no intervening completion is one
	// strike; the limit kills the connection.
	for i := 0; i < wedgeStrikes; i++ {
		_, strikeErr := poolCall(p, "peer", Request{Type: TGet, Name: "strike"}, 25*time.Millisecond)
		if !errors.Is(strikeErr, context.DeadlineExceeded) {
			t.Fatalf("strike %d: %v, want deadline exceeded", i, strikeErr)
		}
	}

	// Teardown fans the wedge failure out to the patient exchange well
	// before its minute-long deadline.
	select {
	case bystanderErr := <-bystander:
		var ne *NetError
		if !errors.As(bystanderErr, &ne) {
			t.Fatalf("bystander on wedged connection: %v, want NetError", bystanderErr)
		}
		if errors.Is(bystanderErr, context.DeadlineExceeded) {
			t.Fatalf("bystander hit its own deadline instead of the wedge teardown: %v", bystanderErr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wedge teardown did not fail the in-flight exchange")
	}

	// The struck-out connection is replaced: the next call dials fresh
	// and succeeds.
	resp, err := poolCall(p, "peer", Request{Type: TPing}, 2*time.Second)
	if err != nil || !resp.OK {
		t.Fatalf("call after wedge teardown: %v (%+v)", err, resp)
	}
	if n := atomic.LoadInt32(accepts); n != 2 {
		t.Errorf("wedge recovery used %d connections, want 2 (wedged + replacement)", n)
	}
}

// TestPoolBaselineModeDialsPerCall pins Size < 0: no pooling, one fresh
// connection per exchange (the benchmark baseline).
func TestPoolBaselineModeDialsPerCall(t *testing.T) {
	mn := NewMemNet()
	accepts := servePool(t, mn, "peer", func(req Request) Response {
		return Response{OK: true}
	})
	p := NewPool(PoolOptions{Dial: mn.Dial, Size: -1})
	defer p.Close()
	const calls = 5
	for i := 0; i < calls; i++ {
		if _, err := poolCall(p, "peer", Request{Type: TPing}, 2*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if n := atomic.LoadInt32(accepts); n != calls {
		t.Errorf("baseline mode opened %d connections for %d calls", n, calls)
	}
}

// countingCaller counts inner calls and blocks until released.
type countingCaller struct {
	calls   atomic.Int32
	release chan struct{}
}

func (c *countingCaller) Call(ctx context.Context, addr string, req Request) (Response, error) {
	c.calls.Add(1)
	if c.release != nil {
		<-c.release
	}
	return Response{OK: true, Err: req.Name}, nil
}

func TestCoalescerSharesIdenticalReads(t *testing.T) {
	inner := &countingCaller{release: make(chan struct{})}
	reg := metrics.NewRegistry()
	co := NewCoalescer(inner, reg)
	req := Request{Type: TFindClosest, Layer: 1, Key: [20]byte{9}, Name: "r"}

	const waiters = 4
	var wg sync.WaitGroup
	results := make(chan Response, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := co.Call(context.Background(), "peer", req)
			if err != nil {
				t.Errorf("coalesced call: %v", err)
			}
			results <- resp
		}()
	}
	// Wait for the flight to exist and the waiters to pile on.
	deadline := time.Now().Add(2 * time.Second)
	for inner.calls.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(inner.release)
	wg.Wait()
	if got := inner.calls.Load(); got != 1 {
		t.Errorf("%d identical in-flight reads issued %d inner calls, want 1", waiters, got)
	}
	for i := 0; i < waiters; i++ {
		if resp := <-results; resp.Err != "r" {
			t.Errorf("waiter got wrong response: %+v", resp)
		}
	}
}

func TestCoalescerDoesNotCoalesceWrites(t *testing.T) {
	inner := &countingCaller{}
	co := NewCoalescer(inner, nil)
	req := Request{Type: TPut, Name: "k", Value: []byte("v")}
	for i := 0; i < 3; i++ {
		if _, err := co.Call(context.Background(), "peer", req); err != nil {
			t.Fatal(err)
		}
	}
	if got := inner.calls.Load(); got != 3 {
		t.Errorf("3 writes issued %d inner calls, want 3 (writes must never coalesce)", got)
	}
}

func TestCoalescerWaiterCancelDoesNotKillFlight(t *testing.T) {
	leakcheck.Watchdog(t, 30*time.Second)
	inner := &countingCaller{release: make(chan struct{})}
	co := NewCoalescer(inner, nil)
	req := Request{Type: TStoreGet, Name: "k"}

	ctx, cancel := context.WithCancel(context.Background())
	canceledErr := make(chan error, 1)
	go func() {
		_, err := co.Call(ctx, "peer", req)
		canceledErr <- err
	}()
	survivor := make(chan Response, 1)
	go func() {
		resp, err := co.Call(context.Background(), "peer", req)
		if err != nil {
			t.Errorf("surviving waiter: %v", err)
		}
		survivor <- resp
	}()
	deadline := time.Now().Add(2 * time.Second)
	for inner.calls.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-canceledErr:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("canceled waiter error = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled waiter did not return")
	}
	close(inner.release)
	select {
	case resp := <-survivor:
		if resp.Err != "k" {
			t.Errorf("survivor got wrong response: %+v", resp)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("surviving waiter starved: the canceled waiter killed the flight")
	}
	if got := inner.calls.Load(); got != 1 {
		t.Errorf("inner calls = %d, want 1", got)
	}
}

// TestPoolTimedOutExchangeFreesTagSlot pins the slot-release contract:
// the moment a waiter gives up on its context, its tag no longer counts
// toward the connection's load, so the pool's least-loaded routing and
// grow heuristic see the truth instead of a ghost in-flight exchange.
func TestPoolTimedOutExchangeFreesTagSlot(t *testing.T) {
	leakcheck.Watchdog(t, 30*time.Second)
	mn := NewMemNet()
	release := make(chan struct{})
	servePool(t, mn, "peer", func(req Request) Response {
		if req.Name == "stuck" {
			<-release
		}
		return Response{OK: true}
	})
	defer close(release)
	p := NewPool(PoolOptions{Dial: mn.Dial, Size: 1})
	defer p.Close()

	if _, err := poolCall(p, "peer", Request{Type: TPing}, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	conn := func() *muxConn {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.peers["peer"].conns[0]
	}()

	if _, err := poolCall(p, "peer", Request{Type: TGet, Name: "stuck"}, 50*time.Millisecond); err == nil {
		t.Fatal("exchange against a stuck handler should time out")
	}
	// No grace, no sleep: the timed-out waiter already released its slot.
	if got := conn.load(); got != 0 {
		t.Fatalf("load = %d right after the timeout, want 0 (tag slot must be released immediately)", got)
	}
}

// TestPoolExpiredContextSendsNothing pins the write-path half: an
// exchange whose deadline lapsed while queued behind the write lock
// releases its tag and reports Sent=false instead of shipping a frame
// whose response nobody will claim.
func TestPoolExpiredContextSendsNothing(t *testing.T) {
	leakcheck.Watchdog(t, 30*time.Second)
	mn := NewMemNet()
	var served atomic.Int32
	servePool(t, mn, "peer", func(req Request) Response {
		served.Add(1)
		return Response{OK: true}
	})
	p := NewPool(PoolOptions{Dial: mn.Dial, Size: 1})
	defer p.Close()

	if _, err := poolCall(p, "peer", Request{Type: TPing}, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	warm := served.Load()
	conn := func() *muxConn {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.peers["peer"].conns[0]
	}()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired before the frame write can happen
	_, err := conn.roundTrip(ctx, "peer", Request{Type: TPing})
	var ne *NetError
	if !errors.As(err, &ne) || ne.Sent {
		t.Fatalf("roundTrip with expired ctx: err = %v, want NetError with Sent=false", err)
	}
	if got := conn.load(); got != 0 {
		t.Fatalf("load = %d after expired-ctx roundTrip, want 0", got)
	}
	time.Sleep(50 * time.Millisecond)
	if got := served.Load(); got != warm {
		t.Fatalf("server handled %d frame(s) from an expired exchange, want none", got-warm)
	}
}
