package wire

import (
	"context"
	"sync"

	"repro/internal/metrics"
)

// flightKey identifies an exchange two callers may share: same peer,
// same read operation, same arguments.
type flightKey struct {
	addr         string
	typ          MsgType
	layer        int
	key          [20]byte
	name         string
	hierarchical bool
}

// flight is one in-progress shared exchange.
type flight struct {
	done chan struct{}
	resp Response
	err  error
}

// Coalescer deduplicates identical in-flight read exchanges: while a
// TFindClosest or TStoreGet to a peer is outstanding, further calls with
// the same arguments wait for its result instead of issuing their own.
// Only those two types coalesce — they are pure reads whose answer does
// not depend on which caller asks, and they dominate lookup fan-out
// (concurrent lookups for nearby keys walk the same finger chain).
//
// The flight runs on its own goroutine under context.WithoutCancel, so
// one waiter's cancellation never fails the others; each waiter still
// honors its own ctx and abandons the wait (not the flight) on cancel.
// Errors are shared exactly like responses — a failed flight fails every
// waiter, and the retrier below the caller sees one failure per flight,
// not per waiter.
//
// Coalescing sits at the TOP of the caller chain (above the retrier and
// any fault injector): collapsing calls below the injector would make
// faultnet's replayed fault schedules depend on goroutine timing. For
// the same reason it is opt-in (transport.Config.Coalesce) and off in
// the deterministic harnesses.
type Coalescer struct {
	inner Caller

	mu      sync.Mutex
	flights map[flightKey]*flight

	// wg counts flight goroutines so Close can drain them. A flight ends
	// as soon as the inner caller returns — on shutdown the pool below
	// fails in-flight exchanges, so the drain is prompt.
	wg sync.WaitGroup

	coalesced *metrics.Counter
}

// NewCoalescer builds a coalescing caller around inner. With a nil
// registry the counter is a private throwaway.
func NewCoalescer(inner Caller, reg *metrics.Registry) *Coalescer {
	c := &Coalescer{inner: inner, flights: make(map[flightKey]*flight)}
	if reg != nil {
		c.coalesced = reg.NewCounter("wire_coalesced_total",
			"Read RPCs answered by joining an identical in-flight exchange.")
	} else {
		c.coalesced = &metrics.Counter{}
	}
	return c
}

// Call implements Caller.
func (c *Coalescer) Call(ctx context.Context, addr string, req Request) (Response, error) {
	if req.Type != TFindClosest && req.Type != TStoreGet {
		return c.inner.Call(ctx, addr, req)
	}
	k := flightKey{
		addr:         addr,
		typ:          req.Type,
		layer:        req.Layer,
		key:          req.Key,
		name:         req.Name,
		hierarchical: req.Hierarchical,
	}
	c.mu.Lock()
	f, joined := c.flights[k]
	if !joined {
		f = &flight{done: make(chan struct{})}
		c.flights[k] = f
	}
	c.mu.Unlock()
	if joined {
		c.coalesced.Inc()
	} else {
		c.wg.Add(1)
		go c.run(ctx, k, f, addr, req)
	}
	select {
	case <-f.done:
		return f.resp, f.err
	case <-ctx.Done():
		// Abandon the wait, not the flight: remaining waiters (and the
		// flight's result, which may still populate caches downstream for
		// them) are unaffected. Sent is conservatively true — the shared
		// request may be on the wire.
		return Response{}, &NetError{Addr: addr, Op: "call", Sent: true, Err: context.Cause(ctx)}
	}
}

// run executes one shared flight to completion and publishes its result.
func (c *Coalescer) run(ctx context.Context, k flightKey, f *flight, addr string, req Request) {
	defer c.wg.Done()
	f.resp, f.err = c.inner.Call(context.WithoutCancel(ctx), addr, req)
	c.mu.Lock()
	delete(c.flights, k)
	c.mu.Unlock()
	close(f.done)
}

// Close waits for every in-flight shared exchange to finish. Call it
// after closing the caller below (which fails those exchanges), so the
// drain cannot block on a healthy slow peer.
func (c *Coalescer) Close() error {
	c.wg.Wait()
	return nil
}
