package wire

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"
)

// PoolOptions configures a Pool.
type PoolOptions struct {
	// Codec is the wire codec announced in each connection's preamble
	// (nil = DefaultCodec).
	Codec Codec
	// Dial opens connections (nil = TCP).
	Dial DialFunc
	// Size caps the live connections kept per peer. 0 means
	// DefaultPoolSize; negative disables pooling entirely — every call
	// dials, exchanges once and closes (the benchmark baseline mode).
	Size int
	// DialTimeout bounds connection establishment when the caller's
	// context allows more (0 = DefaultTimeout).
	DialTimeout time.Duration
	// WriteTimeout bounds each frame write on a pooled connection; like
	// the server side, the deadline is re-armed per frame
	// (0 = DefaultTimeout).
	WriteTimeout time.Duration
	// ConnWrap, when non-nil, wraps every new connection before use —
	// the seam for byte accounting (Metrics.CountConn).
	ConnWrap func(net.Conn) net.Conn
}

// DefaultPoolSize is the per-peer connection cap when PoolOptions.Size
// is zero. Two connections keep one head-of-line-blocked stream (a slow
// large response) from stalling every concurrent exchange while still
// amortizing dials.
const DefaultPoolSize = 2

// growInflight is the in-flight count on a peer's least-loaded
// connection above which the pool dials an additional connection (up to
// Size) in the background rather than queueing more exchanges onto it.
const growInflight = 4

// wedgeStrikes is the number of consecutive waiter timeouts (with no
// intervening completed exchange) after which a pooled connection is
// declared wedged and torn down.
const wedgeStrikes = 8

// Pool is the pooled, multiplexed wire client: it keeps up to Size
// connections per peer, pipelines many tagged in-flight requests on each,
// and matches responses by tag, so concurrent exchanges to one peer share
// connections instead of paying a dial each. Broken connections fail all
// their in-flight exchanges with a *NetError and are replaced on the next
// call. Pool implements Caller; cancellation is per-exchange (an
// abandoned tag, not a closed connection).
type Pool struct {
	o PoolOptions

	// lifeCtx is cancelled by Close; background grow-dials derive from it
	// so none outlives the pool. growWG counts those dial goroutines and
	// Close waits for them, so a closed pool leaves nothing running.
	lifeCtx    context.Context
	lifeCancel context.CancelFunc
	growWG     sync.WaitGroup

	mu     sync.Mutex
	peers  map[string]*poolPeer
	closed bool
}

// NewPool builds a pooled caller. Close releases its connections.
func NewPool(o PoolOptions) *Pool {
	if o.Codec == nil {
		o.Codec = DefaultCodec()
	}
	if o.Dial == nil {
		o.Dial = tcpDial
	}
	if o.Size == 0 {
		o.Size = DefaultPoolSize
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = DefaultTimeout
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = DefaultTimeout
	}
	p := &Pool{o: o, peers: make(map[string]*poolPeer)}
	p.lifeCtx, p.lifeCancel = context.WithCancel(context.Background()) //lint:allow ctxflow the pool lifecycle root: Close cancels it, and background grow-dials derive from it
	return p
}

// Call implements Caller.
func (p *Pool) Call(ctx context.Context, addr string, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, &NetError{Addr: addr, Op: "dial", Sent: false, Err: context.Cause(ctx)}
	}
	if p.o.Size < 0 {
		return CallVia(ctx, p.o.dialWrapped, p.o.Codec, addr, req)
	}
	c, err := p.peer(addr).conn(ctx)
	if err != nil {
		return Response{}, err
	}
	return c.roundTrip(ctx, addr, req)
}

// Close tears down every pooled connection, failing their in-flight
// exchanges. The pool is unusable afterwards.
func (p *Pool) Close() error {
	p.lifeCancel()
	p.mu.Lock()
	peers := p.peers
	p.peers = make(map[string]*poolPeer)
	p.closed = true
	p.mu.Unlock()
	for _, pp := range peers {
		pp.close()
	}
	p.growWG.Wait()
	return nil
}

// dialWrapped applies ConnWrap on top of the configured dialer; it backs
// the unpooled (Size < 0) mode.
func (o *PoolOptions) dialWrapped(addr string, timeout time.Duration) (net.Conn, error) {
	conn, err := o.Dial(addr, timeout)
	if err != nil || o.ConnWrap == nil {
		return conn, err
	}
	return o.ConnWrap(conn), nil
}

func (p *Pool) peer(addr string) *poolPeer {
	p.mu.Lock()
	defer p.mu.Unlock()
	pp, ok := p.peers[addr]
	if !ok {
		pp = &poolPeer{pool: p, addr: addr}
		p.peers[addr] = pp
	}
	return pp
}

// poolPeer holds one peer's connections.
type poolPeer struct {
	pool *Pool
	addr string

	// dialMu serializes synchronous dials so a burst of first calls to a
	// peer opens one connection, not one per caller.
	dialMu sync.Mutex

	mu      sync.Mutex
	conns   []*muxConn
	growing bool // a background grow-dial is in flight
}

// conn returns a connection to run one exchange on: the least-loaded
// live connection when one exists (kicking off a background dial when
// it is busy and the pool has room), else a synchronous dial.
func (pp *poolPeer) conn(ctx context.Context) (*muxConn, error) {
	if best, grow := pp.pick(); best != nil {
		if grow {
			pp.pool.growWG.Add(1)
			go pp.grow()
		}
		return best, nil
	}
	pp.dialMu.Lock()
	defer pp.dialMu.Unlock()
	// Another caller may have dialed while we waited.
	if best, _ := pp.pick(); best != nil {
		return best, nil
	}
	c, err := pp.dial(ctx)
	if err != nil {
		return nil, err
	}
	pp.mu.Lock()
	pp.conns = append(pp.conns, c)
	pp.mu.Unlock()
	return c, nil
}

// pick prunes dead connections and returns the least-loaded live one
// (nil if none), plus whether the pool should grow in the background.
func (pp *poolPeer) pick() (best *muxConn, grow bool) {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	live := pp.conns[:0]
	for _, c := range pp.conns {
		if c.broken() {
			continue
		}
		live = append(live, c)
		if best == nil || c.load() < best.load() {
			best = c
		}
	}
	pp.conns = live
	grow = best != nil && !pp.growing && len(live) < pp.pool.o.Size && best.load() >= growInflight
	if grow {
		pp.growing = true
	}
	return best, grow
}

// grow dials one additional connection in the background. The dial is
// bounded by the pool's lifecycle context, and a connection that lands
// after Close (or after the pool refilled to Size) is failed rather
// than registered, so grow can never resurrect a closed peer.
func (pp *poolPeer) grow() {
	defer pp.pool.growWG.Done()
	ctx, cancel := context.WithTimeout(pp.pool.lifeCtx, pp.pool.o.DialTimeout)
	c, err := pp.dial(ctx)
	cancel()
	pp.mu.Lock()
	pp.growing = false
	if err == nil && pp.pool.lifeCtx.Err() == nil {
		if len(pp.conns) < pp.pool.o.Size {
			pp.conns = append(pp.conns, c)
			c = nil
		}
	}
	pp.mu.Unlock()
	if err == nil && c != nil {
		c.fail(fmt.Errorf("wire: pool full"))
	}
}

// dial opens, wraps and preambles one connection and starts its reader.
func (pp *poolPeer) dial(ctx context.Context) (*muxConn, error) {
	if err := ctx.Err(); err != nil {
		return nil, &NetError{Addr: pp.addr, Op: "dial", Sent: false, Err: context.Cause(ctx)}
	}
	o := &pp.pool.o
	timeout := o.DialTimeout
	if dl, ok := ctx.Deadline(); ok {
		if until := time.Until(dl); until < timeout {
			timeout = until
		}
	}
	if timeout <= 0 {
		return nil, &NetError{Addr: pp.addr, Op: "dial", Sent: false, Err: context.DeadlineExceeded}
	}
	conn, err := o.Dial(pp.addr, timeout)
	if err != nil {
		return nil, &NetError{Addr: pp.addr, Op: "dial", Sent: false, Err: err}
	}
	if o.ConnWrap != nil {
		conn = o.ConnWrap(conn)
	}
	if err := conn.SetWriteDeadline(time.Now().Add(o.WriteTimeout)); err != nil {
		conn.Close()
		return nil, &NetError{Addr: pp.addr, Op: "dial", Sent: false, Err: err}
	}
	var pre [preambleLen]byte
	if _, err := conn.Write(appendPreamble(pre[:0], o.Codec)); err != nil {
		conn.Close()
		return nil, &NetError{Addr: pp.addr, Op: "dial", Sent: false, Err: err}
	}
	c := &muxConn{
		conn:         conn,
		addr:         pp.addr,
		codec:        o.Codec,
		writeTimeout: o.WriteTimeout,
		nextTag:      1,
		pending:      make(map[uint64]chan muxResult),
	}
	go c.readLoop()
	return c, nil
}

func (pp *poolPeer) close() {
	pp.mu.Lock()
	conns := pp.conns
	pp.conns = nil
	pp.mu.Unlock()
	for _, c := range conns {
		c.fail(fmt.Errorf("wire: pool closed"))
	}
}

// muxResult carries one matched response (or the connection's failure)
// to its waiter.
type muxResult struct {
	resp Response
	err  error
}

// muxConn is one multiplexed connection: a single writer lock serializes
// tagged request frames out, one reader goroutine matches response
// frames back to waiting exchanges by tag.
type muxConn struct {
	conn         net.Conn
	addr         string
	codec        Codec
	writeTimeout time.Duration

	// wmu serializes frame writes; the write deadline is re-armed under
	// it for every frame.
	wmu sync.Mutex

	mu       sync.Mutex
	nextTag  uint64
	pending  map[uint64]chan muxResult
	inflight int
	failed   error // set once: the connection is dead
	strikes  int   // consecutive abandoned waits since the last completion
}

func (c *muxConn) load() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inflight
}

func (c *muxConn) broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failed != nil
}

// roundTrip runs one pipelined exchange: encode (no lock), register a
// tag, write the frame (write lock only around the deadline re-arm and
// the write), then wait for the reader to deliver the matching response
// or for ctx to cancel — cancellation abandons the tag without harming
// the connection's other exchanges.
func (c *muxConn) roundTrip(ctx context.Context, addr string, req Request) (Response, error) {
	pb := getFrameBuf()
	buf := append((*pb)[:0], frameHole[:]...)
	buf, encErr := c.codec.AppendRequest(buf, &req)
	if encErr != nil {
		*pb = buf
		putFrameBuf(pb)
		return Response{}, &NetError{Addr: addr, Op: "send", Sent: false, Err: encErr}
	}

	c.mu.Lock()
	if c.failed != nil {
		err := c.failed
		c.mu.Unlock()
		*pb = buf
		putFrameBuf(pb)
		return Response{}, &NetError{Addr: addr, Op: "send", Sent: false, Err: err}
	}
	tag := c.nextTag
	c.nextTag++
	ch := make(chan muxResult, 1)
	c.pending[tag] = ch
	c.inflight++
	c.mu.Unlock()
	putFrameHeader(buf, tag)

	c.wmu.Lock()
	// The wait for the write lock can outlive the exchange's deadline
	// (one slow writer queues every other exchange behind it). Re-check
	// before writing: an expired exchange releases its tag slot here and
	// sends nothing, instead of shipping a frame whose response nobody
	// will claim.
	if err := ctx.Err(); err != nil {
		c.wmu.Unlock()
		*pb = buf
		putFrameBuf(pb)
		c.forget(tag, false)
		return Response{}, &NetError{Addr: addr, Op: "send", Sent: false, Err: context.Cause(ctx)}
	}
	err := c.conn.SetWriteDeadline(time.Now().Add(c.writeTimeout))
	var n int
	if err == nil {
		n, err = c.conn.Write(buf)
	}
	c.wmu.Unlock()
	*pb = buf
	putFrameBuf(pb)
	if err != nil {
		c.forget(tag, false)
		c.fail(err)
		return Response{}, &NetError{Addr: addr, Op: "send", Sent: n > 0, Err: err}
	}

	select {
	case r := <-ch:
		if r.err != nil {
			return Response{}, r.err
		}
		if !r.resp.OK {
			return r.resp, &RemoteError{Type: req.Type, Msg: r.resp.Err}
		}
		return r.resp, nil
	case <-ctx.Done():
		if c.forget(tag, true) {
			c.fail(fmt.Errorf("wire: connection wedged (%d consecutive exchange timeouts)", wedgeStrikes))
		}
		return Response{}, &NetError{Addr: addr, Op: "call", Sent: true, Err: context.Cause(ctx)}
	}
}

// forget abandons a registered tag (cancelled wait or failed write). With
// strike set it counts toward the wedge detector and reports whether the
// connection should be torn down.
func (c *muxConn) forget(tag uint64, strike bool) (wedged bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.pending[tag]; !ok {
		return false // the reader beat us to it
	}
	delete(c.pending, tag)
	c.inflight--
	if strike {
		c.strikes++
		return c.strikes >= wedgeStrikes && c.failed == nil
	}
	return false
}

// fail marks the connection dead exactly once, failing every pending
// exchange and closing the conn. Later roundTrips see failed and bounce.
func (c *muxConn) fail(cause error) {
	c.mu.Lock()
	if c.failed != nil {
		c.mu.Unlock()
		return
	}
	c.failed = cause
	pending := c.pending
	c.pending = make(map[uint64]chan muxResult)
	c.inflight = 0
	c.mu.Unlock()
	c.conn.Close()
	for _, ch := range pending {
		ch <- muxResult{err: &NetError{Addr: c.addr, Op: "recv", Sent: true, Err: cause}}
	}
}

// readLoop is the connection's single reader: it decodes response frames
// and delivers each to the exchange that registered its tag. Any read or
// decode error kills the connection (and with it, all in-flight
// exchanges).
func (c *muxConn) readLoop() {
	br := bufio.NewReaderSize(c.conn, 4096)
	buf := make([]byte, 0, 512)
	for {
		payload, tag, err := readFrame(br, buf[:0])
		if err != nil {
			c.fail(err)
			return
		}
		buf = payload
		resp, derr := c.codec.DecodeResponse(payload)
		if derr != nil {
			c.fail(fmt.Errorf("wire: decoding response frame: %w", derr))
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[tag]
		if ok {
			delete(c.pending, tag)
			c.inflight--
			c.strikes = 0
		}
		c.mu.Unlock()
		if ok {
			ch <- muxResult{resp: resp}
		}
		// An unknown tag is an abandoned exchange: the response is
		// discarded, the connection stays healthy.
	}
}
