package wire

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// echoServer serves framed sessions on a fresh TCP listener, answering
// every request with handler.
func echoServer(t *testing.T, handler func(Request) Response) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { _ = ServeConn(conn, handler, ServeOptions{}) }()
		}
	}()
	return ln.Addr().String()
}

// callT is a one-shot Call bounded by timeout.
func callT(addr string, req Request, timeout time.Duration) (Response, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return Call(ctx, addr, req)
}

func TestCallRoundTrip(t *testing.T) {
	addr := echoServer(t, func(req Request) Response {
		if req.Type != TPut || req.Name != "k" || string(req.Value) != "v" {
			return Errorf("unexpected request %v", req.Type)
		}
		return Response{OK: true, Value: []byte("stored")}
	})
	resp, err := callT(addr, Request{Type: TPut, Name: "k", Value: []byte("v")}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Value) != "stored" {
		t.Errorf("value = %q", resp.Value)
	}
}

func TestCallRemoteError(t *testing.T) {
	addr := echoServer(t, func(req Request) Response {
		return Errorf("boom %d", 42)
	})
	_, err := callT(addr, Request{Type: TGet, Name: "x"}, 2*time.Second)
	var re *RemoteError
	if err == nil || !errors.As(err, &re) || re.Msg != "boom 42" {
		t.Errorf("want remote error, got %v", err)
	}
}

func TestCallDialFailure(t *testing.T) {
	if _, err := callT("127.0.0.1:1", Request{Type: TPing}, 300*time.Millisecond); err == nil {
		t.Error("dialing a dead port should fail")
	}
}

func TestCallTimeout(t *testing.T) {
	// A server that accepts but never responds.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stall := make(chan struct{})
	defer close(stall)
	go func() {
		for {
			conn, acceptErr := ln.Accept()
			if acceptErr != nil {
				return
			}
			defer conn.Close()
			buf := make([]byte, 1024)
			_, _ = conn.Read(buf) // swallow the request, say nothing
			<-stall
		}
	}()
	start := time.Now()
	_, err = callT(ln.Addr().String(), Request{Type: TPing}, 200*time.Millisecond)
	if err == nil {
		t.Fatal("silent server should time out")
	}
	if time.Since(start) > 2*time.Second {
		t.Error("timeout not honored")
	}
}

func TestCallHonorsContextCancel(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stall := make(chan struct{})
	defer close(stall)
	go func() {
		conn, acceptErr := ln.Accept()
		if acceptErr != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 1024)
		_, _ = conn.Read(buf)
		<-stall
	}()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, callErr := Call(ctx, ln.Addr().String(), Request{Type: TPing})
		done <- callErr
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("canceled call reported success")
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancellation cause not propagated: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancellation did not abort the call")
	}
}

func TestComplexPayloadsSurviveCodecs(t *testing.T) {
	table := RingTable{
		Layer: 2, Name: "1012",
		Smallest: Peer{Addr: "a:1", ID: [20]byte{1}},
		SecondSm: Peer{Addr: "b:2", ID: [20]byte{2}},
		Largest:  Peer{Addr: "c:3", ID: [20]byte{3}},
		SecondLg: Peer{Addr: "d:4", ID: [20]byte{4}},
	}
	addr := echoServer(t, func(req Request) Response {
		return Response{
			OK:        true,
			Table:     req.Table,
			Found:     true,
			Succ:      []Peer{req.Peer, req.Table.Largest},
			RingNames: []string{"1012", "2201"},
			Coord:     [2]float64{1.5, -2.5},
		}
	})
	for _, codec := range Codecs() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		resp, err := CallVia(ctx, nil, codec, addr, Request{
			Type:  TGetRingTable,
			Table: table,
			Peer:  Peer{Addr: "e:5", ID: [20]byte{5}},
		})
		cancel()
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		if resp.Table != table {
			t.Errorf("%s: table mangled: %+v", codec.Name(), resp.Table)
		}
		if len(resp.Succ) != 2 || resp.Succ[0].Addr != "e:5" {
			t.Errorf("%s: succ mangled: %+v", codec.Name(), resp.Succ)
		}
		if resp.RingNames[1] != "2201" || resp.Coord[1] != -2.5 {
			t.Errorf("%s: auxiliary fields mangled", codec.Name())
		}
		if !resp.Found {
			t.Errorf("%s: bool lost", codec.Name())
		}
	}
}

func TestMsgTypeStrings(t *testing.T) {
	names := map[MsgType]string{
		TPing: "ping", TGetInfo: "get_info", TFindClosest: "find_closest",
		TGetNeighbors: "get_neighbors", TNotify: "notify",
		TGetRingTable: "get_ring_table", TPutRingTable: "put_ring_table",
		TPut: "put", TGet: "get",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
	if MsgType(99).String() == "" {
		t.Error("unknown type should render")
	}
}
