package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"sync"
)

// Codec serializes the two protocol envelopes. Implementations are
// stateless values safe for concurrent use; the encode side appends to a
// caller-supplied buffer so hot paths (the pooled transport, the server
// session loop) can reuse frame buffers with zero allocations per call.
//
// Two codecs exist: Binary (the default wire format — length-checked,
// field-masked, reflection-free) and Gob (the original format, kept as a
// compatibility codec). A connection's codec is chosen by the client in
// the session preamble, so nodes answer either without configuration.
type Codec interface {
	// Name is the codec's registry name ("binary", "gob"), the value
	// accepted by CodecByName and the hieras-node -codec flag.
	Name() string
	// ID is the codec's preamble byte.
	ID() byte
	// AppendRequest appends one encoded request envelope to dst and
	// returns the extended slice.
	AppendRequest(dst []byte, req *Request) ([]byte, error)
	// DecodeRequest decodes one request envelope from a complete frame
	// payload. It must never panic on arbitrary input, and must not
	// retain data (decoded values own their memory).
	DecodeRequest(data []byte) (Request, error)
	// AppendResponse appends one encoded response envelope to dst.
	AppendResponse(dst []byte, resp *Response) ([]byte, error)
	// DecodeResponse decodes one response envelope from a frame payload.
	DecodeResponse(data []byte) (Response, error)
}

// Codec preamble identifiers (see preamble layout in session.go).
const (
	codecIDGob    byte = 1
	codecIDBinary byte = 2
)

// Codecs returns the registered codecs, default first.
func Codecs() []Codec { return []Codec{Binary{}, Gob{}} }

// DefaultCodec is the codec used when none is configured.
func DefaultCodec() Codec { return Binary{} }

// CodecByName resolves a codec flag value ("" = default).
func CodecByName(name string) (Codec, error) {
	switch name {
	case "", "binary":
		return Binary{}, nil
	case "gob":
		return Gob{}, nil
	}
	return nil, fmt.Errorf("wire: unknown codec %q (want binary or gob)", name)
}

// codecByID resolves a preamble byte on the server side.
func codecByID(id byte) (Codec, error) {
	switch id {
	case codecIDGob:
		return Gob{}, nil
	case codecIDBinary:
		return Binary{}, nil
	}
	return nil, fmt.Errorf("wire: unknown codec id %d", id)
}

// Gob is the compatibility codec: the envelopes encoded with
// encoding/gob, one self-describing stream per frame. It trades speed
// and allocations for schema lenience (unknown fields are skipped), so
// it remains useful for debugging and mixed-version experiments.
type Gob struct{}

// Name implements Codec.
func (Gob) Name() string { return "gob" }

// ID implements Codec.
func (Gob) ID() byte { return codecIDGob }

// AppendRequest implements Codec.
func (Gob) AppendRequest(dst []byte, req *Request) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(req); err != nil {
		return dst, err
	}
	return append(dst, buf.Bytes()...), nil
}

// DecodeRequest implements Codec.
func (Gob) DecodeRequest(data []byte) (Request, error) {
	var req Request
	err := gob.NewDecoder(bytes.NewReader(data)).Decode(&req)
	return req, err
}

// AppendResponse implements Codec.
func (Gob) AppendResponse(dst []byte, resp *Response) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(resp); err != nil {
		return dst, err
	}
	return append(dst, buf.Bytes()...), nil
}

// DecodeResponse implements Codec.
func (Gob) DecodeResponse(data []byte) (Response, error) {
	var resp Response
	err := gob.NewDecoder(bytes.NewReader(data)).Decode(&resp)
	return resp, err
}

// Frame layout, both directions, after the session preamble:
//
//	[4 bytes big-endian payload length][8 bytes big-endian tag][payload]
//
// The tag matches a response frame to its request on a multiplexed
// connection; one-shot exchanges use tag 1. The length counts payload
// bytes only.
const frameHeader = 12

// maxFramePayload bounds one frame so a corrupt or hostile length prefix
// cannot force a giant allocation.
const maxFramePayload = 64 << 20

// putFrameHeader writes the header into buf[0:frameHeader] for a frame
// whose total encoded form is buf (header + payload).
func putFrameHeader(buf []byte, tag uint64) {
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(buf)-frameHeader))
	binary.BigEndian.PutUint64(buf[4:12], tag)
}

// readFrame reads one frame from r, appending the payload to buf[:0]
// and returning the (possibly grown) buffer. A payload length above
// maxFramePayload is a protocol error.
func readFrame(r io.Reader, buf []byte) (payload []byte, tag uint64, err error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return buf, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n > maxFramePayload {
		return buf, 0, fmt.Errorf("wire: frame payload %d exceeds limit %d", n, maxFramePayload)
	}
	tag = binary.BigEndian.Uint64(hdr[4:12])
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return buf, tag, err
	}
	return buf, tag, nil
}

// frameBufPool recycles frame encode/decode buffers across calls; the
// pooled transport and the server session loop both draw from it, so a
// steady-state exchange allocates nothing for framing.
var frameBufPool = sync.Pool{
	New: func() interface{} {
		b := make([]byte, 0, 512)
		return &b
	},
}

func getFrameBuf() *[]byte  { return frameBufPool.Get().(*[]byte) }
func putFrameBuf(b *[]byte) { frameBufPool.Put(b) }
