package wire

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"repro/internal/metrics"
)

// RetryPolicy bounds how a failed call is reattempted. The zero value
// means "use defaults"; MaxAttempts 1 disables retrying entirely.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per call, first try
	// included (0 = default 3; values < 1 clamp to 1).
	MaxAttempts int
	// BaseBackoff is the sleep before the first retry; it doubles per
	// subsequent retry (0 = default 20ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the per-retry sleep (0 = default 500ms).
	MaxBackoff time.Duration
	// PerAttempt bounds each individual attempt: the retrier derives a
	// child context with this timeout per try, so one hung attempt
	// cannot eat the whole budget. 0 = DefaultTimeout; negative leaves
	// attempts bounded only by the caller's context.
	PerAttempt time.Duration
	// Overall, when positive, bounds the whole call including backoff
	// sleeps: a retry that cannot start before the budget expires is not
	// attempted. 0 leaves the total implicitly bounded by
	// MaxAttempts × (per-call timeout + backoff).
	Overall time.Duration
	// Seed seeds the jitter source (0 = 1). Jitter decorrelates retry
	// storms between peers; it never affects which calls are retried.
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 3
	}
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseBackoff == 0 {
		p.BaseBackoff = 20 * time.Millisecond
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = 500 * time.Millisecond
	}
	if p.PerAttempt == 0 {
		p.PerAttempt = DefaultTimeout
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// EffectiveAttempts returns the per-call attempt count after defaulting
// — what the transport layer uses to derive its eviction threshold.
func (p RetryPolicy) EffectiveAttempts() int { return p.withDefaults().MaxAttempts }

// BreakerPolicy configures the per-peer circuit breaker. The zero value
// means "use defaults"; a negative Threshold disables breaking.
type BreakerPolicy struct {
	// Threshold is the consecutive transport-failure count that opens a
	// peer's breaker (0 = default 5; negative disables the breaker).
	Threshold int
	// Cooldown is how long an open breaker rejects calls before letting
	// a probe through (half-open). 0 = default 2s.
	Cooldown time.Duration
}

func (p BreakerPolicy) withDefaults() BreakerPolicy {
	if p.Threshold == 0 {
		p.Threshold = 5
	}
	if p.Cooldown == 0 {
		p.Cooldown = 2 * time.Second
	}
	return p
}

const (
	stateClosed = iota
	stateOpen
	stateHalfOpen
)

// breaker is one peer's failure-suspicion record.
type breaker struct {
	fails    int // consecutive transport failures (reset by any success)
	state    int
	openedAt time.Time
}

// Retrier wraps a Caller with exponential-backoff retries and a per-peer
// circuit breaker. Retries are idempotency-aware (see Retryable): remote
// application errors are never retried, non-idempotent writes only when
// the request provably never reached the peer. The breaker doubles as
// the failure-suspicion tracker the transport layer consults before
// reporting a peer dead via TEvict.
type Retrier struct {
	inner Caller
	rp    RetryPolicy
	bp    BreakerPolicy

	mu    sync.Mutex
	rng   *rand.Rand
	peers map[string]*breaker

	retries  *metrics.Counter
	opens    *metrics.Counter
	closes   *metrics.Counter
	failFast *metrics.Counter
	openNow  *metrics.Gauge
}

// NewRetrier builds a retrying, breaker-guarded caller around inner.
// With a nil registry the counters are private throwaways.
func NewRetrier(inner Caller, rp RetryPolicy, bp BreakerPolicy, reg *metrics.Registry) *Retrier {
	rp = rp.withDefaults()
	bp = bp.withDefaults()
	r := &Retrier{
		inner: inner,
		rp:    rp,
		bp:    bp,
		rng:   rand.New(rand.NewSource(rp.Seed)),
		peers: make(map[string]*breaker),
	}
	if reg != nil {
		r.retries = reg.NewCounter("wire_retries_total",
			"RPC attempts beyond the first, across all peers.")
		r.opens = reg.NewCounter("wire_breaker_opens_total",
			"Circuit breaker transitions to open.")
		r.closes = reg.NewCounter("wire_breaker_closes_total",
			"Circuit breaker transitions back to closed.")
		r.failFast = reg.NewCounter("wire_breaker_fail_fast_total",
			"Calls rejected without dialing because the peer's breaker was open.")
		r.openNow = reg.NewGauge("wire_breaker_open",
			"Peers whose circuit breaker is currently open.")
	} else {
		r.retries = &metrics.Counter{}
		r.opens = &metrics.Counter{}
		r.closes = &metrics.Counter{}
		r.failFast = &metrics.Counter{}
		r.openNow = &metrics.Gauge{}
	}
	return r
}

// Call implements Caller with retries and breaker checks. The overall
// budget is the tighter of the caller's context deadline and the
// policy's Overall; each attempt additionally gets a PerAttempt child
// timeout, and backoff sleeps abort on cancellation.
func (r *Retrier) Call(ctx context.Context, addr string, req Request) (Response, error) {
	deadline, bounded := ctx.Deadline()
	if r.rp.Overall > 0 {
		if od := time.Now().Add(r.rp.Overall); !bounded || od.Before(deadline) {
			deadline, bounded = od, true
		}
	}
	var lastErr error
	for attempt := 0; attempt < r.rp.MaxAttempts; attempt++ {
		if attempt > 0 {
			sleep := r.backoff(attempt)
			if bounded && time.Now().Add(sleep).After(deadline) {
				break // out of overall budget; report the last failure
			}
			r.retries.Inc()
			timer := time.NewTimer(sleep)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return Response{}, lastErr // canceled mid-backoff: attempt > 0, so lastErr is set
			}
		}
		if ctx.Err() != nil {
			break
		}
		if !r.allow(addr) {
			r.failFast.Inc()
			return Response{}, &CircuitOpenError{Addr: addr}
		}
		resp, err := r.attempt(ctx, addr, req)
		if err == nil || IsRemote(err) {
			// Either outcome proves the peer is alive and responsive.
			r.succeed(addr)
			return resp, err
		}
		r.fail(addr)
		lastErr = err
		if !Retryable(req.Type, err) {
			return resp, err
		}
	}
	if lastErr == nil {
		// The context died before the first attempt ran: no peer
		// involvement, so Sent is false and no failure was recorded.
		lastErr = &NetError{Addr: addr, Op: "call", Sent: false, Err: context.Cause(ctx)}
	}
	return Response{}, lastErr
}

// attempt runs one try under the policy's per-attempt timeout.
func (r *Retrier) attempt(ctx context.Context, addr string, req Request) (Response, error) {
	if r.rp.PerAttempt <= 0 {
		return r.inner.Call(ctx, addr, req)
	}
	actx, cancel := context.WithTimeout(ctx, r.rp.PerAttempt)
	defer cancel()
	return r.inner.Call(actx, addr, req)
}

// backoff returns the jittered sleep before retry number `retry` (1 is
// the first retry): base doubled per step, capped, scaled into
// [0.5, 1.0) so simultaneous retriers decorrelate.
func (r *Retrier) backoff(retry int) time.Duration {
	d := r.rp.BaseBackoff << uint(retry-1)
	if d > r.rp.MaxBackoff || d <= 0 {
		d = r.rp.MaxBackoff
	}
	r.mu.Lock()
	f := 0.5 + 0.5*r.rng.Float64()
	r.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// allow reports whether a call to addr may proceed, moving an open
// breaker to half-open once its cooldown elapsed.
func (r *Retrier) allow(addr string) bool {
	if r.bp.Threshold < 0 {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.peers[addr]
	if !ok || b.state == stateClosed {
		return true
	}
	if b.state == stateOpen {
		if time.Since(b.openedAt) < r.bp.Cooldown {
			return false
		}
		b.state = stateHalfOpen // let a probe through
	}
	return true // half-open: probing
}

// succeed resets addr's failure record, closing its breaker.
func (r *Retrier) succeed(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.peers[addr]
	if !ok {
		return
	}
	if b.state != stateClosed {
		r.closes.Inc()
		r.openNow.Dec()
	}
	delete(r.peers, addr)
}

// fail records one transport failure against addr, opening the breaker
// at the threshold (or re-opening a half-open breaker whose probe failed).
func (r *Retrier) fail(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.peers[addr]
	if !ok {
		b = &breaker{}
		r.peers[addr] = b
	}
	b.fails++
	if r.bp.Threshold < 0 {
		return
	}
	if b.state == stateHalfOpen || (b.state == stateClosed && b.fails >= r.bp.Threshold) {
		if b.state == stateClosed {
			r.opens.Inc()
			r.openNow.Inc()
		}
		b.state = stateOpen
		b.openedAt = time.Now()
	}
}

// Retries returns the total number of retry attempts performed (attempts
// beyond each call's first, across all peers).
func (r *Retrier) Retries() uint64 { return r.retries.Value() }

// ConsecutiveFailures returns addr's current consecutive transport
// failure count — the suspicion level the transport layer compares
// against its eviction threshold.
func (r *Retrier) ConsecutiveFailures(addr string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if b, ok := r.peers[addr]; ok {
		return b.fails
	}
	return 0
}

// BreakerOpen reports whether addr's breaker is currently open or
// half-open (i.e. the peer is strongly suspected dead).
func (r *Retrier) BreakerOpen(addr string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.peers[addr]
	return ok && b.state != stateClosed
}
