package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Session preamble: the first bytes a client writes on a new connection,
// before any frame.
//
//	[0x00]['H']['W'][version u8][codec id u8][3 reserved zero bytes]
//
// The leading zero byte can never begin a gob stream or a frame of
// plausible length, so a peer speaking an older or foreign protocol fails
// fast with a clear error instead of a decode hang.
const (
	preambleLen     = 8
	protocolVersion = 1
)

// appendPreamble appends the session preamble for codec c.
func appendPreamble(dst []byte, c Codec) []byte {
	return append(dst, 0x00, 'H', 'W', protocolVersion, c.ID(), 0, 0, 0)
}

// readPreamble consumes and validates a session preamble, returning the
// codec the client chose.
func readPreamble(r io.Reader) (Codec, error) {
	var p [preambleLen]byte
	if _, err := io.ReadFull(r, p[:]); err != nil {
		return nil, err
	}
	if p[0] != 0x00 || p[1] != 'H' || p[2] != 'W' {
		return nil, fmt.Errorf("wire: bad session preamble %x", p[:3])
	}
	if p[3] != protocolVersion {
		return nil, fmt.Errorf("wire: unsupported protocol version %d", p[3])
	}
	return codecByID(p[4])
}

// Handler answers one decoded request. Handlers run on per-request
// goroutines and must not block on other RPCs to the same caller; the
// transport layer's handlers are pure local state transitions.
type Handler func(req Request) Response

// ServeOptions configures one server-side session (see ServeConn).
type ServeOptions struct {
	// WriteTimeout bounds each response write. The deadline is re-armed
	// from the current time for every frame, so it never accumulates
	// across the many exchanges of a long-lived multiplexed connection.
	// 0 means DefaultTimeout.
	WriteTimeout time.Duration
	// IdleTimeout bounds the wait for the next request frame; a pooled
	// client that goes quiet longer than this has its connection closed
	// (it will transparently redial). 0 means DefaultIdleTimeout.
	IdleTimeout time.Duration
	// Observe, when non-nil, is invoked once per served request with the
	// request type and whether the handler answered OK.
	Observe func(t MsgType, ok bool)
}

// DefaultIdleTimeout is how long a server session waits for the next
// request frame before closing an idle connection.
const DefaultIdleTimeout = 2 * time.Minute

// ServeConn runs one server-side session to completion: it reads the
// preamble, then serves framed requests — each on its own goroutine, so
// pipelined requests overlap and responses return in completion order,
// matched to their request by tag. It closes conn and waits for all
// in-flight handlers before returning. The returned error is nil for a
// clean shutdown (peer closed or idle timeout after a quiet period) and
// describes the protocol or I/O failure otherwise.
func ServeConn(conn net.Conn, h Handler, o ServeOptions) error {
	defer conn.Close()
	wt := o.WriteTimeout
	if wt <= 0 {
		wt = DefaultTimeout
	}
	idle := o.IdleTimeout
	if idle <= 0 {
		idle = DefaultIdleTimeout
	}

	if err := conn.SetReadDeadline(time.Now().Add(idle)); err != nil {
		return err
	}
	br := bufio.NewReaderSize(conn, 4096)
	codec, err := readPreamble(br)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil // probe connect-and-close
		}
		return err
	}

	var (
		wmu sync.Mutex
		wg  sync.WaitGroup
	)
	defer wg.Wait()

	pb := getFrameBuf()
	buf := *pb
	defer func() {
		*pb = buf
		putFrameBuf(pb)
	}()
	for {
		if err := conn.SetReadDeadline(time.Now().Add(idle)); err != nil {
			return err
		}
		payload, tag, rerr := readFrame(br, buf[:0])
		buf = payload
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				return nil // peer closed between frames: clean shutdown
			}
			return rerr
		}
		req, derr := codec.DecodeRequest(payload)
		if derr != nil {
			// Framing survives a bad payload, but a client whose encoder
			// disagrees with ours is not worth keeping: drop the session.
			return fmt.Errorf("wire: decoding request frame: %w", derr)
		}
		wg.Add(1)
		go func(tag uint64, req Request) {
			defer wg.Done()
			resp := h(req)
			if o.Observe != nil {
				o.Observe(req.Type, resp.OK)
			}
			writeFrame(conn, &wmu, codec, tag, &resp, wt)
		}(tag, req)
	}
}

// writeFrame encodes resp and writes it as one tagged frame. Encoding
// happens outside the write lock; the write deadline is re-armed per
// frame (never accumulated) while the lock is held, so one slow reader
// cannot extend another response's budget.
func writeFrame(conn net.Conn, wmu *sync.Mutex, codec Codec, tag uint64, resp *Response, timeout time.Duration) error {
	pb := getFrameBuf()
	buf := append((*pb)[:0], frameHole[:]...)
	buf, err := codec.AppendResponse(buf, resp)
	if err == nil {
		putFrameHeader(buf, tag)
		wmu.Lock()
		err = conn.SetWriteDeadline(time.Now().Add(timeout))
		if err == nil {
			_, err = conn.Write(buf)
		}
		wmu.Unlock()
	}
	*pb = buf
	putFrameBuf(pb)
	return err
}
