package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrConnRefused is wrapped (with %w) by Dial failures against closed
// or never-registered addresses, so callers match the condition with
// errors.Is instead of scraping the message text.
var ErrConnRefused = errors.New("connection refused")

// MemNet is an in-process transport: a registry of named listeners whose
// connections are synchronous in-memory pipes. It exists for the
// property-based invariant harness (internal/simcheck), which needs two
// things TCP loopback cannot give it:
//
//   - Deterministic addresses. A live node's identifier is derived from
//     its address, so ephemeral ports would place nodes differently on
//     the ring every run — and a shrunk failing program would stop
//     failing on replay. MemNet addresses are chosen names ("n0", "n1"),
//     identical in every run.
//   - Fail-fast dead peers. Dialing a closed MemNet listener errors
//     immediately instead of waiting out a kernel timeout, so fault
//     scenarios execute at memory speed.
//
// One MemNet is one isolated network: two harnesses in the same process
// never see each other's listeners.
type MemNet struct {
	mu        sync.Mutex
	listeners map[string]*memListener
}

// NewMemNet creates an empty in-process network.
func NewMemNet() *MemNet {
	return &MemNet{listeners: make(map[string]*memListener)}
}

// memAddr is the net.Addr of an in-memory endpoint.
type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return string(a) }

// memListener implements net.Listener over a channel of pipe ends.
type memListener struct {
	net    *MemNet
	name   string
	accept chan net.Conn
	closed chan struct{}
	once   sync.Once
}

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.closed:
		return nil, fmt.Errorf("memnet: listener %s closed", l.name)
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		l.net.mu.Lock()
		if l.net.listeners[l.name] == l {
			delete(l.net.listeners, l.name)
		}
		l.net.mu.Unlock()
	})
	return nil
}

func (l *memListener) Addr() net.Addr { return memAddr(l.name) }

// Listen registers a listener under the given name, which doubles as its
// address. The name must be unused.
func (m *MemNet) Listen(name string) (net.Listener, error) {
	if name == "" {
		return nil, fmt.Errorf("memnet: empty listener name")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.listeners[name]; ok {
		return nil, fmt.Errorf("memnet: address %s already in use", name)
	}
	l := &memListener{
		net:    m,
		name:   name,
		accept: make(chan net.Conn),
		closed: make(chan struct{}),
	}
	m.listeners[name] = l
	return l, nil
}

// Dial connects to a registered listener, handing it the server end of a
// fresh pipe. It is a DialFunc. A dead (closed or never-registered)
// address fails immediately.
func (m *MemNet) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	m.mu.Lock()
	l, ok := m.listeners[addr]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("memnet: connect %s: %w", addr, ErrConnRefused)
	}
	client, server := net.Pipe()
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case l.accept <- server:
		return client, nil
	case <-l.closed:
		client.Close()
		server.Close()
		return nil, fmt.Errorf("memnet: connect %s: %w", addr, ErrConnRefused)
	case <-timer:
		client.Close()
		server.Close()
		return nil, fmt.Errorf("memnet: connect %s: accept queue timeout", addr)
	}
}
