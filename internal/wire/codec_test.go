package wire

import (
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// testRequests is a spread of realistic envelopes covering every field.
func testRequests() []Request {
	return []Request{
		{Type: TPing},
		{Type: TFindClosest, Layer: 2, Key: [20]byte{0xde, 0xad}, Hierarchical: true},
		{Type: TNotify, Layer: 1, Peer: Peer{Addr: "n4:9000", ID: [20]byte{4}}},
		{Type: TLeavePred, Layer: 3, Peers: []Peer{{Addr: "a:1"}, {Addr: "b:2", ID: [20]byte{7}}}},
		{Type: TPutRingTable, Name: "1012", Table: RingTable{
			Layer: 2, Name: "1012",
			Smallest: Peer{Addr: "s:1", ID: [20]byte{1}},
			SecondSm: Peer{Addr: "s:2", ID: [20]byte{2}},
			Largest:  Peer{Addr: "l:1", ID: [20]byte{3}},
			SecondLg: Peer{Addr: "l:2", ID: [20]byte{4}},
		}},
		{Type: TPut, Name: "doc", Value: []byte("payload bytes")},
		{Type: TReplicate, Items: []StoreItem{
			{Key: "a", Value: []byte("1"), Version: 9, Writer: "n1:1#4"},
			{Key: "b", Version: 1, Writer: "n2:2#1"},
		}},
		{Type: TRouteGossip, Events: []RouteEvent{
			{Layer: 1, Ring: "global", Peer: Peer{Addr: "n1:9000", ID: [20]byte{1}}, Kind: RouteJoin, Stamp: 3},
			{Layer: 2, Ring: "1012", Peer: Peer{Addr: "n2:9000", ID: [20]byte{2}}, Kind: RouteEvict, Stamp: 11},
		}},
	}
}

func testResponses() []Response {
	return []Response{
		{OK: true},
		{OK: false, Err: "no such ring"},
		{OK: true, Next: Peer{Addr: "n:1", ID: [20]byte{8}}, Done: true, Owner: true},
		{OK: true, Self: Peer{Addr: "s:0", ID: [20]byte{1}},
			RingNames: []string{"10", "22"}, Landmarks: []string{"l:1", "l:2"},
			Coord: [2]float64{3.25, -8.5},
			Succ:  []Peer{{Addr: "x:1"}, {Addr: "y:2"}}, Pred: Peer{Addr: "p:3"}},
		{OK: true, Table: RingTable{Layer: 1, Name: "22", Largest: Peer{Addr: "m:5"}}, Found: true},
		{OK: true, Value: []byte("stored value"), Version: 12, Writer: "w:1#9", Applied: 3},
		{OK: true, Applied: 2, Events: []RouteEvent{
			{Layer: 1, Ring: "global", Peer: Peer{Addr: "n3:9000", ID: [20]byte{3}}, Kind: RouteLeave, Stamp: 8},
		}},
	}
}

// TestCodecCrossEquivalence pins that both codecs carry the same value
// model: any envelope encoded by one codec decodes (via its own decoder)
// to the same value the other codec round-trips.
func TestCodecCrossEquivalence(t *testing.T) {
	for _, req := range testRequests() {
		var decoded []Request
		for _, c := range Codecs() {
			enc, err := c.AppendRequest(nil, &req)
			if err != nil {
				t.Fatalf("%s: encode %v: %v", c.Name(), req.Type, err)
			}
			got, err := c.DecodeRequest(enc)
			if err != nil {
				t.Fatalf("%s: decode %v: %v", c.Name(), req.Type, err)
			}
			decoded = append(decoded, normalizeReq(got))
		}
		for i := 1; i < len(decoded); i++ {
			if !reflect.DeepEqual(decoded[0], decoded[i]) {
				t.Errorf("codecs disagree on request %v:\n  %s %#v\n  %s %#v",
					req.Type, Codecs()[0].Name(), decoded[0], Codecs()[i].Name(), decoded[i])
			}
		}
	}
	for _, resp := range testResponses() {
		var decoded []Response
		for _, c := range Codecs() {
			enc, err := c.AppendResponse(nil, &resp)
			if err != nil {
				t.Fatalf("%s: encode response: %v", c.Name(), err)
			}
			got, err := c.DecodeResponse(enc)
			if err != nil {
				t.Fatalf("%s: decode response: %v", c.Name(), err)
			}
			decoded = append(decoded, normalizeResp(got))
		}
		for i := 1; i < len(decoded); i++ {
			if !reflect.DeepEqual(decoded[0], decoded[i]) {
				t.Errorf("codecs disagree on response:\n  %s %#v\n  %s %#v",
					Codecs()[0].Name(), decoded[0], Codecs()[i].Name(), decoded[i])
			}
		}
	}
}

// corpusSeeds loads the committed fuzz corpus: each file is one
// `go test fuzz v1` entry holding a single []byte argument.
func corpusSeeds(t testing.TB) map[string][]byte {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeMessage")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read corpus dir: %v", err)
	}
	seeds := make(map[string][]byte)
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.SplitN(strings.TrimSpace(string(raw)), "\n", 2)
		if len(lines) != 2 || lines[0] != "go test fuzz v1" {
			t.Fatalf("%s: not a go test fuzz v1 file", e.Name())
		}
		arg := strings.TrimSpace(lines[1])
		arg = strings.TrimPrefix(arg, "[]byte(")
		arg = strings.TrimSuffix(arg, ")")
		data, err := strconv.Unquote(arg)
		if err != nil {
			t.Fatalf("%s: unquote corpus arg: %v", e.Name(), err)
		}
		seeds[e.Name()] = []byte(data)
	}
	return seeds
}

// TestCorpusCrossEquivalence replays the committed fuzz corpus (raw gob
// envelopes from the pre-codec wire format) through every codec pair:
// whatever the gob codec still decodes, the binary codec must represent
// identically.
func TestCorpusCrossEquivalence(t *testing.T) {
	seeds := corpusSeeds(t)
	if len(seeds) == 0 {
		t.Fatal("empty corpus")
	}
	decodedSomething := false
	for name, data := range seeds {
		for _, src := range Codecs() {
			if req, err := src.DecodeRequest(data); err == nil {
				decodedSomething = true
				for _, dst := range Codecs() {
					enc, err := dst.AppendRequest(nil, &req)
					if err != nil {
						t.Fatalf("%s: %s→%s encode: %v", name, src.Name(), dst.Name(), err)
					}
					got, err := dst.DecodeRequest(enc)
					if err != nil {
						t.Fatalf("%s: %s→%s decode: %v", name, src.Name(), dst.Name(), err)
					}
					if !reflect.DeepEqual(normalizeReq(req), normalizeReq(got)) {
						t.Errorf("%s: request lost in %s→%s transcoding:\n  %#v\n  %#v",
							name, src.Name(), dst.Name(), req, got)
					}
				}
			}
			if resp, err := src.DecodeResponse(data); err == nil {
				decodedSomething = true
				for _, dst := range Codecs() {
					enc, err := dst.AppendResponse(nil, &resp)
					if err != nil {
						t.Fatalf("%s: %s→%s encode: %v", name, src.Name(), dst.Name(), err)
					}
					got, err := dst.DecodeResponse(enc)
					if err != nil {
						t.Fatalf("%s: %s→%s decode: %v", name, src.Name(), dst.Name(), err)
					}
					if !reflect.DeepEqual(normalizeResp(resp), normalizeResp(got)) {
						t.Errorf("%s: response lost in %s→%s transcoding", name, src.Name(), dst.Name())
					}
				}
			}
		}
	}
	if !decodedSomething {
		t.Fatal("no corpus seed decoded under any codec; the corpus has rotted")
	}
}

// TestBinaryEncodeZeroAllocs pins the tentpole property: encoding into a
// presized buffer allocates nothing.
func TestBinaryEncodeZeroAllocs(t *testing.T) {
	reqs := testRequests()
	resps := testResponses()
	buf := make([]byte, 0, 4096)
	if n := testing.AllocsPerRun(200, func() {
		for i := range reqs {
			var err error
			buf, err = Binary{}.AppendRequest(buf[:0], &reqs[i])
			if err != nil {
				t.Fatal(err)
			}
		}
	}); n != 0 {
		t.Errorf("Binary.AppendRequest allocs/run = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		for i := range resps {
			var err error
			buf, err = Binary{}.AppendResponse(buf[:0], &resps[i])
			if err != nil {
				t.Fatal(err)
			}
		}
	}); n != 0 {
		t.Errorf("Binary.AppendResponse allocs/run = %v, want 0", n)
	}
}

func benchmarkAppendRequest(b *testing.B, c Codec) {
	reqs := testRequests()
	buf := make([]byte, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = c.AppendRequest(buf[:0], &reqs[i%len(reqs)])
		if err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkDecodeRequest(b *testing.B, c Codec) {
	reqs := testRequests()
	encoded := make([][]byte, len(reqs))
	for i := range reqs {
		var err error
		encoded[i], err = c.AppendRequest(nil, &reqs[i])
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.DecodeRequest(encoded[i%len(encoded)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendRequestBinary(b *testing.B) { benchmarkAppendRequest(b, Binary{}) }
func BenchmarkAppendRequestGob(b *testing.B)    { benchmarkAppendRequest(b, Gob{}) }
func BenchmarkDecodeRequestBinary(b *testing.B) { benchmarkDecodeRequest(b, Binary{}) }
func BenchmarkDecodeRequestGob(b *testing.B)    { benchmarkDecodeRequest(b, Gob{}) }
