package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary is the default wire codec: a hand-rolled, reflection-free,
// length-checked encoding of the two envelopes. The layout is
//
//	Request:  [type u8][field mask uvarint][present fields in order]
//	Response: [field mask uvarint][present fields in order]
//
// where the mask has one bit per envelope field (bools are carried by the
// mask itself) and a field is present iff it is non-zero, mirroring gob's
// omit-zero semantics so the two codecs are value-equivalent under the
// nil≡empty normalization the fuzz targets use. Scalars are varints
// (zigzag for signed), strings and byte slices are uvarint-length-prefixed,
// identifiers are 20 raw bytes, and composite values (Peer, RingTable,
// StoreItem) encode their fields unconditionally so re-encoding a decoded
// envelope is canonical. Encoding appends to the caller's buffer and
// allocates nothing; decoding validates every length claim against the
// remaining input and never panics.
type Binary struct{}

// Name implements Codec.
func (Binary) Name() string { return "binary" }

// ID implements Codec.
func (Binary) ID() byte { return codecIDBinary }

var (
	errTruncated = errors.New("wire: truncated binary envelope")
	errTrailing  = errors.New("wire: trailing bytes after binary envelope")
	errVarint    = errors.New("wire: malformed varint")
)

// Request field mask bits, in encode order.
const (
	rqLayer = 1 << iota
	rqKey
	rqName
	rqPeer
	rqPeers
	rqTable
	rqValue
	rqItems
	rqHierarchical // no body: the bit is the value
	rqKeyHi
	rqBuckets
	rqEvents

	rqKnown = rqEvents<<1 - 1
)

// Response field mask bits, in encode order. The four bools ride in the
// mask; the rest gate a body field.
const (
	rsOK = 1 << iota
	rsDone
	rsOwner
	rsFound
	rsErr
	rsNext
	rsSelf
	rsRingNames
	rsLandmarks
	rsCoord
	rsSucc
	rsPred
	rsTable
	rsValue
	rsVersion
	rsWriter
	rsApplied
	rsExpire
	rsTombstone // no body: the bit is the value
	rsDigests
	rsItems
	rsEvents

	rsKnown = rsEvents<<1 - 1
)

// AppendRequest implements Codec.
func (Binary) AppendRequest(dst []byte, req *Request) ([]byte, error) {
	dst = append(dst, byte(req.Type))
	var mask uint64
	if req.Layer != 0 {
		mask |= rqLayer
	}
	if req.Key != ([20]byte{}) {
		mask |= rqKey
	}
	if req.Name != "" {
		mask |= rqName
	}
	if req.Peer != (Peer{}) {
		mask |= rqPeer
	}
	if len(req.Peers) > 0 {
		mask |= rqPeers
	}
	if req.Table != (RingTable{}) {
		mask |= rqTable
	}
	if len(req.Value) > 0 {
		mask |= rqValue
	}
	if len(req.Items) > 0 {
		mask |= rqItems
	}
	if req.Hierarchical {
		mask |= rqHierarchical
	}
	if req.KeyHi != ([20]byte{}) {
		mask |= rqKeyHi
	}
	if len(req.Buckets) > 0 {
		mask |= rqBuckets
	}
	if len(req.Events) > 0 {
		mask |= rqEvents
	}
	dst = binary.AppendUvarint(dst, mask)
	if mask&rqLayer != 0 {
		dst = binary.AppendVarint(dst, int64(req.Layer))
	}
	if mask&rqKey != 0 {
		dst = append(dst, req.Key[:]...)
	}
	if mask&rqName != 0 {
		dst = appendString(dst, req.Name)
	}
	if mask&rqPeer != 0 {
		dst = appendPeer(dst, req.Peer)
	}
	if mask&rqPeers != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(req.Peers)))
		for _, p := range req.Peers {
			dst = appendPeer(dst, p)
		}
	}
	if mask&rqTable != 0 {
		dst = appendTable(dst, &req.Table)
	}
	if mask&rqValue != 0 {
		dst = appendBlob(dst, req.Value)
	}
	if mask&rqItems != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(req.Items)))
		for i := range req.Items {
			dst = appendItem(dst, &req.Items[i])
		}
	}
	if mask&rqKeyHi != 0 {
		dst = append(dst, req.KeyHi[:]...)
	}
	if mask&rqBuckets != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(req.Buckets)))
		for _, b := range req.Buckets {
			dst = binary.AppendUvarint(dst, uint64(b))
		}
	}
	if mask&rqEvents != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(req.Events)))
		for i := range req.Events {
			dst = appendEvent(dst, &req.Events[i])
		}
	}
	return dst, nil
}

// DecodeRequest implements Codec.
func (Binary) DecodeRequest(data []byte) (Request, error) {
	var req Request
	r := breader{b: data}
	t, err := r.u8()
	if err != nil {
		return req, err
	}
	req.Type = MsgType(t)
	mask, err := r.uvarint()
	if err != nil {
		return req, err
	}
	if mask&^uint64(rqKnown) != 0 {
		return req, fmt.Errorf("wire: unknown request field bits %#x", mask&^uint64(rqKnown))
	}
	if mask&rqLayer != 0 {
		if req.Layer, err = r.vint(); err != nil {
			return req, err
		}
	}
	if mask&rqKey != 0 {
		if req.Key, err = r.id(); err != nil {
			return req, err
		}
	}
	if mask&rqName != 0 {
		if req.Name, err = r.str(); err != nil {
			return req, err
		}
	}
	if mask&rqPeer != 0 {
		if req.Peer, err = r.peer(); err != nil {
			return req, err
		}
	}
	if mask&rqPeers != 0 {
		if req.Peers, err = r.peers(); err != nil {
			return req, err
		}
	}
	if mask&rqTable != 0 {
		if req.Table, err = r.table(); err != nil {
			return req, err
		}
	}
	if mask&rqValue != 0 {
		if req.Value, err = r.blob(); err != nil {
			return req, err
		}
	}
	if mask&rqItems != 0 {
		if req.Items, err = r.items(); err != nil {
			return req, err
		}
	}
	if mask&rqKeyHi != 0 {
		if req.KeyHi, err = r.id(); err != nil {
			return req, err
		}
	}
	if mask&rqBuckets != 0 {
		if req.Buckets, err = r.buckets(); err != nil {
			return req, err
		}
	}
	if mask&rqEvents != 0 {
		if req.Events, err = r.events(); err != nil {
			return req, err
		}
	}
	req.Hierarchical = mask&rqHierarchical != 0
	if r.off != len(r.b) {
		return req, errTrailing
	}
	return req, nil
}

// AppendResponse implements Codec.
func (Binary) AppendResponse(dst []byte, resp *Response) ([]byte, error) {
	var mask uint64
	if resp.OK {
		mask |= rsOK
	}
	if resp.Done {
		mask |= rsDone
	}
	if resp.Owner {
		mask |= rsOwner
	}
	if resp.Found {
		mask |= rsFound
	}
	if resp.Err != "" {
		mask |= rsErr
	}
	if resp.Next != (Peer{}) {
		mask |= rsNext
	}
	if resp.Self != (Peer{}) {
		mask |= rsSelf
	}
	if len(resp.RingNames) > 0 {
		mask |= rsRingNames
	}
	if len(resp.Landmarks) > 0 {
		mask |= rsLandmarks
	}
	if resp.Coord != ([2]float64{}) {
		mask |= rsCoord
	}
	if len(resp.Succ) > 0 {
		mask |= rsSucc
	}
	if resp.Pred != (Peer{}) {
		mask |= rsPred
	}
	if resp.Table != (RingTable{}) {
		mask |= rsTable
	}
	if len(resp.Value) > 0 {
		mask |= rsValue
	}
	if resp.Version != 0 {
		mask |= rsVersion
	}
	if resp.Writer != "" {
		mask |= rsWriter
	}
	if resp.Applied != 0 {
		mask |= rsApplied
	}
	if resp.Expire != 0 {
		mask |= rsExpire
	}
	if resp.Tombstone {
		mask |= rsTombstone
	}
	if len(resp.Digests) > 0 {
		mask |= rsDigests
	}
	if len(resp.Items) > 0 {
		mask |= rsItems
	}
	if len(resp.Events) > 0 {
		mask |= rsEvents
	}
	dst = binary.AppendUvarint(dst, mask)
	if mask&rsErr != 0 {
		dst = appendString(dst, resp.Err)
	}
	if mask&rsNext != 0 {
		dst = appendPeer(dst, resp.Next)
	}
	if mask&rsSelf != 0 {
		dst = appendPeer(dst, resp.Self)
	}
	if mask&rsRingNames != 0 {
		dst = appendStrings(dst, resp.RingNames)
	}
	if mask&rsLandmarks != 0 {
		dst = appendStrings(dst, resp.Landmarks)
	}
	if mask&rsCoord != 0 {
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(resp.Coord[0]))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(resp.Coord[1]))
	}
	if mask&rsSucc != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(resp.Succ)))
		for _, p := range resp.Succ {
			dst = appendPeer(dst, p)
		}
	}
	if mask&rsPred != 0 {
		dst = appendPeer(dst, resp.Pred)
	}
	if mask&rsTable != 0 {
		dst = appendTable(dst, &resp.Table)
	}
	if mask&rsValue != 0 {
		dst = appendBlob(dst, resp.Value)
	}
	if mask&rsVersion != 0 {
		dst = binary.AppendUvarint(dst, resp.Version)
	}
	if mask&rsWriter != 0 {
		dst = appendString(dst, resp.Writer)
	}
	if mask&rsApplied != 0 {
		dst = binary.AppendVarint(dst, int64(resp.Applied))
	}
	if mask&rsExpire != 0 {
		dst = binary.AppendUvarint(dst, resp.Expire)
	}
	if mask&rsDigests != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(resp.Digests)))
		for _, d := range resp.Digests {
			dst = binary.BigEndian.AppendUint64(dst, d)
		}
	}
	if mask&rsItems != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(resp.Items)))
		for i := range resp.Items {
			dst = appendItem(dst, &resp.Items[i])
		}
	}
	if mask&rsEvents != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(resp.Events)))
		for i := range resp.Events {
			dst = appendEvent(dst, &resp.Events[i])
		}
	}
	return dst, nil
}

// DecodeResponse implements Codec.
func (Binary) DecodeResponse(data []byte) (Response, error) {
	var resp Response
	r := breader{b: data}
	mask, err := r.uvarint()
	if err != nil {
		return resp, err
	}
	if mask&^uint64(rsKnown) != 0 {
		return resp, fmt.Errorf("wire: unknown response field bits %#x", mask&^uint64(rsKnown))
	}
	resp.OK = mask&rsOK != 0
	resp.Done = mask&rsDone != 0
	resp.Owner = mask&rsOwner != 0
	resp.Found = mask&rsFound != 0
	if mask&rsErr != 0 {
		if resp.Err, err = r.str(); err != nil {
			return resp, err
		}
	}
	if mask&rsNext != 0 {
		if resp.Next, err = r.peer(); err != nil {
			return resp, err
		}
	}
	if mask&rsSelf != 0 {
		if resp.Self, err = r.peer(); err != nil {
			return resp, err
		}
	}
	if mask&rsRingNames != 0 {
		if resp.RingNames, err = r.strings(); err != nil {
			return resp, err
		}
	}
	if mask&rsLandmarks != 0 {
		if resp.Landmarks, err = r.strings(); err != nil {
			return resp, err
		}
	}
	if mask&rsCoord != 0 {
		for i := 0; i < 2; i++ {
			raw, ferr := r.take(8)
			if ferr != nil {
				return resp, ferr
			}
			resp.Coord[i] = math.Float64frombits(binary.BigEndian.Uint64(raw))
		}
	}
	if mask&rsSucc != 0 {
		if resp.Succ, err = r.peers(); err != nil {
			return resp, err
		}
	}
	if mask&rsPred != 0 {
		if resp.Pred, err = r.peer(); err != nil {
			return resp, err
		}
	}
	if mask&rsTable != 0 {
		if resp.Table, err = r.table(); err != nil {
			return resp, err
		}
	}
	if mask&rsValue != 0 {
		if resp.Value, err = r.blob(); err != nil {
			return resp, err
		}
	}
	if mask&rsVersion != 0 {
		if resp.Version, err = r.uvarint(); err != nil {
			return resp, err
		}
	}
	if mask&rsWriter != 0 {
		if resp.Writer, err = r.str(); err != nil {
			return resp, err
		}
	}
	if mask&rsApplied != 0 {
		if resp.Applied, err = r.vint(); err != nil {
			return resp, err
		}
	}
	if mask&rsExpire != 0 {
		if resp.Expire, err = r.uvarint(); err != nil {
			return resp, err
		}
	}
	resp.Tombstone = mask&rsTombstone != 0
	if mask&rsDigests != 0 {
		if resp.Digests, err = r.digests(); err != nil {
			return resp, err
		}
	}
	if mask&rsItems != 0 {
		if resp.Items, err = r.items(); err != nil {
			return resp, err
		}
	}
	if mask&rsEvents != 0 {
		if resp.Events, err = r.events(); err != nil {
			return resp, err
		}
	}
	if r.off != len(r.b) {
		return resp, errTrailing
	}
	return resp, nil
}

// ---- encode helpers (append-only, no allocation beyond dst growth) ----

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBlob(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendStrings(dst []byte, ss []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ss)))
	for _, s := range ss {
		dst = appendString(dst, s)
	}
	return dst
}

func appendPeer(dst []byte, p Peer) []byte {
	dst = appendString(dst, p.Addr)
	return append(dst, p.ID[:]...)
}

func appendTable(dst []byte, t *RingTable) []byte {
	dst = binary.AppendVarint(dst, int64(t.Layer))
	dst = appendString(dst, t.Name)
	dst = appendPeer(dst, t.Smallest)
	dst = appendPeer(dst, t.SecondSm)
	dst = appendPeer(dst, t.Largest)
	return appendPeer(dst, t.SecondLg)
}

func appendEvent(dst []byte, ev *RouteEvent) []byte {
	dst = binary.AppendVarint(dst, int64(ev.Layer))
	dst = appendString(dst, ev.Ring)
	dst = appendPeer(dst, ev.Peer)
	dst = append(dst, ev.Kind)
	return binary.AppendUvarint(dst, ev.Stamp)
}

func appendItem(dst []byte, it *StoreItem) []byte {
	dst = appendString(dst, it.Key)
	dst = appendBlob(dst, it.Value)
	dst = binary.AppendUvarint(dst, it.Version)
	dst = appendString(dst, it.Writer)
	dst = binary.AppendUvarint(dst, it.Expire)
	var tomb byte
	if it.Tombstone {
		tomb = 1
	}
	return append(dst, tomb)
}

// ---- decode helpers ----

// breader walks an envelope payload with explicit bounds checks; every
// length claim is validated against the bytes actually remaining, so
// hostile input errors out instead of allocating or panicking.
type breader struct {
	b   []byte
	off int
}

func (r *breader) remaining() int { return len(r.b) - r.off }

func (r *breader) u8() (byte, error) {
	if r.remaining() < 1 {
		return 0, errTruncated
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *breader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		if n == 0 {
			return 0, errTruncated
		}
		return 0, errVarint
	}
	r.off += n
	return v, nil
}

func (r *breader) vint() (int, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		if n == 0 {
			return 0, errTruncated
		}
		return 0, errVarint
	}
	r.off += n
	return int(v), nil
}

func (r *breader) take(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, errTruncated
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v, nil
}

// length reads a count/size claim and rejects anything that cannot fit in
// the remaining input given a minimum encoded size per unit.
func (r *breader) length(minUnit int) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(r.remaining()/minUnit) {
		return 0, errTruncated
	}
	return int(v), nil
}

func (r *breader) str() (string, error) {
	n, err := r.length(1)
	if err != nil {
		return "", err
	}
	raw, err := r.take(n)
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

// blob returns a copy: frame payload buffers are pooled, so decoded
// values must own their memory.
func (r *breader) blob() ([]byte, error) {
	n, err := r.length(1)
	if err != nil {
		return nil, err
	}
	raw, err := r.take(n)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil // canonical: absent and empty are the same value
	}
	out := make([]byte, n)
	copy(out, raw)
	return out, nil
}

func (r *breader) strings() ([]string, error) {
	n, err := r.length(1)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		s, err := r.str()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (r *breader) id() ([20]byte, error) {
	var id [20]byte
	raw, err := r.take(len(id))
	if err != nil {
		return id, err
	}
	copy(id[:], raw)
	return id, nil
}

func (r *breader) peer() (Peer, error) {
	var p Peer
	var err error
	if p.Addr, err = r.str(); err != nil {
		return p, err
	}
	p.ID, err = r.id()
	return p, err
}

func (r *breader) peers() ([]Peer, error) {
	// A peer is at least 21 bytes (empty-addr length prefix + raw ID).
	n, err := r.length(21)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]Peer, 0, n)
	for i := 0; i < n; i++ {
		p, err := r.peer()
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func (r *breader) table() (RingTable, error) {
	var t RingTable
	var err error
	if t.Layer, err = r.vint(); err != nil {
		return t, err
	}
	if t.Name, err = r.str(); err != nil {
		return t, err
	}
	for _, dst := range []*Peer{&t.Smallest, &t.SecondSm, &t.Largest, &t.SecondLg} {
		if *dst, err = r.peer(); err != nil {
			return t, err
		}
	}
	return t, nil
}

func (r *breader) items() ([]StoreItem, error) {
	// A store item is at least 6 bytes (three length prefixes, version,
	// expire and the tombstone byte).
	n, err := r.length(6)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]StoreItem, 0, n)
	for i := 0; i < n; i++ {
		var it StoreItem
		if it.Key, err = r.str(); err != nil {
			return nil, err
		}
		if it.Value, err = r.blob(); err != nil {
			return nil, err
		}
		if it.Version, err = r.uvarint(); err != nil {
			return nil, err
		}
		if it.Writer, err = r.str(); err != nil {
			return nil, err
		}
		if it.Expire, err = r.uvarint(); err != nil {
			return nil, err
		}
		tomb, err := r.u8()
		if err != nil {
			return nil, err
		}
		if tomb > 1 {
			return nil, fmt.Errorf("wire: store item tombstone byte %d", tomb)
		}
		it.Tombstone = tomb == 1
		out = append(out, it)
	}
	return out, nil
}

func (r *breader) events() ([]RouteEvent, error) {
	// A route event is at least 25 bytes (layer varint, empty-ring length
	// prefix, peer, kind byte, stamp varint).
	n, err := r.length(25)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]RouteEvent, 0, n)
	for i := 0; i < n; i++ {
		var ev RouteEvent
		if ev.Layer, err = r.vint(); err != nil {
			return nil, err
		}
		if ev.Ring, err = r.str(); err != nil {
			return nil, err
		}
		if ev.Peer, err = r.peer(); err != nil {
			return nil, err
		}
		if ev.Kind, err = r.u8(); err != nil {
			return nil, err
		}
		if ev.Kind > RouteEvict {
			return nil, fmt.Errorf("wire: route event kind byte %d", ev.Kind)
		}
		if ev.Stamp, err = r.uvarint(); err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	return out, nil
}

func (r *breader) buckets() ([]uint32, error) {
	// A bucket index is at least one varint byte.
	n, err := r.length(1)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		v, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if v > math.MaxUint32 {
			return nil, fmt.Errorf("wire: bucket index %d overflows uint32", v)
		}
		out = append(out, uint32(v))
	}
	return out, nil
}

func (r *breader) digests() ([]uint64, error) {
	n, err := r.length(8)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		raw, err := r.take(8)
		if err != nil {
			return nil, err
		}
		out = append(out, binary.BigEndian.Uint64(raw))
	}
	return out, nil
}
