package wire

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

// scriptCaller replays a scripted sequence of outcomes and records the
// calls it received.
type scriptCaller struct {
	mu    sync.Mutex
	outs  []error
	calls int
}

func (s *scriptCaller) Call(ctx context.Context, addr string, req Request) (Response, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.calls < len(s.outs) {
		err = s.outs[s.calls]
	}
	s.calls++
	if err != nil {
		return Response{}, err
	}
	return Response{OK: true}, nil
}

func (s *scriptCaller) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func fastRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}
}

func dialErr(addr string) error {
	return &NetError{Addr: addr, Op: "dial", Sent: false, Err: errors.New("refused")}
}

func recvErr(addr string) error {
	return &NetError{Addr: addr, Op: "recv", Sent: true, Err: errors.New("timeout")}
}

func TestTypedErrors(t *testing.T) {
	addr := echoServer(t, func(req Request) Response { return Errorf("nope") })
	_, err := callT(addr, Request{Type: TGet, Name: "x"}, 2*time.Second)
	var re *RemoteError
	if !errors.As(err, &re) || re.Type != TGet || !strings.Contains(re.Msg, "nope") {
		t.Fatalf("want RemoteError, got %#v", err)
	}
	if !IsRemote(err) {
		t.Error("IsRemote(RemoteError) = false")
	}
	_, err = callT("127.0.0.1:1", Request{Type: TPing}, 300*time.Millisecond)
	var ne *NetError
	if !errors.As(err, &ne) || ne.Op != "dial" || ne.Sent {
		t.Fatalf("want unsent dial NetError, got %#v", err)
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		t    MsgType
		err  error
		want bool
	}{
		{TGet, &RemoteError{Type: TGet, Msg: "missing"}, false}, // app error: never
		{TPut, dialErr("a"), true},                              // never sent: always
		{TPut, recvErr("a"), false},                             // maybe applied: unsafe
		{TNotify, recvErr("a"), false},                          // maybe applied: unsafe
		{TFindClosest, recvErr("a"), true},                      // idempotent read
		{TEvict, recvErr("a"), true},                            // purging twice is a no-op
		{TPing, &CircuitOpenError{Addr: "a"}, false},            // breaker decides, not retry
		{TPing, nil, false},
	}
	for i, c := range cases {
		if got := Retryable(c.t, c.err); got != c.want {
			t.Errorf("case %d: Retryable(%v, %v) = %v, want %v", i, c.t, c.err, got, c.want)
		}
	}
}

func TestRetrierRecoversTransientFailure(t *testing.T) {
	reg := metrics.NewRegistry()
	sc := &scriptCaller{outs: []error{dialErr("p"), dialErr("p"), nil}}
	r := NewRetrier(sc, fastRetry(), BreakerPolicy{}, reg)
	resp, err := r.Call(context.Background(), "p", Request{Type: TPing})
	if err != nil || !resp.OK {
		t.Fatalf("call failed: %v", err)
	}
	if sc.count() != 3 {
		t.Errorf("attempts = %d, want 3", sc.count())
	}
	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "wire_retries_total 2") {
		t.Errorf("exposition missing retry count:\n%s", b.String())
	}
}

func TestRetrierNeverRetriesRemoteErrors(t *testing.T) {
	sc := &scriptCaller{outs: []error{&RemoteError{Type: TGet, Msg: "missing"}}}
	r := NewRetrier(sc, fastRetry(), BreakerPolicy{}, nil)
	_, err := r.Call(context.Background(), "p", Request{Type: TGet})
	if !IsRemote(err) {
		t.Fatalf("want RemoteError through, got %v", err)
	}
	if sc.count() != 1 {
		t.Errorf("remote error retried: %d attempts", sc.count())
	}
	if r.ConsecutiveFailures("p") != 0 {
		t.Error("remote error counted as peer failure")
	}
}

func TestRetrierIdempotencyAware(t *testing.T) {
	// A non-idempotent put whose request may have been applied: one shot.
	sc := &scriptCaller{outs: []error{recvErr("p")}}
	r := NewRetrier(sc, fastRetry(), BreakerPolicy{}, nil)
	if _, err := r.Call(context.Background(), "p", Request{Type: TPut, Name: "k"}); err == nil {
		t.Fatal("want failure")
	}
	if sc.count() != 1 {
		t.Errorf("unsafe put retried: %d attempts", sc.count())
	}
	// The same put failing at dial never reached the peer: retried.
	sc2 := &scriptCaller{outs: []error{dialErr("p"), nil}}
	r2 := NewRetrier(sc2, fastRetry(), BreakerPolicy{}, nil)
	if _, err := r2.Call(context.Background(), "p", Request{Type: TPut, Name: "k"}); err != nil {
		t.Fatalf("unsent put not retried: %v", err)
	}
	if sc2.count() != 2 {
		t.Errorf("attempts = %d, want 2", sc2.count())
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	reg := metrics.NewRegistry()
	sc := &scriptCaller{outs: []error{
		dialErr("p"), dialErr("p"), dialErr("p"), // opens at threshold 3
	}}
	r := NewRetrier(sc, fastRetry(), BreakerPolicy{Threshold: 3, Cooldown: 30 * time.Millisecond}, reg)
	if _, err := r.Call(context.Background(), "p", Request{Type: TPing}); err == nil {
		t.Fatal("want failure")
	}
	if !r.BreakerOpen("p") {
		t.Fatal("breaker not open after threshold failures")
	}
	if r.ConsecutiveFailures("p") != 3 {
		t.Errorf("failures = %d", r.ConsecutiveFailures("p"))
	}
	// While open: fail fast without touching the peer.
	before := sc.count()
	_, err := r.Call(context.Background(), "p", Request{Type: TPing})
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen, got %v", err)
	}
	if sc.count() != before {
		t.Error("open breaker still dialed the peer")
	}
	// After the cooldown a probe goes through; success closes the breaker.
	time.Sleep(40 * time.Millisecond)
	if _, err := r.Call(context.Background(), "p", Request{Type: TPing}); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if r.BreakerOpen("p") || r.ConsecutiveFailures("p") != 0 {
		t.Error("breaker did not close after successful probe")
	}
	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"wire_breaker_opens_total 1",
		"wire_breaker_closes_total 1",
		"wire_breaker_fail_fast_total 1",
		"wire_breaker_open 0",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, b.String())
		}
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	sc := &scriptCaller{} // no script: every call fails below
	fail := CallerFunc(func(ctx context.Context, addr string, req Request) (Response, error) {
		sc.Call(ctx, addr, req)
		return Response{}, dialErr(addr)
	})
	r := NewRetrier(fail, RetryPolicy{MaxAttempts: 1}, BreakerPolicy{Threshold: 1, Cooldown: 10 * time.Millisecond}, nil)
	if _, err := r.Call(context.Background(), "p", Request{Type: TPing}); err == nil {
		t.Fatal("want failure")
	}
	time.Sleep(15 * time.Millisecond)
	if _, err := r.Call(context.Background(), "p", Request{Type: TPing}); err == nil {
		t.Fatal("want probe failure")
	}
	if !r.BreakerOpen("p") {
		t.Error("failed probe did not reopen the breaker")
	}
	// The reopened breaker rejects again without dialing.
	before := sc.count()
	if _, err := r.Call(context.Background(), "p", Request{Type: TPing}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen, got %v", err)
	}
	if sc.count() != before {
		t.Error("reopened breaker dialed the peer")
	}
}

func TestRetrierOverallBudget(t *testing.T) {
	sc := &scriptCaller{outs: []error{dialErr("p"), dialErr("p"), dialErr("p"), dialErr("p")}}
	r := NewRetrier(sc, RetryPolicy{
		MaxAttempts: 4, BaseBackoff: 50 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond, Overall: 60 * time.Millisecond,
	}, BreakerPolicy{Threshold: -1}, nil)
	start := time.Now()
	if _, err := r.Call(context.Background(), "p", Request{Type: TPing}); err == nil {
		t.Fatal("want failure")
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Errorf("overall budget not honored: %v", elapsed)
	}
	if sc.count() >= 4 {
		t.Errorf("attempts = %d, want < 4 under the overall budget", sc.count())
	}
}

func TestWriteFrameStalledReader(t *testing.T) {
	// A client that sends a request and then never reads: the server-side
	// frame write must error out once its per-frame deadline fires instead
	// of pinning the handler goroutine forever. net.Pipe has no buffering,
	// so the write blocks immediately.
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	var wmu sync.Mutex
	done := make(chan error, 1)
	go func() {
		resp := Response{OK: true, Value: make([]byte, 1<<20)}
		done <- writeFrame(server, &wmu, Binary{}, 1, &resp, 200*time.Millisecond)
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("stalled-reader write reported success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("writeFrame blocked past its deadline on a stalled reader")
	}
}

func TestWriteDeadlineResetPerFrame(t *testing.T) {
	// Regression for the pooled-connection deadline bug: the write
	// deadline must be re-armed from the current time for every frame. An
	// implementation that arms it once per connection would fail the later
	// exchanges of a long-lived session, because by then the original
	// deadline has passed.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, acceptErr := ln.Accept()
			if acceptErr != nil {
				return
			}
			go func() {
				_ = ServeConn(conn, func(req Request) Response {
					return Response{OK: true, Err: req.Name}
				}, ServeOptions{WriteTimeout: 150 * time.Millisecond})
			}()
		}
	}()
	p := NewPool(PoolOptions{Size: 1, WriteTimeout: 150 * time.Millisecond})
	defer p.Close()
	addr := ln.Addr().String()
	for i := 0; i < 4; i++ {
		if i > 0 {
			// Sit out longer than the per-frame write timeout between
			// exchanges; only an accumulated deadline would expire.
			time.Sleep(200 * time.Millisecond)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		resp, callErr := p.Call(ctx, addr, Request{Type: TPing, Name: "seq"})
		cancel()
		if callErr != nil {
			t.Fatalf("exchange %d over reused connection: %v", i, callErr)
		}
		if resp.Err != "seq" {
			t.Fatalf("exchange %d echoed %q", i, resp.Err)
		}
	}
}

func TestMsgTypeIdempotencyTable(t *testing.T) {
	if Idempotent(TPut) || Idempotent(TNotify) || Idempotent(TPutRingTable) ||
		Idempotent(TLeaveSucc) || Idempotent(TLeavePred) {
		t.Error("state-installing writes must not be idempotent")
	}
	for _, typ := range []MsgType{TPing, TGetInfo, TFindClosest, TGetNeighbors, TGetRingTable, TGet, TEvict} {
		if !Idempotent(typ) {
			t.Errorf("%v should be idempotent", typ)
		}
	}
	// The replica store writes are version-guarded merges: replaying a
	// delivered write merges to a no-op, so they retry safely even when
	// the first attempt may have been applied.
	for _, typ := range []MsgType{TStorePut, TStoreGet, TReplicate, THandoff} {
		if !Idempotent(typ) {
			t.Errorf("%v should be idempotent (version-guarded merge)", typ)
		}
	}
	// Anti-entropy exchanges are reads over the receiver's store.
	for _, typ := range []MsgType{TDigest, TSyncPull} {
		if !Idempotent(typ) {
			t.Errorf("%v should be idempotent (anti-entropy read)", typ)
		}
	}
	// Route gossip is a stamp-guarded merge: replays are no-ops.
	if !Idempotent(TRouteGossip) {
		t.Error("TRouteGossip should be idempotent (stamp-guarded merge)")
	}
}
