package wire

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// echoServe answers every request on ln with an OK response carrying the
// request's Name back in Err (abusing the field as a payload for the test).
func echoServe(t *testing.T, ln net.Listener, wg *sync.WaitGroup) {
	t.Helper()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				_ = ServeConn(c, func(req Request) Response {
					return Response{OK: true, Err: req.Name}
				}, ServeOptions{})
			}(conn)
		}
	}()
}

// callVia performs one one-shot exchange over dial bounded by timeout.
func callVia(dial DialFunc, addr string, req Request, timeout time.Duration) (Response, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return CallVia(ctx, dial, nil, addr, req)
}

func TestMemNetCall(t *testing.T) {
	mn := NewMemNet()
	ln, err := mn.Listen("n0")
	if err != nil {
		t.Fatal(err)
	}
	if got := ln.Addr().String(); got != "n0" {
		t.Fatalf("Addr = %q, want n0", got)
	}
	var wg sync.WaitGroup
	echoServe(t, ln, &wg)

	resp, err := callVia(mn.Dial, "n0", Request{Type: TPing, Name: "hello"}, time.Second)
	if err != nil {
		t.Fatalf("CallVia: %v", err)
	}
	if resp.Err != "hello" {
		t.Fatalf("echoed %q, want hello", resp.Err)
	}

	ln.Close()
	wg.Wait()
	if _, err := callVia(mn.Dial, "n0", Request{Type: TPing}, time.Second); err == nil {
		t.Fatal("dial to closed listener succeeded")
	} else if !errors.Is(err, ErrConnRefused) {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestMemNetDialUnknownFailsFast(t *testing.T) {
	mn := NewMemNet()
	start := time.Now()
	_, err := mn.Dial("ghost", 5*time.Second)
	if err == nil {
		t.Fatal("dial to unregistered name succeeded")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("dial to dead peer took %v, want immediate failure", elapsed)
	}
}

func TestMemNetDuplicateName(t *testing.T) {
	mn := NewMemNet()
	if _, err := mn.Listen("n0"); err != nil {
		t.Fatal(err)
	}
	if _, err := mn.Listen("n0"); err == nil {
		t.Fatal("duplicate Listen succeeded")
	}
	if _, err := mn.Listen(""); err == nil {
		t.Fatal("empty-name Listen succeeded")
	}
}

func TestMemNetIsolation(t *testing.T) {
	a, b := NewMemNet(), NewMemNet()
	if _, err := a.Listen("n0"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Dial("n0", time.Second); err == nil {
		t.Fatal("listener leaked across MemNet instances")
	}
}

func TestMemNetReleaseNameAfterClose(t *testing.T) {
	mn := NewMemNet()
	ln, err := mn.Listen("n0")
	if err != nil {
		t.Fatal(err)
	}
	ln.Close()
	ln.Close() // idempotent
	if _, err := mn.Listen("n0"); err != nil {
		t.Fatalf("name not released after close: %v", err)
	}
}
