package wire

import (
	"net"
	"time"

	"repro/internal/metrics"
)

// AllMsgTypes lists every protocol operation, so instrumentation can
// pre-curry per-type child metrics once instead of formatting label
// values on the hot path.
var AllMsgTypes = []MsgType{
	TPing, TGetInfo, TFindClosest, TGetNeighbors, TNotify, TGetRingTable,
	TPutRingTable, TPut, TGet, TLeaveSucc, TLeavePred, TEvict,
}

// CountingConn wraps a net.Conn and tallies bytes read and written. The
// counters are plain ints: a wire exchange is handled by one goroutine.
type CountingConn struct {
	net.Conn
	ReadBytes    int64
	WrittenBytes int64
}

func (c *CountingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.ReadBytes += int64(n)
	return n, err
}

func (c *CountingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.WrittenBytes += int64(n)
	return n, err
}

// Metrics instruments the wire protocol against a metrics registry:
// per-MsgType request and error counts for both the client and server
// roles, total bytes in/out, and a call-latency histogram. One Metrics
// belongs to one registry (and, in practice, one node).
type Metrics struct {
	// Dial, when non-nil, replaces TCP as the transport for outgoing
	// calls (see DialFunc). Set it before the first Call.
	Dial DialFunc

	latency  *metrics.Histogram
	bytesIn  *metrics.Counter
	bytesOut *metrics.Counter

	reqVec, errVec       *metrics.CounterVec
	srvReqVec, srvErrVec *metrics.CounterVec
	// Pre-curried children indexed by MsgType (index 0 unused).
	reqs, errs, srvReqs, srvErrs [TEvict + 1]*metrics.Counter
}

// NewMetrics registers the wire metric families on reg.
func NewMetrics(reg *metrics.Registry) *Metrics {
	m := &Metrics{
		latency: reg.NewHistogram("rpc_latency_seconds",
			"Outgoing RPC latency, dial through response decode.", metrics.DefLatencyBuckets),
		bytesIn: reg.NewCounter("rpc_bytes_in_total",
			"Bytes read from wire connections, both roles."),
		bytesOut: reg.NewCounter("rpc_bytes_out_total",
			"Bytes written to wire connections, both roles."),
		reqVec: reg.NewCounterVec("rpc_requests_total",
			"Outgoing RPCs by message type.", "type"),
		errVec: reg.NewCounterVec("rpc_errors_total",
			"Outgoing RPCs that failed, by message type.", "type"),
		srvReqVec: reg.NewCounterVec("rpc_server_requests_total",
			"Requests served, by message type.", "type"),
		srvErrVec: reg.NewCounterVec("rpc_server_errors_total",
			"Requests answered with an error, by message type.", "type"),
	}
	for _, t := range AllMsgTypes {
		m.reqs[t] = m.reqVec.With(t.String())
		m.errs[t] = m.errVec.With(t.String())
		m.srvReqs[t] = m.srvReqVec.With(t.String())
		m.srvErrs[t] = m.srvErrVec.With(t.String())
	}
	return m
}

func pick(curried *[TEvict + 1]*metrics.Counter, vec *metrics.CounterVec, t MsgType) *metrics.Counter {
	if int(t) < len(curried) && curried[t] != nil {
		return curried[t]
	}
	return vec.With(t.String())
}

// Call performs one instrumented RPC (see Call) and records its type,
// outcome, byte counts and latency.
func (m *Metrics) Call(addr string, req Request, timeout time.Duration) (Response, error) {
	start := time.Now()
	resp, in, out, err := exchange(m.Dial, addr, req, timeout)
	m.latency.Observe(time.Since(start).Seconds())
	m.bytesIn.Add(uint64(in))
	m.bytesOut.Add(uint64(out))
	pick(&m.reqs, m.reqVec, req.Type).Inc()
	if err != nil {
		pick(&m.errs, m.errVec, req.Type).Inc()
	}
	return resp, err
}

// ObserveServed records one server-side exchange: the request type, how
// it was answered, and the connection's byte counts.
func (m *Metrics) ObserveServed(t MsgType, ok bool, bytesIn, bytesOut int64) {
	pick(&m.srvReqs, m.srvReqVec, t).Inc()
	if !ok {
		pick(&m.srvErrs, m.srvErrVec, t).Inc()
	}
	m.bytesIn.Add(uint64(bytesIn))
	m.bytesOut.Add(uint64(bytesOut))
}
