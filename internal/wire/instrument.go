package wire

import (
	"context"
	"net"
	"time"

	"repro/internal/metrics"
)

// AllMsgTypes lists every protocol operation, so instrumentation can
// pre-curry per-type child metrics once instead of formatting label
// values on the hot path.
var AllMsgTypes = []MsgType{
	TPing, TGetInfo, TFindClosest, TGetNeighbors, TNotify, TGetRingTable,
	TPutRingTable, TPut, TGet, TLeaveSucc, TLeavePred, TEvict,
	TStorePut, TStoreGet, TReplicate, THandoff,
}

// CountingConn wraps a net.Conn and tallies bytes read and written. The
// counters are plain ints: use it only where one goroutine owns the
// connection (tests, one-shot probes); multiplexed connections use the
// atomic counters of Metrics.CountConn.
type CountingConn struct {
	net.Conn
	ReadBytes    int64
	WrittenBytes int64
}

func (c *CountingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.ReadBytes += int64(n)
	return n, err
}

func (c *CountingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.WrittenBytes += int64(n)
	return n, err
}

// Metrics instruments the wire protocol against a metrics registry:
// per-MsgType request and error counts for both the client and server
// roles, total bytes in/out, and a call-latency histogram. One Metrics
// belongs to one registry (and, in practice, one node). It is a set of
// seams, matching the redesigned call path: Wrap instruments a Caller
// (whatever pool/retrier stack sits beneath it), CountConn meters a
// connection's bytes in either role, ObserveServed tallies one served
// request.
type Metrics struct {
	latency  *metrics.Histogram
	bytesIn  *metrics.Counter
	bytesOut *metrics.Counter

	reqVec, errVec       *metrics.CounterVec
	srvReqVec, srvErrVec *metrics.CounterVec
	// Pre-curried children indexed by MsgType (index 0 unused).
	reqs, errs, srvReqs, srvErrs [THandoff + 1]*metrics.Counter
}

// NewMetrics registers the wire metric families on reg.
func NewMetrics(reg *metrics.Registry) *Metrics {
	m := &Metrics{
		latency: reg.NewHistogram("rpc_latency_seconds",
			"Outgoing RPC latency, submission through response decode.", metrics.DefLatencyBuckets),
		bytesIn: reg.NewCounter("rpc_bytes_in_total",
			"Bytes read from wire connections, both roles."),
		bytesOut: reg.NewCounter("rpc_bytes_out_total",
			"Bytes written to wire connections, both roles."),
		reqVec: reg.NewCounterVec("rpc_requests_total",
			"Outgoing RPCs by message type.", "type"),
		errVec: reg.NewCounterVec("rpc_errors_total",
			"Outgoing RPCs that failed, by message type.", "type"),
		srvReqVec: reg.NewCounterVec("rpc_server_requests_total",
			"Requests served, by message type.", "type"),
		srvErrVec: reg.NewCounterVec("rpc_server_errors_total",
			"Requests answered with an error, by message type.", "type"),
	}
	for _, t := range AllMsgTypes {
		m.reqs[t] = m.reqVec.With(t.String())
		m.errs[t] = m.errVec.With(t.String())
		m.srvReqs[t] = m.srvReqVec.With(t.String())
		m.srvErrs[t] = m.srvErrVec.With(t.String())
	}
	return m
}

func pick(curried *[THandoff + 1]*metrics.Counter, vec *metrics.CounterVec, t MsgType) *metrics.Counter {
	if int(t) < len(curried) && curried[t] != nil {
		return curried[t]
	}
	return vec.With(t.String())
}

// Wrap instruments a caller: every call through the returned Caller
// records its type, outcome and latency.
func (m *Metrics) Wrap(inner Caller) Caller {
	return CallerFunc(func(ctx context.Context, addr string, req Request) (Response, error) {
		start := time.Now()
		resp, err := inner.Call(ctx, addr, req)
		m.latency.Observe(time.Since(start).Seconds())
		pick(&m.reqs, m.reqVec, req.Type).Inc()
		if err != nil {
			pick(&m.errs, m.errVec, req.Type).Inc()
		}
		return resp, err
	})
}

// CountConn wraps a connection so its traffic feeds the byte counters.
// The counters are atomic: pooled connections carry concurrent
// exchanges. Use it as the pool's ConnWrap and on accepted server conns.
func (m *Metrics) CountConn(conn net.Conn) net.Conn {
	return &meteredConn{Conn: conn, in: m.bytesIn, out: m.bytesOut}
}

// meteredConn feeds a connection's bytes into a Metrics' counters.
type meteredConn struct {
	net.Conn
	in, out *metrics.Counter
}

func (c *meteredConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(uint64(n))
	return n, err
}

func (c *meteredConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(uint64(n))
	return n, err
}

// ObserveServed records one server-side exchange: the request type and
// how it was answered. (Bytes are accounted by CountConn on the accepted
// connection.)
func (m *Metrics) ObserveServed(t MsgType, ok bool) {
	pick(&m.srvReqs, m.srvReqVec, t).Inc()
	if !ok {
		pick(&m.srvErrs, m.srvErrVec, t).Inc()
	}
}
