package wire

import (
	"errors"
	"fmt"
)

// RemoteError is an application-level failure reported by the peer
// (Response.OK == false). The peer is alive and processed the request; a
// RemoteError must never be retried and must never count as evidence that
// the peer is dead.
type RemoteError struct {
	Type MsgType // the request that was rejected
	Msg  string  // the peer's Response.Err text
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("wire: %s: remote error: %s", e.Type, e.Msg)
}

// NetError is a transport-level failure: the dial, send or receive step
// broke before a well-formed response arrived. Sent reports whether any
// request bytes may have reached the peer, which decides whether a
// non-idempotent operation is safe to retry.
type NetError struct {
	Addr string // peer address
	Op   string // "dial", "send", "recv", or an injector-specific label
	Sent bool   // request bytes may have reached the peer
	Err  error
}

func (e *NetError) Error() string {
	return fmt.Sprintf("wire: %s %s: %v", e.Op, e.Addr, e.Err)
}

func (e *NetError) Unwrap() error { return e.Err }

// ErrCircuitOpen is wrapped by calls rejected without dialing because the
// peer's circuit breaker is open. It is not retryable: the breaker's
// cooldown, not a retry loop, decides when the peer is probed again.
var ErrCircuitOpen = errors.New("wire: circuit breaker open")

// CircuitOpenError reports a call rejected by an open breaker.
type CircuitOpenError struct {
	Addr string
}

func (e *CircuitOpenError) Error() string {
	return fmt.Sprintf("wire: %s: circuit breaker open", e.Addr)
}

func (e *CircuitOpenError) Unwrap() error { return ErrCircuitOpen }

// IsRemote reports whether err is an application-level RemoteError.
func IsRemote(err error) bool {
	var re *RemoteError
	return errors.As(err, &re)
}

// Idempotent reports whether an operation can be repeated safely even
// when a previous attempt may already have been applied by the peer.
// Reads and the eviction notice (purging an address twice is a no-op)
// qualify; state-installing writes (TPut, TNotify, TPutRingTable, the
// leave handoffs) are only retried when the request provably never
// reached the peer (NetError.Sent == false).
// The switch is exhaustive over MsgType on purpose: the retrysafe
// analyzer requires every constant to appear in an explicit case, so
// adding an operation without deciding its retry safety fails lint
// rather than silently defaulting to "not idempotent".
func Idempotent(t MsgType) bool {
	switch t {
	case TPing, TGetInfo, TFindClosest, TGetNeighbors, TGetRingTable, TGet, TEvict:
		return true
	case TStorePut, TReplicate, THandoff:
		// Version-guarded merges: the receiver applies an item only when
		// its (Version, Writer) stamp strictly exceeds what it holds, so
		// replaying a delivered write is a no-op, not a resurrection.
		return true
	case TStoreGet:
		return true // plain read
	case TDigest, TSyncPull:
		return true // anti-entropy reads: digests and bucket snapshots
	case TRouteGossip:
		// Stamp-guarded merge: the receiver keeps only events that beat
		// what it holds, so replaying a delivered gossip push is a no-op.
		return true
	case TNotify, TPutRingTable, TPut, TLeaveSucc, TLeavePred:
		// State-installing writes: replaying one can resurrect state
		// the ring has already moved past, so these are retried only
		// when the request provably never reached the peer.
		return false
	}
	return false
}

// Retryable decides whether a failed call may be attempted again:
// application errors never, transport errors always when the request
// never left, and otherwise only for idempotent operations.
func Retryable(t MsgType, err error) bool {
	if err == nil {
		return false
	}
	var ne *NetError
	if errors.As(err, &ne) {
		return !ne.Sent || Idempotent(t)
	}
	return false // RemoteError, CircuitOpenError, unknown: don't retry
}
