package replica

import (
	"context"
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/wire"
)

// CallFunc performs one wire exchange with a replica-set member. The
// transport layer binds this to its retrier so replica traffic shares
// the node's retry/breaker/fault-injection stack; unit tests bind it
// to fakes. The context is the quorum operation's: cancelling it
// abandons the remaining member calls.
type CallFunc func(ctx context.Context, addr string, req wire.Request) (wire.Response, error)

// ResolveFunc maps a key to its replica set: the owner first, then the
// owner's successors in list order, deduplicated — at most Factor
// members (fewer on small rings).
type ResolveFunc func(ctx context.Context, key string) ([]string, error)

// Metrics is the replica subsystem's instrument panel. All fields are
// non-nil after NewMetrics; with a nil registry they are private
// throwaways, mirroring wire.NewRetrier.
type Metrics struct {
	Lag          *metrics.Gauge
	RereplBytes  *metrics.Counter
	WriteSeconds *metrics.Histogram
	ReadSeconds  *metrics.Histogram
	Failures     *metrics.CounterVec
	ReadRepairs  *metrics.Counter
	HandoffItems *metrics.Counter
	Dropped      *metrics.Counter
	AERounds     *metrics.Counter
	AEBytes      *metrics.Counter
	Expired      *metrics.Counter
}

var quorumBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}

// NewMetrics registers the replica metrics on reg. A nil registry
// yields private throwaways on an unexported registry, mirroring
// wire.NewRetrier.
func NewMetrics(reg *metrics.Registry) *Metrics {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Metrics{
		Lag: reg.NewGauge("replica_lag",
			"Stale or missing key copies observed (and refreshed) by the last re-replication sweep."),
		RereplBytes: reg.NewCounter("rereplication_bytes_total",
			"Value bytes pushed to peers by re-replication: full-key sweeps and anti-entropy push-backs."),
		WriteSeconds: reg.NewHistogram("quorum_write_seconds",
			"Latency of quorum writes, from replica-set resolution to quorum ack.", quorumBuckets),
		ReadSeconds: reg.NewHistogram("quorum_read_seconds",
			"Latency of quorum reads, from replica-set resolution to quorum answer.", quorumBuckets),
		Failures: reg.NewCounterVec("quorum_failures_total",
			"Operations that failed to assemble a quorum.", "op"),
		ReadRepairs: reg.NewCounter("read_repairs_total",
			"Stale or missing replicas refreshed by quorum reads."),
		HandoffItems: reg.NewCounter("replica_handoff_items_total",
			"Versioned items transferred by graceful-leave handoffs."),
		Dropped: reg.NewCounter("replica_dropped_total",
			"Keys dropped locally after a sweep confirmed the node left their replica set."),
		AERounds: reg.NewCounter("antientropy_rounds_total",
			"Digest-based anti-entropy rounds completed."),
		AEBytes: reg.NewCounter("antientropy_bytes_total",
			"Bytes moved by anti-entropy rounds: digest frames plus pulled and pushed divergent items."),
		Expired: reg.NewCounter("kv_expired_total",
			"Items (values and tombstones) purged locally after passing their expiry stamp."),
	}
}

// Coordinator drives quorum writes, quorum reads with read-repair, and
// re-replication sweeps against an Engine. It issues replica-set RPCs
// through Call; it never takes locks across those calls (the Engine
// locks only around its own map operations).
type Coordinator struct {
	Self    string
	Opts    Options
	Engine  *Engine
	Resolve ResolveFunc
	Call    CallFunc
	Metrics *Metrics

	// Now supplies wall-clock readings for latency histograms only; it
	// never influences control flow. Deterministic harnesses may leave
	// it nil to skip timing altogether.
	Now func() time.Time

	// KeyID maps a kv key to its ring identifier — the same mapping the
	// transport's lookups use — so anti-entropy can describe held data
	// as key-ID arcs. Required for AntiEntropyOnce.
	KeyID func(key string) [20]byte
	// Clock is the data-lifecycle time base, shared with the Engine's
	// injected clock. Nil means no expiry (TTL is ignored).
	Clock func() uint64
	// TTL is the lifetime stamped onto coordinated writes, in Clock
	// units (0 = items never expire). Tombstones reuse it as their
	// garbage-collection grace period, which must exceed the cluster's
	// convergence time or a delete can be forgotten before every
	// replica learns it.
	TTL uint64
}

// clock reads the lifecycle time base (0 with none, so nothing expires).
func (c *Coordinator) clock() uint64 {
	if c.Clock == nil {
		return 0
	}
	return c.Clock()
}

// expireStamp computes the Expire field for a write coordinated now.
func (c *Coordinator) expireStamp() uint64 {
	if c.TTL == 0 || c.Clock == nil {
		return 0
	}
	return c.clock() + c.TTL
}

func (c *Coordinator) metrics() *Metrics {
	if c.Metrics == nil {
		c.Metrics = NewMetrics(nil)
	}
	return c.Metrics
}

// observe records elapsed seconds since start into h when timing is on.
func (c *Coordinator) observe(h *metrics.Histogram, start time.Time) {
	if c.Now != nil {
		h.Observe(c.Now().Sub(start).Seconds())
	}
}

func (c *Coordinator) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Time{}
}

// Put performs one quorum write: resolve the key's replica set, read
// the owner's current version, stamp the value past it, and install
// the item on every member, acknowledging once WriteQuorum members
// (clamped to the set size) accepted it. Failing members are tolerated
// as long as the quorum holds; the sweep re-replicates to them later.
func (c *Coordinator) Put(ctx context.Context, key string, value []byte) error {
	m := c.metrics()
	start := c.now()
	opts := c.Opts.WithDefaults()
	set, err := c.Resolve(ctx, key)
	if err != nil {
		m.Failures.With("put").Inc()
		return fmt.Errorf("replica put %q: resolve: %w", key, err)
	}
	if len(set) == 0 {
		m.Failures.With("put").Inc()
		return fmt.Errorf("replica put %q: empty replica set", key)
	}

	// Freshest version visible at the owner orders this write after
	// everything already acknowledged there. An unreachable owner is
	// fine: the local engine's stamp still advances past anything this
	// node has seen, and the writer nonce keeps stamps unique.
	var seen uint64
	if resp, getErr := c.Call(ctx, set[0], wire.Request{Type: wire.TStoreGet, Name: key}); getErr == nil && resp.Found {
		seen = resp.Version
	}
	version, writer := c.Engine.Stamp(key, c.Self, seen)
	item := wire.StoreItem{Key: key, Value: value, Version: version, Writer: writer, Expire: c.expireStamp()}

	targets := set
	if opts.DropReplicaWrites {
		targets = set[:1] // bug seam: owner copy only, no replicas
	}
	need := opts.WriteQuorum
	if need > len(set) {
		need = len(set)
	}
	acks := 0
	var lastErr error
	for _, addr := range targets {
		req := wire.Request{Type: wire.TStorePut, Name: key, Items: []wire.StoreItem{item}}
		if _, callErr := c.Call(ctx, addr, req); callErr != nil {
			lastErr = callErr
			continue
		}
		acks++
	}
	if acks < need && !(opts.DropReplicaWrites && acks >= 1) {
		m.Failures.With("put").Inc()
		return fmt.Errorf("replica put %q: %d/%d acks (need %d): %w", key, acks, len(targets), need, lastErr)
	}
	c.observe(m.WriteSeconds, start)
	return nil
}

// Delete performs one quorum delete: a tombstone item is stamped past
// the freshest version visible at the owner and installed on every
// replica-set member under the same quorum rule as Put. The tombstone
// supersedes live versions through the normal LWW order, so a stale
// replica that missed the delete cannot resurrect the key; it is
// garbage-collected TTL after the delete (and kept forever when TTL is
// 0, trading space for a delete that can never be forgotten).
func (c *Coordinator) Delete(ctx context.Context, key string) error {
	m := c.metrics()
	start := c.now()
	opts := c.Opts.WithDefaults()
	set, err := c.Resolve(ctx, key)
	if err != nil {
		m.Failures.With("delete").Inc()
		return fmt.Errorf("replica delete %q: resolve: %w", key, err)
	}
	if len(set) == 0 {
		m.Failures.With("delete").Inc()
		return fmt.Errorf("replica delete %q: empty replica set", key)
	}

	var seen uint64
	if resp, getErr := c.Call(ctx, set[0], wire.Request{Type: wire.TStoreGet, Name: key}); getErr == nil && resp.Found {
		seen = resp.Version
	}
	version, writer := c.Engine.Stamp(key, c.Self, seen)
	item := wire.StoreItem{Key: key, Version: version, Writer: writer, Tombstone: true, Expire: c.expireStamp()}

	targets := set
	if opts.DropReplicaWrites {
		targets = set[:1] // bug seam: owner copy only, no replicas
	}
	need := opts.WriteQuorum
	if need > len(set) {
		need = len(set)
	}
	acks := 0
	var lastErr error
	for _, addr := range targets {
		req := wire.Request{Type: wire.TStorePut, Name: key, Items: []wire.StoreItem{item}}
		if _, callErr := c.Call(ctx, addr, req); callErr != nil {
			lastErr = callErr
			continue
		}
		acks++
	}
	if acks < need && !(opts.DropReplicaWrites && acks >= 1) {
		m.Failures.With("delete").Inc()
		return fmt.Errorf("replica delete %q: %d/%d acks (need %d): %w", key, acks, len(targets), need, lastErr)
	}
	c.observe(m.WriteSeconds, start)
	return nil
}

// Get performs one quorum read: poll replica-set members in ring
// order, require ReadQuorum answers (clamped to the set size), and
// return the freshest item seen. Members that answered stale or
// missing are read-repaired with the winning item. A clean "not
// found" needs every member to answer empty; when some members are
// unreachable and nothing was found, Get reports an error so callers
// cannot mistake a partition for an empty key.
func (c *Coordinator) Get(ctx context.Context, key string) ([]byte, bool, error) {
	m := c.metrics()
	start := c.now()
	opts := c.Opts.WithDefaults()
	set, err := c.Resolve(ctx, key)
	if err != nil {
		m.Failures.With("get").Inc()
		return nil, false, fmt.Errorf("replica get %q: resolve: %w", key, err)
	}
	if len(set) == 0 {
		m.Failures.With("get").Inc()
		return nil, false, fmt.Errorf("replica get %q: empty replica set", key)
	}
	need := opts.ReadQuorum
	if need > len(set) {
		need = len(set)
	}

	var best wire.StoreItem
	found := false
	answers := 0
	held := map[string]wire.StoreItem{} // answered members that found the key
	var polled []string                 // answered members in poll order
	var lastErr error
	for _, addr := range set {
		resp, callErr := c.Call(ctx, addr, wire.Request{Type: wire.TStoreGet, Name: key})
		if callErr != nil {
			lastErr = callErr
			continue
		}
		answers++
		polled = append(polled, addr)
		if resp.Found {
			it := wire.StoreItem{Key: key, Value: resp.Value, Version: resp.Version, Writer: resp.Writer,
				Expire: resp.Expire, Tombstone: resp.Tombstone}
			held[addr] = it
			if !found || Supersedes(it, best) {
				best = it
				found = true
			}
		}
		if found && answers >= need {
			break
		}
	}

	if !found {
		if answers < len(set) {
			m.Failures.With("get").Inc()
			return nil, false, fmt.Errorf("replica get %q: %d/%d members answered, none held it: %w",
				key, answers, len(set), lastErr)
		}
		return nil, false, nil // unanimous: the key does not exist
	}
	if answers < need {
		m.Failures.With("get").Inc()
		return nil, false, fmt.Errorf("replica get %q: %d/%d answers (need %d): %w",
			key, answers, len(set), need, lastErr)
	}
	// A dead winner — tombstone or past its expiry stamp — reads as
	// "not found", but it is positive evidence: a fresher tombstone
	// outranking every live version means the key is deleted, no matter
	// how many members were unreachable. The read-repair below still
	// pushes it so stale members converge on the delete instead of
	// resurrecting the key on a later read.
	alive := Alive(best, c.clock())
	// Read-repair: refresh answered members that lack the winner. The
	// DropReplicaWrites bug seam suppresses this too — the seeded bug is
	// "this node never pushes copies", with no accidental self-healing.
	if opts.DropReplicaWrites {
		c.observe(m.ReadSeconds, start)
		if !alive {
			return nil, false, nil
		}
		return best.Value, true, nil
	}
	repair := wire.Request{Type: wire.TStorePut, Name: key, Items: []wire.StoreItem{best}}
	for _, addr := range polled {
		if it, ok := held[addr]; ok && it.Version == best.Version && it.Writer == best.Writer {
			continue
		}
		if resp, repErr := c.Call(ctx, addr, repair); repErr == nil && resp.Applied > 0 {
			m.ReadRepairs.Inc()
		}
	}
	c.observe(m.ReadSeconds, start)
	if !alive {
		return nil, false, nil
	}
	return best.Value, true, nil
}

// SweepOnce re-homes every locally held key: resolve its current
// replica set, push the held item to members that are behind, and
// drop the local copy once the node is no longer a member and every
// member confirmed the item. Pushes are batched per member and issued
// in deterministic (sorted-key, set-order) sequence. It returns the
// number of item-pushes applied remotely and keys dropped locally.
func (c *Coordinator) SweepOnce(ctx context.Context) (applied, dropped int, firstErr error) {
	m := c.metrics()
	opts := c.Opts.WithDefaults()
	if opts.DropReplicaWrites {
		return 0, 0, nil // bug seam: sweeps neither replicate nor drop
	}
	type plan struct {
		items []wire.StoreItem
		keys  []string
	}
	batches := map[string]*plan{}
	var order []string            // member send order (first appearance)
	memberOK := map[string]bool{} // member → batch delivered
	keyMembers := map[string][]string{}
	selfMember := map[string]bool{}

	for _, key := range c.Engine.Keys() {
		item, ok := c.Engine.Get(key)
		if !ok {
			continue
		}
		set, err := c.Resolve(ctx, key)
		if err != nil || len(set) == 0 {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			continue // unresolved: keep the copy, try next sweep
		}
		keyMembers[key] = set
		for _, addr := range set {
			if addr == c.Self {
				selfMember[key] = true
				continue
			}
			b := batches[addr]
			if b == nil {
				b = &plan{}
				batches[addr] = b
				order = append(order, addr)
			}
			b.items = append(b.items, item)
			b.keys = append(b.keys, key)
		}
	}

	lag := 0
	for _, addr := range order {
		b := batches[addr]
		resp, err := c.Call(ctx, addr, wire.Request{Type: wire.TReplicate, Items: b.items})
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		memberOK[addr] = true
		applied += resp.Applied
		lag += resp.Applied
		if resp.Applied > 0 {
			for _, it := range b.items {
				m.RereplBytes.Add(uint64(len(it.Value)))
			}
		}
	}
	m.Lag.Set(float64(lag))

	// Drop copies this node no longer owes — but only once every member
	// of the key's current set confirmed the batch that carried it, so a
	// copy is never destroyed before its replacement provably exists.
	for key, set := range keyMembers {
		if selfMember[key] {
			continue
		}
		confirmed := true
		for _, addr := range set {
			if addr != c.Self && !memberOK[addr] {
				confirmed = false
				break
			}
		}
		if confirmed {
			c.Engine.Drop(key)
			m.Dropped.Inc()
			dropped++
		}
	}
	return applied, dropped, firstErr
}
