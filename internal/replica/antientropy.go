package replica

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/id"
	"repro/internal/wire"
)

// DigestBuckets is the fixed bucket count of a range digest. It is a
// protocol constant: both sides of a TDigest exchange fold their items
// into the same bucket layout, so changing it is a wire-protocol
// change. 32 buckets keep a digest frame at 256 bytes while still
// isolating divergence to ~1/32 of a range.
const DigestBuckets = 32

// BucketOf maps a key's ring identifier to its digest bucket.
func BucketOf(keyID [20]byte) int {
	return int(binary.BigEndian.Uint32(keyID[:4]) % DigestBuckets)
}

// ItemHash folds one item's identity into a 64-bit value (FNV-1a over
// key, version stamp, writer nonce, expiry and the tombstone flag).
// The value bytes are deliberately excluded: two replicas holding the
// same (Version, Writer) stamp hold the same value by construction, so
// hashing the stamp compares contents without touching payloads.
func ItemHash(it wire.StoreItem) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(it.Key); i++ {
		h = (h ^ uint64(it.Key[i])) * prime64
	}
	var stamp [17]byte
	binary.BigEndian.PutUint64(stamp[0:8], it.Version)
	binary.BigEndian.PutUint64(stamp[8:16], it.Expire)
	if it.Tombstone {
		stamp[16] = 1
	}
	for _, b := range stamp {
		h = (h ^ uint64(b)) * prime64
	}
	for i := 0; i < len(it.Writer); i++ {
		h = (h ^ uint64(it.Writer[i])) * prime64
	}
	return h
}

// RangeDigest folds the held items whose key IDs fall in the arc
// (lo, hi] (lo == hi covers the whole ring) into DigestBuckets
// XOR-combined hashes. XOR makes the fold order-independent, so two
// engines holding the same items produce identical digests regardless
// of insertion history. Items past their expiry stamp are treated as
// absent — both sides of an exchange judge expiry against the same
// travelling stamp, so a purged replica and a lagging one agree.
func (e *Engine) RangeDigest(keyID func(string) [20]byte, lo, hi [20]byte) []uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	digest := make([]uint64, DigestBuckets)
	for k, it := range e.items {
		if Expired(it, now) {
			continue
		}
		kid := keyID(k)
		if !id.InOpenClosed(id.ID(kid), id.ID(lo), id.ID(hi)) {
			continue
		}
		digest[BucketOf(kid)] ^= ItemHash(it)
	}
	return digest
}

// RangeItems returns deep copies of the held items in the arc (lo, hi]
// whose digest bucket is listed in buckets, sorted by key. Expired
// items are omitted, mirroring RangeDigest.
func (e *Engine) RangeItems(keyID func(string) [20]byte, lo, hi [20]byte, buckets []uint32) []wire.StoreItem {
	want := make(map[int]bool, len(buckets))
	for _, b := range buckets {
		want[int(b)] = true
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	var out []wire.StoreItem
	for k, it := range e.items {
		if Expired(it, now) {
			continue
		}
		kid := keyID(k)
		if !id.InOpenClosed(id.ID(kid), id.ID(lo), id.ID(hi)) || !want[BucketOf(kid)] {
			continue
		}
		cp := it
		cp.Value = append([]byte(nil), it.Value...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// coveringArc returns the minimal (lo, hi] arc containing every ID in
// ids: the complement of the largest circular gap between consecutive
// IDs. A digest over this arc sees exactly the keys two replica-set
// members share (membership arcs are contiguous on the ring), so
// converged peers produce identical digests and the exchange settles
// at zero transfer.
func coveringArc(ids []id.ID) (lo, hi id.ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i].Cmp(ids[j]) < 0 })
	// Largest gap follows ids[gapAt] (circularly); the arc runs from
	// just before ids[gapAt+1] around to ids[gapAt].
	gapAt := len(ids) - 1 // wrap gap: ids[n-1] -> ids[0]
	largest := id.Sub(ids[0], ids[len(ids)-1])
	for i := 0; i+1 < len(ids); i++ {
		if g := id.Sub(ids[i+1], ids[i]); g.Cmp(largest) > 0 {
			largest = g
			gapAt = i
		}
	}
	first := ids[(gapAt+1)%len(ids)]
	one := id.ID{19: 1}
	return id.Sub(first, one), ids[gapAt]
}

// itemWireBytes approximates one item's on-the-wire cost: key, value
// and writer bytes plus the fixed stamp fields. It is the unit both
// the anti-entropy accounting and the full-sweep baseline use, so the
// two are directly comparable.
func itemWireBytes(it wire.StoreItem) uint64 {
	return uint64(len(it.Key) + len(it.Value) + len(it.Writer) + 12)
}

// digestWireBytes is one TDigest exchange's cost: the two arc bounds
// plus DigestBuckets 8-byte digests.
const digestWireBytes = 40 + 8*DigestBuckets

// AntiEntropyOnce runs one digest-based anti-entropy round, the
// replacement for full-key SweepOnce re-replication:
//
//  1. Purge locally expired items (values and tombstones).
//  2. Republish: re-stamp owner-held live items inside the last half
//     of their TTL, pushing their expiry out before they die.
//  3. Re-home foreign keys (self no longer in the replica set) by
//     pushing them to the current members and dropping the local copy
//     once every member confirmed — the one job SweepOnce keeps.
//  4. For every replica-set peer sharing keys with this node, exchange
//     a DigestBuckets-bucket digest over the covering arc of the
//     shared keys, pull only the divergent buckets, merge them under
//     the LWW order, and push back exactly the items the peer proved
//     to lack or hold stale.
//
// Pulled items for keys this node has never seen are applied only when
// the node is actually in the key's replica set, so a transiently
// mis-scoped digest cannot seed stray copies that would oscillate
// against the re-homing pass. The round transfers O(digest) bytes per
// converged peer instead of O(data), which is the point.
func (c *Coordinator) AntiEntropyOnce(ctx context.Context) (pulled, pushed, dropped int, firstErr error) {
	m := c.metrics()
	opts := c.Opts.WithDefaults()
	if opts.DropReplicaWrites {
		return 0, 0, 0, nil // bug seam: no replication traffic of any kind
	}
	if c.KeyID == nil {
		return 0, 0, 0, fmt.Errorf("replica anti-entropy: no KeyID mapping configured")
	}
	if purged := c.Engine.PurgeExpired(); purged > 0 {
		m.Expired.Add(uint64(purged))
	}

	now := c.clock()
	keyMembers := map[string][]string{}
	selfMember := map[string]bool{}
	peerKeys := map[string][]string{} // peer -> shared keys (self and peer both members)
	var peers []string                // first-appearance order over sorted keys
	for _, key := range c.Engine.Keys() {
		item, ok := c.Engine.Get(key)
		if !ok {
			continue
		}
		set, err := c.Resolve(ctx, key)
		if err != nil || len(set) == 0 {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			continue // unresolved: keep the copy, try next round
		}
		keyMembers[key] = set
		for i, addr := range set {
			if addr == c.Self {
				selfMember[key] = true
				// Republish: the owner re-stamps a live item entering the
				// last half of its TTL, so a key that is still wanted
				// outlives its expiry. The fresh stamp leaves the republish
				// window immediately, which keeps the round idempotent
				// under a frozen clock.
				if i == 0 && c.TTL > 0 && item.Expire != 0 && !item.Tombstone &&
					!Expired(item, now) && item.Expire-now < c.TTL/2 {
					version, writer := c.Engine.Stamp(key, c.Self, item.Version)
					item.Version, item.Writer, item.Expire = version, writer, now+c.TTL
					c.Engine.Apply(item)
				}
			}
		}
	}
	for key, set := range keyMembers {
		if !selfMember[key] {
			continue
		}
		for _, addr := range set {
			if addr == c.Self {
				continue
			}
			if _, seen := peerKeys[addr]; !seen {
				peers = append(peers, addr)
			}
			peerKeys[addr] = append(peerKeys[addr], key)
		}
	}
	sort.Strings(peers)
	for _, addr := range peers {
		sort.Strings(peerKeys[addr])
	}

	// Re-home foreign keys exactly as the sweep did: push to every
	// current member, drop only once all of them confirmed.
	dropped = c.rehomeForeign(ctx, keyMembers, selfMember, &firstErr)

	for _, peer := range peers {
		shared := peerKeys[peer]
		ids := make([]id.ID, 0, len(shared))
		for _, key := range shared {
			ids = append(ids, id.ID(c.KeyID(key)))
		}
		lo, hi := coveringArc(ids)
		local := c.Engine.RangeDigest(c.KeyID, lo, hi)
		resp, err := c.Call(ctx, peer, wire.Request{Type: wire.TDigest, Key: lo, KeyHi: hi})
		m.AEBytes.Add(digestWireBytes)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		var divergent []uint32
		for b := 0; b < DigestBuckets; b++ {
			var remote uint64
			if b < len(resp.Digests) {
				remote = resp.Digests[b]
			}
			if local[b] != remote {
				divergent = append(divergent, uint32(b))
			}
		}
		if len(divergent) == 0 {
			continue // converged with this peer: the digest was the whole cost
		}
		pullResp, err := c.Call(ctx, peer, wire.Request{Type: wire.TSyncPull, Key: lo, KeyHi: hi, Buckets: divergent})
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		theirs := make(map[string]wire.StoreItem, len(pullResp.Items))
		for _, it := range pullResp.Items {
			m.AEBytes.Add(itemWireBytes(it))
			theirs[it.Key] = it
			if _, held := c.Engine.Get(it.Key); !held {
				set, rErr := c.Resolve(ctx, it.Key)
				if rErr != nil || !contains(set, c.Self) {
					continue // not ours to hold: never seed a stray copy
				}
			}
			if c.Engine.Apply(it) {
				pulled++
			}
		}
		// Push back what the peer provably lacks: our items in the
		// divergent buckets it did not return (or returned stale), but
		// only for keys the peer is a current member of — pushing
		// beyond membership would plant strays that the re-homing pass
		// keeps resurrecting.
		sharedSet := make(map[string]bool, len(shared))
		for _, key := range shared {
			sharedSet[key] = true
		}
		var push []wire.StoreItem
		for _, it := range c.Engine.RangeItems(c.KeyID, lo, hi, divergent) {
			if !sharedSet[it.Key] {
				continue
			}
			th, have := theirs[it.Key]
			if !have || Supersedes(it, th) {
				push = append(push, it)
			}
		}
		if len(push) == 0 {
			continue
		}
		pushResp, err := c.Call(ctx, peer, wire.Request{Type: wire.TReplicate, Items: push})
		for _, it := range push {
			m.AEBytes.Add(itemWireBytes(it))
		}
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		pushed += pushResp.Applied
		if pushResp.Applied > 0 {
			// Push-backs repair under-replication, so they count as
			// re-replication traffic alongside the full-sweep path.
			for _, it := range push {
				m.RereplBytes.Add(uint64(len(it.Value)))
			}
		}
	}
	m.Lag.Set(float64(pulled + pushed))
	m.AERounds.Inc()
	return pulled, pushed, dropped, firstErr
}

// rehomeForeign pushes keys this node no longer owes to their current
// replica-set members and drops the local copies once every member
// confirmed — SweepOnce's re-homing contract, kept verbatim inside the
// anti-entropy round.
func (c *Coordinator) rehomeForeign(ctx context.Context, keyMembers map[string][]string, selfMember map[string]bool, firstErr *error) (dropped int) {
	m := c.metrics()
	type plan struct{ items []wire.StoreItem }
	batches := map[string]*plan{}
	var order []string
	var foreign []string
	for _, key := range c.Engine.Keys() {
		set, ok := keyMembers[key]
		if !ok || selfMember[key] {
			continue
		}
		item, held := c.Engine.Get(key)
		if !held {
			continue
		}
		foreign = append(foreign, key)
		for _, addr := range set {
			if addr == c.Self {
				continue
			}
			b := batches[addr]
			if b == nil {
				b = &plan{}
				batches[addr] = b
				order = append(order, addr)
			}
			b.items = append(b.items, item)
		}
	}
	memberOK := map[string]bool{}
	for _, addr := range order {
		b := batches[addr]
		resp, err := c.Call(ctx, addr, wire.Request{Type: wire.TReplicate, Items: b.items})
		if err != nil {
			if *firstErr == nil {
				*firstErr = err
			}
			continue
		}
		memberOK[addr] = true
		if resp.Applied > 0 {
			for _, it := range b.items {
				m.RereplBytes.Add(uint64(len(it.Value)))
			}
		}
	}
	for _, key := range foreign {
		confirmed := true
		for _, addr := range keyMembers[key] {
			if addr != c.Self && !memberOK[addr] {
				confirmed = false
				break
			}
		}
		if confirmed {
			c.Engine.Drop(key)
			m.Dropped.Inc()
			dropped++
		}
	}
	return dropped
}

// SweepBytes reports what one full-key SweepOnce round would put on
// the wire for the current store and placement — every held item
// pushed whole to every other member of its replica set, regardless of
// divergence. It issues no replication traffic; the chaos suite and
// the KV benchmark use it as the bandwidth baseline digest sync is
// measured against.
func (c *Coordinator) SweepBytes(ctx context.Context) (uint64, error) {
	var total uint64
	for _, key := range c.Engine.Keys() {
		item, ok := c.Engine.Get(key)
		if !ok {
			continue
		}
		set, err := c.Resolve(ctx, key)
		if err != nil {
			return total, err
		}
		for _, addr := range set {
			if addr != c.Self {
				total += itemWireBytes(item)
			}
		}
	}
	return total, nil
}

func contains(set []string, addr string) bool {
	for _, a := range set {
		if a == addr {
			return true
		}
	}
	return false
}
