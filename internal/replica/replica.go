// Package replica implements the replicated, durable KV layer of the
// HIERAS node stack: per-key replica sets of configurable factor r
// placed on the owner's global successor list, quorum writes (W) and
// quorum reads (R) with version stamps and read-repair, handoff of
// versioned items on graceful leave, and periodic re-replication
// sweeps that re-home data after churn.
//
// The package has two halves. Engine is the node-local store: a
// versioned last-writer-wins map whose merges are idempotent, so the
// TStorePut/TReplicate/THandoff wire operations retry safely. The
// quorum coordination logic (replica-set resolution, ack counting,
// read-repair, sweep planning) lives in the transport client, which
// owns lookups and the successor lists; this package supplies the
// ordering rule (Supersedes) both halves must agree on.
package replica

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/wire"
)

// Options configures replication for one node. The zero value means
// "use defaults": factor 3, majority write quorum, single-replica
// read quorum.
type Options struct {
	// Factor is the number of copies kept per key — the owner plus
	// Factor-1 distinct successors (0 = default 3; values < 1 clamp
	// to 1, i.e. no replication).
	Factor int
	// WriteQuorum is the number of replica acks a Put needs before it
	// is acknowledged to the caller (0 = majority of Factor; clamped
	// to [1, Factor]).
	WriteQuorum int
	// ReadQuorum is the number of replica answers a Get waits for
	// before trusting the freshest one (0 = default 1; clamped to
	// [1, Factor]).
	ReadQuorum int
	// DropReplicaWrites, when set, makes the node acknowledge writes
	// after storing only the owner copy and skip pushing copies during
	// sweeps. It exists solely as a deterministic bug seam for the
	// simcheck harness: the durability invariant must catch it.
	DropReplicaWrites bool
}

// WithDefaults returns o with zero fields resolved and quorums clamped
// into [1, Factor].
func (o Options) WithDefaults() Options {
	if o.Factor == 0 {
		o.Factor = 3
	}
	if o.Factor < 1 {
		o.Factor = 1
	}
	if o.WriteQuorum == 0 {
		o.WriteQuorum = o.Factor/2 + 1
	}
	if o.WriteQuorum < 1 {
		o.WriteQuorum = 1
	}
	if o.WriteQuorum > o.Factor {
		o.WriteQuorum = o.Factor
	}
	if o.ReadQuorum == 0 {
		o.ReadQuorum = 1
	}
	if o.ReadQuorum < 1 {
		o.ReadQuorum = 1
	}
	if o.ReadQuorum > o.Factor {
		o.ReadQuorum = o.Factor
	}
	return o
}

// Supersedes reports whether item a should replace item b in a merge:
// strictly higher version wins; equal versions break the tie on the
// writer string. Two items with the same (Version, Writer) carry the
// same value by construction (writers never reuse a stamp), so "not
// supersedes" means "keeping b loses nothing".
func Supersedes(a, b wire.StoreItem) bool {
	if a.Version != b.Version {
		return a.Version > b.Version
	}
	return a.Writer > b.Writer
}

// Engine is one node's versioned store. All methods are safe for
// concurrent use. Merges are monotone: an item is replaced only by one
// that Supersedes it, so applying any batch twice equals applying it
// once and the wire operations feeding the engine are idempotent.
type Engine struct {
	mu    sync.Mutex
	items map[string]wire.StoreItem
	seq   uint64 // node-local write counter, feeds unique Writer stamps
	clock func() uint64
}

// NewEngine returns an empty store.
func NewEngine() *Engine {
	return &Engine{items: make(map[string]wire.StoreItem)}
}

// SetClock injects the clock item lifecycles are judged against: an
// item with Expire != 0 is dead once clock() >= Expire. With no clock
// (the default) nothing ever expires. Production nodes inject
// wall-clock nanos; deterministic harnesses inject a logical tick
// counter — expiry compares stamps, so any monotone uint64 works as
// long as every node in a cluster shares the same time base.
func (e *Engine) SetClock(clock func() uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.clock = clock
}

// now reads the injected clock (0 with none, so nothing expires).
// Callers hold e.mu.
func (e *Engine) now() uint64 {
	if e.clock == nil {
		return 0
	}
	return e.clock()
}

// Expired reports whether item is past its expiry stamp at time now.
func Expired(item wire.StoreItem, now uint64) bool {
	return item.Expire != 0 && now >= item.Expire
}

// Alive reports whether item represents a readable value at time now:
// not a tombstone and not expired.
func Alive(item wire.StoreItem, now uint64) bool {
	return !item.Tombstone && !Expired(item, now)
}

// Apply merges one item, returning true when it advanced the store
// (the key was absent or the item supersedes the held one). An item
// that is already expired at the local clock is rejected outright:
// expiry is judged against the stamp that travels with the item, so a
// replica that already purged the key cannot be re-infected by a
// slower peer — expiry converges instead of resurrecting.
func (e *Engine) Apply(item wire.StoreItem) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if Expired(item, e.now()) {
		return false
	}
	cur, ok := e.items[item.Key]
	if ok && !Supersedes(item, cur) {
		return false
	}
	e.items[item.Key] = item
	return true
}

// PurgeExpired removes every item past its expiry stamp — values and
// tombstones alike — and returns how many were removed. Tombstones
// carry their grace period in the same Expire stamp, so delete markers
// are garbage-collected by the same pass once every replica has had
// time to learn them.
func (e *Engine) PurgeExpired() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	purged := 0
	for k, it := range e.items {
		if Expired(it, now) {
			delete(e.items, k)
			purged++
		}
	}
	return purged
}

// ApplyBatch merges a batch and returns how many items advanced the
// store. Replaying a delivered batch returns 0.
func (e *Engine) ApplyBatch(items []wire.StoreItem) int {
	applied := 0
	for _, it := range items {
		if e.Apply(it) {
			applied++
		}
	}
	return applied
}

// Get returns the held item for key.
func (e *Engine) Get(key string) (wire.StoreItem, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	it, ok := e.items[key]
	return it, ok
}

// Stamp allocates the next version stamp for a locally coordinated
// write of key: one past the held version (or past `seen`, whichever
// is larger — callers pass the freshest version observed from the
// owner), with a writer string unique to this (node, write).
func (e *Engine) Stamp(key, self string, seen uint64) (version uint64, writer string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	version = seen
	if cur, ok := e.items[key]; ok && cur.Version > version {
		version = cur.Version
	}
	version++
	e.seq++
	return version, fmt.Sprintf("%s#%d", self, e.seq)
}

// Bump stores a value under key with a stamp one past the held
// version — the compatibility path for the legacy unversioned TPut.
func (e *Engine) Bump(key, self string, value []byte) wire.StoreItem {
	v, w := e.Stamp(key, self, 0)
	it := wire.StoreItem{Key: key, Value: value, Version: v, Writer: w}
	e.Apply(it)
	return it
}

// Drop removes key from the store (used when a sweep determines the
// node is no longer in the key's replica set).
func (e *Engine) Drop(key string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.items, key)
}

// Len returns the number of keys held.
func (e *Engine) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.items)
}

// Keys returns the held keys in sorted order — sweeps iterate this so
// their wire traffic is deterministic under the simcheck harness.
func (e *Engine) Keys() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	keys := make([]string, 0, len(e.items))
	for k := range e.items {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Items returns a deep copy of the store sorted by key, for snapshots
// and leave handoffs.
func (e *Engine) Items() []wire.StoreItem {
	e.mu.Lock()
	defer e.mu.Unlock()
	items := make([]wire.StoreItem, 0, len(e.items))
	for _, it := range e.items {
		cp := it
		cp.Value = append([]byte(nil), it.Value...)
		items = append(items, cp)
	}
	sort.Slice(items, func(i, j int) bool { return items[i].Key < items[j].Key })
	return items
}

// ReplicaSet returns the first want distinct members of the key's
// replica set given the owner and the owner's successor list: the
// owner first, then successors in list order, deduplicated by
// address. Fewer members are returned when the ring is smaller than
// the factor.
func ReplicaSet(owner string, succs []string, want int) []string {
	if want < 1 {
		want = 1
	}
	set := make([]string, 0, want)
	seen := map[string]bool{}
	for _, addr := range append([]string{owner}, succs...) {
		if addr == "" || seen[addr] {
			continue
		}
		seen[addr] = true
		set = append(set, addr)
		if len(set) == want {
			break
		}
	}
	return set
}
