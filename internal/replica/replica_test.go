package replica

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/wire"
)

func item(key, val string, version uint64, writer string) wire.StoreItem {
	return wire.StoreItem{Key: key, Value: []byte(val), Version: version, Writer: writer}
}

func TestOptionsWithDefaults(t *testing.T) {
	cases := []struct {
		in   Options
		want Options
	}{
		{Options{}, Options{Factor: 3, WriteQuorum: 2, ReadQuorum: 1}},
		{Options{Factor: 5}, Options{Factor: 5, WriteQuorum: 3, ReadQuorum: 1}},
		{Options{Factor: 1}, Options{Factor: 1, WriteQuorum: 1, ReadQuorum: 1}},
		{Options{Factor: -2}, Options{Factor: 1, WriteQuorum: 1, ReadQuorum: 1}},
		{Options{Factor: 3, WriteQuorum: 9, ReadQuorum: 9}, Options{Factor: 3, WriteQuorum: 3, ReadQuorum: 3}},
		{Options{Factor: 3, WriteQuorum: -1, ReadQuorum: -1}, Options{Factor: 3, WriteQuorum: 1, ReadQuorum: 1}},
	}
	for _, c := range cases {
		if got := c.in.WithDefaults(); got != c.want {
			t.Errorf("WithDefaults(%+v) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestSupersedesTotalOrder(t *testing.T) {
	a := item("k", "a", 2, "n1#1")
	b := item("k", "b", 1, "n2#9")
	if !Supersedes(a, b) || Supersedes(b, a) {
		t.Error("higher version must win")
	}
	c := item("k", "c", 2, "n2#1")
	if !Supersedes(c, a) || Supersedes(a, c) {
		t.Error("equal versions must break ties on writer")
	}
	if Supersedes(a, a) {
		t.Error("an item must not supersede itself")
	}
}

func TestEngineMergeIdempotent(t *testing.T) {
	e := NewEngine()
	first := item("doc", "v1", 1, "n0#1")
	if !e.Apply(first) {
		t.Fatal("fresh apply should advance the store")
	}
	if e.Apply(first) {
		t.Error("replaying the same item must be a no-op")
	}
	newer := item("doc", "v2", 2, "n1#1")
	batch := []wire.StoreItem{newer, first, item("other", "x", 1, "n0#2")}
	if got := e.ApplyBatch(batch); got != 2 {
		t.Errorf("ApplyBatch applied %d, want 2 (newer doc + other)", got)
	}
	if got := e.ApplyBatch(batch); got != 0 {
		t.Errorf("replayed batch applied %d, want 0", got)
	}
	it, ok := e.Get("doc")
	if !ok || string(it.Value) != "v2" {
		t.Errorf("doc = %q (found %v), want v2", it.Value, ok)
	}
}

func TestEngineStampAdvancesPastSeen(t *testing.T) {
	e := NewEngine()
	v, w := e.Stamp("k", "n0", 7)
	if v != 8 {
		t.Errorf("stamp past seen=7 gave version %d, want 8", v)
	}
	if w != "n0#1" {
		t.Errorf("writer = %q, want n0#1", w)
	}
	e.Apply(item("k", "x", 12, "n9#1"))
	if v, _ := e.Stamp("k", "n0", 3); v != 13 {
		t.Errorf("stamp must clear the held version: got %d, want 13", v)
	}
	// Writer nonces never repeat, even for the same (node, key, version).
	_, w2 := e.Stamp("k", "n0", 0)
	_, w3 := e.Stamp("k", "n0", 0)
	if w2 == w3 {
		t.Errorf("writer stamps must be unique, got %q twice", w2)
	}
}

func TestEngineItemsSortedAndDeepCopied(t *testing.T) {
	e := NewEngine()
	e.Apply(item("b", "2", 1, "w"))
	e.Apply(item("a", "1", 1, "w"))
	items := e.Items()
	if len(items) != 2 || items[0].Key != "a" || items[1].Key != "b" {
		t.Fatalf("Items() = %v, want sorted [a b]", items)
	}
	items[0].Value[0] = 'X'
	if it, _ := e.Get("a"); string(it.Value) != "1" {
		t.Error("Items() must deep-copy values")
	}
	if !reflect.DeepEqual(e.Keys(), []string{"a", "b"}) {
		t.Errorf("Keys() = %v", e.Keys())
	}
}

func TestReplicaSetDedupAndClamp(t *testing.T) {
	set := ReplicaSet("n0", []string{"n1", "n0", "n2", "n3"}, 3)
	if !reflect.DeepEqual(set, []string{"n0", "n1", "n2"}) {
		t.Errorf("set = %v", set)
	}
	if got := ReplicaSet("n0", []string{"n0"}, 3); !reflect.DeepEqual(got, []string{"n0"}) {
		t.Errorf("tiny ring set = %v", got)
	}
	if got := ReplicaSet("n0", nil, 0); !reflect.DeepEqual(got, []string{"n0"}) {
		t.Errorf("want<1 must clamp to owner-only, got %v", got)
	}
}

// fakeCluster wires a Coordinator to in-memory member engines, with a
// controllable set of dead members.
type fakeCluster struct {
	mu      sync.Mutex
	engines map[string]*Engine
	dead    map[string]bool
	set     []string
	calls   []string // "addr:type" log
}

func newFakeCluster(members ...string) *fakeCluster {
	fc := &fakeCluster{engines: map[string]*Engine{}, dead: map[string]bool{}, set: members}
	for _, m := range members {
		fc.engines[m] = NewEngine()
	}
	return fc
}

func (fc *fakeCluster) call(ctx context.Context, addr string, req wire.Request) (wire.Response, error) {
	fc.mu.Lock()
	fc.calls = append(fc.calls, fmt.Sprintf("%s:%s", addr, req.Type))
	dead := fc.dead[addr]
	e := fc.engines[addr]
	fc.mu.Unlock()
	if dead || e == nil {
		return wire.Response{}, &wire.NetError{Addr: addr, Op: "dial", Err: fmt.Errorf("down")}
	}
	switch req.Type {
	case wire.TStoreGet:
		it, ok := e.Get(req.Name)
		return wire.Response{OK: true, Found: ok, Value: it.Value, Version: it.Version, Writer: it.Writer}, nil
	case wire.TStorePut, wire.TReplicate, wire.THandoff:
		return wire.Response{OK: true, Applied: e.ApplyBatch(req.Items)}, nil
	}
	return wire.Response{}, fmt.Errorf("unexpected %v", req.Type)
}

func (fc *fakeCluster) coordinator(self string, opts Options) *Coordinator {
	return &Coordinator{
		Self:    self,
		Opts:    opts,
		Engine:  fc.engines[self],
		Resolve: func(context.Context, string) ([]string, error) { return fc.set, nil },
		Call:    fc.call,
	}
}

func TestCoordinatorQuorumWriteAndRead(t *testing.T) {
	fc := newFakeCluster("n0", "n1", "n2")
	co := fc.coordinator("n0", Options{Factor: 3, WriteQuorum: 2, ReadQuorum: 2})
	if err := co.Put(context.Background(), "doc", []byte("v1")); err != nil {
		t.Fatalf("put: %v", err)
	}
	for _, m := range fc.set {
		if it, ok := fc.engines[m].Get("doc"); !ok || string(it.Value) != "v1" {
			t.Errorf("member %s missing the write (found %v)", m, ok)
		}
	}
	v, found, err := co.Get(context.Background(), "doc")
	if err != nil || !found || string(v) != "v1" {
		t.Fatalf("get = %q, %v, %v", v, found, err)
	}
	// Unanimous empty → clean not-found.
	if _, found, err := co.Get(context.Background(), "ghost"); err != nil || found {
		t.Errorf("ghost get = found=%v err=%v, want clean not-found", found, err)
	}
}

func TestCoordinatorWriteToleratesMinorityFailure(t *testing.T) {
	fc := newFakeCluster("n0", "n1", "n2")
	fc.dead["n2"] = true
	co := fc.coordinator("n0", Options{Factor: 3, WriteQuorum: 2})
	if err := co.Put(context.Background(), "doc", []byte("v1")); err != nil {
		t.Fatalf("put with one dead replica should ack at W=2: %v", err)
	}
	fc.dead["n1"] = true
	if err := co.Put(context.Background(), "doc2", []byte("v2")); err == nil {
		t.Fatal("put with two dead replicas must fail at W=2")
	}
	if got := co.Metrics.Failures.With("put").Value(); got != 1 {
		t.Errorf("quorum_failures_total{op=put} = %d, want 1", got)
	}
}

func TestCoordinatorReadRepair(t *testing.T) {
	fc := newFakeCluster("n0", "n1", "n2")
	fresh := item("doc", "new", 5, "n9#1")
	fc.engines["n0"].Apply(item("doc", "old", 1, "n8#1"))
	fc.engines["n1"].Apply(fresh)
	co := fc.coordinator("n0", Options{Factor: 3, ReadQuorum: 3})
	v, found, err := co.Get(context.Background(), "doc")
	if err != nil || !found || string(v) != "new" {
		t.Fatalf("get = %q, %v, %v; want freshest", v, found, err)
	}
	// n0 (stale) and n2 (missing) must have been repaired.
	for _, m := range []string{"n0", "n2"} {
		if it, ok := fc.engines[m].Get("doc"); !ok || string(it.Value) != "new" {
			t.Errorf("member %s not read-repaired: %q (found %v)", m, it.Value, ok)
		}
	}
	if got := co.Metrics.ReadRepairs.Value(); got != 2 {
		t.Errorf("read_repairs_total = %d, want 2", got)
	}
}

func TestCoordinatorGetDistrustsPartialSilence(t *testing.T) {
	fc := newFakeCluster("n0", "n1", "n2")
	fc.dead["n1"] = true
	co := fc.coordinator("n0", Options{Factor: 3, ReadQuorum: 1})
	// Nothing stored anywhere, one member unreachable: must error, not
	// report a clean miss.
	if _, found, err := co.Get(context.Background(), "ghost"); err == nil || found {
		t.Errorf("partial silence: found=%v err=%v, want error", found, err)
	}
}

func TestCoordinatorSweepReplicatesAndDrops(t *testing.T) {
	fc := newFakeCluster("n0", "n1", "n2", "n3")
	// n3 holds a copy of a key whose replica set is {n0,n1,n2} (it left
	// the set after churn) plus a key it still owes.
	orphan := item("orphan", "x", 3, "w#1")
	fc.engines["n3"].Apply(orphan)
	fc.set = []string{"n0", "n1", "n2"}
	co := fc.coordinator("n3", Options{Factor: 3})
	applied, dropped, err := co.SweepOnce(context.Background())
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if applied != 3 || dropped != 1 {
		t.Errorf("sweep applied=%d dropped=%d, want 3 and 1", applied, dropped)
	}
	for _, m := range fc.set {
		if it, ok := fc.engines[m].Get("orphan"); !ok || string(it.Value) != "x" {
			t.Errorf("member %s missing re-replicated key (found %v)", m, ok)
		}
	}
	if _, ok := fc.engines["n3"].Get("orphan"); ok {
		t.Error("n3 must drop the key after all members confirmed")
	}
}

func TestCoordinatorSweepKeepsCopyWhileMemberUnreachable(t *testing.T) {
	fc := newFakeCluster("n0", "n1", "n2", "n3")
	fc.engines["n3"].Apply(item("orphan", "x", 3, "w#1"))
	fc.set = []string{"n0", "n1", "n2"}
	fc.dead["n2"] = true
	co := fc.coordinator("n3", Options{Factor: 3})
	_, dropped, _ := co.SweepOnce(context.Background())
	if dropped != 0 {
		t.Error("must not drop the local copy before every member confirmed")
	}
	if _, ok := fc.engines["n3"].Get("orphan"); !ok {
		t.Error("local copy destroyed while a replica-set member was unreachable")
	}
}

func TestCoordinatorSweepDeterministicOrder(t *testing.T) {
	run := func() []string {
		fc := newFakeCluster("n0", "n1", "n2")
		for _, k := range []string{"kb", "ka", "kc"} {
			fc.engines["n0"].Apply(item(k, "v", 1, "w#1"))
		}
		co := fc.coordinator("n0", Options{Factor: 3})
		if _, _, err := co.SweepOnce(context.Background()); err != nil {
			t.Fatal(err)
		}
		return fc.calls
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); !reflect.DeepEqual(got, first) {
			t.Fatalf("sweep wire order not deterministic:\n  %v\n  %v", first, got)
		}
	}
}

func TestCoordinatorDropReplicaWritesBugSeam(t *testing.T) {
	fc := newFakeCluster("n0", "n1", "n2")
	co := fc.coordinator("n0", Options{Factor: 3, WriteQuorum: 2, DropReplicaWrites: true})
	if err := co.Put(context.Background(), "doc", []byte("v1")); err != nil {
		t.Fatalf("seeded-bug put must still ack: %v", err)
	}
	if _, ok := fc.engines["n1"].Get("doc"); ok {
		t.Error("bug seam must not push replica copies")
	}
	if applied, dropped, _ := co.SweepOnce(context.Background()); applied != 0 || dropped != 0 {
		t.Error("bug seam must disable sweeps")
	}
}
