package replica

import (
	"testing"

	"repro/internal/lint/leakcheck"
)

// TestMain routes the package through the runtime leak gate: a test
// that leaves a goroutine running after the suite (or wedges forever —
// see leakcheck.Watchdog) fails the binary with the offending stacks.
func TestMain(m *testing.M) { leakcheck.Main(m) }
