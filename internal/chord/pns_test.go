package chord

import (
	"math/rand"
	"testing"

	"repro/internal/id"
	"repro/internal/topology"
	"repro/internal/topology/transitstub"
)

func pnsNet(t testing.TB, hosts int, seed int64) *topology.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m, err := transitstub.Generate(transitstub.DefaultConfig(hosts), rng)
	if err != nil {
		t.Fatal(err)
	}
	net, err := topology.Attach(m, m.G, topology.AttachOptions{
		Hosts: hosts, Routers: m.StubRouters, Spread: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestPNSErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ms := makeMembers(rng, 10)
	if _, err := BuildTablePNS(ms, nil, 8, 1, 0); err == nil {
		t.Error("nil latency function accepted")
	}
	if _, err := BuildTablePNS(nil, func(a, b int) float64 { return 0 }, 8, 1, 0); err == nil {
		t.Error("empty members accepted")
	}
}

func TestPNSFingersStayLegal(t *testing.T) {
	const n = 200
	net := pnsNet(t, n, 2)
	rng := rand.New(rand.NewSource(3))
	ms := makeMembers(rng, n)
	for i := range ms {
		ms[i].Host = i
	}
	tbl, err := BuildTablePNS(ms, net.Latency, 8, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := BuildTable(ms, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 13 {
		for k := uint(0); k < id.Bits; k += 7 {
			f := tbl.Finger(i, k)
			start := id.AddPow2(tbl.ID(i), k)
			// A PNS finger must either be the plain fallback finger or lie
			// inside the legal interval [start, start+2^k... next start).
			if f == plain.Finger(i, k) {
				continue
			}
			end := endOf(tbl.ID(i), k)
			if !id.InClosedOpen(tbl.ID(f), start, end) {
				t.Fatalf("finger[%d][%d] = %s outside [start, end)", i, k, tbl.ID(f).Short())
			}
		}
	}
}

func TestPNSLookupsStillCorrect(t *testing.T) {
	const n = 150
	net := pnsNet(t, n, 5)
	rng := rand.New(rand.NewSource(6))
	ms := makeMembers(rng, n)
	for i := range ms {
		ms[i].Host = i
	}
	tbl, err := BuildTablePNS(ms, net.Latency, 8, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 500; trial++ {
		key := id.Rand(rng)
		from := rng.Intn(n)
		owner, hops := tbl.Lookup(from, key, nil)
		if owner != tbl.SuccessorIndex(key) {
			t.Fatalf("PNS lookup landed on %d, owner %d", owner, tbl.SuccessorIndex(key))
		}
		if hops > 3*id.Bits {
			t.Fatalf("hop explosion: %d", hops)
		}
	}
}

func TestPNSHopsStayLogarithmic(t *testing.T) {
	const n = 300
	net := pnsNet(t, n, 8)
	rng := rand.New(rand.NewSource(9))
	ms := makeMembers(rng, n)
	for i := range ms {
		ms[i].Host = i
	}
	pns, err := BuildTablePNS(ms, net.Latency, 8, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := BuildTable(ms, 0)
	if err != nil {
		t.Fatal(err)
	}
	var pnsHops, plainHops int
	const trials = 800
	for trial := 0; trial < trials; trial++ {
		key := id.Rand(rng)
		from := rng.Intn(n)
		_, h1 := pns.Lookup(from, key, nil)
		_, h2 := plain.Lookup(from, key, nil)
		pnsHops += h1
		plainHops += h2
	}
	// PNS fingers land near the start of each interval less often, so
	// lookups may take a few more hops — but must stay the same order.
	if float64(pnsHops) > 1.6*float64(plainHops) {
		t.Errorf("PNS hops %.2f vs plain %.2f: blow-up", float64(pnsHops)/trials, float64(plainHops)/trials)
	}
}

func TestPNSLowersPerHopLatency(t *testing.T) {
	const n = 300
	net := pnsNet(t, n, 11)
	rng := rand.New(rand.NewSource(12))
	ms := makeMembers(rng, n)
	for i := range ms {
		ms[i].Host = i
	}
	pns, err := BuildTablePNS(ms, net.Latency, 8, 13, 0)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := BuildTable(ms, 0)
	if err != nil {
		t.Fatal(err)
	}
	meanHopLat := func(tbl *Table) float64 {
		r := rand.New(rand.NewSource(14))
		var sum float64
		hops := 0
		for trial := 0; trial < 1200; trial++ {
			tbl.Lookup(r.Intn(n), id.Rand(r), func(f, to int) {
				sum += net.Latency(tbl.Host(f), tbl.Host(to))
				hops++
			})
		}
		return sum / float64(hops)
	}
	p, q := meanHopLat(pns), meanHopLat(plain)
	t.Logf("per-hop latency: PNS %.1f ms, plain %.1f ms", p, q)
	if p >= q {
		t.Errorf("PNS per-hop latency %.1f should beat plain %.1f", p, q)
	}
}
