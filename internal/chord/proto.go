package chord

import (
	"fmt"

	"repro/internal/id"
)

// ProtoNode is a peer in the message-level Chord protocol simulation.
// Fields are manipulated only through Proto methods.
type ProtoNode struct {
	ID   id.ID
	Host int

	pred    *ProtoNode
	succ    []*ProtoNode // successor list; succ[0] is the immediate successor
	finger  []*ProtoNode // finger[k] ~ successor(ID + 2^k); may be stale
	alive   bool
	nextFix int // rotating finger index for fix-fingers
}

// Alive reports whether the node is still part of the overlay.
func (n *ProtoNode) Alive() bool { return n.alive }

// Successor returns the node's current immediate successor pointer (may be
// a failed node until stabilization runs).
func (n *ProtoNode) Successor() *ProtoNode {
	if len(n.succ) == 0 {
		return nil
	}
	return n.succ[0]
}

// Predecessor returns the node's current predecessor pointer.
func (n *ProtoNode) Predecessor() *ProtoNode { return n.pred }

// Proto is a message-level Chord overlay: nodes join through the protocol,
// pointers converge through stabilization, and every remote interaction is
// counted in Msgs. It is not safe for concurrent use; the simulations
// drive it single-threaded for determinism.
type Proto struct {
	r     int // successor-list length
	Msgs  int64
	nodes map[id.ID]*ProtoNode
}

// NewProto creates an empty protocol overlay whose nodes keep
// successor lists of length r (r >= 1).
func NewProto(r int) *Proto {
	if r < 1 {
		r = 1
	}
	return &Proto{r: r, nodes: make(map[id.ID]*ProtoNode)}
}

// SuccessorListLen returns the configured successor-list length.
func (p *Proto) SuccessorListLen() int { return p.r }

// Size returns the number of live nodes.
func (p *Proto) Size() int {
	n := 0
	for _, nd := range p.nodes {
		if nd.alive {
			n++
		}
	}
	return n
}

// Nodes returns all live nodes (unspecified order).
func (p *Proto) Nodes() []*ProtoNode {
	out := make([]*ProtoNode, 0, len(p.nodes))
	for _, nd := range p.nodes {
		if nd.alive {
			out = append(out, nd)
		}
	}
	return out
}

// Bootstrap creates the first node of the overlay.
func (p *Proto) Bootstrap(m Member) (*ProtoNode, error) {
	if len(p.nodes) != 0 {
		return nil, fmt.Errorf("chord: overlay already bootstrapped")
	}
	n := p.newNode(m)
	n.pred = n
	n.succ = []*ProtoNode{n}
	return n, nil
}

func (p *Proto) newNode(m Member) *ProtoNode {
	n := &ProtoNode{
		ID:     m.ID,
		Host:   m.Host,
		finger: make([]*ProtoNode, id.Bits),
		alive:  true,
	}
	p.nodes[m.ID] = n
	return n
}

// Join adds a new node via bootstrap node boot, as in the Chord paper: the
// newcomer learns its successor with one lookup; predecessor pointers and
// fingers converge through Stabilize and FixFingers.
func (p *Proto) Join(m Member, boot *ProtoNode) (*ProtoNode, error) {
	if boot == nil || !boot.alive {
		return nil, fmt.Errorf("chord: bootstrap node is not alive")
	}
	if _, dup := p.nodes[m.ID]; dup {
		return nil, fmt.Errorf("chord: identifier %s already joined", m.ID.Short())
	}
	succ, _, err := p.FindSuccessorFrom(boot, m.ID)
	if err != nil {
		return nil, err
	}
	n := p.newNode(m)
	n.pred = nil
	n.succ = []*ProtoNode{succ}
	p.Msgs++ // join notification to successor
	return n, nil
}

// firstAliveSuccessor returns the first live entry of n's successor list,
// or nil when the whole list has failed (a disconnected node).
func (n *ProtoNode) firstAliveSuccessor() *ProtoNode {
	for _, s := range n.succ {
		if s != nil && s.alive {
			return s
		}
	}
	return nil
}

// closestPrecedingLive scans fingers high-to-low for a live node in
// (n, key), falling back to the successor list, as Chord does under
// failures.
func (n *ProtoNode) closestPrecedingLive(key id.ID) *ProtoNode {
	for k := id.Bits - 1; k >= 0; k-- {
		f := n.finger[k]
		if f != nil && f.alive && f != n && id.Between(f.ID, n.ID, key) {
			return f
		}
	}
	for i := len(n.succ) - 1; i >= 0; i-- {
		s := n.succ[i]
		if s != nil && s.alive && s != n && id.Between(s.ID, n.ID, key) {
			return s
		}
	}
	return n
}

// FindSuccessorFrom routes from node `from` to the owner of key, counting
// one message per hop in Msgs and returning the hop count. It fails only
// if routing gets stuck (e.g. a partitioned overlay after mass failures).
func (p *Proto) FindSuccessorFrom(from *ProtoNode, key id.ID) (*ProtoNode, int, error) {
	if from == nil || !from.alive {
		return nil, 0, fmt.Errorf("chord: lookup from dead node")
	}
	u := from
	hops := 0
	// Generous bound: lookups are O(log N) whp; 4*Bits catches livelock
	// from grossly inconsistent state without masking real behaviour.
	for limit := 0; limit < 4*id.Bits; limit++ {
		s := u.firstAliveSuccessor()
		if s == nil {
			return nil, hops, fmt.Errorf("chord: node %s has no live successor", u.ID.Short())
		}
		if id.InOpenClosed(key, u.ID, s.ID) {
			if s != u {
				p.Msgs++
				hops++
			}
			return s, hops, nil
		}
		v := u.closestPrecedingLive(key)
		if v == u {
			v = s
		}
		p.Msgs++
		hops++
		u = v
	}
	return nil, hops, fmt.Errorf("chord: lookup for %s did not converge", key.Short())
}

// WalkToPredecessor routes from `from` to the live node immediately
// preceding key in this overlay (the protocol counterpart of
// Table.WalkToPredecessor), counting messages and hops.
func (p *Proto) WalkToPredecessor(from *ProtoNode, key id.ID) (*ProtoNode, int, error) {
	if from == nil || !from.alive {
		return nil, 0, fmt.Errorf("chord: walk from dead node")
	}
	u := from
	hops := 0
	for limit := 0; limit < 4*id.Bits; limit++ {
		s := u.firstAliveSuccessor()
		if s == nil {
			return nil, hops, fmt.Errorf("chord: node %s has no live successor", u.ID.Short())
		}
		if id.InOpenClosed(key, u.ID, s.ID) {
			return u, hops, nil
		}
		v := u.closestPrecedingLive(key)
		if v == u {
			v = s
		}
		p.Msgs++
		hops++
		u = v
	}
	return nil, hops, fmt.Errorf("chord: walk for %s did not converge", key.Short())
}

// Stabilize runs one stabilization round on node n (Chord's stabilize +
// notify): it verifies its successor, adopts a closer one if the successor
// knows of it, refreshes its successor list and notifies the successor.
func (p *Proto) Stabilize(n *ProtoNode) {
	if !n.alive {
		return
	}
	s := n.firstAliveSuccessor()
	if s == nil {
		return
	}
	p.Msgs++ // ask successor for its predecessor
	if x := s.pred; x != nil && x.alive && x != n && id.Between(x.ID, n.ID, s.ID) {
		s = x
	}
	// Rebuild the successor list from s's list.
	p.Msgs++ // fetch successor list
	list := make([]*ProtoNode, 0, p.r)
	list = append(list, s)
	for _, e := range s.succ {
		if len(list) >= p.r {
			break
		}
		if e != nil && e.alive && e != n {
			list = append(list, e)
		}
	}
	n.succ = list
	// notify(s, n)
	p.Msgs++
	if s.pred == nil || !s.pred.alive || id.Between(n.ID, s.pred.ID, s.ID) {
		s.pred = n
	}
}

// FixFinger refreshes one finger of n (round-robin), at the cost of one
// lookup through the overlay.
func (p *Proto) FixFinger(n *ProtoNode) error {
	if !n.alive {
		return nil
	}
	k := n.nextFix
	n.nextFix = (n.nextFix + 1) % id.Bits
	target := id.AddPow2(n.ID, uint(k))
	s, _, err := p.FindSuccessorFrom(n, target)
	if err != nil {
		return err
	}
	n.finger[k] = s
	return nil
}

// BuildFingers fills n's whole finger table with lookups routed through
// boot — the join-time finger construction HIERAS uses (paper §3.3 "it can
// learn its fingers by asking node n' to look them up").
func (p *Proto) BuildFingers(n *ProtoNode, boot *ProtoNode) error {
	for k := uint(0); k < id.Bits; k++ {
		s, _, err := p.FindSuccessorFrom(boot, id.AddPow2(n.ID, k))
		if err != nil {
			return err
		}
		n.finger[k] = s
	}
	return nil
}

// StabilizeAll runs one stabilization round on every live node in
// identifier order (deterministic).
func (p *Proto) StabilizeAll() {
	for _, n := range p.sortedLive() {
		p.Stabilize(n)
	}
}

// FixAllFingers refreshes every finger of every live node. Expensive; used
// by tests and by maintenance-cost accounting.
func (p *Proto) FixAllFingers() error {
	for _, n := range p.sortedLive() {
		for k := 0; k < id.Bits; k++ {
			if err := p.FixFinger(n); err != nil {
				return err
			}
		}
	}
	return nil
}

func (p *Proto) sortedLive() []*ProtoNode {
	live := p.Nodes()
	sortNodes(live)
	return live
}

func sortNodes(ns []*ProtoNode) {
	// Insertion-friendly simple sort by ID; node counts in protocol tests
	// are modest.
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j].ID.Less(ns[j-1].ID); j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}

// Leave removes n gracefully: it hands its predecessor and successor to
// each other before departing.
func (p *Proto) Leave(n *ProtoNode) {
	if !n.alive {
		return
	}
	s := n.firstAliveSuccessor()
	if s != nil && s != n {
		p.Msgs += 2 // notify successor and predecessor
		if n.pred != nil && n.pred.alive {
			s.pred = n.pred
			n.pred.succ = append([]*ProtoNode{s}, trimSucc(n.pred.succ, p.r-1)...)
		}
	}
	n.alive = false
	delete(p.nodes, n.ID)
}

func trimSucc(succ []*ProtoNode, max int) []*ProtoNode {
	if len(succ) > max {
		return succ[:max]
	}
	return succ
}

// Fail kills n silently; other nodes discover the failure through
// stabilization timeouts.
func (p *Proto) Fail(n *ProtoNode) {
	n.alive = false
	delete(p.nodes, n.ID)
}

// Converged reports whether every live node's successor pointer matches
// the true ring order — the postcondition stabilization must reach.
func (p *Proto) Converged() bool {
	live := p.sortedLive()
	if len(live) == 0 {
		return true
	}
	for i, n := range live {
		want := live[(i+1)%len(live)]
		if n.firstAliveSuccessor() != want {
			return false
		}
	}
	return true
}

// FingersExact reports whether every live node's finger table matches the
// oracle definition finger[k] == successor(ID + 2^k).
func (p *Proto) FingersExact() bool {
	live := p.sortedLive()
	n := len(live)
	if n == 0 {
		return true
	}
	ids := make([]id.ID, n)
	for i, nd := range live {
		ids[i] = nd.ID
	}
	succOf := func(key id.ID) *ProtoNode {
		for i := range ids {
			prev := ids[(i-1+n)%n]
			if id.InOpenClosed(key, prev, ids[i]) {
				return live[i]
			}
		}
		return live[0]
	}
	for _, nd := range live {
		for k := uint(0); k < id.Bits; k++ {
			if nd.finger[k] != succOf(id.AddPow2(nd.ID, k)) {
				return false
			}
		}
	}
	return true
}
