package chord

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/id"
)

// makeMembers returns n members with random distinct IDs.
func makeMembers(rng *rand.Rand, n int) []Member {
	seen := make(map[id.ID]bool, n)
	ms := make([]Member, 0, n)
	for len(ms) < n {
		x := id.Rand(rng)
		if !seen[x] {
			seen[x] = true
			ms = append(ms, Member{ID: x, Host: len(ms)})
		}
	}
	return ms
}

func mustTable(t *testing.T, ms []Member) *Table {
	t.Helper()
	tbl, err := BuildTable(ms, 0)
	if err != nil {
		t.Fatalf("BuildTable: %v", err)
	}
	return tbl
}

func TestBuildTableErrors(t *testing.T) {
	if _, err := BuildTable(nil, 0); err == nil {
		t.Error("empty member set accepted")
	}
	x := id.HashString("dup")
	if _, err := BuildTable([]Member{{ID: x}, {ID: x, Host: 1}}, 0); err == nil {
		t.Error("duplicate identifiers accepted")
	}
}

func TestBuildTableSortsMembers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ms := makeMembers(rng, 50)
	tbl := mustTable(t, ms)
	for i := 1; i < tbl.Len(); i++ {
		if !tbl.ID(i - 1).Less(tbl.ID(i)) {
			t.Fatal("members not in ascending ID order")
		}
	}
	// Hosts follow their IDs.
	hostByID := map[id.ID]int{}
	for _, m := range ms {
		hostByID[m.ID] = m.Host
	}
	for i := 0; i < tbl.Len(); i++ {
		if tbl.Host(i) != hostByID[tbl.ID(i)] {
			t.Fatal("host mapping lost during sort")
		}
	}
}

func TestSuccessorIndexBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tbl := mustTable(t, makeMembers(rng, 64))
	for trial := 0; trial < 500; trial++ {
		key := id.Rand(rng)
		got := tbl.SuccessorIndex(key)
		// Brute force: owner is the member j with key in (prev(j), j].
		want := -1
		for j := 0; j < tbl.Len(); j++ {
			if id.InOpenClosed(key, tbl.ID(tbl.Prev(j)), tbl.ID(j)) {
				want = j
				break
			}
		}
		if got != want {
			t.Fatalf("SuccessorIndex(%s) = %d, want %d", key.Short(), got, want)
		}
	}
}

func TestSuccessorIndexExactKey(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tbl := mustTable(t, makeMembers(rng, 20))
	for i := 0; i < tbl.Len(); i++ {
		if got := tbl.SuccessorIndex(tbl.ID(i)); got != i {
			t.Fatalf("a member owns its own identifier: got %d want %d", got, i)
		}
	}
}

func TestPredecessorIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tbl := mustTable(t, makeMembers(rng, 30))
	for trial := 0; trial < 200; trial++ {
		key := id.Rand(rng)
		p := tbl.PredecessorIndex(key)
		if !id.InOpenClosed(key, tbl.ID(p), tbl.ID(tbl.Next(p))) {
			t.Fatalf("predecessor %d does not precede key %s", p, key.Short())
		}
	}
}

func TestFingerDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tbl := mustTable(t, makeMembers(rng, 40))
	for i := 0; i < tbl.Len(); i += 7 {
		for k := uint(0); k < id.Bits; k += 13 {
			want := tbl.SuccessorIndex(id.AddPow2(tbl.ID(i), k))
			if got := tbl.Finger(i, k); got != want {
				t.Fatalf("finger[%d][%d] = %d, want %d", i, k, got, want)
			}
		}
	}
}

func TestIndexOf(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tbl := mustTable(t, makeMembers(rng, 25))
	for i := 0; i < tbl.Len(); i++ {
		if tbl.IndexOf(tbl.ID(i)) != i {
			t.Fatal("IndexOf failed for a member")
		}
	}
	if tbl.IndexOf(id.HashString("not-a-member")) != -1 {
		t.Error("IndexOf should return -1 for non-members")
	}
}

func TestLookupLandsOnOwner(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tbl := mustTable(t, makeMembers(rng, 128))
	for trial := 0; trial < 1000; trial++ {
		from := rng.Intn(tbl.Len())
		key := id.Rand(rng)
		owner, hops := tbl.Lookup(from, key, nil)
		if owner != tbl.SuccessorIndex(key) {
			t.Fatalf("lookup landed on %d, owner is %d", owner, tbl.SuccessorIndex(key))
		}
		if hops < 0 || hops > id.Bits {
			t.Fatalf("hop count %d out of range", hops)
		}
	}
}

func TestLookupZeroHopsWhenOwner(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tbl := mustTable(t, makeMembers(rng, 32))
	for i := 0; i < tbl.Len(); i++ {
		// A key just below the member's own ID (and above its
		// predecessor's) is owned by member i.
		key := tbl.ID(i)
		owner, hops := tbl.Lookup(i, key, nil)
		if owner != i || hops != 0 {
			t.Fatalf("self-owned lookup: owner %d hops %d", owner, hops)
		}
	}
}

func TestLookupVisitsContiguousPath(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tbl := mustTable(t, makeMembers(rng, 100))
	for trial := 0; trial < 100; trial++ {
		from := rng.Intn(tbl.Len())
		key := id.Rand(rng)
		cur := from
		count := 0
		owner, hops := tbl.Lookup(from, key, func(f, to int) {
			if f != cur {
				t.Fatalf("discontiguous path: hop from %d but current is %d", f, cur)
			}
			cur = to
			count++
		})
		if cur != owner {
			t.Fatalf("path ends at %d, owner %d", cur, owner)
		}
		if count != hops {
			t.Fatalf("visit count %d != hops %d", count, hops)
		}
	}
}

func TestLookupHalvesDistance(t *testing.T) {
	// Scalability property from the paper: the message keeps moving toward
	// the destination, reducing nearly half the distance each time; hops
	// are O(log N).
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{16, 64, 256, 1024} {
		tbl := mustTable(t, makeMembers(rng, n))
		total := 0
		trials := 400
		for trial := 0; trial < trials; trial++ {
			_, hops := tbl.Lookup(rng.Intn(n), id.Rand(rng), nil)
			total += hops
		}
		mean := float64(total) / float64(trials)
		bound := 1.5*math.Log2(float64(n)) + 2
		if mean > bound {
			t.Errorf("n=%d: mean hops %.2f exceeds %.2f", n, mean, bound)
		}
	}
}

func TestSingleMemberRing(t *testing.T) {
	tbl := mustTable(t, []Member{{ID: id.HashString("solo"), Host: 0}})
	owner, hops := tbl.Lookup(0, id.HashString("any key"), nil)
	if owner != 0 || hops != 0 {
		t.Fatalf("single-member lookup: owner %d hops %d", owner, hops)
	}
	if tbl.Next(0) != 0 || tbl.Prev(0) != 0 {
		t.Error("single member is its own neighbor")
	}
}

func TestTwoMemberRing(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tbl := mustTable(t, makeMembers(rng, 2))
	for trial := 0; trial < 100; trial++ {
		key := id.Rand(rng)
		from := rng.Intn(2)
		owner, hops := tbl.Lookup(from, key, nil)
		if owner != tbl.SuccessorIndex(key) {
			t.Fatal("wrong owner on 2-ring")
		}
		if hops > 1 {
			t.Fatalf("2-ring lookup took %d hops", hops)
		}
	}
}

func TestWalkToPredecessor(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tbl := mustTable(t, makeMembers(rng, 80))
	for trial := 0; trial < 300; trial++ {
		from := rng.Intn(tbl.Len())
		key := id.Rand(rng)
		p, _ := tbl.WalkToPredecessor(from, key, nil)
		if !id.InOpenClosed(key, tbl.ID(p), tbl.ID(tbl.Next(p))) {
			t.Fatalf("walk ended at %d which does not precede %s", p, key.Short())
		}
	}
}

func TestSuccessorList(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tbl := mustTable(t, makeMembers(rng, 10))
	l := tbl.SuccessorList(8, 4)
	want := []int{9, 0, 1, 2}
	if len(l) != 4 {
		t.Fatalf("len = %d", len(l))
	}
	for i := range l {
		if l[i] != want[i] {
			t.Fatalf("SuccessorList = %v, want %v", l, want)
		}
	}
	// r larger than the ring truncates.
	if got := tbl.SuccessorList(0, 100); len(got) != 9 {
		t.Errorf("truncated list len = %d, want 9", len(got))
	}
}

func TestMembersCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	tbl := mustTable(t, makeMembers(rng, 5))
	ms := tbl.Members()
	ms[0].Host = 999
	if tbl.Host(0) == 999 {
		t.Error("Members must return a copy")
	}
}

func TestQuickLookupOwnerInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	tbl := mustTable(t, makeMembers(rng, 200))
	f := func(seed int64, fromRaw uint16) bool {
		r := rand.New(rand.NewSource(seed))
		key := id.Rand(r)
		from := int(fromRaw) % tbl.Len()
		owner, _ := tbl.Lookup(from, key, nil)
		// The owner invariant: key in (pred(owner), owner].
		return id.InOpenClosed(key, tbl.ID(tbl.Prev(owner)), tbl.ID(owner))
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickLookupFromAnywhereSameOwner(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	tbl := mustTable(t, makeMembers(rng, 150))
	f := func(seed int64, a, b uint16) bool {
		r := rand.New(rand.NewSource(seed))
		key := id.Rand(r)
		o1, _ := tbl.Lookup(int(a)%tbl.Len(), key, nil)
		o2, _ := tbl.Lookup(int(b)%tbl.Len(), key, nil)
		return o1 == o2
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkBuildTable1000(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	ms := makeMembers(rng, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildTable(ms, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(21))
			ms := makeMembers(rng, n)
			tbl, err := BuildTable(ms, 0)
			if err != nil {
				b.Fatal(err)
			}
			keys := make([]id.ID, 1024)
			for i := range keys {
				keys[i] = id.Rand(rng)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tbl.Lookup(i%n, keys[i%len(keys)], nil)
			}
		})
	}
}
