package chord

import (
	"fmt"

	"repro/internal/id"
)

// Verify checks the table's structural invariants: members strictly
// ascending by identifier and every finger exactly the first member at or
// after ids[i] + 2^k. A nil error means the table is a correct plain
// Chord routing structure; the invariant harness uses it as the oracle
// other layers are compared against. For tables built with proximity
// neighbor selection use VerifyPNS.
func (t *Table) Verify() error { return t.verify(true) }

// VerifyPNS checks the invariants of a proximity-built table: member
// order as in Verify, and every finger inside its legal interval — the
// circular member range [successor(ids[i]+2^k), successor(ids[i]+2^k+1))
// — falling back to the exact successor when the interval is empty.
func (t *Table) VerifyPNS() error { return t.verify(false) }

func (t *Table) verify(exact bool) error {
	n := len(t.ids)
	if n == 0 {
		return fmt.Errorf("chord: empty table")
	}
	for i := 1; i < n; i++ {
		if !t.ids[i-1].Less(t.ids[i]) {
			return fmt.Errorf("chord: members %d,%d out of order (%s >= %s)",
				i-1, i, t.ids[i-1].Short(), t.ids[i].Short())
		}
	}
	for i := 0; i < n; i++ {
		if len(t.fingers[i]) != id.Bits {
			return fmt.Errorf("chord: member %d has %d fingers, want %d", i, len(t.fingers[i]), id.Bits)
		}
		for k := uint(0); k < id.Bits; k++ {
			target := id.AddPow2(t.ids[i], k)
			first := t.SuccessorIndex(target)
			got := int(t.fingers[i][k])
			if exact {
				if got != first {
					return fmt.Errorf("chord: member %d finger %d = %d, want successor(%s) = %d",
						i, k, got, target.Short(), first)
				}
				continue
			}
			lastExcl := i // the top interval [ids[i]+2^159, ids[i]) ends at self
			if k+1 < id.Bits {
				lastExcl = t.SuccessorIndex(id.AddPow2(t.ids[i], k+1))
			}
			if first == lastExcl {
				// Empty interval: the builder keeps the plain finger.
				if got != first {
					return fmt.Errorf("chord: member %d finger %d = %d, want fallback %d (empty interval)",
						i, k, got, first)
				}
				continue
			}
			inRange := false
			if first < lastExcl {
				inRange = first <= got && got < lastExcl
			} else {
				inRange = got >= first || got < lastExcl
			}
			if !inRange {
				return fmt.Errorf("chord: member %d finger %d = %d outside legal interval [%d,%d)",
					i, k, got, first, lastExcl)
			}
		}
	}
	return nil
}
