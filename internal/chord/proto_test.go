package chord

import (
	"math/rand"
	"testing"

	"repro/internal/id"
)

// buildProto bootstraps a protocol overlay with n nodes and runs enough
// stabilization to converge, failing the test otherwise.
func buildProto(t *testing.T, rng *rand.Rand, n, succLen int) (*Proto, []*ProtoNode) {
	t.Helper()
	p := NewProto(succLen)
	ms := makeMembers(rng, n)
	first, err := p.Bootstrap(ms[0])
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	nodes := []*ProtoNode{first}
	for _, m := range ms[1:] {
		nd, err := p.Join(m, nodes[rng.Intn(len(nodes))])
		if err != nil {
			t.Fatalf("Join: %v", err)
		}
		nodes = append(nodes, nd)
		// A couple of rounds after each join keeps pointers fresh, as the
		// periodic stabilization protocol would.
		p.StabilizeAll()
	}
	for i := 0; i < 3 && !p.Converged(); i++ {
		p.StabilizeAll()
	}
	if !p.Converged() {
		t.Fatal("stabilization did not converge")
	}
	return p, nodes
}

func TestBootstrapSingle(t *testing.T) {
	p := NewProto(3)
	n, err := p.Bootstrap(Member{ID: id.HashString("n0"), Host: 0})
	if err != nil {
		t.Fatal(err)
	}
	if n.Successor() != n || n.Predecessor() != n {
		t.Error("bootstrap node should point at itself")
	}
	if _, rebootErr := p.Bootstrap(Member{ID: id.HashString("n1")}); rebootErr == nil {
		t.Error("double bootstrap accepted")
	}
	owner, hops, err := p.FindSuccessorFrom(n, id.HashString("key"))
	if err != nil || owner != n || hops != 0 {
		t.Errorf("single-node lookup: %v %v %v", owner, hops, err)
	}
}

func TestJoinErrors(t *testing.T) {
	p := NewProto(3)
	n, _ := p.Bootstrap(Member{ID: id.HashString("n0")})
	if _, err := p.Join(Member{ID: id.HashString("n0")}, n); err == nil {
		t.Error("duplicate ID join accepted")
	}
	if _, err := p.Join(Member{ID: id.HashString("n1")}, nil); err == nil {
		t.Error("nil bootstrap accepted")
	}
	dead := &ProtoNode{alive: false}
	if _, err := p.Join(Member{ID: id.HashString("n2")}, dead); err == nil {
		t.Error("dead bootstrap accepted")
	}
}

func TestStabilizationConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p, _ := buildProto(t, rng, 40, 4)
	if p.Size() != 40 {
		t.Errorf("Size = %d", p.Size())
	}
}

func TestFixFingersMakesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p, _ := buildProto(t, rng, 30, 4)
	if err := p.FixAllFingers(); err != nil {
		t.Fatal(err)
	}
	if !p.FingersExact() {
		t.Error("fingers should be exact after FixAllFingers on a converged ring")
	}
}

func TestProtoLookupMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p, nodes := buildProto(t, rng, 50, 4)
	if err := p.FixAllFingers(); err != nil {
		t.Fatal(err)
	}
	// Oracle table over the same members.
	ms := make([]Member, len(nodes))
	for i, n := range nodes {
		ms[i] = Member{ID: n.ID, Host: n.Host}
	}
	tbl := mustTable(t, ms)
	for trial := 0; trial < 300; trial++ {
		key := id.Rand(rng)
		from := nodes[rng.Intn(len(nodes))]
		got, _, err := p.FindSuccessorFrom(from, key)
		if err != nil {
			t.Fatal(err)
		}
		want := tbl.ID(tbl.SuccessorIndex(key))
		if got.ID != want {
			t.Fatalf("protocol owner %s, oracle owner %s", got.ID.Short(), want.Short())
		}
	}
}

func TestMessageCounting(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p, nodes := buildProto(t, rng, 20, 4)
	before := p.Msgs
	if before == 0 {
		t.Error("joins and stabilization should have cost messages")
	}
	_, hops, err := p.FindSuccessorFrom(nodes[0], id.Rand(rng))
	if err != nil {
		t.Fatal(err)
	}
	if p.Msgs != before+int64(hops) {
		t.Errorf("Msgs grew by %d, hops were %d", p.Msgs-before, hops)
	}
}

func TestLeaveGraceful(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p, nodes := buildProto(t, rng, 25, 4)
	victim := nodes[7]
	p.Leave(victim)
	if victim.Alive() {
		t.Error("left node still alive")
	}
	for i := 0; i < 5 && !p.Converged(); i++ {
		p.StabilizeAll()
	}
	if !p.Converged() {
		t.Error("ring did not re-converge after graceful leave")
	}
	if p.Size() != 24 {
		t.Errorf("Size = %d, want 24", p.Size())
	}
	// Leaving twice is a no-op.
	p.Leave(victim)
}

func TestSilentFailureRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p, nodes := buildProto(t, rng, 40, 6)
	if err := p.FixAllFingers(); err != nil {
		t.Fatal(err)
	}
	// Kill 5 random nodes silently.
	perm := rng.Perm(len(nodes))
	killed := map[*ProtoNode]bool{}
	for _, i := range perm[:5] {
		p.Fail(nodes[i])
		killed[nodes[i]] = true
	}
	for i := 0; i < 8 && !p.Converged(); i++ {
		p.StabilizeAll()
	}
	if !p.Converged() {
		t.Fatal("ring did not heal after silent failures")
	}
	// Lookups still succeed from every survivor.
	for _, n := range nodes {
		if killed[n] {
			continue
		}
		if _, _, err := p.FindSuccessorFrom(n, id.Rand(rng)); err != nil {
			t.Fatalf("post-failure lookup from %s: %v", n.ID.Short(), err)
		}
	}
}

func TestLookupFromDeadNode(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p, nodes := buildProto(t, rng, 10, 3)
	p.Fail(nodes[0])
	if _, _, err := p.FindSuccessorFrom(nodes[0], id.Rand(rng)); err == nil {
		t.Error("lookup from dead node should fail")
	}
}

func TestBuildFingers(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p, nodes := buildProto(t, rng, 20, 4)
	n := nodes[5]
	for k := range n.finger {
		n.finger[k] = nil
	}
	if err := p.BuildFingers(n, nodes[0]); err != nil {
		t.Fatal(err)
	}
	for k := uint(0); k < id.Bits; k++ {
		if n.finger[k] == nil {
			t.Fatalf("finger %d not built", k)
		}
	}
}

func TestConvergedEmptyAndSingle(t *testing.T) {
	p := NewProto(2)
	if !p.Converged() {
		t.Error("empty overlay is trivially converged")
	}
	n, _ := p.Bootstrap(Member{ID: id.HashString("solo")})
	if !p.Converged() {
		t.Error("single node is converged")
	}
	_ = n
}

func TestSuccessorListLenClamped(t *testing.T) {
	if NewProto(0).SuccessorListLen() != 1 {
		t.Error("r < 1 should clamp to 1")
	}
	if NewProto(5).SuccessorListLen() != 5 {
		t.Error("r not preserved")
	}
}
