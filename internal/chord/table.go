// Package chord implements the Chord distributed hash table (Stoica et
// al.), which HIERAS uses as its underlying routing algorithm in every
// layer. Two construction paths are provided:
//
//   - Table: an oracle-built routing structure over a known member set,
//     used for large-scale trace-driven experiments (the paper simulates
//     up to 10,000 nodes and 100,000 requests). Finger tables are exact.
//   - Proto (proto.go): a message-level protocol implementation with
//     join, stabilization, fix-fingers and failure handling, used for
//     protocol correctness tests, churn simulation and overhead
//     accounting.
//
// Identifiers live in the 160-bit space of package id. A Table may cover
// any subset of the system's peers: HIERAS builds one Table per P2P ring.
package chord

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/id"
)

// Member is one peer as seen by a ring's routing table.
type Member struct {
	ID   id.ID
	Host int // index of the peer's host in the topology network
}

// Table is an exact Chord routing structure over a fixed member set.
// Member indexes (0..Len-1) follow ascending identifier order; the ring
// successor of member i is member (i+1) mod Len.
//
// Table is immutable after construction and safe for concurrent use.
type Table struct {
	ids     []id.ID
	hosts   []int32
	fingers [][]int32 // fingers[i][k] = member index of successor(ids[i] + 2^k)
}

// BuildTable constructs the exact finger tables for the given members.
// Members may be passed in any order; they are sorted by identifier.
// Duplicate identifiers are rejected. workers <= 0 uses all CPUs.
func BuildTable(members []Member, workers int) (*Table, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("chord: empty member set")
	}
	ms := make([]Member, len(members))
	copy(ms, members)
	sort.Slice(ms, func(a, b int) bool { return ms[a].ID.Less(ms[b].ID) })
	t := &Table{
		ids:   make([]id.ID, len(ms)),
		hosts: make([]int32, len(ms)),
	}
	for i, m := range ms {
		if i > 0 && m.ID == ms[i-1].ID {
			return nil, fmt.Errorf("chord: duplicate identifier %s", m.ID.Short())
		}
		t.ids[i] = m.ID
		t.hosts[i] = int32(m.Host)
	}
	n := len(ms)
	t.fingers = make([][]int32, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				f := make([]int32, id.Bits)
				for k := uint(0); k < id.Bits; k++ {
					f[k] = int32(t.SuccessorIndex(id.AddPow2(t.ids[i], k)))
				}
				t.fingers[i] = f
			}
		}(lo, hi)
	}
	wg.Wait()
	return t, nil
}

// Len returns the number of members.
func (t *Table) Len() int { return len(t.ids) }

// ID returns member i's identifier.
func (t *Table) ID(i int) id.ID { return t.ids[i] }

// Host returns member i's host index.
func (t *Table) Host(i int) int { return int(t.hosts[i]) }

// Next returns the ring successor of member i.
func (t *Table) Next(i int) int { return (i + 1) % len(t.ids) }

// Prev returns the ring predecessor of member i.
func (t *Table) Prev(i int) int { return (i - 1 + len(t.ids)) % len(t.ids) }

// Finger returns the k'th finger of member i: the member whose identifier
// is the first to succeed ids[i] + 2^k.
func (t *Table) Finger(i int, k uint) int { return int(t.fingers[i][k]) }

// IndexOf returns the member index holding exactly this identifier, or -1.
func (t *Table) IndexOf(x id.ID) int {
	n := len(t.ids)
	i := sort.Search(n, func(j int) bool { return !t.ids[j].Less(x) })
	if i < n && t.ids[i] == x {
		return i
	}
	return -1
}

// SuccessorIndex returns the member index of successor(key): the first
// member whose identifier is >= key, wrapping to member 0 past the top of
// the identifier space. This member is the owner of key.
func (t *Table) SuccessorIndex(key id.ID) int {
	n := len(t.ids)
	i := sort.Search(n, func(j int) bool { return !t.ids[j].Less(key) })
	if i == n {
		return 0
	}
	return i
}

// PredecessorIndex returns the member index of the last member strictly
// before key on the ring.
func (t *Table) PredecessorIndex(key id.ID) int {
	return t.Prev(t.SuccessorIndex(key))
}

// ClosestPrecedingFinger returns the member among i's fingers whose
// identifier most immediately precedes key, or i itself when no finger
// falls inside (ids[i], key). This is Chord's closest_preceding_finger.
func (t *Table) ClosestPrecedingFinger(i int, key id.ID) int {
	for k := id.Bits - 1; k >= 0; k-- {
		f := int(t.fingers[i][k])
		if f != i && id.Between(t.ids[f], t.ids[i], key) {
			return f
		}
	}
	return i
}

// WalkToPredecessor routes from member `from` toward key using fingers,
// stopping at the member that immediately precedes key in this ring (the
// node "numerically closest to the requested key than any other peers in
// this ring" of paper §3.2, one position short of the ring owner). visit,
// if non-nil, is called once per hop. It returns the final member and the
// hop count.
func (t *Table) WalkToPredecessor(from int, key id.ID, visit func(from, to int)) (int, int) {
	u := from
	hops := 0
	for !id.InOpenClosed(key, t.ids[u], t.ids[t.Next(u)]) {
		v := t.ClosestPrecedingFinger(u, key)
		if v == u {
			v = t.Next(u)
		}
		if visit != nil {
			visit(u, v)
		}
		u = v
		hops++
	}
	return u, hops
}

// Lookup performs a full Chord lookup from member `from`: it routes to
// predecessor(key) and takes the final hop to successor(key), the key's
// owner. If `from` already owns the key no hops are taken (the
// destination check of paper §3.2). It returns the owner and hop count.
func (t *Table) Lookup(from int, key id.ID, visit func(from, to int)) (int, int) {
	owner := t.SuccessorIndex(key)
	if owner == from {
		return from, 0
	}
	p, hops := t.WalkToPredecessor(from, key, visit)
	if p == owner {
		// Possible when from == predecessor wrapped into owner via walk;
		// owner check above handles from==owner, so p != owner implies a
		// final hop in all other cases.
		return owner, hops
	}
	if visit != nil {
		visit(p, owner)
	}
	return owner, hops + 1
}

// Members returns a copy of the member list in ring order.
func (t *Table) Members() []Member {
	out := make([]Member, len(t.ids))
	for i := range t.ids {
		out[i] = Member{ID: t.ids[i], Host: int(t.hosts[i])}
	}
	return out
}

// SuccessorList returns the r members following member i on the ring
// (fewer if the ring is smaller), as used for Chord fault tolerance.
func (t *Table) SuccessorList(i, r int) []int {
	n := len(t.ids)
	if r > n-1 {
		r = n - 1
	}
	out := make([]int, 0, r)
	for s := 1; s <= r; s++ {
		out = append(out, (i+s)%n)
	}
	return out
}
