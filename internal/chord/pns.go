package chord

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/id"
)

// LatencyFunc returns the network latency between two hosts in
// milliseconds.
type LatencyFunc func(a, b int) float64

// BuildTablePNS constructs a Chord table with proximity neighbor
// selection: finger k may legally be ANY node in the interval
// [n+2^k, n+2^(k+1)) (routing stays correct and logarithmic), so each slot
// picks the topologically closest of up to `samples` candidates from that
// interval. This is the locality optimisation used by DHash/Chord and
// Pastry, implemented here as a baseline the HIERAS hierarchy can be
// compared against — and combined with.
//
// When an interval contains no member the slot falls back to
// successor(n+2^k), exactly as plain Chord.
func BuildTablePNS(members []Member, lat LatencyFunc, samples int, seed int64, workers int) (*Table, error) {
	if lat == nil {
		return nil, fmt.Errorf("chord: BuildTablePNS needs a latency function")
	}
	if samples < 1 {
		samples = 8
	}
	// Start from the exact table (gives us sorted ids, hosts, and the
	// plain fingers to fall back on).
	t, err := BuildTable(members, workers)
	if err != nil {
		return nil, err
	}
	n := t.Len()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*7919))
			for i := lo; i < hi; i++ {
				for k := uint(0); k < id.Bits; k++ {
					first := int(t.fingers[i][k]) // successor(start_k)
					var lastExcl int
					if k+1 < id.Bits {
						lastExcl = t.SuccessorIndex(id.AddPow2(t.ids[i], k+1))
					} else {
						lastExcl = i // interval [n+2^159, n) ends at self
					}
					// Members in the finger interval form the circular
					// index range [first, lastExcl). Empty => keep the
					// plain fallback finger.
					size := lastExcl - first
					if size < 0 {
						size += n
					}
					if size <= 1 {
						continue
					}
					// Verify `first` actually lies inside the interval
					// (it may be the fallback successor beyond it).
					if !id.InClosedOpen(t.ids[first], id.AddPow2(t.ids[i], k), endOf(t.ids[i], k)) {
						continue
					}
					best := first
					bestLat := lat(int(t.hosts[i]), int(t.hosts[first]))
					for s := 0; s < samples-1; s++ {
						cand := (first + rng.Intn(size)) % n
						if !id.InClosedOpen(t.ids[cand], id.AddPow2(t.ids[i], k), endOf(t.ids[i], k)) {
							continue
						}
						if l := lat(int(t.hosts[i]), int(t.hosts[cand])); l < bestLat {
							best, bestLat = cand, l
						}
					}
					t.fingers[i][k] = int32(best)
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	return t, nil
}

// endOf returns the exclusive end of finger interval k for node x:
// x + 2^(k+1), or x itself for the last interval.
func endOf(x id.ID, k uint) id.ID {
	if k+1 < id.Bits {
		return id.AddPow2(x, k+1)
	}
	return x
}
