package chord

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/id"
)

func verifyMembers(n int) []Member {
	ms := make([]Member, n)
	for i := range ms {
		ms[i] = Member{ID: id.HashString("verify:" + strconv.Itoa(i)), Host: i}
	}
	return ms
}

func TestVerifyBuiltTables(t *testing.T) {
	for _, n := range []int{1, 2, 3, 17, 64} {
		tbl, err := BuildTable(verifyMembers(n), 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.Verify(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	tbl, err := BuildTable(verifyMembers(16), 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	broken := 0
	for trial := 0; trial < 50; trial++ {
		i := rng.Intn(tbl.Len())
		k := rng.Intn(id.Bits)
		orig := tbl.fingers[i][k]
		tbl.fingers[i][k] = int32(rng.Intn(tbl.Len()))
		if tbl.fingers[i][k] != orig {
			if err := tbl.Verify(); err == nil {
				t.Fatalf("corrupted finger (%d,%d): %d -> %d not detected", i, k, orig, tbl.fingers[i][k])
			}
			broken++
		}
		tbl.fingers[i][k] = orig
	}
	if broken == 0 {
		t.Fatal("no corruption trials actually changed a finger")
	}
	if err := tbl.Verify(); err != nil {
		t.Fatalf("restored table fails verification: %v", err)
	}
}

func TestVerifyCatchesMemberDisorder(t *testing.T) {
	tbl, err := BuildTable(verifyMembers(8), 0)
	if err != nil {
		t.Fatal(err)
	}
	tbl.ids[2], tbl.ids[3] = tbl.ids[3], tbl.ids[2]
	if err := tbl.Verify(); err == nil {
		t.Fatal("swapped member identifiers not detected")
	}
}

func TestVerifyPNS(t *testing.T) {
	lat := func(a, b int) float64 { return float64((a - b) * (a - b)) }
	tbl, err := BuildTablePNS(verifyMembers(64), lat, 8, 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.VerifyPNS(); err != nil {
		t.Fatalf("PNS table fails PNS verification: %v", err)
	}
	// A PNS table over a non-trivial latency space should deviate from the
	// exact table somewhere — otherwise VerifyPNS is not being exercised
	// beyond Verify.
	if err := tbl.Verify(); err == nil {
		t.Log("PNS table happens to equal the exact table (allowed, but weakens the test)")
	}
}
