package churn

import "repro/internal/metrics"

// counters holds the per-run churn metrics. With no registry configured
// every field points at throwaway counters, so the hot path never
// branches on instrumentation.
type counters struct {
	joins        *metrics.Counter
	joinRetries  *metrics.Counter
	leaves       *metrics.Counter
	fails        *metrics.Counter
	lookups      *metrics.Counter
	lookupErrors *metrics.Counter
	wrongOwner   *metrics.Counter
}

func newCounters(reg *metrics.Registry) *counters {
	if reg == nil {
		return &counters{
			joins: &metrics.Counter{}, joinRetries: &metrics.Counter{},
			leaves: &metrics.Counter{}, fails: &metrics.Counter{},
			lookups: &metrics.Counter{}, lookupErrors: &metrics.Counter{},
			wrongOwner: &metrics.Counter{},
		}
	}
	return &counters{
		joins: reg.NewCounter("churn_joins_total",
			"Nodes that completed the join protocol during the run."),
		joinRetries: reg.NewCounter("churn_join_retries_total",
			"Join attempts abandoned because the bootstrap peer died."),
		leaves: reg.NewCounter("churn_leaves_total",
			"Graceful departures."),
		fails: reg.NewCounter("churn_fails_total",
			"Silent node failures injected."),
		lookups: reg.NewCounter("churn_lookups_total",
			"Lookups issued during the run."),
		lookupErrors: reg.NewCounter("churn_lookup_errors_total",
			"Lookups whose routing procedure failed."),
		wrongOwner: reg.NewCounter("churn_wrong_owner_total",
			"Lookups that completed but landed on a stale owner."),
	}
}
