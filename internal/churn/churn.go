// Package churn simulates node dynamics on the message-level HIERAS
// overlay using the eventsim kernel: nodes join, leave gracefully and fail
// silently as Poisson processes while lookups measure routing availability
// and periodic stabilization repairs the rings. The paper assumes Chord's
// failure machinery carries over to every layer (§3.3); this package
// quantifies that claim.
package churn

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/eventsim"
	"repro/internal/id"
	"repro/internal/metrics"
	"repro/internal/topology"
)

// Config parametrises a churn run. All times are in simulated seconds;
// Every* fields are mean exponential interarrival times (0 disables that
// process).
type Config struct {
	InitialNodes   int
	JoinEvery      float64
	LeaveEvery     float64
	FailEvery      float64
	LookupEvery    float64
	StabilizeEvery float64
	Duration       float64
	Seed           int64

	Depth     int
	Landmarks int
	// SuccessorListLen is each ring's successor-list length.
	SuccessorListLen int

	// Metrics, when non-nil, receives live churn counters
	// (churn_joins_total, churn_lookup_errors_total, ...) as the run
	// progresses, so a long simulation can be watched from a scrape
	// endpoint rather than only summarised afterwards.
	Metrics *metrics.Registry
}

func (c Config) validate() error {
	if c.InitialNodes < 1 {
		return fmt.Errorf("churn: need at least one initial node")
	}
	if c.Duration <= 0 {
		return fmt.Errorf("churn: duration must be positive")
	}
	if c.LookupEvery <= 0 {
		return fmt.Errorf("churn: lookup process required (LookupEvery > 0)")
	}
	if c.StabilizeEvery <= 0 {
		return fmt.Errorf("churn: stabilization period required")
	}
	return nil
}

// Result summarises a churn run.
type Result struct {
	Lookups        int
	Correct        int // destination was the true owner among live nodes
	Completed      int // routing finished without error
	Joins          int
	Leaves         int
	Fails          int
	FinalNodes     int
	Msgs           int64
	CorrectRate    float64
	CompletionRate float64
}

// Run executes a churn simulation over net.
func Run(net *topology.Network, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.InitialNodes > net.Hosts() {
		return nil, fmt.Errorf("churn: %d initial nodes exceed %d hosts", cfg.InitialNodes, net.Hosts())
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	po, err := core.NewProtoOverlay(net, core.Config{
		Depth:            cfg.Depth,
		Landmarks:        cfg.Landmarks,
		SuccessorListLen: cfg.SuccessorListLen,
	}, rng)
	if err != nil {
		return nil, err
	}

	// Host pool management.
	var live []*core.ProtoNode
	free := make([]int, 0, net.Hosts())
	for h := net.Hosts() - 1; h >= cfg.InitialNodes; h-- {
		free = append(free, h)
	}
	for h := 0; h < cfg.InitialNodes; h++ {
		var boot *core.ProtoNode
		if len(live) > 0 {
			boot = live[rng.Intn(len(live))]
		}
		n, _, err := po.Join(h, boot, rng)
		if err != nil {
			return nil, fmt.Errorf("churn: initial join %d: %w", h, err)
		}
		live = append(live, n)
	}
	for i := 0; i < 3; i++ {
		po.StabilizeAll()
	}
	if err := po.FixAllFingers(); err != nil {
		return nil, err
	}

	res := &Result{}
	ctr := newCounters(cfg.Metrics)
	var sim eventsim.Sim
	exp := func(mean float64) float64 { return rng.ExpFloat64() * mean }
	removeLive := func(i int) *core.ProtoNode {
		n := live[i]
		live[i] = live[len(live)-1]
		live = live[:len(live)-1]
		free = append(free, n.Host)
		return n
	}

	var scheduleJoin, scheduleLeave, scheduleFail, scheduleLookup, scheduleStab func()
	scheduleJoin = func() {
		if cfg.JoinEvery <= 0 {
			return
		}
		_ = sim.After(exp(cfg.JoinEvery), func() {
			defer scheduleJoin()
			if len(free) == 0 || len(live) == 0 {
				return
			}
			h := free[len(free)-1]
			free = free[:len(free)-1]
			boot := live[rng.Intn(len(live))]
			n, _, err := po.Join(h, boot, rng)
			if err != nil {
				free = append(free, h) // bootstrap raced a failure; retry later
				ctr.joinRetries.Inc()
				return
			}
			live = append(live, n)
			res.Joins++
			ctr.joins.Inc()
		})
	}
	scheduleLeave = func() {
		if cfg.LeaveEvery <= 0 {
			return
		}
		_ = sim.After(exp(cfg.LeaveEvery), func() {
			defer scheduleLeave()
			if len(live) <= 2 {
				return
			}
			po.Leave(removeLive(rng.Intn(len(live))))
			res.Leaves++
			ctr.leaves.Inc()
		})
	}
	scheduleFail = func() {
		if cfg.FailEvery <= 0 {
			return
		}
		_ = sim.After(exp(cfg.FailEvery), func() {
			defer scheduleFail()
			if len(live) <= 2 {
				return
			}
			po.Fail(removeLive(rng.Intn(len(live))))
			res.Fails++
			ctr.fails.Inc()
		})
	}
	scheduleLookup = func() {
		_ = sim.After(exp(cfg.LookupEvery), func() {
			defer scheduleLookup()
			if len(live) == 0 {
				return
			}
			res.Lookups++
			ctr.lookups.Inc()
			from := live[rng.Intn(len(live))]
			key := id.Rand(rng)
			dest, _, err := po.Route(from, key)
			if err != nil {
				ctr.lookupErrors.Inc()
				return
			}
			res.Completed++
			if dest.ID == trueOwner(live, key) {
				res.Correct++
			} else {
				ctr.wrongOwner.Inc()
			}
		})
	}
	scheduleStab = func() {
		_ = sim.After(cfg.StabilizeEvery, func() {
			defer scheduleStab()
			po.StabilizeAll()
			po.RepairRingTables()
			// One finger refresh per node per period, as real Chord would
			// rotate through fix_fingers.
			for _, n := range live {
				if n.Global.Alive() {
					_ = po.GlobalProto().FixFinger(n.Global)
				}
			}
		})
	}
	scheduleJoin()
	scheduleLeave()
	scheduleFail()
	scheduleLookup()
	scheduleStab()
	sim.RunUntil(cfg.Duration)

	res.FinalNodes = len(live)
	res.Msgs = po.Msgs()
	if res.Lookups > 0 {
		res.CorrectRate = float64(res.Correct) / float64(res.Lookups)
		res.CompletionRate = float64(res.Completed) / float64(res.Lookups)
	}
	return res, nil
}

// trueOwner returns the identifier of the key's owner among the live
// nodes: the first live identifier clockwise from the key.
func trueOwner(live []*core.ProtoNode, key id.ID) id.ID {
	best := id.ID{}
	bestSet := false
	var bestDist id.ID
	for _, n := range live {
		d := id.Dist(key, n.ID)
		if !bestSet || cmpID(d, bestDist) < 0 {
			best, bestDist, bestSet = n.ID, d, true
		}
	}
	return best
}

func cmpID(a, b id.ID) int { return a.Cmp(b) }

// Sweep runs churn at several failure intensities and reports rows of
// (mean fail interarrival, correctness). Used by the ablation benches.
type SweepRow struct {
	FailEvery   float64
	CorrectRate float64
	Fails       int
}

// FailureSweep varies FailEvery and returns one row per setting.
func FailureSweep(net *topology.Network, base Config, failEvery []float64) ([]SweepRow, error) {
	var out []SweepRow
	for _, fe := range failEvery {
		cfg := base
		cfg.FailEvery = fe
		if math.IsNaN(fe) {
			return nil, fmt.Errorf("churn: NaN failure interval")
		}
		r, err := Run(net, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepRow{FailEvery: fe, CorrectRate: r.CorrectRate, Fails: r.Fails})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FailEvery < out[j].FailEvery })
	return out, nil
}
