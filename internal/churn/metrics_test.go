package churn

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// TestMetricsMatchResult runs a churn simulation with a registry attached
// and checks the exported counters agree with the returned Result.
func TestMetricsMatchResult(t *testing.T) {
	net := testNet(t, 60, 2)
	cfg := baseConfig()
	cfg.JoinEvery = 4
	cfg.LeaveEvery = 6
	cfg.FailEvery = 8
	cfg.Metrics = metrics.NewRegistry()

	res, err := Run(net, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if _, err := cfg.Metrics.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		fmt.Sprintf("churn_joins_total %d", res.Joins),
		fmt.Sprintf("churn_leaves_total %d", res.Leaves),
		fmt.Sprintf("churn_fails_total %d", res.Fails),
		fmt.Sprintf("churn_lookups_total %d", res.Lookups),
		fmt.Sprintf("churn_lookup_errors_total %d", res.Lookups-res.Completed),
		fmt.Sprintf("churn_wrong_owner_total %d", res.Completed-res.Correct),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if res.Lookups == 0 || res.Fails == 0 {
		t.Fatalf("run exercised nothing: %+v", res)
	}
}

// TestNilRegistryIsFine makes sure an uninstrumented run works and the
// throwaway counters still count.
func TestNilRegistryIsFine(t *testing.T) {
	c := newCounters(nil)
	c.joins.Inc()
	if c.joins.Value() != 1 {
		t.Error("throwaway counter did not count")
	}
}
