package churn

import (
	"math/rand"
	"testing"

	"repro/internal/topology"
	"repro/internal/topology/transitstub"
)

func testNet(t testing.TB, hosts int, seed int64) *topology.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m, err := transitstub.Generate(transitstub.DefaultConfig(hosts), rng)
	if err != nil {
		t.Fatal(err)
	}
	net, err := topology.Attach(m, m.G, topology.AttachOptions{
		Hosts: hosts, Routers: m.StubRouters, Spread: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func baseConfig() Config {
	return Config{
		InitialNodes:     30,
		LookupEvery:      0.5,
		StabilizeEvery:   2,
		Duration:         200,
		Seed:             1,
		Depth:            2,
		Landmarks:        4,
		SuccessorListLen: 6,
	}
}

func TestValidate(t *testing.T) {
	net := testNet(t, 40, 1)
	bad := []Config{
		{},
		{InitialNodes: 5},
		{InitialNodes: 5, Duration: 10},
		{InitialNodes: 5, Duration: 10, LookupEvery: 1},
	}
	for i, cfg := range bad {
		if _, err := Run(net, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	cfg := baseConfig()
	cfg.InitialNodes = 1000
	if _, err := Run(net, cfg); err == nil {
		t.Error("initial nodes exceeding hosts accepted")
	}
}

func TestStableSystemPerfectLookups(t *testing.T) {
	net := testNet(t, 40, 2)
	cfg := baseConfig()
	res, err := Run(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lookups == 0 {
		t.Fatal("no lookups executed")
	}
	if res.CorrectRate != 1.0 || res.CompletionRate != 1.0 {
		t.Errorf("stable system should be perfect: correct %.3f complete %.3f",
			res.CorrectRate, res.CompletionRate)
	}
	if res.Joins != 0 || res.Leaves != 0 || res.Fails != 0 {
		t.Error("disabled processes fired")
	}
	if res.FinalNodes != 30 {
		t.Errorf("FinalNodes = %d", res.FinalNodes)
	}
}

func TestChurnWithJoinsAndLeaves(t *testing.T) {
	net := testNet(t, 80, 3)
	cfg := baseConfig()
	cfg.JoinEvery = 10
	cfg.LeaveEvery = 12
	res, err := Run(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Joins == 0 || res.Leaves == 0 {
		t.Fatalf("churn processes idle: %d joins %d leaves", res.Joins, res.Leaves)
	}
	if res.CompletionRate < 0.95 {
		t.Errorf("completion rate %.3f too low under graceful churn", res.CompletionRate)
	}
	if res.CorrectRate < 0.90 {
		t.Errorf("correctness %.3f too low under graceful churn", res.CorrectRate)
	}
}

func TestChurnWithFailures(t *testing.T) {
	net := testNet(t, 80, 4)
	cfg := baseConfig()
	cfg.FailEvery = 15
	cfg.JoinEvery = 15
	res, err := Run(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fails == 0 {
		t.Fatal("failure process idle")
	}
	// Successor lists of length 6 should keep the overlay routable.
	if res.CompletionRate < 0.90 {
		t.Errorf("completion rate %.3f too low with failures", res.CompletionRate)
	}
	if res.Msgs == 0 {
		t.Error("no protocol messages counted")
	}
}

func TestChurnDeterministic(t *testing.T) {
	cfg := baseConfig()
	cfg.FailEvery = 20
	cfg.JoinEvery = 20
	r1, err := Run(testNet(t, 60, 5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(testNet(t, 60, 5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Lookups != r2.Lookups || r1.Correct != r2.Correct || r1.Fails != r2.Fails {
		t.Error("same seed produced different churn results")
	}
}

func TestFailureSweep(t *testing.T) {
	net := testNet(t, 60, 6)
	cfg := baseConfig()
	cfg.Duration = 100
	rows, err := FailureSweep(net, cfg, []float64{50, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].FailEvery > rows[1].FailEvery {
		t.Error("rows not sorted by failure interval")
	}
}

func TestFailureSweepEmpty(t *testing.T) {
	net := testNet(t, 60, 6)
	cfg := baseConfig()
	cfg.Duration = 50
	rows, err := FailureSweep(net, cfg, nil)
	if err != nil {
		t.Fatalf("empty sweep errored: %v", err)
	}
	if len(rows) != 0 {
		t.Fatalf("empty sweep produced %d rows", len(rows))
	}
}

func TestFailureSweepZeroMatchesBaseline(t *testing.T) {
	// FailEvery 0 disables the failure process, so that sweep row must
	// reproduce a plain no-churn Run on an identical network and seed.
	cfg := baseConfig()
	cfg.Duration = 100
	rows, err := FailureSweep(testNet(t, 60, 7), cfg, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Fails != 0 {
		t.Fatalf("zero-failure row = %+v", rows)
	}
	base, err := Run(testNet(t, 60, 7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Fails != 0 {
		t.Fatalf("baseline ran failures: %d", base.Fails)
	}
	if rows[0].CorrectRate != base.CorrectRate {
		t.Errorf("zero-failure sweep row diverged from baseline: %.4f vs %.4f",
			rows[0].CorrectRate, base.CorrectRate)
	}
}
