package churn

import (
	"math/rand"
	"testing"

	"repro/internal/topology"
	"repro/internal/topology/transitstub"
)

// TestRunDeterminismProperty: a churn run is a pure function of
// (topology, config) — same seed, same Result, across several seeds and
// depths. The whole replay story (and the invariant harness's shrinking)
// rests on this.
func TestRunDeterminismProperty(t *testing.T) {
	build := func(seed int64) *topology.Network {
		rng := rand.New(rand.NewSource(seed))
		m, err := transitstub.Generate(transitstub.DefaultConfig(40), rng)
		if err != nil {
			t.Fatal(err)
		}
		net, err := topology.Attach(m, m.G, topology.AttachOptions{
			Hosts: 40, Routers: m.StubRouters, Spread: true,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	for _, tc := range []struct {
		seed  int64
		depth int
	}{{101, 1}, {102, 2}, {103, 2}, {104, 3}} {
		cfg := Config{
			InitialNodes:   25,
			JoinEvery:      40,
			LeaveEvery:     90,
			FailEvery:      120,
			LookupEvery:    2,
			StabilizeEvery: 10,
			Duration:       400,
			Seed:           tc.seed,
			Depth:          tc.depth,
			Landmarks:      3,
		}
		a, err := Run(build(tc.seed), cfg)
		if err != nil {
			t.Fatalf("seed %d: first run: %v", tc.seed, err)
		}
		b, err := Run(build(tc.seed), cfg)
		if err != nil {
			t.Fatalf("seed %d: second run: %v", tc.seed, err)
		}
		if *a != *b {
			t.Fatalf("seed %d depth %d: runs diverged:\n  first  %+v\n  second %+v",
				tc.seed, tc.depth, *a, *b)
		}
		if a.Lookups == 0 || a.Joins == 0 {
			t.Fatalf("seed %d: degenerate run exercised nothing: %+v", tc.seed, *a)
		}
	}
}
