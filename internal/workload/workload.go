// Package workload generates the routing request streams driving the
// simulations. The paper uses "100000 randomly generated routing
// requests"; this package reproduces that (uniform random origins and
// keys) and adds a Zipf key popularity mode for cache/hot-spot studies.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/id"
)

// Request is one routing request: an originating peer and a target key.
type Request struct {
	Origin int
	Key    id.ID
}

// Generator produces a deterministic request stream.
type Generator struct {
	rng   *rand.Rand
	nodes int
	zipf  *rand.Zipf
	keys  []id.ID // key universe for the Zipf mode
}

// NewUniform returns a generator drawing origins and keys uniformly — the
// paper's workload.
func NewUniform(seed int64, nodes int) (*Generator, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("workload: need at least one node, got %d", nodes)
	}
	return &Generator{rng: rand.New(rand.NewSource(seed)), nodes: nodes}, nil
}

// NewZipf returns a generator whose keys follow a Zipf(s) popularity law
// over a fixed universe of keyCount keys. s must be > 1.
func NewZipf(seed int64, nodes, keyCount int, s float64) (*Generator, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("workload: need at least one node, got %d", nodes)
	}
	if keyCount <= 0 {
		return nil, fmt.Errorf("workload: need at least one key, got %d", keyCount)
	}
	if s <= 1 {
		return nil, fmt.Errorf("workload: zipf exponent must be > 1, got %v", s)
	}
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(keyCount-1))
	keys := make([]id.ID, keyCount)
	for i := range keys {
		keys[i] = id.HashString(fmt.Sprintf("zipf-key-%d", i))
	}
	return &Generator{rng: rng, nodes: nodes, zipf: z, keys: keys}, nil
}

// Next returns the next request.
func (g *Generator) Next() Request {
	r := Request{Origin: g.rng.Intn(g.nodes)}
	if g.zipf != nil {
		r.Key = g.keys[g.zipf.Uint64()]
	} else {
		r.Key = id.Rand(g.rng)
	}
	return r
}

// Batch returns the next count requests.
func (g *Generator) Batch(count int) []Request {
	out := make([]Request, count)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
