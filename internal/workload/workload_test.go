package workload

import (
	"testing"

	"repro/internal/id"
)

func TestUniformBasics(t *testing.T) {
	g, err := NewUniform(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	seenOrigins := map[int]bool{}
	seenKeys := map[id.ID]bool{}
	for i := 0; i < 1000; i++ {
		r := g.Next()
		if r.Origin < 0 || r.Origin >= 100 {
			t.Fatalf("origin %d out of range", r.Origin)
		}
		seenOrigins[r.Origin] = true
		seenKeys[r.Key] = true
	}
	if len(seenOrigins) < 80 {
		t.Errorf("only %d distinct origins in 1000 draws", len(seenOrigins))
	}
	if len(seenKeys) != 1000 {
		t.Errorf("uniform keys should almost surely be distinct, got %d", len(seenKeys))
	}
}

func TestUniformDeterministic(t *testing.T) {
	g1, _ := NewUniform(42, 10)
	g2, _ := NewUniform(42, 10)
	for i := 0; i < 100; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatal("same seed produced different requests")
		}
	}
}

func TestUniformErrors(t *testing.T) {
	if _, err := NewUniform(1, 0); err == nil {
		t.Error("zero nodes accepted")
	}
}

func TestZipfSkew(t *testing.T) {
	g, err := NewZipf(2, 50, 1000, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[id.ID]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[g.Next().Key]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// The hottest key must dominate a uniform share by a wide margin.
	if max < 5*n/1000 {
		t.Errorf("hottest key only %d of %d draws; not zipfian", max, n)
	}
	if len(counts) < 50 {
		t.Errorf("only %d distinct keys; universe should be sampled broadly", len(counts))
	}
}

func TestZipfErrors(t *testing.T) {
	if _, err := NewZipf(1, 0, 10, 1.2); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := NewZipf(1, 5, 0, 1.2); err == nil {
		t.Error("zero keys accepted")
	}
	if _, err := NewZipf(1, 5, 10, 1.0); err == nil {
		t.Error("s <= 1 accepted")
	}
}

func TestBatch(t *testing.T) {
	g, _ := NewUniform(3, 20)
	b := g.Batch(64)
	if len(b) != 64 {
		t.Fatalf("batch len %d", len(b))
	}
	g2, _ := NewUniform(3, 20)
	for i := range b {
		if b[i] != g2.Next() {
			t.Fatal("Batch must equal sequential Next calls")
		}
	}
}
