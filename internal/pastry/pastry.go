// Package pastry implements Pastry (Rowstron & Druschel, Middleware 2001)
// as a simulation-oracle routing structure, the locality-aware DHT the
// HIERAS paper compares itself against qualitatively and names as future
// comparison work (§6). Pastry routes by correcting one identifier digit
// per hop and fills its routing table with *topologically close* entries
// (proximity neighbor selection), so it attacks the same problem as
// HIERAS — lookup latency — through per-hop locality instead of a ring
// hierarchy.
//
// Identifiers reuse the 160-bit space of package id, interpreted as 40
// base-16 digits (b = 4, Pastry's default).
package pastry

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/id"
	"repro/internal/topology"
)

// Member is one peer known to the routing structure.
type Member struct {
	ID   id.ID
	Host int
}

// Config parametrises construction.
type Config struct {
	// LeafSet is the total leaf-set size L (default 16: L/2 per side).
	LeafSet int
	// Samples bounds how many candidates are latency-probed per routing
	// table slot (default 8). Real Pastry nodes see only the candidates
	// that joins and maintenance happen to present; sampling models that.
	Samples int
	// Seed drives candidate sampling.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.LeafSet == 0 {
		c.LeafSet = 16
	}
	if c.Samples == 0 {
		c.Samples = 8
	}
	return c
}

// digits is the identifier length in base-16 digits.
const digits = id.Size * 2

// digit returns the i'th base-16 digit of x (0 = most significant).
func digit(x id.ID, i int) int {
	b := x[i/2]
	if i%2 == 0 {
		return int(b >> 4)
	}
	return int(b & 0x0f)
}

// sharedPrefix counts the leading base-16 digits a and b agree on.
func sharedPrefix(a, b id.ID) int {
	for i := 0; i < id.Size; i++ {
		if a[i] != b[i] {
			if a[i]>>4 == b[i]>>4 {
				return 2*i + 1
			}
			return 2 * i
		}
	}
	return digits
}

// circDist is the circular distance |a-b| on the identifier ring.
func circDist(a, b id.ID) id.ID {
	d1 := id.Dist(a, b)
	d2 := id.Dist(b, a)
	if d1.Less(d2) {
		return d1
	}
	return d2
}

// Table is an oracle-built Pastry routing structure over a fixed member
// set. Member indexes follow ascending identifier order. Immutable after
// Build and safe for concurrent routing.
type Table struct {
	cfg   Config
	ids   []id.ID
	hosts []int32
	// rows[m] is member m's routing table: rows[m][r][c] is the member
	// index of a peer sharing exactly r leading digits with m and having
	// digit c at position r, or -1. Rows stop once m's prefix is unique.
	rows [][][]int32
}

// Build constructs proximity-aware routing state for the members. The
// network supplies latencies for proximity neighbor selection; pass nil to
// fall back to arbitrary (first-candidate) selection, which models Pastry
// without locality.
func Build(members []Member, net *topology.Network, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	if len(members) == 0 {
		return nil, fmt.Errorf("pastry: empty member set")
	}
	ms := make([]Member, len(members))
	copy(ms, members)
	sort.Slice(ms, func(a, b int) bool { return ms[a].ID.Less(ms[b].ID) })
	t := &Table{
		cfg:   cfg,
		ids:   make([]id.ID, len(ms)),
		hosts: make([]int32, len(ms)),
	}
	for i, m := range ms {
		if i > 0 && m.ID == ms[i-1].ID {
			return nil, fmt.Errorf("pastry: duplicate identifier %s", m.ID.Short())
		}
		t.ids[i] = m.ID
		t.hosts[i] = int32(m.Host)
	}
	n := len(ms)
	t.rows = make([][][]int32, n)
	rng := rand.New(rand.NewSource(cfg.Seed))
	for m := 0; m < n; m++ {
		t.rows[m] = t.buildRows(m, net, rng)
	}
	return t, nil
}

// prefixRange returns the half-open member index range whose identifiers
// start with the first `plen` digits of base, with digit `c` at position
// plen. plen+1 digits must fit.
func (t *Table) prefixRange(base id.ID, plen, c int) (int, int) {
	lo := base
	// Zero digits from position plen onward, then set digit plen to c.
	for i := plen; i < digits; i++ {
		setDigit(&lo, i, 0)
	}
	setDigit(&lo, plen, c)
	hi := lo
	for i := plen + 1; i < digits; i++ {
		setDigit(&hi, i, 0x0f)
	}
	l := sort.Search(len(t.ids), func(j int) bool { return !t.ids[j].Less(lo) })
	r := sort.Search(len(t.ids), func(j int) bool { return hi.Less(t.ids[j]) })
	return l, r
}

func setDigit(x *id.ID, i, v int) {
	b := x[i/2]
	if i%2 == 0 {
		x[i/2] = (b & 0x0f) | byte(v<<4)
	} else {
		x[i/2] = (b & 0xf0) | byte(v)
	}
}

func (t *Table) buildRows(m int, net *topology.Network, rng *rand.Rand) [][]int32 {
	self := t.ids[m]
	var rows [][]int32
	for r := 0; r < digits; r++ {
		// Stop once no other member shares r digits with us.
		selfLo, selfHi := t.prefixRangeWhole(self, r)
		if selfHi-selfLo <= 1 {
			break
		}
		row := make([]int32, 16)
		for c := 0; c < 16; c++ {
			row[c] = -1
			if c == digit(self, r) {
				continue
			}
			lo, hi := t.prefixRange(self, r, c)
			if lo >= hi {
				continue
			}
			row[c] = t.pickProximal(m, lo, hi, net, rng)
		}
		rows = append(rows, row)
	}
	return rows
}

// prefixRangeWhole returns the member range sharing the first r digits
// with base (any digit at position r and beyond).
func (t *Table) prefixRangeWhole(base id.ID, r int) (int, int) {
	if r == 0 {
		return 0, len(t.ids)
	}
	lo := base
	for i := r; i < digits; i++ {
		setDigit(&lo, i, 0)
	}
	hi := base
	for i := r; i < digits; i++ {
		setDigit(&hi, i, 0x0f)
	}
	l := sort.Search(len(t.ids), func(j int) bool { return !t.ids[j].Less(lo) })
	rr := sort.Search(len(t.ids), func(j int) bool { return hi.Less(t.ids[j]) })
	return l, rr
}

// pickProximal chooses the topologically closest of up to Samples random
// candidates in [lo, hi) — proximity neighbor selection.
func (t *Table) pickProximal(m, lo, hi int, net *topology.Network, rng *rand.Rand) int32 {
	size := hi - lo
	if net == nil {
		return int32(lo + rng.Intn(size))
	}
	samples := t.cfg.Samples
	if samples > size {
		samples = size
	}
	best := -1
	bestLat := 0.0
	for s := 0; s < samples; s++ {
		cand := lo + rng.Intn(size)
		lat := net.Latency(int(t.hosts[m]), int(t.hosts[cand]))
		if best == -1 || lat < bestLat {
			best, bestLat = cand, lat
		}
	}
	return int32(best)
}

// Len returns the member count.
func (t *Table) Len() int { return len(t.ids) }

// ID returns member i's identifier.
func (t *Table) ID(i int) id.ID { return t.ids[i] }

// Host returns member i's host index.
func (t *Table) Host(i int) int { return int(t.hosts[i]) }

// Rows returns how many routing-table rows member i maintains.
func (t *Table) Rows(i int) int { return len(t.rows[i]) }

// Dest returns the member numerically closest to key (Pastry's delivery
// rule), breaking the exact tie toward the clockwise successor.
func (t *Table) Dest(key id.ID) int {
	n := len(t.ids)
	succ := sort.Search(n, func(j int) bool { return !t.ids[j].Less(key) }) % n
	pred := (succ - 1 + n) % n
	if circDist(t.ids[succ], key).Less(circDist(t.ids[pred], key)) ||
		circDist(t.ids[succ], key) == circDist(t.ids[pred], key) {
		return succ
	}
	return pred
}

// inLeafSet reports whether member v falls within member u's leaf set
// (L/2 positions either side on the sorted ring).
func (t *Table) inLeafSet(u, v int) bool {
	n := len(t.ids)
	half := t.cfg.LeafSet / 2
	if half >= n-1 {
		return true
	}
	d := v - u
	if d < 0 {
		d += n
	}
	return d <= half || n-d <= half
}

// Route performs a Pastry lookup from member `from` to the member
// numerically closest to key. visit, if non-nil, is called per hop. It
// returns the destination and hop count.
func (t *Table) Route(from int, key id.ID, visit func(f, to int)) (int, int) {
	dest := t.Dest(key)
	u := from
	hops := 0
	for u != dest {
		if hops >= 4*digits {
			// Unreachable in a consistent table; defensive bound.
			break
		}
		var next int
		switch {
		case t.inLeafSet(u, dest):
			next = dest
		default:
			next = t.prefixStep(u, key)
		}
		if visit != nil {
			visit(u, next)
		}
		u = next
		hops++
	}
	return u, hops
}

// prefixStep picks the next hop by prefix routing with Pastry's "rare
// case" fallback.
func (t *Table) prefixStep(u int, key id.ID) int {
	r := sharedPrefix(t.ids[u], key)
	if r < len(t.rows[u]) {
		if e := t.rows[u][r][digit(key, r)]; e >= 0 {
			return int(e)
		}
	}
	// Rare case: no entry — find any known node with an equal-or-longer
	// shared prefix that is numerically closer to the key than we are.
	myDist := circDist(t.ids[u], key)
	best := -1
	bestDist := myDist
	consider := func(v int) {
		if v < 0 || v == u {
			return
		}
		if sharedPrefix(t.ids[v], key) < r {
			return
		}
		if d := circDist(t.ids[v], key); d.Less(bestDist) {
			best, bestDist = v, d
		}
	}
	n := len(t.ids)
	half := t.cfg.LeafSet / 2
	for s := 1; s <= half && s < n; s++ {
		consider((u + s) % n)
		consider((u - s + n) % n)
	}
	for _, row := range t.rows[u] {
		for _, e := range row {
			consider(int(e))
		}
	}
	if best >= 0 {
		return best
	}
	// Last resort: clockwise successor — always makes ring progress.
	return (u + 1) % n
}
