package pastry

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/id"
	"repro/internal/topology"
	"repro/internal/topology/transitstub"
)

func makeMembers(rng *rand.Rand, n int) []Member {
	seen := map[id.ID]bool{}
	ms := make([]Member, 0, n)
	for len(ms) < n {
		x := id.Rand(rng)
		if !seen[x] {
			seen[x] = true
			ms = append(ms, Member{ID: x, Host: len(ms)})
		}
	}
	return ms
}

func testNet(t testing.TB, hosts int, seed int64) *topology.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m, err := transitstub.Generate(transitstub.DefaultConfig(hosts), rng)
	if err != nil {
		t.Fatal(err)
	}
	net, err := topology.Attach(m, m.G, topology.AttachOptions{
		Hosts: hosts, Routers: m.StubRouters, Spread: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestDigitAndPrefix(t *testing.T) {
	x, _ := id.ParseHex("ab12000000000000000000000000000000000000")
	if digit(x, 0) != 0xa || digit(x, 1) != 0xb || digit(x, 2) != 1 || digit(x, 3) != 2 {
		t.Errorf("digits: %x %x %x %x", digit(x, 0), digit(x, 1), digit(x, 2), digit(x, 3))
	}
	y, _ := id.ParseHex("ab17000000000000000000000000000000000000")
	if got := sharedPrefix(x, y); got != 3 {
		t.Errorf("sharedPrefix = %d, want 3", got)
	}
	if got := sharedPrefix(x, x); got != digits {
		t.Errorf("self prefix = %d, want %d", got, digits)
	}
	z, _ := id.ParseHex("1b12000000000000000000000000000000000000")
	if got := sharedPrefix(x, z); got != 0 {
		t.Errorf("prefix = %d, want 0", got)
	}
}

func TestSetDigitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		x := id.Rand(rng)
		i := rng.Intn(digits)
		v := rng.Intn(16)
		setDigit(&x, i, v)
		if digit(x, i) != v {
			t.Fatalf("setDigit(%d,%x) readback %x", i, v, digit(x, i))
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, nil, Config{}); err == nil {
		t.Error("empty members accepted")
	}
	x := id.HashString("dup")
	if _, err := Build([]Member{{ID: x}, {ID: x, Host: 1}}, nil, Config{}); err == nil {
		t.Error("duplicate ids accepted")
	}
}

func TestRouteReachesNumericallyClosest(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tbl, err := Build(makeMembers(rng, 200), nil, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 500; trial++ {
		key := id.Rand(rng)
		from := rng.Intn(tbl.Len())
		got, hops := tbl.Route(from, key, nil)
		// Brute-force numerically closest.
		want, wantDist := 0, circDist(tbl.ID(0), key)
		for i := 1; i < tbl.Len(); i++ {
			if d := circDist(tbl.ID(i), key); d.Less(wantDist) {
				want, wantDist = i, d
			}
		}
		if circDist(tbl.ID(got), key) != wantDist {
			t.Fatalf("routed to %d (dist %s), closest is %d", got, circDist(tbl.ID(got), key).Short(), want)
		}
		if hops > 40 {
			t.Fatalf("%d hops on 200 nodes", hops)
		}
	}
}

func TestRouteLogarithmicHops(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{64, 512} {
		tbl, err := Build(makeMembers(rng, n), nil, Config{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		const trials = 300
		for trial := 0; trial < trials; trial++ {
			_, hops := tbl.Route(rng.Intn(n), id.Rand(rng), nil)
			total += hops
		}
		mean := float64(total) / trials
		// Pastry corrects one hex digit per hop: ~log16(n)+leafset hop.
		bound := math.Log(float64(n))/math.Log(16) + 3
		if mean > bound {
			t.Errorf("n=%d: mean hops %.2f exceeds %.2f", n, mean, bound)
		}
	}
}

func TestRoutePathContiguousAndVisitsMatchHops(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tbl, err := Build(makeMembers(rng, 150), nil, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		from := rng.Intn(tbl.Len())
		cur := from
		count := 0
		dest, hops := tbl.Route(from, id.Rand(rng), func(f, to int) {
			if f != cur {
				t.Fatalf("discontiguous path")
			}
			cur = to
			count++
		})
		if cur != dest || count != hops {
			t.Fatalf("path bookkeeping wrong: cur %d dest %d count %d hops %d", cur, dest, count, hops)
		}
	}
}

func TestSelfRouteZeroHops(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tbl, err := Build(makeMembers(rng, 50), nil, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tbl.Len(); i++ {
		dest, hops := tbl.Route(i, tbl.ID(i), nil)
		if dest != i || hops != 0 {
			t.Fatalf("self route: dest %d hops %d", dest, hops)
		}
	}
}

func TestTinyNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{1, 2, 3, 5} {
		tbl, err := Build(makeMembers(rng, n), nil, Config{Seed: 11})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for trial := 0; trial < 30; trial++ {
			key := id.Rand(rng)
			dest, hops := tbl.Route(rng.Intn(n), key, nil)
			if hops > 1 {
				t.Fatalf("n=%d: %d hops (leaf set covers everything)", n, hops)
			}
			_ = dest
		}
	}
}

func TestProximitySelectionLowersLinkLatency(t *testing.T) {
	const n = 300
	net := testNet(t, n, 12)
	rng := rand.New(rand.NewSource(13))
	ms := makeMembers(rng, n)
	withPNS, err := Build(ms, net, Config{Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	withoutPNS, err := Build(ms, nil, Config{Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	meanLat := func(tbl *Table) float64 {
		r2 := rand.New(rand.NewSource(15))
		var sum float64
		var hops int
		for trial := 0; trial < 1500; trial++ {
			tbl.Route(r2.Intn(n), id.Rand(r2), func(f, to int) {
				sum += net.Latency(tbl.Host(f), tbl.Host(to))
				hops++
			})
		}
		return sum / float64(hops)
	}
	pns, plain := meanLat(withPNS), meanLat(withoutPNS)
	t.Logf("per-hop latency: PNS %.1f ms vs plain %.1f ms", pns, plain)
	if pns >= plain {
		t.Errorf("proximity selection should lower per-hop latency: %.1f vs %.1f", pns, plain)
	}
}

func TestRowsBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	tbl, err := Build(makeMembers(rng, 256), nil, Config{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	maxRows := 0
	for i := 0; i < tbl.Len(); i++ {
		if r := tbl.Rows(i); r > maxRows {
			maxRows = r
		}
	}
	// 256 random nodes share at most a few leading hex digits.
	if maxRows > 6 {
		t.Errorf("max rows %d implausibly deep for 256 nodes", maxRows)
	}
	if maxRows < 1 {
		t.Error("no routing rows built")
	}
}

func TestDeterministicBuild(t *testing.T) {
	rng1 := rand.New(rand.NewSource(18))
	rng2 := rand.New(rand.NewSource(18))
	t1, _ := Build(makeMembers(rng1, 100), nil, Config{Seed: 19})
	t2, _ := Build(makeMembers(rng2, 100), nil, Config{Seed: 19})
	key := id.HashString("det")
	d1, h1 := t1.Route(5, key, nil)
	d2, h2 := t2.Route(5, key, nil)
	if d1 != d2 || h1 != h2 {
		t.Error("same seed produced different routes")
	}
}
