package simcheck

import (
	"fmt"
	"sort"
	"testing"

	hieras "repro"
	"repro/internal/experiments"
)

// Paper-claim regression suite: the headline comparative results from
// HIERAS §4 are asserted as properties over a spread of seeds, not as a
// single cherry-picked measurement. Each seed builds a fresh transit-stub
// world and overlay, checks the overlay's structural invariants, then
// routes a request stream through both HIERAS and flat Chord:
//
//   - hop ratio stays inside [0.9, 1.5] — the hierarchy pays at most a
//     modest hop premium over Chord (paper: ~1.5% overhead, Table 5);
//   - latency ratio stays below 1 — HIERAS wins on end-to-end routing
//     latency on transit-stub (paper: ~54%);
//   - a strictly positive share of hops runs inside lower rings (the
//     mechanism the latency win comes from, paper: ~71%).
func TestPaperClaimBandsAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{11, 23, 37, 101} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			s := experiments.Scenario{Nodes: 200, Requests: 500, Seed: seed}
			o, err := experiments.BuildOverlay(s)
			if err != nil {
				t.Fatal(err)
			}
			if invErr := o.CheckInvariants(); invErr != nil {
				t.Fatalf("overlay invariants: %v", invErr)
			}
			cmp, err := experiments.CompareOn(o, s)
			if err != nil {
				t.Fatal(err)
			}
			if r := cmp.HopRatio(); r < 0.9 || r > 1.5 {
				t.Errorf("hop ratio %.3f outside [0.9, 1.5]", r)
			}
			if r := cmp.LatencyRatio(); r >= 1 {
				t.Errorf("latency ratio %.3f: HIERAS should beat Chord on TS", r)
			}
			if sh := cmp.LowerHopShare(); sh <= 0 || sh >= 1 {
				t.Errorf("lower-ring hop share %.3f out of (0,1)", sh)
			}
		})
	}
}

// TestPaperClaimDepth3 repeats the band check at hierarchy depth 3: the
// paper's Figures 8/9 claim the latency advantage survives (and the hop
// overhead stays bounded) as layers are added.
func TestPaperClaimDepth3(t *testing.T) {
	s := experiments.Scenario{Nodes: 200, Requests: 500, Depth: 3, Seed: 19}
	cmp, err := experiments.RunComparison(s)
	if err != nil {
		t.Fatal(err)
	}
	if r := cmp.HopRatio(); r < 0.9 || r > 1.6 {
		t.Errorf("depth-3 hop ratio %.3f outside [0.9, 1.6]", r)
	}
	if r := cmp.LatencyRatio(); r >= 1 {
		t.Errorf("depth-3 latency ratio %.3f: HIERAS should beat Chord on TS", r)
	}
}

// median of a latency sample; the sample is copied so callers keep
// insertion order.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// TestPaperClaimOneHopAcceleration holds the single-hop route tier
// (ROADMAP item 2, after Monnerat & Amorim's single-hop DHT) to its
// claim on the paper's primary transit-stub world: with a converged
// full table, at least 90% of lookups resolve in one verified hop to
// the true owner, and the median lookup latency beats the classic
// hierarchical walk — the return that justifies spending gossip
// bandwidth on full tables. The classic bands above run the identical
// code path they always did; the tier is strictly additive.
func TestPaperClaimOneHopAcceleration(t *testing.T) {
	sys, err := hieras.New(hieras.Options{Nodes: 200, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	oh := sys.OneHop()
	const requests = 600
	onehopLat := make([]float64, 0, requests)
	classicLat := make([]float64, 0, requests)
	hits := 0
	for i := 0; i < requests; i++ {
		origin := (i * 13) % sys.N()
		key := fmt.Sprintf("claim-%d", i)
		r, err := oh.Lookup(origin, key)
		if err != nil {
			t.Fatal(err)
		}
		c, err := sys.Lookup(origin, key)
		if err != nil {
			t.Fatal(err)
		}
		if r.CacheHit {
			hits++
			if r.Hops > 1 {
				t.Fatalf("one-hop hit took %d hops for %q", r.Hops, key)
			}
			if r.Dest != c.Dest {
				t.Fatalf("one-hop dest %d for %q, classic walk says %d", r.Dest, key, c.Dest)
			}
		}
		onehopLat = append(onehopLat, r.Latency)
		classicLat = append(classicLat, c.Latency)
	}
	if rate := float64(hits) / requests; rate < 0.9 {
		t.Errorf("one-hop rate %.3f on a stable cluster, want >= 0.9", rate)
	}
	if mo, mc := median(onehopLat), median(classicLat); mo >= mc {
		t.Errorf("one-hop median latency %.2fms does not beat classic %.2fms", mo, mc)
	}
}
