package simcheck

// shrink reduces a failing program to a local minimum: first
// delta-debugging over the op sequence (Zeller's ddmin), then field-wise
// value shrinking on the survivors. A candidate counts as failing only
// when it trips the *same* invariant — shrinking must not wander off to
// a different bug and hand back an artifact that explains nothing.
func shrink(cfg Config, ops []Op, invariant string) []Op {
	fails := func(sub []Op) bool {
		f := runProgram(cfg, sub)
		return f != nil && f.Invariant == invariant
	}
	ops = ddmin(ops, fails)
	ops = shrinkValues(ops, fails)
	return ops
}

// ddmin removes ever-smaller chunks of the program while it keeps
// failing, then sweeps op-by-op. Every candidate is a subsequence of the
// original, so op order — which the failure may depend on — is preserved.
func ddmin(ops []Op, fails func([]Op) bool) []Op {
	without := func(start, end int) []Op {
		cand := make([]Op, 0, len(ops)-(end-start))
		cand = append(cand, ops[:start]...)
		return append(cand, ops[end:]...)
	}
	n := 2
	for len(ops) >= 2 && n <= len(ops) {
		chunk := (len(ops) + n - 1) / n
		reduced := false
		for start := 0; start < len(ops); start += chunk {
			end := start + chunk
			if end > len(ops) {
				end = len(ops)
			}
			if cand := without(start, end); fails(cand) {
				ops = cand
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n == len(ops) {
				break
			}
			n *= 2
			if n > len(ops) {
				n = len(ops)
			}
		}
	}
	// Final one-at-a-time sweep: ddmin at full granularity restarts from
	// the chunk loop after each hit, so a cheap linear pass catches any
	// single op it left behind.
	for i := 0; i < len(ops) && len(ops) > 1; {
		if cand := without(i, i+1); fails(cand) {
			ops = cand
		} else {
			i++
		}
	}
	return ops
}

// shrinkValues canonicalises the fields of each surviving op: lowest
// interesting slot, shortest key and value. Purely cosmetic for
// execution, but it makes two shrunk artifacts of the same bug look the
// same, which is what a human debugging from artifacts wants.
func shrinkValues(ops []Op, fails func([]Op) bool) []Op {
	for i := 0; i < len(ops); i++ {
		// Candidates are ordered most-aggressive-first; stop at the first
		// accepted one so a milder fallback can't overwrite it.
		for _, cand := range simplerOps(ops[i]) {
			trial := append([]Op(nil), ops...)
			trial[i] = cand
			if fails(trial) {
				ops = trial
				break
			}
		}
	}
	return ops
}

// simplerOps proposes strictly-simpler variants of one op, most
// aggressive first.
func simplerOps(o Op) []Op {
	var out []Op
	switch o.Kind {
	case OpJoin, OpLeave, OpFail:
		if o.Slot > 2 {
			c := o
			c.Slot = 2
			out = append(out, c)
		}
	case OpPut:
		if o.Key != "k" || o.Value != "v" || o.Slot != 0 {
			c := o
			c.Key, c.Value, c.Slot = "k", "v", 0
			out = append(out, c)
		}
		if o.Key != "k" {
			c := o
			c.Key = "k"
			out = append(out, c)
		}
	case OpGet, OpLookup, OpDelete:
		if o.Key != "k" || o.Slot != 0 {
			c := o
			c.Key, c.Slot = "k", 0
			out = append(out, c)
		}
	case OpTick:
		// A one-tick jump is the smallest that still moves the clock;
		// the failure usually depends on crossing a lease boundary, so
		// this mostly gets rejected — but when it is accepted it proves
		// the jump size irrelevant.
		if o.Slot > 1 {
			c := o
			c.Slot = 1
			out = append(out, c)
		}
	}
	return out
}
