package simcheck

import (
	"fmt"
	"math/rand"
)

// keyPool is the closed key universe programs draw from. A small pool
// makes overwrites, replica divergence and lost-update scenarios common
// instead of one-in-2^160 coincidences.
var keyPool = []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}

// generate derives a program of cfg.Ops operations from cfg.Seed. The
// generator mirrors the executor's legality rules (no joins inside a
// partition, landmarks never leave) so generated programs are dense with
// effective operations rather than no-ops; the executor still tolerates
// illegal ops, because shrinking can strip the context that made an op
// legal.
func generate(cfg Config) []Op {
	rng := rand.New(rand.NewSource(cfg.Seed))
	occupied := make([]bool, cfg.Slots)
	occupied[0], occupied[1] = true, true
	partitioned := false
	valSeq := 0
	var written []string
	var ops []Op

	free := func() []int {
		var out []int
		for s := 2; s < cfg.Slots; s++ {
			if !occupied[s] {
				out = append(out, s)
			}
		}
		return out
	}
	taken := func() []int {
		var out []int
		for s := 2; s < cfg.Slots; s++ {
			if occupied[s] {
				out = append(out, s)
			}
		}
		return out
	}
	anySlot := func() int { return rng.Intn(cfg.Slots) }
	someKey := func() string {
		if len(written) > 0 && rng.Intn(4) > 0 {
			return written[rng.Intn(len(written))]
		}
		return keyPool[rng.Intn(len(keyPool))]
	}

	for len(ops) < cfg.Ops {
		var op Op
		if partitioned {
			switch r := rng.Intn(100); {
			case r < 25:
				op = Op{Kind: OpHeal}
				partitioned = false
			case r < 42:
				op = Op{Kind: OpGet, Slot: anySlot(), Key: someKey()}
			case r < 58:
				op = Op{Kind: OpLookup, Slot: anySlot(), Key: someKey()}
			case r < 78:
				op = Op{Kind: OpPut, Slot: anySlot(), Key: someKey(), Value: fmt.Sprintf("v%d", valSeq)}
				written = append(written, op.Key)
				valSeq++
			case r < 90:
				op = Op{Kind: OpDelete, Slot: anySlot(), Key: someKey()}
			default:
				op = Op{Kind: OpCheck}
			}
		} else {
			switch r := rng.Intn(100); {
			case r < 20:
				if f := free(); len(f) > 0 {
					op = Op{Kind: OpJoin, Slot: f[rng.Intn(len(f))]}
					occupied[op.Slot] = true
				} else {
					continue
				}
			case r < 28:
				if o := taken(); len(o) > 0 {
					op = Op{Kind: OpLeave, Slot: o[rng.Intn(len(o))]}
					occupied[op.Slot] = false
				} else {
					continue
				}
			case r < 40:
				if o := taken(); len(o) > 0 {
					op = Op{Kind: OpFail, Slot: o[rng.Intn(len(o))]}
					occupied[op.Slot] = false
				} else {
					continue
				}
			case r < 56:
				op = Op{Kind: OpPut, Slot: anySlot(), Key: someKey(), Value: fmt.Sprintf("v%d", valSeq)}
				written = append(written, op.Key)
				valSeq++
			case r < 66:
				op = Op{Kind: OpGet, Slot: anySlot(), Key: someKey()}
			case r < 72:
				op = Op{Kind: OpDelete, Slot: anySlot(), Key: someKey()}
			case r < 82:
				op = Op{Kind: OpLookup, Slot: anySlot(), Key: someKey()}
			case r < 88:
				op = Op{Kind: OpPartition}
				partitioned = true
			case r < 94:
				if cfg.TTL == 0 {
					op = Op{Kind: OpCheck}
					break
				}
				// Jumps range up to past the full TTL, so some lapse every
				// outstanding lease faster than republish can renew it.
				span := cfg.TTL + 2
				if span > 1000 {
					span = 1000
				}
				op = Op{Kind: OpTick, Slot: 1 + rng.Intn(int(span))}
			default:
				op = Op{Kind: OpCheck}
			}
		}
		ops = append(ops, op)
	}
	if partitioned {
		ops = append(ops, Op{Kind: OpHeal})
	}
	return ops
}
