package simcheck

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/binning"
	"repro/internal/faultnet"
	"repro/internal/replica"
	"repro/internal/transport"
	"repro/internal/wire"
)

// model is the harness's ground truth about stored data. Values are
// grow-only per key: replicas and partition-era writes mean an old value
// can legitimately resurface, so correctness is "some value we wrote",
// never "the latest value". acked marks keys whose put was acknowledged
// by a write quorum; the durability invariants hold the cluster to
// never losing those, with no churn or crash exemptions — that promise
// is exactly what quorum replication buys.
type model struct {
	vals  map[string]map[string]bool
	acked map[string]bool
	// deleted marks keys whose quorum delete was acknowledged outside a
	// partition: the tombstone was stamped past the freshest version the
	// owner had acknowledged, so it wins the LWW order and the key must
	// read as not-found once the cluster converges. Any later put clears
	// the mark (a fresh write legitimately supersedes a tombstone).
	deleted map[string]bool
	// expireAt is the latest lease any write stamped on the key, in
	// harness clock ticks (only tracked when cfg.TTL > 0). Once the
	// clock passes it the key may have expired — owners republish
	// before expiry, so the key may equally still be alive; invariants
	// therefore stop asserting presence rather than asserting absence.
	expireAt map[string]uint64
}

func (m *model) put(key, value string) {
	if m.vals[key] == nil {
		m.vals[key] = map[string]bool{}
	}
	m.vals[key][value] = true
	delete(m.deleted, key)
}

func (m *model) keys() []string {
	ks := make([]string, 0, len(m.vals))
	for k := range m.vals {
		ks = append(ks, k)
	}
	for k := range m.deleted {
		if m.vals[k] == nil {
			ks = append(ks, k) // deleted without ever being written
		}
	}
	sort.Strings(ks)
	return ks
}

// expired reports whether key's lease may have lapsed at tick now.
func (m *model) expired(key string, now uint64) bool {
	at, ok := m.expireAt[key]
	return ok && now >= at
}

// mustRead reports whether a read of key is required to succeed: its
// write was quorum-acknowledged, no acknowledged delete has since
// tombstoned it, and its lease cannot have lapsed.
func (m *model) mustRead(key string, now uint64) bool {
	return m.acked[key] && !m.deleted[key] && !m.expired(key, now)
}

// harness owns one in-process cluster: a wire.MemNet for transport (so
// node addresses — and therefore node IDs — are identical on every run),
// a faultnet.Network for partitions, and the data model. Slots 0 and 1
// are the two landmarks; they are started before any generated op runs
// and never leave or fail.
type harness struct {
	cfg Config
	// ctx is the run's root context: every operation the executor issues
	// (puts, gets, lookups) flows from it, and close cancels it so no op
	// can outlive the harness.
	ctx         context.Context
	cancel      context.CancelFunc
	mem         *wire.MemNet
	fnet        *faultnet.Network
	nodes       []*transport.Node
	coords      [][2]float64
	expectNames [][]string // per slot, from an independent binning run
	partitioned bool
	model       *model
	// clock is the cluster-wide logical time every node runs on: exec
	// advances it once per op (plus OpTick jumps), so expiry is a pure
	// function of the program, never of wall time. Atomic because RPC
	// handler goroutines read it while the executor thread advances it.
	clock atomic.Uint64
}

func slotAddr(slot int) string { return fmt.Sprintf("n%d", slot) }

// slotCoord places even slots near landmark n0 and odd slots near
// landmark n1, far enough apart that the default ladder bins the two
// parities into distinct rings on every lower layer. Partitions split by
// parity too, so a partition never cuts a lower-layer ring in half.
func slotCoord(slot int) [2]float64 {
	if slot%2 == 0 {
		return [2]float64{float64(slot), float64(slot % 7)}
	}
	return [2]float64{500 + float64(slot), float64(slot % 7)}
}

func newHarness(cfg Config) (*harness, error) {
	h := &harness{
		cfg:         cfg,
		mem:         wire.NewMemNet(),
		fnet:        faultnet.New(cfg.Seed),
		nodes:       make([]*transport.Node, cfg.Slots),
		coords:      make([][2]float64, cfg.Slots),
		expectNames: make([][]string, cfg.Slots),
		model: &model{
			vals:     map[string]map[string]bool{},
			acked:    map[string]bool{},
			deleted:  map[string]bool{},
			expireAt: map[string]uint64{},
		},
	}
	h.ctx, h.cancel = context.WithCancel(context.Background()) //lint:allow ctxflow the harness run root: close cancels it, and every executed op derives from it
	h.clock.Store(1)                                           // tick 0 would read as replica's "no clock" sentinel
	ladder, err := binning.DefaultLadder(cfg.Depth)
	if err != nil {
		return nil, err
	}
	for s := 0; s < cfg.Slots; s++ {
		h.coords[s] = slotCoord(s)
		lats := make([]float64, 2)
		for l := 0; l < 2; l++ {
			lats[l] = dist(h.coords[s], slotCoord(l))
		}
		names, err := binning.RingNames(lats, ladder)
		if err != nil {
			return nil, err
		}
		h.expectNames[s] = names
	}
	// Bootstrap the two landmarks outside the op stream. Both listen
	// before the network is created: creating it probes every landmark.
	if err := h.startNode(0); err != nil {
		return nil, err
	}
	if err := h.startNode(1); err != nil {
		return nil, err
	}
	if err := h.nodes[0].CreateNetwork(); err != nil {
		return nil, err
	}
	if err := h.nodes[1].Join(slotAddr(0)); err != nil {
		return nil, err
	}
	h.maintain()
	return h, nil
}

func dist(a, b [2]float64) float64 {
	return math.Hypot(a[0]-b[0], a[1]-b[1])
}

// extendLease records that a write or delete just stamped key with a
// fresh TTL lease. Leases only ever extend in the model: the LWW winner
// among racing stamps is not predictable from op order alone, and a
// longer model lease merely delays the point where invariants stop
// asserting the key's presence.
func (h *harness) extendLease(key string) {
	if h.cfg.TTL == 0 {
		return
	}
	if at := h.clock.Load() + h.cfg.TTL; at > h.model.expireAt[key] {
		h.model.expireAt[key] = at
	}
}

// replOptions is the replication configuration every harness node runs:
// factor 3 with a majority write quorum, so any single crash or failed
// handoff leaves an acknowledged write with a surviving copy, and a
// read quorum of 2 so gets cross-check replicas (and read-repair fires).
// cfg.ReplicationBug flips on the transport's seeded owner-copy-only
// fault for the replication acceptance test.
func (h *harness) replOptions() replica.Options {
	return replica.Options{
		Factor:            3,
		WriteQuorum:       2,
		ReadQuorum:        2,
		DropReplicaWrites: h.cfg.ReplicationBug,
	}
}

func (h *harness) startNode(slot int) error {
	ln, err := h.mem.Listen(slotAddr(slot))
	if err != nil {
		return err
	}
	n, err := transport.Start("", transport.Config{
		Depth:       h.cfg.Depth,
		Landmarks:   []string{slotAddr(0), slotAddr(1)},
		Coord:       h.coords[slot],
		CallTimeout: 2 * time.Second,
		// Every checked cluster runs the one-hop route tier, so the
		// route-table-accuracy invariant exercises gossip dissemination
		// on top of ordinary maintenance. cfg.RouteGossipBug flips the
		// transport's seeded drop-gossip fault for the acceptance test.
		RouteMode:       transport.RouteOneHop,
		DropRouteGossip: h.cfg.RouteGossipBug,
		// Two attempts with near-zero backoff: MemNet refuses dials to
		// dead peers immediately, so retries cost microseconds, and two
		// failed attempts reach the default eviction suspicion.
		Retry: wire.RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Microsecond, MaxBackoff: time.Millisecond},
		// The breaker's cooldown is wall-clock time — nondeterministic
		// under load — so it stays off; eviction runs on the consecutive
		// failure count, which is schedule-determined.
		Breaker:     wire.BreakerPolicy{Threshold: -1},
		Replication: h.replOptions(),
		// Every node shares the harness's logical clock, so expiry
		// decisions are identical cluster-wide and replayable; TTL is in
		// the same tick units (time.Duration only by type).
		Clock:      h.clock.Load,
		TTL:        time.Duration(h.cfg.TTL),
		WrapCaller: h.fnet.Caller,
		Listener:   ln,
		Dial:       h.mem.Dial,
	})
	if err != nil {
		ln.Close()
		return err
	}
	h.fnet.Bind(slotAddr(slot), slotAddr(slot))
	h.nodes[slot] = n
	return nil
}

func (h *harness) close() {
	h.cancel()
	for s, n := range h.nodes {
		if n != nil {
			n.Close()
			h.nodes[s] = nil
		}
	}
}

// liveSlots returns occupied slots in ascending order.
func (h *harness) liveSlots() []int {
	var out []int
	for s, n := range h.nodes {
		if n != nil {
			out = append(out, s)
		}
	}
	return out
}

// origin resolves an op's origin node: the op's slot when live, else the
// lowest live slot. Shrinking can delete the join that made a generated
// origin live, so the fallback keeps every subsequence executable.
func (h *harness) origin(slot int) *transport.Node {
	if slot >= 0 && slot < len(h.nodes) && h.nodes[slot] != nil {
		return h.nodes[slot]
	}
	return h.nodes[h.liveSlots()[0]]
}

// maintain runs the steady-state maintenance a deployment's background
// timers would: two full stabilization sweeps over all live nodes in slot
// order, plus a finger-refresh batch. Two sweeps, because repairing a
// crashed node's predecessor link can take one sweep to clear the dead
// pointer and a second for the notify that fills it. cfg.SkipRepairLayer
// suppresses one layer's sweep — the hook the seeded-bug acceptance test
// uses to prove the invariants catch a maintenance regression.
func (h *harness) maintain() {
	for round := 0; round < 2; round++ {
		h.maintainRound(false)
	}
}

func (h *harness) maintainRound(full bool) {
	for _, s := range h.liveSlots() {
		n := h.nodes[s]
		for layer := 1; layer <= h.cfg.Depth; layer++ {
			if layer == h.cfg.SkipRepairLayer {
				continue
			}
			_ = n.StabilizeLayer(layer)
		}
		_ = n.RepairRingTables()
		// Route gossip rides the maintenance cadence exactly as it rides
		// StabilizeOnce in a deployment: membership events spread one
		// fanout hop per round, so quiescence implies table convergence.
		_ = n.RouteGossipOnce()
		if full {
			_ = n.BuildAllFingers()
		} else {
			_ = n.FixFingersOnce(16)
		}
		// Anti-entropy round, last: it re-homes data, syncs replicas by
		// digest and expires dead leases over whatever ring state this
		// round repaired, exactly as StabilizeOnce would in a deployment.
		// Best-effort by design — a round that cannot reach a member
		// keeps the local copy and retries next round.
		_, _, _, _ = n.ReplicaAntiEntropyOnce()
	}
}

// quiesce drives maintenance to a fixpoint: full rounds (exact finger
// rebuilds included) until two consecutive rounds leave every node's
// snapshot unchanged. Convergence is what makes the quiescent invariants
// exact instead of probabilistic; the round cap turns a non-converging
// protocol bug into an invariant failure rather than a hang.
func (h *harness) quiesce() error {
	const maxRounds = 30
	var prev []transport.Snapshot
	for round := 0; round < maxRounds; round++ {
		h.maintainRound(true)
		cur := h.snapshots()
		if prev != nil && reflect.DeepEqual(prev, cur) {
			return nil
		}
		prev = cur
	}
	return fmt.Errorf("maintenance did not reach a fixpoint after %d rounds", maxRounds)
}

func (h *harness) snapshots() []transport.Snapshot {
	var out []transport.Snapshot
	for _, s := range h.liveSlots() {
		out = append(out, h.nodes[s].Snapshot())
	}
	return out
}

// parityGroups builds the even/odd slot-name groups used by OpPartition.
func (h *harness) parityGroups() (even, odd []string) {
	for s := 0; s < h.cfg.Slots; s++ {
		if s%2 == 0 {
			even = append(even, slotAddr(s))
		} else {
			odd = append(odd, slotAddr(s))
		}
	}
	return even, odd
}
