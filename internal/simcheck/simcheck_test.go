package simcheck

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/lint/leakcheck"

	"repro/internal/transport"
	"repro/internal/wire"
)

// TestHealthyProperty: the honest protocol survives randomized
// join/leave/fail/put/get/lookup/partition/heal programs with every
// invariant intact, including the implicit final quiescent checkpoint.
func TestHealthyProperty(t *testing.T) {
	leakcheck.Watchdog(t, 2*time.Minute)
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			if f := Run(Config{Seed: seed}); f != nil {
				t.Fatalf("property failed:\n%v", f)
			}
		})
	}
}

// TestHealthyPropertyDepth3 runs a three-layer cluster through the same
// property — rings of rings, with ring tables on two lower layers.
func TestHealthyPropertyDepth3(t *testing.T) {
	if f := Run(Config{Seed: 5, Depth: 3}); f != nil {
		t.Fatalf("property failed:\n%v", f)
	}
}

// TestHealthyPropertyWithTTL runs the property with a data lifetime
// configured: programs now contain deletes and clock jumps, leases
// lapse mid-program, owners republish, and the lifecycle invariants
// (expired data purged at fixpoints, acknowledged deletes stay deleted)
// must hold alongside everything else.
func TestHealthyPropertyWithTTL(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			if f := Run(Config{Seed: seed, TTL: 12}); f != nil {
				t.Fatalf("property failed:\n%v", f)
			}
		})
	}
}

// TestDeleteLifecycleProgram pins the deterministic delete story: an
// acknowledged delete makes the key unreadable at the next quiescent
// checkpoint, a later put resurrects it, and churn in between does not
// bring the tombstoned value back.
func TestDeleteLifecycleProgram(t *testing.T) {
	if f := Replay(0, []Op{
		{Kind: OpPut, Slot: 0, Key: "k", Value: "v1"},
		{Kind: OpCheck},
		{Kind: OpDelete, Slot: 3, Key: "k"},
		{Kind: OpJoin, Slot: 2},
		{Kind: OpFail, Slot: 2},
		{Kind: OpCheck},
		{Kind: OpPut, Slot: 1, Key: "k", Value: "v2"},
		{Kind: OpCheck},
	}); f != nil {
		t.Fatalf("delete lifecycle program failed:\n%v", f)
	}
}

// TestExpiryProgram pins the lease story: data written under a TTL
// survives ordinary op-to-op ticks (owners republish before expiry),
// but a clock jump past the lease expires it everywhere — reads stop
// returning it and no node still holds a copy at the fixpoint.
func TestExpiryProgram(t *testing.T) {
	cfg := Config{TTL: 10}
	if f := cfg.Replay([]Op{
		{Kind: OpPut, Slot: 0, Key: "k", Value: "v"},
		{Kind: OpCheck}, // lease alive: the key must read back
		{Kind: OpGet, Slot: 2, Key: "k"},
		{Kind: OpTick, Slot: 25}, // jump past any renewable lease
		{Kind: OpGet, Slot: 1, Key: "k"},
		{Kind: OpCheck}, // lease lapsed: purged everywhere at the fixpoint
	}); f != nil {
		t.Fatalf("expiry program failed:\n%v", f)
	}
}

// TestSeededBugCaughtAndShrunk is the harness's acceptance test: a
// deliberately seeded maintenance bug — one layer's ring repair withheld
// — must be caught by the invariant suite, shrunk to a program of at
// most 10 operations, and replayable from the printed artifact.
func TestSeededBugCaughtAndShrunk(t *testing.T) {
	leakcheck.Watchdog(t, 2*time.Minute)
	buggy := Config{Seed: 42, SkipRepairLayer: 2}
	f := Run(buggy)
	if f == nil {
		t.Fatal("invariant suite did not catch the seeded repair-skip bug")
	}
	t.Logf("caught %q in %d ops (%v):\n%s", f.Invariant, len(f.Ops), f.Elapsed, f.Artifact)
	if len(f.Ops) > 10 {
		t.Errorf("shrunk program has %d ops, want <= 10:\n%s", len(f.Ops), f.Artifact)
	}
	if !strings.Contains(f.Artifact, "simcheck.Replay(42, []simcheck.Op{") {
		t.Errorf("artifact is not a Replay call:\n%s", f.Artifact)
	}
	// The artifact reproduces the same violation under the buggy config.
	g := buggy.Replay(f.Ops)
	if g == nil {
		t.Fatal("shrunk program does not reproduce the failure on replay")
	}
	if g.Invariant != f.Invariant {
		t.Errorf("replay tripped %q, original run tripped %q", g.Invariant, f.Invariant)
	}
	// The honest protocol passes the very same program: the bug is the
	// withheld maintenance, not the operation sequence.
	if h := (Config{Seed: 42}).Replay(f.Ops); h != nil {
		t.Errorf("honest protocol fails the shrunk program too — bug not isolated: %v", h)
	}
}

// TestSeededReplicationBugCaughtAndShrunk: the replication acceptance
// test. A seeded fault that acknowledges quorum writes while silently
// dropping every replica copy (no replica writes, no sweeps, no
// read-repair) must be caught by the durability/placement invariants,
// shrunk to a handful of operations, and replayable from the artifact —
// while the honest protocol passes the identical program.
func TestSeededReplicationBugCaughtAndShrunk(t *testing.T) {
	buggy := Config{Seed: 42, ReplicationBug: true}
	f := Run(buggy)
	if f == nil {
		t.Fatal("invariant suite did not catch the seeded replication bug")
	}
	t.Logf("caught %q in %d ops (%v):\n%s", f.Invariant, len(f.Ops), f.Elapsed, f.Artifact)
	switch f.Invariant {
	case "durability", "replica-placement", "get-availability", "data-safety":
	default:
		t.Errorf("tripped %q; a dropped-replica bug should fail a replication invariant", f.Invariant)
	}
	if len(f.Ops) > 10 {
		t.Errorf("shrunk program has %d ops, want <= 10:\n%s", len(f.Ops), f.Artifact)
	}
	if !strings.Contains(f.Artifact, "simcheck.Replay(42, []simcheck.Op{") {
		t.Errorf("artifact is not a Replay call:\n%s", f.Artifact)
	}
	// The artifact reproduces the same violation under the buggy config.
	g := buggy.Replay(f.Ops)
	if g == nil {
		t.Fatal("shrunk program does not reproduce the failure on replay")
	}
	if g.Invariant != f.Invariant {
		t.Errorf("replay tripped %q, original run tripped %q", g.Invariant, f.Invariant)
	}
	// The honest protocol passes the very same program: the bug is the
	// dropped replication, not the operation sequence.
	if h := (Config{Seed: 42}).Replay(f.Ops); h != nil {
		t.Errorf("honest protocol fails the shrunk program too — bug not isolated: %v", h)
	}
}

// TestSeededRouteGossipBugCaughtAndShrunk: the one-hop acceptance test.
// A seeded fault that silently drops all route gossip — pushes skipped,
// incoming events acknowledged and discarded — leaves every node's
// one-hop table knowing only what it learned locally. The
// route-table-accuracy invariant must catch the divergence at a
// quiescent checkpoint, shrink it to a handful of operations, and
// yield a replayable artifact — while the honest protocol passes the
// identical program.
func TestSeededRouteGossipBugCaughtAndShrunk(t *testing.T) {
	buggy := Config{Seed: 42, RouteGossipBug: true}
	f := Run(buggy)
	if f == nil {
		t.Fatal("invariant suite did not catch the seeded route-gossip bug")
	}
	t.Logf("caught %q in %d ops (%v):\n%s", f.Invariant, len(f.Ops), f.Elapsed, f.Artifact)
	if f.Invariant != "route-table-accuracy" {
		t.Errorf("tripped %q; a dropped-gossip bug should fail route-table-accuracy", f.Invariant)
	}
	if len(f.Ops) > 10 {
		t.Errorf("shrunk program has %d ops, want <= 10:\n%s", len(f.Ops), f.Artifact)
	}
	if !strings.Contains(f.Artifact, "simcheck.Replay(42, []simcheck.Op{") {
		t.Errorf("artifact is not a Replay call:\n%s", f.Artifact)
	}
	// The artifact reproduces the same violation under the buggy config.
	g := buggy.Replay(f.Ops)
	if g == nil {
		t.Fatal("shrunk program does not reproduce the failure on replay")
	}
	if g.Invariant != f.Invariant {
		t.Errorf("replay tripped %q, original run tripped %q", g.Invariant, f.Invariant)
	}
	// The honest protocol passes the very same program: the bug is the
	// withheld dissemination, not the operation sequence.
	if h := (Config{Seed: 42}).Replay(f.Ops); h != nil {
		t.Errorf("honest protocol fails the shrunk program too — bug not isolated: %v", h)
	}
}

// TestSeededBugDeterministic: two full runs against the seeded bug find
// the same invariant and shrink to the identical program — the property
// the whole replay/artifact story rests on.
func TestSeededBugDeterministic(t *testing.T) {
	buggy := Config{Seed: 42, SkipRepairLayer: 2}
	a, b := Run(buggy), Run(buggy)
	if a == nil || b == nil {
		t.Fatal("seeded bug not caught on both runs")
	}
	if a.Invariant != b.Invariant || !reflect.DeepEqual(a.Ops, b.Ops) {
		t.Fatalf("runs diverged:\n  first  %q %v\n  second %q %v", a.Invariant, a.Ops, b.Invariant, b.Ops)
	}
}

// TestReplayEmptyProgram: the bootstrapped two-landmark cluster itself
// satisfies every invariant (a program of zero ops still ends with a
// full quiescent checkpoint).
func TestReplayEmptyProgram(t *testing.T) {
	if f := Replay(0, nil); f != nil {
		t.Fatalf("empty program failed: %v", f)
	}
}

// TestGenerateWellFormed: programs are a pure function of the seed and
// respect the executor's legality rules, so generated runs are dense
// with effective operations.
func TestGenerateWellFormed(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		cfg := Config{Seed: seed}.withDefaults()
		ops := generate(cfg)
		if !reflect.DeepEqual(ops, generate(cfg)) {
			t.Fatalf("seed %d: generator is not deterministic", seed)
		}
		partitioned := false
		for i, op := range ops {
			switch op.Kind {
			case OpPartition:
				partitioned = true
			case OpHeal:
				partitioned = false
			case OpJoin, OpLeave:
				if partitioned {
					t.Fatalf("seed %d: op %d %s during a partition", seed, i, op)
				}
				if op.Slot < 2 {
					t.Fatalf("seed %d: op %d %s targets a landmark", seed, i, op)
				}
			case OpFail:
				if op.Slot < 2 {
					t.Fatalf("seed %d: op %d %s targets a landmark", seed, i, op)
				}
			}
		}
		if partitioned {
			t.Fatalf("seed %d: program ends partitioned", seed)
		}
	}
}

// TestDdmin exercises the shrinker against a synthetic predicate with a
// known minimum, no cluster involved: the program fails iff it joins
// slot 3 and later fails slot 3.
func TestDdmin(t *testing.T) {
	ops := []Op{
		{Kind: OpPut, Slot: 1, Key: "alpha", Value: "v0"},
		{Kind: OpJoin, Slot: 4},
		{Kind: OpJoin, Slot: 3},
		{Kind: OpLookup, Slot: 0, Key: "beta"},
		{Kind: OpPartition},
		{Kind: OpHeal},
		{Kind: OpGet, Slot: 2, Key: "alpha"},
		{Kind: OpFail, Slot: 3},
		{Kind: OpCheck},
		{Kind: OpLeave, Slot: 4},
	}
	fails := func(sub []Op) bool {
		joined := false
		for _, op := range sub {
			if op.Kind == OpJoin && op.Slot == 3 {
				joined = true
			}
			if op.Kind == OpFail && op.Slot == 3 && joined {
				return true
			}
		}
		return false
	}
	got := ddmin(ops, fails)
	want := []Op{{Kind: OpJoin, Slot: 3}, {Kind: OpFail, Slot: 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ddmin returned %v, want %v", got, want)
	}
}

// TestShrinkValues: field-wise shrinking canonicalises keys, values and
// slots when the predicate does not depend on them.
func TestShrinkValues(t *testing.T) {
	ops := []Op{{Kind: OpPut, Slot: 5, Key: "epsilon", Value: "v17"}}
	fails := func(sub []Op) bool {
		return len(sub) == 1 && sub[0].Kind == OpPut
	}
	got := shrinkValues(ops, fails)
	want := []Op{{Kind: OpPut, Slot: 0, Key: "k", Value: "v"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("shrinkValues returned %v, want %v", got, want)
	}
}

// TestLifecycleInvariantCatches feeds checkLifecycle fabricated worlds
// containing exactly the violations it exists to catch — an expired
// item surviving a fixpoint, and a deleted key resurrected as a live
// value — proving the invariant is not vacuously true.
func TestLifecycleInvariantCatches(t *testing.T) {
	m := &model{vals: map[string]map[string]bool{}, acked: map[string]bool{}, deleted: map[string]bool{}}
	live := func(items ...wire.StoreItem) []nodeView {
		return []nodeView{{Snap: transport.Snapshot{Addr: "n0", Items: items}}}
	}

	expired := &world{Now: 100, Model: m,
		Live: live(wire.StoreItem{Key: "k", Value: []byte("v"), Expire: 50})}
	if err := checkLifecycle(expired); err == nil || !strings.Contains(err.Error(), "lease expired") { //lint:allow wraperr the failure message is the shrink artifact a human reads; its wording is what this test pins
		t.Errorf("expired item survived checkLifecycle: %v", err)
	}

	alive := &world{Now: 100, Model: m,
		Live: live(wire.StoreItem{Key: "k", Value: []byte("v"), Expire: 200})}
	if err := checkLifecycle(alive); err != nil {
		t.Errorf("unexpired item tripped checkLifecycle: %v", err)
	}

	resurrected := &world{Now: 100,
		Model: &model{deleted: map[string]bool{"gone": true}},
		Live:  live(wire.StoreItem{Key: "gone", Value: []byte("zombie"), Version: 9})}
	if err := checkLifecycle(resurrected); err == nil || !strings.Contains(err.Error(), "resurrected") { //lint:allow wraperr the failure message is the shrink artifact a human reads; its wording is what this test pins
		t.Errorf("resurrected delete survived checkLifecycle: %v", err)
	}

	tombstoned := &world{Now: 100,
		Model: &model{deleted: map[string]bool{"gone": true}},
		Live:  live(wire.StoreItem{Key: "gone", Version: 9, Tombstone: true})}
	if err := checkLifecycle(tombstoned); err != nil {
		t.Errorf("tombstone tripped checkLifecycle: %v", err)
	}
}

// TestArtifactRendering pins the replay artifact format — the thing a
// developer copies out of a CI log into a test file.
func TestArtifactRendering(t *testing.T) {
	got := Program(7, []Op{
		{Kind: OpJoin, Slot: 2},
		{Kind: OpPut, Slot: 0, Key: "k", Value: "v"},
		{Kind: OpPartition},
	})
	want := "simcheck.Replay(7, []simcheck.Op{\n" +
		"\t{Kind: simcheck.OpJoin, Slot: 2},\n" +
		"\t{Kind: simcheck.OpPut, Slot: 0, Key: \"k\", Value: \"v\"},\n" +
		"\t{Kind: simcheck.OpPartition},\n" +
		"})"
	if got != want {
		t.Fatalf("artifact rendering drifted:\n%s\nwant:\n%s", got, want)
	}
}
