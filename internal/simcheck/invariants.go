package simcheck

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"strings"

	"repro/internal/binning"
	"repro/internal/id"
	"repro/internal/transport"
	"repro/internal/wire"
)

// nodeView pairs one live node's snapshot with what the harness knows
// independently about it: its slot and the ring names an out-of-band
// binning computation assigns to its coordinates.
type nodeView struct {
	Slot        int
	Snap        transport.Snapshot
	ExpectNames []string
}

// world is everything an invariant may look at: snapshots of all live
// nodes (taken before any checker runs, so structural checks see the
// state as-is, not as repaired by their own probe traffic), the data
// model, and callbacks into the cluster for the active checks
// (reachability lookups, data reads).
type world struct {
	Depth       int
	Factor      int    // replication factor every node runs
	Now         uint64 // harness logical clock at snapshot time
	Quiescent   bool
	Partitioned bool
	Live        []nodeView // ascending slot order
	Model       *model

	lookup func(slot int, key id.ID) (transport.LookupResult, error)
	get    func(slot int, key string) ([]byte, error)
}

func (h *harness) world(quiescent bool) *world {
	w := &world{
		Depth:       h.cfg.Depth,
		Factor:      h.replOptions().Factor,
		Now:         h.clock.Load(),
		Quiescent:   quiescent,
		Partitioned: h.partitioned,
		Model:       h.model,
		lookup: func(slot int, key id.ID) (transport.LookupResult, error) {
			return h.nodes[slot].Lookup(h.ctx, key)
		},
		get: func(slot int, key string) ([]byte, error) {
			return h.nodes[slot].Get(h.ctx, key)
		},
	}
	for _, s := range h.liveSlots() {
		w.Live = append(w.Live, nodeView{
			Slot:        s,
			Snap:        h.nodes[s].Snapshot(),
			ExpectNames: h.expectNames[s],
		})
	}
	return w
}

// Invariant is one named property of the cluster. Always-on invariants
// hold after every operation, partitioned or not; quiescent invariants
// are exact statements that only hold once maintenance has reached a
// fixpoint with no partition active.
type Invariant struct {
	Name      string
	Quiescent bool
	Check     func(*world) error
}

// registry returns the full invariant suite in evaluation order.
// Structural (snapshot-only) checks come first: the active checks at the
// end route real lookups through the cluster, and those walks repair
// state via eviction as a side effect — they must not get the chance to
// mask a structural violation.
func registry() []Invariant {
	return []Invariant{
		{Name: "node-identity", Check: checkNodeIdentity},
		{Name: "ring-name-stability", Check: checkRingNames},
		{Name: "ring-refinement", Check: checkRefinement},
		{Name: "durability", Check: checkDurability},
		{Name: "route-table-accuracy", Check: checkRouteAccuracy},
		{Name: "ring-consistency", Quiescent: true, Check: checkRings},
		{Name: "finger-exactness", Quiescent: true, Check: checkFingers},
		{Name: "ring-table-exactness", Quiescent: true, Check: checkRingTables},
		{Name: "replica-placement", Quiescent: true, Check: checkPlacement},
		{Name: "data-lifecycle", Quiescent: true, Check: checkLifecycle},
		{Name: "reachability", Quiescent: true, Check: checkReachability},
		{Name: "data-safety", Quiescent: true, Check: checkData},
	}
}

// checkNodeIdentity: a node's identifier is a pure function of its
// address, and every running node has completed its join.
func checkNodeIdentity(w *world) error {
	for _, v := range w.Live {
		if want := slotAddr(v.Slot); v.Snap.Addr != want {
			return fmt.Errorf("slot %d reports address %q, want %q", v.Slot, v.Snap.Addr, want)
		}
		if want := transport.NodeID(v.Snap.Addr); !v.Snap.ID.Equal(want) {
			return fmt.Errorf("%s: id %s is not NodeID(addr) %s", v.Snap.Addr, v.Snap.ID.Short(), want.Short())
		}
		if !v.Snap.Joined {
			return fmt.Errorf("%s: running but not joined", v.Snap.Addr)
		}
	}
	return nil
}

// checkRingNames: the ring names a node advertises equal what distributed
// binning assigns to its (fixed) coordinates — landmark-order quantisation
// is stable across joins, churn and partitions.
func checkRingNames(w *world) error {
	for _, v := range w.Live {
		if !reflect.DeepEqual(v.Snap.RingNames, v.ExpectNames) {
			return fmt.Errorf("%s: ring names %v, binning of its coordinates says %v",
				v.Snap.Addr, v.Snap.RingNames, v.ExpectNames)
		}
	}
	return nil
}

// checkRefinement: deeper rings refine shallower ones — two nodes sharing
// a layer-l ring share every ring above it (HIERAS's nesting property).
func checkRefinement(w *world) error {
	names := make([][]string, 0, len(w.Live))
	for _, v := range w.Live {
		names = append(names, v.Snap.RingNames)
	}
	return binning.CheckRefinement(names)
}

// ringGroups collects, for one layer, the live members of every ring,
// keyed by ring name ("" for the global ring), each group sorted by node
// ID — the oracle ring order.
func ringGroups(w *world, layer int) map[string][]nodeView {
	groups := map[string][]nodeView{}
	for _, v := range w.Live {
		name := ""
		if layer > 1 {
			if layer-2 >= len(v.Snap.RingNames) {
				continue // depth-1 overlays have no lower rings
			}
			name = v.Snap.RingNames[layer-2]
		}
		groups[name] = append(groups[name], v)
	}
	for _, g := range groups {
		sort.Slice(g, func(i, j int) bool { return g[i].Snap.ID.Less(g[j].Snap.ID) })
	}
	return groups
}

func layerSnap(v nodeView, layer int) (transport.LayerSnapshot, error) {
	for _, ls := range v.Snap.Layers {
		if ls.Layer == layer {
			return ls, nil
		}
	}
	return transport.LayerSnapshot{}, fmt.Errorf("%s: no layer-%d state", v.Snap.Addr, layer)
}

// checkRings: at a maintenance fixpoint every ring on every layer is
// exactly the sorted cycle of its live members — successor lists hold the
// next min(len-1, listLen) members in order, predecessors the previous
// member, with no dead or foreign entries anywhere.
func checkRings(w *world) error {
	for layer := 1; layer <= w.Depth; layer++ {
		for name, g := range ringGroups(w, layer) {
			for i, v := range g {
				ls, err := layerSnap(v, layer)
				if err != nil {
					return err
				}
				if ls.Name != name {
					return fmt.Errorf("%s layer %d: ring label %q, binned into %q", v.Snap.Addr, layer, ls.Name, name)
				}
				wantSucc := succListOracle(g, i)
				gotSucc := make([]string, 0, len(ls.Succ))
				for _, p := range ls.Succ {
					gotSucc = append(gotSucc, p.Addr)
				}
				if !reflect.DeepEqual(gotSucc, wantSucc) {
					return fmt.Errorf("%s layer %d ring %q: successor list %v, want %v",
						v.Snap.Addr, layer, name, gotSucc, wantSucc)
				}
				wantPred := g[(i-1+len(g))%len(g)].Snap.Addr
				if ls.Pred.Addr != wantPred {
					return fmt.Errorf("%s layer %d ring %q: predecessor %q, want %q",
						v.Snap.Addr, layer, name, ls.Pred.Addr, wantPred)
				}
			}
		}
	}
	return nil
}

// succListOracle is the converged successor list of member i in ring g:
// the following min(len(g)-1, listLen) members clockwise — or the node
// itself for a singleton ring.
func succListOracle(g []nodeView, i int) []string {
	const listLen = 4 // transport's default SuccListLen
	if len(g) == 1 {
		return []string{g[0].Snap.Addr}
	}
	k := len(g) - 1
	if k > listLen {
		k = listLen
	}
	out := make([]string, 0, k)
	for d := 1; d <= k; d++ {
		out = append(out, g[(i+d)%len(g)].Snap.Addr)
	}
	return out
}

// checkFingers: after a full finger rebuild at a fixpoint, finger k of
// every node equals the true successor of (self + 2^k) among the ring's
// live members — the ideal Chord table, per layer.
func checkFingers(w *world) error {
	for layer := 1; layer <= w.Depth; layer++ {
		for name, g := range ringGroups(w, layer) {
			ids := make([]id.ID, len(g))
			for i, v := range g {
				ids[i] = v.Snap.ID
			}
			for _, v := range g {
				ls, err := layerSnap(v, layer)
				if err != nil {
					return err
				}
				for k, f := range ls.Fingers {
					target := id.AddPow2(v.Snap.ID, uint(k))
					want := g[successorIndex(ids, target)].Snap.Addr
					if f.Addr != want {
						return fmt.Errorf("%s layer %d ring %q: finger %d is %q, ideal successor of self+2^%d is %q",
							v.Snap.Addr, layer, name, k, f.Addr, k, want)
					}
				}
			}
		}
	}
	return nil
}

// sortedByID orders views ascending by node ID — the ring order that
// successorIndex requires.
func sortedByID(views []nodeView) ([]nodeView, []id.ID) {
	byID := append([]nodeView(nil), views...)
	sort.Slice(byID, func(i, j int) bool { return byID[i].Snap.ID.Less(byID[j].Snap.ID) })
	ids := make([]id.ID, len(byID))
	for i, v := range byID {
		ids[i] = v.Snap.ID
	}
	return byID, ids
}

// successorIndex returns the index in ids (sorted ascending) of the first
// identifier clockwise-at-or-after key.
func successorIndex(ids []id.ID, key id.ID) int {
	for i, x := range ids {
		if !x.Less(key) {
			return i
		}
	}
	return 0 // wrapped past the largest id
}

// checkRingTables: every lower ring with live members has its ring table
// stored at the global successor of the ring's identifier, and — with
// dead boundaries pruned by the re-announce cycle — the boundary entries
// are exactly the extremes of the live membership (§3.1's four boundary
// nodes). A missing or misplaced table is the split window: the next
// joiner binned into the ring would start a second ring under its name.
func checkRingTables(w *world) error {
	byID, ids := sortedByID(w.Live)
	for layer := 2; layer <= w.Depth; layer++ {
		for name, g := range ringGroups(w, layer) {
			holder := byID[successorIndex(ids, transport.RingID(layer, name))]
			var table *wire.RingTable
			for i := range holder.Snap.Tables {
				t := &holder.Snap.Tables[i]
				if t.Layer == layer && t.Name == name {
					table = t
					break
				}
			}
			if table == nil {
				return fmt.Errorf("ring table (%d,%q) missing at its owner %s", layer, name, holder.Snap.Addr)
			}
			// g is sorted by ID; expected boundaries follow the
			// transport convention (second slots repeat the extremes
			// for a singleton ring).
			k := len(g)
			wantBounds := [4]string{g[0].Snap.Addr, g[0].Snap.Addr, g[k-1].Snap.Addr, g[k-1].Snap.Addr}
			if k >= 2 {
				wantBounds[1] = g[1].Snap.Addr
				wantBounds[3] = g[k-2].Snap.Addr
			}
			gotBounds := [4]string{table.Smallest.Addr, table.SecondSm.Addr, table.Largest.Addr, table.SecondLg.Addr}
			if gotBounds != wantBounds {
				return fmt.Errorf("ring table (%d,%q) at %s has boundaries %v, live extremes are %v",
					layer, name, holder.Snap.Addr, gotBounds, wantBounds)
			}
		}
	}
	return nil
}

// routeSubject keys one gossip ring: the global ring is (1, ""), a
// lower-layer ring is its layer and binned name.
type routeSubject struct {
	Layer int
	Ring  string
}

// checkRouteAccuracy: the one-hop route tables stay truthful. Always
// on, it checks event well-formedness — every gossiped peer identifier
// is NodeID(addr), layers exist, only layer 1 is the nameless global
// ring, and stamps are live — because a malformed event is a bug no
// matter how stale the table is allowed to be. At a quiescent fixpoint
// it is exact: on every live node, the Join-latest members of every
// subject ring equal that ring's live membership, so a table answer
// resolves to the true owner — the property that makes the single-hop
// tier a verified accelerator. Mid-churn the tables may lag behind
// membership; the verify-or-fallback contract covers that window
// (reachability and get-safety hold lookups to the true owner), so
// exactness is only asserted once maintenance has converged.
func checkRouteAccuracy(w *world) error {
	// Oracle membership per subject, from snapshots alone: layer 1 is
	// every live node, lower layers group by the binned ring names.
	oracle := map[routeSubject][]string{}
	for layer := 1; layer <= w.Depth; layer++ {
		for name, g := range ringGroups(w, layer) {
			addrs := make([]string, 0, len(g))
			for _, v := range g {
				addrs = append(addrs, v.Snap.Addr)
			}
			sort.Strings(addrs)
			oracle[routeSubject{layer, name}] = addrs
		}
	}
	for _, v := range w.Live {
		if v.Snap.Routes == nil {
			return fmt.Errorf("%s: no one-hop route table in a one-hop cluster", v.Snap.Addr)
		}
		members := map[routeSubject][]string{}
		for _, ev := range v.Snap.Routes {
			if ev.Layer < 1 || ev.Layer > w.Depth {
				return fmt.Errorf("%s: route event for %s names layer %d outside [1,%d]",
					v.Snap.Addr, ev.Peer.Addr, ev.Layer, w.Depth)
			}
			if (ev.Ring == "") != (ev.Layer == 1) {
				return fmt.Errorf("%s: route event for %s pairs layer %d with ring %q — only layer 1 is the global ring",
					v.Snap.Addr, ev.Peer.Addr, ev.Layer, ev.Ring)
			}
			if ev.Stamp == 0 {
				return fmt.Errorf("%s: route event for %s carries the zero stamp", v.Snap.Addr, ev.Peer.Addr)
			}
			if want := transport.NodeID(ev.Peer.Addr); ev.Peer.ID != [20]byte(want) {
				return fmt.Errorf("%s: route event identifies %s as %x, NodeID(addr) is %s",
					v.Snap.Addr, ev.Peer.Addr, ev.Peer.ID, want.Short())
			}
			if ev.Kind == wire.RouteJoin {
				s := routeSubject{ev.Layer, ev.Ring}
				members[s] = append(members[s], ev.Peer.Addr)
			}
		}
		if !w.Quiescent {
			continue
		}
		subjects := map[routeSubject]bool{}
		for s := range oracle {
			subjects[s] = true
		}
		for s := range members {
			subjects[s] = true
		}
		ordered := make([]routeSubject, 0, len(subjects))
		for s := range subjects {
			ordered = append(ordered, s)
		}
		sort.Slice(ordered, func(i, j int) bool {
			if ordered[i].Layer != ordered[j].Layer {
				return ordered[i].Layer < ordered[j].Layer
			}
			return ordered[i].Ring < ordered[j].Ring
		})
		for _, s := range ordered {
			got, want := members[s], oracle[s]
			sort.Strings(got) // snapshot order is already sorted; re-sort defensively
			if strings.Join(got, " ") != strings.Join(want, " ") {
				return fmt.Errorf("%s layer %d ring %q: one-hop table members %v, live membership is %v",
					v.Snap.Addr, s.Layer, s.Ring, got, want)
			}
		}
	}
	return nil
}

// checkReachability: from every live node, a lookup for every model key
// (plus fixed probes, so an empty store still exercises routing) reaches
// the true owner — the global successor of the key — within the hop
// bound. Key reachability is the paper's core correctness claim.
func checkReachability(w *world) error {
	byID, ids := sortedByID(w.Live)
	keys := append(w.Model.keys(), "probe-a", "probe-b")
	if len(keys) > 10 {
		keys = keys[:10]
	}
	bound := hopBound(len(w.Live), w.Depth)
	for _, v := range w.Live {
		for _, key := range keys {
			kid := transport.LiveKeyID(key)
			want := byID[successorIndex(ids, kid)].Snap.Addr
			res, err := w.lookup(v.Slot, kid)
			if err != nil {
				return fmt.Errorf("lookup %q from %s: %v", key, v.Snap.Addr, err)
			}
			if res.Owner.Addr != want {
				return fmt.Errorf("lookup %q from %s: owner %q, true owner %q",
					key, v.Snap.Addr, res.Owner.Addr, want)
			}
			if res.Hops > bound {
				return fmt.Errorf("lookup %q from %s: %d hops exceeds bound %d", key, v.Snap.Addr, res.Hops, bound)
			}
		}
	}
	return nil
}

// checkDurability: no acknowledged write is ever lost — every key whose
// put reached a write quorum is still held, with a value that was
// actually written, by at least one live node. Snapshot-only, so it is
// always-on: it must hold mid-partition and mid-churn, with no
// exemptions for crashes or failed handoffs. A write quorum of 2 puts
// copies on two nodes, each crash destroys at most one, and the
// death-triggered sweeps between ops restore the factor — so a key with
// zero surviving copies is always a replication bug, never bad luck.
func checkDurability(w *world) error {
	held := map[string]map[string]bool{} // key → values held by any live node
	for _, v := range w.Live {
		for _, it := range v.Snap.Items {
			if held[it.Key] == nil {
				held[it.Key] = map[string]bool{}
			}
			held[it.Key][string(it.Value)] = true
		}
	}
	acked := make([]string, 0, len(w.Model.acked))
	for k := range w.Model.acked {
		acked = append(acked, k)
	}
	sort.Strings(acked)
	for _, key := range acked {
		if w.Model.deleted[key] || w.Model.expired(key, w.Now) {
			// An acknowledged tombstone or a lapsed lease releases the
			// durability promise: the whole point of the lifecycle is
			// that this data is allowed — required, at a fixpoint — to
			// disappear.
			continue
		}
		vals := held[key]
		if len(vals) == 0 {
			return fmt.Errorf("acknowledged key %q is held by no live node — every quorum copy was lost", key)
		}
		written := false
		for val := range vals {
			if w.Model.vals[key][val] {
				written = true
				break
			}
		}
		if !written {
			return fmt.Errorf("acknowledged key %q survives only with values that were never written", key)
		}
	}
	return nil
}

// replicaMembers is the oracle replica set of key: the global successor
// of the key's identifier plus the next min(factor, n)−1 distinct live
// nodes clockwise — the same rule the transport's replica-set resolution
// follows, recomputed here from nothing but snapshots.
func replicaMembers(byID []nodeView, ids []id.ID, key string, factor int) []string {
	k := factor
	if k > len(byID) {
		k = len(byID)
	}
	start := successorIndex(ids, transport.LiveKeyID(key))
	out := make([]string, 0, k)
	for d := 0; d < k; d++ {
		out = append(out, byID[(start+d)%len(byID)].Snap.Addr)
	}
	return out
}

// checkPlacement: at a maintenance fixpoint every stored key sits on
// exactly its replica set, every member holds the identical stamped
// item, and no other node holds a copy. Missing members would be filled
// by the next sweep and stray copies dropped by it, so any deviation at
// a fixpoint is a replication bug — an owner-copy-only write fails here
// at the first quiescent checkpoint after a single put.
func checkPlacement(w *world) error {
	byID, ids := sortedByID(w.Live)
	holders := map[string]map[string]wire.StoreItem{} // key → holder addr → item
	for _, v := range w.Live {
		for _, it := range v.Snap.Items {
			if holders[it.Key] == nil {
				holders[it.Key] = map[string]wire.StoreItem{}
			}
			holders[it.Key][v.Snap.Addr] = it
		}
	}
	keys := make([]string, 0, len(holders))
	for k := range holders {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		members := replicaMembers(byID, ids, key, w.Factor)
		inSet := map[string]bool{}
		var ref wire.StoreItem
		for i, addr := range members {
			inSet[addr] = true
			it, ok := holders[key][addr]
			if !ok {
				return fmt.Errorf("key %q: replica-set member %s holds no copy (set %v, %d factor)",
					key, addr, members, w.Factor)
			}
			if i == 0 {
				ref = it
				continue
			}
			if it.Version != ref.Version || it.Writer != ref.Writer || !bytes.Equal(it.Value, ref.Value) ||
				it.Expire != ref.Expire || it.Tombstone != ref.Tombstone {
				return fmt.Errorf("key %q: replicas diverge at a fixpoint: %s holds v%d/%s (expire %d, tombstone %t), %s holds v%d/%s (expire %d, tombstone %t)",
					key, members[0], ref.Version, ref.Writer, ref.Expire, ref.Tombstone,
					addr, it.Version, it.Writer, it.Expire, it.Tombstone)
			}
		}
		var strays []string
		for addr := range holders[key] {
			if !inSet[addr] {
				strays = append(strays, addr)
			}
		}
		if len(strays) > 0 {
			sort.Strings(strays)
			return fmt.Errorf("key %q: held outside its replica set %v by %v", key, members, strays)
		}
	}
	return nil
}

// checkLifecycle: dead data is gone at a fixpoint. No live node still
// holds an item whose lease lapsed — every anti-entropy round purges
// expired values and tombstones, so surviving one to quiescence means
// the purge or the expiry stamps diverged. And every key whose delete
// was quorum-acknowledged exists at most as a tombstone: a live value
// would mean a stale replica out-stamped the tombstone, the
// resurrection the LWW order is supposed to make impossible.
func checkLifecycle(w *world) error {
	for _, v := range w.Live {
		for _, it := range v.Snap.Items {
			if it.Expire != 0 && it.Expire <= w.Now {
				return fmt.Errorf("%s still holds %q with lease expired at %d (clock %d) at a fixpoint",
					v.Snap.Addr, it.Key, it.Expire, w.Now)
			}
		}
	}
	deleted := make([]string, 0, len(w.Model.deleted))
	for k := range w.Model.deleted {
		deleted = append(deleted, k)
	}
	sort.Strings(deleted)
	for _, key := range deleted {
		for _, v := range w.Live {
			for _, it := range v.Snap.Items {
				if it.Key == key && !it.Tombstone {
					return fmt.Errorf("deleted key %q resurrected on %s as v%d/%s %q",
						key, v.Snap.Addr, it.Version, it.Writer, bytes.ToValidUTF8(it.Value, []byte{'?'}))
				}
			}
		}
	}
	return nil
}

// checkData: every key the model knows reads back only values that were
// actually written, every acknowledged live key reads back successfully,
// and every acknowledged-deleted key reads as not-found — at a quiescent
// fixpoint a quorum read settles the tombstone race, with no churn
// exemptions. Unacknowledged writes (quorum failures on a partition
// minority) may be absent and expired leases may have been purged; if a
// value surfaces anyway, it must still be one the harness wrote.
func checkData(w *world) error {
	origin := w.Live[0].Slot
	for _, key := range w.Model.keys() {
		v, err := w.get(origin, key)
		if err != nil {
			if w.Model.mustRead(key, w.Now) {
				return fmt.Errorf("get %q: %v (write was acknowledged by a quorum; it must stay readable)", key, err)
			}
			continue
		}
		if w.Model.deleted[key] {
			return fmt.Errorf("get %q: delete was acknowledged by a quorum, but the key still reads back %q",
				key, bytes.ToValidUTF8(v, []byte{'?'}))
		}
		if !w.Model.vals[key][string(v)] {
			return fmt.Errorf("get %q: value %q was never written", key, bytes.ToValidUTF8(v, []byte{'?'}))
		}
	}
	return nil
}
