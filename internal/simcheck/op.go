package simcheck

import (
	"fmt"
	"strings"
)

// OpKind names one step of a checked program.
type OpKind string

const (
	// OpJoin starts the node at Slot and joins it through the
	// lowest-numbered live node. No-op if the slot is occupied or a
	// partition is active (a joiner cannot probe landmarks across one).
	OpJoin OpKind = "join"
	// OpLeave gracefully departs the node at Slot: data handoff,
	// neighbor notification, then shutdown. No-op on landmarks, empty
	// slots, or during a partition.
	OpLeave OpKind = "leave"
	// OpFail crashes the node at Slot without any handoff. No-op on
	// landmarks and empty slots.
	OpFail OpKind = "fail"
	// OpPut writes Value under Key from the node at Slot (or the lowest
	// live slot when that one is empty).
	OpPut OpKind = "put"
	// OpGet reads Key and checks the result against the model.
	OpGet OpKind = "get"
	// OpDelete quorum-deletes Key from the node at Slot: a tombstone is
	// installed on the replica set and the key must read as not-found
	// once the cluster converges. Deletes acknowledged inside a
	// partition assert nothing — a concurrent cross-partition write can
	// legitimately supersede the tombstone after the heal.
	OpDelete OpKind = "delete"
	// OpTick advances the harness's logical clock by Slot extra ticks
	// (every op already advances it by one). With a TTL configured, a
	// jump past the remaining lease expires data faster than the
	// owners' republish cycle can renew it — the only way soft state
	// legitimately disappears.
	OpTick OpKind = "tick"
	// OpLookup routes to Key's owner and checks hop sanity.
	OpLookup OpKind = "lookup"
	// OpPartition splits the cluster into even and odd slots (which is
	// also the landmark/binning split, so every ring lands wholly on one
	// side). No-op if already partitioned.
	OpPartition OpKind = "partition"
	// OpHeal removes the partition. No-op if none is active.
	OpHeal OpKind = "heal"
	// OpCheck quiesces the cluster (when no partition is active) and runs
	// the full invariant registry. Always-on invariants run even inside a
	// partition. Every program additionally ends with heal+check.
	OpCheck OpKind = "check"
)

// Op is one generated operation. Ops are plain data: executing a slice of
// them through Replay is deterministic, which is what makes shrinking and
// failure artifacts possible.
type Op struct {
	Kind  OpKind
	Slot  int    // join, leave, fail; origin for put/get/lookup
	Key   string // put, get, lookup
	Value string // put
}

// String renders the op compactly for log lines.
func (o Op) String() string {
	switch o.Kind {
	case OpJoin, OpLeave, OpFail:
		return fmt.Sprintf("%s(n%d)", o.Kind, o.Slot)
	case OpPut:
		return fmt.Sprintf("put(n%d, %q=%q)", o.Slot, o.Key, o.Value)
	case OpGet, OpLookup, OpDelete:
		return fmt.Sprintf("%s(n%d, %q)", o.Kind, o.Slot, o.Key)
	case OpTick:
		return fmt.Sprintf("tick(+%d)", o.Slot)
	default:
		return string(o.Kind)
	}
}

// GoString renders the op as a Go composite literal with only its
// meaningful fields, so failure artifacts paste cleanly into a test.
func (o Op) GoString() string {
	k := string(o.Kind)
	parts := []string{fmt.Sprintf("Kind: simcheck.Op%s", strings.ToUpper(k[:1])+k[1:])}
	switch o.Kind {
	case OpJoin, OpLeave, OpFail, OpTick:
		parts = append(parts, fmt.Sprintf("Slot: %d", o.Slot))
	case OpPut:
		parts = append(parts, fmt.Sprintf("Slot: %d, Key: %q, Value: %q", o.Slot, o.Key, o.Value))
	case OpGet, OpLookup, OpDelete:
		parts = append(parts, fmt.Sprintf("Slot: %d, Key: %q", o.Slot, o.Key))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Program renders a replayable call for a failing op sequence — the
// artifact printed when a property fails, runnable as-is from a test in
// this module.
func Program(seed int64, ops []Op) string {
	var b strings.Builder
	fmt.Fprintf(&b, "simcheck.Replay(%d, []simcheck.Op{\n", seed)
	for _, o := range ops {
		fmt.Fprintf(&b, "\t%s,\n", o.GoString())
	}
	b.WriteString("})")
	return b.String()
}
