package simcheck

import (
	"fmt"

	"repro/internal/transport"
)

// exec applies one op to the cluster and checks what can be checked at
// that moment. Ops that no longer make sense (occupied slot, landmark
// fail, join during a partition) are no-ops rather than errors, so every
// subsequence a shrinker proposes is still a well-formed program.
func (h *harness) exec(op Op) *Failure {
	fail := func(invariant, format string, args ...interface{}) *Failure {
		return &Failure{Invariant: invariant, Err: fmt.Errorf(format, args...)}
	}
	// Logical time moves once per op — before the op runs, so two ops
	// never share a tick and expiry stays a pure function of the program.
	h.clock.Add(1)
	switch op.Kind {
	case OpJoin:
		if h.partitioned || op.Slot < 2 || op.Slot >= h.cfg.Slots || h.nodes[op.Slot] != nil {
			return nil
		}
		boot := -1
		for _, s := range h.liveSlots() {
			if s != op.Slot {
				boot = s
				break
			}
		}
		if err := h.startNode(op.Slot); err != nil {
			return fail("join-availability", "start n%d: %v", op.Slot, err)
		}
		if err := h.nodes[op.Slot].Join(slotAddr(boot)); err != nil {
			h.nodes[op.Slot].Close()
			h.nodes[op.Slot] = nil
			// A join against a maintained, partition-free cluster must
			// succeed; a refusal means the ring tables or landmark walk
			// are advertising unusable state.
			return fail("join-availability", "join n%d via n%d: %v", op.Slot, boot, err)
		}
		h.maintain()

	case OpLeave:
		if h.partitioned || op.Slot < 2 || op.Slot >= h.cfg.Slots || h.nodes[op.Slot] == nil {
			return nil
		}
		n := h.nodes[op.Slot]
		// A failed handoff is survivable by design: every acknowledged
		// write has quorum copies on other replica-set members, and the
		// sweeps inside maintain re-home them. The durability invariant
		// holds the cluster to that claim immediately below.
		_ = n.Leave()
		n.Close()
		h.nodes[op.Slot] = nil
		h.maintain()

	case OpFail:
		if op.Slot < 2 || op.Slot >= h.cfg.Slots || h.nodes[op.Slot] == nil {
			return nil
		}
		h.nodes[op.Slot].Close()
		h.nodes[op.Slot] = nil
		// Crash, no handoff. Replication makes this survivable too: a
		// write quorum put copies on at least two nodes, a crash destroys
		// one, and the death-triggered sweeps in maintain restore the
		// replication factor before the next op can crash another.
		h.maintain()

	case OpPut:
		n := h.origin(op.Slot)
		wasDeleted := h.model.deleted[op.Key]
		err := n.Put(h.ctx, op.Key, []byte(op.Value))
		// Record the value even when the put reports failure: part of the
		// replica set may have accepted the write before the quorum
		// fell short, so the value can legitimately be read back later.
		// put also clears the deleted mark — even a partial write can
		// out-stamp the tombstone.
		h.model.put(op.Key, op.Value)
		h.extendLease(op.Key)
		if err != nil {
			if wasDeleted {
				// Unacknowledged write against a tombstoned key: either
				// side of the LWW race may win, so neither presence nor
				// absence is assertable from here on.
				delete(h.model.acked, op.Key)
			}
			if !h.partitioned {
				return fail("put-availability", "put %q from n%d: %v", op.Key, op.Slot, err)
			}
			return nil // a minority side may legitimately lack a write quorum
		}
		// Acknowledged: a write quorum confirmed the item. From here on
		// the cluster must never lose this key — even when it was written
		// on one side of a partition, because the side that acknowledged
		// it holds quorum copies that survive the heal and re-home.
		h.model.acked[op.Key] = true

	case OpGet:
		n := h.origin(op.Slot)
		v, err := n.Get(h.ctx, op.Key)
		acc := h.model.vals[op.Key]
		if err != nil {
			// Acknowledged writes must stay readable in a partition-free
			// cluster — no churn exemptions, that is what the quorum
			// bought. Unacknowledged writes may be absent, deleted or
			// expired keys are expected to vanish, and a split cluster
			// may be unable to assemble a read quorum.
			if h.model.mustRead(op.Key, h.clock.Load()) && !h.partitioned {
				return fail("get-availability", "get %q from n%d: %v (write was acknowledged)", op.Key, op.Slot, err)
			}
			return nil
		}
		if !acc[string(v)] {
			return fail("get-safety", "get %q from n%d returned %q, not a value ever written (%d known)",
				op.Key, op.Slot, v, len(acc))
		}

	case OpDelete:
		n := h.origin(op.Slot)
		err := n.Delete(h.ctx, op.Key)
		h.extendLease(op.Key) // the tombstone's grace is a fresh lease
		if err != nil {
			// A failed delete may still have installed tombstones on a
			// minority of the set, so the key is no longer promised
			// readable — but absence is not promised either.
			delete(h.model.acked, op.Key)
			if !h.partitioned {
				return fail("delete-availability", "delete %q from n%d: %v", op.Key, op.Slot, err)
			}
			return nil
		}
		if h.partitioned {
			// One side's quorum acknowledged the tombstone, but a
			// concurrent write on the other side can carry a higher
			// stamp and legitimately resurrect the key after the heal.
			delete(h.model.acked, op.Key)
			break
		}
		// Partition-free, the tombstone was stamped past every version
		// the owner acknowledged, so it wins LWW: the key must read as
		// not-found once the cluster converges.
		h.model.deleted[op.Key] = true

	case OpTick:
		if op.Slot > 0 {
			h.clock.Add(uint64(op.Slot))
		}

	case OpLookup:
		n := h.origin(op.Slot)
		res, err := n.Lookup(h.ctx, transport.LiveKeyID(op.Key))
		if err != nil {
			if !h.partitioned {
				return fail("lookup-availability", "lookup %q from n%d: %v", op.Key, op.Slot, err)
			}
			return nil
		}
		if !h.partitioned {
			if bound := hopBound(len(h.liveSlots()), h.cfg.Depth); res.Hops > bound {
				return fail("hop-bound", "lookup %q from n%d took %d hops (bound %d for %d nodes)",
					op.Key, op.Slot, res.Hops, bound, len(h.liveSlots()))
			}
		}

	case OpPartition:
		if h.partitioned {
			return nil
		}
		even, odd := h.parityGroups()
		h.fnet.Partition(even, odd)
		h.partitioned = true
		// Let each side adapt: suspicion confirms the other side dead,
		// evictions shrink the rings, exactly like a real netsplit.
		h.maintain()

	case OpHeal:
		if !h.partitioned {
			return nil
		}
		h.fnet.Heal()
		h.partitioned = false
		h.maintain()

	case OpCheck:
		return h.checkpoint()

	default:
		return fail("harness", "unknown op kind %q", op.Kind)
	}
	return h.runInvariants(false)
}

// hopBound is a deliberately generous sanity ceiling on routing length:
// a hierarchical lookup can in the worst case traverse each ring it
// climbs, but never revisit a node inside one. Catching runaway walks is
// its job; tight performance bands live in the paper-claim tests where
// populations are big enough for ratios to be stable.
func hopBound(liveNodes, depth int) int {
	return 2*liveNodes + 2*depth + 2
}

// checkpoint runs the invariant registry. With a partition active only
// the always-on invariants apply — the cluster cannot converge while it
// is split. Otherwise the harness first quiesces to a maintenance
// fixpoint, then checks everything, exact placement and durable reads
// included.
func (h *harness) checkpoint() *Failure {
	if h.partitioned {
		return h.runInvariants(false)
	}
	if err := h.quiesce(); err != nil {
		return &Failure{Invariant: "quiescence", Err: err}
	}
	return h.runInvariants(true)
}

// runInvariants evaluates the registry against a freshly built world.
// Quiescent invariants only run when quiescent is true.
func (h *harness) runInvariants(quiescent bool) *Failure {
	w := h.world(quiescent)
	for _, inv := range registry() {
		if inv.Quiescent && !quiescent {
			continue
		}
		if err := inv.Check(w); err != nil {
			return &Failure{Invariant: inv.Name, Err: err}
		}
	}
	return nil
}
