// Package simcheck is a property-based invariant harness for the HIERAS
// transport stack. It generates seeded random operation programs (joins,
// crashes, graceful departures, puts, gets, lookups, partitions, heals)
// against an in-process multi-layer cluster running over wire.MemNet,
// checks a registry of invariants as the program executes, and on
// failure shrinks the program — delta debugging over the op sequence,
// then field-wise value shrinking — to a minimal artifact replayable
// with Replay(seed, ops).
//
// Determinism is the load-bearing property: MemNet gives every node the
// same logical address (and therefore the same node ID) on every run,
// faultnet partitions are probability-free, the circuit breaker (whose
// cooldown is wall-clock) is disabled, and the executor is single-
// threaded with exactly one RPC in flight at a time. Running the same
// (config, ops) twice reaches the same states, which is what makes a
// shrunk counterexample trustworthy.
package simcheck

import (
	"fmt"
	"time"
)

// Config parameterises one checked run.
type Config struct {
	// Seed drives the program generator (and is echoed into artifacts).
	Seed int64
	// Slots is the cluster's slot count, addresses n0..n{Slots-1}; slots
	// 0 and 1 are the landmarks (default 8, minimum 3).
	Slots int
	// Ops is the generated program length (default 24).
	Ops int
	// Depth is the hierarchy depth (default 2).
	Depth int
	// TTL is the data lifetime in logical clock ticks (each executed op
	// advances the harness clock by one; OpTick jumps it further). Puts
	// expire TTL ticks after being written unless their owner's
	// republish cycle renews the lease first, and tombstones are pruned
	// after the same grace. 0 — the default — keeps data and tombstones
	// forever.
	TTL uint64
	// SkipRepairLayer, when in 1..Depth, suppresses that layer's
	// stabilization during maintenance — a deliberately seeded
	// maintenance bug used to prove the invariant suite catches and
	// shrinks real regressions. 0 checks the honest protocol.
	SkipRepairLayer int
	// ReplicationBug, when true, seeds a replication fault: every node
	// acknowledges quorum writes after storing only the owner's copy and
	// never pushes replicas (no replica writes, no re-replication
	// sweeps, no read-repair). The durability and replica-placement
	// invariants must catch it and shrink to a replayable artifact.
	// False checks the honest protocol.
	ReplicationBug bool
	// RouteGossipBug, when true, seeds a route-dissemination fault:
	// every node keeps its one-hop table to itself — incoming route
	// gossip is acknowledged and discarded and no push rounds run — so
	// tables never learn of other members. The route-table-accuracy
	// invariant must catch it at the first quiescent checkpoint and
	// shrink it to a replayable artifact. False checks the honest
	// protocol.
	RouteGossipBug bool
}

func (c Config) withDefaults() Config {
	if c.Slots == 0 {
		c.Slots = 8
	}
	if c.Slots < 3 {
		c.Slots = 3
	}
	if c.Ops == 0 {
		c.Ops = 24
	}
	if c.Depth == 0 {
		c.Depth = 2
	}
	return c
}

// Failure describes a property violation, after shrinking.
type Failure struct {
	Seed      int64
	Invariant string // registry name, or executor check ("get-safety", ...)
	Err       error  // the concrete violation on the shrunk program
	Ops       []Op   // the shrunk program
	Elapsed   time.Duration
	Artifact  string // replayable Replay(seed, ops) source
}

// Error satisfies the error interface: invariant, violation, artifact.
func (f *Failure) Error() string {
	return fmt.Sprintf("invariant %q violated: %v\nreplay with:\n%s", f.Invariant, f.Err, f.Artifact)
}

// Run generates a program from cfg.Seed, executes it, and — if an
// invariant breaks — shrinks the program and returns the failure. A nil
// return means every invariant held through the whole program and the
// final quiescent check.
func Run(cfg Config) *Failure {
	cfg = cfg.withDefaults()
	start := time.Now() //lint:allow nodeterm Elapsed is report-only; generation and replay read no wall time
	ops := generate(cfg)
	f := runProgram(cfg, ops)
	if f == nil {
		return nil
	}
	return finish(cfg, shrink(cfg, ops, f.Invariant), f, start)
}

// Replay executes a fixed program — typically a shrunk artifact — under
// the default configuration and reports the failure it reproduces, nil
// if it passes. Seed only influences generated programs, but artifacts
// carry it so a failure can also be re-derived from scratch.
func Replay(seed int64, ops []Op) *Failure {
	return Config{Seed: seed}.Replay(ops)
}

// Replay executes a fixed program under an explicit configuration —
// needed when the failure depends on config (e.g. SkipRepairLayer).
func (c Config) Replay(ops []Op) *Failure {
	cfg := c.withDefaults()
	start := time.Now() //lint:allow nodeterm Elapsed is report-only; generation and replay read no wall time
	f := runProgram(cfg, ops)
	if f == nil {
		return nil
	}
	return finish(cfg, ops, f, start)
}

// finish re-runs the final program to pin the reported error to exactly
// what the artifact reproduces, then packages the failure.
func finish(cfg Config, ops []Op, orig *Failure, start time.Time) *Failure {
	f := runProgram(cfg, ops)
	if f == nil {
		// Shrinking is deterministic, so this indicates the program
		// itself is nondeterministic — worth reporting loudly as its own
		// kind of failure.
		f = &Failure{Invariant: "nondeterminism",
			Err: fmt.Errorf("program failed with %q during search but passes on replay", orig.Invariant)}
	}
	f.Seed = cfg.Seed
	f.Ops = ops
	f.Elapsed = time.Since(start) //lint:allow nodeterm Elapsed is report-only; generation and replay read no wall time
	f.Artifact = Program(cfg.Seed, ops)
	return f
}

// runProgram executes ops on a fresh cluster. Every program implicitly
// ends with heal (if needed) and a full quiescent checkpoint, so "the
// cluster converges to a correct state afterwards" is part of every
// property.
func runProgram(cfg Config, ops []Op) *Failure {
	h, err := newHarness(cfg)
	if err != nil {
		return &Failure{Invariant: "harness", Err: err}
	}
	defer h.close()
	for i, op := range ops {
		if f := h.exec(op); f != nil {
			f.Err = fmt.Errorf("op %d %s: %w", i, op, f.Err)
			return f
		}
	}
	if h.partitioned {
		if f := h.exec(Op{Kind: OpHeal}); f != nil {
			f.Err = fmt.Errorf("final heal: %w", f.Err)
			return f
		}
	}
	if f := h.exec(Op{Kind: OpCheck}); f != nil {
		f.Err = fmt.Errorf("final checkpoint: %w", f.Err)
		return f
	}
	return nil
}
