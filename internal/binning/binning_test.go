package binning

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestThresholdsValidate(t *testing.T) {
	cases := []struct {
		t  Thresholds
		ok bool
	}{
		{Thresholds{}, false},
		{Thresholds{20, 100}, true},
		{Thresholds{100, 20}, false},
		{Thresholds{20, 20}, false},
		{Thresholds{-5, 20}, false},
		{Thresholds{0, 20}, false},
		{Thresholds{math.NaN()}, false},
		{Thresholds{math.Inf(1)}, false},
		{make(Thresholds, MaxLevels), false}, // too many levels (and zeros)
	}
	for i, c := range cases {
		if err := c.t.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d (%v): Validate err=%v, want ok=%v", i, c.t, err, c.ok)
		}
	}
}

func TestLevelPaperPartition(t *testing.T) {
	// Paper §2.2: level 0 for [0,20], level 1 for [20,100], level 2 above.
	th := DefaultThresholds
	cases := []struct {
		lat  float64
		want int
	}{
		{0, 0}, {5, 0}, {19.99, 0},
		{20, 1}, {50, 1}, {99.99, 1},
		{100, 2}, {180, 2}, {10000, 2},
	}
	for _, c := range cases {
		if got := th.Level(c.lat); got != c.want {
			t.Errorf("Level(%v) = %d, want %d", c.lat, got, c.want)
		}
	}
	if th.Levels() != 3 {
		t.Errorf("Levels = %d, want 3", th.Levels())
	}
}

func TestOrderPaperTable1(t *testing.T) {
	// Table 1 of the paper: six sample nodes, 4 landmarks, order strings.
	cases := []struct {
		node string
		lats []float64
		want string
	}{
		{"A", []float64{25, 5, 30, 100}, "1012"},
		{"B", []float64{40, 18, 12, 200}, "1002"},
		{"C", []float64{100, 180, 5, 10}, "2200"},
		{"D", []float64{160, 220, 8, 20}, "2201"}, // paper prints 2200; 20ms is the boundary, see below
		{"E", []float64{45, 10, 100, 5}, "1020"},
		{"F", []float64{20, 140, 50, 40}, "1211"}, // paper prints 0211; 20ms is the boundary
	}
	for _, c := range cases {
		got, err := Order(c.lats, DefaultThresholds)
		if err != nil {
			t.Fatalf("node %s: %v", c.node, err)
		}
		if got != c.want {
			t.Errorf("node %s: Order = %q, want %q", c.node, got, c.want)
		}
	}
	// Note: the paper describes the ranges as [0,20] and [20,100] with both
	// endpoints inclusive, which is ambiguous at exactly 20 and 100. We use
	// half-open intervals [0,20), [20,100), [100,inf); only measurements
	// exactly on a boundary differ, and nodes C and D still share a ring
	// prefix "220" differing only in the boundary digit.
}

func TestOrderSameOrderSameRing(t *testing.T) {
	o1, _ := Order([]float64{100, 180, 5, 10}, DefaultThresholds)
	o2, _ := Order([]float64{160, 220, 8, 19}, DefaultThresholds)
	if o1 != o2 {
		t.Errorf("C and D should bin together: %q vs %q", o1, o2)
	}
}

func TestOrderErrors(t *testing.T) {
	if _, err := Order(nil, DefaultThresholds); err == nil {
		t.Error("empty latency vector accepted")
	}
	if _, err := Order([]float64{5}, Thresholds{}); err == nil {
		t.Error("invalid thresholds accepted")
	}
	if _, err := Order([]float64{-1}, DefaultThresholds); err == nil {
		t.Error("negative latency accepted")
	}
	if _, err := Order([]float64{math.NaN()}, DefaultThresholds); err == nil {
		t.Error("NaN latency accepted")
	}
}

func TestLevelDigitBase36(t *testing.T) {
	th := Thresholds{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12} // 13 levels
	got, err := Order([]float64{0.5, 11.5, 100}, th)
	if err != nil {
		t.Fatal(err)
	}
	if got != "0bc" {
		t.Errorf("Order = %q, want 0bc (levels 0, 11, 12)", got)
	}
}

func TestDropLandmark(t *testing.T) {
	if got := DropLandmark("1012", 1); got != "112" {
		t.Errorf("DropLandmark = %q, want 112", got)
	}
	if got := DropLandmark("1012", 0); got != "012" {
		t.Errorf("DropLandmark = %q", got)
	}
	if got := DropLandmark("1012", 3); got != "101" {
		t.Errorf("DropLandmark = %q", got)
	}
	if got := DropLandmark("1012", 4); got != "1012" {
		t.Errorf("out-of-range drop should be identity, got %q", got)
	}
	if got := DropLandmark("1012", -1); got != "1012" {
		t.Errorf("negative drop should be identity, got %q", got)
	}
}

func TestDropLandmarkPreservesBinning(t *testing.T) {
	// Nodes in the same bin stay together after any landmark failure.
	latsC := []float64{100, 180, 5, 10}
	latsD := []float64{160, 220, 8, 19}
	oC, _ := Order(latsC, DefaultThresholds)
	oD, _ := Order(latsD, DefaultThresholds)
	for i := 0; i < 4; i++ {
		if DropLandmark(oC, i) != DropLandmark(oD, i) {
			t.Errorf("dropping landmark %d split a bin", i)
		}
	}
}

func TestDefaultLadder(t *testing.T) {
	for depth := 2; depth <= 5; depth++ {
		l, err := DefaultLadder(depth)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if l.Depth() != depth {
			t.Errorf("depth %d: ladder depth %d", depth, l.Depth())
		}
		if err := l.Validate(); err != nil {
			t.Errorf("depth %d: default ladder invalid: %v", depth, err)
		}
	}
	if _, err := DefaultLadder(1); err == nil {
		t.Error("depth 1 accepted")
	}
	if _, err := DefaultLadder(6); err == nil {
		t.Error("depth 6 accepted")
	}
}

func TestLadderValidateNesting(t *testing.T) {
	good := Ladder{{20, 100}, {10, 20, 100}}
	if err := good.Validate(); err != nil {
		t.Errorf("nested ladder rejected: %v", err)
	}
	bad := Ladder{{20, 100}, {10, 30, 100}} // 20 missing from layer 3
	if err := bad.Validate(); err == nil {
		t.Error("non-nested ladder accepted")
	}
	if err := (Ladder{}).Validate(); err == nil {
		t.Error("empty ladder accepted")
	}
}

func TestRingNamesRefinement(t *testing.T) {
	l, err := DefaultLadder(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	// Property: if two latency vectors share a layer-(i+1) name, they share
	// the layer-i name (rings refine).
	for trial := 0; trial < 500; trial++ {
		latsA := randLats(rng, 4)
		latsB := randLats(rng, 4)
		na, err := RingNames(latsA, l)
		if err != nil {
			t.Fatal(err)
		}
		nb, err := RingNames(latsB, l)
		if err != nil {
			t.Fatal(err)
		}
		for i := len(l) - 1; i > 0; i-- {
			if na[i] == nb[i] && na[i-1] != nb[i-1] {
				t.Fatalf("refinement violated: same layer-%d ring %q but different layer-%d rings %q vs %q",
					i+2, na[i], i+1, na[i-1], nb[i-1])
			}
		}
	}
}

func randLats(rng *rand.Rand, k int) []float64 {
	lats := make([]float64, k)
	for i := range lats {
		lats[i] = rng.Float64() * 300
	}
	return lats
}

func TestRingNamesErrors(t *testing.T) {
	if _, err := RingNames([]float64{5}, Ladder{}); err == nil {
		t.Error("empty ladder accepted")
	}
	l, _ := DefaultLadder(2)
	if _, err := RingNames(nil, l); err == nil {
		t.Error("empty latencies accepted")
	}
}

func TestQuickOrderDeterministicAndLength(t *testing.T) {
	f := func(a, b, c uint16) bool {
		lats := []float64{float64(a) / 10, float64(b) / 10, float64(c) / 10}
		o1, err1 := Order(lats, DefaultThresholds)
		o2, err2 := Order(lats, DefaultThresholds)
		if err1 != nil || err2 != nil {
			return false
		}
		return o1 == o2 && len(o1) == 3 && !strings.ContainsAny(o1, "3456789")
	}
	cfg := &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickCloseNodesBinTogether(t *testing.T) {
	// If every coordinate differs by less than the gap to the nearest
	// boundary, orders are equal. We test the contrapositive-friendly
	// sufficient condition: same level per coordinate => same order.
	f := func(a, b, c uint16) bool {
		lats := []float64{float64(a) / 100, float64(b) / 100, float64(c) / 100}
		shifted := make([]float64, 3)
		for i, v := range lats {
			lv := DefaultThresholds.Level(v)
			// Shift within the level band.
			switch lv {
			case 0:
				shifted[i] = v / 2
			case 1:
				shifted[i] = 20 + (v-20)/2
			default:
				shifted[i] = v + 50
			}
		}
		o1, _ := Order(lats, DefaultThresholds)
		o2, _ := Order(shifted, DefaultThresholds)
		return o1 == o2
	}
	cfg := &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestAdaptiveThresholds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = rng.Float64() * 300
	}
	th, err := AdaptiveThresholds(samples, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(th) != 2 {
		t.Fatalf("boundaries = %d, want 2", len(th))
	}
	// Uniform samples on [0,300): tertile boundaries near 100 and 200.
	if th[0] < 70 || th[0] > 130 || th[1] < 170 || th[1] > 230 {
		t.Errorf("boundaries %v far from uniform tertiles", th)
	}
	// Levels get roughly equal mass.
	counts := make([]int, 3)
	for _, s := range samples {
		counts[th.Level(s)]++
	}
	for lv, c := range counts {
		if c < 250 || c > 420 {
			t.Errorf("level %d holds %d of 1000 samples", lv, c)
		}
	}
}

func TestAdaptiveThresholdsErrors(t *testing.T) {
	if _, err := AdaptiveThresholds([]float64{1, 2, 3}, 1); err == nil {
		t.Error("levels < 2 accepted")
	}
	if _, err := AdaptiveThresholds([]float64{1, 2, 3}, MaxLevels+1); err == nil {
		t.Error("too many levels accepted")
	}
	if _, err := AdaptiveThresholds([]float64{1}, 3); err == nil {
		t.Error("too few samples accepted")
	}
	if _, err := AdaptiveThresholds([]float64{-1, 2, 3}, 2); err == nil {
		t.Error("negative sample accepted")
	}
	if _, err := AdaptiveThresholds([]float64{math.NaN(), 2, 3}, 2); err == nil {
		t.Error("NaN sample accepted")
	}
}

func TestAdaptiveThresholdsDegenerateMass(t *testing.T) {
	// All-identical samples: boundaries must still ascend strictly.
	samples := []float64{50, 50, 50, 50, 50, 50}
	th, err := AdaptiveThresholds(samples, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Validate(); err != nil {
		t.Errorf("degenerate thresholds invalid: %v (%v)", err, th)
	}
}

func TestAdaptiveLadder(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	samples := make([]float64, 2000)
	for i := range samples {
		samples[i] = rng.Float64() * 500
	}
	for depth := 2; depth <= 5; depth++ {
		l, err := AdaptiveLadder(samples, depth)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if l.Depth() != depth {
			t.Errorf("depth %d: ladder depth %d", depth, l.Depth())
		}
		if err := l.Validate(); err != nil {
			t.Errorf("depth %d: %v", depth, err)
		}
		if got := l[0].Levels(); got != 3 {
			t.Errorf("depth %d: layer-2 levels = %d, want 3", depth, got)
		}
		if got := l[depth-2].Levels(); got != 3<<(depth-2) {
			t.Errorf("depth %d: deepest levels = %d", depth, got)
		}
	}
	if _, err := AdaptiveLadder(samples, 1); err == nil {
		t.Error("depth 1 accepted")
	}
	if _, err := AdaptiveLadder(samples, 6); err == nil {
		t.Error("depth 6 accepted")
	}
}

func TestAdaptiveLadderDuplicateMassStillNested(t *testing.T) {
	// Heavy duplicate mass forces boundary nudging; nesting must survive.
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = float64((i % 3) * 50) // only values 0, 50, 100
	}
	l, err := AdaptiveLadder(samples, 4)
	if err != nil {
		t.Fatalf("AdaptiveLadder: %v", err)
	}
	if err := l.Validate(); err != nil {
		t.Errorf("nesting broken under duplicate mass: %v", err)
	}
}
