package binning

import (
	"strings"
	"testing"
)

// TestOrderEdgeCases pins down the landmark-order contract at its corner
// inputs: ties exactly on a threshold, a single landmark, duplicate
// latency vectors, and invalid measurements.
func TestOrderEdgeCases(t *testing.T) {
	paper := DefaultThresholds // {20, 100}
	cases := []struct {
		name    string
		lats    []float64
		th      Thresholds
		want    string
		wantErr bool
	}{
		{name: "paper example", lats: []float64{25, 5, 31, 51}, th: paper, want: "1011"},
		// A latency exactly on a boundary belongs to the level ABOVE it:
		// level i covers [t[i-1], t[i]).
		{name: "tie on first threshold", lats: []float64{20}, th: paper, want: "1"},
		{name: "tie on last threshold", lats: []float64{100}, th: paper, want: "2"},
		{name: "just under first threshold", lats: []float64{19.999999}, th: paper, want: "0"},
		{name: "all ties", lats: []float64{20, 100, 20, 100}, th: paper, want: "1212"},
		{name: "single landmark low", lats: []float64{0}, th: paper, want: "0"},
		{name: "single landmark high", lats: []float64{1e9}, th: paper, want: "2"},
		{name: "zero latency", lats: []float64{0, 0, 0}, th: paper, want: "000"},
		{name: "many levels use base36 digits", lats: []float64{1500}, th: Thresholds{
			1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
		}, want: "f"},
		{name: "no landmarks", lats: nil, th: paper, wantErr: true},
		{name: "negative latency", lats: []float64{-1}, th: paper, wantErr: true},
		{name: "empty thresholds", lats: []float64{5}, th: Thresholds{}, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Order(tc.lats, tc.th)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("Order(%v) = %q, want error", tc.lats, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("Order(%v): %v", tc.lats, err)
			}
			if got != tc.want {
				t.Fatalf("Order(%v) = %q, want %q", tc.lats, got, tc.want)
			}
		})
	}
}

// TestDuplicateLatencyVectorsShareRings: nodes with identical measured
// coordinates must land in the same ring at every layer — binning may
// never split topological duplicates.
func TestDuplicateLatencyVectorsShareRings(t *testing.T) {
	ladder, err := DefaultLadder(4)
	if err != nil {
		t.Fatal(err)
	}
	lats := []float64{33.3, 7, 150, 99.9999}
	a, err := RingNames(lats, ladder)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RingNames(append([]float64(nil), lats...), ladder)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(a, "/") != strings.Join(b, "/") {
		t.Fatalf("duplicate latency vectors got different rings: %v vs %v", a, b)
	}
}

// TestEmptyBinFallback: when most of the sample mass sits on a single
// value, naive quantiles collide and most bins would be empty; the
// fallback must still return a valid (strictly ascending) threshold set
// under which every node bins somewhere, never nowhere.
func TestEmptyBinFallback(t *testing.T) {
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = 42 // every node equidistant: all quantiles tie
	}
	th, err := AdaptiveThresholds(samples, 4)
	if err != nil {
		t.Fatalf("degenerate mass rejected: %v", err)
	}
	if err := th.Validate(); err != nil {
		t.Fatalf("fallback thresholds invalid: %v", err)
	}
	// All nodes still bin somewhere (the same level), never nowhere.
	if _, err := Order([]float64{42}, th); err != nil {
		t.Fatalf("node does not bin under fallback thresholds: %v", err)
	}
}

func TestCheckRefinement(t *testing.T) {
	ok := [][]string{
		{"a", "ax"}, {"a", "ay"}, {"b", "bz"}, {"a", "ax"},
	}
	if err := CheckRefinement(ok); err != nil {
		t.Fatalf("valid refinement rejected: %v", err)
	}
	bad := [][]string{
		{"a", "shared"}, {"b", "shared"}, // one deep ring across two shallow rings
	}
	if err := CheckRefinement(bad); err == nil {
		t.Fatal("split refinement not detected")
	}
	ragged := [][]string{{"a", "ax"}, {"a"}}
	if err := CheckRefinement(ragged); err == nil {
		t.Fatal("ragged name lists not detected")
	}
	if err := CheckRefinement(nil); err != nil {
		t.Fatalf("empty population rejected: %v", err)
	}
}

// TestRingNamesRefineUnderDefaultLadder: the property CheckRefinement
// asserts, exercised through the real ladder on a latency sweep.
func TestRingNamesRefineUnderDefaultLadder(t *testing.T) {
	for depth := 2; depth <= 5; depth++ {
		ladder, err := DefaultLadder(depth)
		if err != nil {
			t.Fatal(err)
		}
		var names [][]string
		for lat1 := 0.0; lat1 < 500; lat1 += 7.3 {
			for _, lat2 := range []float64{0, 5, 10, 20, 35, 50, 100, 200, 400, 800} {
				ns, err := RingNames([]float64{lat1, lat2}, ladder)
				if err != nil {
					t.Fatal(err)
				}
				names = append(names, ns)
			}
		}
		if err := CheckRefinement(names); err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
	}
}
