package binning

import "fmt"

// CheckRefinement verifies the ring-refinement invariant over a node
// population: names[i][l] is node i's layer-(l+2) ring name (as returned
// by RingNames), and any two nodes sharing a ring at a deeper layer must
// share their ring at every shallower layer. This is the structural
// guarantee the nested threshold ladder exists to provide — without it a
// lookup climbing out of a local ring could land in a ring that does not
// contain the nodes it just left behind.
func CheckRefinement(names [][]string) error {
	if len(names) == 0 {
		return nil
	}
	layers := len(names[0])
	for i, ns := range names {
		if len(ns) != layers {
			return fmt.Errorf("binning: node %d has %d ring names, node 0 has %d", i, len(ns), layers)
		}
	}
	for l := 1; l < layers; l++ {
		parent := make(map[string]string) // deeper ring name -> shallower ring name
		first := make(map[string]int)     // deeper ring name -> first node seen
		for i, ns := range names {
			deep, shallow := ns[l], ns[l-1]
			if prev, ok := parent[deep]; !ok {
				parent[deep] = shallow
				first[deep] = i
			} else if prev != shallow {
				return fmt.Errorf(
					"binning: layer-%d ring %q spans layer-%d rings %q (node %d) and %q (node %d)",
					l+2, deep, l+1, prev, first[deep], shallow, i)
			}
		}
	}
	return nil
}
