// Package binning implements the distributed binning scheme of Ratnasamy
// and Shenker used by HIERAS for P2P ring creation (paper §2.2): each node
// measures its latency to a well-known set of landmark nodes, quantises
// each measurement into a small number of levels, and the resulting string
// of levels — the landmark order — names the bin (the lower-layer P2P ring)
// the node belongs to. Nodes with the same order are topologically close.
//
// The paper's two-layer system uses one threshold set, {20, 100}: level 0
// for latencies in [0,20), level 1 for [20,100) and level 2 for >= 100.
// For hierarchies deeper than two layers this package generalises the
// scheme with a Ladder of nested threshold sets: layer l+1 uses a superset
// of layer l's boundaries, so the layer-(l+1) rings always refine the
// layer-l rings.
package binning

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// MaxLevels bounds how many quantisation levels a threshold set may induce
// (one base-36 digit per landmark in the order string).
const MaxLevels = 36

// Thresholds is an ascending list of latency boundaries in milliseconds.
// k boundaries induce k+1 levels: level i covers [t[i-1], t[i]).
type Thresholds []float64

// DefaultThresholds is the paper's level partition: [0,20), [20,100),
// [100, inf).
var DefaultThresholds = Thresholds{20, 100}

// Validate reports an error if t is empty, unsorted, non-positive, or
// induces more than MaxLevels levels.
func (t Thresholds) Validate() error {
	if len(t) == 0 {
		return fmt.Errorf("binning: empty threshold set")
	}
	if len(t)+1 > MaxLevels {
		return fmt.Errorf("binning: %d thresholds induce more than %d levels", len(t), MaxLevels)
	}
	prev := 0.0
	for i, b := range t {
		if math.IsNaN(b) || math.IsInf(b, 0) || b <= prev {
			return fmt.Errorf("binning: thresholds must be positive and strictly ascending (index %d: %v)", i, b)
		}
		prev = b
	}
	return nil
}

// Levels returns the number of quantisation levels t induces.
func (t Thresholds) Levels() int { return len(t) + 1 }

// Level quantises a latency: the number of boundaries <= lat.
func (t Thresholds) Level(lat float64) int {
	// Threshold sets are tiny (2-12 entries); linear scan beats binary
	// search here and is obviously correct.
	for i, b := range t {
		if lat < b {
			return i
		}
	}
	return len(t)
}

// levelDigit renders a level as one base-36 character.
func levelDigit(l int) byte {
	if l < 10 {
		return byte('0' + l)
	}
	return byte('a' + l - 10)
}

// Order computes the landmark order string for a node's measured latencies
// to each landmark, one digit per landmark. This is the ring name of the
// node's bin (e.g. "1012" in the paper's Table 1).
func Order(lats []float64, t Thresholds) (string, error) {
	if err := t.Validate(); err != nil {
		return "", err
	}
	if len(lats) == 0 {
		return "", fmt.Errorf("binning: no landmark latencies")
	}
	var sb strings.Builder
	sb.Grow(len(lats))
	for i, lat := range lats {
		if math.IsNaN(lat) || lat < 0 {
			return "", fmt.Errorf("binning: invalid latency %v to landmark %d", lat, i)
		}
		sb.WriteByte(levelDigit(t.Level(lat)))
	}
	return sb.String(), nil
}

// DropLandmark removes the digit for a failed landmark from an order
// string, implementing the paper's landmark-failure handling (§2.3):
// previously binned nodes only drop the failed landmark from their order
// information. It returns the order unchanged if i is out of range.
func DropLandmark(order string, i int) string {
	if i < 0 || i >= len(order) {
		return order
	}
	return order[:i] + order[i+1:]
}

// AdaptiveThresholds derives a threshold set from measured latency samples
// instead of the paper's fixed {20, 100}: the boundaries sit at evenly
// spaced quantiles of the sample distribution, so each level holds roughly
// the same probability mass regardless of the underlay's latency scale.
// This makes binning topology-agnostic — useful on underlays whose
// latencies do not resemble the GT-ITM constants the fixed thresholds were
// chosen for. levels must be in [2, MaxLevels]; samples must be
// non-negative latencies.
func AdaptiveThresholds(samples []float64, levels int) (Thresholds, error) {
	if levels < 2 || levels > MaxLevels {
		return nil, fmt.Errorf("binning: adaptive levels must be in [2,%d], got %d", MaxLevels, levels)
	}
	if len(samples) < levels {
		return nil, fmt.Errorf("binning: need at least %d samples for %d levels, got %d",
			levels, levels, len(samples))
	}
	sorted := make([]float64, 0, len(samples))
	for _, s := range samples {
		if math.IsNaN(s) || s < 0 {
			return nil, fmt.Errorf("binning: invalid latency sample %v", s)
		}
		sorted = append(sorted, s)
	}
	sort.Float64s(sorted)
	t := make(Thresholds, 0, levels-1)
	prev := 0.0
	for i := 1; i < levels; i++ {
		pos := float64(i) / float64(levels) * float64(len(sorted)-1)
		b := sorted[int(pos)]
		if b <= prev {
			// Degenerate sample mass; nudge to keep strict ascent.
			b = prev + math.Max(prev*1e-6, 1e-9)
		}
		t = append(t, b)
		prev = b
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// AdaptiveLadder builds a nested threshold ladder from latency samples:
// layer 2 uses 3 levels, and each deeper layer doubles the level count.
// Because every layer's quantile grid contains the previous layer's
// (i/3 ⊂ i/6 ⊂ i/12 …, all cut from one sorted sample), the nesting
// property holds and deeper rings refine shallower ones.
func AdaptiveLadder(samples []float64, depth int) (Ladder, error) {
	if depth < 2 || depth > 5 {
		return nil, fmt.Errorf("binning: adaptive ladder depth must be in [2,5], got %d", depth)
	}
	// Build the deepest layer once, then derive shallower layers by taking
	// every second boundary — nesting is then exact by construction, even
	// when duplicate sample mass forces boundary nudges.
	deepestLevels := 3 << (depth - 2)
	deepest, err := AdaptiveThresholds(samples, deepestLevels)
	if err != nil {
		return nil, err
	}
	ladder := make(Ladder, depth-1)
	ladder[depth-2] = deepest
	for l := depth - 3; l >= 0; l-- {
		finer := ladder[l+1]
		coarser := make(Thresholds, 0, (len(finer)+1)/2)
		for i := 1; i < len(finer); i += 2 {
			coarser = append(coarser, finer[i])
		}
		ladder[l] = coarser
	}
	if err := ladder.Validate(); err != nil {
		return nil, fmt.Errorf("binning: adaptive ladder not nested: %w", err)
	}
	return ladder, nil
}

// Ladder holds one threshold set per lower layer: Ladder[0] names layer-2
// rings, Ladder[1] layer-3 rings, and so on. (Layer 1 is the global ring
// and needs no binning.)
type Ladder []Thresholds

// DefaultLadder returns the nested threshold ladder for a HIERAS system of
// the given hierarchy depth (2..5). Depth 2 reproduces the paper exactly.
func DefaultLadder(depth int) (Ladder, error) {
	full := Ladder{
		{20, 100},
		{10, 20, 50, 100, 200},
		{5, 10, 20, 35, 50, 100, 200, 400},
		{2.5, 5, 10, 20, 35, 50, 75, 100, 150, 200, 400, 800},
	}
	if depth < 2 || depth > len(full)+1 {
		return nil, fmt.Errorf("binning: hierarchy depth must be in [2,%d], got %d", len(full)+1, depth)
	}
	return full[:depth-1], nil
}

// Validate checks every threshold set and the nesting property: each
// layer's boundaries must be a superset of the previous layer's, which
// guarantees rings refine as the hierarchy deepens.
func (l Ladder) Validate() error {
	if len(l) == 0 {
		return fmt.Errorf("binning: empty ladder")
	}
	for i, t := range l {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("layer %d: %w", i+2, err)
		}
		if i > 0 && !isSubset(l[i-1], t) {
			return fmt.Errorf("binning: layer %d thresholds do not refine layer %d", i+2, i+1)
		}
	}
	return nil
}

func isSubset(sub, super Thresholds) bool {
	for _, b := range sub {
		j := sort.SearchFloat64s(super, b)
		if j >= len(super) || super[j] != b {
			return false
		}
	}
	return true
}

// Depth returns the hierarchy depth the ladder describes (layers including
// the global ring).
func (l Ladder) Depth() int { return len(l) + 1 }

// RingNames computes a node's ring name for every lower layer, given its
// measured latencies to the landmarks. RingNames(lats)[i] names the node's
// layer-(i+2) ring.
func RingNames(lats []float64, l Ladder) ([]string, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	out := make([]string, len(l))
	for i, t := range l {
		name, err := Order(lats, t)
		if err != nil {
			return nil, err
		}
		out[i] = name
	}
	return out, nil
}
