package metrics

// KnownMetricNames is the checked registry of every metric name the
// repo may register, one per line. The metrichygiene analyzer reads
// this constant (cross-package, through the type checker) and flags any
// New* registration whose name is absent — so a typo like
// "lookup_erors_total" fails lint instead of silently splitting a time
// series, and every name a dashboard may reference is discoverable in
// one place. Adding a metric means adding a line here.
const KnownMetricNames = `
accelerated_routes_total
antientropy_bytes_total
antientropy_rounds_total
cache_hits_total
cache_misses_total
churn_fails_total
churn_join_retries_total
churn_joins_total
churn_leaves_total
churn_lookup_errors_total
churn_lookups_total
churn_wrong_owner_total
evictions_total
failover_climbs_total
failure_layer_aborts_total
failure_succ_skips_total
faultnet_injected_total
hops_total
kv_expired_total
lookup_errors_total
lookups_total
onehop_hits_total
onehop_stale_total
pool_block_seconds
pool_queue_depth
pool_runs_total
pool_worker_blocks_total
quorum_failures_total
quorum_read_seconds
quorum_write_seconds
read_repairs_total
replica_dropped_total
replica_handoff_items_total
replica_lag
rereplication_bytes_total
ring_climbs_total
ring_repairs_total
route_gossip_bytes_total
routes_total
rpc_bytes_in_total
rpc_bytes_out_total
rpc_errors_total
rpc_latency_seconds
rpc_requests_total
rpc_server_errors_total
rpc_server_requests_total
walk_restarts_total
walk_retries_total
wire_breaker_closes_total
wire_breaker_fail_fast_total
wire_breaker_open
wire_breaker_opens_total
wire_coalesced_total
wire_retries_total
`
