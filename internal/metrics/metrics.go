// Package metrics is a small, zero-dependency, concurrency-safe metrics
// subsystem for the live HIERAS node and the simulators: a Registry of
// named Counter, Gauge and fixed-bucket Histogram metrics with optional
// labels, exposed in the Prometheus text format. Update paths are
// lock-free (sync/atomic); labelled metrics hand out pre-curried children
// so hot paths never touch a map.
//
// The paper's headline claims are distributional (lower-layer hop share,
// per-layer link latency), so the registry is built around exactly the
// shapes those claims need: per-label counters (hops_total{layer="2"}),
// latency histograms, and callback metrics that surface counters other
// subsystems already maintain (cache hits/misses).
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0; negative deltas belong on a Gauge).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (atomically, via compare-and-swap).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations in fixed buckets defined by ascending
// upper bounds; observations above the last bound land in an implicit
// +Inf overflow bucket. Observe is lock-free.
type Histogram struct {
	uppers  []float64
	counts  []atomic.Uint64 // len(uppers)+1; last = overflow
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func newHistogram(buckets []float64) (*Histogram, error) {
	if len(buckets) == 0 {
		return nil, fmt.Errorf("metrics: histogram needs at least one bucket")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			return nil, fmt.Errorf("metrics: histogram buckets must ascend, got %v", buckets)
		}
	}
	up := make([]float64, len(buckets))
	copy(up, buckets)
	return &Histogram{uppers: up, counts: make([]atomic.Uint64, len(up)+1)}, nil
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.uppers, v) // first upper bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// HistogramSnapshot is a consistent-enough point-in-time copy of a
// histogram (buckets are read one by one; concurrent observers may land
// between reads, so Count is recomputed from the bucket copies).
type HistogramSnapshot struct {
	// Uppers are the bucket upper bounds; Counts[i] holds observations in
	// (Uppers[i-1], Uppers[i]]. Counts has one extra overflow entry for
	// observations above the last bound.
	Uppers []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Uppers: append([]float64(nil), h.uppers...),
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// LinearBuckets returns count upper bounds start, start+width, ...
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns count upper bounds start, start*factor, ...
func ExponentialBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefLatencyBuckets covers local RPCs (100µs) through WAN timeouts (10s).
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Label is one name="value" pair attached to a metric child.
type Label struct {
	Name, Value string
}

// child is one labelled instance within a family.
type child struct {
	labels string // rendered `k="v",k2="v2"` (no braces), "" when unlabelled
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// family groups all children sharing one metric name.
type family struct {
	name, help, typ string
	labelNames      []string  // for vecs; nil for plain metrics
	buckets         []float64 // for histogram vecs

	mu       sync.RWMutex
	children map[string]*child
}

func (f *family) sortedChildren() []*child {
	f.mu.RLock()
	out := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		out = append(out, c)
	}
	f.mu.RUnlock()
	sort.Slice(out, func(a, b int) bool { return out[a].labels < out[b].labels })
	return out
}

// Registry holds named metric families. All registration methods panic on
// invalid or duplicate names: registration happens at construction time,
// so a clash is a programming error, not a runtime condition.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func (r *Registry) register(name, help, typ string, labelNames []string, buckets []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labelNames {
		if !validName(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("metrics: metric %q registered twice", name))
	}
	f := &family{
		name: name, help: help, typ: typ,
		labelNames: labelNames, buckets: buckets,
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func renderLabels(names, values []string) string {
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(values[i]))
	}
	return b.String()
}

// NewCounter registers and returns an unlabelled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.register(name, help, "counter", nil, nil)
	c := &Counter{}
	f.children[""] = &child{c: c}
	return c
}

// NewGauge registers and returns an unlabelled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge", nil, nil)
	g := &Gauge{}
	f.children[""] = &child{g: g}
	return g
}

// NewHistogram registers and returns an unlabelled histogram with the
// given ascending bucket upper bounds.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	h, err := newHistogram(buckets)
	if err != nil {
		panic(err.Error())
	}
	f := r.register(name, help, "histogram", nil, nil)
	f.children[""] = &child{h: h}
	return h
}

// NewCounterFunc registers a counter whose value is produced by fn at
// exposition time — the bridge for subsystems that already keep their own
// counters (e.g. the location cache's hit/miss totals). fn must be
// monotonic and safe for concurrent use. Labels distinguish several
// callback children under one name; call with no labels for a plain
// single-sample counter.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.newFunc(name, help, "counter", fn, labels)
}

// NewGaugeFunc is NewCounterFunc for gauge-typed callbacks.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.newFunc(name, help, "gauge", fn, labels)
}

func (r *Registry) newFunc(name, help, typ string, fn func() float64, labels []Label) {
	names := make([]string, len(labels))
	values := make([]string, len(labels))
	for i, l := range labels {
		names[i], values[i] = l.Name, l.Value
	}
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		f = r.register(name, help, typ, names, nil)
	} else if f.typ != typ || len(f.labelNames) != len(names) {
		panic(fmt.Sprintf("metrics: callback metric %q re-registered with a different shape", name))
	}
	key := renderLabels(names, values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.children[key]; dup {
		panic(fmt.Sprintf("metrics: metric %q{%s} registered twice", name, key))
	}
	f.children[key] = &child{labels: key, fn: fn}
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// NewCounterVec registers a labelled counter family.
func (r *Registry) NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	if len(labelNames) == 0 {
		panic(fmt.Sprintf("metrics: counter vec %q needs at least one label", name))
	}
	return &CounterVec{f: r.register(name, help, "counter", labelNames, nil)}
}

// With returns the pre-curried child for the given label values, creating
// it on first use. Callers on hot paths should call With once and keep
// the child.
func (v *CounterVec) With(values ...string) *Counter {
	c := v.f.lookup(values)
	if c.c == nil {
		panic(fmt.Sprintf("metrics: %q is not a counter", v.f.name))
	}
	return c.c
}

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// NewGaugeVec registers a labelled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labelNames ...string) *GaugeVec {
	if len(labelNames) == 0 {
		panic(fmt.Sprintf("metrics: gauge vec %q needs at least one label", name))
	}
	return &GaugeVec{f: r.register(name, help, "gauge", labelNames, nil)}
}

// With returns the pre-curried child for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	c := v.f.lookup(values)
	if c.g == nil {
		panic(fmt.Sprintf("metrics: %q is not a gauge", v.f.name))
	}
	return c.g
}

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct{ f *family }

// NewHistogramVec registers a labelled histogram family; every child
// shares the same buckets.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if len(labelNames) == 0 {
		panic(fmt.Sprintf("metrics: histogram vec %q needs at least one label", name))
	}
	if _, err := newHistogram(buckets); err != nil {
		panic(err.Error())
	}
	f := r.register(name, help, "histogram", labelNames, buckets)
	return &HistogramVec{f: f}
}

// With returns the pre-curried child for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	c := v.f.lookup(values)
	if c.h == nil {
		panic(fmt.Sprintf("metrics: %q is not a histogram", v.f.name))
	}
	return c.h
}

// lookup finds or creates the child for the given label values.
func (f *family) lookup(values []string) *child {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("metrics: %q wants %d label values, got %d",
			f.name, len(f.labelNames), len(values)))
	}
	key := renderLabels(f.labelNames, values)
	f.mu.RLock()
	c := f.children[key]
	f.mu.RUnlock()
	if c != nil {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c = f.children[key]; c != nil {
		return c
	}
	c = &child{labels: key}
	switch f.typ {
	case "counter":
		c.c = &Counter{}
	case "gauge":
		c.g = &Gauge{}
	case "histogram":
		h, err := newHistogram(f.buckets)
		if err != nil {
			panic(err.Error())
		}
		c.h = h
	}
	f.children[key] = c
	return c
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteTo renders every metric in the Prometheus text exposition format,
// families and children in deterministic (sorted) order.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(a, b int) bool { return fams[a].name < fams[b].name })

	cw := &countWriter{w: w}
	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(cw, "# HELP %s %s\n", f.name, f.help); err != nil {
				return cw.n, err
			}
		}
		if _, err := fmt.Fprintf(cw, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return cw.n, err
		}
		for _, c := range f.sortedChildren() {
			if err := writeChild(cw, f, c); err != nil {
				return cw.n, err
			}
		}
	}
	return cw.n, nil
}

func writeChild(w io.Writer, f *family, c *child) error {
	braced := ""
	if c.labels != "" {
		braced = "{" + c.labels + "}"
	}
	switch {
	case c.h != nil:
		s := c.h.Snapshot()
		var cum uint64
		for i, cnt := range s.Counts {
			cum += cnt
			upper := math.Inf(1)
			if i < len(s.Uppers) {
				upper = s.Uppers[i]
			}
			le := fmt.Sprintf(`le="%s"`, formatFloat(upper))
			sep := le
			if c.labels != "" {
				sep = c.labels + "," + le
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", f.name, sep, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, braced, formatFloat(s.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, braced, s.Count)
		return err
	case c.c != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, braced, c.c.Value())
		return err
	case c.g != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, braced, formatFloat(c.g.Value()))
		return err
	case c.fn != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, braced, formatFloat(c.fn()))
		return err
	}
	return nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Handler returns an http.Handler serving the registry in the Prometheus
// text format (mount it at /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WriteTo(w)
	})
}
