package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("requests_total", "Total requests.")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	g := r.NewGauge("temperature", "Current temperature.")
	g.Set(1.5)
	g.Add(2)
	g.Dec()
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge = %v, want 2.5", got)
	}
}

func TestVecCurrying(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("rpc_requests_total", "RPCs by type.", "type")
	ping := v.With("ping")
	ping.Inc()
	ping.Inc()
	v.With("get").Inc()
	if v.With("ping") != ping {
		t.Error("With returned a different child for the same labels")
	}
	if got := v.With("ping").Value(); got != 2 {
		t.Errorf("ping = %d, want 2", got)
	}
	if got := v.With("get").Value(); got != 1 {
		t.Errorf("get = %d, want 1", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat", "Latency.", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 1, 1, 1} // (..1], (1..2], (2..4], overflow
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if s.Sum != 106 {
		t.Errorf("sum = %v, want 106", s.Sum)
	}
}

func TestExposition(t *testing.T) {
	r := NewRegistry()
	r.NewCounterVec("rpc_requests_total", "RPCs by type.", "type").With("find_closest").Add(7)
	r.NewGauge("up", "Liveness.").Set(1)
	r.NewHistogram("rpc_latency_seconds", "Call latency.", []float64{0.1, 1}).Observe(0.05)
	r.NewCounterFunc("cache_hits_total", "Cache hits.", func() float64 { return 3 })

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE rpc_requests_total counter",
		`rpc_requests_total{type="find_closest"} 7`,
		"# TYPE up gauge",
		"up 1",
		`rpc_latency_seconds_bucket{le="0.1"} 1`,
		`rpc_latency_seconds_bucket{le="+Inf"} 1`,
		"rpc_latency_seconds_sum 0.05",
		"rpc_latency_seconds_count 1",
		"cache_hits_total 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Families must appear in sorted order.
	if strings.Index(out, "cache_hits_total") > strings.Index(out, "up ") {
		t.Error("families not sorted by name")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewCounterVec("odd", "", "k").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `odd{k="a\"b\\c\nd"} 1`) {
		t.Errorf("bad escaping:\n%s", b.String())
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("hits_total", "").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	buf := make([]byte, 1<<12)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "hits_total 1") {
		t.Errorf("handler output:\n%s", buf[:n])
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.NewCounter("x_total", "")
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(1, 2, 3)
	if lin[0] != 1 || lin[1] != 3 || lin[2] != 5 {
		t.Errorf("linear: %v", lin)
	}
	exp := ExponentialBuckets(1, 10, 3)
	if exp[0] != 1 || exp[1] != 10 || exp[2] != 100 {
		t.Errorf("exponential: %v", exp)
	}
}

// TestConcurrentUpdates hammers one counter, one gauge and one histogram
// from 16 goroutines and asserts exact totals — run under -race this is
// the concurrency-safety regression test for the atomic fast paths.
func TestConcurrentUpdates(t *testing.T) {
	const goroutines = 16
	const perG = 4998 // divisible by 3 so the bucket math below is exact
	r := NewRegistry()
	c := r.NewCounterVec("c_total", "", "who")
	g := r.NewGauge("g", "")
	h := r.NewHistogram("h", "", []float64{0.5, 1.5, 2.5})

	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := c.With("worker") // all goroutines share one child
			for i := 0; i < perG; i++ {
				mine.Inc()
				g.Add(1)
				h.Observe(float64(i % 3)) // 0, 1, 2 round-robin
			}
		}(w)
	}
	wg.Wait()

	const total = goroutines * perG
	if got := c.With("worker").Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := g.Value(); got != float64(total) {
		t.Errorf("gauge = %v, want %d", got, total)
	}
	s := h.Snapshot()
	if s.Count != total {
		t.Errorf("histogram count = %d, want %d", s.Count, total)
	}
	third := uint64(total / 3)
	for i, w := range []uint64{third, third, third, 0} {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	// Values 0,1,2 in equal proportion have mean 1, so sum == count.
	if want := float64(total); math.Abs(s.Sum-want) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", s.Sum, want)
	}
}
