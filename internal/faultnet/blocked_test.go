package faultnet

import "testing"

func TestBlocked(t *testing.T) {
	nw := New(1)
	nw.Bind("127.0.0.1:1001", "n1")
	nw.Bind("127.0.0.1:1002", "n2")

	if nw.Blocked("n1", "n2") {
		t.Fatal("blocked with no partition installed")
	}
	nw.Partition([]string{"n1", "n3"}, []string{"n2"})
	if !nw.Blocked("n1", "n2") {
		t.Fatal("cross-group pair not blocked")
	}
	if nw.Blocked("n1", "n3") {
		t.Fatal("same-group pair blocked")
	}
	if nw.Blocked("n1", "n1") {
		t.Fatal("loopback blocked")
	}
	// Bound addresses resolve to their logical names.
	if !nw.Blocked("127.0.0.1:1001", "127.0.0.1:1002") {
		t.Fatal("bound addresses not resolved")
	}
	// Peers outside every group are unaffected, matching decide().
	if nw.Blocked("n1", "stranger") || nw.Blocked("stranger", "n2") {
		t.Fatal("ungrouped peer blocked")
	}
	nw.Heal()
	if nw.Blocked("n1", "n2") {
		t.Fatal("still blocked after heal")
	}
	// Blocked is a pure query: it must not disturb the operation log, or
	// replaying a checked run would diverge from the original.
	if got := len(nw.Log()); got != 2 {
		t.Fatalf("log has %d ops, want 2 (partition + heal)", got)
	}
}
