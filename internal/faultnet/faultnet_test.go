package faultnet

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/wire"
)

// okCaller answers every call successfully and counts them.
type okCaller struct {
	mu    sync.Mutex
	calls int
}

func (c *okCaller) Call(ctx context.Context, addr string, req wire.Request) (wire.Response, error) {
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()
	return wire.Response{OK: true}, nil
}

func (c *okCaller) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

// script drives a fixed logical call sequence through a network.
func script(nw *Network, inner wire.Caller) []error {
	a := nw.Caller("addrA", inner)
	b := nw.Caller("addrB", inner)
	nw.Bind("addrA", "a")
	nw.Bind("addrB", "b")
	nw.Bind("addrC", "c")
	var errs []error
	for i := 0; i < 40; i++ {
		_, err := a.Call(context.Background(), "addrB", wire.Request{Type: wire.TFindClosest})
		errs = append(errs, err)
		_, err = b.Call(context.Background(), "addrC", wire.Request{Type: wire.TPing})
		errs = append(errs, err)
	}
	return errs
}

func eventStrings(evs []Event) []string {
	out := make([]string, len(evs))
	for i, e := range evs {
		out[i] = e.String()
	}
	return out
}

func TestSameSeedSameFaultSequence(t *testing.T) {
	rules := []Rule{{Drop: 0.3}, {Dst: "c", ErrReply: 0.2}}
	run := func(seed int64) []string {
		nw := New(seed)
		nw.SetRules(rules...)
		script(nw, &okCaller{})
		return eventStrings(nw.Events())
	}
	r1, r2 := run(7), run(7)
	if len(r1) == 0 {
		t.Fatal("no faults injected at 30% drop over 80 calls")
	}
	if strings.Join(r1, "\n") != strings.Join(r2, "\n") {
		t.Fatalf("same seed diverged:\n%v\nvs\n%v", r1, r2)
	}
	if strings.Join(r1, "\n") == strings.Join(run(8), "\n") {
		t.Error("different seeds produced identical fault sequences")
	}
}

func TestReplayReproducesEvents(t *testing.T) {
	rules := []Rule{{Drop: 0.25}, {Dst: "b", DropReply: 0.2}}
	nw := New(42)
	nw.SetRules(rules...)
	inner := &okCaller{}
	a := nw.Caller("addrA", inner)
	nw.Bind("addrA", "a")
	nw.Bind("addrB", "b")
	nw.Bind("addrC", "c")
	for i := 0; i < 15; i++ {
		_, _ = a.Call(context.Background(), "addrB", wire.Request{Type: wire.TGet})
	}
	nw.Partition([]string{"a"}, []string{"b"})
	for i := 0; i < 5; i++ {
		_, _ = a.Call(context.Background(), "addrB", wire.Request{Type: wire.TGet})
		_, _ = a.Call(context.Background(), "addrC", wire.Request{Type: wire.TGet})
	}
	nw.Heal()
	for i := 0; i < 5; i++ {
		_, _ = a.Call(context.Background(), "addrB", wire.Request{Type: wire.TGet})
	}
	got := eventStrings(Replay(42, nw.Log()))
	want := eventStrings(nw.Events())
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("replay diverged:\ngot  %v\nwant %v", got, want)
	}
	// Partitioned calls must all have been blocked; healed ones not.
	if c := nw.Counts()[KindPartition]; c != 5 {
		t.Errorf("partition blocks = %d, want 5 (a->b while split)", c)
	}
}

func TestDropNeverReachesInner(t *testing.T) {
	nw := New(1)
	nw.SetRules(Rule{Drop: 1})
	inner := &okCaller{}
	c := nw.Caller("x", inner)
	_, err := c.Call(context.Background(), "y", wire.Request{Type: wire.TPing})
	var ne *wire.NetError
	if !errors.As(err, &ne) || ne.Sent {
		t.Fatalf("want unsent NetError, got %v", err)
	}
	if inner.count() != 0 {
		t.Error("dropped request still reached the inner caller")
	}
}

func TestDropReplyExecutesInner(t *testing.T) {
	nw := New(1)
	nw.SetRules(Rule{DropReply: 1})
	inner := &okCaller{}
	c := nw.Caller("x", inner)
	_, err := c.Call(context.Background(), "y", wire.Request{Type: wire.TPut})
	var ne *wire.NetError
	if !errors.As(err, &ne) || !ne.Sent {
		t.Fatalf("want sent NetError, got %v", err)
	}
	if inner.count() != 1 {
		t.Errorf("drop_reply inner calls = %d, want 1 (the request IS applied)", inner.count())
	}
}

func TestErrReplyIsRemoteError(t *testing.T) {
	nw := New(1)
	nw.SetRules(Rule{ErrReply: 1})
	inner := &okCaller{}
	c := nw.Caller("x", inner)
	_, err := c.Call(context.Background(), "y", wire.Request{Type: wire.TGet})
	if !wire.IsRemote(err) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	if inner.count() != 0 {
		t.Error("err_reply should short-circuit the inner call")
	}
	// And therefore the retry layer must not retry it.
	if wire.Retryable(wire.TGet, err) {
		t.Error("injected remote error classified retryable")
	}
}

func TestDelayRule(t *testing.T) {
	nw := New(1)
	nw.SetRules(Rule{Dst: "slow", Delay: 30 * time.Millisecond})
	nw.Bind("s", "slow")
	c := nw.Caller("x", &okCaller{})
	start := time.Now()
	if _, err := c.Call(context.Background(), "s", wire.Request{Type: wire.TPing}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("slow-peer delay not applied: %v", d)
	}
	if nw.Counts()[KindDelay] != 1 {
		t.Error("delay not recorded")
	}
}

func TestRuleMatchers(t *testing.T) {
	nw := New(1)
	nw.SetRules(Rule{Src: "a", Dst: "b", Type: wire.TPut, Drop: 1})
	inner := &okCaller{}
	ca := nw.Caller("addrA", inner)
	nw.Bind("addrA", "a")
	nw.Bind("addrB", "b")
	if _, err := ca.Call(context.Background(), "addrB", wire.Request{Type: wire.TGet}); err != nil {
		t.Errorf("wrong msg type matched: %v", err)
	}
	if _, err := ca.Call(context.Background(), "addrB", wire.Request{Type: wire.TPut}); err == nil {
		t.Error("matching call not dropped")
	}
	cb := nw.Caller("addrB", inner)
	if _, err := cb.Call(context.Background(), "addrA", wire.Request{Type: wire.TPut}); err != nil {
		t.Errorf("reverse direction matched: %v", err)
	}
}

func TestUnknownAddressesUseRawNames(t *testing.T) {
	nw := New(1)
	nw.SetRules(Rule{Dst: "10.0.0.1:99", Drop: 1})
	c := nw.Caller("x", &okCaller{})
	if _, err := c.Call(context.Background(), "10.0.0.1:99", wire.Request{Type: wire.TPing}); err == nil {
		t.Error("unbound address did not fall back to its raw name")
	}
}

func TestSelfCallsExempt(t *testing.T) {
	nw := New(1)
	nw.SetRules(Rule{Drop: 1})
	nw.Bind("addrX", "x")
	inner := &okCaller{}
	c := nw.Caller("addrX", inner)
	if _, err := c.Call(context.Background(), "addrX", wire.Request{Type: wire.TFindClosest}); err != nil {
		t.Fatalf("loopback call faulted: %v", err)
	}
	if inner.count() != 1 {
		t.Error("loopback call did not reach the inner caller")
	}
	if len(nw.Events()) != 0 || len(nw.Log()) != 1 {
		t.Errorf("loopback call leaked into the fault state: %d events, %d ops",
			len(nw.Events()), len(nw.Log()))
	}
}

func TestInstrumentExposesCounters(t *testing.T) {
	reg := metrics.NewRegistry()
	nw := New(3)
	nw.Instrument(reg)
	nw.SetRules(Rule{Drop: 1})
	c := nw.Caller("x", &okCaller{})
	_, _ = c.Call(context.Background(), "y", wire.Request{Type: wire.TPing})
	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `faultnet_injected_total{kind="drop"} 1`) {
		t.Errorf("exposition missing injection counter:\n%s", b.String())
	}
}

func TestConcurrentCallsRaceFree(t *testing.T) {
	nw := New(9)
	nw.SetRules(Rule{Drop: 0.5, Delay: time.Microsecond})
	inner := &okCaller{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := nw.Caller("x", inner)
			for i := 0; i < 50; i++ {
				_, _ = c.Call(context.Background(), "y", wire.Request{Type: wire.TPing})
			}
		}(g)
	}
	wg.Wait()
	// Per-edge decisions are scheduling-independent: the multiset of
	// fates over 400 draws on edge x->y is fixed by the seed.
	evs := Replay(9, nw.Log())
	if len(evs) != len(nw.Events()) {
		t.Errorf("replay produced %d events, live run %d", len(evs), len(nw.Events()))
	}
}
