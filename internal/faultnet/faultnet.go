// Package faultnet is a deterministic fault-injection layer for the live
// node stack: a wire.Caller decorator that drops requests, drops replies,
// injects error replies, delays calls and partitions the network
// according to seeded, composable rules, so multi-node in-process
// clusters can be tested under reproducible chaos.
//
// Determinism does not come from a shared sequential RNG (whose draw
// order would depend on goroutine scheduling) but from hashing
// (seed, src, dst, msg type, per-edge call sequence, rule index): the
// n-th call on a given edge always meets the same fate, regardless of
// how calls on different edges interleave. Re-running the same logical
// call sequence against the same seed and rules therefore reproduces the
// exact injected-fault sequence — Replay verifies this mechanically.
//
// Peers are identified by logical names (Bind), never by raw addresses,
// so decisions survive the ephemeral ports of in-process clusters.
package faultnet

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/wire"
)

// Kind labels one injected fault.
type Kind string

const (
	// KindDrop loses the request before it reaches the peer (the inner
	// call never happens; retry-safe for every message type).
	KindDrop Kind = "drop"
	// KindDropReply executes the call but loses the response, so the
	// peer HAS applied the request — the case idempotency-aware retry
	// policies exist for.
	KindDropReply Kind = "drop_reply"
	// KindErrReply answers with an injected application-level error
	// (wire.RemoteError), which must never be retried.
	KindErrReply Kind = "err_reply"
	// KindDelay sleeps before the call proceeds (slow peer / congested
	// link).
	KindDelay Kind = "delay"
	// KindPartition blocks a call crossing partition groups.
	KindPartition Kind = "partition"
)

// allKinds is the exposition order for counters.
var allKinds = []Kind{KindDrop, KindDropReply, KindErrReply, KindDelay, KindPartition}

// Rule matches a subset of calls and assigns fault probabilities to
// them. Zero-valued matchers match everything, so Rule{Drop: 0.2} makes
// every call in the network 20% flaky, Rule{Dst: "n3", Delay: 5ms} makes
// n3 a slow peer, and Rule{Dst: "n1", Type: wire.TFindClosest, ErrReply: 1}
// makes n1 reject every routing step.
type Rule struct {
	Src, Dst    string        // logical peer names; "" matches any
	Type        wire.MsgType  // 0 matches any message type
	Drop        float64       // P(request lost before the peer)
	DropReply   float64       // P(reply lost after the peer applied the request)
	ErrReply    float64       // P(injected remote application error)
	Delay       time.Duration // fixed added latency
	DelayJitter time.Duration // extra latency, uniform in [0, DelayJitter)
}

func (r Rule) matches(src, dst string, t wire.MsgType) bool {
	return (r.Src == "" || r.Src == src) &&
		(r.Dst == "" || r.Dst == dst) &&
		(r.Type == 0 || r.Type == t)
}

// Event records one injected fault, in injection order.
type Event struct {
	Seq  int // global injection sequence number
	Src  string
	Dst  string
	Type wire.MsgType
	Kind Kind
}

func (e Event) String() string {
	return fmt.Sprintf("%d %s->%s %s %s", e.Seq, e.Src, e.Dst, e.Type, e.Kind)
}

// Op is one entry of the logical operation log used by Replay: either a
// call or a control change (rule swap / partition / heal).
type Op struct {
	src, dst string
	typ      wire.MsgType
	call     bool
	groups   [][]string // non-nil: partition installed
	heal     bool
	rules    []Rule // non-nil: rule set replaced
	setRules bool
}

// Network holds the fault rules and deterministic decision state shared
// by all callers of one simulated deployment.
type Network struct {
	mu      sync.Mutex
	seed    int64
	names   map[string]string // transport addr -> logical name
	rules   []Rule
	groups  map[string]int // logical name -> partition group; nil = whole
	edgeSeq map[string]uint64
	events  []Event
	log     []Op
	counts  map[Kind]int

	injected *metrics.CounterVec
	kids     map[Kind]*metrics.Counter

	sleep func(time.Duration) // how KindDelay stalls a call; wall clock by default
}

// New creates a fault network with the given decision seed.
func New(seed int64) *Network {
	return &Network{
		seed:    seed,
		names:   make(map[string]string),
		edgeSeq: make(map[string]uint64),
		counts:  make(map[Kind]int),
		sleep:   time.Sleep,
	}
}

// SetSleeper replaces the function used to realise injected delays.
// Deterministic harnesses install an instant or virtual-clock sleeper
// so delay faults shape interleavings without stalling the test run;
// the decision of WHICH calls are delayed stays with the seeded rule
// engine either way. A nil sleeper disables delay stalls entirely.
func (nw *Network) SetSleeper(sleep func(time.Duration)) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.sleep = sleep
}

// Instrument registers faultnet_injected_total{kind} on reg so injected
// faults show up in the same /metrics exposition as the retries and
// breaker flips they provoke.
func (nw *Network) Instrument(reg *metrics.Registry) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.injected = reg.NewCounterVec("faultnet_injected_total",
		"Faults injected by the chaos harness, by kind.", "kind")
	nw.kids = make(map[Kind]*metrics.Counter, len(allKinds))
	for _, k := range allKinds {
		nw.kids[k] = nw.injected.With(string(k))
	}
}

// Bind maps a transport address to a stable logical name. Decisions and
// events use logical names, so a scenario is reproducible across runs
// even though listeners get fresh ephemeral ports each time.
func (nw *Network) Bind(addr, name string) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.names[addr] = name
}

// SetRules replaces the rule set. Like Partition, the change lands in
// the operation log so Replay applies it at the same position.
func (nw *Network) SetRules(rules ...Rule) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.rules = append([]Rule(nil), rules...)
	nw.log = append(nw.log, Op{rules: append([]Rule(nil), rules...), setRules: true})
}

// Partition splits the named peers into isolated groups: any call whose
// endpoints sit in different groups is blocked. Peers in no group are
// unaffected. The change is recorded in the operation log so Replay
// reproduces it at the same position.
func (nw *Network) Partition(groups ...[]string) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.partitionLocked(groups)
	nw.log = append(nw.log, Op{groups: copyGroups(groups)})
}

func (nw *Network) partitionLocked(groups [][]string) {
	nw.groups = make(map[string]int)
	for g, members := range groups {
		for _, name := range members {
			nw.groups[name] = g
		}
	}
}

// Heal removes the partition.
func (nw *Network) Heal() {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.groups = nil
	nw.log = append(nw.log, Op{heal: true})
}

// Blocked reports whether a call from src to dst (logical names or bound
// addresses) would currently be cut by the partition. Invariant checkers
// use it to decide which consistency properties may be asserted: a pair
// of live nodes that Blocked separates is entitled to disagree.
func (nw *Network) Blocked(src, dst string) bool {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	s := nw.nameLocked(src)
	d := nw.nameLocked(dst)
	if s == d || nw.groups == nil {
		return false
	}
	gs, oks := nw.groups[s]
	gd, okd := nw.groups[d]
	return oks && okd && gs != gd
}

// Events returns a copy of the injected-fault sequence so far.
func (nw *Network) Events() []Event {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return append([]Event(nil), nw.events...)
}

// Counts returns per-kind injection totals.
func (nw *Network) Counts() map[Kind]int {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	out := make(map[Kind]int, len(nw.counts))
	for k, v := range nw.counts {
		out[k] = v
	}
	return out
}

// Log returns the logical operation log (calls and partition changes) —
// the input Replay needs to reproduce Events.
func (nw *Network) Log() []Op {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return append([]Op(nil), nw.log...)
}

// Replay re-executes a logical operation log against a fresh decision
// state with the same seed, returning the injected-fault sequence it
// produces. Rule and partition changes are part of the log, so the
// determinism contract is simply: Replay(seed, nw.Log()) equals
// nw.Events() for the nw that recorded the log.
func Replay(seed int64, log []Op) []Event {
	nw := New(seed)
	nw.mu.Lock()
	defer nw.mu.Unlock()
	for _, o := range log {
		switch {
		case o.call:
			nw.decideLocked(o.src, o.dst, o.typ, false)
		case o.setRules:
			nw.rules = o.rules
		case o.groups != nil:
			nw.partitionLocked(o.groups)
		case o.heal:
			nw.groups = nil
		}
	}
	return nw.events
}

// decision is the fate assigned to one call.
type decision struct {
	kind  Kind // "" = deliver untouched (Delay may still apply)
	delay time.Duration
	msg   string // err_reply text
}

// decide resolves addresses, appends to the operation log and rolls the
// deterministic dice for one call.
func (nw *Network) decide(srcAddr, dstAddr string, t wire.MsgType) decision {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	src := nw.nameLocked(srcAddr)
	dst := nw.nameLocked(dstAddr)
	if src == dst {
		// A node's loopback calls to itself never cross the network, so
		// they are exempt from fault rules and partitions (and from the
		// log: they cannot produce events).
		return decision{}
	}
	nw.log = append(nw.log, Op{src: src, dst: dst, typ: t, call: true})
	return nw.decideLocked(src, dst, t, true)
}

func (nw *Network) nameLocked(addr string) string {
	if n, ok := nw.names[addr]; ok {
		return n
	}
	return addr
}

// decideLocked implements the deterministic core. count distinguishes a
// live decision (metrics) from a Replay.
func (nw *Network) decideLocked(src, dst string, t wire.MsgType, count bool) decision {
	edge := src + "\x00" + dst
	seq := nw.edgeSeq[edge]
	nw.edgeSeq[edge] = seq + 1

	var d decision
	if nw.groups != nil {
		gs, oks := nw.groups[src]
		gd, okd := nw.groups[dst]
		if oks && okd && gs != gd {
			nw.recordLocked(src, dst, t, KindPartition, count)
			d.kind = KindPartition
			return d
		}
	}
	for i, r := range nw.rules {
		if !r.matches(src, dst, t) {
			continue
		}
		if r.Delay > 0 || r.DelayJitter > 0 {
			extra := r.Delay
			if r.DelayJitter > 0 {
				extra += time.Duration(nw.roll(src, dst, t, seq, i, 3) * float64(r.DelayJitter))
			}
			d.delay += extra
			nw.recordLocked(src, dst, t, KindDelay, count)
		}
		if r.Drop > 0 && nw.roll(src, dst, t, seq, i, 0) < r.Drop {
			nw.recordLocked(src, dst, t, KindDrop, count)
			d.kind = KindDrop
			return d
		}
		if r.DropReply > 0 && nw.roll(src, dst, t, seq, i, 1) < r.DropReply {
			nw.recordLocked(src, dst, t, KindDropReply, count)
			d.kind = KindDropReply
			return d
		}
		if r.ErrReply > 0 && nw.roll(src, dst, t, seq, i, 2) < r.ErrReply {
			nw.recordLocked(src, dst, t, KindErrReply, count)
			d.kind = KindErrReply
			d.msg = fmt.Sprintf("faultnet: injected error (%s->%s %s)", src, dst, t)
			return d
		}
	}
	return d
}

func (nw *Network) recordLocked(src, dst string, t wire.MsgType, k Kind, count bool) {
	nw.events = append(nw.events, Event{Seq: len(nw.events), Src: src, Dst: dst, Type: t, Kind: k})
	nw.counts[k]++
	if count && nw.kids != nil {
		nw.kids[k].Inc()
	}
}

// roll produces the deterministic uniform draw in [0, 1) for one
// (edge, sequence, rule, purpose) tuple.
func (nw *Network) roll(src, dst string, t wire.MsgType, seq uint64, rule, salt int) float64 {
	h := fnv.New64a()
	h.Write([]byte(src))
	h.Write([]byte{0})
	h.Write([]byte(dst))
	h.Write([]byte{0, byte(t)})
	x := h.Sum64() ^ uint64(nw.seed)*0x9e3779b97f4a7c15
	x ^= seq * 0xbf58476d1ce4e5b9
	x ^= uint64(rule)<<8 | uint64(salt)
	return float64(splitmix64(x)>>11) / (1 << 53)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// caller decorates one node's outgoing calls with the network's faults.
type caller struct {
	nw    *Network
	src   string // the owning node's transport address
	inner wire.Caller
}

// Caller returns a wire.Caller that subjects inner's calls (as issued by
// the node listening on srcAddr) to the network's fault rules. Install
// it via transport.Config.WrapCaller so it sits below the retry layer —
// retries are then exercised against the injected faults.
func (nw *Network) Caller(srcAddr string, inner wire.Caller) wire.Caller {
	return &caller{nw: nw, src: srcAddr, inner: inner}
}

var errInjected = fmt.Errorf("faultnet: injected fault")

func (c *caller) Call(ctx context.Context, addr string, req wire.Request) (wire.Response, error) {
	d := c.nw.decide(c.src, addr, req.Type)
	if d.delay > 0 {
		c.nw.mu.Lock()
		sleep := c.nw.sleep
		c.nw.mu.Unlock()
		if sleep != nil {
			sleep(d.delay)
		}
	}
	switch d.kind {
	case KindDrop:
		return wire.Response{}, &wire.NetError{Addr: addr, Op: "faultnet:drop", Sent: false, Err: errInjected}
	case KindPartition:
		return wire.Response{}, &wire.NetError{Addr: addr, Op: "faultnet:partition", Sent: false, Err: errInjected}
	case KindErrReply:
		return wire.Response{OK: false, Err: d.msg}, &wire.RemoteError{Type: req.Type, Msg: d.msg}
	}
	resp, err := c.inner.Call(ctx, addr, req)
	if d.kind == KindDropReply && err == nil {
		return wire.Response{}, &wire.NetError{Addr: addr, Op: "faultnet:drop_reply", Sent: true, Err: errInjected}
	}
	return resp, err
}

func copyGroups(groups [][]string) [][]string {
	out := make([][]string, len(groups))
	for i, g := range groups {
		out[i] = append([]string(nil), g...)
	}
	return out
}
