package id

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func quickCfg(seed int64) *quick.Config {
	return &quick.Config{
		MaxCount: 2000,
		Rand:     rand.New(rand.NewSource(seed)),
	}
}

func TestFromUint64(t *testing.T) {
	cases := []struct {
		v    uint64
		want string
	}{
		{0, "0000000000000000000000000000000000000000"},
		{1, "0000000000000000000000000000000000000001"},
		{0xdeadbeef, "00000000000000000000000000000000deadbeef"},
		{^uint64(0), "000000000000000000000000ffffffffffffffff"},
	}
	for _, c := range cases {
		if got := FromUint64(c.v).String(); got != c.want {
			t.Errorf("FromUint64(%#x) = %s, want %s", c.v, got, c.want)
		}
	}
}

func TestParseHexRoundTrip(t *testing.T) {
	x := HashString("hello")
	parsed, err := ParseHex(x.String())
	if err != nil {
		t.Fatalf("ParseHex: %v", err)
	}
	if parsed != x {
		t.Fatalf("round trip mismatch: %s vs %s", parsed, x)
	}
}

func TestParseHexErrors(t *testing.T) {
	if _, err := ParseHex("abc"); err == nil {
		t.Error("short input: want error")
	}
	if _, err := ParseHex("zz00000000000000000000000000000000000000"); err == nil {
		t.Error("non-hex input: want error")
	}
}

func TestMarshalText(t *testing.T) {
	x := HashString("marshal")
	b, err := x.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var y ID
	if err := y.UnmarshalText(b); err != nil {
		t.Fatal(err)
	}
	if x != y {
		t.Fatalf("text round trip mismatch: %s vs %s", x, y)
	}
	if err := y.UnmarshalText([]byte("nope")); err == nil {
		t.Error("UnmarshalText of garbage: want error")
	}
}

func TestHashDeterministic(t *testing.T) {
	if HashString("a") != HashString("a") {
		t.Error("HashString not deterministic")
	}
	if HashString("a") == HashString("b") {
		t.Error("distinct inputs collided (vanishingly unlikely)")
	}
}

func TestCmp(t *testing.T) {
	a, b := FromUint64(5), FromUint64(9)
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Errorf("Cmp ordering wrong: %d %d %d", a.Cmp(b), b.Cmp(a), a.Cmp(a))
	}
	if !a.Less(b) || b.Less(a) {
		t.Error("Less inconsistent with Cmp")
	}
	if !a.Equal(a) || a.Equal(b) {
		t.Error("Equal inconsistent")
	}
}

func TestIsZero(t *testing.T) {
	var z ID
	if !z.IsZero() {
		t.Error("zero value should be zero")
	}
	if FromUint64(1).IsZero() {
		t.Error("1 should not be zero")
	}
}

func TestAddSubSmall(t *testing.T) {
	a, b := FromUint64(300), FromUint64(45)
	if got := Add(a, b); got != FromUint64(345) {
		t.Errorf("Add = %s", got.Short())
	}
	if got := Sub(a, b); got != FromUint64(255) {
		t.Errorf("Sub = %s", got.Short())
	}
}

func TestAddWrapsAround(t *testing.T) {
	// maxID + 1 == 0
	var max ID
	for i := range max {
		max[i] = 0xff
	}
	if got := Add(max, FromUint64(1)); !got.IsZero() {
		t.Errorf("max+1 = %s, want 0", got)
	}
	// 0 - 1 == maxID
	if got := Sub(ID{}, FromUint64(1)); got != max {
		t.Errorf("0-1 = %s, want all-ff", got)
	}
}

func TestAddPow2(t *testing.T) {
	base := FromUint64(100)
	if got := AddPow2(base, 0); got != FromUint64(101) {
		t.Errorf("base+2^0 = %s", got)
	}
	if got := AddPow2(base, 10); got != FromUint64(100+1024) {
		t.Errorf("base+2^10 = %s", got)
	}
	// Highest bit: adding 2^159 twice returns to the original.
	h := AddPow2(base, Bits-1)
	if h == base {
		t.Fatal("base+2^159 should differ from base")
	}
	if got := AddPow2(h, Bits-1); got != base {
		t.Errorf("adding 2^159 twice should be identity, got %s", got)
	}
}

func TestAddPow2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddPow2 with k >= Bits should panic")
		}
	}()
	AddPow2(ID{}, Bits)
}

func TestBetweenNoWrap(t *testing.T) {
	a, b := FromUint64(10), FromUint64(20)
	if !Between(FromUint64(15), a, b) {
		t.Error("15 in (10,20) should hold")
	}
	if Between(FromUint64(10), a, b) || Between(FromUint64(20), a, b) {
		t.Error("endpoints excluded from open interval")
	}
	if Between(FromUint64(25), a, b) {
		t.Error("25 not in (10,20)")
	}
}

func TestBetweenWrap(t *testing.T) {
	a, b := FromUint64(1000), FromUint64(5)
	if !Between(FromUint64(2000), a, b) || !Between(FromUint64(2), a, b) {
		t.Error("wrap interval membership failed")
	}
	if Between(FromUint64(500), a, b) {
		t.Error("500 not in wrapped (1000,5)")
	}
}

func TestBetweenDegenerate(t *testing.T) {
	a := FromUint64(7)
	if Between(a, a, a) {
		t.Error("(a,a) excludes a")
	}
	if !Between(FromUint64(8), a, a) {
		t.Error("(a,a) includes everything else")
	}
}

func TestInOpenClosed(t *testing.T) {
	a, b := FromUint64(10), FromUint64(20)
	if !InOpenClosed(FromUint64(20), a, b) {
		t.Error("right endpoint included")
	}
	if InOpenClosed(FromUint64(10), a, b) {
		t.Error("left endpoint excluded")
	}
	// Degenerate interval covers the whole ring (single-node Chord ring).
	if !InOpenClosed(FromUint64(999), a, a) || !InOpenClosed(a, a, a) {
		t.Error("(a,a] should cover the whole ring")
	}
}

func TestInClosedOpen(t *testing.T) {
	a, b := FromUint64(10), FromUint64(20)
	if !InClosedOpen(FromUint64(10), a, b) {
		t.Error("left endpoint included")
	}
	if InClosedOpen(FromUint64(20), a, b) {
		t.Error("right endpoint excluded")
	}
	if !InClosedOpen(FromUint64(3), FromUint64(100), FromUint64(7)) {
		t.Error("wrapped [100,7) should include 3")
	}
	if !InClosedOpen(a, a, a) {
		t.Error("[a,a) degenerate covers whole ring")
	}
}

// randID builds an ID from three uint64 lanes so quick can generate them.
func randID(a, b, c uint64) ID {
	var x ID
	for i := 0; i < 8; i++ {
		x[Size-1-i] = byte(a >> (8 * i))
		x[Size-9-i] = byte(b >> (8 * i))
	}
	for i := 0; i < 4; i++ {
		x[3-i] = byte(c >> (8 * i))
	}
	return x
}

func TestQuickAddMatchesBig(t *testing.T) {
	mod := new(big.Int).Lsh(big.NewInt(1), Bits)
	f := func(a1, a2, a3, b1, b2, b3 uint64) bool {
		x, y := randID(a1, a2, a3), randID(b1, b2, b3)
		want := FromBig(new(big.Int).Mod(new(big.Int).Add(x.ToBig(), y.ToBig()), mod))
		return Add(x, y) == want
	}
	if err := quick.Check(f, quickCfg(1)); err != nil {
		t.Error(err)
	}
}

func TestQuickSubMatchesBig(t *testing.T) {
	f := func(a1, a2, a3, b1, b2, b3 uint64) bool {
		x, y := randID(a1, a2, a3), randID(b1, b2, b3)
		want := FromBig(new(big.Int).Sub(x.ToBig(), y.ToBig()))
		return Sub(x, y) == want
	}
	if err := quick.Check(f, quickCfg(2)); err != nil {
		t.Error(err)
	}
}

func TestQuickAddSubInverse(t *testing.T) {
	f := func(a1, a2, a3, b1, b2, b3 uint64) bool {
		x, y := randID(a1, a2, a3), randID(b1, b2, b3)
		return Sub(Add(x, y), y) == x && Add(Sub(x, y), y) == x
	}
	if err := quick.Check(f, quickCfg(3)); err != nil {
		t.Error(err)
	}
}

func TestQuickAddPow2MatchesBig(t *testing.T) {
	f := func(a1, a2, a3 uint64, kRaw uint8) bool {
		x := randID(a1, a2, a3)
		k := uint(kRaw) % Bits
		p := new(big.Int).Lsh(big.NewInt(1), k)
		want := FromBig(new(big.Int).Add(x.ToBig(), p))
		return AddPow2(x, k) == want
	}
	if err := quick.Check(f, quickCfg(4)); err != nil {
		t.Error(err)
	}
}

func TestQuickDistAntisymmetry(t *testing.T) {
	// dist(x,y) + dist(y,x) == 0 (mod 2^160) unless x == y.
	f := func(a1, a2, a3, b1, b2, b3 uint64) bool {
		x, y := randID(a1, a2, a3), randID(b1, b2, b3)
		s := Add(Dist(x, y), Dist(y, x))
		return s.IsZero()
	}
	if err := quick.Check(f, quickCfg(5)); err != nil {
		t.Error(err)
	}
}

func TestQuickBetweenTrichotomy(t *testing.T) {
	// For distinct a, b and v not an endpoint: v is in exactly one of
	// (a, b) and (b, a).
	f := func(a1, a2, a3, b1, b2, b3, c1, c2, c3 uint64) bool {
		a, b := randID(a1, a2, a3), randID(b1, b2, b3)
		v := randID(c1, c2, c3)
		if a == b || v == a || v == b {
			return true
		}
		return Between(v, a, b) != Between(v, b, a)
	}
	if err := quick.Check(f, quickCfg(6)); err != nil {
		t.Error(err)
	}
}

func TestQuickIntervalConsistency(t *testing.T) {
	// (a,b] == (a,b) ∪ {b};  [a,b) == (a,b) ∪ {a}  for a != b.
	f := func(a1, a2, a3, b1, b2, b3, c1, c2, c3 uint64) bool {
		a, b := randID(a1, a2, a3), randID(b1, b2, b3)
		v := randID(c1, c2, c3)
		if a == b {
			return true
		}
		oc := InOpenClosed(v, a, b) == (Between(v, a, b) || v == b)
		co := InClosedOpen(v, a, b) == (Between(v, a, b) || v == a)
		return oc && co
	}
	if err := quick.Check(f, quickCfg(7)); err != nil {
		t.Error(err)
	}
}

func TestQuickRandInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	seen := map[ID]bool{}
	for i := 0; i < 64; i++ {
		seen[Rand(rng)] = true
	}
	if len(seen) != 64 {
		t.Errorf("Rand produced duplicates: %d unique of 64", len(seen))
	}
}

func BenchmarkAdd(b *testing.B) {
	x, y := HashString("x"), HashString("y")
	for i := 0; i < b.N; i++ {
		x = Add(x, y)
	}
	_ = x
}

func BenchmarkBetween(b *testing.B) {
	x, y, v := HashString("x"), HashString("y"), HashString("v")
	for i := 0; i < b.N; i++ {
		_ = Between(v, x, y)
	}
}
