// Package id implements the 160-bit circular identifier space shared by
// Chord and HIERAS. Node and key identifiers are SHA-1 digests interpreted
// as big-endian unsigned integers modulo 2^160. The package provides the
// modular interval tests and power-of-two arithmetic that DHT routing
// requires.
package id

import (
	"crypto/sha1"
	"encoding/hex"
	"fmt"
	"math/big"
	"math/rand"
)

const (
	// Bits is the width of the identifier space.
	Bits = 160
	// Size is the identifier length in bytes.
	Size = Bits / 8
)

// ID is a 160-bit identifier stored big-endian: ID[0] holds the most
// significant byte. The zero value is the identifier 0.
type ID [Size]byte

// HashBytes returns the SHA-1 identifier of b.
func HashBytes(b []byte) ID {
	return ID(sha1.Sum(b))
}

// HashString returns the SHA-1 identifier of s.
func HashString(s string) ID {
	return HashBytes([]byte(s))
}

// FromUint64 returns the identifier whose low 64 bits are v and whose
// remaining bits are zero. It is intended for tests and examples that want
// readable identifiers.
func FromUint64(v uint64) ID {
	var x ID
	for i := 0; i < 8; i++ {
		x[Size-1-i] = byte(v >> (8 * i))
	}
	return x
}

// ParseHex parses a 40-character hexadecimal identifier.
func ParseHex(s string) (ID, error) {
	var x ID
	if len(s) != 2*Size {
		return x, fmt.Errorf("id: hex identifier must be %d chars, got %d", 2*Size, len(s))
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return x, fmt.Errorf("id: %v", err)
	}
	copy(x[:], b)
	return x, nil
}

// Rand returns a uniformly random identifier drawn from rng.
func Rand(rng *rand.Rand) ID {
	var x ID
	for i := 0; i < Size; i++ {
		if i%8 == 0 {
			v := rng.Uint64()
			for j := 0; j < 8 && i+j < Size; j++ {
				x[i+j] = byte(v >> (8 * (7 - j)))
			}
		}
	}
	return x
}

// String returns the full 40-character hexadecimal form.
func (x ID) String() string { return hex.EncodeToString(x[:]) }

// Short returns the first 8 hexadecimal characters, for human-readable
// tables and logs.
func (x ID) Short() string { return hex.EncodeToString(x[:4]) }

// MarshalText implements encoding.TextMarshaler.
func (x ID) MarshalText() ([]byte, error) { return []byte(x.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (x *ID) UnmarshalText(b []byte) error {
	v, err := ParseHex(string(b))
	if err != nil {
		return err
	}
	*x = v
	return nil
}

// Cmp compares x and y as unsigned integers: -1 if x < y, 0 if equal,
// +1 if x > y.
func (x ID) Cmp(y ID) int {
	for i := 0; i < Size; i++ {
		switch {
		case x[i] < y[i]:
			return -1
		case x[i] > y[i]:
			return 1
		}
	}
	return 0
}

// Less reports whether x < y as unsigned integers (not ring order).
func (x ID) Less(y ID) bool { return x.Cmp(y) < 0 }

// Equal reports whether x == y.
func (x ID) Equal(y ID) bool { return x == y }

// IsZero reports whether x is the zero identifier.
func (x ID) IsZero() bool { return x == ID{} }

// Add returns (x + y) mod 2^160.
func Add(x, y ID) ID {
	var z ID
	var carry uint16
	for i := Size - 1; i >= 0; i-- {
		s := uint16(x[i]) + uint16(y[i]) + carry
		z[i] = byte(s)
		carry = s >> 8
	}
	return z
}

// Sub returns (x - y) mod 2^160.
func Sub(x, y ID) ID {
	var z ID
	var borrow uint16
	for i := Size - 1; i >= 0; i-- {
		s := uint16(x[i]) - uint16(y[i]) - borrow
		z[i] = byte(s)
		borrow = (s >> 8) & 1
	}
	return z
}

// AddPow2 returns (x + 2^k) mod 2^160. It panics if k >= Bits.
// It computes the start of the k'th finger interval: finger[k].start for a
// node with identifier x (using 0-based finger indexes, so finger k covers
// [x+2^k, x+2^(k+1)) as in the Chord paper's 1-based finger i = k+1).
func AddPow2(x ID, k uint) ID {
	if k >= Bits {
		panic(fmt.Sprintf("id: AddPow2 exponent %d out of range", k))
	}
	var p ID
	byteIdx := Size - 1 - int(k/8)
	p[byteIdx] = 1 << (k % 8)
	return Add(x, p)
}

// Dist returns the clockwise distance from x to y on the ring:
// (y - x) mod 2^160.
func Dist(x, y ID) ID { return Sub(y, x) }

// Between reports whether v lies strictly inside the circular open interval
// (a, b). When a == b the interval covers the whole ring except a itself.
func Between(v, a, b ID) bool {
	switch a.Cmp(b) {
	case -1: // no wrap
		return a.Cmp(v) < 0 && v.Cmp(b) < 0
	case 1: // wraps past zero
		return a.Cmp(v) < 0 || v.Cmp(b) < 0
	default: // a == b: whole ring minus the endpoint
		return v.Cmp(a) != 0
	}
}

// InOpenClosed reports whether v lies in the circular interval (a, b].
// When a == b the interval covers the entire ring (the single-node case in
// Chord: the only node is the successor of every key).
func InOpenClosed(v, a, b ID) bool {
	switch a.Cmp(b) {
	case -1:
		return a.Cmp(v) < 0 && v.Cmp(b) <= 0
	case 1:
		return a.Cmp(v) < 0 || v.Cmp(b) <= 0
	default:
		return true
	}
}

// InClosedOpen reports whether v lies in the circular interval [a, b).
// When a == b the interval covers the entire ring.
func InClosedOpen(v, a, b ID) bool {
	switch a.Cmp(b) {
	case -1:
		return a.Cmp(v) <= 0 && v.Cmp(b) < 0
	case 1:
		return a.Cmp(v) <= 0 || v.Cmp(b) < 0
	default:
		return true
	}
}

// ToBig returns x as a non-negative big integer. Intended for tests that
// cross-check the modular arithmetic against math/big.
func (x ID) ToBig() *big.Int { return new(big.Int).SetBytes(x[:]) }

// FromBig returns v mod 2^160 as an ID. Negative values are reduced into
// the ring. Intended for tests.
func FromBig(v *big.Int) ID {
	mod := new(big.Int).Lsh(big.NewInt(1), Bits)
	r := new(big.Int).Mod(v, mod)
	var x ID
	r.FillBytes(x[:])
	return x
}
