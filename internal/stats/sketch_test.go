package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestNewSketchErrors(t *testing.T) {
	for _, a := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := NewSketch(a); err == nil {
			t.Errorf("accuracy %v accepted", a)
		}
	}
}

func TestSketchDomain(t *testing.T) {
	s, err := NewSketch(0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, math.NaN(), math.Inf(1)} {
		if err := s.Add(x); err == nil {
			t.Errorf("observation %v accepted", x)
		}
	}
	if s.N() != 0 {
		t.Errorf("rejected observations counted: n=%d", s.N())
	}
}

func TestSketchRelativeAccuracy(t *testing.T) {
	const alpha = 0.01
	s, _ := NewSketch(alpha)
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 100
		if err := s.Add(xs[i]); err != nil {
			t.Fatal(err)
		}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := s.Quantile(q)
		exact := sorted[int(q*float64(len(sorted)-1))]
		if rel := math.Abs(got-exact) / exact; rel > 2*alpha {
			t.Errorf("q=%v: got %v, exact %v, rel err %v", q, got, exact, rel)
		}
	}
}

func TestSketchZeroHandling(t *testing.T) {
	s, _ := NewSketch(0.05)
	for i := 0; i < 10; i++ {
		_ = s.Add(0)
	}
	_ = s.Add(5)
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("median of mostly-zero data = %v, want 0", got)
	}
	if got := s.Quantile(1); got == 0 {
		t.Error("max quantile should reach the non-zero bucket")
	}
	if s.Quantile(-1) != 0 || s.N() != 11 {
		t.Error("clamping or count broken")
	}
}

func TestSketchMergeOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
	}
	whole, _ := NewSketch(0.01)
	for _, x := range xs {
		_ = whole.Add(x)
	}
	// Partition into 7 parts, merge in order.
	parts := make([]*Sketch, 7)
	for i := range parts {
		parts[i], _ = NewSketch(0.01)
	}
	for i, x := range xs {
		_ = parts[i%7].Add(x)
	}
	merged, _ := NewSketch(0.01)
	for _, p := range parts {
		if err := merged.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	if merged.N() != whole.N() {
		t.Fatalf("merged n=%d, whole n=%d", merged.N(), whole.N())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		if m, w := merged.Quantile(q), whole.Quantile(q); m != w {
			t.Errorf("q=%v: merged %v != whole %v", q, m, w)
		}
	}
}

func TestSketchMergeAccuracyMismatch(t *testing.T) {
	a, _ := NewSketch(0.01)
	b, _ := NewSketch(0.02)
	if err := a.Merge(b); err == nil {
		t.Error("mismatched accuracies merged")
	}
}

func TestSketchEmpty(t *testing.T) {
	s, _ := NewSketch(0.01)
	if s.Quantile(0.5) != 0 {
		t.Error("empty sketch quantile should be 0")
	}
}
