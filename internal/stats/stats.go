// Package stats provides the small statistical toolkit the experiment
// harness needs: streaming summaries, fixed-width histograms and the
// PDF/CDF curves reported in the paper's Figures 4 and 5.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Online accumulates a streaming mean and variance (Welford's algorithm)
// plus extrema. The zero value is ready to use.
type Online struct {
	n          int64
	mean, m2   float64
	min, max   float64
	hasExtrema bool
}

// Add feeds one observation.
func (o *Online) Add(x float64) {
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
	if !o.hasExtrema || x < o.min {
		o.min = x
	}
	if !o.hasExtrema || x > o.max {
		o.max = x
	}
	o.hasExtrema = true
}

// N returns the observation count.
func (o *Online) N() int64 { return o.n }

// Mean returns the running mean (0 for no data).
func (o *Online) Mean() float64 { return o.mean }

// Var returns the unbiased sample variance.
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Std returns the sample standard deviation.
func (o *Online) Std() float64 { return math.Sqrt(o.Var()) }

// Min returns the smallest observation (0 for no data).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation (0 for no data).
func (o *Online) Max() float64 { return o.max }

// Merge folds another accumulator into o (parallel reduction).
func (o *Online) Merge(b *Online) {
	if b.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *b
		return
	}
	n := o.n + b.n
	d := b.mean - o.mean
	mean := o.mean + d*float64(b.n)/float64(n)
	o.m2 += b.m2 + d*d*float64(o.n)*float64(b.n)/float64(n)
	o.mean = mean
	o.n = n
	if b.min < o.min {
		o.min = b.min
	}
	if b.max > o.max {
		o.max = b.max
	}
}

// Summary is a one-shot descriptive summary.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P50, P90, P99 float64
}

// Summarize computes a Summary of xs (xs is not modified).
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	s.Mean, s.Std = o.Mean(), o.Std()
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.P50 = Quantile(sorted, 0.50)
	s.P90 = Quantile(sorted, 0.90)
	s.P99 = Quantile(sorted, 0.99)
	return s
}

// Quantile returns the q-quantile (0..1) of an ascending-sorted slice
// using linear interpolation. It panics on an empty slice.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Point is one (x, y) sample of a distribution curve.
type Point struct {
	X, Y float64
}

// Histogram counts observations in fixed-width buckets starting at zero.
// Bucket i covers [i*Width, (i+1)*Width). Negative observations are
// rejected.
type Histogram struct {
	Width  float64
	counts []int64
	n      int64
}

// NewHistogram creates a histogram with the given bucket width (> 0).
func NewHistogram(width float64) (*Histogram, error) {
	if width <= 0 || math.IsNaN(width) || math.IsInf(width, 0) {
		return nil, fmt.Errorf("stats: bucket width must be positive, got %v", width)
	}
	return &Histogram{Width: width}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) error {
	if x < 0 || math.IsNaN(x) {
		return fmt.Errorf("stats: histogram observation %v out of domain", x)
	}
	b := int(x / h.Width)
	for b >= len(h.counts) {
		h.counts = append(h.counts, 0)
	}
	h.counts[b]++
	h.n++
	return nil
}

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.n }

// Count returns the observations in bucket b.
func (h *Histogram) Count(b int) int64 {
	if b < 0 || b >= len(h.counts) {
		return 0
	}
	return h.counts[b]
}

// Buckets returns the number of allocated buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// PDF returns the probability density per bucket: X is the bucket's lower
// edge, Y the fraction of observations in the bucket.
func (h *Histogram) PDF() []Point {
	out := make([]Point, len(h.counts))
	for i, c := range h.counts {
		y := 0.0
		if h.n > 0 {
			y = float64(c) / float64(h.n)
		}
		out[i] = Point{X: float64(i) * h.Width, Y: y}
	}
	return out
}

// CDF returns the cumulative distribution per bucket: X is the bucket's
// upper edge, Y the fraction of observations at or below it.
func (h *Histogram) CDF() []Point {
	out := make([]Point, len(h.counts))
	var cum int64
	for i, c := range h.counts {
		cum += c
		y := 0.0
		if h.n > 0 {
			y = float64(cum) / float64(h.n)
		}
		out[i] = Point{X: float64(i+1) * h.Width, Y: y}
	}
	return out
}

// Merge folds another histogram with the same width into h.
func (h *Histogram) Merge(b *Histogram) error {
	if h.Width != b.Width {
		return fmt.Errorf("stats: merging histograms with widths %v and %v", h.Width, b.Width)
	}
	for len(h.counts) < len(b.counts) {
		h.counts = append(h.counts, 0)
	}
	for i, c := range b.counts {
		h.counts[i] += c
	}
	h.n += b.n
	return nil
}
