package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sketch is a mergeable quantile sketch over non-negative observations,
// in the style of DDSketch: values land in logarithmically spaced buckets
// chosen so every reported quantile carries a bounded *relative* error
// alpha. Counts are integers, so Add and Merge are exact and
// order-independent — merging per-worker sketches yields byte-identical
// quantiles no matter how the observations were partitioned, which is
// what the batch query engine needs for worker-count-invariant summaries.
//
// The zero value is not usable; construct with NewSketch.
type Sketch struct {
	alpha   float64
	gamma   float64
	lnGamma float64
	counts  map[int]int64 // bucket index -> count, x in bucket ceil(ln(x)/ln(gamma))
	zero    int64         // observations equal to zero
	n       int64
}

// NewSketch returns a sketch with relative accuracy alpha in (0, 1):
// Quantile(q) is within a factor (1±alpha) of the exact q-quantile.
func NewSketch(alpha float64) (*Sketch, error) {
	if alpha <= 0 || alpha >= 1 || math.IsNaN(alpha) {
		return nil, fmt.Errorf("stats: sketch accuracy must be in (0,1), got %v", alpha)
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		alpha:   alpha,
		gamma:   gamma,
		lnGamma: math.Log(gamma),
		counts:  make(map[int]int64),
	}, nil
}

// Add records one observation (>= 0).
func (s *Sketch) Add(x float64) error {
	if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
		return fmt.Errorf("stats: sketch observation %v out of domain", x)
	}
	if x == 0 {
		s.zero++
	} else {
		s.counts[int(math.Ceil(math.Log(x)/s.lnGamma))]++
	}
	s.n++
	return nil
}

// N returns the number of observations.
func (s *Sketch) N() int64 { return s.n }

// Merge folds another sketch with the same accuracy into s.
func (s *Sketch) Merge(b *Sketch) error {
	if s.alpha != b.alpha {
		return fmt.Errorf("stats: merging sketches with accuracies %v and %v", s.alpha, b.alpha)
	}
	for i, c := range b.counts {
		s.counts[i] += c
	}
	s.zero += b.zero
	s.n += b.n
	return nil
}

// Quantile returns the q-quantile (0..1) estimate, or 0 with no data.
// The estimate is within relative error alpha of an exact q-quantile.
func (s *Sketch) Quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(s.n-1)) // 0-based rank, as in nearest-rank
	if rank < s.zero {
		return 0
	}
	cum := s.zero
	idxs := make([]int, 0, len(s.counts))
	for i := range s.counts {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		cum += s.counts[i]
		if cum > rank {
			// Bucket i covers (gamma^(i-1), gamma^i]; report the point that
			// bounds relative error by alpha on both sides.
			return 2 * math.Pow(s.gamma, float64(i)) / (s.gamma + 1)
		}
	}
	// Unreachable when counts are consistent with n.
	return 0
}
