package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestOnlineBasics(t *testing.T) {
	var o Online
	if o.N() != 0 || o.Mean() != 0 || o.Std() != 0 {
		t.Error("zero-value accumulator should be empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if o.N() != 8 {
		t.Errorf("N = %d", o.N())
	}
	if !almostEq(o.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v", o.Mean())
	}
	// Sample variance of this classic dataset is 32/7.
	if !almostEq(o.Var(), 32.0/7.0, 1e-12) {
		t.Errorf("Var = %v", o.Var())
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Errorf("extrema %v %v", o.Min(), o.Max())
	}
}

func TestOnlineMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		var whole, a, b Online
		for i := 0; i < n; i++ {
			x := r.NormFloat64() * 10
			whole.Add(x)
			if i%2 == 0 {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(&b)
		return a.N() == whole.N() &&
			almostEq(a.Mean(), whole.Mean(), 1e-9) &&
			almostEq(a.Var(), whole.Var(), 1e-6) &&
			a.Min() == whole.Min() && a.Max() == whole.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestOnlineMergeEmpty(t *testing.T) {
	var a, b Online
	a.Add(3)
	a.Merge(&b) // empty b: no-op
	if a.N() != 1 || a.Mean() != 3 {
		t.Error("merge with empty changed state")
	}
	b.Merge(&a) // empty receiver adopts a
	if b.N() != 1 || b.Mean() != 3 {
		t.Error("empty receiver should adopt argument")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || !almostEq(s.Mean, 3, 1e-12) {
		t.Errorf("summary %+v", s)
	}
	if !almostEq(s.P50, 3, 1e-12) {
		t.Errorf("P50 = %v", s.P50)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Error("empty summary should have N=0")
	}
	// Input must not be reordered.
	in := []float64{9, 1, 5}
	Summarize(in)
	if in[0] != 9 || in[2] != 5 {
		t.Error("Summarize mutated its input")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if Quantile(sorted, 0) != 10 || Quantile(sorted, 1) != 40 {
		t.Error("endpoint quantiles wrong")
	}
	if !almostEq(Quantile(sorted, 0.5), 25, 1e-12) {
		t.Errorf("median = %v", Quantile(sorted, 0.5))
	}
	if !almostEq(Quantile(sorted, 1.0/3.0), 20, 1e-12) {
		t.Errorf("1/3 quantile = %v", Quantile(sorted, 1.0/3.0))
	}
	defer func() {
		if recover() == nil {
			t.Error("empty quantile should panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestHistogramBasics(t *testing.T) {
	h, err := NewHistogram(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 0.5, 1, 2.7, 2.9} {
		if err := h.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	if h.N() != 5 || h.Buckets() != 3 {
		t.Errorf("N=%d buckets=%d", h.N(), h.Buckets())
	}
	if h.Count(0) != 2 || h.Count(1) != 1 || h.Count(2) != 2 {
		t.Errorf("counts %d %d %d", h.Count(0), h.Count(1), h.Count(2))
	}
	if h.Count(-1) != 0 || h.Count(99) != 0 {
		t.Error("out-of-range counts should be 0")
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewHistogram(-2); err == nil {
		t.Error("negative width accepted")
	}
	if _, err := NewHistogram(math.NaN()); err == nil {
		t.Error("NaN width accepted")
	}
	h, _ := NewHistogram(1)
	if err := h.Add(-1); err == nil {
		t.Error("negative observation accepted")
	}
	if err := h.Add(math.NaN()); err == nil {
		t.Error("NaN observation accepted")
	}
}

func TestHistogramPDFandCDF(t *testing.T) {
	h, _ := NewHistogram(10)
	for i := 0; i < 6; i++ {
		_ = h.Add(5) // bucket 0
	}
	for i := 0; i < 4; i++ {
		_ = h.Add(15) // bucket 1
	}
	pdf := h.PDF()
	if len(pdf) != 2 || !almostEq(pdf[0].Y, 0.6, 1e-12) || !almostEq(pdf[1].Y, 0.4, 1e-12) {
		t.Errorf("pdf %+v", pdf)
	}
	if pdf[0].X != 0 || pdf[1].X != 10 {
		t.Error("pdf X should be bucket lower edges")
	}
	cdf := h.CDF()
	if !almostEq(cdf[0].Y, 0.6, 1e-12) || !almostEq(cdf[1].Y, 1.0, 1e-12) {
		t.Errorf("cdf %+v", cdf)
	}
	if cdf[1].X != 20 {
		t.Error("cdf X should be bucket upper edges")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, _ := NewHistogram(1)
	b, _ := NewHistogram(1)
	_ = a.Add(0.5)
	_ = b.Add(2.5)
	_ = b.Add(0.1)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != 3 || a.Count(0) != 2 || a.Count(2) != 1 {
		t.Errorf("merged histogram wrong: N=%d", a.N())
	}
	c, _ := NewHistogram(2)
	if err := a.Merge(c); err == nil {
		t.Error("width mismatch accepted")
	}
}

func TestQuickCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h, _ := NewHistogram(0.5 + r.Float64()*10)
		n := 1 + r.Intn(200)
		for i := 0; i < n; i++ {
			if err := h.Add(r.Float64() * 100); err != nil {
				return false
			}
		}
		cdf := h.CDF()
		prev := 0.0
		for _, p := range cdf {
			if p.Y < prev-1e-12 {
				return false
			}
			prev = p.Y
		}
		return almostEq(cdf[len(cdf)-1].Y, 1, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

func TestQuickPDFSumsToOne(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h, _ := NewHistogram(1 + r.Float64()*5)
		n := 1 + r.Intn(300)
		for i := 0; i < n; i++ {
			_ = h.Add(r.Float64() * 50)
		}
		sum := 0.0
		for _, p := range h.PDF() {
			sum += p.Y
		}
		return almostEq(sum, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}
