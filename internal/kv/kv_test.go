package kv

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/topology/transitstub"
)

func testOverlay(t testing.TB, hosts int, seed int64) *core.Overlay {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m, err := transitstub.Generate(transitstub.DefaultConfig(hosts), rng)
	if err != nil {
		t.Fatal(err)
	}
	net, err := topology.Attach(m, m.G, topology.AttachOptions{
		Hosts: hosts, Routers: m.StubRouters, Spread: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	o, err := core.Build(net, core.Config{Depth: 2, Landmarks: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestPutGetRoundTrip(t *testing.T) {
	o := testOverlay(t, 60, 1)
	s, err := New(o, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Put(3, "alpha", []byte("file-location-1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Nodes) != 3 {
		t.Errorf("stored on %d nodes, want 3 (owner + 2 replicas)", len(rep.Nodes))
	}
	v, getRep, err := s.Get(40, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v, []byte("file-location-1")) {
		t.Errorf("value = %q", v)
	}
	if getRep.Fallbacks != 0 {
		t.Errorf("healthy read took %d fallbacks", getRep.Fallbacks)
	}
	if getRep.Latency < 0 || getRep.Hops < 0 {
		t.Error("negative cost")
	}
}

func TestGetMissing(t *testing.T) {
	o := testOverlay(t, 40, 2)
	s, _ := New(o, 1)
	if _, _, err := s.Get(0, "nope"); err == nil {
		t.Error("missing key should error")
	}
}

func TestValueIsolation(t *testing.T) {
	o := testOverlay(t, 40, 3)
	s, _ := New(o, 1)
	val := []byte("mutate-me")
	_, _ = s.Put(0, "k", val)
	val[0] = 'X'
	got, _, err := s.Get(1, "k")
	if err != nil {
		t.Fatal(err)
	}
	if got[0] == 'X' {
		t.Error("stored value aliased the caller's buffer")
	}
	got[1] = 'Y'
	got2, _, _ := s.Get(1, "k")
	if got2[1] == 'Y' {
		t.Error("returned value aliased the stored buffer")
	}
}

func TestReplicaFallbackAfterFailure(t *testing.T) {
	o := testOverlay(t, 60, 4)
	s, _ := New(o, 3)
	rep, err := s.Put(0, "resilient", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	owner := rep.Nodes[0]
	s.MarkDown(owner)
	v, getRep, err := s.Get(10, "resilient")
	if err != nil {
		t.Fatalf("read after owner failure: %v", err)
	}
	if string(v) != "v" {
		t.Errorf("value %q", v)
	}
	if getRep.Fallbacks == 0 {
		t.Error("read should have fallen back to a replica")
	}
	// All replicas down -> not found.
	for _, n := range rep.Nodes {
		s.MarkDown(n)
	}
	if _, _, downErr := s.Get(10, "resilient"); downErr == nil {
		t.Error("read with all replicas down should fail")
	}
	// Revive and re-put.
	s.MarkUp(owner)
	if _, putErr := s.Put(0, "resilient", []byte("v2")); putErr != nil {
		t.Fatal(putErr)
	}
	v, _, err = s.Get(10, "resilient")
	if err != nil || string(v) != "v2" {
		t.Errorf("after revive: %q %v", v, err)
	}
}

// TestQuorumAndRepairAccounting: puts report acks, version stamps and
// write-quorum state; gets repair replicas that lost their copy.
func TestQuorumAndRepairAccounting(t *testing.T) {
	o := testOverlay(t, 60, 9)
	s, _ := New(o, 2) // factor 3, majority write quorum 2
	rep, err := s.Put(0, "q", []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Acks != 3 || !rep.Quorum {
		t.Errorf("healthy put: acks=%d quorum=%v, want 3 acks with quorum", rep.Acks, rep.Quorum)
	}
	if rep.Version != 1 {
		t.Errorf("first put stamped version %d, want 1", rep.Version)
	}
	rep2, err := s.Put(1, "q", []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Version <= rep.Version {
		t.Errorf("re-put version %d did not advance past %d", rep2.Version, rep.Version)
	}

	owner, replica1 := rep.Nodes[0], rep.Nodes[1]
	// Crash a replica (losing its copy), revive it empty, then crash the
	// owner: the read must fall back past the empty replica, return the
	// surviving copy, and re-install it on the revived node.
	s.MarkDown(replica1)
	s.MarkUp(replica1)
	s.MarkDown(owner)
	v, getRep, err := s.Get(10, "q")
	if err != nil {
		t.Fatalf("read after failures: %v", err)
	}
	if string(v) != "v2" {
		t.Errorf("value %q, want freshest write", v)
	}
	if getRep.Version != rep2.Version {
		t.Errorf("get returned version %d, want %d", getRep.Version, rep2.Version)
	}
	if getRep.Repairs != 1 {
		t.Errorf("read repaired %d replicas, want 1 (the revived empty one)", getRep.Repairs)
	}
	if s.KeysAt(replica1) != 1 {
		t.Errorf("revived replica holds %d keys after read-repair, want 1", s.KeysAt(replica1))
	}

	// With only one live member the put still lands but reports a missed
	// write quorum.
	for _, n := range rep.Nodes[1:] {
		s.MarkDown(n)
	}
	s.MarkUp(owner)
	solo, err := s.Put(0, "q", []byte("v3"))
	if err != nil {
		t.Fatal(err)
	}
	if solo.Acks != 1 || solo.Quorum {
		t.Errorf("degraded put: acks=%d quorum=%v, want 1 ack without quorum", solo.Acks, solo.Quorum)
	}
}

func TestDelete(t *testing.T) {
	o := testOverlay(t, 40, 5)
	s, _ := New(o, 2)
	_, _ = s.Put(0, "gone", []byte("x"))
	if _, err := s.Delete(5, "gone"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(0, "gone"); err == nil {
		t.Error("deleted key still readable")
	}
	if s.TotalKeys() != 0 {
		t.Errorf("TotalKeys = %d after delete", s.TotalKeys())
	}
}

func TestLoadDistribution(t *testing.T) {
	o := testOverlay(t, 80, 6)
	s, _ := New(o, 0)
	for i := 0; i < 400; i++ {
		if _, err := s.Put(i%o.N(), fmt.Sprintf("key-%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if s.TotalKeys() != 400 {
		t.Fatalf("TotalKeys = %d", s.TotalKeys())
	}
	// Consistent hashing should spread keys: no node hoards more than an
	// outsized share.
	max := 0
	for i := 0; i < o.N(); i++ {
		if k := s.KeysAt(i); k > max {
			max = k
		}
	}
	if max > 80 {
		t.Errorf("hottest node stores %d of 400 keys", max)
	}
}

func TestInvalidArguments(t *testing.T) {
	o := testOverlay(t, 30, 7)
	if _, err := New(o, -1); err == nil {
		t.Error("negative replicas accepted")
	}
	s, _ := New(o, 1)
	if _, err := s.Put(-1, "k", nil); err == nil {
		t.Error("negative origin accepted in Put")
	}
	if _, _, err := s.Get(999, "k"); err == nil {
		t.Error("out-of-range origin accepted in Get")
	}
	if _, err := s.Delete(999, "k"); err == nil {
		t.Error("out-of-range origin accepted in Delete")
	}
	// MarkDown/MarkUp ignore out-of-range nodes.
	s.MarkDown(-5)
	s.MarkUp(1 << 20)
}

func TestConcurrentAccess(t *testing.T) {
	o := testOverlay(t, 50, 8)
	s, _ := New(o, 2)
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				if _, err := s.Put(w, key, []byte(key)); err != nil {
					done <- err
					return
				}
				if v, _, err := s.Get((w+i)%o.N(), key); err != nil || string(v) != key {
					done <- fmt.Errorf("get %q: %q %v", key, v, err)
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
