// Package kv layers a file-location service over the HIERAS overlay: the
// use case motivating the paper ("the node returns the location
// information of the requested file to the originator"). Values are stored
// at the key's owner and replicated on its successor list; reads route
// with HIERAS and fall back to replicas when the owner is marked down.
package kv

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/id"
)

// Store is a DHT key-value store over an oracle-built overlay. It is safe
// for concurrent use.
type Store struct {
	o        *core.Overlay
	replicas int

	mu   sync.RWMutex
	data []map[string][]byte // per overlay node
	down []bool
}

// New creates a store replicating each value on the owner plus `replicas`
// successors.
func New(o *core.Overlay, replicas int) (*Store, error) {
	if replicas < 0 {
		return nil, fmt.Errorf("kv: negative replica count %d", replicas)
	}
	data := make([]map[string][]byte, o.N())
	for i := range data {
		data[i] = make(map[string][]byte)
	}
	return &Store{o: o, replicas: replicas, data: data, down: make([]bool, o.N())}, nil
}

// CostReport accounts one operation's routing effort.
type CostReport struct {
	Hops    int
	Latency float64
	// Fallbacks counts replica nodes tried after the primary (reads only).
	Fallbacks int
	// Nodes are the overlay node indexes written (puts only).
	Nodes []int
}

// keyID maps an application key to the identifier space.
func keyID(key string) id.ID { return core.KeyID(key) }

// Put routes from origin to the key's owner and stores value there and on
// the owner's live successors.
func (s *Store) Put(origin int, key string, value []byte) (CostReport, error) {
	if origin < 0 || origin >= s.o.N() {
		return CostReport{}, fmt.Errorf("kv: origin %d out of range", origin)
	}
	res := s.o.Route(origin, keyID(key))
	rep := CostReport{Hops: res.NumHops(), Latency: res.Latency}
	s.mu.Lock()
	defer s.mu.Unlock()
	stored := 0
	targets := append([]int{res.Dest}, s.o.Global().SuccessorList(res.Dest, s.replicas)...)
	v := make([]byte, len(value))
	copy(v, value)
	for _, n := range targets {
		if s.down[n] {
			continue
		}
		s.data[n][key] = v
		rep.Nodes = append(rep.Nodes, n)
		stored++
	}
	if stored == 0 {
		return rep, fmt.Errorf("kv: no live node available to store %q", key)
	}
	return rep, nil
}

// Get routes from origin to the key's owner and returns the value,
// falling back along the successor list when nodes are down or missing
// the key. Each fallback adds one extra hop's latency.
func (s *Store) Get(origin int, key string) ([]byte, CostReport, error) {
	if origin < 0 || origin >= s.o.N() {
		return nil, CostReport{}, fmt.Errorf("kv: origin %d out of range", origin)
	}
	res := s.o.Route(origin, keyID(key))
	rep := CostReport{Hops: res.NumHops(), Latency: res.Latency}
	s.mu.RLock()
	defer s.mu.RUnlock()
	candidates := append([]int{res.Dest}, s.o.Global().SuccessorList(res.Dest, s.replicas)...)
	prev := res.Dest
	for i, n := range candidates {
		if i > 0 {
			rep.Fallbacks++
			rep.Hops++
			rep.Latency += s.o.Network().Latency(s.o.Node(prev).Host, s.o.Node(n).Host)
			prev = n
		}
		if s.down[n] {
			continue
		}
		if v, ok := s.data[n][key]; ok {
			out := make([]byte, len(v))
			copy(out, v)
			return out, rep, nil
		}
	}
	return nil, rep, fmt.Errorf("kv: key %q not found", key)
}

// Delete removes the key from the owner and every replica.
func (s *Store) Delete(origin int, key string) (CostReport, error) {
	if origin < 0 || origin >= s.o.N() {
		return CostReport{}, fmt.Errorf("kv: origin %d out of range", origin)
	}
	res := s.o.Route(origin, keyID(key))
	rep := CostReport{Hops: res.NumHops(), Latency: res.Latency}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, n := range append([]int{res.Dest}, s.o.Global().SuccessorList(res.Dest, s.replicas)...) {
		delete(s.data[n], key)
	}
	return rep, nil
}

// MarkDown simulates a node failure: the node stops answering reads and
// receiving writes (its stored data is considered lost).
func (s *Store) MarkDown(node int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if node >= 0 && node < len(s.down) {
		s.down[node] = true
		s.data[node] = make(map[string][]byte)
	}
}

// MarkUp revives a node (empty, as a rejoined node would be).
func (s *Store) MarkUp(node int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if node >= 0 && node < len(s.down) {
		s.down[node] = false
	}
}

// KeysAt reports how many keys node i currently stores.
func (s *Store) KeysAt(i int) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data[i])
}

// TotalKeys reports the number of (node, key) pairs stored system-wide.
func (s *Store) TotalKeys() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0
	for _, m := range s.data {
		total += len(m)
	}
	return total
}
