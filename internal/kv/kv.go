// Package kv layers a file-location service over the HIERAS overlay: the
// use case motivating the paper ("the node returns the location
// information of the requested file to the originator"). It is the
// oracle-side façade of the replicated KV: routing costs come from the
// overlay oracle, while storage semantics — versioned last-writer-wins
// items, replica sets on the owner's successor list, quorum accounting
// and read-repair — are the ones internal/replica implements for the
// live stack, so simulation results and the wire protocol agree on what
// a replicated put or get means.
package kv

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/replica"
	"repro/internal/wire"
)

// Store is a DHT key-value store over an oracle-built overlay. Each
// overlay node holds a replica.Engine — the same versioned store a live
// node runs — and every value lives on the key owner's replica set. It
// is safe for concurrent use.
type Store struct {
	o    *core.Overlay
	opts replica.Options

	mu     sync.RWMutex
	stores []*replica.Engine // per overlay node
	down   []bool
}

// New creates a store replicating each value on the owner plus `replicas`
// successors — a replication factor of replicas+1, with the default
// majority write quorum and single-answer read quorum for that factor.
func New(o *core.Overlay, replicas int) (*Store, error) {
	if replicas < 0 {
		return nil, fmt.Errorf("kv: negative replica count %d", replicas)
	}
	stores := make([]*replica.Engine, o.N())
	for i := range stores {
		stores[i] = replica.NewEngine()
	}
	return &Store{
		o:      o,
		opts:   replica.Options{Factor: replicas + 1}.WithDefaults(),
		stores: stores,
		down:   make([]bool, o.N()),
	}, nil
}

// CostReport accounts one operation's routing effort and quorum outcome.
type CostReport struct {
	Hops    int
	Latency float64
	// Fallbacks counts replica nodes tried after the primary (reads only).
	Fallbacks int
	// Nodes are the overlay node indexes written (puts only).
	Nodes []int
	// Acks counts replica-set members that accepted the write (puts) or
	// answered the poll (gets).
	Acks int
	// Quorum reports whether the operation reached its configured
	// quorum (write quorum for puts, read quorum for gets).
	Quorum bool
	// Version is the stamp the winning item carries: the stamp a put
	// installed, or the freshest one a get returned.
	Version uint64
	// Repairs counts stale or missing replicas refreshed by read-repair
	// (gets only).
	Repairs int
}

// keyID maps an application key to the identifier space.
func keyID(key string) id.ID { return core.KeyID(key) }

// targets returns the key owner's replica set as overlay node indexes:
// the owner first, then its successors in list order, factor members in
// total (fewer on tiny overlays).
func (s *Store) targets(owner int) []int {
	succs := s.o.Global().SuccessorList(owner, s.opts.Factor-1)
	out := make([]int, 0, 1+len(succs))
	out = append(out, owner)
	out = append(out, succs...)
	return out
}

// Put routes from origin to the key's owner, stamps the value past the
// freshest version held by the replica set, and installs it on every
// live member. The put is acknowledged when at least one copy landed;
// CostReport.Quorum reports whether the configured write quorum was
// reached.
func (s *Store) Put(origin int, key string, value []byte) (CostReport, error) {
	if origin < 0 || origin >= s.o.N() {
		return CostReport{}, fmt.Errorf("kv: origin %d out of range", origin)
	}
	res := s.o.Route(origin, keyID(key))
	rep := CostReport{Hops: res.NumHops(), Latency: res.Latency}
	s.mu.Lock()
	defer s.mu.Unlock()
	targets := s.targets(res.Dest)
	var seen uint64
	for _, n := range targets {
		if s.down[n] {
			continue
		}
		if it, ok := s.stores[n].Get(key); ok && it.Version > seen {
			seen = it.Version
		}
	}
	version, writer := s.stores[origin].Stamp(key, fmt.Sprintf("n%d", origin), seen)
	item := wire.StoreItem{Key: key, Value: append([]byte(nil), value...), Version: version, Writer: writer}
	rep.Version = version
	for _, n := range targets {
		if s.down[n] {
			continue
		}
		s.stores[n].Apply(item)
		rep.Nodes = append(rep.Nodes, n)
		rep.Acks++
	}
	need := s.opts.WriteQuorum
	if need > len(targets) {
		need = len(targets)
	}
	rep.Quorum = rep.Acks >= need
	if rep.Acks == 0 {
		return rep, fmt.Errorf("kv: no live node available to store %q", key)
	}
	return rep, nil
}

// Get routes from origin to the key's owner and polls the replica set in
// ring order until the read quorum answered and a copy was found,
// falling back along the successor list when nodes are down or missing
// the key. Each fallback adds one extra hop's latency. The freshest item
// wins, and members that answered stale or missing are read-repaired
// with it before returning.
func (s *Store) Get(origin int, key string) ([]byte, CostReport, error) {
	if origin < 0 || origin >= s.o.N() {
		return nil, CostReport{}, fmt.Errorf("kv: origin %d out of range", origin)
	}
	res := s.o.Route(origin, keyID(key))
	rep := CostReport{Hops: res.NumHops(), Latency: res.Latency}
	s.mu.RLock()
	defer s.mu.RUnlock()
	candidates := s.targets(res.Dest)
	need := s.opts.ReadQuorum
	if need > len(candidates) {
		need = len(candidates)
	}
	var best wire.StoreItem
	found := false
	var polled []int
	prev := res.Dest
	for i, n := range candidates {
		if i > 0 {
			rep.Fallbacks++
			rep.Hops++
			rep.Latency += s.o.Network().Latency(s.o.Node(prev).Host, s.o.Node(n).Host)
			prev = n
		}
		if s.down[n] {
			continue
		}
		rep.Acks++
		polled = append(polled, n)
		if it, ok := s.stores[n].Get(key); ok {
			if !found || replica.Supersedes(it, best) {
				best = it
				found = true
			}
		}
		if found && rep.Acks >= need {
			break
		}
	}
	if !found {
		return nil, rep, fmt.Errorf("kv: key %q not found", key)
	}
	rep.Quorum = rep.Acks >= need
	rep.Version = best.Version
	for _, n := range polled {
		if it, ok := s.stores[n].Get(key); ok && it.Version == best.Version && it.Writer == best.Writer {
			continue
		}
		if s.stores[n].Apply(best) {
			rep.Repairs++
		}
	}
	out := make([]byte, len(best.Value))
	copy(out, best.Value)
	return out, rep, nil
}

// Delete removes the key from the owner and every replica. The oracle
// store keeps no tombstones: a delete concurrent with a put is resolved
// by whichever the caller issues last.
func (s *Store) Delete(origin int, key string) (CostReport, error) {
	if origin < 0 || origin >= s.o.N() {
		return CostReport{}, fmt.Errorf("kv: origin %d out of range", origin)
	}
	res := s.o.Route(origin, keyID(key))
	rep := CostReport{Hops: res.NumHops(), Latency: res.Latency}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, n := range s.targets(res.Dest) {
		s.stores[n].Drop(key)
	}
	return rep, nil
}

// MarkDown simulates a node failure: the node stops answering reads and
// receiving writes (its stored data is considered lost).
func (s *Store) MarkDown(node int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if node >= 0 && node < len(s.down) {
		s.down[node] = true
		s.stores[node] = replica.NewEngine()
	}
}

// MarkUp revives a node (empty, as a rejoined node would be).
func (s *Store) MarkUp(node int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if node >= 0 && node < len(s.down) {
		s.down[node] = false
	}
}

// KeysAt reports how many keys node i currently stores.
func (s *Store) KeysAt(i int) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stores[i].Len()
}

// TotalKeys reports the number of (node, key) pairs stored system-wide.
func (s *Store) TotalKeys() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0
	for _, e := range s.stores {
		total += e.Len()
	}
	return total
}
