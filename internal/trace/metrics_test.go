package trace

import (
	"math"
	"testing"

	"repro/internal/metrics"
)

func testSnapshot() metrics.HistogramSnapshot {
	h := metrics.NewRegistry().NewHistogram("x_seconds", "test", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.6, 3, 10} {
		h.Observe(v)
	}
	return h.Snapshot()
}

func TestHistogramPDF(t *testing.T) {
	pdf := HistogramPDF(testSnapshot())
	if len(pdf) != 4 {
		t.Fatalf("got %d points, want 4 (3 buckets + overflow)", len(pdf))
	}
	wantX := []float64{0, 1, 2, 4}
	wantY := []float64{0.2, 0.4, 0.2, 0.2}
	for i, p := range pdf {
		if p.X != wantX[i] || math.Abs(p.Y-wantY[i]) > 1e-12 {
			t.Errorf("pdf[%d] = %+v, want {%g %g}", i, p, wantX[i], wantY[i])
		}
	}
}

func TestHistogramCDF(t *testing.T) {
	cdf := HistogramCDF(testSnapshot())
	wantX := []float64{1, 2, 4}
	wantY := []float64{0.2, 0.6, 0.8, 1}
	for i, p := range cdf {
		if i < len(wantX) && p.X != wantX[i] {
			t.Errorf("cdf[%d].X = %g, want %g", i, p.X, wantX[i])
		}
		if math.Abs(p.Y-wantY[i]) > 1e-12 {
			t.Errorf("cdf[%d].Y = %g, want %g", i, p.Y, wantY[i])
		}
	}
	if !math.IsInf(cdf[len(cdf)-1].X, 1) {
		t.Errorf("overflow bucket X = %g, want +Inf", cdf[len(cdf)-1].X)
	}
	if cdf[len(cdf)-1].Y != 1 {
		t.Errorf("CDF does not reach 1: %g", cdf[len(cdf)-1].Y)
	}
}

func TestHistogramCurvesEmpty(t *testing.T) {
	h := metrics.NewRegistry().NewHistogram("y_seconds", "test", []float64{1})
	for _, p := range append(HistogramPDF(h.Snapshot()), HistogramCDF(h.Snapshot())...) {
		if p.Y != 0 {
			t.Errorf("empty histogram produced nonzero Y: %+v", p)
		}
	}
}
