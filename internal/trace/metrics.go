package trace

import (
	"math"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// HistogramPDF converts a metrics histogram snapshot into the per-bucket
// probability curve the stats/trace renderers draw: X is each bucket's
// lower edge (0 for the first), Y the fraction of observations that fell
// in it. The overflow bucket appears last with X equal to the largest
// upper bound.
func HistogramPDF(s metrics.HistogramSnapshot) []stats.Point {
	out := make([]stats.Point, 0, len(s.Counts))
	lower := 0.0
	for i, c := range s.Counts {
		x := lower
		if i < len(s.Uppers) {
			lower = s.Uppers[i]
		}
		out = append(out, stats.Point{X: x, Y: frac(c, s.Count)})
	}
	return out
}

// HistogramCDF converts a metrics histogram snapshot into a cumulative
// distribution curve: X is each bucket's upper bound (+Inf for the
// overflow bucket), Y the fraction of observations at or below it.
func HistogramCDF(s metrics.HistogramSnapshot) []stats.Point {
	out := make([]stats.Point, 0, len(s.Counts))
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		x := math.Inf(1)
		if i < len(s.Uppers) {
			x = s.Uppers[i]
		}
		out = append(out, stats.Point{X: x, Y: frac(cum, s.Count)})
	}
	return out
}

func frac(c, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(c) / float64(total)
}
