package trace

import (
	"fmt"

	"repro/internal/stats"
)

// Analysis is an offline summary of a routing trace — the same quantities
// the paper's §4.3 reports, recomputed from a recorded request stream.
type Analysis struct {
	Requests int

	Hops    stats.Summary
	Latency stats.Summary

	// LowerHopShare / LowerLatencyShare are the fractions of hops and
	// latency spent in lower-layer rings across the whole trace.
	LowerHopShare     float64
	LowerLatencyShare float64

	// HopsPDF has one probability per hop count; LatencyCDF uses 20 ms
	// buckets, matching the figures in the paper.
	HopsPDF    []stats.Point
	LatencyCDF []stats.Point
}

// Analyze computes the full analysis of a recorded trace.
func Analyze(records []Record) (Analysis, error) {
	if len(records) == 0 {
		return Analysis{}, fmt.Errorf("trace: empty trace")
	}
	hops := make([]float64, len(records))
	lats := make([]float64, len(records))
	var totalHops, lowerHops int
	var totalLat, lowerLat float64
	hopsHist, err := stats.NewHistogram(1)
	if err != nil {
		return Analysis{}, err
	}
	latHist, err := stats.NewHistogram(20)
	if err != nil {
		return Analysis{}, err
	}
	for i, r := range records {
		if r.Hops < 0 || r.Lower < 0 || r.Lower > r.Hops {
			return Analysis{}, fmt.Errorf("trace: record %d has inconsistent hop counts", i)
		}
		if r.Latency < 0 || r.LowerMs < 0 || r.LowerMs > r.Latency+1e-9 {
			return Analysis{}, fmt.Errorf("trace: record %d has inconsistent latencies", i)
		}
		hops[i] = float64(r.Hops)
		lats[i] = r.Latency
		totalHops += r.Hops
		lowerHops += r.Lower
		totalLat += r.Latency
		lowerLat += r.LowerMs
		if err := hopsHist.Add(float64(r.Hops)); err != nil {
			return Analysis{}, err
		}
		if err := latHist.Add(r.Latency); err != nil {
			return Analysis{}, err
		}
	}
	a := Analysis{
		Requests:   len(records),
		Hops:       stats.Summarize(hops),
		Latency:    stats.Summarize(lats),
		HopsPDF:    hopsHist.PDF(),
		LatencyCDF: latHist.CDF(),
	}
	if totalHops > 0 {
		a.LowerHopShare = float64(lowerHops) / float64(totalHops)
	}
	if totalLat > 0 {
		a.LowerLatencyShare = lowerLat / totalLat
	}
	return a, nil
}
