// Package trace records completed routing procedures as flat records and
// serialises them to CSV, enabling the "trace-driven" analysis style of
// the paper: run the simulator once, keep the trace, recompute any
// distribution offline (or feed it to external plotting tools).
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/core"
)

// Record is one completed routing request.
type Record struct {
	Seq     int     // request sequence number
	Origin  int     // overlay node index
	Dest    int     // overlay node index
	Hops    int     // total routing hops
	Lower   int     // hops taken in layers >= 2
	Latency float64 // total latency, ms
	LowerMs float64 // latency accumulated in layers >= 2, ms
}

// FromRoute converts a core.RouteResult into a Record.
func FromRoute(seq int, r core.RouteResult) Record {
	return Record{
		Seq:     seq,
		Origin:  r.Origin,
		Dest:    r.Dest,
		Hops:    r.NumHops(),
		Lower:   r.LowerHops,
		Latency: r.Latency,
		LowerMs: r.LowerLatency,
	}
}

var header = []string{"seq", "origin", "dest", "hops", "lower_hops", "latency_ms", "lower_latency_ms"}

// Writer streams records as CSV.
type Writer struct {
	w     *csv.Writer
	wrote bool
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: csv.NewWriter(w)} }

// Write appends one record (writing the header first).
func (t *Writer) Write(r Record) error {
	if !t.wrote {
		if err := t.w.Write(header); err != nil {
			return err
		}
		t.wrote = true
	}
	row := []string{
		strconv.Itoa(r.Seq),
		strconv.Itoa(r.Origin),
		strconv.Itoa(r.Dest),
		strconv.Itoa(r.Hops),
		strconv.Itoa(r.Lower),
		strconv.FormatFloat(r.Latency, 'g', -1, 64),
		strconv.FormatFloat(r.LowerMs, 'g', -1, 64),
	}
	return t.w.Write(row)
}

// Flush flushes buffered rows and reports any write error.
func (t *Writer) Flush() error {
	t.w.Flush()
	return t.w.Error()
}

// Read parses a CSV trace produced by Writer.
func Read(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(rows) == 0 {
		return nil, nil
	}
	if len(rows[0]) != len(header) || rows[0][0] != header[0] {
		return nil, fmt.Errorf("trace: unrecognised header %v", rows[0])
	}
	out := make([]Record, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != len(header) {
			return nil, fmt.Errorf("trace: row %d has %d fields", i+1, len(row))
		}
		var rec Record
		var errs [7]error
		rec.Seq, errs[0] = strconv.Atoi(row[0])
		rec.Origin, errs[1] = strconv.Atoi(row[1])
		rec.Dest, errs[2] = strconv.Atoi(row[2])
		rec.Hops, errs[3] = strconv.Atoi(row[3])
		rec.Lower, errs[4] = strconv.Atoi(row[4])
		rec.Latency, errs[5] = strconv.ParseFloat(row[5], 64)
		rec.LowerMs, errs[6] = strconv.ParseFloat(row[6], 64)
		for _, e := range errs {
			if e != nil {
				return nil, fmt.Errorf("trace: row %d: %v", i+1, e)
			}
		}
		out = append(out, rec)
	}
	return out, nil
}
