package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/id"
)

func sample() []Record {
	return []Record{
		{Seq: 0, Origin: 3, Dest: 9, Hops: 6, Lower: 4, Latency: 310.5, LowerMs: 120.25},
		{Seq: 1, Origin: 1, Dest: 1, Hops: 0, Lower: 0, Latency: 0, LowerMs: 0},
		{Seq: 2, Origin: 7, Dest: 2, Hops: 8, Lower: 5, Latency: 512.125, LowerMs: 300},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range sample() {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	if len(got) != len(want) {
		t.Fatalf("got %d records", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestReadEmpty(t *testing.T) {
	got, err := Read(strings.NewReader(""))
	if err != nil || got != nil {
		t.Errorf("empty read: %v %v", got, err)
	}
}

func TestReadBadHeader(t *testing.T) {
	if _, err := Read(strings.NewReader("a,b,c\n1,2,3\n")); err == nil {
		t.Error("bad header accepted")
	}
}

func TestReadBadField(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Write(Record{})
	_ = w.Flush()
	s := strings.Replace(buf.String(), "0,0,0,0,0,0,0", "x,0,0,0,0,0,0", 1)
	if _, err := Read(strings.NewReader(s)); err == nil {
		t.Error("non-numeric field accepted")
	}
}

func TestFromRoute(t *testing.T) {
	r := core.RouteResult{
		Origin: 2, Dest: 5, Key: id.HashString("k"),
		Hops: []core.Hop{
			{Layer: 2, From: 2, To: 3, Latency: 10},
			{Layer: 1, From: 3, To: 5, Latency: 100},
		},
		Latency: 110, LowerHops: 1, LowerLatency: 10,
	}
	rec := FromRoute(7, r)
	want := Record{Seq: 7, Origin: 2, Dest: 5, Hops: 2, Lower: 1, Latency: 110, LowerMs: 10}
	if rec != want {
		t.Errorf("FromRoute = %+v, want %+v", rec, want)
	}
}

func TestHeaderWrittenOnce(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Write(Record{})
	_ = w.Write(Record{Seq: 1})
	_ = w.Flush()
	if strings.Count(buf.String(), "seq,origin") != 1 {
		t.Error("header should appear exactly once")
	}
}
