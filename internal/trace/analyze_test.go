package trace

import (
	"math"
	"testing"
)

func TestAnalyzeBasics(t *testing.T) {
	records := []Record{
		{Hops: 4, Lower: 3, Latency: 100, LowerMs: 30},
		{Hops: 6, Lower: 3, Latency: 300, LowerMs: 90},
		{Hops: 0, Lower: 0, Latency: 0, LowerMs: 0},
	}
	a, err := Analyze(records)
	if err != nil {
		t.Fatal(err)
	}
	if a.Requests != 3 {
		t.Errorf("Requests = %d", a.Requests)
	}
	if math.Abs(a.Hops.Mean-10.0/3) > 1e-9 {
		t.Errorf("mean hops = %v", a.Hops.Mean)
	}
	if math.Abs(a.LowerHopShare-0.6) > 1e-9 {
		t.Errorf("lower hop share = %v, want 0.6", a.LowerHopShare)
	}
	if math.Abs(a.LowerLatencyShare-0.3) > 1e-9 {
		t.Errorf("lower latency share = %v, want 0.3", a.LowerLatencyShare)
	}
	// PDF over hop counts 0..6.
	if len(a.HopsPDF) != 7 {
		t.Fatalf("pdf buckets = %d", len(a.HopsPDF))
	}
	if math.Abs(a.HopsPDF[4].Y-1.0/3) > 1e-9 {
		t.Errorf("pdf[4] = %v", a.HopsPDF[4].Y)
	}
	// CDF ends at 1.
	if last := a.LatencyCDF[len(a.LatencyCDF)-1].Y; math.Abs(last-1) > 1e-9 {
		t.Errorf("cdf end = %v", last)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	if _, err := Analyze(nil); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestAnalyzeRejectsInconsistent(t *testing.T) {
	bad := [][]Record{
		{{Hops: 2, Lower: 3, Latency: 10, LowerMs: 5}},  // lower > hops
		{{Hops: 3, Lower: 1, Latency: 10, LowerMs: 50}}, // lower latency > total
		{{Hops: -1, Lower: 0, Latency: 10}},             // negative hops
		{{Hops: 1, Lower: 0, Latency: -5}},              // negative latency
	}
	for i, records := range bad {
		if _, err := Analyze(records); err == nil {
			t.Errorf("case %d: inconsistent record accepted", i)
		}
	}
}
