package routes

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/wire"
)

func ev(layer int, ring, addr string, kind uint8, stamp uint64) wire.RouteEvent {
	var id [20]byte
	copy(id[:], addr)
	return wire.RouteEvent{Layer: layer, Ring: ring, Peer: wire.Peer{Addr: addr, ID: id}, Kind: kind, Stamp: stamp}
}

// TestMergeRule pins the gossip merge order one case at a time: newer
// stamps win, equal stamps break toward the departure, and superseded
// or replayed events never move the table.
func TestMergeRule(t *testing.T) {
	cases := []struct {
		name    string
		have    wire.RouteEvent
		apply   wire.RouteEvent
		applied bool
		want    uint8 // surviving kind
	}{
		{"newer join beats older leave", ev(1, "g", "a", wire.RouteLeave, 5), ev(1, "g", "a", wire.RouteJoin, 6), true, wire.RouteJoin},
		{"newer leave beats older join", ev(1, "g", "a", wire.RouteJoin, 5), ev(1, "g", "a", wire.RouteLeave, 6), true, wire.RouteLeave},
		{"newer evict beats older join", ev(1, "g", "a", wire.RouteJoin, 5), ev(1, "g", "a", wire.RouteEvict, 6), true, wire.RouteEvict},
		{"older event loses", ev(1, "g", "a", wire.RouteJoin, 9), ev(1, "g", "a", wire.RouteEvict, 3), false, wire.RouteJoin},
		{"equal stamp: evict tombstone beats join", ev(1, "g", "a", wire.RouteJoin, 7), ev(1, "g", "a", wire.RouteEvict, 7), true, wire.RouteEvict},
		{"equal stamp: leave beats join", ev(1, "g", "a", wire.RouteJoin, 7), ev(1, "g", "a", wire.RouteLeave, 7), true, wire.RouteLeave},
		{"equal stamp: join does not beat evict", ev(1, "g", "a", wire.RouteEvict, 7), ev(1, "g", "a", wire.RouteJoin, 7), false, wire.RouteEvict},
		{"exact replay is a no-op", ev(1, "g", "a", wire.RouteJoin, 7), ev(1, "g", "a", wire.RouteJoin, 7), false, wire.RouteJoin},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tbl := New()
			if !tbl.Apply(tc.have) {
				t.Fatal("seeding an empty table must apply")
			}
			if got := tbl.Apply(tc.apply); got != tc.applied {
				t.Errorf("Apply advanced=%v, want %v", got, tc.applied)
			}
			cur, ok := tbl.Latest(1, "g", "a")
			if !ok {
				t.Fatal("subject vanished")
			}
			if cur.Kind != tc.want {
				t.Errorf("surviving kind = %d, want %d", cur.Kind, tc.want)
			}
		})
	}
}

// TestMergeOrderIndependence: the merge is a join-semilattice, so any
// delivery order, duplication or batch split converges to the same
// event set — the property that lets converged tables compare equal at
// a simcheck fixpoint.
func TestMergeOrderIndependence(t *testing.T) {
	var all []wire.RouteEvent
	for i := 0; i < 6; i++ {
		addr := fmt.Sprintf("n%d", i%3)
		all = append(all,
			ev(1, "g", addr, wire.RouteJoin, uint64(i+1)),
			ev(2, "ring", addr, wire.RouteEvict, uint64(10-i)),
			ev(1, "g", addr, wire.RouteLeave, uint64(i+1)), // ties the join at i+1
		)
	}
	base := New()
	base.ApplyAll(all)
	want := base.Events()

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]wire.RouteEvent(nil), all...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		// Duplicate a random prefix to exercise replay idempotence.
		shuffled = append(shuffled, shuffled[:rng.Intn(len(shuffled))]...)
		tbl := New()
		tbl.ApplyAll(shuffled)
		if got := tbl.Events(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: order-dependent merge:\n got  %v\n want %v", trial, got, want)
		}
	}
}

// TestEvictionTombstone: an evicted peer drops out of the membership
// view, stays out under replayed joins, and only a strictly fresher
// re-announce (NextStamp) brings it back.
func TestEvictionTombstone(t *testing.T) {
	tbl := New()
	tbl.Apply(ev(1, "g", "a", wire.RouteJoin, 3))
	tbl.Apply(ev(1, "g", "b", wire.RouteJoin, 4))
	tbl.Apply(ev(1, "g", "a", wire.RouteEvict, 8))

	members := tbl.Members(1, "g")
	if len(members) != 1 || members[0].Addr != "b" {
		t.Fatalf("members after eviction = %v, want just b", members)
	}
	// A replayed (stale) join cannot resurrect the evicted peer.
	if tbl.Apply(ev(1, "g", "a", wire.RouteJoin, 3)) {
		t.Error("stale join resurrected an evicted peer")
	}
	// NextStamp outranks the tombstone, so a genuine rejoin lands.
	stamp := tbl.NextStamp(1, "g", "a", 2)
	if stamp != 9 {
		t.Errorf("NextStamp = %d, want tombstone+1 = 9", stamp)
	}
	if !tbl.Apply(ev(1, "g", "a", wire.RouteJoin, stamp)) {
		t.Error("rejoin with NextStamp did not apply")
	}
	if got := len(tbl.Members(1, "g")); got != 2 {
		t.Errorf("members after rejoin = %d, want 2", got)
	}
}

// TestDiff: the pull half of the exchange returns exactly the entries
// the pushed set is missing or holds stale — and nothing else, so a
// converged pair exchanges empty diffs.
func TestDiff(t *testing.T) {
	tbl := New()
	tbl.Apply(ev(1, "g", "a", wire.RouteJoin, 5))
	tbl.Apply(ev(1, "g", "b", wire.RouteLeave, 9))
	tbl.Apply(ev(2, "r", "c", wire.RouteJoin, 2))

	push := []wire.RouteEvent{
		ev(1, "g", "a", wire.RouteJoin, 5),  // identical: not in diff
		ev(1, "g", "b", wire.RouteJoin, 4),  // stale: our leave@9 is in diff
		ev(1, "g", "d", wire.RouteJoin, 11), // unknown to us: their novelty, not ours
	}
	got := tbl.Diff(push)
	want := []wire.RouteEvent{ev(1, "g", "b", wire.RouteLeave, 9), ev(2, "r", "c", wire.RouteJoin, 2)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Diff = %v, want %v", got, want)
	}
	// After merging the push, a repeat diff shrinks to what the pusher
	// still lacks; once both sides merge, diffs are empty both ways.
	tbl.ApplyAll(push)
	other := New()
	other.ApplyAll(push)
	other.ApplyAll(got)
	if d := tbl.Diff(other.Events()); len(d) != 0 {
		t.Fatalf("converged tables still diff: %v", d)
	}
	if d := other.Diff(tbl.Events()); len(d) != 0 {
		t.Fatalf("converged tables still diff (reverse): %v", d)
	}
}

// TestOwner: successor-in-ring-order semantics with wraparound, and no
// answer at all when the table has no live view of the ring.
func TestOwner(t *testing.T) {
	tbl := New()
	mk := func(addr string, hi byte) wire.RouteEvent {
		e := ev(1, "g", addr, wire.RouteJoin, 1)
		e.Peer.ID = [20]byte{hi}
		return e
	}
	tbl.Apply(mk("n10", 0x10))
	tbl.Apply(mk("n40", 0x40))
	tbl.Apply(mk("n90", 0x90))

	cases := []struct {
		key  byte
		want string
	}{
		{0x05, "n10"}, // before the first member
		{0x10, "n10"}, // exact hit
		{0x11, "n40"}, // between members
		{0x91, "n10"}, // wraps past the largest
	}
	for _, tc := range cases {
		got, ok := tbl.Owner(1, "g", [20]byte{tc.key})
		if !ok || got.Addr != tc.want {
			t.Errorf("Owner(key=%#x) = %q ok=%v, want %q", tc.key, got.Addr, ok, tc.want)
		}
	}
	if _, ok := tbl.Owner(1, "empty-ring", [20]byte{1}); ok {
		t.Error("Owner answered for a ring with no known members")
	}
	// Evict every member: the ring goes dark rather than guessing.
	for _, addr := range []string{"n10", "n40", "n90"} {
		tbl.Apply(ev(1, "g", addr, wire.RouteEvict, 99))
	}
	if _, ok := tbl.Owner(1, "g", [20]byte{0x05}); ok {
		t.Error("Owner answered from a fully tombstoned ring")
	}
}
