// Package routes implements the gossip-maintained near-full routing
// table behind the single-hop acceleration tier (ROADMAP item 2, after
// Monnerat & Amorim's effective single-hop DHT). Each node keeps one
// membership-event set per ring it knows about; the set is a
// join-semilattice under the merge rule "higher stamp wins, equal stamp
// breaks toward the higher kind", so gossip exchanges converge to the
// same table regardless of delivery order, duplication or interleaving.
//
// A table answers the one question the fast path needs — who owns this
// key in this ring? — from local memory. The answer may be stale; the
// caller's contract is to verify it with a single RPC (the same
// verify-or-fallback discipline the location cache uses), so staleness
// costs one wasted hop, never a wrong owner.
package routes

import (
	"bytes"
	"sort"
	"sync"

	"repro/internal/wire"
)

// entryKey identifies the subject of a membership fact: one peer in one
// ring of one layer.
type entryKey struct {
	layer int
	ring  string
	addr  string
}

// Table is a thread-safe membership-event set. The zero value is not
// ready; use New. Table methods never perform I/O and never call out,
// so a Table can be consulted under any lock discipline (the transport
// node reads it inside RPC handlers, the sim façade from parallel
// BatchLookup workers).
type Table struct {
	mu     sync.RWMutex
	events map[entryKey]wire.RouteEvent
}

// New returns an empty table.
func New() *Table {
	return &Table{events: make(map[entryKey]wire.RouteEvent)}
}

// beats reports whether event a supersedes event b under the merge
// order: a strictly higher stamp always wins; at an equal stamp the
// higher kind (departure over join) wins, so a concurrent
// leave/eviction is never lost to the join it races with.
func beats(a, b wire.RouteEvent) bool {
	if a.Stamp != b.Stamp {
		return a.Stamp > b.Stamp
	}
	return a.Kind > b.Kind
}

// Apply merges one event and reports whether it advanced the table.
// Replaying a merged event — or delivering a superseded one — is a
// no-op, which is what makes TRouteGossip idempotent.
func (t *Table) Apply(ev wire.RouteEvent) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.applyLocked(ev)
}

func (t *Table) applyLocked(ev wire.RouteEvent) bool {
	k := entryKey{layer: ev.Layer, ring: ev.Ring, addr: ev.Peer.Addr}
	cur, ok := t.events[k]
	if ok && !beats(ev, cur) {
		return false
	}
	t.events[k] = ev
	return true
}

// ApplyAll merges a batch and returns how many events advanced the
// table.
func (t *Table) ApplyAll(evs []wire.RouteEvent) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	applied := 0
	for _, ev := range evs {
		if t.applyLocked(ev) {
			applied++
		}
	}
	return applied
}

// Events returns the full event set sorted by (layer, ring, addr) — a
// deterministic order, so two converged tables render identical slices
// (the property the simcheck fixpoint detector relies on).
func (t *Table) Events() []wire.RouteEvent {
	t.mu.RLock()
	out := make([]wire.RouteEvent, 0, len(t.events))
	for _, ev := range t.events {
		out = append(out, ev)
	}
	t.mu.RUnlock()
	sortEvents(out)
	return out
}

func sortEvents(evs []wire.RouteEvent) {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Layer != evs[j].Layer {
			return evs[i].Layer < evs[j].Layer
		}
		if evs[i].Ring != evs[j].Ring {
			return evs[i].Ring < evs[j].Ring
		}
		return evs[i].Peer.Addr < evs[j].Peer.Addr
	})
}

// Len reports the number of (layer, ring, peer) subjects tracked.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.events)
}

// Diff returns the events this table holds that the given set does not
// supersede: entries absent from evs, or beaten by the local version.
// It is the pull half of a push-pull gossip exchange — computable from
// the pushed set alone, so a server can answer without calling anyone.
// The result is sorted like Events.
func (t *Table) Diff(evs []wire.RouteEvent) []wire.RouteEvent {
	theirs := make(map[entryKey]wire.RouteEvent, len(evs))
	for _, ev := range evs {
		theirs[entryKey{layer: ev.Layer, ring: ev.Ring, addr: ev.Peer.Addr}] = ev
	}
	t.mu.RLock()
	var out []wire.RouteEvent
	for k, mine := range t.events {
		if their, ok := theirs[k]; !ok || beats(mine, their) {
			out = append(out, mine)
		}
	}
	t.mu.RUnlock()
	sortEvents(out)
	return out
}

// Latest returns the current event for one subject.
func (t *Table) Latest(layer int, ring, addr string) (wire.RouteEvent, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ev, ok := t.events[entryKey{layer: layer, ring: ring, addr: addr}]
	return ev, ok
}

// Members returns the peers whose latest event in (layer, ring) is a
// join — the table's view of the ring's live membership — sorted by ID
// (ties by address) so the slice doubles as the successor-search ring.
func (t *Table) Members(layer int, ring string) []wire.Peer {
	t.mu.RLock()
	var out []wire.Peer
	for k, ev := range t.events {
		if k.layer == layer && k.ring == ring && ev.Kind == wire.RouteJoin {
			out = append(out, ev.Peer)
		}
	}
	t.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if c := bytes.Compare(out[i].ID[:], out[j].ID[:]); c != 0 {
			return c < 0
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

// Owner resolves a key to its owner in (layer, ring) per the table's
// current membership view: the first member whose ID is >= key in ring
// order, wrapping to the smallest ID. ok is false when the table knows
// no live member of the ring. The answer is exactly as fresh as the
// table — callers must treat it as a hint and verify before trusting.
func (t *Table) Owner(layer int, ring string, key [20]byte) (wire.Peer, bool) {
	members := t.Members(layer, ring)
	if len(members) == 0 {
		return wire.Peer{}, false
	}
	for _, p := range members {
		if bytes.Compare(p.ID[:], key[:]) >= 0 {
			return p, true
		}
	}
	return members[0], true
}

// NextStamp returns a stamp that supersedes whatever the table holds
// for the subject while tracking the caller's logical clock: the
// maximum of clock and latest+1. Announcing with NextStamp guarantees
// the new fact wins the merge everywhere — in particular it lets a
// rejoining node outrank its own eviction tombstone.
func (t *Table) NextStamp(layer int, ring, addr string, clock uint64) uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	next := clock
	if ev, ok := t.events[entryKey{layer: layer, ring: ring, addr: addr}]; ok && ev.Stamp+1 > next {
		next = ev.Stamp + 1
	}
	return next
}
