package transport

import (
	"container/list"
	"strconv"
	"sync"

	"repro/internal/id"
	"repro/internal/metrics"
	"repro/internal/wire"
)

// nodeMetrics bundles one node's registry and pre-curried children. Every
// node owns a private registry (or the one injected via Config.Metrics),
// so counters never mix across nodes sharing a process.
type nodeMetrics struct {
	reg *metrics.Registry
	wm  *wire.Metrics

	// hops[l-1] counts lookup hops taken in ring layer l (1 = global).
	hops           []*metrics.Counter
	ringClimbs     *metrics.Counter
	lookups        *metrics.Counter
	lookupErrors   *metrics.Counter
	evictions      *metrics.Counter
	walkRetries    *metrics.Counter
	walkRestarts   *metrics.Counter
	failoverClimbs *metrics.Counter
	repairs        *metrics.Counter
	cacheHits      *metrics.Counter
	cacheMisses    *metrics.Counter
	onehopHits     *metrics.Counter
	onehopStale    *metrics.Counter
	gossipBytes    *metrics.Counter
}

func newNodeMetrics(reg *metrics.Registry, depth int) *nodeMetrics {
	nm := &nodeMetrics{reg: reg, wm: wire.NewMetrics(reg)}
	hopsVec := reg.NewCounterVec("hops_total",
		"Hierarchical lookup hops by ring layer (1 = global ring).", "layer")
	nm.hops = make([]*metrics.Counter, depth)
	for l := 1; l <= depth; l++ {
		nm.hops[l-1] = hopsVec.With(strconv.Itoa(l))
	}
	nm.ringClimbs = reg.NewCounter("ring_climbs_total",
		"Lookup transitions from a lower ring to the next layer up.")
	nm.lookups = reg.NewCounter("lookups_total",
		"Hierarchical lookups started on this node.")
	nm.lookupErrors = reg.NewCounter("lookup_errors_total",
		"Hierarchical lookups that failed.")
	nm.evictions = reg.NewCounter("evictions_total",
		"Dead-peer evictions this node reported to other nodes.")
	nm.walkRetries = reg.NewCounter("walk_retries_total",
		"Iterative walk steps retried after an unreachable hop.")
	nm.walkRestarts = reg.NewCounter("walk_restarts_total",
		"Degraded walks restarted from this node after an unrecoverable dead hop.")
	nm.failoverClimbs = reg.NewCounter("failover_climbs_total",
		"Lookups that climbed out of an unroutable lower ring instead of aborting.")
	nm.repairs = reg.NewCounter("ring_repairs_total",
		"Isolated-layer repairs: successor state rebuilt from a landmark, ring table or predecessor.")
	nm.cacheHits = reg.NewCounter("cache_hits_total",
		"Location cache hits whose owner verification succeeded.")
	nm.cacheMisses = reg.NewCounter("cache_misses_total",
		"Location cache misses, including failed verifications.")
	nm.onehopHits = reg.NewCounter("onehop_hits_total",
		"Lookups answered by the one-hop route table with a verified owner.")
	nm.onehopStale = reg.NewCounter("onehop_stale_total",
		"One-hop table answers whose owner verification failed (stale table; lookup fell back to the classic walk).")
	nm.gossipBytes = reg.NewCounter("route_gossip_bytes_total",
		"Route-gossip payload bytes exchanged by this node's push-pull rounds (both directions, binary-codec size).")
	return nm
}

// Metrics returns the node's metrics registry (serve it with
// Registry.Handler, or dump it with Registry.WriteTo).
func (n *Node) Metrics() *metrics.Registry { return n.nm.reg }

// lookupCache is a fixed-capacity LRU of key→owner bindings learned from
// completed lookups (the DHash-style location caching of internal/cache,
// applied to the live node). Entries are only trusted after a one-RPC
// ownership verification, so staleness costs a miss, never a wrong owner.
type lookupCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are cacheEntry
	items map[id.ID]*list.Element
}

type cacheEntry struct {
	key   id.ID
	owner wire.Peer
}

func newLookupCache(capacity int) *lookupCache {
	return &lookupCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[id.ID]*list.Element, capacity),
	}
}

func (c *lookupCache) get(key id.ID) (wire.Peer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		return wire.Peer{}, false
	}
	c.order.MoveToFront(e)
	return e.Value.(cacheEntry).owner, true
}

func (c *lookupCache) put(key id.ID, owner wire.Peer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		e.Value = cacheEntry{key, owner}
		c.order.MoveToFront(e)
		return
	}
	if c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(cacheEntry).key)
	}
	c.items[key] = c.order.PushFront(cacheEntry{key, owner})
}

func (c *lookupCache) remove(key id.ID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		c.order.Remove(e)
		delete(c.items, key)
	}
}
