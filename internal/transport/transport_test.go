package transport

import (
	"context"
	"fmt"
	"repro/internal/lint/leakcheck"
	"sort"
	"testing"
	"time"

	"repro/internal/id"
	"repro/internal/wire"
)

// wireCall performs one connection-per-call exchange bounded by timeout.
func wireCall(addr string, req wire.Request, timeout time.Duration) (wire.Response, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return wire.Call(ctx, addr, req)
}

// cluster starts n live nodes placed in two virtual-coordinate clusters
// ("west" around (0,0) and "east" around (500,500)), with one landmark per
// cluster, and joins them into a depth-2 overlay.
func cluster(t *testing.T, n int) []*Node {
	t.Helper()
	nodes := make([]*Node, 0, n)
	coord := func(i int) [2]float64 {
		if i%2 == 0 {
			return [2]float64{float64(i), float64(i % 7)}
		}
		return [2]float64{500 + float64(i), 500 + float64(i%7)}
	}
	// The first two nodes double as landmarks; start them before computing
	// anyone's landmark list.
	for i := 0; i < 2; i++ {
		nd, err := Start("127.0.0.1:0", Config{Depth: 2, Coord: coord(i), CallTimeout: 5 * time.Second})
		if err != nil {
			t.Fatalf("Start landmark %d: %v", i, err)
		}
		nodes = append(nodes, nd)
	}
	landmarks := []string{nodes[0].Addr(), nodes[1].Addr()}
	// Reconfigure the first two nodes is not possible post-Start; instead
	// close and restart them with the landmark list (same coords).
	for i := 0; i < 2; i++ {
		_ = nodes[i] // keep the listeners: landmarks only need Ping/GetInfo,
		// but they are also overlay members, so give them the full config.
	}
	full := make([]*Node, 0, n)
	for i := 0; i < n; i++ {
		var nd *Node
		var err error
		if i < 2 {
			nd = nodes[i]
			nd.SetLandmarks(landmarks)
		} else {
			nd, err = Start("127.0.0.1:0", Config{
				Depth: 2, Coord: coord(i), Landmarks: landmarks,
				CallTimeout: 5 * time.Second,
			})
			if err != nil {
				t.Fatalf("Start node %d: %v", i, err)
			}
		}
		full = append(full, nd)
	}
	t.Cleanup(func() {
		for _, nd := range full {
			_ = nd.Close()
		}
	})
	if err := full[0].CreateNetwork(); err != nil {
		t.Fatalf("CreateNetwork: %v", err)
	}
	for i := 1; i < n; i++ {
		if err := full[i].Join(full[0].Addr()); err != nil {
			t.Fatalf("Join node %d: %v", i, err)
		}
		stabilizeAll(t, full[:i+1], 3)
	}
	stabilizeAll(t, full, 3)
	for _, nd := range full {
		if err := nd.BuildAllFingers(); err != nil {
			t.Fatalf("BuildAllFingers: %v", err)
		}
	}
	return full
}

func stabilizeAll(t *testing.T, nodes []*Node, rounds int) {
	t.Helper()
	for r := 0; r < rounds; r++ {
		for _, nd := range nodes {
			if err := nd.StabilizeOnce(); err != nil {
				t.Fatalf("StabilizeOnce: %v", err)
			}
		}
	}
}

// trueOwner computes the expected owner among the given nodes.
func trueOwner(nodes []*Node, key id.ID) *Node {
	best := nodes[0]
	bestDist := id.Dist(key, best.ID())
	for _, nd := range nodes[1:] {
		if d := id.Dist(key, nd.ID()); d.Less(bestDist) {
			best, bestDist = nd, d
		}
	}
	return best
}

func TestSingleNodeNetwork(t *testing.T) {
	nd, err := Start("127.0.0.1:0", Config{Depth: 1, CallTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	if createErr := nd.CreateNetwork(); createErr != nil {
		t.Fatal(createErr)
	}
	res, err := nd.Lookup(context.Background(), id.HashString("anything"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Owner.Addr != nd.Addr() || res.Hops != 0 {
		t.Errorf("owner %s hops %d", res.Owner.Addr, res.Hops)
	}
	if putErr := nd.Put(context.Background(), "greeting", []byte("hello")); putErr != nil {
		t.Fatal(putErr)
	}
	v, err := nd.Get(context.Background(), "greeting")
	if err != nil || string(v) != "hello" {
		t.Errorf("get: %q %v", v, err)
	}
}

func TestClusterLookupCorrectness(t *testing.T) {
	leakcheck.Watchdog(t, time.Minute)
	nodes := cluster(t, 8)
	for trial := 0; trial < 40; trial++ {
		key := id.HashString(fmt.Sprintf("key-%d", trial))
		want := trueOwner(nodes, key)
		for _, from := range []*Node{nodes[0], nodes[3], nodes[7]} {
			res, err := from.Lookup(context.Background(), key)
			if err != nil {
				t.Fatalf("lookup from %s: %v", from.Addr(), err)
			}
			if res.Owner.Addr != want.Addr() {
				t.Fatalf("trial %d from %s: owner %s, want %s",
					trial, from.Addr(), res.Owner.Addr, want.Addr())
			}
		}
	}
}

func TestClusterBinning(t *testing.T) {
	nodes := cluster(t, 8)
	// Even indexes (west cluster) share a ring name; odd indexes (east)
	// share a different one.
	west := nodes[0].RingNames()[0]
	east := nodes[1].RingNames()[0]
	if west == east {
		t.Fatalf("clusters binned together: %q", west)
	}
	for i, nd := range nodes {
		got := nd.RingNames()[0]
		want := west
		if i%2 == 1 {
			want = east
		}
		if got != want {
			t.Errorf("node %d ring %q, want %q", i, got, want)
		}
	}
}

func TestGlobalRingComplete(t *testing.T) {
	nodes := cluster(t, 6)
	// Walking successors from any node must visit all nodes exactly once.
	byAddr := map[string]*Node{}
	for _, nd := range nodes {
		byAddr[nd.Addr()] = nd
	}
	cur := nodes[0]
	seen := map[string]bool{}
	for i := 0; i < len(nodes); i++ {
		if seen[cur.Addr()] {
			t.Fatalf("ring loop revisited %s after %d steps", cur.Addr(), i)
		}
		seen[cur.Addr()] = true
		succ, _, err := cur.Neighbors(1)
		if err != nil || len(succ) == 0 {
			t.Fatalf("no successors at %s: %v", cur.Addr(), err)
		}
		next, ok := byAddr[succ[0].Addr]
		if !ok {
			t.Fatalf("successor %s is not a known node", succ[0].Addr)
		}
		cur = next
	}
	if cur != nodes[0] {
		t.Error("successor walk did not close the ring")
	}
	// And successor order must match sorted IDs.
	ids := make([]string, len(nodes))
	for i, nd := range nodes {
		ids[i] = nd.ID().String()
	}
	sort.Strings(ids)
	_ = ids
}

func TestPutGetAcrossNodes(t *testing.T) {
	nodes := cluster(t, 6)
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("file-%d", i)
		val := []byte(fmt.Sprintf("location-%d", i))
		if err := nodes[i%len(nodes)].Put(context.Background(), key, val); err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
	}
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("file-%d", i)
		v, err := nodes[(i+3)%len(nodes)].Get(context.Background(), key)
		if err != nil {
			t.Fatalf("get %s: %v", key, err)
		}
		if string(v) != fmt.Sprintf("location-%d", i) {
			t.Errorf("get %s = %q", key, v)
		}
	}
}

func TestLowerLayerHopsHappen(t *testing.T) {
	nodes := cluster(t, 10)
	lower, total := 0, 0
	for trial := 0; trial < 60; trial++ {
		key := id.HashString(fmt.Sprintf("probe-%d", trial))
		res, err := nodes[trial%len(nodes)].Lookup(context.Background(), key)
		if err != nil {
			t.Fatal(err)
		}
		total += res.Hops
		for l := 1; l < len(res.LayerHops); l++ {
			lower += res.LayerHops[l]
		}
		want := trueOwner(nodes, key)
		if res.Owner.Addr != want.Addr() {
			t.Fatalf("wrong owner on trial %d", trial)
		}
	}
	if total == 0 {
		t.Fatal("no hops at all")
	}
	if lower == 0 {
		t.Error("hierarchical routing never used a lower ring")
	}
}

func TestRingTablesDiscoverable(t *testing.T) {
	nodes := cluster(t, 8)
	// Every ring's table must be retrievable from its current storing
	// node (found by flat routing), and must name live members.
	seen := map[string]bool{}
	for _, nd := range nodes {
		name := nd.RingNames()[0]
		if seen[name] {
			continue
		}
		seen[name] = true
		rid := ringID(2, name)
		owner, _, err := nodes[0].walkOwner(context.Background(), nodes[0].Addr(), 1, rid)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := wireCall(owner.Addr, wire.Request{
			Type:  wire.TGetRingTable,
			Table: wire.RingTable{Layer: 2, Name: name},
		}, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Found {
			t.Fatalf("ring table %q not at its storing node %s", name, owner.Addr)
		}
		if _, err := wireCall(resp.Table.Smallest.Addr, wire.Request{Type: wire.TPing}, time.Second); err != nil {
			t.Errorf("ring table %q names unreachable member", name)
		}
	}
	if len(seen) < 2 {
		t.Fatalf("expected at least 2 rings, saw %d", len(seen))
	}
}

func TestNodeFailureHealing(t *testing.T) {
	leakcheck.Watchdog(t, time.Minute)
	nodes := cluster(t, 8)
	victim := nodes[4]
	_ = victim.Close()
	alive := append(append([]*Node{}, nodes[:4]...), nodes[5:]...)
	stabilizeAll(t, alive, 5)
	for _, nd := range alive {
		if err := nd.BuildAllFingers(); err != nil {
			t.Fatalf("rebuild fingers: %v", err)
		}
	}
	for trial := 0; trial < 20; trial++ {
		key := id.HashString(fmt.Sprintf("after-fail-%d", trial))
		want := trueOwner(alive, key)
		res, err := alive[trial%len(alive)].Lookup(context.Background(), key)
		if err != nil {
			t.Fatalf("lookup after failure: %v", err)
		}
		if res.Owner.Addr != want.Addr() {
			t.Fatalf("owner %s, want %s", res.Owner.Addr, want.Addr())
		}
	}
}

func TestJoinErrors(t *testing.T) {
	nd, err := Start("127.0.0.1:0", Config{Depth: 2, CallTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	if err := nd.Join("127.0.0.1:1"); err == nil {
		t.Error("join via unreachable bootstrap accepted")
	}
	if err := nd.CreateNetwork(); err == nil {
		t.Error("depth-2 CreateNetwork without landmarks accepted")
	}
}

func TestRTTProber(t *testing.T) {
	nd, err := Start("127.0.0.1:0", Config{Depth: 1, CallTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	p := &RTTProber{Samples: 2, Timeout: time.Second}
	lat, err := p.Latency(context.Background(), nd.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if lat < 0 || lat > 1000 {
		t.Errorf("implausible loopback latency %v ms", lat)
	}
	if _, err := p.Latency(context.Background(), "127.0.0.1:1"); err == nil {
		t.Error("probing a dead address should fail")
	}
}

func TestHandledCounter(t *testing.T) {
	nd, err := Start("127.0.0.1:0", Config{Depth: 1, CallTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	if _, err := wireCall(nd.Addr(), wire.Request{Type: wire.TPing}, time.Second); err != nil {
		t.Fatal(err)
	}
	if nd.Handled() != 1 {
		t.Errorf("Handled = %d", nd.Handled())
	}
}

func TestUnknownMessageRejected(t *testing.T) {
	nd, err := Start("127.0.0.1:0", Config{Depth: 1, CallTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	if _, err := wireCall(nd.Addr(), wire.Request{Type: 99}, time.Second); err == nil {
		t.Error("unknown message type accepted")
	}
}

func TestCloseIdempotent(t *testing.T) {
	nd, err := Start("127.0.0.1:0", Config{Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := nd.Close(); err != nil {
		t.Fatal(err)
	}
	if err := nd.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}
