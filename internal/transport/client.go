package transport

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/binning"
	"repro/internal/id"
	"repro/internal/replica"
	"repro/internal/wire"
)

// maxWalk bounds any iterative walk; lookups are O(log N) in a healthy
// overlay, so hitting this indicates inconsistent state.
const maxWalk = 4 * id.Bits

// maxWalkRestarts bounds how often a degraded walk may restart from this
// node after an unrecoverable dead hop before giving up on the layer.
const maxWalkRestarts = 2

// call performs one RPC through the node's full outgoing chain — retry
// policy and circuit breaker over the (possibly fault-injected)
// instrumented pooled transport. The context bounds the whole call
// including retries; each attempt is additionally capped by the
// configured per-attempt timeout.
func (n *Node) call(ctx context.Context, addr string, req wire.Request) (wire.Response, error) {
	return n.caller.Call(ctx, addr, req)
}

// callBG is call for maintenance paths (stabilization, repair, leave,
// joins): they run on their own cadence with no caller to propagate a
// deadline from, so each RPC is bounded by the per-attempt timeout and
// retry budget — and by the node's lifecycle context, so Close aborts
// any maintenance chain mid-flight instead of letting it finish against
// a dying node.
func (n *Node) callBG(addr string, req wire.Request) (wire.Response, error) {
	return n.call(n.lifeCtx, addr, req)
}

// suspectDead reports whether addr has accumulated enough consecutive
// transport failures (or an open breaker) to be treated as dead. Walks
// consult this before firing TEvict, so a single dropped packet no
// longer evicts a live peer — the retry layer has to exhaust its
// attempts first.
func (n *Node) suspectDead(addr string) bool {
	return n.retrier.ConsecutiveFailures(addr) >= n.suspect || n.retrier.BreakerOpen(addr)
}

// CreateNetwork makes this node the first member of a new overlay: it is
// its own successor and predecessor in every layer and stores its own ring
// tables.
func (n *Node) CreateNetwork() error {
	names, err := n.computeRingNames()
	if err != nil {
		return err
	}
	self := n.Self()
	n.mu.Lock()
	n.ringNames = names
	n.landmarks = append([]string(nil), n.cfg.Landmarks...)
	n.joined = true
	for _, ls := range n.layers {
		ls.succ = []wire.Peer{self}
		ls.pred = self
	}
	for l, name := range names {
		t := wire.RingTable{
			Layer: l + 2, Name: name,
			Smallest: self, SecondSm: self, Largest: self, SecondLg: self,
		}
		n.tables[ringKey(t.Layer, t.Name)] = t
	}
	n.mu.Unlock()
	n.announceRoutes()
	return nil
}

// computeRingNames probes the landmarks and bins the node.
func (n *Node) computeRingNames() ([]string, error) {
	if n.cfg.Depth == 1 {
		return nil, nil
	}
	if len(n.cfg.Landmarks) == 0 {
		return nil, fmt.Errorf("transport: depth %d needs landmark addresses", n.cfg.Depth)
	}
	lats := make([]float64, len(n.cfg.Landmarks))
	for i, lm := range n.cfg.Landmarks {
		lat, err := n.cfg.Prober.Latency(n.lifeCtx, lm)
		if err != nil {
			return nil, fmt.Errorf("transport: probing landmark %s: %w", lm, err)
		}
		lats[i] = lat
	}
	return binning.RingNames(lats, n.cfg.Ladder)
}

// Join integrates the node into an existing overlay through bootstrap
// (paper §3.3).
func (n *Node) Join(bootstrap string) error {
	// Learn the landmark table from the nearby node when we have none.
	info, err := n.callBG(bootstrap, wire.Request{Type: wire.TGetInfo})
	if err != nil {
		return fmt.Errorf("transport: bootstrap unreachable: %w", err)
	}
	if len(n.cfg.Landmarks) == 0 {
		n.cfg.Landmarks = info.Landmarks
	}
	names, err := n.computeRingNames()
	if err != nil {
		return err
	}
	self := n.Self()

	// Highest layer first: find our global successor through bootstrap.
	gsucc, _, err := n.walkOwner(n.lifeCtx, bootstrap, 1, n.id)
	if err != nil {
		return fmt.Errorf("transport: global join lookup: %w", err)
	}
	n.mu.Lock()
	n.ringNames = names
	n.landmarks = append([]string(nil), n.cfg.Landmarks...)
	n.layers[0].succ = []wire.Peer{gsucc}
	n.mu.Unlock()
	if _, err := n.callBG(gsucc.Addr, wire.Request{
		Type: wire.TNotify, Layer: 1, Peer: self,
	}); err != nil {
		return fmt.Errorf("transport: notify global successor: %w", err)
	}

	// Lower layers: ring table lookup, then join inside the ring.
	for l, name := range names {
		layer := l + 2
		if err := n.joinRing(bootstrap, layer, name, self); err != nil {
			return fmt.Errorf("transport: joining ring %d:%q: %w", layer, name, err)
		}
	}
	n.mu.Lock()
	n.joined = true
	n.mu.Unlock()
	n.announceRoutes()
	return nil
}

// routeSubject names one ring a node is a member of: the gossip subject
// space is (layer, ring, peer).
type routeSubject struct {
	layer int
	ring  string
}

// ringSubjects returns every (layer, ring) this node belongs to: the
// global ring plus its lower-layer rings.
func (n *Node) ringSubjects() []routeSubject {
	n.mu.Lock()
	defer n.mu.Unlock()
	subs := []routeSubject{{1, ""}}
	for l, name := range n.ringNames {
		subs = append(subs, routeSubject{l + 2, name})
	}
	return subs
}

// announceRoutes records this node's own membership in every ring it
// belongs to as join events; gossip spreads them on the stabilize
// cadence. It doubles as self-defense: a node that finds itself
// tombstoned (a false eviction minted during a partition) re-announces
// with a NextStamp that outranks the tombstone, so a live node always
// wins its way back into remote tables.
func (n *Node) announceRoutes() {
	if n.routes == nil {
		return
	}
	self := n.Self()
	for _, s := range n.ringSubjects() {
		if cur, ok := n.routes.Latest(s.layer, s.ring, n.addr); ok && cur.Kind == wire.RouteJoin {
			continue
		}
		n.routes.Apply(wire.RouteEvent{
			Layer: s.layer, Ring: s.ring, Peer: self, Kind: wire.RouteJoin,
			Stamp: n.routes.NextStamp(s.layer, s.ring, n.addr, n.clock()),
		})
	}
}

// gossipFanout is the set of peers one gossip round pushes to: the
// global-ring successor list plus the predecessor. Piggybacking on the
// stabilized neighborhood means gossip reaches exactly the peers whose
// liveness the node is already maintaining, and events travel the ring
// in both directions.
func (n *Node) gossipFanout() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	seen := map[string]bool{n.addr: true, "": true}
	var targets []string
	for _, p := range n.layers[0].succ {
		if !seen[p.Addr] {
			seen[p.Addr] = true
			targets = append(targets, p.Addr)
		}
	}
	if p := n.layers[0].pred; !seen[p.Addr] {
		targets = append(targets, p.Addr)
	}
	return targets
}

// pushRoutes pushes the full local event set to each target and merges
// whatever each reply says we are missing (the pull half). Exchanged
// payload bytes are counted against route_gossip_bytes_total; at
// convergence replies are empty, so the steady-state cost is one push
// frame per neighbor per round.
func (n *Node) pushRoutes(targets []string) {
	evs := n.routes.Events()
	if len(evs) == 0 {
		return
	}
	sent := routeEventsBytes(evs)
	for _, addr := range targets {
		resp, err := n.callBG(addr, wire.Request{Type: wire.TRouteGossip, Events: evs})
		if err != nil {
			continue
		}
		n.nm.gossipBytes.Add(sent + routeEventsBytes(resp.Events))
		n.routes.ApplyAll(resp.Events)
	}
}

// routeEventsBytes measures the gossip payload cost of an event set: the
// size of its binary-codec encoding. Metering through one fixed codec
// keeps the maintenance-bandwidth metric comparable across runs
// regardless of the session codec in use.
func routeEventsBytes(evs []wire.RouteEvent) uint64 {
	if len(evs) == 0 {
		return 0
	}
	b, err := wire.Binary{}.AppendRequest(nil, &wire.Request{Type: wire.TRouteGossip, Events: evs})
	if err != nil {
		return 0
	}
	return uint64(len(b))
}

// RouteGossipOnce runs one push-pull route-gossip exchange with the
// gossip fanout. StabilizeOnce calls it every round; it is exposed
// separately so harnesses can drive the gossip cadence explicitly.
func (n *Node) RouteGossipOnce() error {
	if n.routes == nil || n.cfg.DropRouteGossip {
		return nil
	}
	n.mu.Lock()
	joined := n.joined
	n.mu.Unlock()
	if !joined {
		return nil
	}
	n.announceRoutes()
	n.pushRoutes(n.gossipFanout())
	return nil
}

// announceLeaveRoutes tombstones this node's own membership and pushes
// the result to the neighbors that keep serving, so remote one-hop
// tables learn of a graceful departure without waiting for failure
// detection.
func (n *Node) announceLeaveRoutes() {
	if n.routes == nil {
		return
	}
	self := n.Self()
	for _, s := range n.ringSubjects() {
		n.routes.Apply(wire.RouteEvent{
			Layer: s.layer, Ring: s.ring, Peer: self, Kind: wire.RouteLeave,
			Stamp: n.routes.NextStamp(s.layer, s.ring, n.addr, n.clock()),
		})
	}
	if !n.cfg.DropRouteGossip {
		n.pushRoutes(n.gossipFanout())
	}
}

// joinRing implements one lower-layer join: route to the ring table's
// storing node, learn a member, integrate via that member, and update the
// ring table if we became a boundary node.
func (n *Node) joinRing(bootstrap string, layer int, name string, self wire.Peer) error {
	rid := ringID(layer, name)
	storing, _, err := n.walkOwner(n.lifeCtx, bootstrap, 1, rid)
	if err != nil {
		return err
	}
	resp, err := n.callBG(storing.Addr, wire.Request{
		Type:  wire.TGetRingTable,
		Table: wire.RingTable{Layer: layer, Name: name},
	})
	if err != nil {
		return err
	}
	if !resp.Found {
		// First member of a brand-new ring.
		n.mu.Lock()
		n.layers[layer-1].succ = []wire.Peer{self}
		n.layers[layer-1].pred = self
		n.mu.Unlock()
		t := wire.RingTable{
			Layer: layer, Name: name,
			Smallest: self, SecondSm: self, Largest: self, SecondLg: self,
		}
		_, putErr := n.callBG(storing.Addr, wire.Request{Type: wire.TPutRingTable, Table: t})
		return putErr
	}
	member, err := n.liveTableMember(resp.Table)
	if err != nil {
		return err
	}
	rsucc, _, err := n.walkOwner(n.lifeCtx, member.Addr, layer, n.id)
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.layers[layer-1].succ = []wire.Peer{rsucc}
	n.mu.Unlock()
	if _, err := n.callBG(rsucc.Addr, wire.Request{
		Type: wire.TNotify, Layer: layer, Peer: self,
	}); err != nil {
		return err
	}
	// Boundary update (paper: "if it should replace one of them, it sends
	// a ring table modification message back").
	if t, changed := updateBoundaries(resp.Table, self); changed {
		if _, err := n.callBG(storing.Addr, wire.Request{Type: wire.TPutRingTable, Table: t}); err != nil {
			return err
		}
	}
	return nil
}

// liveTableMember returns the first reachable peer named by a ring table.
func (n *Node) liveTableMember(t wire.RingTable) (wire.Peer, error) {
	for _, p := range []wire.Peer{t.Smallest, t.Largest, t.SecondSm, t.SecondLg} {
		if p.Addr == "" {
			continue
		}
		if _, err := n.callBG(p.Addr, wire.Request{Type: wire.TPing}); err == nil {
			return p, nil
		}
	}
	return wire.Peer{}, fmt.Errorf("ring table %d:%q names no live member", t.Layer, t.Name)
}

// updateBoundaries merges a candidate into the table's four boundary
// slots, reporting whether anything changed.
func updateBoundaries(t wire.RingTable, cand wire.Peer) (wire.RingTable, bool) {
	peers := []wire.Peer{t.Smallest, t.SecondSm, t.Largest, t.SecondLg, cand}
	// Dedupe and sort by ID.
	uniq := peers[:0]
	seen := map[string]bool{}
	for _, p := range peers {
		if p.Addr != "" && !seen[p.Addr] {
			seen[p.Addr] = true
			uniq = append(uniq, p)
		}
	}
	for i := 1; i < len(uniq); i++ {
		for j := i; j > 0 && peerID(uniq[j]).Less(peerID(uniq[j-1])); j-- {
			uniq[j], uniq[j-1] = uniq[j-1], uniq[j]
		}
	}
	out := t
	k := len(uniq)
	out.Smallest = uniq[0]
	out.Largest = uniq[k-1]
	if k >= 2 {
		out.SecondSm = uniq[1]
		out.SecondLg = uniq[k-2]
	} else {
		out.SecondSm = uniq[0]
		out.SecondLg = uniq[0]
	}
	changed := out != t
	return out, changed
}

// pruneDeadBoundaries drops ring-table boundary entries that no longer
// answer a ping. Boundary sets are otherwise grow-only (updateBoundaries
// keeps whatever extremes it has seen), so a ring whose smallest/largest
// members crashed would advertise only dead contact points forever and
// become unjoinable; pruning during the periodic re-announce lets the
// surviving members reclaim the boundary slots.
func (n *Node) pruneDeadBoundaries(t wire.RingTable) wire.RingTable {
	verdict := map[string]bool{n.addr: true, "": false}
	alive := func(addr string) bool {
		v, ok := verdict[addr]
		if !ok {
			_, err := n.callBG(addr, wire.Request{Type: wire.TPing})
			v = err == nil
			verdict[addr] = v
		}
		return v
	}
	for _, p := range []*wire.Peer{&t.Smallest, &t.SecondSm, &t.Largest, &t.SecondLg} {
		if !alive(p.Addr) {
			*p = wire.Peer{}
		}
	}
	return t
}

// evictAt tells `at` that `dead` no longer answers, so it purges the
// reference from the layer's routing state (Chord's timeout handling).
// A confirmed death also dirties the sweep flag: keys whose replica
// set included the dead peer need a new home.
func (n *Node) evictAt(at string, layer int, dead string) {
	n.nm.evictions.Inc()
	n.markSweepNeeded()
	_, _ = n.callBG(at, wire.Request{
		Type:  wire.TEvict,
		Layer: layer,
		Peer:  wire.Peer{Addr: dead, ID: [20]byte(NodeID(dead))},
	})
}

// walkOwner iteratively routes within one layer starting from `via`,
// returning the key's owner in that layer and the number of hops. A dead
// hop is handled in stages: the step is retried from the node that
// supplied the hop (which is told to evict the reference once the
// suspicion tracker confirms the peer dead), and when no supplier is
// left, the walk restarts from `via` (bounded by maxWalkRestarts) rather
// than aborting. Application-level errors mean the hop is alive and are
// fatal immediately — never grounds for eviction.
func (n *Node) walkOwner(ctx context.Context, via string, layer int, key id.ID) (wire.Peer, int, error) {
	cur := via
	prev := ""
	hops := 0
	restarts := 0
	for i := 0; i < maxWalk; i++ {
		resp, err := n.call(ctx, cur, wire.Request{
			Type: wire.TFindClosest, Layer: layer, Key: [20]byte(key),
		})
		if err != nil {
			if wire.IsRemote(err) {
				return wire.Peer{}, hops, err
			}
			suspect := n.suspectDead(cur)
			if suspect {
				n.evictLocal(layer, cur)
			}
			if prev != "" && prev != cur {
				n.nm.walkRetries.Inc()
				if suspect {
					n.evictAt(prev, layer, cur)
				}
				cur, prev = prev, ""
				continue
			}
			if restarts < maxWalkRestarts && cur != via {
				restarts++
				n.nm.walkRestarts.Inc()
				cur, prev = via, ""
				continue
			}
			return wire.Peer{}, hops, err
		}
		if resp.Done {
			return resp.Next, hops + boolHop(resp), nil
		}
		prev = cur
		cur = resp.Next.Addr
		hops++
	}
	return wire.Peer{}, hops, fmt.Errorf("walk for %s did not converge", key.Short())
}

func boolHop(resp wire.Response) int {
	if resp.Owner {
		return 0 // the queried node itself owns the key
	}
	return 1 // final forward to the successor
}

// LookupResult describes a completed hierarchical lookup.
type LookupResult struct {
	Owner wire.Peer
	Hops  int
	// LayerHops[0] counts global-ring hops; LayerHops[l] layer-(l+1) hops.
	LayerHops []int
}

// Lookup routes hierarchically from this node to the owner of key,
// consulting the acceleration tiers first: the one-hop route table in
// RouteOneHop mode, then the location cache when one is configured.
// Both tiers follow the same verify-or-fallback contract — a hinted
// owner is confirmed with a single RPC before use — so staleness costs
// one wasted call, never a wrong answer. The context bounds the whole
// lookup: cancellation or a deadline aborts the walk between (and
// inside) hops.
func (n *Node) Lookup(ctx context.Context, key id.ID) (LookupResult, error) {
	n.nm.lookups.Inc()
	if n.routes != nil {
		if owner, ok := n.routes.Owner(1, "", [20]byte(key)); ok {
			if res, ok := n.verifyCachedOwner(ctx, owner, key); ok {
				n.nm.onehopHits.Inc()
				return res, nil
			}
			n.nm.onehopStale.Inc()
			if n.suspectDead(owner.Addr) {
				// The table named a dead owner; tombstone it so the walk
				// below (and every later lookup) stops consulting it.
				n.evictLocal(1, owner.Addr)
			}
		}
	}
	if n.cache != nil {
		if owner, ok := n.cache.get(key); ok {
			if res, ok := n.verifyCachedOwner(ctx, owner, key); ok {
				n.nm.cacheHits.Inc()
				return res, nil
			}
			n.cache.remove(key)
		}
		n.nm.cacheMisses.Inc()
	}
	res, err := n.lookupFull(ctx, key)
	if err != nil {
		n.nm.lookupErrors.Inc()
	} else {
		if n.cache != nil {
			n.cache.put(key, res.Owner)
		}
		if n.routes != nil {
			// Learn the authoritative owner the walk just confirmed, so the
			// next lookup in this key region goes single-hop. A live owner
			// also outranks any false tombstone the table may hold for it.
			if cur, ok := n.routes.Latest(1, "", res.Owner.Addr); !ok || cur.Kind != wire.RouteJoin {
				n.routes.Apply(wire.RouteEvent{
					Layer: 1, Ring: "", Peer: res.Owner, Kind: wire.RouteJoin,
					Stamp: n.routes.NextStamp(1, "", res.Owner.Addr, n.clock()),
				})
			}
		}
	}
	return res, err
}

// verifyCachedOwner checks a cached binding with a single RPC: the
// hierarchical destination check at the cached peer. Only a confirmed
// owner is used, so cache staleness can waste one call but never
// misroute.
func (n *Node) verifyCachedOwner(ctx context.Context, owner wire.Peer, key id.ID) (LookupResult, bool) {
	resp, err := n.call(ctx, owner.Addr, wire.Request{
		Type: wire.TFindClosest, Layer: 1, Key: [20]byte(key), Hierarchical: true,
	})
	if err != nil || !resp.Owner {
		return LookupResult{}, false
	}
	res := LookupResult{Owner: resp.Next, Hops: 1, LayerHops: make([]int, n.cfg.Depth)}
	res.LayerHops[0] = 1
	n.nm.hops[0].Inc()
	return res, true
}

// lookupFull is the uncached hierarchical routing procedure. It degrades
// gracefully under failures: a dead hop is first retried from the node
// that supplied it (with eviction once suspicion is confirmed), then the
// layer walk restarts from this node, and when a lower layer stays
// unroutable the lookup climbs to the next layer up instead of aborting
// — the global ring is the final authority on ownership, so skipping a
// broken lower ring costs hops, never correctness.
func (n *Node) lookupFull(ctx context.Context, key id.ID) (LookupResult, error) {
	res := LookupResult{LayerHops: make([]int, n.cfg.Depth)}
	cur := n.addr
	prev := ""
	// Lower layers, most local first.
	for layer := n.cfg.Depth; layer >= 2; layer-- {
		prev = ""
		restarts := 0
		for i := 0; ; i++ {
			if i >= maxWalk {
				return res, fmt.Errorf("transport: layer %d walk did not converge", layer)
			}
			resp, err := n.call(ctx, cur, wire.Request{
				Type: wire.TFindClosest, Layer: layer, Key: [20]byte(key),
				Hierarchical: true,
			})
			if err != nil {
				if wire.IsRemote(err) {
					return res, err
				}
				suspect := n.suspectDead(cur)
				if suspect {
					n.evictLocal(layer, cur)
				}
				if prev != "" && prev != cur {
					n.nm.walkRetries.Inc()
					if suspect {
						n.evictAt(prev, layer, cur)
					}
					cur, prev = prev, ""
					continue
				}
				if restarts < maxWalkRestarts && cur != n.addr {
					restarts++
					n.nm.walkRestarts.Inc()
					cur, prev = n.addr, ""
					continue
				}
				// This ring is unroutable right now; climb a layer and
				// keep going rather than failing the lookup.
				n.nm.failoverClimbs.Inc()
				cur, prev = n.addr, ""
				break
			}
			if resp.Owner {
				res.Owner = resp.Next
				return res, nil
			}
			if resp.Done {
				n.nm.ringClimbs.Inc()
				cur = resp.Self.Addr // continue upward from the ring predecessor
				break
			}
			prev = cur
			cur = resp.Next.Addr
			res.Hops++
			res.LayerHops[layer-1]++
			n.nm.hops[layer-1].Inc()
		}
	}
	// Global ring.
	prev = ""
	restarts := 0
	for i := 0; ; i++ {
		if i >= maxWalk {
			return res, fmt.Errorf("transport: global walk did not converge")
		}
		resp, err := n.call(ctx, cur, wire.Request{
			Type: wire.TFindClosest, Layer: 1, Key: [20]byte(key),
			Hierarchical: true,
		})
		if err != nil {
			if wire.IsRemote(err) {
				return res, err
			}
			suspect := n.suspectDead(cur)
			if suspect {
				n.evictLocal(1, cur)
			}
			if prev != "" && prev != cur {
				n.nm.walkRetries.Inc()
				if suspect {
					n.evictAt(prev, 1, cur)
				}
				cur, prev = prev, ""
				continue
			}
			if restarts < maxWalkRestarts && cur != n.addr {
				restarts++
				n.nm.walkRestarts.Inc()
				cur, prev = n.addr, ""
				continue
			}
			return res, err
		}
		if resp.Owner {
			res.Owner = resp.Next
			return res, nil
		}
		if resp.Done {
			res.Owner = resp.Next
			res.Hops++
			res.LayerHops[0]++
			n.nm.hops[0].Inc()
			return res, nil
		}
		prev = cur
		cur = resp.Next.Addr
		res.Hops++
		res.LayerHops[0]++
		n.nm.hops[0].Inc()
	}
}

// resolveReplicaSet maps a key to its current replica set: the key's
// owner (by hierarchical lookup) followed by the owner's global
// successors, deduplicated, at most Replication.Factor members. When
// the owner's neighbor state is unreachable, the resolver degrades to
// this node's own successor-list view of the same ring region, so a
// freshly dead owner does not make the whole key unresolvable.
func (n *Node) resolveReplicaSet(ctx context.Context, key string) ([]string, error) {
	res, err := n.Lookup(ctx, LiveKeyID(key))
	if err != nil {
		return nil, err
	}
	owner := res.Owner.Addr
	var succs []string
	if nb, nbErr := n.call(ctx, owner, wire.Request{Type: wire.TGetNeighbors, Layer: 1}); nbErr == nil {
		for _, p := range nb.Succ {
			succs = append(succs, p.Addr)
		}
	} else {
		// Owner unreachable: re-walk for a live owner and fall back to our
		// own successor list for the trailing members.
		if again, lerr := n.Lookup(ctx, LiveKeyID(key)); lerr == nil && again.Owner.Addr != owner {
			owner = again.Owner.Addr
			if nb2, err2 := n.call(ctx, owner, wire.Request{Type: wire.TGetNeighbors, Layer: 1}); err2 == nil {
				for _, p := range nb2.Succ {
					succs = append(succs, p.Addr)
				}
			}
		}
		if len(succs) == 0 {
			own, _, _ := n.Neighbors(1)
			for _, p := range own {
				succs = append(succs, p.Addr)
			}
		}
	}
	return replica.ReplicaSet(owner, succs, n.cfg.Replication.Factor), nil
}

// Put stores a value durably: a quorum write of a version-stamped item
// to the key's replica set (the owner plus its successors). The write
// is acknowledged once Replication.WriteQuorum members accepted it;
// members missed here are caught up by read-repair and the
// re-replication sweep.
func (n *Node) Put(ctx context.Context, key string, value []byte) error {
	return n.co.Put(ctx, key, value)
}

// Get fetches a value with a quorum read over the key's replica set,
// returning the freshest version seen and read-repairing stale members.
// A missing key is an error (matching the pre-replication contract);
// Get only trusts "not found" when every replica-set member answered.
func (n *Node) Get(ctx context.Context, key string) ([]byte, error) {
	v, found, err := n.co.Get(ctx, key)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, fmt.Errorf("transport: key %q not found", key)
	}
	return v, nil
}

// Delete removes a key durably: a quorum write of a tombstone that
// supersedes live versions through the normal LWW order, so a stale
// replica cannot resurrect the key. The tombstone is garbage-collected
// TTL after the delete (kept forever when TTL is 0).
func (n *Node) Delete(ctx context.Context, key string) error {
	return n.co.Delete(ctx, key)
}

// ReplicaSweepOnce runs one re-replication/republish sweep: every
// locally held key is re-resolved against the current ring, members
// that are behind receive the held item, and copies this node no
// longer owes are dropped once every responsible member confirmed
// theirs. Returns the number of remote item installs and local drops.
// The sweep runs under the node's lifecycle context, so Close aborts
// it promptly instead of waiting out in-flight member calls. Kept as
// the full-transfer baseline; the stabilize cadence runs the digest
// anti-entropy round instead.
func (n *Node) ReplicaSweepOnce() (applied, dropped int, err error) {
	return n.co.SweepOnce(n.lifeCtx)
}

// ReplicaAntiEntropyOnce runs one digest-based anti-entropy round:
// purge expired items, republish owner-held items nearing expiry,
// re-home keys this node no longer owes, then exchange compact range
// digests with every replica-set peer and transfer only the divergent
// buckets. Returns pulled/pushed item counts and local drops. Like the
// sweep it runs under the node's lifecycle context.
func (n *Node) ReplicaAntiEntropyOnce() (pulled, pushed, dropped int, err error) {
	return n.co.AntiEntropyOnce(n.lifeCtx)
}

// ReplicaFullSweepBytes reports the bytes one full-transfer SweepOnce
// round would ship from this node right now — every held item pushed
// whole to every other replica-set member. It moves no data; the chaos
// suite and the KV benchmark use it as the bandwidth baseline the
// digest protocol's antientropy_bytes_total is compared against.
func (n *Node) ReplicaFullSweepBytes() (uint64, error) {
	return n.co.SweepBytes(n.lifeCtx)
}

// markSweepNeeded requests an anti-entropy round on the next
// StabilizeOnce round, bypassing the AntiEntropyEvery cadence — called
// on every eviction so data re-homes as soon as a death is confirmed.
func (n *Node) markSweepNeeded() {
	n.mu.Lock()
	n.needSweep = true
	n.mu.Unlock()
}

// StabilizeOnce runs one stabilization round on every layer: verify the
// successor, adopt a closer one, refresh the successor list, notify, and
// repair ring tables whose ownership moved or whose storing node died.
// It finishes with a best-effort digest anti-entropy round on the
// AntiEntropyEvery cadence (or immediately after an eviction), so data
// re-homes and diverged replicas re-converge on the same clock that
// heals the rings.
func (n *Node) StabilizeOnce() error {
	for layer := 1; layer <= n.cfg.Depth; layer++ {
		if err := n.StabilizeLayer(layer); err != nil {
			return err
		}
	}
	if err := n.RepairRingTables(); err != nil {
		return err
	}
	// Route gossip rides the same cadence: one push-pull exchange with
	// the stabilized neighborhood per round, so one-hop table
	// convergence tracks ring health.
	_ = n.RouteGossipOnce()
	n.mu.Lock()
	n.aeTick++
	due := n.needSweep || n.aeTick >= n.cfg.AntiEntropyEvery
	if due {
		n.aeTick = 0
		n.needSweep = false
	}
	n.mu.Unlock()
	if due {
		// Best-effort: a round blocked by an unreachable member retries on
		// the next round; it must not fail the stabilization round.
		_, _, _, _ = n.ReplicaAntiEntropyOnce()
	}
	return nil
}

// StabilizeLayer runs one stabilization round on a single layer (1 =
// global ring). Exposed separately so harnesses can drive — or, to seed a
// bug, selectively withhold — maintenance per layer.
func (n *Node) StabilizeLayer(layer int) error {
	if layer < 1 || layer > n.cfg.Depth {
		return fmt.Errorf("transport: layer %d out of range (depth %d)", layer, n.cfg.Depth)
	}
	self := n.Self()
	n.mu.Lock()
	ls := n.layers[layer-1]
	succ := append([]wire.Peer(nil), ls.succ...)
	pred := ls.pred
	n.mu.Unlock()
	// Drop a dead predecessor so a live one can be adopted (Chord's
	// check_predecessor).
	if pred.Addr != "" && pred.Addr != n.addr {
		if _, err := n.callBG(pred.Addr, wire.Request{Type: wire.TPing}); err != nil {
			n.mu.Lock()
			if n.layers[layer-1].pred == pred {
				n.layers[layer-1].pred = wire.Peer{}
				if n.suspectDead(pred.Addr) {
					// Fresh, confirmed failure evidence from the ping we
					// just lost: tombstone the peer in the one-hop table.
					n.recordEvictLocked(layer, pred.Addr)
				}
			}
			n.mu.Unlock()
		}
	}
	// Find the first live successor and fetch its neighbor state
	// (locally when the successor is ourselves).
	var s0 wire.Peer
	var nb wire.Response
	found := false
	for _, cand := range succ {
		if cand.Addr == n.addr {
			n.mu.Lock()
			nb = wire.Response{Pred: ls.pred, Succ: append([]wire.Peer(nil), ls.succ...)}
			n.mu.Unlock()
			s0, found = cand, true
			break
		}
		resp, err := n.callBG(cand.Addr, wire.Request{Type: wire.TGetNeighbors, Layer: layer})
		if err == nil {
			s0, nb, found = cand, resp, true
			break
		}
	}
	if !found {
		// Every listed successor just failed a call, so each one's
		// suspicion counter grew; drop the entries the failure detector
		// now confirms dead. Without this a node whose whole list died
		// keeps the stale entries forever — nothing on the happy path
		// ever contacts them again — and can never collapse to the
		// singleton state repairLayer knows how to rebuild from.
		n.mu.Lock()
		ls := n.layers[layer-1]
		kept := ls.succ[:0]
		for _, p := range ls.succ {
			if p.Addr == n.addr || !n.suspectDead(p.Addr) {
				kept = append(kept, p)
			} else {
				n.recordEvictLocked(layer, p.Addr)
			}
		}
		ls.succ = kept
		n.mu.Unlock()
		n.repairLayer(layer)
		return nil
	}
	// Adopt the successor's predecessor when it sits between us; when
	// we are our own successor this adopts the first joiner that
	// notified us (Between(x, a, a) holds for every x != a).
	if nb.Pred.Addr != "" && nb.Pred.Addr != n.addr &&
		id.Between(peerID(nb.Pred), n.id, peerID(s0)) {
		if _, err := n.callBG(nb.Pred.Addr, wire.Request{Type: wire.TPing}); err == nil {
			s0 = nb.Pred
			resp, err := n.callBG(s0.Addr, wire.Request{Type: wire.TGetNeighbors, Layer: layer})
			if err != nil {
				return nil
			}
			nb = resp
		}
	}
	if s0.Addr == n.addr {
		// Still a singleton ring: own the whole identifier space, but keep
		// probing for the rest of the network — after a healed partition
		// this is how an isolated node finds its way back in.
		n.mu.Lock()
		if n.layers[layer-1].pred.Addr == "" {
			n.layers[layer-1].pred = self
		}
		n.mu.Unlock()
		n.mergeProbe(layer)
		return nil
	}
	// Rebuild the successor list from s0's list and notify it. Tail
	// entries are pinged before adoption: a departed node otherwise
	// survives forever in the tails, because each node rebuilds its list
	// from its successor's equally stale copy and nothing on the happy
	// path ever contacts a tail entry again.
	list := []wire.Peer{s0}
	seen := map[string]bool{s0.Addr: true}
	for _, p := range nb.Succ {
		if len(list) >= n.cfg.SuccListLen {
			break
		}
		if p.Addr == "" || p.Addr == n.addr || seen[p.Addr] {
			continue
		}
		seen[p.Addr] = true
		if _, err := n.callBG(p.Addr, wire.Request{Type: wire.TPing}); err != nil {
			continue
		}
		list = append(list, p)
	}
	n.mu.Lock()
	n.layers[layer-1].succ = list
	n.mu.Unlock()
	_, _ = n.callBG(s0.Addr, wire.Request{Type: wire.TNotify, Layer: layer, Peer: self})
	// Even with a healthy successor, the ring as a whole may be one of
	// two components left by a healed partition; scan the entry points
	// for a closer successor from the other component.
	n.mergeScan(layer)
	return nil
}

// repairLayer rebuilds a layer's successor state when no listed successor
// answers. Escalation order: re-anchor through the overlay's entry points
// (landmarks for the global ring, the ring table for a lower ring), fall
// back to a live predecessor, and only when the successor list has been
// fully purged by confirmed suspicion collapse to a singleton ring.
// Stale-but-unpurged entries are deliberately kept otherwise: when a
// partition heals they are exactly what re-merges the ring.
func (n *Node) repairLayer(layer int) {
	n.mu.Lock()
	joined := n.joined
	succLen := len(n.layers[layer-1].succ)
	pred := n.layers[layer-1].pred
	n.mu.Unlock()
	if !joined {
		return // not part of an overlay yet; nothing to re-anchor to
	}
	if n.reanchor(layer) {
		n.nm.repairs.Inc()
		return
	}
	self := n.Self()
	if pred.Addr != "" && pred.Addr != n.addr {
		if _, err := n.callBG(pred.Addr, wire.Request{Type: wire.TPing}); err == nil {
			n.mu.Lock()
			n.layers[layer-1].succ = []wire.Peer{pred}
			n.mu.Unlock()
			_, _ = n.callBG(pred.Addr, wire.Request{Type: wire.TNotify, Layer: layer, Peer: self})
			n.nm.repairs.Inc()
			return
		}
	}
	if succLen == 0 {
		n.mu.Lock()
		n.layers[layer-1].succ = []wire.Peer{self}
		if n.layers[layer-1].pred.Addr == "" {
			n.layers[layer-1].pred = self
		}
		n.mu.Unlock()
		n.nm.repairs.Inc()
	}
}

// mergeProbe checks whether a ring this node believes it has to itself
// actually has other members — the state an isolated node is left in once
// a partition ends — and rejoins them when it does.
func (n *Node) mergeProbe(layer int) {
	n.mu.Lock()
	joined := n.joined
	n.mu.Unlock()
	if !joined {
		return
	}
	if n.reanchor(layer) {
		n.nm.repairs.Inc()
	}
}

// reanchor finds this layer's ring through the overlay's entry points and
// adopts the key-space successor it names: via a live landmark on the
// global ring, via the ring table (routed on the global ring) for a lower
// ring. Reports whether a successor was adopted.
func (n *Node) reanchor(layer int) bool {
	cand, ok := n.findAnchor(layer)
	if !ok {
		return false
	}
	n.mu.Lock()
	n.layers[layer-1].succ = []wire.Peer{cand}
	n.mu.Unlock()
	_, _ = n.callBG(cand.Addr, wire.Request{Type: wire.TNotify, Layer: layer, Peer: n.Self()})
	return true
}

// mergeScan looks for this node's key-space successor through the
// layer's entry points and adopts it when it is strictly closer than the
// current successor. On a healthy ring the entry points name this node
// itself and the scan is a no-op; after a healed partition they name a
// member of the other component, and adopting it is what splices the two
// rings back into one. repairLayer/mergeProbe cannot do this: they only
// fire when the successor list is dead or collapsed to a singleton, and
// a symmetric split leaves both components internally healthy.
func (n *Node) mergeScan(layer int) {
	cand, ok := n.findAnchor(layer)
	if !ok {
		return
	}
	n.mu.Lock()
	ls := n.layers[layer-1]
	var cur wire.Peer
	if len(ls.succ) > 0 {
		cur = ls.succ[0]
	}
	adopt := cur.Addr == "" || cur.Addr == n.addr ||
		(cand.Addr != cur.Addr && id.Between(peerID(cand), n.id, peerID(cur)))
	if adopt {
		// Prepend: the old successors are still clockwise-after the new
		// one, so they keep their value as fallbacks.
		list := append([]wire.Peer{cand}, ls.succ...)
		if len(list) > n.cfg.SuccListLen {
			list = list[:n.cfg.SuccListLen]
		}
		ls.succ = list
	}
	n.mu.Unlock()
	if adopt {
		_, _ = n.callBG(cand.Addr, wire.Request{Type: wire.TNotify, Layer: layer, Peer: n.Self()})
		n.nm.repairs.Inc()
	}
}

// findAnchor discovers this node's key-space successor in a layer from
// the overlay's entry points, without touching local routing state: via
// a live landmark for the global ring, via the ring table for a lower
// ring. ok is false when no entry point answers or they all name this
// node itself (the healthy steady state).
func (n *Node) findAnchor(layer int) (wire.Peer, bool) {
	if layer == 1 {
		n.mu.Lock()
		landmarks := append([]string(nil), n.landmarks...)
		n.mu.Unlock()
		for _, lm := range landmarks {
			if lm == n.addr {
				continue
			}
			owner, _, err := n.walkOwner(n.lifeCtx, lm, 1, n.id)
			if err != nil || owner.Addr == "" || owner.Addr == n.addr {
				continue
			}
			return owner, true
		}
		return wire.Peer{}, false
	}
	n.mu.Lock()
	var name string
	if layer-2 < len(n.ringNames) {
		name = n.ringNames[layer-2]
	}
	n.mu.Unlock()
	if name == "" {
		return wire.Peer{}, false
	}
	rid := ringID(layer, name)
	storing, _, err := n.walkOwner(n.lifeCtx, n.addr, 1, rid)
	if err != nil {
		return wire.Peer{}, false
	}
	resp, err := n.callBG(storing.Addr, wire.Request{
		Type:  wire.TGetRingTable,
		Table: wire.RingTable{Layer: layer, Name: name},
	})
	if err != nil || !resp.Found {
		return wire.Peer{}, false
	}
	member, err := n.liveTableMember(resp.Table)
	if err != nil || member.Addr == n.addr {
		return wire.Peer{}, false
	}
	rsucc, _, err := n.walkOwner(n.lifeCtx, member.Addr, layer, n.id)
	if err != nil || rsucc.Addr == "" || rsucc.Addr == n.addr {
		return wire.Peer{}, false
	}
	return rsucc, true
}

// RepairRingTables re-homes stored ring tables whose responsible node
// changed as the global ring grew, then re-announces this node's own
// rings' tables. The re-announce closes a split window: if the node that
// stored a ring table crashed before stabilization re-homed it, the next
// joiner binned into that ring would find no table and create a second,
// disjoint ring under the same name.
func (n *Node) RepairRingTables() error {
	n.mu.Lock()
	joined := n.joined
	tables := make([]wire.RingTable, 0, len(n.tables))
	for _, t := range n.tables {
		tables = append(tables, t)
	}
	names := append([]string(nil), n.ringNames...)
	n.mu.Unlock()
	// Deterministic order: n.tables is a map.
	sort.Slice(tables, func(i, j int) bool {
		if tables[i].Layer != tables[j].Layer {
			return tables[i].Layer < tables[j].Layer
		}
		return tables[i].Name < tables[j].Name
	})
	for _, t := range tables {
		owner, _, err := n.walkOwner(n.lifeCtx, n.addr, 1, ringID(t.Layer, t.Name))
		if err != nil {
			continue
		}
		if owner.Addr != n.addr {
			if _, err := n.callBG(owner.Addr, wire.Request{Type: wire.TPutRingTable, Table: t}); err == nil {
				n.mu.Lock()
				delete(n.tables, ringKey(t.Layer, t.Name))
				n.mu.Unlock()
			}
		}
	}
	if !joined {
		return nil
	}
	self := n.Self()
	for l, name := range names {
		layer := l + 2
		owner, _, err := n.walkOwner(n.lifeCtx, n.addr, 1, ringID(layer, name))
		if err != nil || owner.Addr == "" {
			continue
		}
		var resp wire.Response
		if owner.Addr == n.addr {
			n.mu.Lock()
			t, ok := n.tables[ringKey(layer, name)]
			n.mu.Unlock()
			resp = wire.Response{OK: true, Table: t, Found: ok}
		} else {
			resp, err = n.callBG(owner.Addr, wire.Request{
				Type:  wire.TGetRingTable,
				Table: wire.RingTable{Layer: layer, Name: name},
			})
			if err != nil {
				continue
			}
		}
		orig := resp.Table
		t := orig
		if !resp.Found {
			t = wire.RingTable{Layer: layer, Name: name}
		}
		t = n.pruneDeadBoundaries(t)
		t2, _ := updateBoundaries(t, self)
		if changed := t2 != orig; !resp.Found || changed {
			if owner.Addr == n.addr {
				n.mu.Lock()
				n.tables[ringKey(layer, name)] = t2
				n.mu.Unlock()
			} else {
				_, _ = n.callBG(owner.Addr, wire.Request{Type: wire.TPutRingTable, Table: t2})
			}
		}
	}
	return nil
}

// FixFingersOnce refreshes `count` fingers per layer (rotating), keeping
// lookup cost logarithmic. Consecutive fingers that fall inside the
// previous finger's range are filled without extra lookups.
func (n *Node) FixFingersOnce(count int) error {
	for layer := 1; layer <= n.cfg.Depth; layer++ {
		for c := 0; c < count; c++ {
			n.mu.Lock()
			ls := n.layers[layer-1]
			k := ls.nextFix
			ls.nextFix = (ls.nextFix + 1) % id.Bits
			prev := wire.Peer{}
			if k > 0 {
				prev = ls.fingers[k-1]
			}
			n.mu.Unlock()
			target := id.AddPow2(n.id, uint(k))
			var owner wire.Peer
			if prev.Addr != "" && id.InOpenClosed(target, n.id, peerID(prev)) {
				owner = prev // reuse: successor(target) == previous finger
			} else {
				var err error
				owner, _, err = n.walkOwner(n.lifeCtx, n.addr, layer, target)
				if err != nil {
					// A stale finger or successor pointed the walk at a
					// departed peer. Skip this slot — stabilization drops
					// the dead reference and the next refresh succeeds —
					// rather than aborting the whole maintenance round.
					continue
				}
			}
			n.mu.Lock()
			n.layers[layer-1].fingers[k] = owner
			n.mu.Unlock()
		}
	}
	return nil
}

// BuildAllFingers fills every finger of every layer (join-time bulk build;
// the range-reuse shortcut keeps this to O(log N) lookups per layer).
func (n *Node) BuildAllFingers() error {
	n.mu.Lock()
	for _, ls := range n.layers {
		ls.nextFix = 0
	}
	n.mu.Unlock()
	return n.FixFingersOnce(id.Bits)
}

// Leave departs the overlay gracefully (paper §3.3: "a node may leave the
// system"): in every layer the predecessor and successor are handed to
// each other, stored key/value pairs and ring tables migrate to the global
// successor, and the node stops serving. The node cannot be reused after
// Leave.
func (n *Node) Leave() error {
	// Tombstone our own one-hop membership and push it to the neighbors
	// that keep serving, before the ring handover dismantles them.
	n.announceLeaveRoutes()
	// Hand over per-layer neighbors, most local layer first.
	for layer := n.cfg.Depth; layer >= 1; layer-- {
		n.mu.Lock()
		ls := n.layers[layer-1]
		succ := append([]wire.Peer(nil), ls.succ...)
		pred := ls.pred
		n.mu.Unlock()
		var s0 wire.Peer
		for _, c := range succ {
			if c.Addr != "" && c.Addr != n.addr {
				if _, err := n.callBG(c.Addr, wire.Request{Type: wire.TPing}); err == nil {
					s0 = c
					break
				}
			}
		}
		if s0.Addr == "" {
			continue // singleton layer
		}
		_, _ = n.callBG(s0.Addr, wire.Request{Type: wire.TLeaveSucc, Layer: layer, Peer: pred})
		if pred.Addr != "" && pred.Addr != n.addr {
			handoff := append([]wire.Peer{s0}, succ...)
			_, _ = n.callBG(pred.Addr, wire.Request{Type: wire.TLeavePred, Layer: layer, Peers: handoff})
		}
	}
	// Migrate stored state to the global successor: the versioned items
	// travel in one THandoff batch (already key-sorted by Engine.Items,
	// so the handoff wire traffic is deterministic), the ring tables as
	// before.
	n.mu.Lock()
	gsucc := wire.Peer{}
	for _, c := range n.layers[0].succ {
		if c.Addr != "" && c.Addr != n.addr {
			gsucc = c
			break
		}
	}
	tables := make([]wire.RingTable, 0, len(n.tables))
	for _, t := range n.tables {
		tables = append(tables, t)
	}
	n.mu.Unlock()
	items := n.store.Items()
	sort.Slice(tables, func(i, j int) bool {
		if tables[i].Layer != tables[j].Layer {
			return tables[i].Layer < tables[j].Layer
		}
		return tables[i].Name < tables[j].Name
	})
	if gsucc.Addr != "" {
		if len(items) > 0 {
			if _, err := n.callBG(gsucc.Addr, wire.Request{Type: wire.THandoff, Items: items}); err == nil {
				n.co.Metrics.HandoffItems.Add(uint64(len(items)))
			}
		}
		for _, t := range tables {
			_, _ = n.callBG(gsucc.Addr, wire.Request{Type: wire.TPutRingTable, Table: t})
		}
	}
	return n.Close()
}

// Neighbors returns a copy of a layer's successor list and predecessor
// for inspection.
func (n *Node) Neighbors(layer int) (succ []wire.Peer, pred wire.Peer, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ls, err := n.layerFor(layer)
	if err != nil {
		return nil, wire.Peer{}, err
	}
	return append([]wire.Peer(nil), ls.succ...), ls.pred, nil
}
