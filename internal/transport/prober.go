package transport

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/wire"
)

// Prober estimates the one-way latency in milliseconds to a remote node.
// The distributed binning scheme only needs approximate values (paper
// §2.2), so implementations trade accuracy for convenience. The context
// bounds the whole probe (all samples); each sample is additionally
// capped by the implementation's per-probe timeout.
type Prober interface {
	Latency(ctx context.Context, addr string) (float64, error)
}

// RTTProber measures real round-trip times with ping requests and returns
// the minimum over Samples probes, halved.
type RTTProber struct {
	Samples int
	Timeout time.Duration
	// Dial overrides TCP for the probe calls (nil = TCP).
	Dial wire.DialFunc
}

// Latency implements Prober.
func (p *RTTProber) Latency(ctx context.Context, addr string) (float64, error) {
	samples := p.Samples
	if samples <= 0 {
		samples = 3
	}
	timeout := p.Timeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	best := math.Inf(1)
	for i := 0; i < samples; i++ {
		start := time.Now()
		if err := probe(ctx, p.Dial, addr, wire.Request{Type: wire.TPing}, timeout); err != nil {
			return 0, fmt.Errorf("transport: ping %s: %w", addr, err)
		}
		if rtt := time.Since(start); rtt.Seconds()*1000 < best {
			best = rtt.Seconds() * 1000
		}
	}
	return best / 2, nil
}

// probe performs one one-shot exchange bounded by timeout within the
// caller's context.
func probe(ctx context.Context, dial wire.DialFunc, addr string, req wire.Request, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	_, err := wire.CallVia(ctx, dial, nil, addr, req)
	return err
}

// VirtualProber places nodes on a synthetic 2-D plane: latency is the
// Euclidean distance between this node's coordinates and the remote
// node's published coordinates (fetched once per probe via get_info).
// Deterministic and sleep-free, it gives tests and demos full control
// over the binning structure.
type VirtualProber struct {
	Self    [2]float64
	Timeout time.Duration
	// Dial overrides TCP for the get_info call (nil = TCP).
	Dial wire.DialFunc
}

// Latency implements Prober.
func (p *VirtualProber) Latency(ctx context.Context, addr string) (float64, error) {
	timeout := p.Timeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	resp, err := wire.CallVia(ctx, p.Dial, nil, addr, wire.Request{Type: wire.TGetInfo})
	if err != nil {
		return 0, fmt.Errorf("transport: get_info %s: %w", addr, err)
	}
	dx := p.Self[0] - resp.Coord[0]
	dy := p.Self[1] - resp.Coord[1]
	return math.Hypot(dx, dy), nil
}
