package transport

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/wire"
)

func TestOptionsWithDefaultsFillsZeros(t *testing.T) {
	got := Options{}.WithDefaults()
	want := DefaultOptions()
	// Fields whose zero is meaningful stay zero.
	want.LookupCache = 0
	want.BreakerThreshold = 0
	if got != want {
		t.Errorf("WithDefaults() = %+v, want %+v", got, want)
	}
	// Explicit values survive.
	o := Options{Depth: 3, Codec: "gob", Retries: 1, PoolSize: -1}.WithDefaults()
	if o.Depth != 3 || o.Codec != "gob" || o.Retries != 1 || o.PoolSize != -1 {
		t.Errorf("explicit fields overwritten: %+v", o)
	}
}

func TestOptionsValidateRejections(t *testing.T) {
	base := DefaultOptions()
	cases := []struct {
		name   string
		mutate func(*Options)
	}{
		{"zero depth", func(o *Options) { o.Depth = 0 }},
		{"zero timeout", func(o *Options) { o.CallTimeout = 0 }},
		{"negative cache", func(o *Options) { o.LookupCache = -1 }},
		{"unknown codec", func(o *Options) { o.Codec = "json" }},
		{"zero replicas", func(o *Options) { o.Replicas = 0 }},
		{"write quorum above factor", func(o *Options) { o.WriteQuorum = 4 }},
		{"negative read quorum", func(o *Options) { o.ReadQuorum = -1 }},
		{"zero retries", func(o *Options) { o.Retries = 0 }},
		{"negative backoff", func(o *Options) { o.RetryBackoff = -time.Second }},
		{"max backoff below base", func(o *Options) { o.RetryMaxBackoff = time.Millisecond }},
		{"negative breaker threshold", func(o *Options) { o.BreakerThreshold = -1 }},
		{"breaker on without cooldown", func(o *Options) { o.BreakerCooldown = 0 }},
		{"negative ttl", func(o *Options) { o.TTL = -time.Second }},
		{"zero anti-entropy cadence", func(o *Options) { o.AntiEntropyEvery = 0 }},
		{"negative anti-entropy cadence", func(o *Options) { o.AntiEntropyEvery = -2 }},
	}
	for _, c := range cases {
		o := base
		c.mutate(&o)
		err := o.Validate()
		if !errors.Is(err, ErrBadOptions) {
			t.Errorf("%s: Validate() = %v, want ErrBadOptions", c.name, err)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("defaults must validate: %v", err)
	}
	// Breaker off doesn't require a cooldown.
	off := base
	off.BreakerThreshold, off.BreakerCooldown = 0, 0
	if err := off.Validate(); err != nil {
		t.Errorf("breaker-off options must validate: %v", err)
	}
}

func TestOptionsConfigTranslation(t *testing.T) {
	o := DefaultOptions()
	o.Codec, o.PoolSize, o.Coalesce, o.WriteQuorum = "gob", -1, true, 2
	cfg, err := o.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Codec == nil || cfg.Codec.Name() != "gob" {
		t.Errorf("codec = %v, want gob", cfg.Codec)
	}
	if cfg.PoolSize != -1 || !cfg.Coalesce {
		t.Errorf("pool/coalesce not carried: %+v", cfg)
	}
	if cfg.Replication.Factor != 3 || cfg.Replication.WriteQuorum != 2 {
		t.Errorf("replication = %+v", cfg.Replication)
	}
	if cfg.Retry.MaxAttempts != 3 || cfg.Retry.BaseBackoff != 20*time.Millisecond {
		t.Errorf("retry = %+v", cfg.Retry)
	}
	if cfg.Breaker.Threshold != 5 {
		t.Errorf("breaker threshold = %d, want 5", cfg.Breaker.Threshold)
	}
	if cfg.AntiEntropyEvery != 1 {
		t.Errorf("anti-entropy cadence = %d, want 1", cfg.AntiEntropyEvery)
	}

	// TTL rides through untouched.
	withTTL := DefaultOptions()
	withTTL.TTL, withTTL.AntiEntropyEvery = time.Minute, 4
	cfgTTL, err := withTTL.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfgTTL.TTL != time.Minute || cfgTTL.AntiEntropyEvery != 4 {
		t.Errorf("ttl/cadence = %v/%d, want 1m/4", cfgTTL.TTL, cfgTTL.AntiEntropyEvery)
	}

	// Breaker 0 = off must become the wire -1 sentinel, never the wire
	// zero value (which means "default").
	cfg, err = Options{BreakerThreshold: 0}.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Breaker.Threshold != -1 {
		t.Errorf("breaker-off threshold = %d, want -1", cfg.Breaker.Threshold)
	}

	if _, err := (Options{Codec: "xml"}).Config(); !errors.Is(err, ErrBadOptions) {
		t.Errorf("bad codec Config() = %v, want ErrBadOptions", err)
	}
}

func TestOptionsConfigRunsANode(t *testing.T) {
	cfg, err := DefaultOptions().Config()
	if err != nil {
		t.Fatal(err)
	}
	nd, err := Start("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	if !strings.Contains(nd.Addr(), "127.0.0.1") {
		t.Errorf("addr = %q", nd.Addr())
	}
	if resp, err := wireCall(nd.Addr(), wire.Request{Type: wire.TPing}, time.Second); err != nil || !resp.OK {
		t.Errorf("ping via options-built node: %v (%+v)", err, resp)
	}
}
