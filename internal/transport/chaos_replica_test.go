package transport

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/metrics"
	"repro/internal/replica"
	"repro/internal/wire"
)

// replicaChaosSeed fixes the injected-fault sequence for the replication
// chaos harness; the test asserts the recorded call log replays
// bit-identically against it.
const replicaChaosSeed = 2024

// byIDOrder returns the nodes sorted ascending by identifier — ring
// order, which is also replica-set order.
func byIDOrder(nodes []*Node) []*Node {
	out := append([]*Node(nil), nodes...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID().Less(out[j].ID()) })
	return out
}

// replicaSetOf computes a key's expected replica set among the given
// nodes: the owner (clockwise successor of the key) plus the next
// factor-1 nodes in ring order.
func replicaSetOf(nodes []*Node, key string, factor int) []*Node {
	ring := byIDOrder(nodes)
	kid := LiveKeyID(key)
	start := 0
	for i, nd := range ring {
		if !nd.ID().Less(kid) {
			start = i
			break
		}
	}
	set := make([]*Node, 0, factor)
	for d := 0; d < factor && d < len(ring); d++ {
		set = append(set, ring[(start+d)%len(ring)])
	}
	return set
}

// TestChaosReplicationSurvivesCrashesAndPartition is the replication
// chaos harness: an 8-node cluster with replication factor 3 and
// majority quorums acknowledges a wave of writes, then two members of
// one key's replica set crash mid-write — after the write was
// acknowledged but before re-replication could run. Death-triggered
// sweeps must restore the factor, a minority partition is cut and
// healed, and every acknowledged write must stay readable throughout.
// The injected-fault sequence must replay deterministically from the
// seed.
func TestChaosReplicationSurvivesCrashesAndPartition(t *testing.T) {
	nw := faultnet.New(replicaChaosSeed)
	freg := metrics.NewRegistry()
	nw.Instrument(freg)

	// midwrite is armed with the address of the first crash victim; the
	// wrapper lets that victim apply one TStorePut for the mid-write key
	// (so the write quorum is reached), then crashes both victims before
	// the coordinator can reach the third member. Everything runs on the
	// test goroutine — Put is synchronous — so no locking is needed.
	var (
		victimAddr string
		midKey     string
		crash      func()
		crashed    bool
	)
	wrap := func(self string, inner wire.Caller) wire.Caller {
		faulty := nw.Caller(self, inner)
		return wire.CallerFunc(func(ctx context.Context, addr string, req wire.Request) (wire.Response, error) {
			resp, err := faulty.Call(ctx, addr, req)
			if !crashed && addr == victimAddr && req.Type == wire.TStorePut && req.Name == midKey && err == nil {
				crashed = true
				crash()
			}
			return resp, err
		})
	}

	// Replication factor 3 with majority write quorum and a 2-answer
	// read quorum, so reads cross-check replicas. The breaker stays off:
	// its cooldown is wall-clock and this harness pins determinism on
	// the faultnet log instead.
	nodes := chaosCluster(t, 8, wrap, wire.BreakerPolicy{Threshold: -1}, func(cfg *Config) {
		cfg.Replication = replica.Options{Factor: 3, WriteQuorum: 2, ReadQuorum: 2}
	})
	bindAll(nw, nodes)
	logical := map[string]string{}
	for i, nd := range nodes {
		logical[nd.Addr()] = fmt.Sprintf("n%d", i)
	}

	// Wave 1: acknowledged writes across the cluster. Every one of these
	// must stay readable until the end of the test, through two crashes
	// and a partition — that is the durability contract W=2 buys.
	acked := map[string]string{}
	for i := 0; i < 12; i++ {
		key := fmt.Sprintf("chaos-rep-%d", i)
		val := "v-" + key
		if err := nodes[i%len(nodes)].Put(context.Background(), key, []byte(val)); err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
		acked[key] = val
	}

	// Pick a mid-write key whose second and third replica-set members are
	// both crashable (not the landmarks nodes[0] and nodes[1]).
	landmark := map[*Node]bool{nodes[0]: true, nodes[1]: true}
	var victims []*Node
	for i := 0; midKey == ""; i++ {
		key := fmt.Sprintf("mid-write-%d", i)
		set := replicaSetOf(nodes, key, 3)
		if !landmark[set[1]] && !landmark[set[2]] {
			midKey = key
			victims = []*Node{set[1], set[2]}
		}
		if i > 256 {
			t.Fatal("no key found with two crashable replica-set members")
		}
	}
	victimAddr = victims[0].Addr()
	crash = func() {
		for _, v := range victims {
			_ = v.Close()
		}
	}

	// The mid-write put: the owner and the first replica ack (write
	// quorum reached), then both non-owner members crash. The write is
	// acknowledged with a single surviving copy.
	midVal := "v-" + midKey
	if err := nodes[0].Put(context.Background(), midKey, []byte(midVal)); err != nil {
		t.Fatalf("mid-write put %s: %v", midKey, err)
	}
	if !crashed {
		t.Fatalf("crash hook never fired: %s did not route a store to %s", midKey, logical[victimAddr])
	}
	acked[midKey] = midVal

	survivors := make([]*Node, 0, len(nodes)-2)
	for _, nd := range nodes {
		if nd != victims[0] && nd != victims[1] {
			survivors = append(survivors, nd)
		}
	}

	// Death-triggered re-replication: suspicion evicts the crashed
	// members and the sweeps re-home their keys. Every acknowledged
	// write must read back, mid-write key included.
	stabilizeAll(t, survivors, 6)
	for _, nd := range survivors {
		if err := nd.BuildAllFingers(); err != nil {
			t.Fatalf("rebuild fingers after crashes: %v", err)
		}
	}
	for key, want := range acked {
		v, err := survivors[2].Get(context.Background(), key)
		if err != nil {
			t.Fatalf("get %s after double crash: %v", key, err)
		}
		if string(v) != want {
			t.Fatalf("get %s after double crash = %q, want %q", key, v, want)
		}
	}

	// Cut off a two-node minority (never the landmarks), with steady
	// chaos noise on the majority side's links. The majority evicts the
	// minority, sweeps restore every replica set within the majority,
	// and all acknowledged writes stay readable there.
	var minority, majority []*Node
	for _, nd := range survivors {
		if !landmark[nd] && len(minority) < 2 {
			minority = append(minority, nd)
		} else {
			majority = append(majority, nd)
		}
	}
	var minNames, majNames []string
	for _, nd := range minority {
		minNames = append(minNames, logical[nd.Addr()])
	}
	for _, nd := range majority {
		majNames = append(majNames, logical[nd.Addr()])
	}
	nw.SetRules(faultnet.Rule{Drop: 0.10}, faultnet.Rule{Delay: time.Millisecond})
	nw.Partition(majNames, minNames)
	stabilizeAll(t, majority, 6)
	for _, nd := range majority {
		if err := nd.BuildAllFingers(); err != nil {
			t.Fatalf("rebuild fingers under partition: %v", err)
		}
	}
	for key, want := range acked {
		v, err := majority[1].Get(context.Background(), key)
		if err != nil {
			t.Fatalf("get %s during partition: %v", key, err)
		}
		if string(v) != want {
			t.Fatalf("get %s during partition = %q, want %q", key, v, want)
		}
	}

	// Heal, drop the noise, reassemble, and require every surviving node
	// to serve every acknowledged write.
	nw.Heal()
	nw.SetRules()
	stabilizeAll(t, survivors, 6)
	for _, nd := range survivors {
		if err := nd.BuildAllFingers(); err != nil {
			t.Fatalf("rebuild fingers after heal: %v", err)
		}
	}
	for _, nd := range survivors {
		for key, want := range acked {
			v, err := nd.Get(context.Background(), key)
			if err != nil {
				t.Fatalf("get %s from %s after heal: %v", key, logical[nd.Addr()], err)
			}
			if string(v) != want {
				t.Fatalf("get %s from %s after heal = %q, want %q", key, logical[nd.Addr()], v, want)
			}
		}
	}

	// Determinism: the recorded logical call log replayed against the
	// same seed must reproduce the exact injected-fault sequence.
	events := nw.Events()
	if len(events) == 0 {
		t.Fatal("replication chaos run injected no faults")
	}
	replayed := faultnet.Replay(replicaChaosSeed, nw.Log())
	if len(replayed) != len(events) {
		t.Fatalf("replay produced %d events, live run %d", len(replayed), len(events))
	}
	for i := range events {
		if events[i].String() != replayed[i].String() {
			t.Fatalf("fault %d diverged: live %q, replay %q", i, events[i], replayed[i])
		}
	}

	// The re-replication work must be visible in the metrics exposition
	// of at least one survivor: sweeps pushed bytes and the quorum
	// histograms recorded traffic.
	sawRerepl := false
	for _, nd := range survivors {
		var b strings.Builder
		if _, err := nd.Metrics().WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		s := b.String()
		for _, name := range []string{"rereplication_bytes_total", "replica_lag", "quorum_write_seconds", "quorum_read_seconds"} {
			if !strings.Contains(s, name) {
				t.Errorf("exposition missing %s", name)
			}
		}
		if strings.Contains(s, "rereplication_bytes_total ") && !strings.Contains(s, "rereplication_bytes_total 0\n") {
			sawRerepl = true
		}
	}
	if !sawRerepl {
		t.Error("no survivor recorded re-replication bytes despite two crashed replica holders")
	}
}
