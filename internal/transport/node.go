// Package transport implements live HIERAS nodes speaking the wire
// protocol over TCP — the "real implementation" the paper lists as future
// work. Nodes join through the §3.3 protocol (landmark probing, ring-table
// lookup, per-ring integration), route hierarchically, and maintain their
// rings with Chord-style stabilization. Lookups are client-driven and
// iterative, so request handlers never issue nested RPCs and cannot
// deadlock.
//
// Latency probing is pluggable: RTTProber measures real round trips, while
// VirtualProber lets tests and demos place nodes on a synthetic coordinate
// plane (deterministic binning without sleeping).
package transport

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/binning"
	"repro/internal/id"
	"repro/internal/metrics"
	"repro/internal/replica"
	"repro/internal/routes"
	"repro/internal/wire"
)

// Route modes: the lookup acceleration tier a node runs with.
const (
	// RouteClassic walks the layered rings on every lookup (the paper's
	// procedure, no acceleration).
	RouteClassic = "classic"
	// RouteCached consults the verified location cache before walking
	// (Config.LookupCache entries; the default when a cache is sized).
	RouteCached = "cached"
	// RouteOneHop answers from the gossip-maintained near-full route
	// table first: one verification RPC on the table's owner, falling
	// back to the classic walk on miss or staleness.
	RouteOneHop = "onehop"
)

// Config parametrises a live node.
type Config struct {
	// Depth is the hierarchy depth (>= 1; 1 = plain Chord).
	Depth int
	// Ladder overrides the binning ladder (default binning.DefaultLadder).
	Ladder binning.Ladder
	// Landmarks are landmark node addresses. Required for Depth > 1 when
	// creating a network; joiners inherit the bootstrap's list when empty.
	Landmarks []string
	// SuccListLen is the per-layer successor list length (default 4).
	SuccListLen int
	// Coord is the node's position on the virtual latency plane, used by
	// VirtualProber and published via get_info.
	Coord [2]float64
	// Prober estimates latency to landmarks (default: VirtualProber over
	// Coord).
	Prober Prober
	// CallTimeout bounds each RPC attempt (default 3s). It becomes the
	// retry policy's PerAttempt timeout and the write deadline of pooled
	// and server-side connections.
	CallTimeout time.Duration
	// Codec selects the wire encoding for outgoing calls (default
	// wire.DefaultCodec(), the binary codec; wire.Gob is the
	// compatibility codec). Servers accept either: the client announces
	// its codec in the session preamble.
	Codec wire.Codec
	// PoolSize is the per-peer connection pool size (0 = wire
	// DefaultPoolSize). Negative disables pooling and opens one
	// connection per call — the pre-overhaul behaviour, kept as a
	// benchmark baseline.
	PoolSize int
	// Coalesce deduplicates identical in-flight read RPCs (TFindClosest,
	// TStoreGet): concurrent callers share one exchange. Off by default
	// because collapsing calls changes the observable call sequence,
	// which deterministic fault-replay harnesses depend on.
	Coalesce bool
	// Retry configures the retry policy applied to every outgoing RPC:
	// exponential backoff with jitter, idempotency-aware (state-installing
	// writes are only retried when the request provably never reached the
	// peer). The zero value uses wire defaults; MaxAttempts 1 disables
	// retrying.
	Retry wire.RetryPolicy
	// Breaker configures the per-peer circuit breaker that doubles as the
	// failure-suspicion tracker feeding the TEvict path. The zero value
	// uses wire defaults; Threshold -1 disables it.
	Breaker wire.BreakerPolicy
	// EvictSuspicion is the consecutive transport-failure count at which a
	// hop is reported dead via TEvict and purged locally. Default: the
	// effective Retry.MaxAttempts, i.e. one fully retried failed call.
	EvictSuspicion int
	// WrapCaller, when non-nil, wraps the node's instrumented base caller
	// before the retry layer is stacked on top; fault-injection harnesses
	// (internal/faultnet) interpose here, so retries and breakers are
	// exercised against the injected faults. self is the node's own
	// listen address.
	WrapCaller func(self string, inner wire.Caller) wire.Caller
	// Metrics is the registry the node instruments itself against. Nil
	// creates a fresh per-node registry (reachable via Node.Metrics); a
	// registry must not be shared between nodes.
	Metrics *metrics.Registry
	// LookupCache is the capacity of the client-side key→owner location
	// cache consulted by Lookup (0 disables caching). Cached owners are
	// verified with a single RPC before use, so a stale entry costs one
	// wasted call, never a wrong answer.
	LookupCache int
	// RouteMode selects the lookup acceleration tier: RouteClassic,
	// RouteCached or RouteOneHop. Empty derives the mode from
	// LookupCache for compatibility (cached when a cache is sized,
	// classic otherwise). RouteOneHop maintains a gossip-fed near-full
	// membership table per ring and answers lookups from it with a
	// single verification RPC; the table is disseminated via
	// TRouteGossip on the stabilize cadence.
	RouteMode string
	// DropRouteGossip is a seeded-bug seam for the invariant harness: the
	// node keeps its one-hop table but neither pushes nor merges gossip,
	// so membership changes stop disseminating and remote tables go
	// stale. Production code must never set it.
	DropRouteGossip bool
	// Replication configures the replicated KV layer: replica factor,
	// write quorum and read quorum (see replica.Options). The zero value
	// uses the replica defaults (factor 3, majority writes, single-reader
	// reads).
	Replication replica.Options
	// AntiEntropyEvery runs the digest-based anti-entropy round on every
	// k-th StabilizeOnce round (default 1 = every round). Like sweeps,
	// evictions force a round immediately, so death-triggered repair does
	// not wait out the cadence.
	AntiEntropyEvery int
	// TTL is the lifetime stamped onto coordinated writes, in the units
	// of Clock — nanoseconds under the default wall clock, so a plain
	// time.Duration reads naturally. 0 means data never expires.
	// Tombstoned deletes reuse TTL as their garbage-collection grace
	// period; it must exceed the cluster's convergence time or a delete
	// can be forgotten before every replica learns it.
	TTL time.Duration
	// Clock is the data-lifecycle time base items' Expire stamps are
	// judged against (default: wall-clock nanoseconds). Deterministic
	// harnesses inject a logical tick counter; every node of a cluster
	// must share one time base.
	Clock func() uint64
	// Listener, when non-nil, is served instead of a fresh TCP listener;
	// its Addr().String() becomes the node's address. In-process harnesses
	// pass a wire.MemNet listener so node identifiers (derived from the
	// address) are identical on every run.
	Listener net.Listener
	// Dial, when non-nil, replaces TCP for every outgoing call and latency
	// probe. Pair it with Listener (wire.MemNet provides both ends).
	Dial wire.DialFunc
}

func (c Config) withDefaults() Config {
	if c.Depth == 0 {
		c.Depth = 2
	}
	if c.SuccListLen == 0 {
		c.SuccListLen = 4
	}
	if c.CallTimeout == 0 {
		c.CallTimeout = 3 * time.Second
	}
	if c.AntiEntropyEvery < 1 {
		c.AntiEntropyEvery = 1
	}
	if c.RouteMode == "" {
		if c.LookupCache > 0 {
			c.RouteMode = RouteCached
		} else {
			c.RouteMode = RouteClassic
		}
	}
	c.Replication = c.Replication.WithDefaults()
	return c
}

// layerState is one ring's routing state on a node.
type layerState struct {
	name    string // ring name; "" for the global ring
	succ    []wire.Peer
	pred    wire.Peer
	fingers []wire.Peer // index k ~ successor(self + 2^k); zero Addr = unset
	nextFix int
}

// Node is a live HIERAS peer.
type Node struct {
	cfg  Config
	id   id.ID
	addr string
	ln   net.Listener

	mu        sync.Mutex
	layers    []*layerState // layers[0] = global ring, layers[l] = layer l+1
	ringNames []string      // per lower layer
	landmarks []string
	joined    bool                      // member of an overlay (CreateNetwork/Join succeeded); gates repair
	tables    map[string]wire.RingTable // key = ringKey(layer, name)
	aeTick    int                       // StabilizeOnce rounds since the last anti-entropy round
	needSweep bool                      // eviction observed; anti-entropy on the next round

	closed  chan struct{}
	handled int64 // requests served (also exported via the registry)
	wg      sync.WaitGroup

	// lifeCtx is cancelled by Close, so in-flight maintenance RPC chains
	// (sweeps, anti-entropy) abort promptly instead of stalling shutdown.
	lifeCtx    context.Context
	lifeCancel context.CancelFunc
	clock      func() uint64 // data-lifecycle time base (Config.Clock or wall nanos)

	connMu sync.Mutex
	conns  map[net.Conn]struct{} // live server-side sessions, force-closed on Close

	nm        *nodeMetrics
	store     *replica.Engine      // versioned local KV store
	co        *replica.Coordinator // quorum write/read/sweep driver over the store
	cache     *lookupCache         // nil when Config.LookupCache == 0
	routes    *routes.Table        // one-hop membership table; nil unless RouteMode == RouteOneHop
	caller    wire.Caller          // full outgoing chain: (coalescer) → retrier → (injector) → instrumented pool
	retrier   *wire.Retrier
	coalescer *wire.Coalescer // nil unless Config.Coalesce; drained on Close
	pool      *wire.Pool
	suspect   int // consecutive-failure count that triggers eviction
}

// NodeID derives a live node's identifier from its address.
func NodeID(addr string) id.ID { return id.HashString("live:" + addr) }

// LiveKeyID derives the identifier of an application key (shared with the
// kv convention).
func LiveKeyID(key string) id.ID { return id.HashString("key:" + key) }

// liveKeyBytes is LiveKeyID in the raw-array form the replica layer's
// range digests use.
func liveKeyBytes(key string) [20]byte { return [20]byte(LiveKeyID(key)) }

func ringKey(layer int, name string) string { return fmt.Sprintf("%d|%s", layer, name) }

func ringID(layer int, name string) id.ID {
	return id.HashString(fmt.Sprintf("ring:%d:%s", layer, name))
}

func peerID(p wire.Peer) id.ID { return id.ID(p.ID) }

// Start listens on listenAddr ("127.0.0.1:0" for tests) and serves the
// protocol. The node is not part of any network until CreateNetwork or
// Join is called.
func Start(listenAddr string, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Depth < 1 {
		return nil, fmt.Errorf("transport: depth must be >= 1")
	}
	switch cfg.RouteMode {
	case RouteClassic:
		// An explicit classic mode switches every acceleration tier off.
		cfg.LookupCache = 0
	case RouteCached:
		if cfg.LookupCache == 0 {
			cfg.LookupCache = 256
		}
	case RouteOneHop:
	default:
		return nil, fmt.Errorf("transport: unknown route mode %q", cfg.RouteMode)
	}
	if cfg.Depth > 1 && cfg.Ladder == nil {
		l, err := binning.DefaultLadder(cfg.Depth)
		if err != nil {
			return nil, err
		}
		cfg.Ladder = l
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", listenAddr)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
		}
	}
	n := &Node{
		cfg:    cfg,
		addr:   ln.Addr().String(),
		ln:     ln,
		store:  replica.NewEngine(),
		tables: make(map[string]wire.RingTable),
		closed: make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
	}
	n.id = NodeID(n.addr)
	n.lifeCtx, n.lifeCancel = context.WithCancel(context.Background()) //lint:allow ctxflow the node lifecycle root: Close cancels it, and every maintenance chain derives from it
	n.clock = cfg.Clock
	if n.clock == nil {
		n.clock = func() uint64 { return uint64(time.Now().UnixNano()) }
	}
	n.store.SetClock(n.clock)
	if cfg.Prober == nil {
		n.cfg.Prober = &VirtualProber{Self: cfg.Coord, Timeout: cfg.CallTimeout, Dial: cfg.Dial}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	n.nm = newNodeMetrics(reg, cfg.Depth)
	n.pool = wire.NewPool(wire.PoolOptions{
		Codec:        cfg.Codec,
		Dial:         cfg.Dial,
		Size:         cfg.PoolSize,
		DialTimeout:  cfg.CallTimeout,
		WriteTimeout: cfg.CallTimeout,
		ConnWrap:     n.nm.wm.CountConn,
	})
	base := n.nm.wm.Wrap(n.pool)
	if cfg.WrapCaller != nil {
		base = cfg.WrapCaller(n.addr, base)
	}
	retry := cfg.Retry
	if retry.PerAttempt == 0 {
		retry.PerAttempt = cfg.CallTimeout
	}
	n.retrier = wire.NewRetrier(base, retry, cfg.Breaker, reg)
	n.caller = n.retrier
	if cfg.Coalesce {
		n.coalescer = wire.NewCoalescer(n.retrier, reg)
		n.caller = n.coalescer
	}
	n.suspect = cfg.EvictSuspicion
	if n.suspect <= 0 {
		n.suspect = cfg.Retry.EffectiveAttempts()
	}
	if cfg.LookupCache > 0 {
		n.cache = newLookupCache(cfg.LookupCache)
	}
	if cfg.RouteMode == RouteOneHop {
		n.routes = routes.New()
	}
	n.co = &replica.Coordinator{
		Self:    n.addr,
		Opts:    cfg.Replication,
		Engine:  n.store,
		Resolve: n.resolveReplicaSet,
		Call:    n.call,
		Metrics: replica.NewMetrics(reg),
		Now:     time.Now,
		KeyID:   liveKeyBytes,
		Clock:   n.clock,
		TTL:     uint64(cfg.TTL),
	}
	n.layers = make([]*layerState, cfg.Depth)
	for i := range n.layers {
		n.layers[i] = &layerState{fingers: make([]wire.Peer, id.Bits)}
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.addr }

// ID returns the node's identifier.
func (n *Node) ID() id.ID { return n.id }

// Self returns the node as a wire peer.
func (n *Node) Self() wire.Peer { return wire.Peer{Addr: n.addr, ID: [20]byte(n.id)} }

// SetLandmarks replaces the node's landmark address list. It must be
// called before CreateNetwork or Join; it exists because the first nodes
// of a network are usually the landmarks themselves, so their addresses
// are only known after they have started listening.
func (n *Node) SetLandmarks(landmarks []string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.Landmarks = append([]string(nil), landmarks...)
}

// RingNames returns the node's lower-layer ring names (nil before
// CreateNetwork/Join).
func (n *Node) RingNames() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, len(n.ringNames))
	copy(out, n.ringNames)
	return out
}

// Handled returns the number of requests this node has served.
func (n *Node) Handled() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.handled
}

// Close stops serving. Outstanding handlers finish first.
func (n *Node) Close() error {
	select {
	case <-n.closed:
		return nil
	default:
	}
	close(n.closed)
	n.lifeCancel() // abort in-flight sweeps and anti-entropy rounds
	err := n.ln.Close()
	n.pool.Close()
	if n.coalescer != nil {
		// The pool just failed every in-flight exchange, so the shared
		// flights end promptly; wait so no flight goroutine outlives Close.
		n.coalescer.Close()
	}
	// Peers hold persistent pooled sessions to this node; their server
	// goroutines would otherwise block in a frame read until the idle
	// timeout. Force-close them — ServeConn drains in-flight handlers
	// before returning.
	n.connMu.Lock()
	for c := range n.conns {
		_ = c.Close()
	}
	n.connMu.Unlock()
	n.wg.Wait()
	return err
}

// track registers a server-side connection for shutdown, or closes it
// immediately when the node is already shutting down.
func (n *Node) track(c net.Conn) bool {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	select {
	case <-n.closed:
		_ = c.Close()
		return false
	default:
	}
	n.conns[c] = struct{}{}
	return true
}

func (n *Node) untrack(c net.Conn) {
	n.connMu.Lock()
	delete(n.conns, c)
	n.connMu.Unlock()
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.closed:
				return
			default:
				continue
			}
		}
		if !n.track(conn) {
			continue
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer n.untrack(conn)
			_ = wire.ServeConn(n.nm.wm.CountConn(conn), n.handle, wire.ServeOptions{
				WriteTimeout: n.cfg.CallTimeout,
				Observe:      n.nm.wm.ObserveServed,
			})
		}()
	}
}

// layerFor maps a wire layer number (1 = global) to state.
func (n *Node) layerFor(layer int) (*layerState, error) {
	if layer < 1 || layer > len(n.layers) {
		return nil, fmt.Errorf("layer %d out of range (depth %d)", layer, len(n.layers))
	}
	return n.layers[layer-1], nil
}

// handle serves one request. It takes the node mutex and never performs
// outgoing RPCs.
func (n *Node) handle(req wire.Request) wire.Response {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handled++
	switch req.Type {
	case wire.TPing:
		return wire.Response{OK: true, Self: n.selfLocked()}

	case wire.TGetInfo:
		names := make([]string, len(n.ringNames))
		copy(names, n.ringNames)
		lms := make([]string, len(n.landmarks))
		copy(lms, n.landmarks)
		return wire.Response{
			OK: true, Self: n.selfLocked(), RingNames: names,
			Landmarks: lms, Coord: n.cfg.Coord,
		}

	case wire.TFindClosest:
		return n.findClosestLocked(req)

	case wire.TGetNeighbors:
		ls, err := n.layerFor(req.Layer)
		if err != nil {
			return wire.Errorf("%v", err)
		}
		succ := make([]wire.Peer, len(ls.succ))
		copy(succ, ls.succ)
		return wire.Response{OK: true, Self: n.selfLocked(), Succ: succ, Pred: ls.pred}

	case wire.TNotify:
		ls, err := n.layerFor(req.Layer)
		if err != nil {
			return wire.Errorf("%v", err)
		}
		cand := req.Peer
		if cand.Addr == "" {
			return wire.Errorf("notify without candidate")
		}
		if ls.pred.Addr == "" || id.Between(peerID(cand), peerID(ls.pred), n.id) {
			ls.pred = cand
		}
		return wire.Response{OK: true}

	case wire.TGetRingTable:
		t, ok := n.tables[ringKey(req.Table.Layer, req.Table.Name)]
		return wire.Response{OK: true, Table: t, Found: ok}

	case wire.TPutRingTable:
		if req.Table.Name == "" || req.Table.Layer < 2 {
			return wire.Errorf("invalid ring table %d:%q", req.Table.Layer, req.Table.Name)
		}
		n.tables[ringKey(req.Table.Layer, req.Table.Name)] = req.Table
		return wire.Response{OK: true}

	case wire.TPut:
		// Legacy unversioned write: stamp it one past the local version so
		// it merges into the versioned store without regressing newer data.
		if req.Name == "" {
			return wire.Errorf("put without key")
		}
		v := make([]byte, len(req.Value))
		copy(v, req.Value)
		n.store.Bump(req.Name, n.addr, v)
		return wire.Response{OK: true}

	case wire.TGet:
		it, ok := n.store.Get(req.Name)
		if !ok || !replica.Alive(it, n.clock()) {
			// The legacy read hides tombstones and expired items: a deleted
			// or dead key reads as absent.
			return wire.Errorf("key %q not found", req.Name)
		}
		out := make([]byte, len(it.Value))
		copy(out, it.Value)
		return wire.Response{OK: true, Value: out}

	case wire.TStorePut:
		if len(req.Items) != 1 || req.Items[0].Key == "" {
			return wire.Errorf("store_put wants exactly one keyed item, got %d", len(req.Items))
		}
		return wire.Response{OK: true, Applied: n.store.ApplyBatch(req.Items)}

	case wire.TStoreGet:
		it, ok := n.store.Get(req.Name)
		if !ok {
			return wire.Response{OK: true, Found: false}
		}
		// Tombstones and lifecycle stamps are reported as held: quorum
		// readers must see a fresher tombstone outrank stale live copies,
		// or a delete would resurrect through read-repair.
		out := make([]byte, len(it.Value))
		copy(out, it.Value)
		return wire.Response{OK: true, Found: true, Value: out, Version: it.Version, Writer: it.Writer,
			Expire: it.Expire, Tombstone: it.Tombstone}

	case wire.TReplicate, wire.THandoff:
		for _, it := range req.Items {
			if it.Key == "" {
				return wire.Errorf("%s with unkeyed item", req.Type)
			}
		}
		return wire.Response{OK: true, Applied: n.store.ApplyBatch(req.Items)}

	case wire.TDigest:
		// Anti-entropy digest: fold local items in the arc (Key, KeyHi]
		// into the fixed bucket layout. Pure read over the engine — no
		// outgoing RPCs, preserving the deadlock-free handler contract.
		return wire.Response{OK: true, Digests: n.store.RangeDigest(liveKeyBytes, req.Key, req.KeyHi)}

	case wire.TSyncPull:
		if len(req.Buckets) == 0 {
			return wire.Errorf("sync_pull without bucket list")
		}
		for _, b := range req.Buckets {
			if b >= replica.DigestBuckets {
				return wire.Errorf("sync_pull bucket %d out of range (protocol has %d)", b, replica.DigestBuckets)
			}
		}
		return wire.Response{OK: true, Items: n.store.RangeItems(liveKeyBytes, req.Key, req.KeyHi, req.Buckets)}

	case wire.TRouteGossip:
		// Push-pull gossip for the one-hop tables: merge the pushed event
		// set, answer with the events we hold that the pusher lacks. Both
		// halves are local table work, so the no-outgoing-RPC handler
		// contract holds.
		if n.routes == nil || n.cfg.DropRouteGossip {
			// Not running the tier (or the seeded-bug seam is active):
			// acknowledge without merging so mixed-mode clusters interoperate.
			return wire.Response{OK: true}
		}
		applied := n.routes.ApplyAll(req.Events)
		return wire.Response{OK: true, Applied: applied, Events: n.routes.Diff(req.Events)}

	case wire.TLeaveSucc:
		ls, err := n.layerFor(req.Layer)
		if err != nil {
			return wire.Errorf("%v", err)
		}
		if req.Peer.Addr != "" && req.Peer.Addr != n.addr {
			ls.pred = req.Peer
		} else {
			ls.pred = wire.Peer{}
		}
		return wire.Response{OK: true}

	case wire.TEvict:
		ls, err := n.layerFor(req.Layer)
		if err != nil {
			return wire.Errorf("%v", err)
		}
		dead := req.Peer.Addr
		if dead == "" || dead == n.addr {
			return wire.Errorf("invalid eviction target %q", dead)
		}
		purgePeerLocked(ls, dead)
		n.recordEvictLocked(req.Layer, dead)
		return wire.Response{OK: true}

	case wire.TLeavePred:
		ls, err := n.layerFor(req.Layer)
		if err != nil {
			return wire.Errorf("%v", err)
		}
		list := make([]wire.Peer, 0, len(req.Peers))
		for _, p := range req.Peers {
			if p.Addr != "" && p.Addr != n.addr {
				list = append(list, p)
			}
		}
		if len(list) == 0 {
			list = []wire.Peer{n.selfLocked()}
		}
		ls.succ = list
		return wire.Response{OK: true}

	default:
		return wire.Errorf("unknown message type %v", req.Type)
	}
}

func (n *Node) selfLocked() wire.Peer { return wire.Peer{Addr: n.addr, ID: [20]byte(n.id)} }

// purgePeerLocked removes every reference to a dead address from one
// layer's fingers, successor list and predecessor (Chord's timeout
// handling; shared by the TEvict handler and local eviction).
func purgePeerLocked(ls *layerState, dead string) {
	for k := range ls.fingers {
		if ls.fingers[k].Addr == dead {
			ls.fingers[k] = wire.Peer{}
		}
	}
	kept := ls.succ[:0]
	for _, s := range ls.succ {
		if s.Addr != dead {
			kept = append(kept, s)
		}
	}
	ls.succ = kept
	if ls.pred.Addr == dead {
		ls.pred = wire.Peer{}
	}
}

// evictLocal purges a suspected-dead peer from this node's own routing
// state in one layer, so a degraded lookup restarting from self does not
// immediately walk back into the dead hop.
func (n *Node) evictLocal(layer int, dead string) {
	if dead == "" || dead == n.addr {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.needSweep = true // a confirmed death means replicas need a new home
	if ls, err := n.layerFor(layer); err == nil {
		purgePeerLocked(ls, dead)
	}
	n.recordEvictLocked(layer, dead)
}

// ringNameLocked maps a layer to the ring name used in route-gossip
// events: the global ring is "", lower layers use this node's own ring
// name (a node only names rings it is a member of).
func (n *Node) ringNameLocked(layer int) (string, bool) {
	if layer == 1 {
		return "", true
	}
	if layer-2 >= 0 && layer-2 < len(n.ringNames) {
		return n.ringNames[layer-2], true
	}
	return "", false
}

// recordEvictLocked stamps an eviction tombstone into the one-hop table
// on fresh failure evidence for a peer. A subject that is already a
// departure is left alone: re-stamping on every repeated failure would
// push stamps arbitrarily far ahead of the clock, and a runaway
// tombstone can shadow the peer's genuine rejoin.
func (n *Node) recordEvictLocked(layer int, dead string) {
	if n.routes == nil || dead == "" || dead == n.addr {
		return
	}
	name, ok := n.ringNameLocked(layer)
	if !ok {
		return
	}
	if cur, ok := n.routes.Latest(layer, name, dead); ok && cur.Kind != wire.RouteJoin {
		return
	}
	n.routes.Apply(wire.RouteEvent{
		Layer: layer, Ring: name,
		Peer:  wire.Peer{Addr: dead, ID: [20]byte(NodeID(dead))},
		Kind:  wire.RouteEvict,
		Stamp: n.routes.NextStamp(layer, name, dead, n.clock()),
	})
}

// findClosestLocked is one iterative routing step in a layer (paper §3.2):
// report ownership, ring-predecessor termination, or the closest preceding
// finger toward the key.
func (n *Node) findClosestLocked(req wire.Request) wire.Response {
	ls, err := n.layerFor(req.Layer)
	if err != nil {
		return wire.Errorf("%v", err)
	}
	key := id.ID(req.Key)
	if req.Hierarchical {
		// Destination check of the multi-layer procedure (paper §3.2): am
		// I the key's owner in the GLOBAL ring? Only the first node of a
		// layer walk can own the key, so this matches the oracle overlay's
		// between-layer check exactly.
		gp := n.layers[0].pred
		if gp.Addr != "" && id.InOpenClosed(key, peerID(gp), n.id) {
			return wire.Response{OK: true, Next: n.selfLocked(), Done: true, Owner: true, Self: n.selfLocked()}
		}
	} else if ls.pred.Addr != "" && id.InOpenClosed(key, peerID(ls.pred), n.id) {
		// Ring-local shortcut for join-time walks: this node is the key's
		// successor within the queried ring.
		return wire.Response{OK: true, Next: n.selfLocked(), Done: true, Owner: true, Self: n.selfLocked()}
	}
	if len(ls.succ) == 0 {
		return wire.Errorf("layer %d not joined", req.Layer)
	}
	succ0 := ls.succ[0]
	if id.InOpenClosed(key, n.id, peerID(succ0)) {
		return wire.Response{OK: true, Next: succ0, Done: true, Self: n.selfLocked()}
	}
	// Closest preceding finger, falling back to the successor.
	next := succ0
	for k := id.Bits - 1; k >= 0; k-- {
		f := ls.fingers[k]
		if f.Addr != "" && f.Addr != n.addr && id.Between(peerID(f), n.id, key) {
			next = f
			break
		}
	}
	return wire.Response{OK: true, Next: next, Done: false, Self: n.selfLocked()}
}
