package transport

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/id"
	"repro/internal/metrics"
	"repro/internal/wire"
)

// chaosSeed fixes the injected-fault sequence; the harness asserts that
// replaying the recorded call log against the same seed reproduces it
// exactly.
const chaosSeed = 1012

// chaosRules is the steady-state chaos: every RPC 12% flaky, every link
// slightly slow, and replies from n5 occasionally lost after the peer
// applied the request (exercising the idempotency-aware retry path).
// ErrReply is deliberately absent: injected remote errors are
// application-level answers from a live peer, which walks treat as fatal
// by design.
func chaosRules() []faultnet.Rule {
	return []faultnet.Rule{
		{Drop: 0.12},
		{Delay: time.Millisecond, DelayJitter: time.Millisecond},
		{Dst: "n5", DropReply: 0.08},
	}
}

// chaosCluster builds an n-node depth-2 overlay (same two-coordinate-
// cluster layout as cluster) whose outgoing calls all pass through wrap,
// with a fast retry policy and the given breaker. Nodes get the logical
// names n0..n{n-1}. Optional tweak funcs adjust each node's Config
// before start (e.g. explicit replication quorums).
func chaosCluster(t *testing.T, n int, wrap func(string, wire.Caller) wire.Caller, breaker wire.BreakerPolicy, tweaks ...func(*Config)) []*Node {
	t.Helper()
	coord := func(i int) [2]float64 {
		if i%2 == 0 {
			return [2]float64{float64(i), float64(i % 7)}
		}
		return [2]float64{500 + float64(i), 500 + float64(i%7)}
	}
	nodes := make([]*Node, 0, n)
	for i := 0; i < n; i++ {
		cfg := Config{
			Depth:       2,
			Coord:       coord(i),
			CallTimeout: 5 * time.Second,
			Retry: wire.RetryPolicy{
				MaxAttempts: 4,
				BaseBackoff: 2 * time.Millisecond,
				MaxBackoff:  20 * time.Millisecond,
			},
			Breaker:    breaker,
			WrapCaller: wrap,
		}
		for _, tw := range tweaks {
			tw(&cfg)
		}
		nd, err := Start("127.0.0.1:0", cfg)
		if err != nil {
			t.Fatalf("Start node %d: %v", i, err)
		}
		nodes = append(nodes, nd)
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			_ = nd.Close()
		}
	})
	landmarks := []string{nodes[0].Addr(), nodes[1].Addr()}
	for _, nd := range nodes {
		nd.SetLandmarks(landmarks)
	}
	if err := nodes[0].CreateNetwork(); err != nil {
		t.Fatalf("CreateNetwork: %v", err)
	}
	for i := 1; i < n; i++ {
		if err := nodes[i].Join(nodes[0].Addr()); err != nil {
			t.Fatalf("Join node %d: %v", i, err)
		}
		stabilizeAll(t, nodes[:i+1], 3)
	}
	stabilizeAll(t, nodes, 3)
	for _, nd := range nodes {
		if err := nd.BuildAllFingers(); err != nil {
			t.Fatalf("BuildAllFingers: %v", err)
		}
	}
	return nodes
}

// bindAll gives the nodes their logical names on the fault network.
func bindAll(nw *faultnet.Network, nodes []*Node) {
	for i, nd := range nodes {
		nw.Bind(nd.Addr(), fmt.Sprintf("n%d", i))
	}
}

// TestChaosLookupsConvergeUnderFaults is the chaos harness: an 8-node
// in-process cluster stores 20 keys, then serves lookups and reads under
// seeded drops, slow links and lost replies; a minority partition is cut
// off and healed. Every stored key must stay reachable throughout, and
// the injected-fault sequence must replay bit-identically from the seed.
func TestChaosLookupsConvergeUnderFaults(t *testing.T) {
	nw := faultnet.New(chaosSeed)
	freg := metrics.NewRegistry()
	nw.Instrument(freg)
	nodes := chaosCluster(t, 8, nw.Caller,
		wire.BreakerPolicy{Threshold: 8, Cooldown: 100 * time.Millisecond})
	bindAll(nw, nodes)

	keys := make([]string, 20)
	for i := range keys {
		keys[i] = fmt.Sprintf("chaos-key-%d", i)
		if err := nodes[i%len(nodes)].Put(context.Background(), keys[i], []byte("v-"+keys[i])); err != nil {
			t.Fatalf("put %s: %v", keys[i], err)
		}
	}

	// Phase 1: steady-state chaos. Lookups must still converge to the
	// true owner and every key must read back, because the retry layer
	// absorbs the injected faults.
	nw.SetRules(chaosRules()...)
	for i, key := range keys {
		kid := LiveKeyID(key)
		want := trueOwner(nodes, kid)
		for _, from := range []*Node{nodes[0], nodes[3], nodes[6]} {
			res, err := from.Lookup(context.Background(), kid)
			if err != nil {
				t.Fatalf("lookup %s from %s under chaos: %v", key, from.Addr(), err)
			}
			if res.Owner.Addr != want.Addr() {
				t.Fatalf("key %d: owner %s, want %s", i, res.Owner.Addr, want.Addr())
			}
		}
		v, err := nodes[(i+5)%len(nodes)].Get(context.Background(), key)
		if err != nil {
			t.Fatalf("get %s under chaos: %v", key, err)
		}
		if string(v) != "v-"+key {
			t.Fatalf("get %s = %q", key, v)
		}
	}

	// Phase 2: cut off n7 from the rest. The majority evicts it (via
	// suspicion-confirmed TEvict), heals its rings, and every key stays
	// readable — n7's keys come from the replicas Put installed.
	nw.SetRules() // partition only; keep the noise out of the repair
	names := make([]string, 0, 7)
	for i := 0; i < 7; i++ {
		names = append(names, fmt.Sprintf("n%d", i))
	}
	nw.Partition(names, []string{"n7"})
	majority := nodes[:7]
	stabilizeAll(t, majority, 6)
	for _, nd := range majority {
		if err := nd.BuildAllFingers(); err != nil {
			t.Fatalf("rebuild fingers under partition: %v", err)
		}
	}
	for _, key := range keys {
		if _, err := nodes[2].Get(context.Background(), key); err != nil {
			t.Fatalf("get %s during partition: %v", key, err)
		}
	}

	// Phase 3: heal. After the breaker cooldown and a few stabilization
	// rounds the full ring reassembles and every node serves every key.
	nw.Heal()
	time.Sleep(150 * time.Millisecond) // let open breakers reach half-open
	stabilizeAll(t, nodes, 6)
	for _, nd := range nodes {
		if err := nd.BuildAllFingers(); err != nil {
			t.Fatalf("rebuild fingers after heal: %v", err)
		}
	}
	for i, key := range keys {
		v, err := nodes[(i+1)%len(nodes)].Get(context.Background(), key)
		if err != nil {
			t.Fatalf("get %s after heal: %v", key, err)
		}
		if string(v) != "v-"+key {
			t.Fatalf("get %s after heal = %q", key, v)
		}
	}

	// Determinism: the recorded logical call log replayed against the
	// same seed must reproduce the exact injected-fault sequence.
	events := nw.Events()
	if len(events) == 0 {
		t.Fatal("chaos run injected no faults")
	}
	replayed := faultnet.Replay(chaosSeed, nw.Log())
	if len(replayed) != len(events) {
		t.Fatalf("replay produced %d events, live run %d", len(replayed), len(events))
	}
	for i := range events {
		if events[i].String() != replayed[i].String() {
			t.Fatalf("fault %d diverged: live %q, replay %q", i, events[i], replayed[i])
		}
	}
	counts := nw.Counts()
	if counts[faultnet.KindDrop] == 0 || counts[faultnet.KindDelay] == 0 || counts[faultnet.KindPartition] == 0 {
		t.Errorf("expected drops, delays and partition blocks, got %v", counts)
	}

	// Resilience must be visible in the metrics expositions: retries and
	// breaker state on the nodes, injections on the fault network.
	totalRetries := uint64(0)
	for _, nd := range nodes {
		var b strings.Builder
		if _, err := nd.Metrics().WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		s := b.String()
		for _, name := range []string{
			"wire_retries_total",
			"wire_breaker_opens_total",
			"wire_breaker_closes_total",
			"wire_breaker_open",
		} {
			if !strings.Contains(s, name) {
				t.Errorf("node exposition missing %s", name)
			}
		}
		totalRetries += nd.retrier.Retries()
	}
	if totalRetries == 0 {
		t.Error("no node recorded a retry despite injected faults")
	}
	var fb strings.Builder
	if _, err := freg.WriteTo(&fb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fb.String(), `faultnet_injected_total{kind="drop"}`) {
		t.Errorf("faultnet exposition missing injection counters:\n%s", fb.String())
	}
}

// onehopMembers extracts the global-ring Join-latest member addresses
// from a one-hop snapshot, sorted.
func onehopMembers(routes []wire.RouteEvent) []string {
	var out []string
	for _, ev := range routes {
		if ev.Layer == 1 && ev.Kind == wire.RouteJoin {
			out = append(out, ev.Peer.Addr)
		}
	}
	sort.Strings(out)
	return out
}

// waitRoutesConverged stabilizes the given nodes until every one-hop
// table is byte-identical across them and its global-ring Join members
// are exactly the live addresses — the gossip fixpoint — failing the
// test if a bounded number of rounds does not get there.
func waitRoutesConverged(t *testing.T, nodes []*Node, phase string) {
	t.Helper()
	want := make([]string, 0, len(nodes))
	for _, nd := range nodes {
		want = append(want, nd.Addr())
	}
	sort.Strings(want)
	for round := 0; round < 30; round++ {
		stabilizeAll(t, nodes, 1)
		ref := nodes[0].Snapshot().Routes
		if !reflect.DeepEqual(onehopMembers(ref), want) {
			continue
		}
		agree := true
		for _, nd := range nodes[1:] {
			if !reflect.DeepEqual(nd.Snapshot().Routes, ref) {
				agree = false
				break
			}
		}
		if agree {
			return
		}
	}
	t.Fatalf("%s: one-hop tables did not converge to %v within 30 rounds", phase, want)
}

// TestChaosOneHopConvergence drives the single-hop route tier through
// the chaos harness: an 8-node onehop cluster must answer stable-state
// lookups from its gossip-maintained tables in one verified hop, keep
// resolving true owners under injected drops and across a partition
// (verify-or-fallback: staleness costs a probe, never a wrong owner),
// reconverge to byte-identical full tables after the heal, and pay a
// bounded, metered gossip cost per maintenance round.
func TestChaosOneHopConvergence(t *testing.T) {
	nw := faultnet.New(chaosSeed)
	nodes := chaosCluster(t, 8, nw.Caller,
		wire.BreakerPolicy{Threshold: 8, Cooldown: 100 * time.Millisecond},
		func(c *Config) { c.RouteMode = RouteOneHop })
	bindAll(nw, nodes)

	// Phase 0: a fault-free cluster's tables reach the gossip fixpoint.
	waitRoutesConverged(t, nodes, "bootstrap")

	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("onehop-key-%d", i)
	}

	// Phase 1: on the converged cluster, lookups answer from the table —
	// one verified hop to the true owner, visible in onehop_hits_total.
	hitsBefore, lookups := uint64(0), 0
	for _, nd := range nodes {
		hitsBefore += nd.nm.onehopHits.Value()
	}
	for _, key := range keys {
		kid := LiveKeyID(key)
		want := trueOwner(nodes, kid)
		for _, from := range []*Node{nodes[0], nodes[3], nodes[6]} {
			res, err := from.Lookup(context.Background(), kid)
			if err != nil {
				t.Fatalf("lookup %s on converged cluster: %v", key, err)
			}
			if res.Owner.Addr != want.Addr() {
				t.Fatalf("lookup %s: owner %s, want %s", key, res.Owner.Addr, want.Addr())
			}
			lookups++
		}
	}
	hits := uint64(0)
	for _, nd := range nodes {
		hits += nd.nm.onehopHits.Value()
	}
	if got := hits - hitsBefore; got < uint64(lookups)*9/10 {
		t.Errorf("only %d/%d converged-cluster lookups were one-hop hits, want >= 90%%", got, lookups)
	}

	// Phase 2: steady-state chaos. Dropped verifications may force
	// fallback walks, but every lookup still resolves the true owner.
	nw.SetRules(chaosRules()...)
	for _, key := range keys {
		kid := LiveKeyID(key)
		want := trueOwner(nodes, kid)
		res, err := nodes[2].Lookup(context.Background(), kid)
		if err != nil {
			t.Fatalf("lookup %s under chaos: %v", key, err)
		}
		if res.Owner.Addr != want.Addr() {
			t.Fatalf("lookup %s under chaos: owner %s, want %s", key, res.Owner.Addr, want.Addr())
		}
	}
	nw.SetRules()

	// Phase 3: cut off n7. The majority evicts it from its rings, gossip
	// spreads the tombstone, and majority tables reconverge on the seven
	// survivors; lookups resolve the true owner among them.
	names := make([]string, 0, 7)
	for i := 0; i < 7; i++ {
		names = append(names, fmt.Sprintf("n%d", i))
	}
	nw.Partition(names, []string{"n7"})
	majority := nodes[:7]
	stabilizeAll(t, majority, 6)
	waitRoutesConverged(t, majority, "partitioned majority")
	for _, key := range keys {
		kid := LiveKeyID(key)
		want := trueOwner(majority, kid)
		res, err := majority[1].Lookup(context.Background(), kid)
		if err != nil {
			t.Fatalf("lookup %s during partition: %v", key, err)
		}
		if res.Owner.Addr != want.Addr() {
			t.Fatalf("lookup %s during partition: owner %s, want %s", key, res.Owner.Addr, want.Addr())
		}
	}

	// Phase 4: heal. n7 hears its own tombstone, out-stamps it with a
	// fresh join, and every table reconverges to the identical full view.
	nw.Heal()
	time.Sleep(150 * time.Millisecond) // let open breakers reach half-open
	stabilizeAll(t, nodes, 6)
	waitRoutesConverged(t, nodes, "after heal")
	for _, key := range keys {
		kid := LiveKeyID(key)
		want := trueOwner(nodes, kid)
		res, err := nodes[7].Lookup(context.Background(), kid)
		if err != nil {
			t.Fatalf("lookup %s after heal: %v", key, err)
		}
		if res.Owner.Addr != want.Addr() {
			t.Fatalf("lookup %s after heal: owner %s, want %s", key, res.Owner.Addr, want.Addr())
		}
	}

	// Maintenance cost: gossip is metered, and at the fixpoint one more
	// round costs at most fanout pushes of the full event list per node —
	// replies are empty diffs. The ceiling is computed from the actual
	// converged table, so growth in per-round overhead fails here.
	gossipBefore := uint64(0)
	for _, nd := range nodes {
		gossipBefore += nd.nm.gossipBytes.Value()
	}
	if gossipBefore == 0 {
		t.Error("route_gossip_bytes_total is zero after a full chaos run")
	}
	stabilizeAll(t, nodes, 1)
	gossipAfter := uint64(0)
	for _, nd := range nodes {
		gossipAfter += nd.nm.gossipBytes.Value()
	}
	perPush := routeEventsBytes(nodes[0].Snapshot().Routes) + routeEventsBytes(nil)
	fanout := nodes[0].cfg.SuccListLen + 1 // global successor list plus predecessor
	ceiling := uint64(len(nodes)*fanout) * perPush
	if got := gossipAfter - gossipBefore; got > ceiling {
		t.Errorf("converged maintenance round cost %d gossip bytes, ceiling %d", got, ceiling)
	}

	// Determinism: the injected-fault sequence replays bit-identically.
	events := nw.Events()
	if len(events) == 0 {
		t.Fatal("chaos run injected no faults")
	}
	replayed := faultnet.Replay(chaosSeed, nw.Log())
	if len(replayed) != len(events) {
		t.Fatalf("replay produced %d events, live run %d", len(replayed), len(events))
	}
	for i := range events {
		if events[i].String() != replayed[i].String() {
			t.Fatalf("fault %d diverged: live %q, replay %q", i, events[i], replayed[i])
		}
	}
}

// TestChaosLowerRingClimbOnFailure pins the graceful-degradation path
// directly: when a node's lower ring stops answering routing steps
// entirely, a lookup climbs to the global ring instead of aborting.
func TestChaosLowerRingClimbOnFailure(t *testing.T) {
	var blackout atomic.Bool
	wrap := func(self string, inner wire.Caller) wire.Caller {
		return wire.CallerFunc(func(ctx context.Context, addr string, req wire.Request) (wire.Response, error) {
			if blackout.Load() && req.Type == wire.TFindClosest && req.Layer >= 2 {
				return wire.Response{}, &wire.NetError{
					Addr: addr, Op: "test:blackout", Sent: false,
					Err: errors.New("lower ring unroutable"),
				}
			}
			return inner.Call(ctx, addr, req)
		})
	}
	// The breaker stays disabled: it tracks peers, not (peer, layer)
	// pairs, and the blackout only concerns lower-layer routing steps.
	nodes := chaosCluster(t, 8, wrap, wire.BreakerPolicy{Threshold: -1})
	blackout.Store(true)
	before := nodes[0].nm.failoverClimbs.Value()
	for trial := 0; trial < 12; trial++ {
		key := id.HashString(fmt.Sprintf("climb-%d", trial))
		want := trueOwner(nodes, key)
		res, err := nodes[0].Lookup(context.Background(), key)
		if err != nil {
			t.Fatalf("lookup %d under lower-ring blackout: %v", trial, err)
		}
		if res.Owner.Addr != want.Addr() {
			t.Fatalf("trial %d: owner %s, want %s", trial, res.Owner.Addr, want.Addr())
		}
	}
	if nodes[0].nm.failoverClimbs.Value() == before {
		t.Error("no failover climb recorded despite a blacked-out lower ring")
	}
}
