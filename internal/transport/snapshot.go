package transport

import (
	"sort"

	"repro/internal/id"
	"repro/internal/wire"
)

// LayerSnapshot is one ring's routing state at a point in time.
type LayerSnapshot struct {
	Layer   int    // 1 = global ring
	Name    string // ring name; "" for the global ring
	Succ    []wire.Peer
	Pred    wire.Peer
	Fingers []wire.Peer // index k ~ successor(self + 2^k); zero Addr = unset
}

// Snapshot is a consistent copy of a node's checkable state, taken under
// the node mutex. Invariant checkers (internal/simcheck) work exclusively
// on snapshots so they never race with request handling; slices and maps
// are deep-copied and map-derived fields are sorted, so two runs of the
// same deterministic schedule produce identical snapshots.
type Snapshot struct {
	Addr      string
	ID        id.ID
	RingNames []string
	Joined    bool
	Layers    []LayerSnapshot
	Keys      []string         // stored kv keys, sorted
	Items     []wire.StoreItem // stored versioned items, key-sorted
	Tables    []wire.RingTable
	// Routes is the one-hop table's full event set, sorted by
	// (layer, ring, addr); nil unless the node runs RouteOneHop. Its
	// presence in the snapshot makes the quiescence fixpoint wait for
	// gossip convergence, and the route-table-accuracy invariant checks
	// it against live membership.
	Routes []wire.RouteEvent
}

// RingID returns the identifier a (layer, name) ring's table is stored
// under on the global ring. Exported so invariant checkers can compute
// which node is responsible for a table without re-deriving the format.
func RingID(layer int, name string) id.ID { return ringID(layer, name) }

// Snapshot captures the node's current state.
func (n *Node) Snapshot() Snapshot {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := Snapshot{
		Addr:      n.addr,
		ID:        n.id,
		RingNames: append([]string(nil), n.ringNames...),
		Joined:    n.joined,
		Layers:    make([]LayerSnapshot, len(n.layers)),
		Keys:      n.store.Keys(),
		Items:     n.store.Items(),
		Tables:    make([]wire.RingTable, 0, len(n.tables)),
	}
	for i, ls := range n.layers {
		layer := LayerSnapshot{
			Layer:   i + 1,
			Succ:    append([]wire.Peer(nil), ls.succ...),
			Pred:    ls.pred,
			Fingers: append([]wire.Peer(nil), ls.fingers...),
		}
		if i > 0 && i-1 < len(n.ringNames) {
			layer.Name = n.ringNames[i-1]
		}
		s.Layers[i] = layer
	}
	for _, t := range n.tables {
		s.Tables = append(s.Tables, t)
	}
	if n.routes != nil {
		s.Routes = n.routes.Events()
	}
	sort.Slice(s.Tables, func(i, j int) bool {
		if s.Tables[i].Layer != s.Tables[j].Layer {
			return s.Tables[i].Layer < s.Tables[j].Layer
		}
		return s.Tables[i].Name < s.Tables[j].Name
	})
	return s
}

// GetLocal reads a key from this node's local store without routing,
// reporting whether it was present. Checkers use it to verify replica
// placement.
func (n *Node) GetLocal(key string) ([]byte, bool) {
	it, ok := n.store.Get(key)
	if !ok {
		return nil, false
	}
	out := make([]byte, len(it.Value))
	copy(out, it.Value)
	return out, true
}
