package transport

import (
	"bytes"
	"context"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/faultnet"
	"repro/internal/metrics"
	"repro/internal/replica"
	"repro/internal/wire"
)

// antiEntropySeed fixes the injected-fault sequence for the anti-entropy
// chaos harness; the test asserts the recorded call log replays
// bit-identically against it.
const antiEntropySeed = 7177

// counterValue reads one un-labelled counter/gauge from a node's metrics
// exposition.
func counterValue(t *testing.T, nd *Node, name string) float64 {
	t.Helper()
	var b strings.Builder
	if _, err := nd.Metrics().WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(b.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("metric %s: parse %q: %v", name, rest, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not in exposition", name)
	return 0
}

func clusterCounter(t *testing.T, nodes []*Node, name string) float64 {
	t.Helper()
	var total float64
	for _, nd := range nodes {
		total += counterValue(t, nd, name)
	}
	return total
}

// TestChaosAntiEntropyBoundedConvergence is the digest-sync chaos
// harness: a 6-node cluster with replication factor 3 converges a
// keyspace of large values, a two-node minority is partitioned away,
// the majority overwrites a third of the keys (so the minority's copies
// go stale), and the partition heals. The digest-based anti-entropy
// rounds must re-converge every replica set — latest value everywhere,
// stale copies superseded, strays re-homed — while shipping at most 10%
// of the bytes the same number of full-transfer sweep rounds would
// have: converged peers cost one digest frame, not their whole range.
func TestChaosAntiEntropyBoundedConvergence(t *testing.T) {
	nw := faultnet.New(antiEntropySeed)
	freg := metrics.NewRegistry()
	nw.Instrument(freg)
	nodes := chaosCluster(t, 6, nw.Caller, wire.BreakerPolicy{Threshold: -1}, func(cfg *Config) {
		cfg.Replication = replica.Options{Factor: 3, WriteQuorum: 2, ReadQuorum: 2}
	})
	bindAll(nw, nodes)

	// A keyspace heavy enough that full-transfer sweeps are expensive:
	// 36 keys of 4 KiB. The digest frame (a few hundred bytes per peer)
	// must amortise against this payload, which is exactly the regime
	// anti-entropy is built for.
	const keyCount = 36
	want := map[string][]byte{}
	keyAt := func(i int) string { return fmt.Sprintf("ae-key-%d", i) }
	for i := 0; i < keyCount; i++ {
		val := bytes.Repeat([]byte{byte('a' + i%26)}, 4096)
		if err := nodes[i%len(nodes)].Put(context.Background(), keyAt(i), val); err != nil {
			t.Fatalf("put %s: %v", keyAt(i), err)
		}
		want[keyAt(i)] = val
	}
	stabilizeAll(t, nodes, 4) // settle every replica set to factor 3

	// Cut off a two-node minority, nodes[2] and nodes[3] (never the
	// landmarks nodes[0]/[1]).
	majority := []*Node{nodes[0], nodes[1], nodes[4], nodes[5]}
	nw.SetRules(faultnet.Rule{Drop: 0.10})
	nw.Partition([]string{"n0", "n1", "n4", "n5"}, []string{"n2", "n3"})
	stabilizeAll(t, majority, 6) // evict the minority, re-home within the majority

	// Divergence: the majority overwrites a third of the keys. The
	// minority still holds the original versions of whichever of these
	// it replicated — stale copies the heal must supersede.
	for i := 0; i < keyCount; i += 3 {
		val := bytes.Repeat([]byte{byte('A' + i%26)}, 4096)
		if err := majority[i%len(majority)].Put(context.Background(), keyAt(i), val); err != nil {
			t.Fatalf("divergent put %s: %v", keyAt(i), err)
		}
		want[keyAt(i)] = val
	}

	nw.Heal()
	nw.SetRules()
	aeBefore := clusterCounter(t, nodes, "antientropy_bytes_total")

	const rounds = 6
	stabilizeAll(t, nodes, rounds)
	for _, nd := range nodes {
		if err := nd.BuildAllFingers(); err != nil {
			t.Fatalf("rebuild fingers after heal: %v", err)
		}
	}

	// Convergence: every replica-set member holds the winning value
	// byte-for-byte, no node outside the set still holds a copy, and
	// every key reads back its latest acknowledged value.
	for i := 0; i < keyCount; i++ {
		key := keyAt(i)
		set := map[string]bool{}
		for _, m := range replicaSetOf(nodes, key, 3) {
			set[m.Addr()] = true
		}
		for _, nd := range nodes {
			v, held := nd.GetLocal(key)
			if set[nd.Addr()] {
				if !held {
					t.Fatalf("replica-set member %s holds no copy of %s after heal", nd.Addr(), key)
				}
				if !bytes.Equal(v, want[key]) {
					t.Fatalf("replica-set member %s holds a stale/diverged copy of %s after heal", nd.Addr(), key)
				}
			} else if held {
				t.Fatalf("%s holds %s outside its replica set after heal", nd.Addr(), key)
			}
		}
		got, err := nodes[(i+1)%len(nodes)].Get(context.Background(), key)
		if err != nil {
			t.Fatalf("get %s after heal: %v", key, err)
		}
		if !bytes.Equal(got, want[key]) {
			t.Fatalf("get %s after heal returned a superseded value", key)
		}
	}

	// Bandwidth bound: the digest rounds that achieved this convergence
	// must have cost at most 10% of what the same number of full-sweep
	// rounds would ship for this keyspace.
	synced := clusterCounter(t, nodes, "antientropy_bytes_total") - aeBefore
	if synced <= 0 {
		t.Fatal("anti-entropy recorded no bytes across the heal")
	}
	var sweepRound uint64
	for _, nd := range nodes {
		b, err := nd.ReplicaFullSweepBytes()
		if err != nil {
			t.Fatalf("full-sweep baseline: %v", err)
		}
		sweepRound += b
	}
	baseline := float64(sweepRound) * rounds
	if baseline == 0 {
		t.Fatal("full-sweep baseline is zero — no data on any node?")
	}
	ratio := synced / baseline
	t.Logf("digest sync: %.0f bytes vs %.0f-byte full-sweep baseline (%.1f%%)", synced, baseline, 100*ratio)
	if ratio > 0.10 {
		t.Errorf("digest sync shipped %.0f bytes, %.1f%% of the %.0f-byte full-sweep baseline (bound 10%%)",
			synced, 100*ratio, baseline)
	}

	if rounds := clusterCounter(t, nodes, "antientropy_rounds_total"); rounds == 0 {
		t.Error("antientropy_rounds_total is zero despite stabilization rounds")
	}

	// Determinism: the recorded logical call log replayed against the
	// same seed must reproduce the exact injected-fault sequence.
	events := nw.Events()
	if len(events) == 0 {
		t.Fatal("anti-entropy chaos run injected no faults")
	}
	replayed := faultnet.Replay(antiEntropySeed, nw.Log())
	if len(replayed) != len(events) {
		t.Fatalf("replay produced %d events, live run %d", len(replayed), len(events))
	}
	for i := range events {
		if events[i].String() != replayed[i].String() {
			t.Fatalf("fault %d diverged: live %q, replay %q", i, events[i], replayed[i])
		}
	}
}
