package transport

import (
	"strings"
	"testing"
	"time"

	"repro/internal/wire"
)

func peerFor(addr string) wire.Peer {
	return wire.Peer{Addr: addr, ID: [20]byte(NodeID(addr))}
}

// plantPeer installs a peer in every slot of one layer's routing state:
// successor list, predecessor and two finger slots.
func plantPeer(n *Node, layer int, p wire.Peer, fingerSlots ...int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ls := n.layers[layer-1]
	ls.succ = append(ls.succ, p)
	ls.pred = p
	for _, k := range fingerSlots {
		ls.fingers[k] = p
	}
}

func layerSnapshot(n *Node, layer int) (succ []wire.Peer, pred wire.Peer, fingers []wire.Peer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ls := n.layers[layer-1]
	return append([]wire.Peer(nil), ls.succ...), ls.pred, append([]wire.Peer(nil), ls.fingers...)
}

// TestEvictPurgesEveryLayer plants a dead peer in the successor list,
// predecessor slot and fingers of both layers of a depth-2 node, then
// sends TEvict per layer and verifies only the dead references vanish.
func TestEvictPurgesEveryLayer(t *testing.T) {
	n, err := Start("127.0.0.1:0", Config{Depth: 2, CallTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	dead := peerFor("10.9.9.9:1")
	live := peerFor("10.8.8.8:1")
	for layer := 1; layer <= 2; layer++ {
		plantPeer(n, layer, live, 7)
		plantPeer(n, layer, dead, 3, 11)
	}
	for layer := 1; layer <= 2; layer++ {
		resp, err := wireCall(n.Addr(), wire.Request{
			Type: wire.TEvict, Layer: layer, Peer: dead,
		}, 2*time.Second)
		if err != nil || !resp.OK {
			t.Fatalf("evict layer %d: %v (%+v)", layer, err, resp)
		}
	}
	for layer := 1; layer <= 2; layer++ {
		succ, pred, fingers := layerSnapshot(n, layer)
		for _, s := range succ {
			if s.Addr == dead.Addr {
				t.Errorf("layer %d: dead peer still in successor list", layer)
			}
		}
		if len(succ) != 1 || succ[0].Addr != live.Addr {
			t.Errorf("layer %d: successor list = %v, want only the live peer", layer, succ)
		}
		if pred.Addr == dead.Addr {
			t.Errorf("layer %d: dead peer still predecessor", layer)
		}
		if fingers[3].Addr != "" || fingers[11].Addr != "" {
			t.Errorf("layer %d: dead peer still in fingers", layer)
		}
		if fingers[7].Addr != live.Addr {
			t.Errorf("layer %d: live finger was purged too", layer)
		}
	}
}

// TestEvictRejectsInvalidTargets pins the handler's refusal to purge
// nothing, itself, or an out-of-range layer.
func TestEvictRejectsInvalidTargets(t *testing.T) {
	n, err := Start("127.0.0.1:0", Config{Depth: 1, CallTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	cases := []wire.Request{
		{Type: wire.TEvict, Layer: 1},                              // no target
		{Type: wire.TEvict, Layer: 1, Peer: peerFor(n.Addr())},     // self
		{Type: wire.TEvict, Layer: 5, Peer: peerFor("10.1.1.1:1")}, // bad layer
	}
	for i, req := range cases {
		_, err := wireCall(n.Addr(), req, 2*time.Second)
		if !wire.IsRemote(err) {
			t.Errorf("case %d: want remote rejection, got %v", i, err)
		}
	}
}

// TestEvictAtPurgesRemotePeerAndCounts exercises the client side: evictAt
// must purge the dead reference from the remote node's layer state and
// count the report in evictions_total.
func TestEvictAtPurgesRemotePeerAndCounts(t *testing.T) {
	a, err := Start("127.0.0.1:0", Config{Depth: 1, CallTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Start("127.0.0.1:0", Config{Depth: 1, CallTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	dead := peerFor("10.7.7.7:1")
	plantPeer(b, 1, dead, 0)
	a.evictAt(b.Addr(), 1, dead.Addr)
	succ, pred, fingers := layerSnapshot(b, 1)
	if len(succ) != 0 || pred.Addr != "" || fingers[0].Addr != "" {
		t.Errorf("dead peer survived evictAt: succ=%v pred=%v finger=%v", succ, pred, fingers[0])
	}
	var sb strings.Builder
	if _, err := a.Metrics().WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "evictions_total 1") {
		t.Errorf("exposition missing evictions_total 1:\n%s", sb.String())
	}
}

// TestLocalEvictionSkipsSelf guards the local purge against suspicion of
// the node's own address (which would corrupt singleton state).
func TestLocalEvictionSkipsSelf(t *testing.T) {
	n, err := Start("127.0.0.1:0", Config{Depth: 1, CallTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	self := n.Self()
	plantPeer(n, 1, self, 0)
	n.evictLocal(1, n.Addr())
	succ, pred, fingers := layerSnapshot(n, 1)
	if len(succ) != 1 || pred.Addr != self.Addr || fingers[0].Addr != self.Addr {
		t.Error("evictLocal purged the node's own references")
	}
}
