package transport

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/id"
	"repro/internal/wire"
)

// TestHopCountersMatchLookups is the live-node counterpart of the paper's
// hop accounting: across a three-node overlay, the per-layer hop counters
// a node exports must sum exactly to the hop counts its lookups reported.
func TestHopCountersMatchLookups(t *testing.T) {
	nodes := cluster(t, 3)
	src := nodes[1]

	var wantTotal uint64
	perLayer := make([]uint64, 2)
	for trial := 0; trial < 30; trial++ {
		key := id.HashString(fmt.Sprintf("metric-key-%d", trial))
		res, err := src.Lookup(context.Background(), key)
		if err != nil {
			t.Fatalf("lookup %d: %v", trial, err)
		}
		layerSum := 0
		for l, h := range res.LayerHops {
			layerSum += h
			perLayer[l] += uint64(h)
		}
		if layerSum != res.Hops {
			t.Fatalf("trial %d: LayerHops %v sum to %d, Hops = %d",
				trial, res.LayerHops, layerSum, res.Hops)
		}
		wantTotal += uint64(res.Hops)
	}

	var gotTotal uint64
	for l, c := range src.nm.hops {
		if c.Value() != perLayer[l] {
			t.Errorf("hops_total{layer=%d} = %d, want %d", l+1, c.Value(), perLayer[l])
		}
		gotTotal += c.Value()
	}
	if gotTotal != wantTotal {
		t.Errorf("sum of per-layer hop counters = %d, lookups reported %d", gotTotal, wantTotal)
	}
	if src.nm.lookups.Value() != 30 {
		t.Errorf("lookups_total = %d, want 30", src.nm.lookups.Value())
	}
}

// TestMetricsExposition asserts the wire-format names the README and the
// acceptance criteria promise, served over HTTP exactly as hieras-node
// -metrics does.
func TestMetricsExposition(t *testing.T) {
	nodes := cluster(t, 3)
	src := nodes[0]
	if _, err := src.Lookup(context.Background(), id.HashString("expo-key")); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(src.Metrics().Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<20)
	n, _ := resp.Body.Read(buf)
	out := string(buf[:n])

	for _, want := range []string{
		`rpc_requests_total{type="find_closest"}`,
		`rpc_requests_total{type="ping"}`,
		"rpc_latency_seconds_bucket{le=",
		"rpc_latency_seconds_count",
		"rpc_bytes_in_total",
		"rpc_bytes_out_total",
		`rpc_server_requests_total{type=`,
		`hops_total{layer="1"}`,
		`hops_total{layer="2"}`,
		"ring_climbs_total",
		"lookups_total",
		"cache_hits_total",
		"cache_misses_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestRPCCountersMove(t *testing.T) {
	nd, err := Start("127.0.0.1:0", Config{Depth: 1, CallTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	if err := nd.CreateNetwork(); err != nil {
		t.Fatal(err)
	}
	// A served ping increments the server-side counter and byte totals.
	if _, err := wireCall(nd.Addr(), wire.Request{Type: wire.TPing}, time.Second); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if _, err := nd.Metrics().WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `rpc_server_requests_total{type="ping"} 1`) {
		t.Errorf("server ping counter not recorded:\n%s", out)
	}
	if strings.Contains(out, "rpc_bytes_in_total 0\n") {
		t.Error("rpc_bytes_in_total still zero after a served request")
	}
}

// TestLookupCacheHit exercises the location cache: the second lookup of a
// key is answered via one verified RPC and counted as a hit.
func TestLookupCacheHit(t *testing.T) {
	nodes := cluster(t, 4)
	// Start a fifth node with caching enabled and join it.
	landmarks := []string{nodes[0].Addr(), nodes[1].Addr()}
	nd, err := Start("127.0.0.1:0", Config{
		Depth: 2, Coord: [2]float64{3, 4}, Landmarks: landmarks,
		CallTimeout: 5 * time.Second, LookupCache: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	if joinErr := nd.Join(nodes[0].Addr()); joinErr != nil {
		t.Fatal(joinErr)
	}
	stabilizeAll(t, append(append([]*Node{}, nodes...), nd), 3)
	if fingerErr := nd.BuildAllFingers(); fingerErr != nil {
		t.Fatal(fingerErr)
	}

	key := id.HashString("cached-key")
	first, err := nd.Lookup(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if nd.nm.cacheMisses.Value() != 1 || nd.nm.cacheHits.Value() != 0 {
		t.Fatalf("after first lookup: hits=%d misses=%d",
			nd.nm.cacheHits.Value(), nd.nm.cacheMisses.Value())
	}
	second, err := nd.Lookup(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if nd.nm.cacheHits.Value() != 1 {
		t.Errorf("second lookup was not a cache hit (hits=%d misses=%d)",
			nd.nm.cacheHits.Value(), nd.nm.cacheMisses.Value())
	}
	if second.Owner.Addr != first.Owner.Addr {
		t.Errorf("cached owner %s != routed owner %s", second.Owner.Addr, first.Owner.Addr)
	}
	if second.Hops != 1 {
		t.Errorf("cache-hit lookup reported %d hops, want 1", second.Hops)
	}
}
