package transport

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/replica"
	"repro/internal/wire"
)

// ErrBadOptions reports invalid node options: every validation failure
// wraps it, so callers can errors.Is once instead of matching message
// strings (the same contract the root package's hieras.ErrBadOptions
// provides for simulator options).
var ErrBadOptions = errors.New("transport: invalid options")

// Options is the validated, flag-shaped configuration of a live node —
// the surface cmd/hieras-node exposes. It carries only plain scalar
// fields (so every one maps 1:1 onto a command-line flag) and compiles
// into the richer Config via Config(). Zero values mean "use the
// default" except where a field documents otherwise.
type Options struct {
	// Depth is the hierarchy depth (default 2; 1 = plain Chord).
	Depth int
	// CallTimeout bounds each RPC attempt (default 3s).
	CallTimeout time.Duration
	// LookupCache is the location-cache capacity. 0 keeps caching off;
	// DefaultOptions sets 256.
	LookupCache int
	// RouteMode selects the lookup acceleration tier: "classic" (walk
	// the layered rings every time), "cached" (verified location cache)
	// or "onehop" (gossip-maintained near-full route table answering
	// lookups in one verified hop). Empty derives the mode from
	// LookupCache, matching the pre-onehop behaviour.
	RouteMode string

	// Codec names the wire encoding for outgoing calls: "binary" (the
	// default zero-alloc codec) or "gob" (the compatibility codec).
	// Empty means binary.
	Codec string
	// PoolSize is the per-peer connection pool size (0 = wire
	// DefaultPoolSize; negative = one connection per call, the
	// benchmark baseline).
	PoolSize int
	// Coalesce shares one exchange between identical in-flight read
	// RPCs. Off by default.
	Coalesce bool

	// Replicas is the replication factor r: the owner plus r-1
	// successors hold each key (default 3).
	Replicas int
	// WriteQuorum is the replica acks required before a put is
	// acknowledged (0 = majority of Replicas).
	WriteQuorum int
	// ReadQuorum is the replica answers required before a get trusts
	// the freshest value (0 = first answer).
	ReadQuorum int

	// Retries is the RPC attempts per call, first try included
	// (default 3; 1 disables retrying).
	Retries int
	// RetryBackoff is the backoff before the first retry; it doubles
	// per retry, jittered (default 20ms).
	RetryBackoff time.Duration
	// RetryMaxBackoff caps the per-retry backoff (default 500ms).
	RetryMaxBackoff time.Duration

	// BreakerThreshold is the consecutive-failure count that opens a
	// peer's circuit breaker. 0 disables the breaker; DefaultOptions
	// sets 5.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects calls before
	// probing the peer again (default 2s).
	BreakerCooldown time.Duration

	// TTL is the data lifetime: puts expire TTL after being written and
	// deletes leave tombstones for the same grace period. 0 (the
	// default) keeps data and tombstones forever. A positive TTL must
	// comfortably exceed the anti-entropy convergence time, or a
	// tombstone can expire before every replica has seen it.
	TTL time.Duration
	// AntiEntropyEvery runs the digest-based replica-sync round on every
	// Nth stabilize tick (default 1: every tick). Eviction of a dead
	// peer still forces an immediate round regardless of cadence.
	AntiEntropyEvery int
}

// DefaultOptions returns the defaults cmd/hieras-node advertises in its
// flag help — the values a node runs with when no flag is passed.
func DefaultOptions() Options {
	return Options{
		Depth:            2,
		CallTimeout:      3 * time.Second,
		LookupCache:      256,
		Codec:            "binary",
		Replicas:         3,
		Retries:          3,
		RetryBackoff:     20 * time.Millisecond,
		RetryMaxBackoff:  500 * time.Millisecond,
		BreakerThreshold: 5,
		BreakerCooldown:  2 * time.Second,
		AntiEntropyEvery: 1,
	}
}

// WithDefaults fills zero-valued fields with their defaults. Fields
// whose zero value is meaningful (LookupCache, PoolSize, Coalesce,
// WriteQuorum, ReadQuorum, BreakerThreshold) are left alone.
func (o Options) WithDefaults() Options {
	d := DefaultOptions()
	if o.Depth == 0 {
		o.Depth = d.Depth
	}
	if o.CallTimeout == 0 {
		o.CallTimeout = d.CallTimeout
	}
	if o.Codec == "" {
		o.Codec = d.Codec
	}
	if o.Replicas == 0 {
		o.Replicas = d.Replicas
	}
	if o.Retries == 0 {
		o.Retries = d.Retries
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = d.RetryBackoff
	}
	if o.RetryMaxBackoff == 0 {
		o.RetryMaxBackoff = d.RetryMaxBackoff
	}
	if o.BreakerCooldown == 0 {
		o.BreakerCooldown = d.BreakerCooldown
	}
	if o.AntiEntropyEvery == 0 {
		o.AntiEntropyEvery = d.AntiEntropyEvery
	}
	return o
}

// Validate rejects malformed options up front with an error wrapping
// ErrBadOptions. It validates the options as given; apply WithDefaults
// first when zero means "default".
func (o Options) Validate() error {
	if o.Depth < 1 {
		return fmt.Errorf("%w: depth %d, must be >= 1", ErrBadOptions, o.Depth)
	}
	if o.CallTimeout <= 0 {
		return fmt.Errorf("%w: call timeout %v, must be positive", ErrBadOptions, o.CallTimeout)
	}
	if o.LookupCache < 0 {
		return fmt.Errorf("%w: negative lookup-cache capacity %d", ErrBadOptions, o.LookupCache)
	}
	switch o.RouteMode {
	case "", RouteClassic, RouteCached, RouteOneHop:
	default:
		return fmt.Errorf("%w: route mode %q, want %s, %s or %s",
			ErrBadOptions, o.RouteMode, RouteClassic, RouteCached, RouteOneHop)
	}
	if _, err := wire.CodecByName(o.Codec); err != nil {
		return fmt.Errorf("%w: %v", ErrBadOptions, err)
	}
	if o.Replicas < 1 {
		return fmt.Errorf("%w: replication factor %d, must be >= 1", ErrBadOptions, o.Replicas)
	}
	if o.WriteQuorum < 0 || o.WriteQuorum > o.Replicas {
		return fmt.Errorf("%w: write quorum %d outside [0, %d]", ErrBadOptions, o.WriteQuorum, o.Replicas)
	}
	if o.ReadQuorum < 0 || o.ReadQuorum > o.Replicas {
		return fmt.Errorf("%w: read quorum %d outside [0, %d]", ErrBadOptions, o.ReadQuorum, o.Replicas)
	}
	if o.Retries < 1 {
		return fmt.Errorf("%w: %d retries, must be >= 1 (1 disables retrying)", ErrBadOptions, o.Retries)
	}
	if o.RetryBackoff < 0 {
		return fmt.Errorf("%w: negative retry backoff %v", ErrBadOptions, o.RetryBackoff)
	}
	if o.RetryMaxBackoff < o.RetryBackoff {
		return fmt.Errorf("%w: max backoff %v below base backoff %v",
			ErrBadOptions, o.RetryMaxBackoff, o.RetryBackoff)
	}
	if o.BreakerThreshold < 0 {
		return fmt.Errorf("%w: negative breaker threshold %d (use 0 to disable)",
			ErrBadOptions, o.BreakerThreshold)
	}
	if o.BreakerThreshold > 0 && o.BreakerCooldown <= 0 {
		return fmt.Errorf("%w: breaker cooldown %v, must be positive while the breaker is on",
			ErrBadOptions, o.BreakerCooldown)
	}
	if o.TTL < 0 {
		return fmt.Errorf("%w: negative ttl %v (use 0 to keep data forever)", ErrBadOptions, o.TTL)
	}
	if o.AntiEntropyEvery < 1 {
		return fmt.Errorf("%w: anti-entropy cadence %d, must be >= 1 stabilize ticks",
			ErrBadOptions, o.AntiEntropyEvery)
	}
	return nil
}

// Config compiles the options into a node Config: defaults applied,
// fields validated, names resolved (codec string → wire.Codec, breaker
// "0 = off" → the wire layer's -1 sentinel).
func (o Options) Config() (Config, error) {
	o = o.WithDefaults()
	if err := o.Validate(); err != nil {
		return Config{}, err
	}
	codec, err := wire.CodecByName(o.Codec)
	if err != nil {
		return Config{}, fmt.Errorf("%w: %v", ErrBadOptions, err)
	}
	breaker := o.BreakerThreshold
	if breaker <= 0 {
		breaker = -1 // options 0 = off; the wire zero value means "default"
	}
	return Config{
		Depth:       o.Depth,
		CallTimeout: o.CallTimeout,
		LookupCache: o.LookupCache,
		RouteMode:   o.RouteMode,
		Codec:       codec,
		PoolSize:    o.PoolSize,
		Coalesce:    o.Coalesce,
		Replication: replica.Options{
			Factor:      o.Replicas,
			WriteQuorum: o.WriteQuorum,
			ReadQuorum:  o.ReadQuorum,
		},
		Retry: wire.RetryPolicy{
			MaxAttempts: o.Retries,
			BaseBackoff: o.RetryBackoff,
			MaxBackoff:  o.RetryMaxBackoff,
		},
		Breaker:          wire.BreakerPolicy{Threshold: breaker, Cooldown: o.BreakerCooldown},
		TTL:              o.TTL,
		AntiEntropyEvery: o.AntiEntropyEvery,
	}, nil
}
