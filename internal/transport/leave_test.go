package transport

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/id"
)

func TestGracefulLeaveHandsOverData(t *testing.T) {
	nodes := cluster(t, 8)
	// Store data whose owner we will evict.
	for i := 0; i < 12; i++ {
		if err := nodes[i%len(nodes)].Put(context.Background(), fmt.Sprintf("doc-%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	victim := nodes[5]
	if err := victim.Leave(); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	alive := append(append([]*Node{}, nodes[:5]...), nodes[6:]...)
	// The handover should leave the ring consistent without stabilization,
	// but run one round to refresh successor lists.
	stabilizeAll(t, alive, 2)
	for _, nd := range alive {
		if err := nd.BuildAllFingers(); err != nil {
			t.Fatalf("fingers: %v", err)
		}
	}
	// All data still readable, including keys the victim owned.
	for i := 0; i < 12; i++ {
		key := fmt.Sprintf("doc-%d", i)
		v, err := alive[i%len(alive)].Get(context.Background(), key)
		if err != nil {
			t.Fatalf("get %s after leave: %v", key, err)
		}
		if string(v) != fmt.Sprintf("v%d", i) {
			t.Errorf("get %s = %q", key, v)
		}
	}
	// Lookups land on the true owner among survivors.
	for trial := 0; trial < 30; trial++ {
		key := id.HashString(fmt.Sprintf("post-leave-%d", trial))
		want := trueOwner(alive, key)
		res, err := alive[trial%len(alive)].Lookup(context.Background(), key)
		if err != nil {
			t.Fatal(err)
		}
		if res.Owner.Addr != want.Addr() {
			t.Fatalf("owner %s, want %s", res.Owner.Addr, want.Addr())
		}
	}
}

func TestLeaveImmediateNeighborConsistency(t *testing.T) {
	nodes := cluster(t, 6)
	victim := nodes[2]
	// Identify the victim's global neighbors before departure.
	succ, pred, err := victim.Neighbors(1)
	if err != nil || len(succ) == 0 {
		t.Fatalf("neighbors: %v", err)
	}
	var succNode, predNode *Node
	for _, nd := range nodes {
		if nd.Addr() == succ[0].Addr {
			succNode = nd
		}
		if nd.Addr() == pred.Addr {
			predNode = nd
		}
	}
	if succNode == nil || predNode == nil {
		t.Skip("neighbors not in cluster (unreachable)")
	}
	if leaveErr := victim.Leave(); leaveErr != nil {
		t.Fatal(leaveErr)
	}
	// Immediately after Leave (no stabilization): pred and succ must have
	// been handed to each other.
	s2, _, err := predNode.Neighbors(1)
	if err != nil || len(s2) == 0 {
		t.Fatalf("pred neighbors: %v", err)
	}
	if s2[0].Addr != succNode.Addr() {
		t.Errorf("predecessor's successor is %s, want %s", s2[0].Addr, succNode.Addr())
	}
	_, p2, err := succNode.Neighbors(1)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Addr != predNode.Addr() {
		t.Errorf("successor's predecessor is %s, want %s", p2.Addr, predNode.Addr())
	}
}

func TestLiveDepth3(t *testing.T) {
	// A depth-3 overlay: two coarse clusters, each with two sub-clusters.
	coord := func(i int) [2]float64 {
		base := [2]float64{0, 0}
		if i%2 == 1 {
			base = [2]float64{600, 600}
		}
		if (i/2)%2 == 1 {
			base[0] += 40 // sub-cluster offset: same coarse bin, finer split
		}
		base[1] += float64(i % 5)
		return base
	}
	var nodes []*Node
	t.Cleanup(func() {
		for _, nd := range nodes {
			_ = nd.Close()
		}
	})
	for i := 0; i < 10; i++ {
		nd, err := Start("127.0.0.1:0", Config{Depth: 3, Coord: coord(i), CallTimeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
	}
	landmarks := []string{nodes[0].Addr(), nodes[1].Addr()}
	for _, nd := range nodes {
		nd.SetLandmarks(landmarks)
	}
	if err := nodes[0].CreateNetwork(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(nodes); i++ {
		if err := nodes[i].Join(nodes[0].Addr()); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		stabilizeAll(t, nodes[:i+1], 3)
	}
	for _, nd := range nodes {
		if len(nd.RingNames()) != 2 {
			t.Fatalf("depth-3 node should have 2 ring names, got %v", nd.RingNames())
		}
		if err := nd.BuildAllFingers(); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 30; trial++ {
		key := id.HashString(fmt.Sprintf("d3-%d", trial))
		want := trueOwner(nodes, key)
		res, err := nodes[trial%len(nodes)].Lookup(context.Background(), key)
		if err != nil {
			t.Fatal(err)
		}
		if res.Owner.Addr != want.Addr() {
			t.Fatalf("owner %s, want %s", res.Owner.Addr, want.Addr())
		}
		if len(res.LayerHops) != 3 {
			t.Fatal("expected 3 layer-hop buckets")
		}
	}
}

func TestReplicatedGetSurvivesOwnerFailure(t *testing.T) {
	nodes := cluster(t, 8)
	key := "replicated-doc"
	if err := nodes[1].Put(context.Background(), key, []byte("precious")); err != nil {
		t.Fatal(err)
	}
	// Find the key's owner and kill it silently (no graceful handoff).
	res, err := nodes[0].Lookup(context.Background(), LiveKeyID(key))
	if err != nil {
		t.Fatal(err)
	}
	var owner *Node
	for _, nd := range nodes {
		if nd.Addr() == res.Owner.Addr {
			owner = nd
		}
	}
	if owner == nil {
		t.Fatal("owner not in cluster")
	}
	_ = owner.Close()
	alive := make([]*Node, 0, len(nodes)-1)
	for _, nd := range nodes {
		if nd != owner {
			alive = append(alive, nd)
		}
	}
	// A couple of stabilization rounds so survivors route around the
	// corpse; replicas on the old owner's successors answer the read.
	stabilizeAll(t, alive, 4)
	for _, nd := range alive {
		if fingerErr := nd.BuildAllFingers(); fingerErr != nil {
			t.Fatal(fingerErr)
		}
	}
	v, err := alive[0].Get(context.Background(), key)
	if err != nil {
		t.Fatalf("replicated read after owner failure: %v", err)
	}
	if string(v) != "precious" {
		t.Errorf("value = %q", v)
	}
}
