package chandisc

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestChannelDiscipline(t *testing.T) {
	linttest.Run(t, "testdata/src", "chanpkg", Analyzer)
}
